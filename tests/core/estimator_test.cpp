// Serial-time estimator (paper footnote, p. 717) and its validation against
// the real serial simulator.
#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include "circuits/cells.hpp"
#include "core/serial_sim.hpp"
#include "faults/universe.hpp"
#include "switch/builder.hpp"

namespace fmossim {
namespace {

TEST(EstimatorTest, SumsPatternsToDetection) {
  // Faults detected at patterns 0, 4, and one undetected; 10 patterns total.
  const std::vector<std::int32_t> detected = {0, 4, -1};
  const SerialEstimate est = estimateSerial(detected, 10, 2.0, 100.0);
  // 1 + 5 + 10 = 16 pattern-units.
  EXPECT_EQ(est.patternUnits, 16u);
  EXPECT_DOUBLE_EQ(est.seconds, 32.0);
  EXPECT_DOUBLE_EQ(est.nodeEvals, 1600.0);
}

TEST(EstimatorTest, EmptyFaultListCostsNothing) {
  const SerialEstimate est = estimateSerial({}, 100, 1.0, 1.0);
  EXPECT_EQ(est.patternUnits, 0u);
  EXPECT_DOUBLE_EQ(est.seconds, 0.0);
}

TEST(EstimatorTest, AllUndetectedCostsFullSequencePerFault) {
  const std::vector<std::int32_t> detected = {-1, -1, -1, -1};
  const SerialEstimate est = estimateSerial(detected, 25, 1.0, 1.0);
  EXPECT_EQ(est.patternUnits, 100u);
}

// Validation: on a small circuit, the estimate in *work units* must agree
// with a real serial simulation to within a modest factor (the estimator
// charges the average good-circuit pattern cost; faulty circuits do similar
// work on this scale).
TEST(EstimatorTest, EstimateTracksRealSerialWorkUnits) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  NodeId n = in;
  for (int i = 0; i < 4; ++i) n = cells.inverter(n, "c" + std::to_string(i));
  const Network net = b.build();

  TestSequence seq;
  seq.addOutput(n);
  for (int i = 0; i < 6; ++i) {
    Pattern p;
    InputSetting s;
    s.set(net.nodeByName("Vdd"), State::S1);
    s.set(net.nodeByName("Gnd"), State::S0);
    s.set(in, i % 2 ? State::S1 : State::S0);
    p.settings.push_back(std::move(s));
    seq.addPattern(std::move(p));
  }

  const FaultList faults = allStorageNodeStuckFaults(net);
  SerialFaultSimulator serial(net);
  const SerialRunResult real = serial.run(seq, faults);

  const SerialEstimate est =
      estimateSerial(real.detectedAtPattern, seq.size(),
                     real.good.secondsPerPattern(),
                     real.good.nodeEvalsPerPattern());
  ASSERT_GT(real.faultNodeEvals, 0u);
  const double ratio = est.nodeEvals / double(real.faultNodeEvals);
  EXPECT_GT(ratio, 0.2) << "estimate drastically under real serial cost";
  EXPECT_LT(ratio, 5.0) << "estimate drastically over real serial cost";
}

}  // namespace
}  // namespace fmossim
