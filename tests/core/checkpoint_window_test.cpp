// Sliding-window eviction boundaries of the spilled checkpoint store:
// a window budget exactly at a chunk edge, the single-chunk floor, and
// re-pinning a chunk after the window evicted it. Each case must replay
// content-identically to an unbounded in-memory recording — eviction is
// purely a residency concern, never a correctness one.
#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/concurrent_sim.hpp"
#include "gen/random_circuit.hpp"

namespace fmossim {
namespace {

GeneratedWorkload windowWorkload() {
  GenOptions gen;
  gen.seed = 31;
  gen.numNodes = 24;
  gen.numInputs = 6;
  gen.numFaults = 36;
  gen.numPatterns = 300;
  return generateWorkload(gen);
}

/// Compares every settle a reader over `spilled` yields against the direct
/// in-memory accessors of `mem` — the full trace content, not just results.
void expectSameSettle(const GoodMachineCheckpoint& mem, CheckpointReader& rd,
                      std::uint32_t si) {
  const GoodMachineCheckpoint::Settle& s = mem.settle(si);
  rd.enterSettle(si);
  ASSERT_EQ(rd.phaseCount(), s.phaseCount) << "settle " << si;

  const auto inputs = rd.inputChanges();
  const auto wantInputs = mem.inputChanges(s);
  ASSERT_EQ(inputs.size(), wantInputs.size()) << "settle " << si;
  for (std::size_t i = 0; i < wantInputs.size(); ++i) {
    EXPECT_EQ(inputs[i].node, wantInputs[i].node);
    EXPECT_EQ(inputs[i].value, wantInputs[i].value);
  }

  for (std::uint32_t k = 0; k < s.phaseCount; ++k) {
    const GoodMachineCheckpoint::Phase& p = mem.phase(s.phaseOff + k);
    const auto vics = rd.vicinities(k);
    const auto wantVics = mem.vicinities(p);
    ASSERT_EQ(vics.size(), wantVics.size())
        << "settle " << si << " phase " << k;
    for (std::size_t v = 0; v < wantVics.size(); ++v) {
      const auto members = rd.members(vics[v]);
      const auto wantMembers = mem.members(wantVics[v]);
      ASSERT_EQ(std::vector<NodeId>(members.begin(), members.end()),
                std::vector<NodeId>(wantMembers.begin(), wantMembers.end()))
          << "settle " << si << " phase " << k << " vicinity " << v;
    }
    const auto changes = rd.changes(k);
    const auto wantChanges = mem.changes(p);
    ASSERT_EQ(changes.size(), wantChanges.size())
        << "settle " << si << " phase " << k;
    for (std::size_t c = 0; c < wantChanges.size(); ++c) {
      EXPECT_EQ(changes[c].node, wantChanges[c].node);
      EXPECT_EQ(changes[c].value, wantChanges[c].value);
    }
  }
}

struct WindowFixture : ::testing::Test {
  void SetUp() override {
    w = windowWorkload();
    mem = GoodMachineCheckpoint::record(w.net, w.seq, opts);
    ASSERT_FALSE(mem.spilled());
  }

  /// Records with `budget` and asserts the spill path engaged with the same
  /// deterministic chunking as any other sub-32-KiB budget (the chunk
  /// target clamps to its floor there, so chunk layout is budget-invariant).
  GoodMachineCheckpoint spill(std::size_t budget) {
    GoodMachineCheckpoint ck =
        GoodMachineCheckpoint::record(w.net, w.seq, opts, budget);
    EXPECT_TRUE(ck.spilled());
    EXPECT_GT(ck.spillChunkCount(), 2u)
        << "workload too small to exercise eviction";
    EXPECT_EQ(ck.seqFingerprint(), mem.seqFingerprint());
    EXPECT_EQ(ck.numSettles(), mem.numSettles());
    EXPECT_EQ(ck.finalGoodStates(), mem.finalGoodStates());
    return ck;
  }

  GeneratedWorkload w;
  FsimOptions opts;
  GoodMachineCheckpoint mem;
};

// Budget below the window floor: the window is clamped to exactly one
// decodable chunk (maxChunkBytes), so every cross-chunk step evicts — and
// the full trace content must still come back bit-identically.
TEST_F(WindowFixture, SingleChunkWindowYieldsFullTrace) {
  GoodMachineCheckpoint ck = spill(1);
  EXPECT_EQ(ck.windowBudgetBytes(), ck.maxChunkBytes());
  CheckpointReader rd(ck);
  for (std::uint32_t si = 0; si < mem.numSettles(); ++si) {
    expectSameSettle(mem, rd, si);
  }
}

// Budget exactly at a chunk edge: fixed footprint + exactly one max-sized
// chunk. The window budget lands exactly on maxChunkBytes (no slack for a
// second chunk), the boundary where an off-by-one in eviction accounting
// would either thrash or overrun the budget.
TEST_F(WindowFixture, BudgetExactlyAtChunkEdge) {
  // Self-calibrating: right after recording no decoded chunks are resident,
  // so memoryBytes() is exactly the fixed (non-window) footprint. Iterate
  // budget -> fixed(budget) + maxChunk(budget) to the fixed point where the
  // budget sits exactly one max-sized chunk above the fixed footprint — the
  // boundary where an off-by-one in window accounting would either evict
  // the only decodable chunk or overrun the budget.
  std::size_t budget = std::size_t{48} << 10;
  GoodMachineCheckpoint ck = spill(budget);
  bool converged = false;
  for (int i = 0; i < 10 && !converged; ++i) {
    const std::size_t edge = ck.memoryBytes() + ck.maxChunkBytes();
    converged = edge == budget;
    if (!converged) {
      budget = edge;
      ck = spill(budget);
    }
  }
  ASSERT_TRUE(converged) << "fixed footprint did not stabilize";
  EXPECT_EQ(ck.windowBudgetBytes(), ck.maxChunkBytes());

  ConcurrentFaultSimulator plain(w.net, w.faults, opts);
  const FaultSimResult ref = plain.run(w.seq);
  ConcurrentFaultSimulator replaying(w.net, w.faults, opts, nullptr, &ck);
  const FaultSimResult got = replaying.run(w.seq);
  EXPECT_EQ(got.detectedAtPattern, ref.detectedAtPattern);
  EXPECT_EQ(got.finalGoodStates, ref.finalGoodStates);
  EXPECT_EQ(ck.totalGoodEvals() + got.totalNodeEvals, ref.totalNodeEvals);
  EXPECT_LE(ck.memoryBytes(), budget) << "resident after a full replay";
}

// goodStateAfterPattern at arbitrary mid-sequence instants: the fold that
// SEU campaigns use to materialize an injection instant must yield the same
// snapshot from a spilled single-chunk window as from the unbounded
// recording — including out-of-order access, which forces the reader to
// seek backwards across evicted chunks.
TEST_F(WindowFixture, GoodStateAfterPatternMatchesUnbounded) {
  GoodMachineCheckpoint ck = spill(1);
  const std::uint64_t numPatterns = mem.numPatterns();
  ASSERT_GT(numPatterns, 8u);
  const std::uint64_t probes[] = {0,
                                  1,
                                  numPatterns / 3,
                                  numPatterns / 2,
                                  numPatterns - 2,
                                  numPatterns - 1,
                                  2,  // backwards after reaching the end
                                  numPatterns / 2};
  for (const std::uint64_t p : probes) {
    EXPECT_EQ(ck.goodStateAfterPattern(p), mem.goodStateAfterPattern(p))
        << "pattern " << p;
    EXPECT_EQ(ck.settleEndingPattern(p), mem.settleEndingPattern(p))
        << "pattern " << p;
  }
  EXPECT_EQ(ck.goodStateAfterPattern(numPatterns - 1), ck.finalGoodStates());
}

// Re-pin after eviction: walk the whole trace forward (sliding the
// single-chunk window off chunk 0), then seek back to settle 0 — the
// evicted chunk must reload with identical content, repeatedly.
TEST_F(WindowFixture, RePinAfterEvictionReloadsIdenticalContent) {
  GoodMachineCheckpoint ck = spill(1);
  CheckpointReader rd(ck);
  const std::uint32_t last = mem.numSettles() - 1;
  for (int round = 0; round < 2; ++round) {
    expectSameSettle(mem, rd, 0);
    expectSameSettle(mem, rd, mem.numSettles() / 2);
    expectSameSettle(mem, rd, last);
  }
  // Two concurrent readers at opposite ends of the file keep forcing each
  // other's chunks out of a one-chunk window; both must stay correct.
  CheckpointReader a(ck), b(ck);
  for (int round = 0; round < 2; ++round) {
    expectSameSettle(mem, a, 0);
    expectSameSettle(mem, b, last);
    expectSameSettle(mem, a, 1);
    expectSameSettle(mem, b, last - 1);
  }
}

}  // namespace
}  // namespace fmossim
