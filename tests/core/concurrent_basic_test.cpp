// ConcurrentFaultSimulator: hand-verifiable scenarios on small circuits —
// divergence records, detection, dropping, stuck inputs, fault devices.
#include "core/concurrent_sim.hpp"

#include <gtest/gtest.h>

#include "circuits/cells.hpp"
#include "faults/universe.hpp"
#include "switch/builder.hpp"

namespace fmossim {
namespace {

// in -> INV -> mid -> INV -> out, all nMOS.
struct InvChain {
  NodeId in, mid, out, vdd, gnd;
  Network net;  // must be last: buildNet assigns the ids above

  InvChain() : net(buildNet(*this)) {}

  static Network buildNet(InvChain& f) {
    NetworkBuilder b;
    NmosCells cells(b);
    f.in = b.addInput("in");
    f.mid = cells.inverter(f.in, "mid");
    f.out = cells.inverter(f.mid, "out");
    Network net = b.build();
    f.vdd = net.nodeByName("Vdd");
    f.gnd = net.nodeByName("Gnd");
    return net;
  }

  InputSetting rails() const {
    InputSetting s;
    s.set(vdd, State::S1);
    s.set(gnd, State::S0);
    return s;
  }
  Pattern drivePattern(State v) const {
    Pattern p;
    InputSetting s = rails();
    s.set(in, v);
    p.settings.push_back(std::move(s));
    return p;
  }
};

TEST(ConcurrentBasicTest, NoFaultsMatchesLogicSimulator) {
  InvChain f;
  ConcurrentFaultSimulator sim(f.net, FaultList{});
  InputSetting s = f.rails();
  s.set(f.in, State::S0);
  sim.applySetting(s.span());
  EXPECT_EQ(sim.goodState(f.mid), State::S1);
  EXPECT_EQ(sim.goodState(f.out), State::S0);
  EXPECT_EQ(sim.recordCount(), 0u);
}

TEST(ConcurrentBasicTest, StuckNodeCreatesDivergenceDownstream) {
  InvChain f;
  FaultList faults;
  faults.add(Fault::nodeStuckAt(f.net, f.mid, State::S0));  // circuit 1
  ConcurrentFaultSimulator sim(f.net, faults);
  InputSetting s = f.rails();
  s.set(f.in, State::S0);
  sim.applySetting(s.span());
  // Good: mid=1, out=0. Faulty: mid stuck 0 -> out=1.
  EXPECT_EQ(sim.goodState(f.mid), State::S1);
  EXPECT_EQ(sim.goodState(f.out), State::S0);
  EXPECT_EQ(sim.faultyState(f.mid, 1), State::S0);
  EXPECT_EQ(sim.faultyState(f.out, 1), State::S1);
  EXPECT_GE(sim.recordCount(), 1u);  // divergence on out (mid is via stuck)
}

TEST(ConcurrentBasicTest, DivergenceDisappearsWhenFaultInvisible) {
  InvChain f;
  FaultList faults;
  faults.add(Fault::nodeStuckAt(f.net, f.mid, State::S0));
  ConcurrentFaultSimulator sim(f.net, faults);
  InputSetting s = f.rails();
  s.set(f.in, State::S1);  // good mid = 0 == stuck value
  sim.applySetting(s.span());
  EXPECT_EQ(sim.faultyState(f.out, 1), sim.goodState(f.out));
  EXPECT_EQ(sim.recordCount(), 0u) << "no records when circuits agree";
}

TEST(ConcurrentBasicTest, ObservationDetectsAndDrops) {
  InvChain f;
  FaultList faults;
  faults.add(Fault::nodeStuckAt(f.net, f.mid, State::S0));  // detectable at in=0
  faults.add(Fault::nodeStuckAt(f.net, f.out, State::S0));  // invisible at in=0
  ConcurrentFaultSimulator sim(f.net, faults);
  InputSetting s = f.rails();
  s.set(f.in, State::S0);
  sim.applySetting(s.span());
  EXPECT_EQ(sim.aliveCount(), 2u);
  const std::uint32_t newly = sim.observe({f.out}, 7);
  EXPECT_EQ(newly, 1u);
  EXPECT_FALSE(sim.alive(1));
  EXPECT_TRUE(sim.alive(2));
  EXPECT_EQ(sim.detectedAtPattern(0), 7);
  EXPECT_EQ(sim.detectedAtPattern(1), -1);
  EXPECT_EQ(sim.aliveCount(), 1u);
}

TEST(ConcurrentBasicTest, DroppedCircuitRecordsAreErased) {
  InvChain f;
  FaultList faults;
  faults.add(Fault::nodeStuckAt(f.net, f.mid, State::S0));
  ConcurrentFaultSimulator sim(f.net, faults);
  InputSetting s = f.rails();
  s.set(f.in, State::S0);
  sim.applySetting(s.span());
  EXPECT_GE(sim.recordCount(), 1u);
  sim.observe({f.out}, 0);
  EXPECT_EQ(sim.recordCount(), 0u);
  // After dropping, faultyState falls back to... the stuck table still
  // exists but the circuit is dead; callers check alive() first.
  EXPECT_FALSE(sim.alive(1));
}

TEST(ConcurrentBasicTest, StuckInputIgnoresStimulus) {
  InvChain f;
  FaultList faults;
  faults.add(Fault::nodeStuckAt(f.net, f.in, State::S0));  // frozen input
  ConcurrentFaultSimulator sim(f.net, faults);
  InputSetting s = f.rails();
  s.set(f.in, State::S1);
  sim.applySetting(s.span());
  EXPECT_EQ(sim.goodState(f.out), State::S1);
  EXPECT_EQ(sim.faultyState(f.in, 1), State::S0);
  EXPECT_EQ(sim.faultyState(f.mid, 1), State::S1);
  EXPECT_EQ(sim.faultyState(f.out, 1), State::S0);
}

TEST(ConcurrentBasicTest, TransistorStuckFaults) {
  // Pass transistor: in -pass(g)-> out.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId g = b.addInput("g");
  const NodeId out = b.addNode("out");
  const TransId t = cells.pass(g, d, out);
  const Network net = b.build();
  const NodeId vdd = net.nodeByName("Vdd");
  const NodeId gnd = net.nodeByName("Gnd");

  FaultList faults;
  faults.add(Fault::transistorStuckOpen(net, t));    // circuit 1
  faults.add(Fault::transistorStuckClosed(net, t));  // circuit 2
  ConcurrentFaultSimulator sim(net, faults);

  InputSetting s;
  s.set(vdd, State::S1);
  s.set(gnd, State::S0);
  s.set(g, State::S1);
  s.set(d, State::S1);
  sim.applySetting(s.span());
  EXPECT_EQ(sim.goodState(out), State::S1);
  EXPECT_EQ(sim.faultyState(out, 1), State::SX) << "stuck-open: never driven";
  EXPECT_EQ(sim.faultyState(out, 2), State::S1);

  InputSetting s2;
  s2.set(g, State::S0);
  s2.set(d, State::S0);
  sim.applySetting(s2.span());
  EXPECT_EQ(sim.goodState(out), State::S1) << "good holds charge";
  EXPECT_EQ(sim.faultyState(out, 2), State::S0) << "stuck-closed follows d";
}

TEST(ConcurrentBasicTest, ShortFaultDeviceActivation) {
  NetworkBuilder b;
  CmosCells cells(b);
  const NodeId i1 = b.addInput("i1");
  const NodeId i2 = b.addInput("i2");
  const NodeId n1 = cells.inverter(i1, "n1");
  const NodeId n2 = cells.inverter(i2, "n2");
  const TransId ft = b.addShortFaultDevice(n1, n2);
  const Network net = b.build();

  FaultList faults;
  faults.add(Fault::faultDeviceActive(net, ft));
  ConcurrentFaultSimulator sim(net, faults);

  InputSetting s;
  s.set(net.nodeByName("Vdd"), State::S1);
  s.set(net.nodeByName("Gnd"), State::S0);
  s.set(i1, State::S0);
  s.set(i2, State::S1);
  sim.applySetting(s.span());
  EXPECT_EQ(sim.goodState(n1), State::S1);
  EXPECT_EQ(sim.goodState(n2), State::S0);
  EXPECT_EQ(sim.faultyState(n1, 1), State::SX);
  EXPECT_EQ(sim.faultyState(n2, 1), State::SX);

  // Remove the disagreement: both inverters output 1, the short is benign.
  InputSetting s2;
  s2.set(i2, State::S0);
  sim.applySetting(s2.span());
  EXPECT_EQ(sim.faultyState(n1, 1), State::S1);
  EXPECT_EQ(sim.faultyState(n2, 1), State::S1);
  EXPECT_EQ(sim.recordCount(), 0u);
}

TEST(ConcurrentBasicTest, XMismatchIsPotentialUnderDefiniteOnlyPolicy) {
  // Pass transistor stuck-open: the faulty output floats at X while the good
  // circuit drives 1. A tester cannot distinguish X, so DefiniteOnly counts
  // a potential detection and keeps simulating.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId g = b.addInput("g");
  const NodeId out = b.addNode("out");
  const TransId t = cells.pass(g, d, out);
  const Network net = b.build();

  FaultList faults;
  faults.add(Fault::transistorStuckOpen(net, t));

  for (const DetectionPolicy policy :
       {DetectionPolicy::DefiniteOnly, DetectionPolicy::AnyDifference}) {
    FsimOptions opts;
    opts.policy = policy;
    ConcurrentFaultSimulator sim(net, faults, opts);
    InputSetting s;
    s.set(net.nodeByName("Vdd"), State::S1);
    s.set(net.nodeByName("Gnd"), State::S0);
    s.set(g, State::S1);
    s.set(d, State::S1);
    sim.applySetting(s.span());
    EXPECT_EQ(sim.goodState(out), State::S1);
    EXPECT_EQ(sim.faultyState(out, 1), State::SX);
    const std::uint32_t newly = sim.observe({out}, 0);
    if (policy == DetectionPolicy::DefiniteOnly) {
      EXPECT_EQ(newly, 0u);
      EXPECT_TRUE(sim.alive(1));
      EXPECT_GE(sim.potentialDetections(), 1u);
    } else {
      EXPECT_EQ(newly, 1u);
      EXPECT_FALSE(sim.alive(1));
    }
  }
}

TEST(ConcurrentBasicTest, StuckOpenPulldownPullsHigh) {
  InvChain f;
  FaultList faults;
  // Stuck-open the pull-down of the first inverter: with in=1 the faulty mid
  // floats (holds X from initialization).
  TransId pulldown;
  for (const TransId t : f.net.allTransistors()) {
    const auto& tr = f.net.transistor(t);
    if (tr.type == TransistorType::NType && tr.gate == f.in) pulldown = t;
  }
  ASSERT_TRUE(pulldown.valid());
  faults.add(Fault::transistorStuckOpen(f.net, pulldown));
  ConcurrentFaultSimulator sim(f.net, faults);
  InputSetting s = f.rails();
  s.set(f.in, State::S1);
  sim.applySetting(s.span());
  EXPECT_EQ(sim.goodState(f.mid), State::S0);
  EXPECT_EQ(sim.faultyState(f.mid, 1), State::S1) << "load pulls the floating node high";
  // Faulty out = 0, good out = 1: definite difference -> real detection.
  const std::uint32_t newly = sim.observe({f.out}, 0);
  EXPECT_EQ(newly, 1u);
}

TEST(ConcurrentBasicTest, NoDropModeKeepsSimulating) {
  InvChain f;
  FaultList faults;
  faults.add(Fault::nodeStuckAt(f.net, f.mid, State::S0));
  FsimOptions opts;
  opts.dropDetected = false;
  ConcurrentFaultSimulator sim(f.net, faults, opts);
  InputSetting s = f.rails();
  s.set(f.in, State::S0);
  sim.applySetting(s.span());
  EXPECT_EQ(sim.observe({f.out}, 3), 1u);
  EXPECT_TRUE(sim.alive(1)) << "circuit keeps simulating in no-drop mode";
  EXPECT_EQ(sim.detectedAtPattern(0), 3);
  // A later observation must not double-count.
  EXPECT_EQ(sim.observe({f.out}, 4), 0u);
}

TEST(ConcurrentBasicTest, RunProducesPerPatternStats) {
  InvChain f;
  FaultList faults;
  faults.add(Fault::nodeStuckAt(f.net, f.mid, State::S0));
  faults.add(Fault::nodeStuckAt(f.net, f.mid, State::S1));
  ConcurrentFaultSimulator sim(f.net, faults);

  TestSequence seq;
  seq.addOutput(f.out);
  seq.addPattern(f.drivePattern(State::S0));
  seq.addPattern(f.drivePattern(State::S1));
  const FaultSimResult res = sim.run(seq);

  ASSERT_EQ(res.perPattern.size(), 2u);
  EXPECT_EQ(res.numFaults, 2u);
  EXPECT_EQ(res.numDetected, 2u);  // SA0 seen at in=0, SA1 at in=1
  EXPECT_EQ(res.detectedAtPattern[0], 0);
  EXPECT_EQ(res.detectedAtPattern[1], 1);
  EXPECT_EQ(res.perPattern[0].cumulativeDetected, 1u);
  EXPECT_EQ(res.perPattern[1].cumulativeDetected, 2u);
  EXPECT_DOUBLE_EQ(res.coverage(), 1.0);
  EXPECT_GT(res.totalNodeEvals, 0u);
}

}  // namespace
}  // namespace fmossim
