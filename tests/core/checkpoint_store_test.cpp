// CheckpointStore + spilled checkpoints: shared-cache semantics (one
// recording per (network, sequence) across engines, rows and runs),
// cache invalidation on sequence changes, and bit-exact replay through the
// memory-budgeted temp-file window — including memoryBytes() staying within
// the budget while the window slides.
#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "core/checkpoint.hpp"
#include "core/checkpoint_store.hpp"
#include "core/concurrent_sim.hpp"
#include "gen/random_circuit.hpp"
#include "perf/bench_runner.hpp"

namespace fmossim {
namespace {

GeneratedWorkload makeWorkload(std::uint64_t seed, std::uint32_t patterns) {
  GenOptions gen;
  gen.seed = seed;
  gen.numNodes = 24;
  gen.numInputs = 6;
  gen.numFaults = 36;
  gen.numPatterns = patterns;
  return generateWorkload(gen);
}

void expectBitIdentical(const FaultSimResult& ref, const FaultSimResult& got,
                        const std::string& label) {
  EXPECT_EQ(got.detectedAtPattern, ref.detectedAtPattern) << label;
  EXPECT_EQ(got.numDetected, ref.numDetected) << label;
  EXPECT_EQ(got.potentialDetections, ref.potentialDetections) << label;
  EXPECT_EQ(got.finalGoodStates, ref.finalGoodStates) << label;
  EXPECT_EQ(got.totalNodeEvals, ref.totalNodeEvals) << label;
  EXPECT_EQ(perf::resultChecksum(got), perf::resultChecksum(ref)) << label;
}

TEST(CheckpointStoreTest, NetworkFingerprintIsStructuralNotIdentity) {
  const GeneratedWorkload a = makeWorkload(5, 8);
  const GeneratedWorkload b = makeWorkload(5, 8);   // same structure, new object
  const GeneratedWorkload c = makeWorkload(6, 8);   // different structure
  EXPECT_EQ(networkFingerprint(a.net), networkFingerprint(b.net));
  EXPECT_NE(networkFingerprint(a.net), networkFingerprint(c.net));
}

TEST(CheckpointStoreTest, AcquireRecordsOncePerNetworkAndSequence) {
  const GeneratedWorkload w = makeWorkload(7, 10);
  const GeneratedWorkload other = makeWorkload(8, 10);
  CheckpointStore store;
  FsimOptions opts;

  const auto first = store.acquire(w.net, w.seq, opts);
  EXPECT_EQ(store.recordings(), 1u);
  EXPECT_EQ(store.acquire(w.net, w.seq, opts), first);  // cache hit
  EXPECT_EQ(store.recordings(), 1u);

  const auto second = store.acquire(other.net, other.seq, opts);
  EXPECT_NE(second, first);
  EXPECT_EQ(store.recordings(), 2u);
  EXPECT_EQ(store.entries(), 2u);

  // A multi-entry cache: going back to the first workload is still a hit.
  EXPECT_EQ(store.acquire(w.net, w.seq, opts), first);
  EXPECT_EQ(store.recordings(), 2u);

  store.clear();
  EXPECT_EQ(store.entries(), 0u);
  // Outstanding references stay valid after clear(); a re-acquire records.
  EXPECT_EQ(first->numPatterns(), w.seq.size());
  store.acquire(w.net, w.seq, opts);
  EXPECT_EQ(store.recordings(), 3u);
}

// The cache-invalidation satellite: sequences A, B, A through one Engine.
// The store keys on the sequence fingerprint, so the third run must reuse
// A's recording — exactly 2 recordings total — and reproduce run 1's result
// bit for bit.
TEST(CheckpointStoreTest, SequenceAbaThroughOneEngineRecordsTwice) {
  const GeneratedWorkload w = makeWorkload(11, 14);
  TestSequence seqB;
  seqB.setOutputs(w.seq.outputs());
  for (std::uint32_t pi = 0; pi + 2 < w.seq.size(); ++pi) {
    seqB.addPattern(w.seq[pi]);
  }

  auto store = std::make_shared<CheckpointStore>();
  EngineOptions opts;
  opts.jobs = 4;
  opts.checkpointStore = store;
  Engine engine(w.net, w.faults, opts);

  const FaultSimResult a1 = engine.run(w.seq);
  EXPECT_EQ(store->recordings(), 1u);
  const FaultSimResult b = engine.run(seqB);
  EXPECT_EQ(store->recordings(), 2u);
  const FaultSimResult a2 = engine.run(w.seq);
  EXPECT_EQ(store->recordings(), 2u) << "A's checkpoint must survive B";
  ASSERT_EQ(b.perPattern.size(), seqB.size());
  expectBitIdentical(a1, a2, "run A #1 vs run A #2");
}

// Two engines sharing one store — the BenchRunner sharded-2/sharded-4 row
// situation, with each Engine owning its private *copy* of the network —
// must record once and agree bit for bit.
TEST(CheckpointStoreTest, SharedStoreAcrossEnginesRecordsOnce) {
  const GeneratedWorkload w = makeWorkload(13, 16);
  auto store = std::make_shared<CheckpointStore>();

  FaultSimResult results[2];
  const unsigned jobsOf[2] = {2, 4};
  for (int i = 0; i < 2; ++i) {
    EngineOptions opts;
    opts.jobs = jobsOf[i];
    opts.checkpointStore = store;
    Engine engine(w.net, w.faults, opts);
    results[i] = engine.run(w.seq);
  }
  EXPECT_EQ(store->recordings(), 1u);
  expectBitIdentical(results[0], results[1], "jobs=2 vs jobs=4, shared store");
}

// Budgeted recording spills the trace and replays it bit-identically
// through the sliding window, with memoryBytes() inside the budget both
// right after recording and after a full replay has slid the window across
// the whole file.
TEST(CheckpointStoreTest, SpilledReplayIsBitExactWithinBudget) {
  const GeneratedWorkload w = makeWorkload(17, 700);
  FsimOptions opts;
  opts.policy = DetectionPolicy::AnyDifference;

  const GoodMachineCheckpoint unbounded =
      GoodMachineCheckpoint::record(w.net, w.seq, opts);
  ASSERT_FALSE(unbounded.spilled());
  const std::size_t budget = unbounded.memoryBytes() / 4;
  ASSERT_GT(budget, 0u);

  const GoodMachineCheckpoint spilledCk =
      GoodMachineCheckpoint::record(w.net, w.seq, opts, budget);
  ASSERT_TRUE(spilledCk.spilled());
  EXPECT_EQ(spilledCk.budgetBytes(), budget);
  EXPECT_LE(spilledCk.memoryBytes(), budget) << "resident after recording";
  EXPECT_EQ(spilledCk.seqFingerprint(), unbounded.seqFingerprint());
  EXPECT_EQ(spilledCk.numSettles(), unbounded.numSettles());
  EXPECT_EQ(spilledCk.finalGoodStates(), unbounded.finalGoodStates());
  EXPECT_EQ(spilledCk.perPatternGoodEvals(), unbounded.perPatternGoodEvals());

  // Replays from the spilled and the in-memory trace must agree with each
  // other and with a self-simulating engine, field by field.
  ConcurrentFaultSimulator plain(w.net, w.faults, opts);
  const FaultSimResult ref = plain.run(w.seq);
  ConcurrentFaultSimulator fromMemory(w.net, w.faults, opts, nullptr,
                                      &unbounded);
  const FaultSimResult memResult = fromMemory.run(w.seq);
  ConcurrentFaultSimulator fromSpill(w.net, w.faults, opts, nullptr,
                                     &spilledCk);
  const FaultSimResult spillResult = fromSpill.run(w.seq);

  expectBitIdentical(memResult, spillResult, "in-memory vs spilled replay");
  EXPECT_EQ(spillResult.detectedAtPattern, ref.detectedAtPattern);
  EXPECT_EQ(spillResult.finalGoodStates, ref.finalGoodStates);
  EXPECT_EQ(spilledCk.totalGoodEvals() + spillResult.totalNodeEvals,
            ref.totalNodeEvals);
  EXPECT_LE(spilledCk.memoryBytes(), budget) << "resident after replay";

  // The copy-on-write snapshot path streams the spilled blocks too.
  for (const std::uint32_t pi :
       {0u, w.seq.size() / 2, w.seq.size() - 1}) {
    EXPECT_EQ(spilledCk.goodStateAfterPattern(pi),
              unbounded.goodStateAfterPattern(pi))
        << "pattern " << pi;
  }
}

// The store-eviction satellite: a store whose budget is forced below the
// unbounded trace size makes every sharded run replay through the spill
// window; results (checksums + nodeEvals) must match the unbounded jobs=1
// run exactly.
TEST(CheckpointStoreTest, BudgetedStoreMatchesUnboundedRun) {
  const GeneratedWorkload w = makeWorkload(19, 500);

  EngineOptions plain;
  plain.policy = DetectionPolicy::AnyDifference;
  Engine reference(w.net, w.faults, plain);
  const FaultSimResult ref = reference.run(w.seq);
  ASSERT_GT(ref.numDetected, 0u);

  FsimOptions fopts;
  fopts.policy = DetectionPolicy::AnyDifference;
  const std::size_t traceBytes =
      GoodMachineCheckpoint::record(w.net, w.seq, fopts).memoryBytes();

  CheckpointStore::Options sopts;
  sopts.budgetBytes = traceBytes / 3;  // force the spill + window path
  auto store = std::make_shared<CheckpointStore>(sopts);
  for (const unsigned jobs : {2u, 4u}) {
    EngineOptions opts = plain;
    opts.jobs = jobs;
    opts.checkpointStore = store;
    Engine engine(w.net, w.faults, opts);
    const FaultSimResult got = engine.run(w.seq);
    expectBitIdentical(ref, got,
                       "budgeted jobs=" + std::to_string(jobs) +
                           " vs unbounded jobs=1");
    ASSERT_NE(store->memoryBytes(), 0u);
    EXPECT_LE(store->memoryBytes(), sopts.budgetBytes);
  }
  EXPECT_EQ(store->recordings(), 1u);
}

// Wall-clock vs aggregate-CPU timing split: both populated, CPU >= each
// batch's share, and the unsharded engine reports them equal.
TEST(CheckpointStoreTest, CpuAndWallTimeAreDistinctFields) {
  const GeneratedWorkload w = makeWorkload(23, 20);
  EngineOptions opts;
  Engine single(w.net, w.faults, opts);
  const FaultSimResult one = single.run(w.seq);
  EXPECT_DOUBLE_EQ(one.totalSeconds, one.totalCpuSeconds);

  opts.jobs = 4;
  Engine sharded(w.net, w.faults, opts);
  const FaultSimResult many = sharded.run(w.seq);
  EXPECT_GT(many.totalSeconds, 0.0);
  // Batch engine time plus the recording is counted in CPU seconds; the
  // wall clock of the whole run bounds neither from above in general, but
  // CPU time can never be zero when work ran.
  EXPECT_GT(many.totalCpuSeconds, 0.0);
}

}  // namespace
}  // namespace fmossim
