// StateTable: the per-node <circuit, state> record lists of paper §4.
#include "core/state_table.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "switch/builder.hpp"
#include "util/rng.hpp"

namespace fmossim {
namespace {

Network twoNodeNet() {
  NetworkBuilder b;
  b.addNode("a");
  b.addNode("b");
  return b.build();
}

TEST(StateTableTest, GoodStateDefaultsToX) {
  const Network net = twoNodeNet();
  StateTable t(net);
  EXPECT_EQ(t.good(NodeId(0)), State::SX);
  t.setGood(NodeId(0), State::S1);
  EXPECT_EQ(t.good(NodeId(0)), State::S1);
}

TEST(StateTableTest, StateOfFallsBackToGood) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S1);
  EXPECT_EQ(t.stateOf(NodeId(0), 5), State::S1);
  EXPECT_FALSE(t.hasRecord(NodeId(0), 5));
}

TEST(StateTableTest, ReconcileCreatesRecordOnlyOnDivergence) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S1);
  EXPECT_FALSE(t.reconcile(NodeId(0), 3, State::S1).diverges);  // agrees
  EXPECT_EQ(t.totalRecords(), 0u);
  EXPECT_TRUE(t.reconcile(NodeId(0), 3, State::S0).inserted);  // diverges
  EXPECT_EQ(t.totalRecords(), 1u);
  EXPECT_EQ(t.stateOf(NodeId(0), 3), State::S0);
  // Re-convergence removes the record.
  EXPECT_TRUE(t.reconcile(NodeId(0), 3, State::S1).erased);
  EXPECT_EQ(t.totalRecords(), 0u);
  EXPECT_EQ(t.stateOf(NodeId(0), 3), State::S1);
}

TEST(StateTableTest, RecordsStaySortedByCircuit) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S0);
  for (const CircuitId c : {7u, 2u, 9u, 4u, 1u}) {
    t.reconcile(NodeId(0), c, State::S1);
  }
  const auto& recs = t.records(NodeId(0));
  ASSERT_EQ(recs.size(), 5u);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LT(recs[i - 1].circuit, recs[i].circuit);
  }
}

TEST(StateTableTest, RecordsAreIndependentAcrossCircuitsAndNodes) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S0);
  t.setGood(NodeId(1), State::S1);
  t.reconcile(NodeId(0), 1, State::S1);
  t.reconcile(NodeId(0), 2, State::SX);
  t.reconcile(NodeId(1), 1, State::S0);
  EXPECT_EQ(t.stateOf(NodeId(0), 1), State::S1);
  EXPECT_EQ(t.stateOf(NodeId(0), 2), State::SX);
  EXPECT_EQ(t.stateOf(NodeId(0), 3), State::S0);
  EXPECT_EQ(t.stateOf(NodeId(1), 1), State::S0);
  EXPECT_EQ(t.stateOf(NodeId(1), 2), State::S1);
  EXPECT_EQ(t.totalRecords(), 3u);
}

TEST(StateTableTest, GoodChangeFlipsDivergenceMeaning) {
  // A record whose value equals the *new* good state is stale but harmless:
  // stateOf still answers correctly, and reconcile cleans it up.
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S0);
  t.reconcile(NodeId(0), 1, State::S1);
  t.setGood(NodeId(0), State::S1);  // good moves to the faulty value
  EXPECT_EQ(t.stateOf(NodeId(0), 1), State::S1);
  EXPECT_TRUE(t.reconcile(NodeId(0), 1, State::S1).erased);
  EXPECT_EQ(t.totalRecords(), 0u);
}

TEST(StateTableTest, EraseIsIdempotent) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S0);
  t.reconcile(NodeId(0), 1, State::S1);
  t.erase(NodeId(0), 1);
  EXPECT_EQ(t.totalRecords(), 0u);
  t.erase(NodeId(0), 1);  // no-op
  EXPECT_EQ(t.totalRecords(), 0u);
  EXPECT_EQ(t.stateOf(NodeId(0), 1), State::S0);
}

TEST(StateTableTest, FindRecordReturnsNullWhenAbsent) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.reconcile(NodeId(0), 2, State::S1);
  EXPECT_NE(t.findRecord(NodeId(0), 2), nullptr);
  EXPECT_EQ(t.findRecord(NodeId(0), 1), nullptr);
  EXPECT_EQ(t.findRecord(NodeId(0), 3), nullptr);
  EXPECT_EQ(t.findRecord(NodeId(1), 2), nullptr);
}

// --- arena parity ----------------------------------------------------------
//
// The record blocks live in a shared arena with power-of-two capacity
// classes and free-list recycling (see state_table.hpp). This drives a long
// random insert/update/lookup/delete sequence against a straightforward
// reference model (one std::map per node) and checks full behavioural
// parity after every operation batch — the arena must be an invisible
// storage optimization.
TEST(StateTableArenaTest, RandomOpsMatchReferenceModel) {
  NetworkBuilder b;
  constexpr unsigned kNodes = 8;
  for (unsigned i = 0; i < kNodes; ++i) b.addNode("n" + std::to_string(i));
  const Network net = b.build();
  StateTable t(net);
  std::vector<std::map<CircuitId, State>> model(kNodes);
  std::vector<State> goodModel(kNodes, State::SX);

  Rng rng(20260726);
  const auto randomState = [&] {
    const std::uint32_t r = rng.below(3);
    return r == 0 ? State::S0 : r == 1 ? State::S1 : State::SX;
  };

  for (int step = 0; step < 20000; ++step) {
    const NodeId n(rng.below(kNodes));
    const CircuitId c = 1 + rng.below(64);  // dense circuit space: collisions
    switch (rng.below(4)) {
      case 0: {  // setGood: changes the divergence meaning of records
        const State g = randomState();
        t.setGood(n, g);
        goodModel[n.value] = g;
        break;
      }
      case 1:
      case 2: {  // reconcile
        const State v = randomState();
        const StateTable::Reconciled rec = t.reconcile(n, c, v);
        auto& m = model[n.value];
        const bool present = m.count(c) != 0;
        if (v == goodModel[n.value]) {
          EXPECT_FALSE(rec.diverges);
          EXPECT_EQ(rec.erased, present);
          m.erase(c);
        } else {
          EXPECT_TRUE(rec.diverges);
          EXPECT_EQ(rec.inserted, !present);
          m[c] = v;
        }
        break;
      }
      case 3: {  // erase
        const bool had = model[n.value].count(c) != 0;
        EXPECT_EQ(t.erase(n, c), had);
        model[n.value].erase(c);
        break;
      }
    }

    if (step % 251 == 0 || step > 19900) {
      // Full-table parity sweep.
      std::uint64_t total = 0;
      for (unsigned ni = 0; ni < kNodes; ++ni) {
        const NodeId node(ni);
        const auto& m = model[ni];
        total += m.size();
        const std::span<const StateRecord> recs = t.records(node);
        ASSERT_EQ(recs.size(), m.size());
        std::size_t k = 0;
        for (const auto& [circuit, value] : m) {  // map iterates sorted
          EXPECT_EQ(recs[k].circuit, circuit);
          EXPECT_EQ(recs[k].value, value);
          EXPECT_TRUE(t.hasRecord(node, circuit));
          EXPECT_EQ(t.stateOf(node, circuit), value);
          ++k;
        }
        // Absent circuits fall back to the good state.
        for (CircuitId probe = 1; probe <= 64; ++probe) {
          if (m.count(probe) == 0) {
            EXPECT_FALSE(t.hasRecord(node, probe));
            EXPECT_EQ(t.stateOf(node, probe), goodModel[ni]);
          }
        }
      }
      EXPECT_EQ(t.totalRecords(), total);
    }
  }
  // The arena recycles blocks: after 20k ops over 8 nodes it must stay far
  // below one-slot-per-operation growth.
  EXPECT_LT(t.arenaSize(), 4096u);
}

}  // namespace
}  // namespace fmossim
