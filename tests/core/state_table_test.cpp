// StateTable: the per-node <circuit, state> record lists of paper §4.
#include "core/state_table.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "switch/builder.hpp"
#include "util/rng.hpp"

namespace fmossim {
namespace {

Network twoNodeNet() {
  NetworkBuilder b;
  b.addNode("a");
  b.addNode("b");
  return b.build();
}

TEST(StateTableTest, GoodStateDefaultsToX) {
  const Network net = twoNodeNet();
  StateTable t(net);
  EXPECT_EQ(t.good(NodeId(0)), State::SX);
  t.setGood(NodeId(0), State::S1);
  EXPECT_EQ(t.good(NodeId(0)), State::S1);
}

TEST(StateTableTest, StateOfFallsBackToGood) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S1);
  EXPECT_EQ(t.stateOf(NodeId(0), 5), State::S1);
  EXPECT_FALSE(t.hasRecord(NodeId(0), 5));
}

TEST(StateTableTest, ReconcileCreatesRecordOnlyOnDivergence) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S1);
  EXPECT_FALSE(t.reconcile(NodeId(0), 3, State::S1).diverges);  // agrees
  EXPECT_EQ(t.totalRecords(), 0u);
  EXPECT_TRUE(t.reconcile(NodeId(0), 3, State::S0).inserted);  // diverges
  EXPECT_EQ(t.totalRecords(), 1u);
  EXPECT_EQ(t.stateOf(NodeId(0), 3), State::S0);
  // Re-convergence removes the record.
  EXPECT_TRUE(t.reconcile(NodeId(0), 3, State::S1).erased);
  EXPECT_EQ(t.totalRecords(), 0u);
  EXPECT_EQ(t.stateOf(NodeId(0), 3), State::S1);
}

TEST(StateTableTest, RecordsStaySortedByCircuit) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S0);
  for (const CircuitId c : {7u, 2u, 9u, 4u, 1u}) {
    t.reconcile(NodeId(0), c, State::S1);
  }
  std::vector<CircuitId> circuits;
  t.forEachRecord(NodeId(0), [&](CircuitId c, State v) {
    circuits.push_back(c);
    EXPECT_EQ(v, State::S1);
  });
  ASSERT_EQ(circuits.size(), 5u);
  for (std::size_t i = 1; i < circuits.size(); ++i) {
    EXPECT_LT(circuits[i - 1], circuits[i]);
  }
}

TEST(StateTableTest, RecordsAreIndependentAcrossCircuitsAndNodes) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S0);
  t.setGood(NodeId(1), State::S1);
  t.reconcile(NodeId(0), 1, State::S1);
  t.reconcile(NodeId(0), 2, State::SX);
  t.reconcile(NodeId(1), 1, State::S0);
  EXPECT_EQ(t.stateOf(NodeId(0), 1), State::S1);
  EXPECT_EQ(t.stateOf(NodeId(0), 2), State::SX);
  EXPECT_EQ(t.stateOf(NodeId(0), 3), State::S0);
  EXPECT_EQ(t.stateOf(NodeId(1), 1), State::S0);
  EXPECT_EQ(t.stateOf(NodeId(1), 2), State::S1);
  EXPECT_EQ(t.totalRecords(), 3u);
}

TEST(StateTableTest, GoodChangeFlipsDivergenceMeaning) {
  // A record whose value equals the *new* good state is stale but harmless:
  // stateOf still answers correctly, and reconcile cleans it up.
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S0);
  t.reconcile(NodeId(0), 1, State::S1);
  t.setGood(NodeId(0), State::S1);  // good moves to the faulty value
  EXPECT_EQ(t.stateOf(NodeId(0), 1), State::S1);
  EXPECT_TRUE(t.reconcile(NodeId(0), 1, State::S1).erased);
  EXPECT_EQ(t.totalRecords(), 0u);
}

TEST(StateTableTest, EraseIsIdempotent) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S0);
  t.reconcile(NodeId(0), 1, State::S1);
  t.erase(NodeId(0), 1);
  EXPECT_EQ(t.totalRecords(), 0u);
  t.erase(NodeId(0), 1);  // no-op
  EXPECT_EQ(t.totalRecords(), 0u);
  EXPECT_EQ(t.stateOf(NodeId(0), 1), State::S0);
}

TEST(StateTableTest, LookupReportsDivergenceOnlyWhenRecorded) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.reconcile(NodeId(0), 2, State::S1);
  EXPECT_TRUE(t.lookup(NodeId(0), 2).diverges);
  EXPECT_EQ(t.lookup(NodeId(0), 2).value, State::S1);
  EXPECT_FALSE(t.lookup(NodeId(0), 1).diverges);
  EXPECT_FALSE(t.lookup(NodeId(0), 3).diverges);
  EXPECT_FALSE(t.lookup(NodeId(1), 2).diverges);
}

// --- lane encoding ---------------------------------------------------------
//
// The table packs 32 circuits' ternary states into one 64-bit word (2 bits
// per lane). These tests pin the SWAR helpers and the word-wide operations
// (commitLanes / matchLanes) to a straightforward per-circuit reference.

TEST(StateTableLanesTest, SwarHelpersRoundTrip) {
  // spread2/compressEven are inverse Morton shuffles.
  for (const std::uint32_t mask :
       {0u, 1u, 0x80000000u, 0xAAAAAAAAu, 0x12345678u, 0xFFFFFFFFu}) {
    const std::uint64_t field = lanes::spread2(mask);
    EXPECT_EQ(lanes::compressEven(field), mask);
    // Both bits of every selected lane are set, no others.
    EXPECT_EQ(field & ~(lanes::spread2(mask)), 0u);
    for (std::uint32_t l = 0; l < lanes::kLaneCount; ++l) {
      const std::uint64_t lane = (field >> (2 * l)) & 3u;
      EXPECT_EQ(lane, ((mask >> l) & 1u) ? 3u : 0u);
    }
  }
  // splat2 puts the state value in every lane; laneState reads it back.
  for (const State v : {State::S0, State::S1, State::SX}) {
    const std::uint64_t bits = lanes::splat2(v);
    for (std::uint32_t l = 0; l < lanes::kLaneCount; ++l) {
      EXPECT_EQ(lanes::laneState(bits, l), v);
    }
  }
}

TEST(StateTableLanesTest, EqLanesMatchesPerLaneComparison) {
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t bits = 0;
    for (std::uint32_t l = 0; l < lanes::kLaneCount; ++l) {
      bits |= static_cast<std::uint64_t>(rng.below(3)) << (2 * l);
    }
    for (const State v : {State::S0, State::S1, State::SX}) {
      const std::uint32_t got = lanes::eqLanes(bits, v);
      for (std::uint32_t l = 0; l < lanes::kLaneCount; ++l) {
        const bool expect = lanes::laneState(bits, l) == v;
        EXPECT_EQ(((got >> l) & 1u) != 0, expect) << "lane " << l;
      }
    }
  }
}

TEST(StateTableLanesTest, LaneIndexingCrossesGroupBoundaries) {
  EXPECT_EQ(lanes::groupOf(1), 0u);
  EXPECT_EQ(lanes::laneOf(1), 0u);
  EXPECT_EQ(lanes::groupOf(32), 0u);
  EXPECT_EQ(lanes::laneOf(32), 31u);
  EXPECT_EQ(lanes::groupOf(33), 1u);
  EXPECT_EQ(lanes::laneOf(33), 0u);
  for (CircuitId c = 1; c <= 100; ++c) {
    EXPECT_EQ(lanes::circuitAt(lanes::groupOf(c), lanes::laneOf(c)), c);
  }
  // Records for lane-boundary circuits stay independent.
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S0);
  for (const CircuitId c : {1u, 32u, 33u, 64u, 65u}) {
    t.reconcile(NodeId(0), c, c % 2 ? State::S1 : State::SX);
  }
  EXPECT_EQ(t.totalRecords(), 5u);
  for (const CircuitId c : {1u, 32u, 33u, 64u, 65u}) {
    EXPECT_EQ(t.stateOf(NodeId(0), c), c % 2 ? State::S1 : State::SX);
  }
  EXPECT_FALSE(t.hasRecord(NodeId(0), 2));
  EXPECT_FALSE(t.hasRecord(NodeId(0), 31));
  EXPECT_FALSE(t.hasRecord(NodeId(0), 34));
}

TEST(StateTableLanesTest, CommitLanesEqualsPerCircuitReconcile) {
  const Network net = twoNodeNet();
  Rng rng(456);
  const auto randomState = [&] {
    const std::uint32_t r = rng.below(3);
    return r == 0 ? State::S0 : r == 1 ? State::S1 : State::SX;
  };
  for (int trial = 0; trial < 300; ++trial) {
    StateTable word(net);
    StateTable scalar(net);
    const State g = randomState();
    word.setGood(NodeId(0), g);
    scalar.setGood(NodeId(0), g);
    // Seed both tables identically with per-circuit reconciles.
    for (int k = 0; k < 8; ++k) {
      const CircuitId c = 1 + rng.below(64);
      const State v = randomState();
      word.reconcile(NodeId(0), c, v);
      scalar.reconcile(NodeId(0), c, v);
    }
    // One word-wide commit vs the per-circuit loop.
    const std::uint32_t group = rng.below(2);
    const std::uint32_t mask = rng.next() & 0xFFFFFFFFu;
    const State v = randomState();
    const StateTable::LaneCommit lc =
        word.commitLanes(NodeId(0), group, mask, v);
    std::uint32_t insertedRef = 0;
    std::uint32_t erasedRef = 0;
    for (std::uint32_t l = 0; l < lanes::kLaneCount; ++l) {
      if (((mask >> l) & 1u) == 0) continue;
      const StateTable::Reconciled r =
          scalar.reconcile(NodeId(0), lanes::circuitAt(group, l), v);
      if (r.inserted) insertedRef |= 1u << l;
      if (r.erased) erasedRef |= 1u << l;
    }
    EXPECT_EQ(lc.insertedMask, insertedRef);
    EXPECT_EQ(lc.erasedMask, erasedRef);
    EXPECT_EQ(word.totalRecords(), scalar.totalRecords());
    for (CircuitId c = 1; c <= 64; ++c) {
      EXPECT_EQ(word.stateOf(NodeId(0), c), scalar.stateOf(NodeId(0), c));
      EXPECT_EQ(word.hasRecord(NodeId(0), c), scalar.hasRecord(NodeId(0), c));
    }
  }
}

TEST(StateTableLanesTest, MatchLanesEqualsPerCircuitComparison) {
  const Network net = twoNodeNet();
  Rng rng(789);
  const auto randomState = [&] {
    const std::uint32_t r = rng.below(3);
    return r == 0 ? State::S0 : r == 1 ? State::S1 : State::SX;
  };
  for (int trial = 0; trial < 300; ++trial) {
    StateTable t(net);
    t.setGood(NodeId(0), randomState());
    for (int k = 0; k < 10; ++k) {
      t.reconcile(NodeId(0), 1 + rng.below(64), randomState());
    }
    const std::uint32_t group = rng.below(2);
    const std::uint32_t cand = rng.next() & 0xFFFFFFFFu;
    const State v = randomState();
    // Background is the caller's fallback for recordless lanes and may
    // differ from the table's current good state (pre-phase lens).
    const State bg = randomState();
    const std::uint32_t got = t.matchLanes(NodeId(0), group, cand, v, bg);
    for (std::uint32_t l = 0; l < lanes::kLaneCount; ++l) {
      const CircuitId c = lanes::circuitAt(group, l);
      const StateTable::Lookup r = t.lookup(NodeId(0), c);
      const State observed = r.diverges ? r.value : bg;
      const bool expect = ((cand >> l) & 1u) != 0 && observed == v;
      EXPECT_EQ(((got >> l) & 1u) != 0, expect) << "lane " << l;
    }
  }
}

// --- arena parity ----------------------------------------------------------
//
// The record blocks live in a shared arena with power-of-two capacity
// classes and free-list recycling (see state_table.hpp). This drives a long
// random insert/update/lookup/delete sequence against a straightforward
// reference model (one std::map per node) and checks full behavioural
// parity after every operation batch — the arena must be an invisible
// storage optimization.
TEST(StateTableArenaTest, RandomOpsMatchReferenceModel) {
  NetworkBuilder b;
  constexpr unsigned kNodes = 8;
  for (unsigned i = 0; i < kNodes; ++i) b.addNode("n" + std::to_string(i));
  const Network net = b.build();
  StateTable t(net);
  std::vector<std::map<CircuitId, State>> model(kNodes);
  std::vector<State> goodModel(kNodes, State::SX);

  Rng rng(20260726);
  const auto randomState = [&] {
    const std::uint32_t r = rng.below(3);
    return r == 0 ? State::S0 : r == 1 ? State::S1 : State::SX;
  };

  for (int step = 0; step < 20000; ++step) {
    const NodeId n(rng.below(kNodes));
    const CircuitId c = 1 + rng.below(64);  // dense circuit space: collisions
    switch (rng.below(4)) {
      case 0: {  // setGood: changes the divergence meaning of records
        const State g = randomState();
        t.setGood(n, g);
        goodModel[n.value] = g;
        break;
      }
      case 1:
      case 2: {  // reconcile
        const State v = randomState();
        const StateTable::Reconciled rec = t.reconcile(n, c, v);
        auto& m = model[n.value];
        const bool present = m.count(c) != 0;
        if (v == goodModel[n.value]) {
          EXPECT_FALSE(rec.diverges);
          EXPECT_EQ(rec.erased, present);
          m.erase(c);
        } else {
          EXPECT_TRUE(rec.diverges);
          EXPECT_EQ(rec.inserted, !present);
          m[c] = v;
        }
        break;
      }
      case 3: {  // erase
        const bool had = model[n.value].count(c) != 0;
        EXPECT_EQ(t.erase(n, c), had);
        model[n.value].erase(c);
        break;
      }
    }

    if (step % 251 == 0 || step > 19900) {
      // Full-table parity sweep.
      std::uint64_t total = 0;
      for (unsigned ni = 0; ni < kNodes; ++ni) {
        const NodeId node(ni);
        const auto& m = model[ni];
        total += m.size();
        std::vector<std::pair<CircuitId, State>> recs;
        t.forEachRecord(node,
                        [&](CircuitId c, State v) { recs.emplace_back(c, v); });
        ASSERT_EQ(recs.size(), m.size());
        ASSERT_EQ(t.recordCountAt(node), m.size());
        std::size_t k = 0;
        for (const auto& [circuit, value] : m) {  // map iterates sorted
          EXPECT_EQ(recs[k].first, circuit);
          EXPECT_EQ(recs[k].second, value);
          EXPECT_TRUE(t.hasRecord(node, circuit));
          EXPECT_EQ(t.stateOf(node, circuit), value);
          ++k;
        }
        // Absent circuits fall back to the good state.
        for (CircuitId probe = 1; probe <= 64; ++probe) {
          if (m.count(probe) == 0) {
            EXPECT_FALSE(t.hasRecord(node, probe));
            EXPECT_EQ(t.stateOf(node, probe), goodModel[ni]);
          }
        }
      }
      EXPECT_EQ(t.totalRecords(), total);
    }
  }
  // The arena recycles blocks: after 20k ops over 8 nodes it must stay far
  // below one-slot-per-operation growth.
  EXPECT_LT(t.arenaSize(), 4096u);
}

}  // namespace
}  // namespace fmossim
