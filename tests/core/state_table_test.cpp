// StateTable: the per-node <circuit, state> record lists of paper §4.
#include "core/state_table.hpp"

#include <gtest/gtest.h>

#include "switch/builder.hpp"

namespace fmossim {
namespace {

Network twoNodeNet() {
  NetworkBuilder b;
  b.addNode("a");
  b.addNode("b");
  return b.build();
}

TEST(StateTableTest, GoodStateDefaultsToX) {
  const Network net = twoNodeNet();
  StateTable t(net);
  EXPECT_EQ(t.good(NodeId(0)), State::SX);
  t.setGood(NodeId(0), State::S1);
  EXPECT_EQ(t.good(NodeId(0)), State::S1);
}

TEST(StateTableTest, StateOfFallsBackToGood) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S1);
  EXPECT_EQ(t.stateOf(NodeId(0), 5), State::S1);
  EXPECT_FALSE(t.hasRecord(NodeId(0), 5));
}

TEST(StateTableTest, ReconcileCreatesRecordOnlyOnDivergence) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S1);
  EXPECT_FALSE(t.reconcile(NodeId(0), 3, State::S1));  // agrees: no record
  EXPECT_EQ(t.totalRecords(), 0u);
  EXPECT_TRUE(t.reconcile(NodeId(0), 3, State::S0));   // diverges
  EXPECT_EQ(t.totalRecords(), 1u);
  EXPECT_EQ(t.stateOf(NodeId(0), 3), State::S0);
  // Re-convergence removes the record.
  EXPECT_FALSE(t.reconcile(NodeId(0), 3, State::S1));
  EXPECT_EQ(t.totalRecords(), 0u);
  EXPECT_EQ(t.stateOf(NodeId(0), 3), State::S1);
}

TEST(StateTableTest, RecordsStaySortedByCircuit) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S0);
  for (const CircuitId c : {7u, 2u, 9u, 4u, 1u}) {
    t.reconcile(NodeId(0), c, State::S1);
  }
  const auto& recs = t.records(NodeId(0));
  ASSERT_EQ(recs.size(), 5u);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LT(recs[i - 1].circuit, recs[i].circuit);
  }
}

TEST(StateTableTest, RecordsAreIndependentAcrossCircuitsAndNodes) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S0);
  t.setGood(NodeId(1), State::S1);
  t.reconcile(NodeId(0), 1, State::S1);
  t.reconcile(NodeId(0), 2, State::SX);
  t.reconcile(NodeId(1), 1, State::S0);
  EXPECT_EQ(t.stateOf(NodeId(0), 1), State::S1);
  EXPECT_EQ(t.stateOf(NodeId(0), 2), State::SX);
  EXPECT_EQ(t.stateOf(NodeId(0), 3), State::S0);
  EXPECT_EQ(t.stateOf(NodeId(1), 1), State::S0);
  EXPECT_EQ(t.stateOf(NodeId(1), 2), State::S1);
  EXPECT_EQ(t.totalRecords(), 3u);
}

TEST(StateTableTest, GoodChangeFlipsDivergenceMeaning) {
  // A record whose value equals the *new* good state is stale but harmless:
  // stateOf still answers correctly, and reconcile cleans it up.
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S0);
  t.reconcile(NodeId(0), 1, State::S1);
  t.setGood(NodeId(0), State::S1);  // good moves to the faulty value
  EXPECT_EQ(t.stateOf(NodeId(0), 1), State::S1);
  EXPECT_FALSE(t.reconcile(NodeId(0), 1, State::S1));
  EXPECT_EQ(t.totalRecords(), 0u);
}

TEST(StateTableTest, EraseIsIdempotent) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.setGood(NodeId(0), State::S0);
  t.reconcile(NodeId(0), 1, State::S1);
  t.erase(NodeId(0), 1);
  EXPECT_EQ(t.totalRecords(), 0u);
  t.erase(NodeId(0), 1);  // no-op
  EXPECT_EQ(t.totalRecords(), 0u);
  EXPECT_EQ(t.stateOf(NodeId(0), 1), State::S0);
}

TEST(StateTableTest, FindRecordReturnsNullWhenAbsent) {
  const Network net = twoNodeNet();
  StateTable t(net);
  t.reconcile(NodeId(0), 2, State::S1);
  EXPECT_NE(t.findRecord(NodeId(0), 2), nullptr);
  EXPECT_EQ(t.findRecord(NodeId(0), 1), nullptr);
  EXPECT_EQ(t.findRecord(NodeId(0), 3), nullptr);
  EXPECT_EQ(t.findRecord(NodeId(1), 2), nullptr);
}

}  // namespace
}  // namespace fmossim
