// Good-machine checkpoint: recording, replay equivalence, snapshots.
//
// The core property: an engine replaying a checkpoint produces a result
// bit-identical — including the deterministic work counter restricted to
// faulty circuits — to a self-simulating engine over the same faults, for
// every field the differential oracle compares.
#include <gtest/gtest.h>

#include "circuits/ram.hpp"
#include "core/checkpoint.hpp"
#include "core/concurrent_sim.hpp"
#include "faults/sampling.hpp"
#include "faults/universe.hpp"
#include "gen/random_circuit.hpp"
#include "patterns/marching.hpp"
#include "util/rng.hpp"

namespace fmossim {
namespace {

struct RamWorkload {
  RamCircuit ram;
  FaultList faults;
  TestSequence seq;
};

RamWorkload smallRamWorkload() {
  RamWorkload w{buildRam(RamConfig{4, 4}), {}, {}};
  FaultList universe = allStorageNodeStuckFaults(w.ram.net);
  Rng rng(7);
  w.faults = sampleFaults(universe, 24, rng);
  w.seq = ramControlTests(w.ram);
  w.seq.append(ramRowMarch(w.ram));
  return w;
}

TEST(CheckpointTest, RecordIsDeterministic) {
  const RamWorkload w = smallRamWorkload();
  FsimOptions opts;
  const GoodMachineCheckpoint a =
      GoodMachineCheckpoint::record(w.ram.net, w.seq, opts);
  const GoodMachineCheckpoint b =
      GoodMachineCheckpoint::record(w.ram.net, w.seq, opts);
  EXPECT_EQ(a.seqFingerprint(), b.seqFingerprint());
  EXPECT_EQ(a.numSettles(), b.numSettles());
  EXPECT_EQ(a.totalGoodEvals(), b.totalGoodEvals());
  EXPECT_EQ(a.finalGoodStates(), b.finalGoodStates());
  EXPECT_EQ(a.perPatternGoodEvals(), b.perPatternGoodEvals());
  EXPECT_EQ(a.memoryBytes() > 0, true);
}

TEST(CheckpointTest, FingerprintDistinguishesSequences) {
  const RamWorkload w = smallRamWorkload();
  const std::uint64_t full = GoodMachineCheckpoint::fingerprint(w.seq);
  TestSequence truncated;
  truncated.setOutputs(w.seq.outputs());
  for (std::uint32_t pi = 0; pi + 1 < w.seq.size(); ++pi) {
    truncated.addPattern(w.seq[pi]);
  }
  EXPECT_NE(full, GoodMachineCheckpoint::fingerprint(truncated));
  EXPECT_EQ(full, GoodMachineCheckpoint::fingerprint(w.seq));
}

TEST(CheckpointTest, SettleCountMatchesSequenceStructure) {
  const RamWorkload w = smallRamWorkload();
  const GoodMachineCheckpoint ck =
      GoodMachineCheckpoint::record(w.ram.net, w.seq, {});
  // One settle per input setting plus the initial all-X evaluation.
  EXPECT_EQ(ck.numSettles(), 1u + w.seq.totalSettings());
  EXPECT_EQ(ck.numPatterns(), w.seq.size());
  // The initial settle must contain activity (the whole network evaluates).
  EXPECT_GT(ck.settle(0).phaseCount, 0u);
}

// Replay with the full fault list in one engine must reproduce the
// self-simulating engine's result exactly; its own work counter must cover
// exactly the faulty share, with the checkpoint holding the good share.
TEST(CheckpointTest, ReplayMatchesSelfSimulationBitExactly) {
  const RamWorkload w = smallRamWorkload();
  FsimOptions opts;
  opts.policy = DetectionPolicy::AnyDifference;

  ConcurrentFaultSimulator plain(w.ram.net, w.faults, opts);
  const FaultSimResult ref = plain.run(w.seq);

  const GoodMachineCheckpoint ck =
      GoodMachineCheckpoint::record(w.ram.net, w.seq, opts);
  ConcurrentFaultSimulator replaying(w.ram.net, w.faults, opts, nullptr, &ck);
  const FaultSimResult got = replaying.run(w.seq);

  EXPECT_EQ(got.detectedAtPattern, ref.detectedAtPattern);
  EXPECT_EQ(got.numDetected, ref.numDetected);
  EXPECT_EQ(got.potentialDetections, ref.potentialDetections);
  EXPECT_EQ(got.finalGoodStates, ref.finalGoodStates);
  ASSERT_EQ(got.perPattern.size(), ref.perPattern.size());
  for (std::size_t pi = 0; pi < ref.perPattern.size(); ++pi) {
    EXPECT_EQ(got.perPattern[pi].newlyDetected,
              ref.perPattern[pi].newlyDetected)
        << "pattern " << pi;
    EXPECT_EQ(got.perPattern[pi].aliveAfter, ref.perPattern[pi].aliveAfter);
  }
  // good evals (checkpoint) + faulty evals (replay) == self-simulated total.
  EXPECT_EQ(ck.totalGoodEvals() + got.totalNodeEvals, ref.totalNodeEvals);
}

// Same equivalence under DefiniteOnly + no-drop (the early-exit path must
// stay disabled and potential detections must still line up).
TEST(CheckpointTest, ReplayMatchesSelfSimulationNoDrop) {
  const RamWorkload w = smallRamWorkload();
  FsimOptions opts;
  opts.policy = DetectionPolicy::DefiniteOnly;
  opts.dropDetected = false;

  ConcurrentFaultSimulator plain(w.ram.net, w.faults, opts);
  const FaultSimResult ref = plain.run(w.seq);
  const GoodMachineCheckpoint ck =
      GoodMachineCheckpoint::record(w.ram.net, w.seq, opts);
  ConcurrentFaultSimulator replaying(w.ram.net, w.faults, opts, nullptr, &ck);
  const FaultSimResult got = replaying.run(w.seq);

  EXPECT_EQ(got.detectedAtPattern, ref.detectedAtPattern);
  EXPECT_EQ(got.potentialDetections, ref.potentialDetections);
  EXPECT_EQ(got.finalGoodStates, ref.finalGoodStates);
  EXPECT_EQ(ck.totalGoodEvals() + got.totalNodeEvals, ref.totalNodeEvals);
}

// A replaying engine whose faults all drop early must still report the
// end-of-sequence good states (supplied by the checkpoint) and zeroed tail
// rows identical to what full simulation would produce.
TEST(CheckpointTest, EarlyExitTailMatchesFullSimulation) {
  const RamWorkload w = smallRamWorkload();
  FsimOptions opts;
  opts.policy = DetectionPolicy::AnyDifference;

  // Find a fault detected early by the reference run.
  ConcurrentFaultSimulator probe(w.ram.net, w.faults, opts);
  const FaultSimResult ref = probe.run(w.seq);
  std::int32_t bestAt = -1;
  std::uint32_t bestIdx = 0;
  for (std::uint32_t i = 0; i < w.faults.size(); ++i) {
    const std::int32_t at = ref.detectedAtPattern[i];
    if (at >= 0 && (bestAt < 0 || at < bestAt)) {
      bestAt = at;
      bestIdx = i;
    }
  }
  ASSERT_GE(bestAt, 0) << "workload must detect at least one fault";
  ASSERT_LT(bestAt + 1, static_cast<std::int32_t>(w.seq.size()))
      << "need patterns after the detection for the early-exit tail";

  FaultList one;
  one.add(w.faults[bestIdx]);
  const GoodMachineCheckpoint ck =
      GoodMachineCheckpoint::record(w.ram.net, w.seq, opts);
  ConcurrentFaultSimulator replaying(w.ram.net, one, opts, nullptr, &ck);
  const FaultSimResult got = replaying.run(w.seq);

  ASSERT_EQ(got.perPattern.size(), w.seq.size());
  EXPECT_EQ(got.detectedAtPattern[0], bestAt);
  EXPECT_EQ(got.finalGoodStates, ref.finalGoodStates);
  for (std::uint32_t pi = static_cast<std::uint32_t>(bestAt) + 1;
       pi < w.seq.size(); ++pi) {
    EXPECT_EQ(got.perPattern[pi].newlyDetected, 0u);
    EXPECT_EQ(got.perPattern[pi].aliveAfter, 0u);
    EXPECT_EQ(got.perPattern[pi].nodeEvals, 0u);
    EXPECT_EQ(got.perPattern[pi].cumulativeDetected, 1u);
  }
}

// The copy-on-write snapshot accessor must agree with the live good state
// of a simulating engine at every pattern boundary.
TEST(CheckpointTest, SnapshotsMatchLiveGoodStates) {
  const RamWorkload w = smallRamWorkload();
  FsimOptions opts;
  const GoodMachineCheckpoint ck =
      GoodMachineCheckpoint::record(w.ram.net, w.seq, opts);

  ConcurrentFaultSimulator sim(w.ram.net, FaultList(), opts);
  for (std::uint32_t pi = 0; pi < w.seq.size(); ++pi) {
    for (const InputSetting& setting : w.seq[pi].settings) {
      sim.applySetting(setting.span());
    }
    const std::vector<State> snap = ck.goodStateAfterPattern(pi);
    ASSERT_EQ(snap.size(), w.ram.net.numNodes());
    for (std::uint32_t n = 0; n < w.ram.net.numNodes(); ++n) {
      ASSERT_EQ(snap[n], sim.goodState(NodeId(n)))
          << "pattern " << pi << " node " << n;
    }
  }
  EXPECT_EQ(ck.goodStateAfterPattern(w.seq.size() - 1), ck.finalGoodStates());
}

// Replay also holds on a generated (non-RAM) workload with mixed fault
// kinds, exercising stuck-input neighbours and transistor overrides.
TEST(CheckpointTest, ReplayMatchesOnGeneratedWorkload) {
  GenOptions gen;
  gen.seed = 99;
  gen.numNodes = 24;
  gen.numInputs = 6;
  gen.numFaults = 40;
  gen.numPatterns = 12;
  const GeneratedWorkload w = generateWorkload(gen);

  FsimOptions opts;
  opts.policy = DetectionPolicy::AnyDifference;
  ConcurrentFaultSimulator plain(w.net, w.faults, opts);
  const FaultSimResult ref = plain.run(w.seq);

  const GoodMachineCheckpoint ck =
      GoodMachineCheckpoint::record(w.net, w.seq, opts);
  ConcurrentFaultSimulator replaying(w.net, w.faults, opts, nullptr, &ck);
  const FaultSimResult got = replaying.run(w.seq);

  EXPECT_EQ(got.detectedAtPattern, ref.detectedAtPattern);
  EXPECT_EQ(got.potentialDetections, ref.potentialDetections);
  EXPECT_EQ(got.finalGoodStates, ref.finalGoodStates);
  EXPECT_EQ(ck.totalGoodEvals() + got.totalNodeEvals, ref.totalNodeEvals);
}

}  // namespace
}  // namespace fmossim
