// End-to-end integration on the actual DRAM circuit: the concurrent engine
// against true serial simulation, detection invariants, stuck-clock faults,
// and bit-line shorts — the paper's own workload at reduced scale.
#include <gtest/gtest.h>

#include "circuits/ram.hpp"
#include "core/concurrent_sim.hpp"
#include "core/serial_sim.hpp"
#include "faults/sampling.hpp"
#include "faults/universe.hpp"
#include "patterns/marching.hpp"
#include "patterns/ram_ops.hpp"
#include "util/rng.hpp"

namespace fmossim {
namespace {

FsimOptions paperOpts() {
  FsimOptions o;
  o.policy = DetectionPolicy::AnyDifference;
  return o;
}

TEST(RamIntegrationTest, ConcurrentMatchesSerialDetectionOnSampledFaults) {
  // RAM 4x4, 30 sampled faults, full sequence-1: detection pattern indices
  // must match the serial reference exactly.
  const RamCircuit ram = buildRam(RamConfig{4, 4});
  FaultList universe = allStorageNodeStuckFaults(ram.net);
  universe.append(allFaultDeviceFaults(ram.net));
  universe.append(allTransistorStuckFaults(ram.net));
  Rng rng(7);
  const FaultList faults = sampleFaults(universe, 30, rng);
  const TestSequence seq = ramTestSequence1(ram);

  ConcurrentFaultSimulator concurrent(ram.net, faults, paperOpts());
  const FaultSimResult cres = concurrent.run(seq);

  SerialOptions sopts;
  sopts.policy = DetectionPolicy::AnyDifference;
  SerialFaultSimulator serial(ram.net, sopts);
  const SerialRunResult sres = serial.run(seq, faults);

  for (std::uint32_t fi = 0; fi < faults.size(); ++fi) {
    EXPECT_EQ(cres.detectedAtPattern[fi], sres.detectedAtPattern[fi])
        << "fault '" << faults[fi].name << "'";
  }
  EXPECT_EQ(cres.numDetected, sres.numDetected);
}

TEST(RamIntegrationTest, MarchAchievesHighCoverage) {
  const RamCircuit ram = buildRam(RamConfig{4, 4});
  FaultList faults = allStorageNodeStuckFaults(ram.net);
  faults.append(allFaultDeviceFaults(ram.net));
  ConcurrentFaultSimulator sim(ram.net, faults, paperOpts());
  const FaultSimResult res = sim.run(ramTestSequence1(ram));
  EXPECT_GT(res.coverage(), 0.9);
  // All memory-cell faults must be caught by a proper march.
  for (std::uint32_t i = 0; i < faults.size(); ++i) {
    if (faults[i].kind == FaultKind::NodeStuck &&
        ram.net.node(faults[i].node).name.rfind("cell", 0) == 0) {
      EXPECT_GE(res.detectedAtPattern[i], 0)
          << "undetected cell fault " << faults[i].name;
    }
  }
}

TEST(RamIntegrationTest, FrozenClockIsDetectedEarly) {
  // The paper: "the circuit is initialized and major faults such as frozen
  // clock lines are being simulated. Those faults ... are detected quickly."
  const RamCircuit ram = buildRam(RamConfig{4, 4});
  FaultList faults;
  faults.add(Fault::nodeStuckAt(ram.net, ram.net.nodeByName("phiL.t"), State::S0));
  faults.add(Fault::nodeStuckAt(ram.net, ram.net.nodeByName("phiW.n"), State::S1));
  ConcurrentFaultSimulator sim(ram.net, faults, paperOpts());
  const FaultSimResult res = sim.run(ramTestSequence1(ram));
  for (std::uint32_t i = 0; i < faults.size(); ++i) {
    EXPECT_GE(res.detectedAtPattern[i], 0) << faults[i].name;
    EXPECT_LT(res.detectedAtPattern[i], 25) << faults[i].name << " not early";
  }
}

TEST(RamIntegrationTest, BitLineShortCorruptsNeighbouringColumns) {
  const RamCircuit ram = buildRam(RamConfig{4, 4});
  FaultList faults = allFaultDeviceFaults(ram.net);
  ASSERT_FALSE(faults.empty());
  ConcurrentFaultSimulator sim(ram.net, faults, paperOpts());
  const FaultSimResult res = sim.run(ramTestSequence1(ram));
  // Every adjacent-bit-line short must be caught by the march.
  for (std::uint32_t i = 0; i < faults.size(); ++i) {
    EXPECT_GE(res.detectedAtPattern[i], 0) << faults[i].name;
  }
}

TEST(RamIntegrationTest, CellStuckFaultDetectedOnlyWhenSelected) {
  // A cell stuck-at fault is invisible until the march reads that cell with
  // the opposite data — "they contain only bit errors in the memory, which
  // have no effect unless the faulty bit is selected".
  const RamCircuit ram = buildRam(RamConfig{4, 4});
  const unsigned addr = 9;  // row 2, col 1
  FaultList faults;
  faults.add(Fault::nodeStuckAt(ram.net, ram.cell(2, 1), State::S1));
  // DefiniteOnly: the X-vs-1 mismatches during initialization must not count
  // (a tester cannot distinguish X), pinning detection to the r0 read.
  FsimOptions opts;
  opts.policy = DetectionPolicy::DefiniteOnly;
  ConcurrentFaultSimulator sim(ram.net, faults, opts);

  // March: w0 everywhere, then read ascending. The fault can only be seen
  // at the r0 read of address 9.
  std::vector<RamOp> ops;
  for (unsigned a = 0; a < 16; ++a) ops.push_back(RamOp::writeOp(a, State::S0));
  for (unsigned a = 0; a < 16; ++a) ops.push_back(RamOp::readOp(a));
  const FaultSimResult res = sim.run(ramOpSequence(ram, ops));
  EXPECT_EQ(res.detectedAtPattern[0], std::int32_t(16 + addr));
}

TEST(RamIntegrationTest, DroppingDoesNotChangeDetectionSet) {
  const RamCircuit ram = buildRam(RamConfig{4, 4});
  FaultList universe = allStorageNodeStuckFaults(ram.net);
  Rng rng(55);
  const FaultList faults = sampleFaults(universe, 40, rng);
  const TestSequence seq = ramTestSequence2(ram);

  FsimOptions dropOn = paperOpts();
  FsimOptions dropOff = paperOpts();
  dropOff.dropDetected = false;
  ConcurrentFaultSimulator a(ram.net, faults, dropOn);
  ConcurrentFaultSimulator b(ram.net, faults, dropOff);
  const FaultSimResult ra = a.run(seq);
  const FaultSimResult rb = b.run(seq);
  EXPECT_EQ(ra.detectedAtPattern, rb.detectedAtPattern);
}

TEST(RamIntegrationTest, AliveCountIsMonotoneNonIncreasing) {
  const RamCircuit ram = buildRam(RamConfig{4, 4});
  FaultList faults = allStorageNodeStuckFaults(ram.net);
  ConcurrentFaultSimulator sim(ram.net, faults, paperOpts());
  const FaultSimResult res = sim.run(ramTestSequence2(ram));
  std::uint32_t prev = faults.size();
  for (const PatternStat& st : res.perPattern) {
    EXPECT_LE(st.aliveAfter, prev);
    EXPECT_EQ(st.aliveAfter, prev - st.newlyDetected);
    prev = st.aliveAfter;
  }
  EXPECT_EQ(res.perPattern.back().aliveAfter,
            faults.size() - res.numDetected);
}

TEST(RamIntegrationTest, PerPatternCostFallsAfterDetections) {
  // The Figure-1 shape at test scale: mean work in the last quarter of the
  // run is below the first quarter's.
  const RamCircuit ram = buildRam(RamConfig{4, 4});
  FaultList faults = allStorageNodeStuckFaults(ram.net);
  faults.append(allFaultDeviceFaults(ram.net));
  ConcurrentFaultSimulator sim(ram.net, faults, paperOpts());
  const FaultSimResult res = sim.run(ramTestSequence1(ram));
  const std::uint32_t n = static_cast<std::uint32_t>(res.perPattern.size());
  double early = 0, late = 0;
  for (std::uint32_t i = 0; i < n / 4; ++i) early += double(res.perPattern[i].nodeEvals);
  for (std::uint32_t i = 3 * n / 4; i < n; ++i) late += double(res.perPattern[i].nodeEvals);
  EXPECT_LT(late, early);
}

TEST(RamIntegrationTest, GoodCircuitStateUnaffectedByFaultLoad) {
  // The presence of faulty circuits must not perturb the good circuit.
  const RamCircuit ram = buildRam(RamConfig{4, 4});
  FaultList faults = allStorageNodeStuckFaults(ram.net);
  const TestSequence seq = ramControlTests(ram);

  ConcurrentFaultSimulator with(ram.net, faults, paperOpts());
  ConcurrentFaultSimulator without(ram.net, FaultList{}, paperOpts());
  for (std::uint32_t pi = 0; pi < seq.size(); ++pi) {
    for (const InputSetting& s : seq[pi].settings) {
      with.applySetting(s.span());
      without.applySetting(s.span());
    }
    for (const NodeId n : ram.net.allNodes()) {
      ASSERT_EQ(with.goodState(n), without.goodState(n))
          << "pattern " << pi << " node " << ram.net.node(n).name;
    }
  }
}

}  // namespace
}  // namespace fmossim
