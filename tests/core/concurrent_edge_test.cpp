// Concurrent engine edge cases: faults that create oscillating circuits
// (X-coercion must terminate), faults on inputs vs. rails, empty fault
// lists, run-once discipline, and record hygiene.
#include <gtest/gtest.h>

#include "circuits/cells.hpp"
#include "core/concurrent_sim.hpp"
#include "faults/universe.hpp"
#include "switch/builder.hpp"

namespace fmossim {
namespace {

// NAND-gated ring with a strong initialization pass onto r2 so the ring can
// be put into a *definite* state (from all-X a ring is stably X in ternary
// simulation — it never oscillates without initialization).
struct RingFixture {
  NodeId en, init, ld, ring, r1, r2, vdd, gnd;
  Network net;

  RingFixture() : net(build(*this)) {}

  static Network build(RingFixture& f) {
    NetworkBuilder b;
    NmosCells cells(b);
    f.en = b.addInput("en");
    f.init = b.addInput("init");
    f.ld = b.addInput("ld");
    f.r2 = b.addNode("r2");
    f.ring = b.addNode("ring");
    cells.nandInto({f.en, f.r2}, f.ring);
    f.r1 = cells.inverter(f.ring, "r1");
    cells.inverterInto(f.r1, f.r2);
    // Strength-3 pass: overrides the inverter (strength 2) during load.
    b.addTransistor(TransistorType::NType, 3, f.ld, f.init, f.r2);
    Network net = b.build();
    f.vdd = net.nodeByName("Vdd");
    f.gnd = net.nodeByName("Gnd");
    return net;
  }
};

TEST(ConcurrentEdgeTest, FaultInducedOscillationTerminatesWithX) {
  // Fault: en stuck-at-1 turns only the faulty circuit into a ring
  // oscillator once initialized to definite values. The engine must settle
  // (coercing the faulty circuit to X), not hang.
  RingFixture f;
  FaultList faults;
  faults.add(Fault::nodeStuckAt(f.net, f.en, State::S1));
  FsimOptions opts;
  opts.sim.settleLimit = 40;
  ConcurrentFaultSimulator sim(f.net, faults, opts);

  InputSetting s0;
  s0.set(f.vdd, State::S1);
  s0.set(f.gnd, State::S0);
  s0.set(f.en, State::S0);
  s0.set(f.init, State::S1);
  s0.set(f.ld, State::S1);  // force r2 = 1 in both circuits
  sim.applySetting(s0.span());
  EXPECT_EQ(sim.goodState(f.r2), State::S1);
  EXPECT_EQ(sim.faultyState(f.r2, 1), State::S1);

  InputSetting s1;
  s1.set(f.ld, State::S0);  // release: faulty ring starts chasing its tail
  const SettleResult res = sim.applySetting(s1.span());
  EXPECT_TRUE(res.oscillated);
  EXPECT_EQ(sim.goodState(f.ring), State::S1) << "good circuit stays stable";
  EXPECT_EQ(sim.faultyState(f.ring, 1), State::SX) << "faulty ring coerced to X";
}

TEST(ConcurrentEdgeTest, GoodCircuitOscillationAlsoCoerces) {
  // The mirror case: en stuck-at-0 makes the faulty circuit the stable one
  // while the good circuit oscillates.
  RingFixture f;
  FaultList faults;
  faults.add(Fault::nodeStuckAt(f.net, f.en, State::S0));
  FsimOptions opts;
  opts.sim.settleLimit = 40;
  ConcurrentFaultSimulator sim(f.net, faults, opts);

  InputSetting s0;
  s0.set(f.vdd, State::S1);
  s0.set(f.gnd, State::S0);
  s0.set(f.en, State::S1);
  s0.set(f.init, State::S1);
  s0.set(f.ld, State::S1);
  sim.applySetting(s0.span());

  InputSetting s1;
  s1.set(f.ld, State::S0);  // good oscillates; faulty (en=0) holds ring=1
  const SettleResult res = sim.applySetting(s1.span());
  EXPECT_TRUE(res.oscillated);
  EXPECT_EQ(sim.goodState(f.ring), State::SX);
  EXPECT_EQ(sim.faultyState(f.ring, 1), State::S1)
      << "faulty circuit (ring disabled) stays definite";
}

TEST(ConcurrentEdgeTest, EmptyFaultListBehavesAsPlainSimulation) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  const NodeId out = cells.inverter(in, "out");
  const Network net = b.build();
  ConcurrentFaultSimulator sim(net, FaultList{});
  InputSetting s;
  s.set(net.nodeByName("Vdd"), State::S1);
  s.set(net.nodeByName("Gnd"), State::S0);
  s.set(in, State::S0);
  sim.applySetting(s.span());
  EXPECT_EQ(sim.goodState(out), State::S1);
  EXPECT_EQ(sim.aliveCount(), 0u);
  EXPECT_EQ(sim.observe({out}, 0), 0u);
}

TEST(ConcurrentEdgeTest, RunIsSingleShot) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  const NodeId out = cells.inverter(in, "out");
  const Network net = b.build();
  ConcurrentFaultSimulator sim(net, FaultList{});
  TestSequence seq;
  seq.addOutput(out);
  Pattern p;
  InputSetting s;
  s.set(net.nodeByName("Vdd"), State::S1);
  s.set(net.nodeByName("Gnd"), State::S0);
  s.set(in, State::S1);
  p.settings.push_back(s);
  seq.addPattern(p);
  sim.run(seq);
  EXPECT_DEATH(sim.run(seq), "run");
}

TEST(ConcurrentEdgeTest, FaultsOnSupplyRails) {
  // Vdd stuck-at-0 in the faulty circuit: every pulled-up node dies.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  const NodeId out = cells.inverter(in, "out");
  const Network net = b.build();
  FaultList faults;
  faults.add(Fault::nodeStuckAt(net, net.nodeByName("Vdd"), State::S0));
  ConcurrentFaultSimulator sim(net, faults);
  InputSetting s;
  s.set(net.nodeByName("Vdd"), State::S1);
  s.set(net.nodeByName("Gnd"), State::S0);
  s.set(in, State::S0);
  sim.applySetting(s.span());
  EXPECT_EQ(sim.goodState(out), State::S1);
  EXPECT_EQ(sim.faultyState(out, 1), State::S0) << "no pull-up in circuit 1";
}

TEST(ConcurrentEdgeTest, ManyFaultsOnTheSameNode) {
  // SA0 and SA1 on the same node, plus stuck transistors touching it, all
  // coexist as distinct circuits.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  const NodeId mid = cells.inverter(in, "mid");
  const NodeId out = cells.inverter(mid, "out");
  const Network net = b.build();

  FaultList faults;
  faults.add(Fault::nodeStuckAt(net, mid, State::S0));  // c1
  faults.add(Fault::nodeStuckAt(net, mid, State::S1));  // c2
  for (const TransId t : net.functionalTransistors()) {
    const auto& tr = net.transistor(t);
    if (tr.source == mid || tr.drain == mid) {
      faults.add(Fault::transistorStuckOpen(net, t));  // c3...
    }
  }
  ConcurrentFaultSimulator sim(net, faults);
  InputSetting s;
  s.set(net.nodeByName("Vdd"), State::S1);
  s.set(net.nodeByName("Gnd"), State::S0);
  s.set(in, State::S0);
  sim.applySetting(s.span());
  EXPECT_EQ(sim.goodState(mid), State::S1);
  EXPECT_EQ(sim.faultyState(mid, 1), State::S0);
  EXPECT_EQ(sim.faultyState(mid, 2), State::S1);
  EXPECT_EQ(sim.faultyState(out, 1), State::S1);
  EXPECT_EQ(sim.faultyState(out, 2), State::S0);
}

TEST(ConcurrentEdgeTest, RecordsVanishWhenAllCircuitsAgree) {
  // Drive the circuit so every fault becomes invisible; the state table
  // must be empty again (no leaked records).
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  const NodeId mid = cells.inverter(in, "mid");
  cells.inverter(mid, "out");
  const Network net = b.build();
  FaultList faults;
  faults.add(Fault::nodeStuckAt(net, mid, State::S0));
  FsimOptions opts;
  opts.dropDetected = false;
  ConcurrentFaultSimulator sim(net, faults, opts);

  InputSetting s0;
  s0.set(net.nodeByName("Vdd"), State::S1);
  s0.set(net.nodeByName("Gnd"), State::S0);
  s0.set(in, State::S0);  // good mid=1, fault visible
  sim.applySetting(s0.span());
  EXPECT_GT(sim.recordCount(), 0u);

  InputSetting s1;
  s1.set(in, State::S1);  // good mid=0 == stuck value: invisible
  sim.applySetting(s1.span());
  EXPECT_EQ(sim.recordCount(), 0u);
}

TEST(ConcurrentEdgeTest, ObservingAnInputNode) {
  // Observing a (stuck) input directly: the stuck table drives detection.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  cells.inverter(in, "out");
  const Network net = b.build();
  FaultList faults;
  faults.add(Fault::nodeStuckAt(net, in, State::S0));
  ConcurrentFaultSimulator sim(net, faults);
  InputSetting s;
  s.set(net.nodeByName("Vdd"), State::S1);
  s.set(net.nodeByName("Gnd"), State::S0);
  s.set(in, State::S1);
  sim.applySetting(s.span());
  EXPECT_EQ(sim.observe({in}, 0), 1u);
  EXPECT_EQ(sim.detectedAtPattern(0), 0);
}

}  // namespace
}  // namespace fmossim
