// THE key correctness property of the concurrent algorithm (DESIGN.md §4):
// for arbitrary circuits, faults, and stimulus sequences, every faulty
// circuit's state under the concurrent engine equals an independent
// whole-circuit serial simulation of that fault.
//
// We generate random switch-level networks (gates, pass transistors,
// latches, precharge devices, raw random transistors), random fault lists
// covering every fault kind, and random input sequences, then compare all
// node states of every faulty circuit after every pattern. Runs where either
// engine reports oscillation are skipped (X-coercion trajectories are
// implementation-defined); the test asserts that most runs are comparable.
#include <gtest/gtest.h>

#include "circuits/cells.hpp"
#include "core/concurrent_sim.hpp"
#include "core/serial_sim.hpp"
#include "faults/universe.hpp"
#include "switch/builder.hpp"
#include "switch/logic_sim.hpp"
#include "util/rng.hpp"

namespace fmossim {
namespace {

struct RandomCircuit {
  Network net;
  std::vector<NodeId> inputs;       // excludes rails
  std::vector<TransId> faultDevices;
};

RandomCircuit makeRandomCircuit(Rng& rng, bool withFaultDevices) {
  NetworkBuilder b;
  NmosCells nmos(b);
  CmosCells cmos(b);

  std::vector<NodeId> inputs;
  const unsigned numInputs = 2 + static_cast<unsigned>(rng.below(4));
  for (unsigned i = 0; i < numInputs; ++i) {
    inputs.push_back(b.addInput("in" + std::to_string(i)));
  }

  // Pool of nodes usable as gate inputs / pass endpoints.
  std::vector<NodeId> pool = inputs;
  const auto pick = [&]() { return rng.pick(pool); };

  const unsigned numElements = 4 + static_cast<unsigned>(rng.below(10));
  for (unsigned e = 0; e < numElements; ++e) {
    const std::string tag = "n" + std::to_string(e);
    switch (rng.below(8)) {
      case 0:
        pool.push_back(nmos.inverter(pick(), tag));
        break;
      case 1:
        pool.push_back(nmos.nor({pick(), pick()}, tag));
        break;
      case 2:
        pool.push_back(nmos.nand({pick(), pick()}, tag));
        break;
      case 3:
        pool.push_back(cmos.inverter(pick(), tag));
        break;
      case 4:
        pool.push_back(cmos.nand({pick(), pick()}, tag));
        break;
      case 5: {  // pass transistor onto a fresh or existing storage node
        const NodeId target = b.addNode(tag, 1 + static_cast<unsigned>(rng.below(2)));
        nmos.pass(pick(), pick(), target);
        pool.push_back(target);
        break;
      }
      case 6: {  // dynamic latch
        pool.push_back(nmos.dynamicLatch(pick(), pick(), tag));
        break;
      }
      case 7: {  // precharged node
        const NodeId target = b.addNode(tag, 2);
        nmos.precharge(pick(), target);
        pool.push_back(target);
        break;
      }
    }
  }
  // A few completely random transistors to stress unusual topologies
  // (bidirectional bridges, strange gate wiring).
  const unsigned numRandom = static_cast<unsigned>(rng.below(4));
  for (unsigned i = 0; i < numRandom; ++i) {
    const NodeId a = rng.pick(pool);
    const NodeId c = rng.pick(pool);
    if (a == c) continue;
    const TransistorType type =
        rng.chance(0.5) ? TransistorType::NType : TransistorType::PType;
    b.addTransistor(type, 1 + static_cast<unsigned>(rng.below(2)), rng.pick(pool),
                    a, c);
  }

  std::vector<TransId> devices;
  if (withFaultDevices) {
    for (unsigned i = 0; i < 2; ++i) {
      const NodeId a = rng.pick(pool);
      const NodeId c = rng.pick(pool);
      if (a == c) continue;
      devices.push_back(rng.chance(0.5) ? b.addShortFaultDevice(a, c)
                                        : b.addOpenFaultDevice(a, c));
    }
  }

  RandomCircuit rc{b.build(), std::move(inputs), std::move(devices)};
  return rc;
}

FaultList makeRandomFaults(const Network& net,
                           const std::vector<TransId>& devices, Rng& rng) {
  FaultList universe;
  universe.append(allStorageNodeStuckFaults(net));
  universe.append(allTransistorStuckFaults(net));
  for (const TransId ft : devices) {
    universe.add(Fault::faultDeviceActive(net, ft));
  }
  // Also include stuck faults on the circuit inputs (frozen stimulus).
  for (const NodeId n : net.allNodes()) {
    if (net.isInput(n) && net.node(n).name != "Vdd" && net.node(n).name != "Gnd") {
      universe.add(Fault::nodeStuckAt(net, n, State::S0));
      universe.add(Fault::nodeStuckAt(net, n, State::S1));
    }
  }
  // Pick a random subset of up to 12 faults.
  FaultList picked;
  const std::uint32_t want =
      1 + static_cast<std::uint32_t>(rng.below(std::min(12u, universe.size())));
  for (const std::uint32_t i : rng.sampleIndices(universe.size(), want)) {
    picked.add(universe[i]);
  }
  return picked;
}

void applySerialFault(LogicSimulator& sim, const Fault& f) {
  switch (f.kind) {
    case FaultKind::NodeStuck:
      sim.forceNode(f.node, f.value);
      break;
    case FaultKind::TransistorStuck:
    case FaultKind::FaultDevice:
      sim.forceTransistor(f.transistor, f.value);
      break;
  }
}

// Runs one randomized trial; returns false if skipped due to oscillation.
bool runTrial(std::uint64_t seed, bool withFaultDevices) {
  Rng rng(seed);
  const RandomCircuit rc = makeRandomCircuit(rng, withFaultDevices);
  const FaultList faults = makeRandomFaults(rc.net, rc.faultDevices, rng);

  // Random stimulus: rails first, then per-pattern random inputs.
  const unsigned numPatterns = 4 + static_cast<unsigned>(rng.below(8));
  std::vector<InputSetting> settings;
  {
    InputSetting rails;
    rails.set(rc.net.nodeByName("Vdd"), State::S1);
    rails.set(rc.net.nodeByName("Gnd"), State::S0);
    settings.push_back(rails);
  }
  for (unsigned p = 0; p < numPatterns; ++p) {
    InputSetting s;
    for (const NodeId in : rc.inputs) {
      const auto r = rng.below(10);
      s.set(in, r < 1 ? State::SX : (r < 6 ? State::S1 : State::S0));
    }
    settings.push_back(std::move(s));
  }

  FsimOptions opts;
  opts.dropDetected = false;
  ConcurrentFaultSimulator concurrent(rc.net, faults, opts);

  // Serial references.
  std::vector<std::unique_ptr<LogicSimulator>> serial;
  for (std::uint32_t fi = 0; fi < faults.size(); ++fi) {
    serial.push_back(std::make_unique<LogicSimulator>(rc.net));
    applySerialFault(*serial[fi], faults[fi]);
  }

  bool oscillated = false;
  for (std::size_t step = 0; step < settings.size(); ++step) {
    oscillated |= concurrent.applySetting(settings[step].span()).oscillated;
    for (auto& s : serial) {
      oscillated |= s->applyAssignments(settings[step].span()).oscillated;
    }
    if (oscillated) return false;  // skip trajectory comparison

    for (std::uint32_t fi = 0; fi < faults.size(); ++fi) {
      for (const NodeId n : rc.net.allNodes()) {
        const State c = concurrent.faultyState(n, fi + 1);
        const State s = serial[fi]->state(n);
        EXPECT_EQ(c, s) << "seed=" << seed << " step=" << step << " fault='"
                        << faults[fi].name << "' node='" << rc.net.node(n).name
                        << "': concurrent=" << stateChar(c)
                        << " serial=" << stateChar(s);
        if (c != s) return true;  // stop at first mismatch, keep trial counted
      }
    }
  }
  return true;
}

class EquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceTest, ConcurrentMatchesSerialEverywhere) {
  const std::uint64_t base = GetParam();
  unsigned comparable = 0;
  constexpr unsigned kTrials = 12;
  for (unsigned t = 0; t < kTrials; ++t) {
    if (runTrial(base * 1000 + t, /*withFaultDevices=*/t % 2 == 0)) {
      ++comparable;
    }
    if (::testing::Test::HasFailure()) break;
  }
  // Oscillating random circuits are possible but must be a minority.
  EXPECT_GE(comparable, kTrials / 2u)
      << "too many random circuits oscillated to exercise the comparison";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Detection-time equivalence with dropping enabled: the concurrent engine
// must detect each fault at exactly the pattern where the serial reference
// first sees an output difference.
TEST(DetectionEquivalenceTest, DropTimingMatchesSerial) {
  for (const std::uint64_t seed : {101u, 202u, 303u, 404u}) {
    Rng rng(seed);
    const RandomCircuit rc = makeRandomCircuit(rng, /*withFaultDevices=*/true);
    const FaultList faults = makeRandomFaults(rc.net, rc.faultDevices, rng);

    // Observed outputs: a couple of random storage nodes.
    const auto storage = rc.net.storageNodes();
    TestSequence seq;
    seq.addOutput(storage[rng.below(storage.size())]);
    seq.addOutput(storage[rng.below(storage.size())]);
    {
      Pattern p0;
      InputSetting rails;
      rails.set(rc.net.nodeByName("Vdd"), State::S1);
      rails.set(rc.net.nodeByName("Gnd"), State::S0);
      p0.settings.push_back(rails);
      seq.addPattern(std::move(p0));
    }
    for (unsigned i = 0; i < 8; ++i) {
      Pattern p;
      InputSetting s;
      for (const NodeId in : rc.inputs) {
        s.set(in, rng.chance(0.5) ? State::S1 : State::S0);
      }
      p.settings.push_back(std::move(s));
      seq.addPattern(std::move(p));
    }

    ConcurrentFaultSimulator concurrent(rc.net, faults);
    const FaultSimResult cres = concurrent.run(seq);

    SerialFaultSimulator serial(rc.net);
    const SerialRunResult sres = serial.run(seq, faults);

    for (std::uint32_t fi = 0; fi < faults.size(); ++fi) {
      EXPECT_EQ(cres.detectedAtPattern[fi], sres.detectedAtPattern[fi])
          << "seed=" << seed << " fault='" << faults[fi].name << "'";
    }
    EXPECT_EQ(cres.numDetected, sres.numDetected) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace fmossim
