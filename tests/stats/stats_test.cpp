// Statistics helpers: head/tail splits, downsampling, least-squares fits,
// CSV output, and the ASCII chart renderer.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "stats/ascii_chart.hpp"
#include "stats/recorder.hpp"

namespace fmossim {
namespace {

FaultSimResult makeResult(std::uint32_t patterns) {
  FaultSimResult res;
  std::uint32_t cumulative = 0;
  for (std::uint32_t i = 0; i < patterns; ++i) {
    PatternStat st;
    st.index = i;
    st.seconds = 1.0 / (i + 1);       // falling cost
    st.nodeEvals = 100 + i;
    st.newlyDetected = (i % 3 == 0) ? 1 : 0;
    cumulative += st.newlyDetected;
    st.cumulativeDetected = cumulative;
    st.aliveAfter = 50 - cumulative;
    res.perPattern.push_back(st);
    res.totalSeconds += st.seconds;
    res.totalNodeEvals += st.nodeEvals;
  }
  res.numFaults = 50;
  res.numDetected = cumulative;
  return res;
}

TEST(RecorderTest, HeadTailSplitPartitionsEverything) {
  const FaultSimResult res = makeResult(10);
  const HeadTailSplit split = splitHeadTail(res, 4);
  EXPECT_DOUBLE_EQ(split.headSeconds + split.tailSeconds, res.totalSeconds);
  EXPECT_EQ(split.headNodeEvals + split.tailNodeEvals, res.totalNodeEvals);
  EXPECT_EQ(split.detectedInHead + split.detectedInTail, res.numDetected);
  EXPECT_EQ(split.detectedInHead, 2u);  // patterns 0 and 3
  EXPECT_GT(split.headSecondsFraction(), 0.5) << "cost is front-loaded";
}

TEST(RecorderTest, MeanSlices) {
  const FaultSimResult res = makeResult(4);  // secs: 1, 1/2, 1/3, 1/4
  EXPECT_DOUBLE_EQ(meanSecondsPerPattern(res, 0, 2), 0.75);
  EXPECT_DOUBLE_EQ(meanSecondsPerPattern(res, 2, 4), (1.0 / 3 + 0.25) / 2);
  EXPECT_DOUBLE_EQ(meanSecondsPerPattern(res, 4, 9), 0.0);  // empty slice
  EXPECT_DOUBLE_EQ(meanNodeEvalsPerPattern(res, 0, 2), 100.5);
}

TEST(RecorderTest, DownsampleCoversWholeRunInOrder) {
  const FaultSimResult res = makeResult(100);
  const auto rows = downsample(res, 10);
  ASSERT_EQ(rows.size(), 10u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].pattern, i * 10);
    if (i > 0) EXPECT_GE(rows[i].cumulativeDetected, rows[i - 1].cumulativeDetected);
  }
  EXPECT_EQ(rows.back().cumulativeDetected,
            res.perPattern.back().cumulativeDetected);
}

TEST(RecorderTest, DownsampleHandlesDegenerateCases) {
  const FaultSimResult res = makeResult(3);
  EXPECT_EQ(downsample(res, 10).size(), 3u);  // clamped to run length
  EXPECT_TRUE(downsample(res, 0).empty());
  EXPECT_TRUE(downsample(FaultSimResult{}, 5).empty());
}

TEST(RecorderTest, LinearFitRecoversExactLine) {
  const std::vector<double> x = {0, 1, 2, 3, 4};
  const std::vector<double> y = {3, 5, 7, 9, 11};  // y = 3 + 2x
  const LinearFit fit = fitLine(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(RecorderTest, LinearFitDetectsNonlinearity) {
  std::vector<double> x, y;
  for (int i = 0; i <= 10; ++i) {
    x.push_back(i);
    y.push_back(double(i) * i);  // quadratic
  }
  const LinearFit fit = fitLine(x, y);
  EXPECT_LT(fit.r2, 0.99);
  EXPECT_GT(fit.r2, 0.5);  // still correlated
}

TEST(RecorderTest, CsvRoundTrip) {
  const FaultSimResult res = makeResult(5);
  const std::string path = ::testing::TempDir() + "/fmossim_stats_test.csv";
  writeCsv(res, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "pattern,seconds,node_evals,newly_detected,cumulative_detected,alive");
  unsigned rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 5u);
  std::remove(path.c_str());
}

TEST(RecorderTest, CsvRejectsUnwritablePath) {
  const FaultSimResult res = makeResult(2);
  EXPECT_THROW(writeCsv(res, "/nonexistent-dir/foo.csv"), Error);
}

TEST(AsciiChartTest, RendersBothSeriesWithinBounds) {
  AsciiChart chart(20, 6);
  std::vector<double> up, down;
  for (int i = 0; i < 50; ++i) {
    up.push_back(i);
    down.push_back(50 - i);
  }
  const std::string s = chart.render(up, "up", down, "down");
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find('o'), std::string::npos);
  EXPECT_NE(s.find("up"), std::string::npos);
  EXPECT_NE(s.find("down"), std::string::npos);
  // 1 label line + 6 grid rows + 1 axis row.
  std::istringstream lines(s);
  std::string line;
  unsigned count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_LE(line.size(), 24u + 40u);  // width + decoration, generous
  }
  EXPECT_EQ(count, 8u);
}

TEST(AsciiChartTest, HandlesEmptyAndConstantSeries) {
  AsciiChart chart(10, 4);
  EXPECT_EQ(chart.render({}, "empty"), "");
  const std::string s = chart.render({5, 5, 5}, "flat");
  EXPECT_NE(s.find('*'), std::string::npos);
}

}  // namespace
}  // namespace fmossim
