// Shared helpers for the fmossim test suite.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "switch/builder.hpp"
#include "switch/logic_sim.hpp"

namespace fmossim::testing {

/// Sets an input by name and settles.
inline void drive(LogicSimulator& sim, const std::string& name, char value) {
  sim.setInput(sim.network().nodeByName(name), stateFromChar(value));
  sim.settle();
}

/// Sets several inputs by name, then settles once.
inline void driveAll(LogicSimulator& sim,
                     const std::vector<std::pair<std::string, char>>& values) {
  for (const auto& [name, v] : values) {
    sim.setInput(sim.network().nodeByName(name), stateFromChar(v));
  }
  sim.settle();
}

/// Reads a node state by name as a character.
inline char read(const LogicSimulator& sim, const std::string& name) {
  return stateChar(sim.state(sim.network().nodeByName(name)));
}

/// gtest-friendly assertion on a node's state.
#define EXPECT_NODE(sim, name, expected) \
  EXPECT_EQ(::fmossim::testing::read((sim), (name)), (expected)) << "node " << (name)

/// Standard rails: adds Vdd/Gnd inputs and drives them after construction.
inline void driveRails(LogicSimulator& sim) {
  const auto& net = sim.network();
  sim.setInput(net.nodeByName("Vdd"), State::S1);
  sim.setInput(net.nodeByName("Gnd"), State::S0);
  sim.settle();
}

}  // namespace fmossim::testing
