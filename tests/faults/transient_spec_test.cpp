// Transient (SEU) campaign specification text format.
#include "faults/transient.hpp"

#include <gtest/gtest.h>

#include "circuits/cells.hpp"
#include "switch/builder.hpp"

namespace fmossim {
namespace {

Network makeNet() {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  const NodeId mid = cells.inverter(in, "mid");
  cells.inverter(mid, "out");
  return b.build();
}

TEST(TransientSpecTest, ParsesFlipsAndPulses) {
  const Network net = makeNet();
  const TransientList c = parseTransientSpec(net,
                                             "# strike campaign\n"
                                             "flip mid @ 3\n"
                                             "\n"
                                             "flip out @ 0 pulse 2\n");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].name, "mid/flip@3");
  EXPECT_EQ(c[0].atPattern, 3u);
  EXPECT_EQ(c[0].pulsePatterns, 0u);
  EXPECT_EQ(c[1].name, "out/flip@0+p2");
  EXPECT_EQ(c[1].atPattern, 0u);
  EXPECT_EQ(c[1].pulsePatterns, 2u);
}

TEST(TransientSpecTest, FlipAtValidates) {
  const Network net = makeNet();
  // Input nodes are rejected (they are re-driven every pattern).
  EXPECT_THROW(TransientFault::flipAt(net, net.findNode("in"), 0), Error);
  EXPECT_THROW(TransientFault::flipAt(net, NodeId(net.numNodes()), 0), Error);
  EXPECT_THROW(TransientFault::flipAt(net, NodeId(), 0), Error);
}

TEST(TransientSpecTest, RejectsMalformedLines) {
  const Network net = makeNet();
  // Unknown node.
  EXPECT_THROW(parseTransientSpec(net, "flip nope @ 1\n"), Error);
  // Input node.
  EXPECT_THROW(parseTransientSpec(net, "flip in @ 1\n"), Error);
  // Missing '@'.
  EXPECT_THROW(parseTransientSpec(net, "flip mid at 1\n"), Error);
  // Non-numeric pattern.
  EXPECT_THROW(parseTransientSpec(net, "flip mid @ x\n"), Error);
  // Trailing junk (wrong token count).
  EXPECT_THROW(parseTransientSpec(net, "flip mid @ 1 extra\n"), Error);
  // Bad pulse keyword and zero pulse.
  EXPECT_THROW(parseTransientSpec(net, "flip mid @ 1 hold 2\n"), Error);
  EXPECT_THROW(parseTransientSpec(net, "flip mid @ 1 pulse 0\n"), Error);
  // Unknown directive.
  EXPECT_THROW(parseTransientSpec(net, "strike mid @ 1\n"), Error);
  // Empty campaign.
  EXPECT_THROW(parseTransientSpec(net, "# only a comment\n"), Error);
  // Out-of-range pulse (does not fit uint32).
  EXPECT_THROW(parseTransientSpec(net, "flip mid @ 1 pulse 4294967296\n"),
               Error);
}

TEST(TransientSpecTest, LoadFileReportsMissingPath) {
  const Network net = makeNet();
  EXPECT_THROW(loadTransientSpecFile(net, "/nonexistent/campaign.seu"), Error);
}

}  // namespace
}  // namespace fmossim
