// Fault specification text format.
#include "faults/fault_spec.hpp"

#include <gtest/gtest.h>

#include "circuits/cells.hpp"
#include "switch/builder.hpp"

namespace fmossim {
namespace {

Network makeNet() {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  const NodeId mid = cells.inverter(in, "mid");
  const NodeId out = cells.inverter(mid, "out");
  b.addShortFaultDevice(mid, out);
  return b.build();
}

TEST(FaultSpecTest, SingleFaultDirectives) {
  const Network net = makeNet();
  const FaultList faults = parseFaultSpec(net,
                                          "# two specific faults\n"
                                          "node mid sa0\n"
                                          "node out sa1\n"
                                          "transistor 0 open\n"
                                          "transistor 1 closed\n");
  ASSERT_EQ(faults.size(), 4u);
  EXPECT_EQ(faults[0].name, "mid/SA0");
  EXPECT_EQ(faults[1].name, "out/SA1");
  EXPECT_EQ(faults[2].value, State::S0);
  EXPECT_EQ(faults[3].value, State::S1);
}

TEST(FaultSpecTest, UniverseDirectives) {
  const Network net = makeNet();
  const FaultList nodes = parseFaultSpec(net, "all-node-stuck\n");
  EXPECT_EQ(nodes.size(), 2 * net.numStorage());
  const FaultList trans = parseFaultSpec(net, "all-transistor-stuck\n");
  EXPECT_EQ(trans.size(), 2 * (net.numTransistors() - net.numFaultDevices()));
  const FaultList devs = parseFaultSpec(net, "all-fault-devices\n");
  EXPECT_EQ(devs.size(), 1u);
  const FaultList all = parseFaultSpec(
      net, "all-node-stuck\nall-transistor-stuck\nall-fault-devices\n");
  EXPECT_EQ(all.size(), nodes.size() + trans.size() + devs.size());
}

TEST(FaultSpecTest, SamplingIsAppliedLastAndDeterministic) {
  const Network net = makeNet();
  const FaultList a =
      parseFaultSpec(net, "all-node-stuck\nsample 3 42\n");
  const FaultList b =
      parseFaultSpec(net, "all-node-stuck\nsample 3 42\n");
  ASSERT_EQ(a.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(a[i].name, b[i].name);
  const FaultList c =
      parseFaultSpec(net, "all-node-stuck\nsample 3 43\n");
  bool differs = false;
  for (std::uint32_t i = 0; i < 3; ++i) differs |= a[i].name != c[i].name;
  EXPECT_TRUE(differs);
}

TEST(FaultSpecTest, RejectsMalformedInput) {
  const Network net = makeNet();
  EXPECT_THROW(parseFaultSpec(net, "node ghost sa0\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "node mid sa2\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "node mid\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "transistor 999 open\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "transistor x open\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "transistor 0 sideways\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "frobnicate\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "# nothing\n"), Error);  // empty list
  EXPECT_THROW(parseFaultSpec(net, "node mid sa0\nsample 5 1\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "node mid sa0\nsample x 1\n"), Error);
}

TEST(FaultSpecTest, StrictNumericParseRejectsGarbageAndOverflow) {
  const Network net = makeNet();
  // stoul would silently truncate these; the strict parser must reject them
  // with a line-numbered error instead.
  EXPECT_THROW(parseFaultSpec(net, "transistor 12abc open\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "transistor -1 open\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "transistor +0 open\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "transistor 0x1 open\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "transistor 99999999999999999999 open\n"),
               Error);
  EXPECT_THROW(parseFaultSpec(net, "all-node-stuck\nsample 3.5 1\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "all-node-stuck\nsample -3 1\n"), Error);
  EXPECT_THROW(parseFaultSpec(net, "all-node-stuck\nsample 3 12abc\n"), Error);
  EXPECT_THROW(
      parseFaultSpec(net, "all-node-stuck\nsample 3 99999999999999999999999\n"),
      Error);
  // Errors carry the offending line number.
  try {
    parseFaultSpec(net, "# comment\ntransistor 12abc open\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  // The boundary values still parse.
  EXPECT_NO_THROW(parseFaultSpec(
      net, "all-node-stuck\nsample 1 18446744073709551615\n"));
}

TEST(FaultSpecTest, FaultDeviceIdsRejectStuckDirectives) {
  const Network net = makeNet();
  // The fault device is the last transistor; 'transistor N open' on it must
  // fail (use all-fault-devices instead).
  const std::uint32_t dev = net.numTransistors() - 1;
  EXPECT_THROW(
      parseFaultSpec(net, "transistor " + std::to_string(dev) + " open\n"),
      Error);
}

}  // namespace
}  // namespace fmossim
