// Fault factories, universe generators, and deterministic sampling.
#include <gtest/gtest.h>

#include <set>

#include "circuits/cells.hpp"
#include "circuits/ram.hpp"
#include "faults/sampling.hpp"
#include "faults/universe.hpp"
#include "switch/builder.hpp"

namespace fmossim {
namespace {

Network smallNet() {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  const NodeId mid = cells.inverter(in, "mid");
  cells.inverter(mid, "out");
  return b.build();
}

TEST(FaultFactoryTest, NodeStuckNamesAndValidation) {
  const Network net = smallNet();
  const Fault sa0 = Fault::nodeStuckAt(net, net.nodeByName("mid"), State::S0);
  EXPECT_EQ(sa0.kind, FaultKind::NodeStuck);
  EXPECT_EQ(sa0.name, "mid/SA0");
  const Fault sa1 = Fault::nodeStuckAt(net, net.nodeByName("mid"), State::S1);
  EXPECT_EQ(sa1.name, "mid/SA1");
  EXPECT_THROW(Fault::nodeStuckAt(net, net.nodeByName("mid"), State::SX), Error);
}

TEST(FaultFactoryTest, TransistorStuckValues) {
  const Network net = smallNet();
  const TransId t = TransId(0);
  const Fault open = Fault::transistorStuckOpen(net, t);
  EXPECT_EQ(open.kind, FaultKind::TransistorStuck);
  EXPECT_EQ(open.value, State::S0);
  const Fault closed = Fault::transistorStuckClosed(net, t);
  EXPECT_EQ(closed.value, State::S1);
}

TEST(FaultFactoryTest, FaultDeviceActivationComplementsGood) {
  NetworkBuilder b;
  const NodeId x = b.addNode("x");
  const NodeId y = b.addNode("y");
  const NodeId p = b.addNode("p");
  const NodeId q = b.addNode("q");
  const TransId shortDev = b.addShortFaultDevice(x, y);
  const TransId openDev = b.addOpenFaultDevice(p, q);
  const Network net = b.build();

  const Fault fShort = Fault::faultDeviceActive(net, shortDev);
  EXPECT_EQ(fShort.value, State::S1);  // good 0 -> faulty 1
  EXPECT_EQ(fShort.name, "short(x,y)");
  const Fault fOpen = Fault::faultDeviceActive(net, openDev);
  EXPECT_EQ(fOpen.value, State::S0);  // good 1 -> faulty 0
  EXPECT_EQ(fOpen.name, "open(p,q)");
}

TEST(FaultFactoryTest, KindMismatchesRejected) {
  NetworkBuilder b;
  const NodeId x = b.addNode("x");
  const NodeId y = b.addNode("y");
  const NodeId g = b.addInput("g");
  const TransId normal = b.addTransistor(TransistorType::NType, 2, g, x, y);
  const TransId dev = b.addShortFaultDevice(x, y);
  const Network net = b.build();
  EXPECT_THROW(Fault::faultDeviceActive(net, normal), Error);
  EXPECT_THROW(Fault::transistorStuckOpen(net, dev), Error);
  EXPECT_THROW(Fault::transistorStuckClosed(net, dev), Error);
}

TEST(UniverseTest, StorageNodeUniverseCoversEveryStorageNodeTwice) {
  const Network net = smallNet();
  const FaultList faults = allStorageNodeStuckFaults(net);
  EXPECT_EQ(faults.size(), 2 * net.numStorage());
  std::set<std::pair<std::uint32_t, State>> seen;
  for (const Fault& f : faults) {
    EXPECT_EQ(f.kind, FaultKind::NodeStuck);
    EXPECT_FALSE(net.isInput(f.node)) << "inputs excluded";
    EXPECT_TRUE(seen.insert({f.node.value, f.value}).second) << "duplicate";
  }
}

TEST(UniverseTest, TransistorUniverseExcludesFaultDevices) {
  const RamCircuit ram = buildRam(ram64Config());
  const FaultList faults = allTransistorStuckFaults(ram.net);
  EXPECT_EQ(faults.size(),
            2 * (ram.net.numTransistors() - ram.net.numFaultDevices()));
  for (const Fault& f : faults) {
    EXPECT_FALSE(ram.net.transistor(f.transistor).isFaultDevice());
  }
}

TEST(UniverseTest, FaultDeviceUniverseMatchesDeclaredDevices) {
  const RamCircuit ram = buildRam(ram64Config());
  const FaultList faults = allFaultDeviceFaults(ram.net);
  EXPECT_EQ(faults.size(), ram.bitLineShorts.size());
  for (const Fault& f : faults) {
    EXPECT_EQ(f.kind, FaultKind::FaultDevice);
    EXPECT_EQ(f.value, State::S1);  // all declared devices are shorts
  }
}

TEST(UniverseTest, PaperUniverseSizesAreInRange) {
  // Paper: RAM64 428 faults, RAM256 1382 ("all possible single stuck-at and
  // single bus short faults").
  const RamCircuit r64 = buildRam(ram64Config());
  FaultList f64 = allStorageNodeStuckFaults(r64.net);
  f64.append(allFaultDeviceFaults(r64.net));
  EXPECT_GT(f64.size(), 380u);
  EXPECT_LT(f64.size(), 520u);

  const RamCircuit r256 = buildRam(ram256Config());
  FaultList f256 = allStorageNodeStuckFaults(r256.net);
  f256.append(allFaultDeviceFaults(r256.net));
  EXPECT_GT(f256.size(), 1200u);
  EXPECT_LT(f256.size(), 1600u);
}

TEST(SamplingTest, SampleIsDeterministicPerSeed) {
  const Network net = smallNet();
  FaultList universe = allStorageNodeStuckFaults(net);
  universe.append(allTransistorStuckFaults(net));
  Rng r1(9), r2(9), r3(10);
  const FaultList a = sampleFaults(universe, 5, r1);
  const FaultList b = sampleFaults(universe, 5, r2);
  const FaultList c = sampleFaults(universe, 5, r3);
  ASSERT_EQ(a.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
  }
  bool anyDiff = false;
  for (std::uint32_t i = 0; i < 5; ++i) anyDiff |= a[i].name != c[i].name;
  EXPECT_TRUE(anyDiff) << "different seeds should give different samples";
}

TEST(SamplingTest, SampleHasNoDuplicates) {
  const Network net = smallNet();
  FaultList universe = allStorageNodeStuckFaults(net);
  universe.append(allTransistorStuckFaults(net));
  Rng rng(123);
  const FaultList s = sampleFaults(universe, universe.size(), rng);
  std::set<std::string> names;
  for (const Fault& f : s) {
    EXPECT_TRUE(names.insert(f.name).second) << "duplicate " << f.name;
  }
  EXPECT_EQ(names.size(), universe.size());
}

TEST(SamplingTest, RejectsOversizedSample) {
  const Network net = smallNet();
  const FaultList universe = allStorageNodeStuckFaults(net);
  Rng rng(1);
  EXPECT_THROW(sampleFaults(universe, universe.size() + 1, rng), Error);
}

TEST(SamplingTest, ZeroSampleIsEmpty) {
  const Network net = smallNet();
  const FaultList universe = allStorageNodeStuckFaults(net);
  Rng rng(1);
  EXPECT_TRUE(sampleFaults(universe, 0, rng).empty());
}

TEST(FaultListTest, AppendAndIndexing) {
  const Network net = smallNet();
  FaultList a = allStorageNodeStuckFaults(net);
  const std::uint32_t n = a.size();
  FaultList b;
  b.add(Fault::transistorStuckOpen(net, TransId(0)));
  a.append(b);
  EXPECT_EQ(a.size(), n + 1);
  EXPECT_EQ(a[n].kind, FaultKind::TransistorStuck);
}

}  // namespace
}  // namespace fmossim
