// .sim transistor netlist reader/writer: round trips, defaults, errors.
#include "netlist/sim_format.hpp"

#include <gtest/gtest.h>

#include "switch/logic_sim.hpp"
#include "test_util.hpp"

namespace fmossim {
namespace {

using testing::driveAll;
using testing::driveRails;

const char* kInverter = R"(| nMOS inverter
input in
d out Vdd out
n in out Gnd
)";

TEST(SimFormatTest, ParsesInverterAndSimulates) {
  const Network net = parseSimNetlist(kInverter);
  EXPECT_EQ(net.numTransistors(), 2u);
  EXPECT_TRUE(net.isInput(net.nodeByName("in")));
  EXPECT_TRUE(net.isInput(net.nodeByName("Vdd")));
  EXPECT_FALSE(net.isInput(net.nodeByName("out")));

  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"in", '0'}});
  EXPECT_NODE(sim, "out", '1');
  driveAll(sim, {{"in", '1'}});
  EXPECT_NODE(sim, "out", '0');
}

TEST(SimFormatTest, DefaultStrengthsFollowConvention) {
  const Network net = parseSimNetlist(kInverter);
  // d device: strength index 1; n device: strength index 2.
  const auto& domain = net.domain();
  bool sawD = false, sawN = false;
  for (const TransId t : net.allTransistors()) {
    const auto& tr = net.transistor(t);
    if (tr.type == TransistorType::DType) {
      EXPECT_EQ(tr.strength, domain.strengthLevel(1));
      sawD = true;
    } else {
      EXPECT_EQ(tr.strength, domain.strengthLevel(2));
      sawN = true;
    }
  }
  EXPECT_TRUE(sawD && sawN);
}

TEST(SimFormatTest, NodeSizeAndExplicitStrength) {
  const Network net = parseSimNetlist(
      "input clk\n"
      "node bus 2\n"
      "n clk Vdd bus 3\n");
  EXPECT_EQ(net.node(net.nodeByName("bus")).size, 2);
  EXPECT_EQ(net.transistor(TransId(0)).strength, net.domain().strengthLevel(3));
}

TEST(SimFormatTest, AcceptsClassicESpellingAndComments) {
  const Network net = parseSimNetlist(
      "# hash comment\n"
      "| pipe comment\n"
      "e g a b\n");
  EXPECT_EQ(net.transistor(TransId(0)).type, TransistorType::NType);
}

TEST(SimFormatTest, ImplicitNodesDefaultToStorageSize1) {
  const Network net = parseSimNetlist("n g a b\n");
  EXPECT_FALSE(net.isInput(net.nodeByName("a")));
  EXPECT_EQ(net.node(net.nodeByName("a")).size, 1);
  EXPECT_FALSE(net.isInput(net.nodeByName("g")));
}

TEST(SimFormatTest, ErrorsCarryLineNumbers) {
  try {
    parseSimNetlist("input a\nbogus x y z\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SimFormatTest, RejectsMalformedInput) {
  EXPECT_THROW(parseSimNetlist("input\n"), Error);             // no name
  EXPECT_THROW(parseSimNetlist("node a\n"), Error);            // no size
  EXPECT_THROW(parseSimNetlist("node a zero\n"), Error);       // bad size
  EXPECT_THROW(parseSimNetlist("n g a\n"), Error);             // missing drain
  EXPECT_THROW(parseSimNetlist("n g a a\n"), Error);           // self loop
  EXPECT_THROW(parseSimNetlist("n g a b 9\n"), Error);         // bad strength
  EXPECT_THROW(parseSimNetlist("input a\ninput a\n"), Error);  // duplicate
  EXPECT_THROW(parseSimNetlist("| only comments\n"), Error);   // no devices
}

TEST(SimFormatTest, RejectsNonStrictIntegers) {
  // stoi used to accept these by parsing the leading digits and silently
  // dropping the rest.
  EXPECT_THROW(parseSimNetlist("node a 2x\nn g a b\n"), Error);
  EXPECT_THROW(parseSimNetlist("node a 1.5\nn g a b\n"), Error);
  EXPECT_THROW(parseSimNetlist("n g a b 2x\n"), Error);
  EXPECT_THROW(parseSimNetlist("node a -1\nn g a b\n"), Error);
  EXPECT_THROW(parseSimNetlist("n g a b 99999999999999\n"), Error);
}

TEST(SimFormatTest, OutOfRangeDeclarationsCarryLineNumbers) {
  // Node size beyond the domain's kappa levels used to abort with no line
  // context; strength already went through the device try/catch.
  try {
    parseSimNetlist("input ok\nnode fat 7\nn ok fat Gnd\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  try {
    parseSimNetlist("input ok\nn ok a b 9\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(SimFormatTest, WriteReadRoundTrip) {
  const Network net = parseSimNetlist(
      "input in clk\n"
      "node bus 2\n"
      "d out Vdd out 1\n"
      "n in out Gnd 2\n"
      "n clk out bus 2\n");
  const std::string text = writeSimNetlist(net);
  const Network again = parseSimNetlist(text);
  EXPECT_EQ(again.numTransistors(), net.numTransistors());
  EXPECT_EQ(again.numNodes(), net.numNodes());
  EXPECT_EQ(again.node(again.nodeByName("bus")).size, 2);
  // Behaviour must match too.
  LogicSimulator a(net), bSim(again);
  driveRails(a);
  driveRails(bSim);
  for (const char in : {'0', '1'}) {
    driveAll(a, {{"in", in}, {"clk", '1'}});
    driveAll(bSim, {{"in", in}, {"clk", '1'}});
    EXPECT_EQ(testing::read(a, "out"), testing::read(bSim, "out"));
    EXPECT_EQ(testing::read(a, "bus"), testing::read(bSim, "bus"));
  }
}

TEST(SimFormatTest, FaultDevicesEmittedAsComments) {
  NetworkBuilder b;
  const NodeId x = b.addNode("x");
  const NodeId y = b.addNode("y");
  b.addShortFaultDevice(x, y);
  const NodeId g = b.addInput("g");
  b.addTransistor(TransistorType::NType, 2, g, x, y);
  const Network net = b.build();
  const std::string text = writeSimNetlist(net);
  EXPECT_NE(text.find("| fault-device (short)"), std::string::npos);
  const Network again = parseSimNetlist(text);
  EXPECT_EQ(again.numFaultDevices(), 0u);  // comments are not devices
  EXPECT_EQ(again.numTransistors(), 1u);
}

}  // namespace
}  // namespace fmossim
