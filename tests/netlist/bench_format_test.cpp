// ISCAS-85 .bench parser and CMOS expansion: c17 functional equivalence
// against a gate-level reference evaluator, error handling, fault mapping.
#include "netlist/bench_format.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "netlist/gate_expand.hpp"
#include "switch/logic_sim.hpp"

namespace fmossim {
namespace {

TEST(BenchFormatTest, ParsesC17) {
  const GateCircuit c17 = parseBench(kIscas85C17, "c17");
  EXPECT_EQ(c17.inputs.size(), 5u);
  EXPECT_EQ(c17.outputs.size(), 2u);
  EXPECT_EQ(c17.numGates(), 6u);
  for (const Gate& g : c17.gates) {
    EXPECT_EQ(g.type, GateType::Nand);
    EXPECT_EQ(g.inputs.size(), 2u);
  }
}

TEST(BenchFormatTest, ParsesAllGateTypes) {
  const GateCircuit c = parseBench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(z)\n"
      "g1 = AND(a, b)\n"
      "g2 = OR(a, b)\n"
      "g3 = NAND(a, g1)\n"
      "g4 = NOR(g2, b)\n"
      "g5 = NOT(g3)\n"
      "g6 = BUFF(g4)\n"
      "g7 = XOR(g5, g6)\n"
      "z = XNOR(g7, a)\n");
  EXPECT_EQ(c.numGates(), 8u);
  EXPECT_EQ(c.gates[7].type, GateType::Xnor);
}

TEST(BenchFormatTest, RejectsMalformedInput) {
  EXPECT_THROW(parseBench("INPUT(a)\nz = FROB(a)\n"), Error);
  EXPECT_THROW(parseBench("INPUT(a)\nz = NOT(a, a)\n"), Error);
  EXPECT_THROW(parseBench("INPUT(a)\nz = AND()\n"), Error);
  EXPECT_THROW(parseBench("INPUT(a)\nz = AND(a, ghost)\n"), Error);
  EXPECT_THROW(parseBench("INPUT(a)\nINPUT(a)\nz = NOT(a)\n"), Error);
  EXPECT_THROW(parseBench("INPUT(a)\nOUTPUT(missing)\nz = NOT(a)\n"), Error);
  EXPECT_THROW(parseBench("INPUT(a)\n"), Error);  // no gates
  EXPECT_THROW(parseBench("gibberish line\n"), Error);
}

TEST(BenchFormatTest, RejectsWhatWasOnceSilentlyAccepted) {
  // Keyword typos used to pass the prefix match ("INPUTS", "INPUTX"...).
  EXPECT_THROW(parseBench("INPUTS(a)\nz = NOT(a)\n"), Error);
  EXPECT_THROW(parseBench("INPUT(a)\nOUTPUTX(z)\nz = NOT(a)\n"), Error);
  // Trailing garbage after the argument list used to be ignored.
  EXPECT_THROW(parseBench("INPUT(a) junk\nz = NOT(a)\n"), Error);
  EXPECT_THROW(parseBench("INPUT(a)\nz = NOT(a) junk\n"), Error);
  // Still-valid shapes keep parsing (keyword case, surrounding blanks).
  const GateCircuit ok = parseBench("input(a)\n  z = NOT( a )  \nOUTPUT(z)\n");
  EXPECT_EQ(ok.numGates(), 1u);
}

TEST(BenchFormatTest, RejectsDuplicateAndMissingDefinitions) {
  // Duplicate gate definition.
  EXPECT_THROW(parseBench("INPUT(a)\nz = NOT(a)\nz = BUFF(a)\n"), Error);
  // Gate redefining an input.
  EXPECT_THROW(parseBench("INPUT(a)\na = NOT(a)\n"), Error);
  // Duplicate OUTPUT declaration.
  EXPECT_THROW(parseBench("INPUT(a)\nOUTPUT(z)\nOUTPUT(z)\nz = NOT(a)\n"),
               Error);
  // Empty names and missing output name.
  EXPECT_THROW(parseBench("INPUT()\nz = NOT(a)\n"), Error);
  EXPECT_THROW(parseBench("INPUT(a)\n = NOT(a)\n"), Error);
}

TEST(BenchFormatTest, ErrorsCarryLineNumbers) {
  try {
    parseBench("INPUT(a)\nINPUT(b)\nz = FROB(a)\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

// Gate-level reference evaluator for combinational circuits (inputs 0/1).
std::unordered_map<std::string, bool> evalGateLevel(
    const GateCircuit& c, const std::unordered_map<std::string, bool>& inputs) {
  std::unordered_map<std::string, bool> values = inputs;
  // Gates may be out of order; iterate until fixed point (no cycles in
  // combinational benchmarks).
  bool progress = true;
  while (progress) {
    progress = false;
    for (const Gate& g : c.gates) {
      if (values.count(g.output)) continue;
      bool ready = true;
      for (const auto& in : g.inputs) ready &= values.count(in) > 0;
      if (!ready) continue;
      std::vector<bool> ins;
      for (const auto& in : g.inputs) ins.push_back(values.at(in));
      bool v = false;
      switch (g.type) {
        case GateType::And:
        case GateType::Nand: {
          v = true;
          for (const bool x : ins) v = v && x;
          if (g.type == GateType::Nand) v = !v;
          break;
        }
        case GateType::Or:
        case GateType::Nor: {
          v = false;
          for (const bool x : ins) v = v || x;
          if (g.type == GateType::Nor) v = !v;
          break;
        }
        case GateType::Not: v = !ins[0]; break;
        case GateType::Buff: v = ins[0]; break;
        case GateType::Xor:
        case GateType::Xnor: {
          v = false;
          for (const bool x : ins) v = v != x;
          if (g.type == GateType::Xnor) v = !v;
          break;
        }
      }
      values[g.output] = v;
      progress = true;
    }
  }
  return values;
}

TEST(GateExpandTest, C17MatchesGateLevelOnAllInputVectors) {
  const GateCircuit c17 = parseBench(kIscas85C17, "c17");
  const ExpandedCircuit ex = expandToCmos(c17);

  LogicSimulator sim(ex.net);
  sim.setInput(ex.net.nodeByName("Vdd"), State::S1);
  sim.setInput(ex.net.nodeByName("Gnd"), State::S0);
  sim.settle();

  for (unsigned vec = 0; vec < 32; ++vec) {
    std::unordered_map<std::string, bool> inputs;
    for (std::size_t i = 0; i < c17.inputs.size(); ++i) {
      const bool v = ((vec >> i) & 1u) != 0;
      inputs[c17.inputs[i]] = v;
      sim.setInput(ex.inputs[i], v ? State::S1 : State::S0);
    }
    sim.settle();
    const auto ref = evalGateLevel(c17, inputs);
    for (std::size_t o = 0; o < c17.outputs.size(); ++o) {
      const State got = sim.state(ex.outputs[o]);
      const State want = ref.at(c17.outputs[o]) ? State::S1 : State::S0;
      EXPECT_EQ(got, want) << "vector " << vec << " output " << c17.outputs[o];
    }
  }
}

TEST(GateExpandTest, MixedGateCircuitMatchesGateLevel) {
  const GateCircuit c = parseBench(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(z1)\nOUTPUT(z2)\n"
      "t1 = XOR(a, b)\n"
      "t2 = AND(b, c)\n"
      "t3 = OR(t1, t2)\n"
      "z1 = XNOR(t3, c)\n"
      "z2 = NOR(t1, NOTC)\n"
      "NOTC = NOT(c)\n");
  const ExpandedCircuit ex = expandToCmos(c);
  LogicSimulator sim(ex.net);
  sim.setInput(ex.net.nodeByName("Vdd"), State::S1);
  sim.setInput(ex.net.nodeByName("Gnd"), State::S0);
  sim.settle();

  for (unsigned vec = 0; vec < 8; ++vec) {
    std::unordered_map<std::string, bool> inputs;
    for (std::size_t i = 0; i < c.inputs.size(); ++i) {
      const bool v = ((vec >> i) & 1u) != 0;
      inputs[c.inputs[i]] = v;
      sim.setInput(ex.inputs[i], v ? State::S1 : State::S0);
    }
    sim.settle();
    const auto ref = evalGateLevel(c, inputs);
    for (std::size_t o = 0; o < c.outputs.size(); ++o) {
      EXPECT_EQ(sim.state(ex.outputs[o]),
                ref.at(c.outputs[o]) ? State::S1 : State::S0)
          << "vector " << vec << " output " << c.outputs[o];
    }
  }
}

TEST(GateExpandTest, GateLevelFaultUniverseMapsToNodes) {
  const GateCircuit c17 = parseBench(kIscas85C17, "c17");
  const ExpandedCircuit ex = expandToCmos(c17);
  const FaultList faults = gateLevelStuckFaults(c17, ex);
  // SA0+SA1 per primary input and per gate output.
  EXPECT_EQ(faults.size(), 2 * (c17.inputs.size() + c17.numGates()));
  for (const Fault& f : faults) {
    EXPECT_EQ(f.kind, FaultKind::NodeStuck);
  }
}

}  // namespace
}  // namespace fmossim
