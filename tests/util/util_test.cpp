// util: RNG determinism and distribution sanity, string helpers.
#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace fmossim {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(1);
  for (int i = 0; i < 100; ++i) differs |= a2.next() != c.next();
  EXPECT_TRUE(differs);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all values of a small range must appear";
}

TEST(RngTest, ChanceExtremesAndRoughFairness) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
  int heads = 0;
  for (int i = 0; i < 2000; ++i) heads += rng.chance(0.5) ? 1 : 0;
  EXPECT_GT(heads, 850);
  EXPECT_LT(heads, 1150);
}

TEST(RngTest, SampleIndicesAreDistinctAndComplete) {
  Rng rng(6);
  const auto sample = rng.sampleIndices(20, 10);
  ASSERT_EQ(sample.size(), 10u);
  std::set<std::uint32_t> set(sample.begin(), sample.end());
  EXPECT_EQ(set.size(), 10u);
  for (const auto v : sample) EXPECT_LT(v, 20u);
  const auto full = rng.sampleIndices(5, 5);
  EXPECT_EQ(std::set<std::uint32_t>(full.begin(), full.end()).size(), 5u);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(StringsTest, SplitWhitespace) {
  const auto t = splitWhitespace("  a  bb\tccc \n d ");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[3], "d");
  EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto t = split("a=b", '=');
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], "a");
  EXPECT_EQ(t[1], "b");
  const auto u = split("x==y", '=');
  ASSERT_EQ(u.size(), 3u);
  EXPECT_EQ(u[1], "");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringsTest, StartsWithAndUpper) {
  EXPECT_TRUE(startsWith("INPUT(a)", "INPUT"));
  EXPECT_FALSE(startsWith("IN", "INPUT"));
  EXPECT_EQ(toUpper("nAnD2"), "NAND2");
}

TEST(StringsTest, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 1.5), "1.50");
  EXPECT_EQ(format("plain"), "plain");
}

}  // namespace
}  // namespace fmossim
