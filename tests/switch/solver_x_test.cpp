// Steady-state solver: X-state handling — uncertain switches, blocking of
// weak potential signals by strong definite ones, conservative propagation.
#include <gtest/gtest.h>

#include "circuits/cells.hpp"
#include "switch/builder.hpp"
#include "switch/logic_sim.hpp"
#include "test_util.hpp"

namespace fmossim {
namespace {

using testing::driveAll;
using testing::driveRails;

TEST(XGateTest, UncertainPassAgainstDisagreeingChargeIsX) {
  // Driven 1 through an X-gated pass onto a node holding 0: the node may or
  // may not be overwritten -> X.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId g = b.addInput("g");
  const NodeId ld = b.addInput("ld");
  const NodeId init = b.addInput("init");
  const NodeId n = b.addNode("n");
  cells.pass(g, d, n);
  cells.pass(ld, init, n);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"g", '0'}, {"ld", '1'}, {"init", '0'}, {"d", '1'}});
  driveAll(sim, {{"ld", '0'}});
  EXPECT_NODE(sim, "n", '0');
  driveAll(sim, {{"g", 'X'}});
  EXPECT_NODE(sim, "n", 'X');
}

TEST(XGateTest, UncertainPassAgainstAgreeingChargeStaysDefinite) {
  // Same topology but the stored value agrees with the driven one: no X.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId g = b.addInput("g");
  const NodeId ld = b.addInput("ld");
  const NodeId init = b.addInput("init");
  const NodeId n = b.addNode("n");
  cells.pass(g, d, n);
  cells.pass(ld, init, n);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"g", '0'}, {"ld", '1'}, {"init", '1'}, {"d", '1'}});
  driveAll(sim, {{"ld", '0'}});
  EXPECT_NODE(sim, "n", '1');
  driveAll(sim, {{"g", 'X'}});
  EXPECT_NODE(sim, "n", '1');  // both resolutions give 1: stay definite
}

TEST(XBlockingTest, DefiniteStrongSignalBlocksUncertainWeakOne) {
  // n is definitely driven low at full strength; an X-gated *weak* path to
  // Vdd cannot possibly win, so n stays a definite 0.
  NetworkBuilder b;
  const Supplies rails = ensureSupplies(b);
  const NodeId gx = b.addInput("gx");
  const NodeId n = b.addNode("n");
  b.addTransistor(TransistorType::NType, 2, b.addInput("on"), n, rails.gnd);
  b.addTransistor(TransistorType::NType, 1, gx, rails.vdd, n);  // weak
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"on", '1'}, {"gx", 'X'}});
  EXPECT_NODE(sim, "n", '0');
}

TEST(XBlockingTest, EqualStrengthUncertainPathMakesX) {
  // Same but the uncertain path has equal strength: now it could fight.
  NetworkBuilder b;
  const Supplies rails = ensureSupplies(b);
  const NodeId gx = b.addInput("gx");
  const NodeId n = b.addNode("n");
  b.addTransistor(TransistorType::NType, 2, b.addInput("on"), n, rails.gnd);
  b.addTransistor(TransistorType::NType, 2, gx, rails.vdd, n);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"on", '1'}, {"gx", 'X'}});
  EXPECT_NODE(sim, "n", 'X');
}

TEST(XBlockingTest, BlockingAppliesAtIntermediateNodes) {
  // Vdd -[s2]- m (strongly driven 1), and a weak X path Gnd -[s1,gx]- m
  // -[s1,on]- n: the weak 0 is absorbed at m, so n sees only m's 1.
  NetworkBuilder b;
  const Supplies rails = ensureSupplies(b);
  const NodeId gx = b.addInput("gx");
  const NodeId on = b.addInput("on");
  const NodeId m = b.addNode("m");
  const NodeId n = b.addNode("n");
  b.addTransistor(TransistorType::NType, 2, on, rails.vdd, m);
  b.addTransistor(TransistorType::NType, 1, gx, rails.gnd, m);  // weak, X-gated
  b.addTransistor(TransistorType::NType, 1, on, m, n);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"on", '1'}, {"gx", 'X'}});
  EXPECT_NODE(sim, "m", '1');
  EXPECT_NODE(sim, "n", '1');
}

TEST(XSourceTest, XInputPropagatesThroughConductingPath) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId g = b.addInput("g");
  const NodeId n = b.addNode("n");
  cells.pass(g, d, n);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"g", '1'}, {"d", 'X'}});
  EXPECT_NODE(sim, "n", 'X');
}

TEST(XSourceTest, XOnIsolatedRegionDoesNotLeak) {
  // X on one side of an off transistor must not corrupt the other side.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId dx = b.addInput("dx");
  const NodeId d = b.addInput("d");
  const NodeId a = b.addNode("a");
  const NodeId c = b.addNode("c");
  const NodeId off = b.addInput("off");
  const NodeId on = b.addInput("on");
  cells.pass(on, dx, a);
  cells.pass(off, a, c);
  cells.pass(on, d, c);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"on", '1'}, {"off", '0'}, {"dx", 'X'}, {"d", '1'}});
  EXPECT_NODE(sim, "a", 'X');
  EXPECT_NODE(sim, "c", '1');
}

TEST(XChainTest, SeriesOfUncertainSwitchesStaysConservative) {
  // Two X-gated passes in series from a driven 1 to a node holding 0:
  // still X (the connection may or may not exist).
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId g = b.addInput("g");
  const NodeId ld = b.addInput("ld");
  const NodeId init = b.addInput("init");
  const NodeId mid = b.addNode("mid");
  const NodeId n = b.addNode("n");
  cells.pass(g, d, mid);
  cells.pass(g, mid, n);
  cells.pass(ld, init, n);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"g", '0'}, {"ld", '1'}, {"init", '0'}, {"d", '1'}});
  driveAll(sim, {{"ld", '0'}});
  driveAll(sim, {{"g", 'X'}});
  EXPECT_NODE(sim, "n", 'X');
  EXPECT_NODE(sim, "mid", 'X');
}

TEST(XRecoveryTest, DefiniteDriveCleansUpX) {
  // A node that went X recovers to a definite value once definitely driven —
  // X is not sticky in the model.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId g = b.addInput("g");
  const NodeId n = b.addNode("n");
  cells.pass(g, d, n);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"g", '1'}, {"d", 'X'}});
  EXPECT_NODE(sim, "n", 'X');
  driveAll(sim, {{"d", '1'}});
  EXPECT_NODE(sim, "n", '1');
}

TEST(XInverterChainTest, XStopsAtRestoringLogicWhenInputDefinite) {
  // X on a pass-gate output feeding an inverter gives X out of the inverter,
  // but a definite input restores full levels downstream.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId g = b.addInput("g");
  const NodeId n = b.addNode("n");
  cells.pass(g, d, n);
  cells.inverter(n, "inv1");
  cells.inverter(b.getOrAddNode("inv1"), "inv2");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"g", 'X'}, {"d", '1'}});
  EXPECT_NODE(sim, "inv1", 'X');
  EXPECT_NODE(sim, "inv2", 'X');
  driveAll(sim, {{"g", '1'}});
  EXPECT_NODE(sim, "n", '1');
  EXPECT_NODE(sim, "inv1", '0');
  EXPECT_NODE(sim, "inv2", '1');
}

}  // namespace
}  // namespace fmossim
