// Unit tests for NetworkBuilder and the Network structure.
#include "switch/builder.hpp"

#include <gtest/gtest.h>

namespace fmossim {
namespace {

TEST(BuilderTest, BasicConstruction) {
  NetworkBuilder b;
  const NodeId vdd = b.addInput("Vdd");
  const NodeId gnd = b.addInput("Gnd");
  const NodeId in = b.addInput("in");
  const NodeId out = b.addNode("out");
  const TransId tp = b.addTransistor(TransistorType::PType, 2, in, vdd, out);
  const TransId tn = b.addTransistor(TransistorType::NType, 2, in, out, gnd);

  const Network net = b.build();
  EXPECT_EQ(net.numNodes(), 4u);
  EXPECT_EQ(net.numTransistors(), 2u);
  EXPECT_EQ(net.numInputs(), 3u);
  EXPECT_EQ(net.numStorage(), 1u);
  EXPECT_EQ(net.numFaultDevices(), 0u);

  EXPECT_TRUE(net.isInput(vdd));
  EXPECT_FALSE(net.isInput(out));
  EXPECT_EQ(net.nodeByName("out"), out);
  EXPECT_FALSE(net.findNode("nonexistent").valid());
  EXPECT_THROW(net.nodeByName("nonexistent"), Error);

  // Adjacency.
  EXPECT_EQ(net.node(in).gateOf.size(), 2u);
  EXPECT_EQ(net.node(out).channelOf.size(), 2u);
  EXPECT_EQ(net.node(vdd).channelOf.size(), 1u);

  const auto& p = net.transistor(tp);
  EXPECT_EQ(p.type, TransistorType::PType);
  EXPECT_EQ(p.gate, in);
  EXPECT_EQ(p.otherEnd(vdd), out);
  EXPECT_EQ(p.otherEnd(out), vdd);
  EXPECT_FALSE(p.isFaultDevice());
  EXPECT_FALSE(net.transistor(tn).isFaultDevice());
}

TEST(BuilderTest, NodeSizesMapToLevels) {
  NetworkBuilder b(SignalDomain(2, 3));
  const NodeId small = b.addNode("small", 1);
  const NodeId bus = b.addNode("bus", 2);
  b.addInput("i");
  const Network net = b.build();
  EXPECT_EQ(net.node(small).size, 1);
  EXPECT_EQ(net.node(bus).size, 2);
}

TEST(BuilderTest, RejectsDuplicateAndEmptyNames) {
  NetworkBuilder b;
  b.addNode("a");
  EXPECT_THROW(b.addNode("a"), Error);
  EXPECT_THROW(b.addInput("a"), Error);
  EXPECT_THROW(b.addNode(""), Error);
}

TEST(BuilderTest, GetOrAddNodeReusesExisting) {
  NetworkBuilder b;
  const NodeId a = b.addInput("a");
  EXPECT_EQ(b.getOrAddNode("a"), a);
  const NodeId c = b.getOrAddNode("c");
  EXPECT_EQ(b.getOrAddNode("c"), c);
  EXPECT_EQ(b.numNodes(), 2u);
}

TEST(BuilderTest, RejectsSelfLoopTransistor) {
  NetworkBuilder b;
  const NodeId g = b.addInput("g");
  const NodeId a = b.addNode("a");
  EXPECT_THROW(b.addTransistor(TransistorType::NType, 1, g, a, a), Error);
}

TEST(BuilderTest, RejectsOutOfRangeStrengthAndSize) {
  NetworkBuilder b(SignalDomain(1, 2));
  const NodeId g = b.addInput("g");
  const NodeId a = b.addNode("a");
  const NodeId c = b.addNode("c");
  EXPECT_THROW(b.addTransistor(TransistorType::NType, 3, g, a, c), Error);
  EXPECT_THROW(b.addTransistor(TransistorType::NType, 0, g, a, c), Error);
  EXPECT_THROW(b.addNode("d", 2), Error);
}

TEST(BuilderTest, RejectsEmptyNetwork) {
  NetworkBuilder b;
  EXPECT_THROW(b.build(), Error);
}

TEST(BuilderTest, FaultDevices) {
  NetworkBuilder b;
  const NodeId a = b.addNode("a");
  const NodeId c = b.addNode("c");
  const NodeId x = b.addNode("x1");
  const NodeId y = b.addNode("x2");
  const TransId shortDev = b.addShortFaultDevice(a, c);
  const TransId openDev = b.addOpenFaultDevice(x, y);
  const Network net = b.build();

  EXPECT_EQ(net.numFaultDevices(), 2u);
  EXPECT_TRUE(net.transistor(shortDev).isFaultDevice());
  EXPECT_EQ(*net.transistor(shortDev).goodConduction, State::S0);
  EXPECT_EQ(*net.transistor(openDev).goodConduction, State::S1);
  // Fault devices carry the reserved strongest gamma level.
  EXPECT_EQ(net.transistor(shortDev).strength, net.domain().faultDeviceLevel());
  // functionalTransistors excludes them.
  EXPECT_TRUE(net.functionalTransistors().empty());
  EXPECT_EQ(net.allTransistors().size(), 2u);
}

TEST(BuilderTest, UniqueNameGeneration) {
  NetworkBuilder b;
  b.addNode("t.0");
  const std::string n1 = b.uniqueName("t");
  const std::string n2 = b.uniqueName("t");
  EXPECT_NE(n1, "t.0");
  EXPECT_NE(n1, n2);
  b.addNode(n1);
  b.addNode(n2);
}

TEST(BuilderTest, StorageNodeEnumeration) {
  NetworkBuilder b;
  b.addInput("i0");
  b.addNode("s0");
  b.addInput("i1");
  b.addNode("s1");
  const Network net = b.build();
  const auto storage = net.storageNodes();
  ASSERT_EQ(storage.size(), 2u);
  EXPECT_EQ(net.node(storage[0]).name, "s0");
  EXPECT_EQ(net.node(storage[1]).name, "s1");
  EXPECT_EQ(net.allNodes().size(), 4u);
}

TEST(BuilderTest, BuilderCannotBeReusedAfterBuild) {
  NetworkBuilder b;
  b.addNode("a");
  (void)b.build();
  EXPECT_DEATH((void)b.build(), "build");
}

}  // namespace
}  // namespace fmossim
