// Steady-state solver: basic driven logic, exercised through LogicSimulator
// on hand-built circuits (nMOS ratioed gates, CMOS complementary gates, pass
// transistors).
#include <gtest/gtest.h>

#include "circuits/cells.hpp"
#include "switch/builder.hpp"
#include "switch/logic_sim.hpp"
#include "test_util.hpp"

namespace fmossim {
namespace {

using testing::driveAll;
using testing::driveRails;
using testing::read;

// --- nMOS inverter ---------------------------------------------------------

struct InverterFixture {
  Network net;
  static InverterFixture make() {
    NetworkBuilder b;
    NmosCells cells(b);
    const NodeId in = b.addInput("in");
    cells.inverter(in, "out");
    return {b.build()};
  }
};

class NmosInverterTest : public ::testing::TestWithParam<std::pair<char, char>> {};

TEST_P(NmosInverterTest, TruthTable) {
  const auto [in, expected] = GetParam();
  auto fx = InverterFixture::make();
  LogicSimulator sim(fx.net);
  driveRails(sim);
  driveAll(sim, {{"in", in}});
  EXPECT_NODE(sim, "out", expected);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, NmosInverterTest,
                         ::testing::Values(std::pair{'0', '1'},
                                           std::pair{'1', '0'},
                                           std::pair{'X', 'X'}));

// --- nMOS NOR / NAND -------------------------------------------------------

struct TwoInputRow {
  char a, b, expected;
};

class NmosNorTest : public ::testing::TestWithParam<TwoInputRow> {};

TEST_P(NmosNorTest, TruthTable) {
  const auto row = GetParam();
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId a = b.addInput("a");
  const NodeId bb = b.addInput("b");
  cells.nor({a, bb}, "out");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"a", row.a}, {"b", row.b}});
  EXPECT_NODE(sim, "out", row.expected);
}

// Ternary NOR: 0 dominates to 1 only when both low; any 1 forces 0.
INSTANTIATE_TEST_SUITE_P(AllInputs, NmosNorTest,
                         ::testing::Values(TwoInputRow{'0', '0', '1'},
                                           TwoInputRow{'0', '1', '0'},
                                           TwoInputRow{'1', '0', '0'},
                                           TwoInputRow{'1', '1', '0'},
                                           TwoInputRow{'X', '0', 'X'},
                                           TwoInputRow{'0', 'X', 'X'},
                                           TwoInputRow{'X', '1', '0'},
                                           TwoInputRow{'1', 'X', '0'},
                                           TwoInputRow{'X', 'X', 'X'}));

class NmosNandTest : public ::testing::TestWithParam<TwoInputRow> {};

TEST_P(NmosNandTest, TruthTable) {
  const auto row = GetParam();
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId a = b.addInput("a");
  const NodeId bb = b.addInput("b");
  cells.nand({a, bb}, "out");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"a", row.a}, {"b", row.b}});
  EXPECT_NODE(sim, "out", row.expected);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, NmosNandTest,
                         ::testing::Values(TwoInputRow{'0', '0', '1'},
                                           TwoInputRow{'0', '1', '1'},
                                           TwoInputRow{'1', '0', '1'},
                                           TwoInputRow{'1', '1', '0'},
                                           TwoInputRow{'X', '1', 'X'},
                                           TwoInputRow{'1', 'X', 'X'},
                                           TwoInputRow{'X', '0', '1'},
                                           TwoInputRow{'0', 'X', '1'},
                                           TwoInputRow{'X', 'X', 'X'}));

// --- CMOS gates ------------------------------------------------------------

class CmosInverterTest : public ::testing::TestWithParam<std::pair<char, char>> {};

TEST_P(CmosInverterTest, TruthTable) {
  const auto [in, expected] = GetParam();
  NetworkBuilder b;
  CmosCells cells(b);
  const NodeId inN = b.addInput("in");
  cells.inverter(inN, "out");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"in", in}});
  EXPECT_NODE(sim, "out", expected);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, CmosInverterTest,
                         ::testing::Values(std::pair{'0', '1'},
                                           std::pair{'1', '0'},
                                           std::pair{'X', 'X'}));

class CmosNandTest : public ::testing::TestWithParam<TwoInputRow> {};

TEST_P(CmosNandTest, TruthTable) {
  const auto row = GetParam();
  NetworkBuilder b;
  CmosCells cells(b);
  const NodeId a = b.addInput("a");
  const NodeId bb = b.addInput("b");
  cells.nand({a, bb}, "out");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"a", row.a}, {"b", row.b}});
  EXPECT_NODE(sim, "out", row.expected);
}

// NAND(X,0) must be a definite 1: the 0 input cuts the pull-down chain and
// turns its p-device definitely on.
INSTANTIATE_TEST_SUITE_P(AllInputs, CmosNandTest,
                         ::testing::Values(TwoInputRow{'0', '0', '1'},
                                           TwoInputRow{'0', '1', '1'},
                                           TwoInputRow{'1', '0', '1'},
                                           TwoInputRow{'1', '1', '0'},
                                           TwoInputRow{'X', '0', '1'},
                                           TwoInputRow{'0', 'X', '1'},
                                           TwoInputRow{'X', '1', 'X'},
                                           TwoInputRow{'1', 'X', 'X'},
                                           TwoInputRow{'X', 'X', 'X'}));

class CmosNorTest : public ::testing::TestWithParam<TwoInputRow> {};

TEST_P(CmosNorTest, TruthTable) {
  const auto row = GetParam();
  NetworkBuilder b;
  CmosCells cells(b);
  const NodeId a = b.addInput("a");
  const NodeId bb = b.addInput("b");
  cells.nor({a, bb}, "out");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"a", row.a}, {"b", row.b}});
  EXPECT_NODE(sim, "out", row.expected);
}

INSTANTIATE_TEST_SUITE_P(AllInputs, CmosNorTest,
                         ::testing::Values(TwoInputRow{'0', '0', '1'},
                                           TwoInputRow{'0', '1', '0'},
                                           TwoInputRow{'1', '0', '0'},
                                           TwoInputRow{'1', '1', '0'},
                                           TwoInputRow{'X', '1', '0'},
                                           TwoInputRow{'1', 'X', '0'},
                                           TwoInputRow{'X', '0', 'X'},
                                           TwoInputRow{'0', 'X', 'X'},
                                           TwoInputRow{'X', 'X', 'X'}));

// --- Ratioed logic ---------------------------------------------------------

TEST(RatioedTest, WeakPullUpLosesToStrongPullDown) {
  // A bare fight: weak always-on pull-up vs. gated strong pull-down.
  NetworkBuilder b;
  const Supplies rails = ensureSupplies(b);
  const NodeId en = b.addInput("en");
  const NodeId n = b.addNode("n");
  b.addTransistor(TransistorType::DType, 1, n, rails.vdd, n);      // weak load
  b.addTransistor(TransistorType::NType, 2, en, n, rails.gnd);     // strong driver
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"en", '1'}});
  EXPECT_NODE(sim, "n", '0');  // ratio fight: pull-down wins
  driveAll(sim, {{"en", '0'}});
  EXPECT_NODE(sim, "n", '1');  // load restores the node
}

TEST(RatioedTest, EqualStrengthFightIsX) {
  NetworkBuilder b;
  const Supplies rails = ensureSupplies(b);
  const NodeId en = b.addInput("en");
  const NodeId n = b.addNode("n");
  b.addTransistor(TransistorType::NType, 2, en, rails.vdd, n);
  b.addTransistor(TransistorType::NType, 2, en, n, rails.gnd);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"en", '1'}});
  EXPECT_NODE(sim, "n", 'X');  // short circuit: equal-strength 0 and 1
}

TEST(RatioedTest, SeriesAttenuationToWeakestDevice) {
  // Vdd -[strong]- a -[weak]- b, Gnd -[strong]- b: the Vdd signal arrives at
  // b attenuated to the weak level and loses; a itself stays 1.
  NetworkBuilder b;
  const Supplies rails = ensureSupplies(b);
  const NodeId on = b.addInput("on");
  const NodeId a = b.addNode("a");
  const NodeId bb = b.addNode("b");
  b.addTransistor(TransistorType::NType, 2, on, rails.vdd, a);
  b.addTransistor(TransistorType::NType, 1, on, a, bb);
  b.addTransistor(TransistorType::NType, 2, on, bb, rails.gnd);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"on", '1'}});
  EXPECT_NODE(sim, "a", '1');
  EXPECT_NODE(sim, "b", '0');
}

// --- Pass transistors ------------------------------------------------------

TEST(PassTest, DrivesAndIsolates) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId g = b.addInput("g");
  const NodeId out = b.addNode("out");
  cells.pass(g, d, out);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"g", '1'}, {"d", '1'}});
  EXPECT_NODE(sim, "out", '1');
  driveAll(sim, {{"d", '0'}});
  EXPECT_NODE(sim, "out", '0');  // still connected, follows the input
  driveAll(sim, {{"g", '0'}});
  EXPECT_NODE(sim, "out", '0');  // isolated: holds
  driveAll(sim, {{"d", '1'}});
  EXPECT_NODE(sim, "out", '0');  // input change does not reach it
  driveAll(sim, {{"g", '1'}});
  EXPECT_NODE(sim, "out", '1');  // reconnected
}

TEST(PassTest, TransmissionGatePassesBothPolarities) {
  NetworkBuilder b;
  CmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId c = b.addInput("c");
  const NodeId cb = b.addInput("cb");
  const NodeId out = b.addNode("out");
  cells.transmissionGate(c, cb, d, out);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"c", '1'}, {"cb", '0'}, {"d", '1'}});
  EXPECT_NODE(sim, "out", '1');
  driveAll(sim, {{"d", '0'}});
  EXPECT_NODE(sim, "out", '0');
  driveAll(sim, {{"c", '0'}, {"cb", '1'}});
  driveAll(sim, {{"d", '1'}});
  EXPECT_NODE(sim, "out", '0');  // gate off: holds
}

// --- Bidirectionality ------------------------------------------------------

TEST(BidirectionalTest, ConductionIsSymmetric) {
  // The same transistor drives b from a and a from b depending on which side
  // is driven; no source/drain asymmetry exists.
  NetworkBuilder b;
  const Supplies rails = ensureSupplies(b);
  const NodeId g = b.addInput("g");
  const NodeId a = b.addNode("a");
  const NodeId c = b.addNode("c");
  const NodeId sel = b.addInput("sel");
  b.addTransistor(TransistorType::NType, 2, g, a, c);
  // Drive a from Vdd when sel=1:
  b.addTransistor(TransistorType::NType, 2, sel, rails.vdd, a);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"g", '1'}, {"sel", '1'}});
  EXPECT_NODE(sim, "a", '1');
  EXPECT_NODE(sim, "c", '1');  // conducted a -> c
}

// --- Depletion device ------------------------------------------------------

TEST(DTypeTest, ConductsRegardlessOfGate) {
  NetworkBuilder b;
  const Supplies rails = ensureSupplies(b);
  const NodeId g = b.addInput("g");
  const NodeId n = b.addNode("n");
  b.addTransistor(TransistorType::DType, 1, g, rails.vdd, n);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  for (const char gs : {'0', '1', 'X'}) {
    driveAll(sim, {{"g", gs}});
    EXPECT_NODE(sim, "n", '1');
  }
}

}  // namespace
}  // namespace fmossim
