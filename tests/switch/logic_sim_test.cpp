// LogicSimulator: event-driven behaviour, sequential circuits, fault forcing,
// oscillation handling, counters.
#include <gtest/gtest.h>

#include "circuits/cells.hpp"
#include "switch/builder.hpp"
#include "switch/logic_sim.hpp"
#include "test_util.hpp"

namespace fmossim {
namespace {

using testing::driveAll;
using testing::driveRails;

TEST(LogicSimTest, SetInputRejectsStorageNodes) {
  NetworkBuilder b;
  b.addInput("i");
  const NodeId s = b.addNode("s");
  const Network net = b.build();
  LogicSimulator sim(net);
  EXPECT_THROW(sim.setInput(s, State::S1), Error);
}

TEST(LogicSimTest, UninitializedNodesReadX) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  cells.inverter(in, "out");
  const Network net = b.build();
  LogicSimulator sim(net);
  // Nothing driven yet: everything is X.
  EXPECT_NODE(sim, "out", 'X');
}

TEST(LogicSimTest, InverterChainPropagatesThroughPhases) {
  NetworkBuilder b;
  NmosCells cells(b);
  NodeId n = b.addInput("in");
  for (int i = 0; i < 6; ++i) {
    n = cells.inverter(n, "n" + std::to_string(i));
  }
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"in", '0'}});
  EXPECT_NODE(sim, "n0", '1');
  EXPECT_NODE(sim, "n5", '0');  // six inversions: follows the input
  driveAll(sim, {{"in", '1'}});
  EXPECT_NODE(sim, "n5", '1');
}

TEST(LogicSimTest, DynamicLatchHoldsAcrossClock) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId clk = b.addInput("clk");
  const NodeId latch = cells.dynamicLatch(d, clk, "latch");
  cells.inverter(latch, "q");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"clk", '1'}, {"d", '1'}});
  EXPECT_NODE(sim, "latch", '1');
  EXPECT_NODE(sim, "q", '0');
  driveAll(sim, {{"clk", '0'}});
  driveAll(sim, {{"d", '0'}});
  EXPECT_NODE(sim, "latch", '1');  // isolated: holds
  EXPECT_NODE(sim, "q", '0');
  driveAll(sim, {{"clk", '1'}});
  EXPECT_NODE(sim, "latch", '0');  // follows d again
  EXPECT_NODE(sim, "q", '1');
}

TEST(LogicSimTest, TwoPhaseShiftRegister) {
  // Two-stage pass-transistor shift register with non-overlapping clocks:
  // classic MOS dynamic structure (paper §5 mentions dynamic latches).
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId p1 = b.addInput("p1");
  const NodeId p2 = b.addInput("p2");
  NodeId stageIn = d;
  for (int i = 0; i < 2; ++i) {
    const std::string tag = std::to_string(i);
    const NodeId l1 = cells.dynamicLatch(stageIn, p1, "m" + tag);
    const NodeId inv1 = cells.inverter(l1, "mi" + tag);
    const NodeId l2 = cells.dynamicLatch(inv1, p2, "s" + tag);
    stageIn = cells.inverter(l2, "q" + tag);
  }
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"p1", '0'}, {"p2", '0'}, {"d", '1'}});

  const auto clockCycle = [&](char bit) {
    driveAll(sim, {{"d", bit}});
    driveAll(sim, {{"p1", '1'}});
    driveAll(sim, {{"p1", '0'}});
    driveAll(sim, {{"p2", '1'}});
    driveAll(sim, {{"p2", '0'}});
  };

  clockCycle('1');
  EXPECT_NODE(sim, "q0", '1');
  clockCycle('0');
  EXPECT_NODE(sim, "q0", '0');
  EXPECT_NODE(sim, "q1", '1');  // previous bit shifted one stage on
  clockCycle('1');
  EXPECT_NODE(sim, "q0", '1');
  EXPECT_NODE(sim, "q1", '0');
}

TEST(LogicSimTest, ForceNodeActsAsStuckInput) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  const NodeId mid = cells.inverter(in, "mid");
  cells.inverter(mid, "out");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  sim.forceNode(mid, State::S0);  // mid stuck-at-0
  sim.settle();
  driveAll(sim, {{"in", '1'}});
  EXPECT_NODE(sim, "mid", '0');  // would be 0 anyway
  EXPECT_NODE(sim, "out", '1');
  driveAll(sim, {{"in", '0'}});
  EXPECT_NODE(sim, "mid", '0');  // fault visible: good value would be 1
  EXPECT_NODE(sim, "out", '1');
}

TEST(LogicSimTest, ForcedInputIgnoresSetInput) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  cells.inverter(in, "out");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  sim.forceNode(in, State::S1);  // frozen input (e.g. stuck clock line)
  sim.settle();
  driveAll(sim, {{"in", '0'}});  // ignored
  EXPECT_NODE(sim, "out", '0');
  EXPECT_TRUE(sim.isForcedNode(in));
}

TEST(LogicSimTest, ForceTransistorStuckClosed) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId g = b.addInput("g");
  const NodeId out = b.addNode("out");
  const TransId t = cells.pass(g, d, out);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  sim.forceTransistor(t, State::S1);  // stuck-closed
  sim.settle();
  driveAll(sim, {{"g", '0'}, {"d", '1'}});
  EXPECT_NODE(sim, "out", '1');  // conducts despite gate low
  driveAll(sim, {{"d", '0'}});
  EXPECT_NODE(sim, "out", '0');
}

TEST(LogicSimTest, CmosStuckOpenMakesGateSequential) {
  // The classic non-classical fault (paper §1): a stuck-open transistor in a
  // CMOS NAND turns it into a dynamic element that remembers its previous
  // output.
  NetworkBuilder b;
  CmosCells cells(b);
  const NodeId a = b.addInput("a");
  const NodeId bb = b.addInput("b");
  cells.nand({a, bb}, "out");
  const Network net = b.build();
  // The pull-down chain transistor gated by `a`: find it (n-type, gate a).
  TransId nA;
  for (const TransId t : net.allTransistors()) {
    const auto& tr = net.transistor(t);
    if (tr.type == TransistorType::NType && tr.gate == a) nA = t;
  }
  ASSERT_TRUE(nA.valid());

  LogicSimulator sim(net);
  driveRails(sim);
  sim.forceTransistor(nA, State::S0);  // stuck-open
  sim.settle();
  driveAll(sim, {{"a", '0'}, {"b", '1'}});
  EXPECT_NODE(sim, "out", '1');  // pull-up through a's p-device
  driveAll(sim, {{"a", '1'}});
  // Good circuit: out = NAND(1,1) = 0. Faulty: no path to ground (stuck-open)
  // and no path to Vdd (both p off): the output *holds* its previous 1.
  EXPECT_NODE(sim, "out", '1');
  // After establishing 0 via b=0 -> out=1... drive the other history:
  driveAll(sim, {{"a", '0'}});
  EXPECT_NODE(sim, "out", '1');
  driveAll(sim, {{"a", '1'}, {"b", '1'}});
  EXPECT_NODE(sim, "out", '1') << "sequential memory of the fault";
}

TEST(LogicSimTest, FaultDeviceInactiveInGoodCircuit) {
  // A short fault device must not disturb the good circuit; once activated,
  // two equal-strength CMOS drivers fight to X.
  NetworkBuilder b;
  CmosCells cells(b);
  const NodeId i1 = b.addInput("i1");
  const NodeId i2 = b.addInput("i2");
  const NodeId n1 = cells.inverter(i1, "n1");
  const NodeId n2 = cells.inverter(i2, "n2");
  const TransId ft = b.addShortFaultDevice(n1, n2);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"i1", '0'}, {"i2", '1'}});
  EXPECT_NODE(sim, "n1", '1');
  EXPECT_NODE(sim, "n2", '0');
  sim.forceTransistor(ft, State::S1);
  sim.settle();
  EXPECT_NODE(sim, "n1", 'X');
  EXPECT_NODE(sim, "n2", 'X');
}

TEST(LogicSimTest, ActivatedShortResolvesTowardStrongerDriver) {
  // nMOS ratioed version: the weak pull-up side loses the fight and both
  // sides settle to a definite 0 — shorts are resolved by relative strength,
  // exactly what the switch-level model buys over gate-level fault models.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId i1 = b.addInput("i1");
  const NodeId i2 = b.addInput("i2");
  const NodeId n1 = cells.inverter(i1, "n1");
  const NodeId n2 = cells.inverter(i2, "n2");
  const TransId ft = b.addShortFaultDevice(n1, n2);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"i1", '0'}, {"i2", '1'}});
  EXPECT_NODE(sim, "n1", '1');  // weak load pulls up
  EXPECT_NODE(sim, "n2", '0');  // strong driver pulls down
  sim.forceTransistor(ft, State::S1);
  sim.settle();
  EXPECT_NODE(sim, "n1", '0');
  EXPECT_NODE(sim, "n2", '0');
}

TEST(LogicSimTest, OpenFaultDeviceSplitsNode) {
  // Wire modeled as two halves w1-w2 joined by an open fault device.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  const NodeId w1 = cells.inverter(in, "w1");
  const NodeId w2 = b.addNode("w2");
  const TransId ft = b.addOpenFaultDevice(w1, w2);
  cells.inverter(w2, "out");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"in", '0'}});
  EXPECT_NODE(sim, "w2", '1');  // good circuit: wire is whole
  EXPECT_NODE(sim, "out", '0');
  sim.forceTransistor(ft, State::S0);  // break the wire
  sim.settle();
  driveAll(sim, {{"in", '1'}});
  EXPECT_NODE(sim, "w1", '0');
  EXPECT_NODE(sim, "w2", '1');  // floating half holds old charge
  EXPECT_NODE(sim, "out", '0');
}

TEST(LogicSimTest, RingOscillatorGoesXWithOscillationFlag) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId en = b.addInput("en");
  // NAND-based ring: out = NAND(en, r2), r1 = INV(out), r2 = INV(r1).
  const NodeId r2 = b.addNode("r2");
  const NodeId out = b.addNode("ring");
  cells.nandInto({en, r2}, out);
  const NodeId r1 = cells.inverter(out, "r1");
  cells.inverterInto(r1, r2);
  const Network net = b.build();
  LogicSimulator sim(net, SimOptions{.settleLimit = 50});
  driveRails(sim);
  driveAll(sim, {{"en", '0'}});  // stable: out=1, r1=0, r2=1
  EXPECT_NODE(sim, "ring", '1');
  sim.setInput(net.nodeByName("en"), State::S1);
  const SettleResult res = sim.settle();
  EXPECT_TRUE(res.oscillated);
  EXPECT_NODE(sim, "ring", 'X');
  EXPECT_GE(sim.counters().oscillations, 1u);
}

TEST(LogicSimTest, ResetStateReturnsToAllX) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  cells.inverter(in, "out");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"in", '0'}});
  EXPECT_NODE(sim, "out", '1');
  sim.resetState();
  EXPECT_NODE(sim, "in", 'X');
  sim.settle();
  // Inputs are X again; output follows as X (pull-down X vs load).
  EXPECT_NODE(sim, "out", 'X');
}

TEST(LogicSimTest, ClearForcesRestoresGoodBehaviour) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  const NodeId mid = cells.inverter(in, "mid");
  cells.inverter(mid, "out");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  sim.forceNode(mid, State::S0);
  sim.settle();
  driveAll(sim, {{"in", '0'}});
  EXPECT_NODE(sim, "out", '1');  // faulty
  sim.clearForces();
  sim.settle();
  EXPECT_NODE(sim, "mid", '1');
  EXPECT_NODE(sim, "out", '0');  // good again
}

TEST(LogicSimTest, CountersAdvanceMonotonically) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  cells.inverter(in, "out");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  const auto before = sim.counters();
  driveAll(sim, {{"in", '1'}});
  driveAll(sim, {{"in", '0'}});
  const auto after = sim.counters();
  EXPECT_GT(after.settles, before.settles);
  EXPECT_GT(after.nodeEvals, before.nodeEvals);
  EXPECT_GT(after.transistorToggles, before.transistorToggles);
  sim.resetCounters();
  EXPECT_EQ(sim.counters().settles, 0u);
}

TEST(LogicSimTest, RedundantInputAssignmentIsCheap) {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  cells.inverter(in, "out");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"in", '1'}});
  const auto evalsBefore = sim.counters().nodeEvals;
  driveAll(sim, {{"in", '1'}});  // no change
  EXPECT_EQ(sim.counters().nodeEvals, evalsBefore)
      << "re-asserting an unchanged input must not schedule work";
}

}  // namespace
}  // namespace fmossim
