// Multi-strength / multi-size domains: the generalized ratioed behaviour of
// paper §2 ("we can introduce additional strengths to model more peculiar
// circuit structures or to model fault effects") and the reserved fault-
// device strength dominating every functional driver.
#include <gtest/gtest.h>

#include "circuits/cells.hpp"
#include "switch/builder.hpp"
#include "switch/logic_sim.hpp"
#include "test_util.hpp"

namespace fmossim {
namespace {

using testing::driveAll;
using testing::driveRails;

// Three strengths: 1 (weak), 2 (normal), 3 (strong). Two fighting drivers
// of parameterized strengths; result follows the stronger, X on tie.
struct FightCase {
  unsigned upStrength;
  unsigned downStrength;
  char expected;
};

class StrengthFightTest : public ::testing::TestWithParam<FightCase> {};

TEST_P(StrengthFightTest, StrongerDriverWins) {
  const auto pc = GetParam();
  NetworkBuilder b(SignalDomain(2, 3));
  const Supplies rails = ensureSupplies(b);
  const NodeId on = b.addInput("on");
  const NodeId n = b.addNode("n");
  b.addTransistor(TransistorType::NType, pc.upStrength, on, rails.vdd, n);
  b.addTransistor(TransistorType::NType, pc.downStrength, on, n, rails.gnd);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"on", '1'}});
  EXPECT_NODE(sim, "n", pc.expected);
}

INSTANTIATE_TEST_SUITE_P(AllPairs, StrengthFightTest,
                         ::testing::Values(FightCase{1, 1, 'X'},
                                           FightCase{1, 2, '0'},
                                           FightCase{1, 3, '0'},
                                           FightCase{2, 1, '1'},
                                           FightCase{2, 2, 'X'},
                                           FightCase{2, 3, '0'},
                                           FightCase{3, 1, '1'},
                                           FightCase{3, 2, '1'},
                                           FightCase{3, 3, 'X'}));

TEST(StrengthTest, FourSizeChargeSharingFollowsLargestCapacitor) {
  // Sizes 1..4: the largest node's charge wins any sharing event.
  NetworkBuilder b(SignalDomain(4, 2));
  NmosCells cells(b);
  const NodeId ld = b.addInput("ld");
  const NodeId share = b.addInput("share");
  const NodeId d = b.addInput("d");
  const NodeId small = b.addNode("small", 1);
  const NodeId mid1 = b.addNode("mid1", 2);
  const NodeId mid2 = b.addNode("mid2", 3);
  const NodeId big = b.addNode("big", 4);
  cells.pass(ld, d, big);
  cells.pass(share, big, mid2);
  cells.pass(share, mid2, mid1);
  cells.pass(share, mid1, small);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  // Load big=1, leave others at X, then share: 1 wins everywhere.
  driveAll(sim, {{"share", '0'}, {"ld", '1'}, {"d", '1'}});
  driveAll(sim, {{"ld", '0'}});
  driveAll(sim, {{"share", '1'}});
  EXPECT_NODE(sim, "small", '1');
  EXPECT_NODE(sim, "mid1", '1');
  EXPECT_NODE(sim, "mid2", '1');
  EXPECT_NODE(sim, "big", '1');
}

TEST(StrengthTest, IntermediateSizeBeatsSmallerLosesToLarger) {
  NetworkBuilder b(SignalDomain(3, 1));
  NmosCells cells(b, CellStrengths{1, 1});  // single-strength domain
  const NodeId la = b.addInput("la");
  const NodeId lb = b.addInput("lb");
  const NodeId share = b.addInput("share");
  const NodeId da = b.addInput("da");
  const NodeId db = b.addInput("db");
  const NodeId a = b.addNode("a", 2);
  const NodeId c = b.addNode("c", 3);
  cells.pass(la, da, a);
  cells.pass(lb, db, c);
  cells.pass(share, a, c);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"share", '0'}, {"la", '1'}, {"lb", '1'}, {"da", '1'}, {"db", '0'}});
  driveAll(sim, {{"la", '0'}, {"lb", '0'}});
  driveAll(sim, {{"share", '1'}});
  // size-3 node (holding 0) overrides size-2 node (holding 1).
  EXPECT_NODE(sim, "a", '0');
  EXPECT_NODE(sim, "c", '0');
}

TEST(StrengthTest, FaultDeviceStrengthDominatesAllDrivers) {
  // A short fault device must out-drive even the strongest functional
  // transistor ("a transistor of very high strength", paper §3).
  NetworkBuilder b(SignalDomain(2, 3));
  const Supplies rails = ensureSupplies(b);
  const NodeId on = b.addInput("on");
  const NodeId n = b.addNode("n");
  const NodeId m = b.addNode("m");
  // n strongly driven high (strength 2 of 3; level below the fault level).
  b.addTransistor(TransistorType::NType, 2, on, rails.vdd, n);
  // m tied to ground through a strength-2 device.
  b.addTransistor(TransistorType::NType, 2, on, m, rails.gnd);
  const TransId ft = b.addShortFaultDevice(n, m);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"on", '1'}});
  EXPECT_NODE(sim, "n", '1');
  EXPECT_NODE(sim, "m", '0');
  sim.forceTransistor(ft, State::S1);
  sim.settle();
  // Through the strength-3 short the two strength-2 drivers now fight at
  // their own (equal) strength: X on both — the short is "transparent".
  EXPECT_NODE(sim, "n", 'X');
  EXPECT_NODE(sim, "m", 'X');
}

TEST(StrengthTest, AttenuationChainDropsToWeakestLink) {
  // Signal through strengths 3 -> 1 -> 2 arrives at strength 1 and loses to
  // a strength-2 opponent.
  NetworkBuilder b(SignalDomain(1, 3));
  const Supplies rails = ensureSupplies(b);
  const NodeId on = b.addInput("on");
  const NodeId a = b.addNode("a");
  const NodeId c = b.addNode("c");
  b.addTransistor(TransistorType::NType, 3, on, rails.vdd, a);
  b.addTransistor(TransistorType::NType, 1, on, a, c);  // weak link
  b.addTransistor(TransistorType::NType, 2, on, c, rails.gnd);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"on", '1'}});
  EXPECT_NODE(sim, "a", '1');
  EXPECT_NODE(sim, "c", '0');
}

}  // namespace
}  // namespace fmossim
