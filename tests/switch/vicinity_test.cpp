// Structural tests of the vicinity builder (dynamic locality, paper §4):
// membership through conducting transistors, input-node boundaries, X
// conduction, claim deduplication, and input-seed expansion.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "switch/builder.hpp"
#include "switch/vicinity.hpp"

namespace fmossim {
namespace {

// A view whose states are set directly by the test.
struct ManualView {
  const Network* net;
  std::vector<State> states;
  std::vector<State> cond;
  std::vector<bool> stuck;  // per-node "behaves as input" override

  explicit ManualView(const Network& n)
      : net(&n),
        states(n.numNodes(), State::SX),
        cond(n.numTransistors(), State::S0),
        stuck(n.numNodes(), false) {}

  State nodeState(NodeId id) const { return states[id.value]; }
  State conduction(TransId t) const { return cond[t.value]; }
  bool isInputNode(NodeId id) const {
    return net->isInput(id) || stuck[id.value];
  }
};

// Test chain: input -t0- a -t1- b -t2- c, all gated by input g.
struct Chain {
  NodeId in, a, b, c;
  TransId t0, t1, t2;
  Network net;

  Chain() : net(buildNet(*this)) {}

  static Network buildNet(Chain& f) {
    NetworkBuilder bld;
    const NodeId g = bld.addInput("g");
    f.in = bld.addInput("in");
    f.a = bld.addNode("a");
    f.b = bld.addNode("b");
    f.c = bld.addNode("c");
    f.t0 = bld.addTransistor(TransistorType::NType, 2, g, f.in, f.a);
    f.t1 = bld.addTransistor(TransistorType::NType, 2, g, f.a, f.b);
    f.t2 = bld.addTransistor(TransistorType::NType, 2, g, f.b, f.c);
    return bld.build();
  }
};

std::set<std::string> memberNames(const Network& net, const Vicinity& vic) {
  std::set<std::string> names;
  for (const NodeId n : vic.members) names.insert(net.node(n).name);
  return names;
}

TEST(VicinityTest, GrowsThroughConductingTransistors) {
  Chain f;
  ManualView view(f.net);
  view.cond[f.t0.value] = State::S1;
  view.cond[f.t1.value] = State::S1;
  view.cond[f.t2.value] = State::S1;
  view.states[f.in.value] = State::S1;

  VicinityBuilder vb(f.net);
  vb.newGeneration();
  Vicinity vic;
  ASSERT_TRUE(vb.grow(view, f.a, vic));
  EXPECT_EQ(memberNames(f.net, vic), (std::set<std::string>{"a", "b", "c"}));
  EXPECT_EQ(vic.edges.size(), 2u);       // a-b, b-c
  ASSERT_EQ(vic.inputEdges.size(), 1u);  // in-a
  EXPECT_EQ(vic.inputEdges[0].value, State::S1);
  EXPECT_TRUE(vic.inputEdges[0].definite);
}

TEST(VicinityTest, OffTransistorBoundsTheRegion) {
  Chain f;
  ManualView view(f.net);
  view.cond[f.t0.value] = State::S1;
  view.cond[f.t1.value] = State::S1;
  view.cond[f.t2.value] = State::S0;  // b-c off

  VicinityBuilder vb(f.net);
  vb.newGeneration();
  Vicinity vic;
  ASSERT_TRUE(vb.grow(view, f.a, vic));
  EXPECT_EQ(memberNames(f.net, vic), (std::set<std::string>{"a", "b"}));
}

TEST(VicinityTest, XConductionIncludedAsNonDefinite) {
  Chain f;
  ManualView view(f.net);
  view.cond[f.t0.value] = State::S0;
  view.cond[f.t1.value] = State::SX;

  VicinityBuilder vb(f.net);
  vb.newGeneration();
  Vicinity vic;
  ASSERT_TRUE(vb.grow(view, f.a, vic));
  EXPECT_EQ(memberNames(f.net, vic), (std::set<std::string>{"a", "b"}));
  ASSERT_EQ(vic.edges.size(), 1u);
  EXPECT_FALSE(vic.edges[0].definite);
}

TEST(VicinityTest, InputNodesAreBoundariesNotMembers) {
  // Even with everything conducting, the input node never becomes a member
  // and paths do not continue through it.
  NetworkBuilder bld;
  const NodeId g = bld.addInput("g");
  const NodeId mid = bld.addInput("midInput");
  const NodeId a = bld.addNode("a");
  const NodeId c = bld.addNode("c");
  const TransId t0 = bld.addTransistor(TransistorType::NType, 2, g, a, mid);
  const TransId t1 = bld.addTransistor(TransistorType::NType, 2, g, mid, c);
  const Network net = bld.build();

  ManualView view(net);
  view.cond[t0.value] = State::S1;
  view.cond[t1.value] = State::S1;
  view.states[mid.value] = State::S0;

  VicinityBuilder vb(net);
  vb.newGeneration();
  Vicinity vic;
  ASSERT_TRUE(vb.grow(view, a, vic));
  // c is NOT reached: the path passes through an input node.
  EXPECT_EQ(memberNames(net, vic), (std::set<std::string>{"a"}));
  ASSERT_EQ(vic.inputEdges.size(), 1u);
}

TEST(VicinityTest, PerCircuitStuckNodeActsAsInputBoundary) {
  Chain f;
  ManualView view(f.net);
  view.cond[f.t0.value] = State::S1;
  view.cond[f.t1.value] = State::S1;
  view.cond[f.t2.value] = State::S1;
  view.stuck[f.b.value] = true;  // node fault: b behaves as an input (paper §3)
  view.states[f.b.value] = State::S1;

  VicinityBuilder vb(f.net);
  vb.newGeneration();
  Vicinity vic;
  ASSERT_TRUE(vb.grow(view, f.a, vic));
  EXPECT_EQ(memberNames(f.net, vic), (std::set<std::string>{"a"}));
  ASSERT_EQ(vic.inputEdges.size(), 2u);  // from "in" and from stuck "b"
}

TEST(VicinityTest, ClaimedSeedsAreSkippedWithinAGeneration) {
  Chain f;
  ManualView view(f.net);
  view.cond[f.t1.value] = State::S1;

  VicinityBuilder vb(f.net);
  vb.newGeneration();
  Vicinity vic;
  ASSERT_TRUE(vb.grow(view, f.a, vic));
  EXPECT_EQ(vic.size(), 2u);  // a, b
  EXPECT_FALSE(vb.grow(view, f.b, vic)) << "b already claimed";
  // A new generation allows re-growth.
  vb.newGeneration();
  ASSERT_TRUE(vb.grow(view, f.b, vic));
  EXPECT_EQ(vic.size(), 2u);
}

TEST(VicinityTest, DisjointRegionsGetDistinctVicinities) {
  Chain f;
  ManualView view(f.net);
  // t1 off: {a} and {b, c} are separate.
  view.cond[f.t1.value] = State::S0;
  view.cond[f.t2.value] = State::S1;

  VicinityBuilder vb(f.net);
  vb.newGeneration();
  Vicinity v1, v2;
  ASSERT_TRUE(vb.grow(view, f.a, v1));
  ASSERT_TRUE(vb.grow(view, f.b, v2));
  EXPECT_EQ(memberNames(f.net, v1), (std::set<std::string>{"a"}));
  EXPECT_EQ(memberNames(f.net, v2), (std::set<std::string>{"b", "c"}));
}

TEST(VicinityTest, InputSeedExpandsToConductingNeighbours) {
  Chain f;
  ManualView view(f.net);
  view.cond[f.t0.value] = State::S1;
  view.cond[f.t1.value] = State::S0;

  VicinityBuilder vb(f.net);
  vb.newGeneration();
  Vicinity vic;
  ASSERT_TRUE(vb.grow(view, f.in, vic));
  EXPECT_EQ(memberNames(f.net, vic), (std::set<std::string>{"a"}));
}

TEST(VicinityTest, InputSeedWithNoConductingNeighboursIsEmpty) {
  Chain f;
  ManualView view(f.net);  // everything off
  VicinityBuilder vb(f.net);
  vb.newGeneration();
  Vicinity vic;
  EXPECT_FALSE(vb.grow(view, f.in, vic));
  EXPECT_EQ(vic.size(), 0u);
}

TEST(VicinityTest, MemberChargeAndSizeAreCaptured) {
  NetworkBuilder bld;
  const NodeId g = bld.addInput("g");
  const NodeId bus = bld.addNode("bus", 2);
  const NodeId s = bld.addNode("s", 1);
  const TransId t = bld.addTransistor(TransistorType::NType, 2, g, bus, s);
  const Network net = bld.build();

  ManualView view(net);
  view.cond[t.value] = State::S1;
  view.states[bus.value] = State::S1;
  view.states[s.value] = State::S0;

  VicinityBuilder vb(net);
  vb.newGeneration();
  Vicinity vic;
  ASSERT_TRUE(vb.grow(view, s, vic));
  ASSERT_EQ(vic.size(), 2u);
  for (std::size_t i = 0; i < vic.size(); ++i) {
    if (vic.members[i] == bus) {
      EXPECT_EQ(vic.memberSize[i], 2);
      EXPECT_EQ(vic.memberCharge[i], State::S1);
    } else {
      EXPECT_EQ(vic.memberSize[i], 1);
      EXPECT_EQ(vic.memberCharge[i], State::S0);
    }
  }
}

TEST(VicinityTest, ParallelTransistorsProduceParallelEdges) {
  NetworkBuilder bld;
  const NodeId g = bld.addInput("g");
  const NodeId a = bld.addNode("a");
  const NodeId c = bld.addNode("c");
  const TransId t0 = bld.addTransistor(TransistorType::NType, 2, g, a, c);
  const TransId t1 = bld.addTransistor(TransistorType::NType, 1, g, a, c);
  const Network net = bld.build();

  ManualView view(net);
  view.cond[t0.value] = State::S1;
  view.cond[t1.value] = State::S1;

  VicinityBuilder vb(net);
  vb.newGeneration();
  Vicinity vic;
  ASSERT_TRUE(vb.grow(view, a, vic));
  EXPECT_EQ(vic.edges.size(), 2u);
}


TEST(VicinityStaticTest, StaticGrowthCoversDcConnectedComponent) {
  // growStatic traverses off transistors for membership (MOSSIM-81 cost
  // model) but gives them no edges.
  Chain f;
  ManualView view(f.net);
  view.cond[f.t1.value] = State::S1;  // a-b on, b-c off
  view.cond[f.t2.value] = State::S0;

  VicinityBuilder vb(f.net);
  vb.newGeneration();
  Vicinity vic;
  ASSERT_TRUE(vb.growStatic(view, f.a, vic));
  EXPECT_EQ(memberNames(f.net, vic), (std::set<std::string>{"a", "b", "c"}))
      << "static partition includes the far side of the off transistor";
  EXPECT_EQ(vic.edges.size(), 1u) << "only the conducting transistor has an edge";
}

TEST(VicinityStaticTest, StaticGrowthStillStopsAtInputs) {
  Chain f;
  ManualView view(f.net);  // everything off
  VicinityBuilder vb(f.net);
  vb.newGeneration();
  Vicinity vic;
  ASSERT_TRUE(vb.growStatic(view, f.a, vic));
  // in (input) is a boundary even statically; a, b, c are all members.
  EXPECT_EQ(memberNames(f.net, vic), (std::set<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(vic.inputEdges.empty()) << "off input edges carry no drive";
}

TEST(VicinityTest, DescribeProducesReadableSummary) {
  Chain f;
  ManualView view(f.net);
  view.cond[f.t1.value] = State::S1;
  VicinityBuilder vb(f.net);
  vb.newGeneration();
  Vicinity vic;
  ASSERT_TRUE(vb.grow(view, f.a, vic));
  const std::string d = describeVicinity(f.net, vic);
  EXPECT_NE(d.find("a="), std::string::npos);
  EXPECT_NE(d.find("edge"), std::string::npos);
}

}  // namespace
}  // namespace fmossim
