// Unit tests for the ternary signal algebra, including the full Table 1 of
// the paper (transistor conduction as a function of gate state).
#include "switch/signal.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace fmossim {
namespace {

TEST(StateTest, CharRoundTrip) {
  EXPECT_EQ(stateChar(State::S0), '0');
  EXPECT_EQ(stateChar(State::S1), '1');
  EXPECT_EQ(stateChar(State::SX), 'X');
  EXPECT_EQ(stateFromChar('0'), State::S0);
  EXPECT_EQ(stateFromChar('1'), State::S1);
  EXPECT_EQ(stateFromChar('X'), State::SX);
  EXPECT_EQ(stateFromChar('x'), State::SX);
  EXPECT_THROW(stateFromChar('2'), Error);
  EXPECT_THROW(stateFromChar(' '), Error);
}

TEST(StateTest, Invert) {
  EXPECT_EQ(invertState(State::S0), State::S1);
  EXPECT_EQ(invertState(State::S1), State::S0);
  EXPECT_EQ(invertState(State::SX), State::SX);
}

TEST(StateTest, InvertIsInvolution) {
  for (State s : {State::S0, State::S1, State::SX}) {
    EXPECT_EQ(invertState(invertState(s)), s);
  }
}

TEST(StateTest, MergeValues) {
  EXPECT_EQ(mergeValues(State::S0, State::S0), State::S0);
  EXPECT_EQ(mergeValues(State::S1, State::S1), State::S1);
  EXPECT_EQ(mergeValues(State::S0, State::S1), State::SX);
  EXPECT_EQ(mergeValues(State::S1, State::S0), State::SX);
  EXPECT_EQ(mergeValues(State::SX, State::S0), State::SX);
  EXPECT_EQ(mergeValues(State::S1, State::SX), State::SX);
  EXPECT_EQ(mergeValues(State::SX, State::SX), State::SX);
}

TEST(StateTest, MergeIsCommutativeAndIdempotent) {
  const State all[] = {State::S0, State::S1, State::SX};
  for (State a : all) {
    EXPECT_EQ(mergeValues(a, a), a);
    for (State b : all) {
      EXPECT_EQ(mergeValues(a, b), mergeValues(b, a));
    }
  }
}

// Paper Table 1:
//   gate state | n-type  p-type  d-type
//       0      |   0       1       1
//       1      |   1       0       1
//       X      |   X       X       1
using Table1Row = std::tuple<State, State, State, State>;  // gate, n, p, d

class Table1Test : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Test, ConductionMatchesPaper) {
  const auto [gate, n, p, d] = GetParam();
  EXPECT_EQ(conductionState(TransistorType::NType, gate), n);
  EXPECT_EQ(conductionState(TransistorType::PType, gate), p);
  EXPECT_EQ(conductionState(TransistorType::DType, gate), d);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable1, Table1Test,
    ::testing::Values(
        Table1Row{State::S0, State::S0, State::S1, State::S1},
        Table1Row{State::S1, State::S1, State::S0, State::S1},
        Table1Row{State::SX, State::SX, State::SX, State::S1}));

TEST(TransistorTypeTest, Names) {
  EXPECT_STREQ(transistorTypeName(TransistorType::NType), "n");
  EXPECT_STREQ(transistorTypeName(TransistorType::PType), "p");
  EXPECT_STREQ(transistorTypeName(TransistorType::DType), "d");
  EXPECT_EQ(transistorTypeFromName("n"), TransistorType::NType);
  EXPECT_EQ(transistorTypeFromName("e"), TransistorType::NType);
  EXPECT_EQ(transistorTypeFromName("P"), TransistorType::PType);
  EXPECT_EQ(transistorTypeFromName("d"), TransistorType::DType);
  EXPECT_THROW(transistorTypeFromName("q"), Error);
  EXPECT_THROW(transistorTypeFromName("nn"), Error);
  EXPECT_THROW(transistorTypeFromName(""), Error);
}

TEST(SignalDomainTest, LevelLayout) {
  const SignalDomain d(2, 3);
  // lambda=0, sizes 1..2, strengths 3..5, omega=6.
  EXPECT_EQ(d.sizeLevel(1), 1);
  EXPECT_EQ(d.sizeLevel(2), 2);
  EXPECT_EQ(d.strengthLevel(1), 3);
  EXPECT_EQ(d.strengthLevel(3), 5);
  EXPECT_EQ(d.omega(), 6);
  EXPECT_EQ(d.numLevels(), 7u);
  EXPECT_TRUE(d.isSizeLevel(1));
  EXPECT_TRUE(d.isSizeLevel(2));
  EXPECT_FALSE(d.isSizeLevel(3));
  EXPECT_TRUE(d.isStrengthLevel(3));
  EXPECT_TRUE(d.isStrengthLevel(5));
  EXPECT_FALSE(d.isStrengthLevel(6));
  EXPECT_EQ(d.faultDeviceLevel(), 5);
}

TEST(SignalDomainTest, TotalOrderSizesBelowStrengthsBelowOmega) {
  for (unsigned k = 1; k <= 4; ++k) {
    for (unsigned g = 1; g <= 4; ++g) {
      const SignalDomain d(k, g);
      EXPECT_LT(d.sizeLevel(k), d.strengthLevel(1));
      EXPECT_LT(d.strengthLevel(g), d.omega());
      EXPECT_GT(d.sizeLevel(1), 0);  // everything above lambda
    }
  }
}

TEST(SignalDomainTest, RejectsOutOfRangeConfig) {
  EXPECT_THROW(SignalDomain(0, 1), Error);
  EXPECT_THROW(SignalDomain(1, 0), Error);
  EXPECT_THROW(SignalDomain(9, 1), Error);
  EXPECT_THROW(SignalDomain(1, 9), Error);
  const SignalDomain d(2, 2);
  EXPECT_THROW(d.sizeLevel(0), Error);
  EXPECT_THROW(d.sizeLevel(3), Error);
  EXPECT_THROW(d.strengthLevel(0), Error);
  EXPECT_THROW(d.strengthLevel(3), Error);
}

}  // namespace
}  // namespace fmossim
