// Property-based tests of the steady-state solver on randomly generated
// vicinities: determinism, idempotence (a steady state is a fixed point),
// charge conservation for isolated nodes, strength-domination invariants,
// and monotonicity of X (replacing a definite source value by X never makes
// the result *more* definite).
#include <gtest/gtest.h>

#include "switch/solver.hpp"
#include "util/rng.hpp"

namespace fmossim {
namespace {

State randomState(Rng& rng) {
  const auto r = rng.below(3);
  return static_cast<State>(r);
}

// Random connected-ish vicinity over the default domain.
Vicinity randomVicinity(Rng& rng, const SignalDomain& domain) {
  Vicinity vic;
  const unsigned n = 1 + static_cast<unsigned>(rng.below(10));
  for (unsigned i = 0; i < n; ++i) {
    vic.members.push_back(NodeId(i));
    vic.memberSize.push_back(
        domain.sizeLevel(1 + static_cast<unsigned>(rng.below(domain.numSizes()))));
    vic.memberCharge.push_back(randomState(rng));
  }
  const unsigned edges = static_cast<unsigned>(rng.below(2 * n + 1));
  for (unsigned e = 0; e < edges; ++e) {
    const auto a = static_cast<std::uint32_t>(rng.below(n));
    const auto b = static_cast<std::uint32_t>(rng.below(n));
    if (a == b) continue;
    vic.edges.push_back({a, b,
                         domain.strengthLevel(
                             1 + static_cast<unsigned>(rng.below(domain.numStrengths()))),
                         rng.chance(0.7)});
  }
  const unsigned inputs = static_cast<unsigned>(rng.below(3));
  for (unsigned i = 0; i < inputs; ++i) {
    vic.inputEdges.push_back({static_cast<std::uint32_t>(rng.below(n)),
                              domain.strengthLevel(1 + static_cast<unsigned>(
                                                           rng.below(domain.numStrengths()))),
                              rng.chance(0.7), randomState(rng)});
  }
  return vic;
}

// Information order: X is below 0 and 1. lessDefinite(a, b) == a is no more
// definite than b.
bool noMoreDefinite(State a, State b) { return a == b || a == State::SX; }

class SolverPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverPropertyTest, DeterministicAcrossSolverInstances) {
  Rng rng(GetParam());
  const SignalDomain domain;
  for (int trial = 0; trial < 50; ++trial) {
    const Vicinity vic = randomVicinity(rng, domain);
    SteadyStateSolver s1(domain), s2(domain);
    std::vector<State> o1, o2;
    s1.solve(vic, o1);
    s2.solve(vic, o2);
    EXPECT_EQ(o1, o2);
  }
}

TEST_P(SolverPropertyTest, SteadyStateIsAFixedPoint) {
  // Re-solving with the computed states as charge returns the same states:
  // the "steady state" really is steady.
  Rng rng(GetParam() + 1000);
  const SignalDomain domain;
  SteadyStateSolver solver(domain);
  for (int trial = 0; trial < 50; ++trial) {
    Vicinity vic = randomVicinity(rng, domain);
    std::vector<State> first, second;
    solver.solve(vic, first);
    vic.memberCharge = first;
    solver.solve(vic, second);
    EXPECT_EQ(first, second) << "trial " << trial;
  }
}

TEST_P(SolverPropertyTest, IsolatedNodesKeepTheirCharge) {
  Rng rng(GetParam() + 2000);
  const SignalDomain domain;
  SteadyStateSolver solver(domain);
  for (int trial = 0; trial < 30; ++trial) {
    Vicinity vic = randomVicinity(rng, domain);
    vic.edges.clear();
    vic.inputEdges.clear();
    std::vector<State> out;
    solver.solve(vic, out);
    for (std::size_t i = 0; i < vic.size(); ++i) {
      EXPECT_EQ(out[i], vic.memberCharge[i]);
    }
  }
}

TEST_P(SolverPropertyTest, OmegaDefiniteDriveDominatesEverything) {
  // Add a definite input edge at the strongest transistor strength to every
  // node: each node must take exactly that value.
  Rng rng(GetParam() + 3000);
  const SignalDomain domain;
  SteadyStateSolver solver(domain);
  for (int trial = 0; trial < 30; ++trial) {
    Vicinity vic = randomVicinity(rng, domain);
    // Remove competing input drives (they could fight at equal strength),
    // then drive every node definitely at the strongest level.
    vic.inputEdges.clear();
    const State v = rng.chance(0.5) ? State::S1 : State::S0;
    for (std::uint32_t i = 0; i < vic.size(); ++i) {
      vic.inputEdges.push_back(
          {i, domain.strengthLevel(domain.numStrengths()), true, v});
    }
    std::vector<State> out;
    solver.solve(vic, out);
    for (std::size_t i = 0; i < vic.size(); ++i) {
      EXPECT_EQ(out[i], v) << "trial " << trial;
    }
  }
}

TEST_P(SolverPropertyTest, XingASourceNeverAddsDefiniteness) {
  // Conservativeness: replacing one charge or input value with X can only
  // move results down the information order (or leave them unchanged).
  Rng rng(GetParam() + 4000);
  const SignalDomain domain;
  SteadyStateSolver solver(domain);
  for (int trial = 0; trial < 60; ++trial) {
    Vicinity vic = randomVicinity(rng, domain);
    std::vector<State> base;
    solver.solve(vic, base);

    Vicinity mutated = vic;
    if (!mutated.inputEdges.empty() && rng.chance(0.5)) {
      mutated.inputEdges[rng.below(mutated.inputEdges.size())].value = State::SX;
    } else {
      mutated.memberCharge[rng.below(mutated.size())] = State::SX;
    }
    std::vector<State> xed;
    solver.solve(mutated, xed);
    for (std::size_t i = 0; i < vic.size(); ++i) {
      EXPECT_TRUE(noMoreDefinite(xed[i], base[i]))
          << "trial " << trial << " node " << i << ": base "
          << stateChar(base[i]) << " -> X'd " << stateChar(xed[i]);
    }
  }
}

TEST_P(SolverPropertyTest, WeakeningAnEdgeToXOnlyLosesDefiniteness) {
  // Turning a definite edge into an uncertain (X conduction) one is also a
  // conservative transformation.
  Rng rng(GetParam() + 5000);
  const SignalDomain domain;
  SteadyStateSolver solver(domain);
  for (int trial = 0; trial < 60; ++trial) {
    Vicinity vic = randomVicinity(rng, domain);
    if (vic.edges.empty()) continue;
    std::vector<State> base;
    solver.solve(vic, base);

    Vicinity mutated = vic;
    auto& edge = mutated.edges[rng.below(mutated.edges.size())];
    if (!edge.definite) continue;
    edge.definite = false;
    std::vector<State> weakened;
    solver.solve(mutated, weakened);
    for (std::size_t i = 0; i < vic.size(); ++i) {
      EXPECT_TRUE(weakened[i] == base[i] || weakened[i] == State::SX)
          << "trial " << trial << " node " << i;
    }
  }
}

TEST_P(SolverPropertyTest, CountersAdvance) {
  Rng rng(GetParam() + 6000);
  const SignalDomain domain;
  SteadyStateSolver solver(domain);
  const Vicinity vic = randomVicinity(rng, domain);
  std::vector<State> out;
  solver.solve(vic, out);
  EXPECT_EQ(solver.solves(), 1u);
  EXPECT_EQ(solver.nodeEvals(), vic.size());
  solver.resetCounters();
  EXPECT_EQ(solver.solves(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace fmossim
