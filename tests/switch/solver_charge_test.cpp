// Steady-state solver: charge storage, charge sharing by node size,
// precharged busses — the dynamic-memory behaviours of paper §2/§5.
#include <gtest/gtest.h>

#include "circuits/cells.hpp"
#include "switch/builder.hpp"
#include "switch/logic_sim.hpp"
#include "test_util.hpp"

namespace fmossim {
namespace {

using testing::driveAll;
using testing::driveRails;

// Helper circuit: two storage nodes a (sizeA) and b (sizeB), each loadable
// from its own data input through a pass transistor, then connectable to each
// other through a "share" pass transistor.
struct SharePair {
  Network net;
  static SharePair make(unsigned sizeA, unsigned sizeB) {
    NetworkBuilder b;
    NmosCells cells(b);
    const NodeId da = b.addInput("da");
    const NodeId db = b.addInput("db");
    const NodeId la = b.addInput("la");
    const NodeId lb = b.addInput("lb");
    const NodeId share = b.addInput("share");
    const NodeId a = b.addNode("a", sizeA);
    const NodeId bb = b.addNode("b", sizeB);
    cells.pass(la, da, a);
    cells.pass(lb, db, bb);
    cells.pass(share, a, bb);
    return {b.build()};
  }
};

// Loads a=va, b=vb, isolates both, then shares.
void loadAndShare(LogicSimulator& sim, char va, char vb) {
  driveRails(sim);
  driveAll(sim, {{"share", '0'}, {"la", '1'}, {"lb", '1'},
                 {"da", va}, {"db", vb}});
  driveAll(sim, {{"la", '0'}, {"lb", '0'}});
  driveAll(sim, {{"share", '1'}});
}

TEST(ChargeSharingTest, LargerNodeWins) {
  auto fx = SharePair::make(2, 1);
  LogicSimulator sim(fx.net);
  loadAndShare(sim, '1', '0');
  EXPECT_NODE(sim, "a", '1');
  EXPECT_NODE(sim, "b", '1');  // the big capacitor overwrites the small one
}

TEST(ChargeSharingTest, LargerNodeWinsLowToo) {
  auto fx = SharePair::make(2, 1);
  LogicSimulator sim(fx.net);
  loadAndShare(sim, '0', '1');
  EXPECT_NODE(sim, "a", '0');
  EXPECT_NODE(sim, "b", '0');
}

TEST(ChargeSharingTest, EqualSizesDisagreeingGoX) {
  auto fx = SharePair::make(1, 1);
  LogicSimulator sim(fx.net);
  loadAndShare(sim, '1', '0');
  EXPECT_NODE(sim, "a", 'X');
  EXPECT_NODE(sim, "b", 'X');
}

TEST(ChargeSharingTest, EqualSizesAgreeingKeepValue) {
  auto fx = SharePair::make(1, 1);
  LogicSimulator sim(fx.net);
  loadAndShare(sim, '1', '1');
  EXPECT_NODE(sim, "a", '1');
  EXPECT_NODE(sim, "b", '1');
}

TEST(ChargeSharingTest, SmallSideXCorruptsEqualSizedNeighbour) {
  auto fx = SharePair::make(1, 1);
  LogicSimulator sim(fx.net);
  // b never loaded -> X; sharing with a=1 at equal size gives X on both.
  driveRails(sim);
  driveAll(sim, {{"share", '0'}, {"la", '1'}, {"da", '1'}, {"lb", '0'}, {"db", '0'}});
  driveAll(sim, {{"la", '0'}});
  driveAll(sim, {{"share", '1'}});
  EXPECT_NODE(sim, "a", 'X');
  EXPECT_NODE(sim, "b", 'X');
}

TEST(ChargeSharingTest, BigNodeOverridesXOnSmallNode) {
  auto fx = SharePair::make(2, 1);
  LogicSimulator sim(fx.net);
  driveRails(sim);
  driveAll(sim, {{"share", '0'}, {"la", '1'}, {"da", '1'}, {"lb", '0'}, {"db", '0'}});
  driveAll(sim, {{"la", '0'}});
  driveAll(sim, {{"share", '1'}});
  EXPECT_NODE(sim, "a", '1');
  EXPECT_NODE(sim, "b", '1');  // big definite charge beats small X charge
}

TEST(ChargeTest, DrivenSignalOverridesStoredCharge) {
  // A driven value (transistor strength) always beats stored charge (size),
  // even on the largest node.
  NetworkBuilder b;
  const Supplies rails = ensureSupplies(b);
  const NodeId load = b.addInput("load");
  const NodeId bus = b.addNode("bus", 2);
  b.addTransistor(TransistorType::NType, 2, load, rails.gnd, bus);
  // Give the bus a 1 first through another pass from Vdd.
  const NodeId pre = b.addInput("pre");
  b.addTransistor(TransistorType::NType, 2, pre, rails.vdd, bus);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"pre", '1'}, {"load", '0'}});
  EXPECT_NODE(sim, "bus", '1');
  driveAll(sim, {{"pre", '0'}});
  EXPECT_NODE(sim, "bus", '1');  // holds charge
  driveAll(sim, {{"load", '1'}});
  EXPECT_NODE(sim, "bus", '0');  // driven low despite size-2 stored 1
}

TEST(ChargeTest, IsolatedNodeHoldsIndefinitely) {
  auto fx = SharePair::make(2, 1);
  LogicSimulator sim(fx.net);
  driveRails(sim);
  driveAll(sim, {{"share", '0'}, {"la", '1'}, {"da", '1'}});
  driveAll(sim, {{"la", '0'}});
  // Wiggle the unrelated input repeatedly; a must hold its charge.
  for (int i = 0; i < 5; ++i) {
    driveAll(sim, {{"da", i % 2 ? '1' : '0'}});
    EXPECT_NODE(sim, "a", '1');
  }
}

// --- Precharged bit-line read (the 3T DRAM read path of paper §5) ----------

struct ThreeTCell {
  Network net;
  static ThreeTCell make() {
    NetworkBuilder b;
    NmosCells cells(b);
    const NodeId phiP = b.addInput("phiP");   // precharge clock
    const NodeId wwl = b.addInput("wwl");     // write word line
    const NodeId rwl = b.addInput("rwl");     // read word line
    const NodeId wbl = b.addInput("wbl");     // write bit line (driven)
    const NodeId rbl = b.addNode("rbl", 2);   // read bit line: big bus node
    const NodeId s = b.addNode("s");          // storage node
    const NodeId mid = b.addNode("mid");      // T2/T3 junction
    cells.precharge(phiP, rbl);
    cells.pass(wwl, wbl, s);                                   // T1
    b.addTransistor(TransistorType::NType, 2, s, mid,
                    b.getOrAddNode("Gnd"));                    // T2
    cells.pass(rwl, rbl, mid);                                 // T3
    return {b.build()};
  }
};

TEST(PrechargedBusTest, ReadOneDischargesBitLine) {
  auto fx = ThreeTCell::make();
  LogicSimulator sim(fx.net);
  driveRails(sim);
  // Write 1 into the cell.
  driveAll(sim, {{"phiP", '0'}, {"rwl", '0'}, {"wbl", '1'}, {"wwl", '1'}});
  driveAll(sim, {{"wwl", '0'}});
  EXPECT_NODE(sim, "s", '1');
  // Precharge, then read: bit line must discharge through T3/T2.
  driveAll(sim, {{"phiP", '1'}});
  EXPECT_NODE(sim, "rbl", '1');
  driveAll(sim, {{"phiP", '0'}});
  driveAll(sim, {{"rwl", '1'}});
  EXPECT_NODE(sim, "rbl", '0');
  EXPECT_NODE(sim, "s", '1');  // read is non-destructive for the cell
}

TEST(PrechargedBusTest, ReadZeroKeepsBitLineHigh) {
  auto fx = ThreeTCell::make();
  LogicSimulator sim(fx.net);
  driveRails(sim);
  driveAll(sim, {{"phiP", '0'}, {"rwl", '0'}, {"wbl", '0'}, {"wwl", '1'}});
  driveAll(sim, {{"wwl", '0'}});
  EXPECT_NODE(sim, "s", '0');
  driveAll(sim, {{"phiP", '1'}});
  driveAll(sim, {{"phiP", '0'}});
  driveAll(sim, {{"rwl", '1'}});
  // T2 is off; the size-2 bit line keeps its charge against the size-1
  // junction node.
  EXPECT_NODE(sim, "rbl", '1');
}

TEST(PrechargedBusTest, CellSurvivesManyReads) {
  auto fx = ThreeTCell::make();
  LogicSimulator sim(fx.net);
  driveRails(sim);
  driveAll(sim, {{"phiP", '0'}, {"rwl", '0'}, {"wbl", '1'}, {"wwl", '1'}});
  driveAll(sim, {{"wwl", '0'}});
  for (int i = 0; i < 4; ++i) {
    driveAll(sim, {{"phiP", '1'}});
    driveAll(sim, {{"phiP", '0'}});
    driveAll(sim, {{"rwl", '1'}});
    EXPECT_NODE(sim, "rbl", '0') << "read " << i;
    driveAll(sim, {{"rwl", '0'}});
    EXPECT_NODE(sim, "s", '1') << "after read " << i;
  }
}

TEST(ChargeChainTest, ChargeEqualizesAcrossConductingChain) {
  // Three nodes in a chain, the big one at the end dominates all.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId ld = b.addInput("ld");
  const NodeId g = b.addInput("g");
  const NodeId n1 = b.addNode("n1", 2);
  const NodeId n2 = b.addNode("n2", 1);
  const NodeId n3 = b.addNode("n3", 1);
  cells.pass(ld, d, n1);
  cells.pass(g, n1, n2);
  cells.pass(g, n2, n3);
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"g", '0'}, {"ld", '1'}, {"d", '1'}});
  driveAll(sim, {{"ld", '0'}});
  driveAll(sim, {{"g", '1'}});
  EXPECT_NODE(sim, "n1", '1');
  EXPECT_NODE(sim, "n2", '1');
  EXPECT_NODE(sim, "n3", '1');
}

}  // namespace
}  // namespace fmossim
