// PatternSource property tests: a streamed run must be indistinguishable
// from a materialized one.
//
// The core properties:
//   * every source yields exactly the pattern stream of its materialized
//     equivalent (labels, settings, outputs), and rewind() restarts it;
//   * PatternSource::fingerprint() equals
//     GoodMachineCheckpoint::fingerprint() of the materialized sequence —
//     the invariant the checkpoint store's streamed cache keying rests on;
//   * Engine::runStream produces results checksum-identical to Engine::run
//     across the diff-oracle matrix (serial / concurrent / sharded{1,2,4} x
//     laneWidth {1,32}), with the derived per-pattern rows matching the
//     materialized rows field by field.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "api/engine.hpp"
#include "core/checkpoint.hpp"
#include "core/row_sink.hpp"
#include "gen/random_circuit.hpp"
#include "patterns/pattern_source.hpp"
#include "patterns/sequence_io.hpp"
#include "perf/bench_runner.hpp"
#include "util/hash.hpp"

namespace fmossim {
namespace {

GenOptions testGen() {
  GenOptions gen;
  gen.seed = 4242;
  gen.numNodes = 24;
  gen.numInputs = 6;
  gen.numFaults = 40;
  gen.numPatterns = 24;
  return gen;
}

void expectSamePattern(const Pattern& got, const Pattern& want,
                       std::uint64_t index) {
  EXPECT_EQ(got.label, want.label) << "pattern " << index;
  ASSERT_EQ(got.settings.size(), want.settings.size()) << "pattern " << index;
  for (std::size_t s = 0; s < want.settings.size(); ++s) {
    ASSERT_EQ(got.settings[s].assignments, want.settings[s].assignments)
        << "pattern " << index << " setting " << s;
  }
}

/// Consumes `source` and asserts it yields exactly `seq`'s stream.
void expectSameStream(PatternSource& source, const TestSequence& seq) {
  ASSERT_EQ(source.numPatterns(), seq.size());
  ASSERT_EQ(source.outputs(), seq.outputs());
  Pattern p;
  for (std::uint32_t i = 0; i < seq.size(); ++i) {
    ASSERT_TRUE(source.next(p)) << "stream ended early at pattern " << i;
    expectSamePattern(p, seq[i], i);
  }
  EXPECT_FALSE(source.next(p)) << "stream yields more than numPatterns()";
}

TEST(PatternSourceTest, MaterializedYieldsTheSequenceAndRewinds) {
  const GeneratedWorkload w = generateWorkload(testGen());
  MaterializedPatternSource source(w.seq);
  expectSameStream(source, w.seq);
  source.rewind();
  expectSameStream(source, w.seq);
}

TEST(PatternSourceTest, FingerprintMatchesCheckpointFingerprint) {
  const GeneratedWorkload w = generateWorkload(testGen());
  MaterializedPatternSource source(w.seq);
  EXPECT_EQ(source.fingerprint(), GoodMachineCheckpoint::fingerprint(w.seq));
  // fingerprint() rewinds after its pass: the stream is still consumable.
  expectSameStream(source, w.seq);
}

// The generator's streamed and materialized paths are identical by
// construction: generateWorkload() materializes through a
// GeneratedPatternSource, so an independent source over the same options
// must reproduce the sequence exactly — and fingerprint equal.
TEST(PatternSourceTest, GeneratedStreamMatchesMaterializedWorkload) {
  const GenOptions gen = testGen();
  const GeneratedWorkload materialized = generateWorkload(gen);
  GeneratedStreamWorkload streamed = generateWorkloadStream(gen);
  GeneratedPatternSource source(streamed.seqConfig);
  expectSameStream(source, materialized.seq);
  source.rewind();
  EXPECT_EQ(source.fingerprint(),
            GoodMachineCheckpoint::fingerprint(materialized.seq));
}

TEST(PatternSourceTest, FileSourceRoundTripsTheTextFormat) {
  const GeneratedWorkload w = generateWorkload(testGen());
  const std::string path =
      ::testing::TempDir() + "/pattern_source_roundtrip.seq";
  {
    std::ofstream out(path);
    out << writeSequence(w.net, w.seq);
  }
  FilePatternSource source(w.net, path);
  expectSameStream(source, w.seq);
  source.rewind();
  EXPECT_EQ(source.fingerprint(), GoodMachineCheckpoint::fingerprint(w.seq));
  std::remove(path.c_str());
}

// The diff-oracle matrix: every backend/jobs/laneWidth combination must
// produce a streamed result checksum-identical to its materialized run,
// with the derived rows matching the materialized rows exactly.
TEST(PatternSourceTest, StreamedChecksumMatchesMaterializedAcrossMatrix) {
  const GeneratedWorkload w = generateWorkload(testGen());

  struct Config {
    Backend backend;
    unsigned jobs;
    std::uint32_t laneWidth;
  };
  const Config matrix[] = {
      {Backend::Serial, 1, 1},     {Backend::Concurrent, 1, 1},
      {Backend::Concurrent, 1, 32}, {Backend::Concurrent, 2, 1},
      {Backend::Concurrent, 2, 32}, {Backend::Concurrent, 4, 1},
  };

  for (const Config& cfg : matrix) {
    EngineOptions opts;
    opts.backend = cfg.backend;
    opts.jobs = cfg.jobs;
    opts.laneWidth = cfg.laneWidth;
    Engine engine(w.net, w.faults, opts);
    SCOPED_TRACE(std::string(engine.backendName()) +
                 " jobs=" + std::to_string(cfg.jobs) +
                 " lanes=" + std::to_string(cfg.laneWidth));

    const FaultSimResult ref = engine.run(w.seq);
    MaterializedPatternSource source(w.seq);
    FaultSimResult streamed = engine.runStream(source);

    EXPECT_EQ(perf::resultChecksum(streamed), perf::resultChecksum(ref));
    EXPECT_EQ(streamed.detectedAtPattern, ref.detectedAtPattern);
    EXPECT_EQ(streamed.numDetected, ref.numDetected);
    EXPECT_EQ(streamed.potentialDetections, ref.potentialDetections);
    EXPECT_EQ(streamed.finalGoodStates, ref.finalGoodStates);
    EXPECT_EQ(streamed.numPatterns, w.seq.size());
    EXPECT_EQ(streamed.droppedDetected, ref.droppedDetected);

    derivePerPattern(streamed);
    ASSERT_EQ(streamed.perPattern.size(), ref.perPattern.size());
    for (std::size_t pi = 0; pi < ref.perPattern.size(); ++pi) {
      EXPECT_EQ(streamed.perPattern[pi].newlyDetected,
                ref.perPattern[pi].newlyDetected)
          << "pattern " << pi;
      EXPECT_EQ(streamed.perPattern[pi].cumulativeDetected,
                ref.perPattern[pi].cumulativeDetected)
          << "pattern " << pi;
      EXPECT_EQ(streamed.perPattern[pi].aliveAfter,
                ref.perPattern[pi].aliveAfter)
          << "pattern " << pi;
    }
  }
}

// Both sinks observe the exact materialized row stream during a streaming
// run, and the aggregating sink's fold matches a manual fold of the
// reference rows.
TEST(PatternSourceTest, RowSinksSeeTheMaterializedRows) {
  const GeneratedWorkload w = generateWorkload(testGen());
  EngineOptions opts;
  opts.jobs = 2;
  Engine engine(w.net, w.faults, opts);
  const FaultSimResult ref = engine.run(w.seq);

  MaterializedPatternSource source(w.seq);
  std::vector<PatternStat> rows;
  MaterializingRowSink materializing(rows);
  engine.runStream(source, &materializing);
  ASSERT_EQ(rows.size(), ref.perPattern.size());

  AggregatingRowSink aggregating(/*aliveCurveCapacity=*/8);
  std::uint64_t wantChecksum = kFnvOffsetBasis;
  for (std::size_t pi = 0; pi < ref.perPattern.size(); ++pi) {
    EXPECT_EQ(rows[pi].newlyDetected, ref.perPattern[pi].newlyDetected);
    EXPECT_EQ(rows[pi].cumulativeDetected,
              ref.perPattern[pi].cumulativeDetected);
    EXPECT_EQ(rows[pi].aliveAfter, ref.perPattern[pi].aliveAfter);
    fnvMix(wantChecksum, ref.perPattern[pi].newlyDetected);
    fnvMix(wantChecksum, ref.perPattern[pi].cumulativeDetected);
    fnvMix(wantChecksum, ref.perPattern[pi].aliveAfter);
    aggregating.row(rows[pi]);
  }
  EXPECT_EQ(aggregating.patterns(), ref.perPattern.size());
  EXPECT_EQ(aggregating.finalCumulativeDetected(), ref.numDetected);
  EXPECT_EQ(aggregating.rowChecksum(), wantChecksum);
  EXPECT_LE(aggregating.aliveCurve().size(), 8u);
  EXPECT_GE(aggregating.aliveCurve().size(), 2u);
}

}  // namespace
}  // namespace fmossim
