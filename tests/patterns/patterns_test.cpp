// Pattern/TestSequence machinery, RAM op encoding, and random patterns.
#include <gtest/gtest.h>

#include <set>

#include "circuits/ram.hpp"
#include "patterns/marching.hpp"
#include "patterns/pattern.hpp"
#include "patterns/ram_ops.hpp"
#include "patterns/random_patterns.hpp"
#include "util/rng.hpp"

namespace fmossim {
namespace {

TEST(PatternTest, SettingAccumulatesAssignments) {
  InputSetting s;
  s.set(NodeId(3), State::S1);
  s.set(NodeId(5), State::SX);
  ASSERT_EQ(s.assignments.size(), 2u);
  EXPECT_EQ(s.span()[0].first, NodeId(3));
  EXPECT_EQ(s.span()[1].second, State::SX);
}

TEST(TestSequenceTest, AppendMergesPatternsAndChecksOutputs) {
  TestSequence a, b;
  a.addOutput(NodeId(1));
  Pattern p;
  p.label = "p0";
  a.addPattern(p);
  b.addOutput(NodeId(1));
  b.addPattern(p);
  b.addPattern(p);
  a.append(b);
  EXPECT_EQ(a.size(), 3u);

  TestSequence c;
  c.addOutput(NodeId(2));  // different outputs
  c.addPattern(p);
  EXPECT_THROW(a.append(c), Error);
}

TEST(TestSequenceTest, AppendAdoptsOutputsWhenEmpty) {
  TestSequence a, b;
  b.addOutput(NodeId(7));
  Pattern p;
  b.addPattern(p);
  a.append(b);
  ASSERT_EQ(a.outputs().size(), 1u);
  EXPECT_EQ(a.outputs()[0], NodeId(7));
}

TEST(TestSequenceTest, TotalSettingsSumsAcrossPatterns) {
  TestSequence seq;
  for (int i = 0; i < 3; ++i) {
    Pattern p;
    p.settings.resize(static_cast<std::size_t>(i) + 1);
    seq.addPattern(std::move(p));
  }
  EXPECT_EQ(seq.totalSettings(), 1u + 2u + 3u);
}

class RamOpEncodingTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RamOpEncodingTest, AddressBitsEncodeRowThenColumn) {
  const RamCircuit ram = buildRam(ram64Config());
  const unsigned addr = GetParam();
  const unsigned row = addr / ram.config.cols;
  const unsigned col = addr % ram.config.cols;
  const Pattern p = ramOpPattern(ram, RamOp::writeOp(addr, State::S1));
  ASSERT_EQ(p.settings.size(), 6u);

  // Collect the first setting's assignments into a map.
  std::map<std::uint32_t, State> first;
  for (const auto& [n, s] : p.settings[0].assignments) first[n.value] = s;

  const unsigned nr = ram.config.rowAddressBits();
  for (unsigned b = 0; b < nr; ++b) {
    EXPECT_EQ(first.at(ram.addr[b].value),
              ((row >> b) & 1u) ? State::S1 : State::S0)
        << "row bit " << b;
  }
  for (unsigned b = 0; b < ram.config.colAddressBits(); ++b) {
    EXPECT_EQ(first.at(ram.addr[nr + b].value),
              ((col >> b) & 1u) ? State::S1 : State::S0)
        << "col bit " << b;
  }
  EXPECT_EQ(first.at(ram.we.value), State::S1);
  EXPECT_EQ(first.at(ram.din.value), State::S1);
  EXPECT_EQ(first.at(ram.phiP.value), State::S1);
}

INSTANTIATE_TEST_SUITE_P(Addresses, RamOpEncodingTest,
                         ::testing::Values(0u, 1u, 7u, 8u, 21u, 63u));

TEST(RamOpTest, ReadKeepsWriteEnableLow) {
  const RamCircuit ram = buildRam(ram64Config());
  const Pattern p = ramOpPattern(ram, RamOp::readOp(5));
  for (const auto& [n, s] : p.settings[0].assignments) {
    if (n == ram.we) EXPECT_EQ(s, State::S0);
  }
  EXPECT_EQ(p.label, "r@5");
}

TEST(RamOpTest, RejectsOutOfRangeAddress) {
  const RamCircuit ram = buildRam(ram64Config());
  EXPECT_THROW(ramOpPattern(ram, RamOp::readOp(64)), Error);
}

TEST(RamOpTest, ClockPhasesAreNonOverlapping) {
  // At most one of phiP/phiR/phiL/phiW is raised in any setting, and each
  // raised clock is lowered in a later setting of the same pattern.
  const RamCircuit ram = buildRam(ram64Config());
  const Pattern p = ramOpPattern(ram, RamOp::writeOp(9, State::S0));
  const std::set<std::uint32_t> clocks = {ram.phiP.value, ram.phiR.value,
                                          ram.phiL.value, ram.phiW.value};
  std::map<std::uint32_t, State> level;  // current clock levels
  for (const auto c : clocks) level[c] = State::S0;
  for (const InputSetting& s : p.settings) {
    for (const auto& [n, v] : s.assignments) {
      if (clocks.count(n.value)) level[n.value] = v;
    }
    int high = 0;
    for (const auto& [c, v] : level) {
      if (v == State::S1) ++high;
    }
    EXPECT_LE(high, 1) << "overlapping clock phases";
  }
  for (const auto& [c, v] : level) {
    EXPECT_EQ(v, State::S0) << "clock left high at end of pattern";
  }
}

TEST(MarchTest, FiveOpsPerVisitedCell) {
  const RamCircuit ram = buildRam(RamConfig{4, 4});
  EXPECT_EQ(ramMarch(ram, {0, 5, 9}).size(), 15u);
  EXPECT_EQ(ramArrayMarch(ram).size(), 5u * 16u);
}

TEST(MarchTest, MarchVisitsEveryAddressInOrder) {
  const RamCircuit ram = buildRam(RamConfig{4, 4});
  const TestSequence seq = ramArrayMarch(ram);
  // First 16 patterns are the w0 pass over ascending addresses.
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(seq[i].label, "w@" + std::to_string(i) + "=0");
  }
  // Then r/w pairs ascending.
  EXPECT_EQ(seq[16].label, "r@0");
  EXPECT_EQ(seq[17].label, "w@0=1");
  EXPECT_EQ(seq[18].label, "r@1");
}

TEST(RandomPatternTest, DeterministicForFixedSeed) {
  const std::vector<NodeId> inputs = {NodeId(0), NodeId(1), NodeId(2)};
  Rng r1(42), r2(42);
  const TestSequence a = randomPatterns(inputs, {.numPatterns = 16}, r1);
  const TestSequence b = randomPatterns(inputs, {.numPatterns = 16}, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].settings.size(), b[i].settings.size());
    for (std::size_t s = 0; s < a[i].settings.size(); ++s) {
      EXPECT_EQ(a[i].settings[s].assignments, b[i].settings[s].assignments);
    }
  }
}

TEST(RandomPatternTest, RespectsXProbability) {
  const std::vector<NodeId> inputs = {NodeId(0)};
  Rng rng(7);
  const TestSequence noX =
      randomPatterns(inputs, {.numPatterns = 200, .xProbability = 0.0}, rng);
  unsigned xs = 0;
  for (std::uint32_t i = 0; i < noX.size(); ++i) {
    for (const auto& [n, v] : noX[i].settings[0].assignments) {
      if (v == State::SX) ++xs;
    }
  }
  EXPECT_EQ(xs, 0u);

  const TestSequence someX =
      randomPatterns(inputs, {.numPatterns = 200, .xProbability = 0.5}, rng);
  xs = 0;
  for (std::uint32_t i = 0; i < someX.size(); ++i) {
    for (const auto& [n, v] : someX[i].settings[0].assignments) {
      if (v == State::SX) ++xs;
    }
  }
  EXPECT_GT(xs, 50u);
  EXPECT_LT(xs, 150u);
}

}  // namespace
}  // namespace fmossim
