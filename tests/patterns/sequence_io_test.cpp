// Sequence text format: parsing, validation, round trip.
#include "patterns/sequence_io.hpp"

#include <gtest/gtest.h>

#include "circuits/cells.hpp"
#include "switch/builder.hpp"

namespace fmossim {
namespace {

Network makeNet() {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  const NodeId clk = b.addInput("clk");
  const NodeId inv = cells.inverter(in, "inv");
  cells.pass(clk, inv, b.addNode("out"));
  return b.build();
}

TEST(SequenceIoTest, ParsesPatternsAndOutputs) {
  const Network net = makeNet();
  const TestSequence seq = parseSequence(net,
                                         "# demo\n"
                                         "outputs out inv\n"
                                         "pattern p0\n"
                                         "  set Vdd=1 Gnd=0 in=0 clk=1\n"
                                         "  set clk=0\n"
                                         "pattern\n"
                                         "  set in=X\n");
  EXPECT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq.outputs().size(), 2u);
  EXPECT_EQ(seq[0].label, "p0");
  EXPECT_EQ(seq[0].settings.size(), 2u);
  EXPECT_EQ(seq[0].settings[0].assignments.size(), 4u);
  EXPECT_EQ(seq[1].settings[0].assignments[0].second, State::SX);
}

TEST(SequenceIoTest, RejectsMalformedInput) {
  const Network net = makeNet();
  // set before pattern
  EXPECT_THROW(parseSequence(net, "outputs out\nset in=1\n"), Error);
  // unknown node
  EXPECT_THROW(parseSequence(net, "outputs out\npattern\nset bogus=1\n"), Error);
  // non-input assignment
  EXPECT_THROW(parseSequence(net, "outputs out\npattern\nset inv=1\n"), Error);
  // bad value
  EXPECT_THROW(parseSequence(net, "outputs out\npattern\nset in=2\n"), Error);
  // malformed assignment
  EXPECT_THROW(parseSequence(net, "outputs out\npattern\nset in\n"), Error);
  // empty pattern
  EXPECT_THROW(parseSequence(net, "outputs out\npattern\npattern\nset in=1\n"),
               Error);
  // no outputs
  EXPECT_THROW(parseSequence(net, "pattern\nset in=1\n"), Error);
  // no patterns
  EXPECT_THROW(parseSequence(net, "outputs out\n"), Error);
  // unknown directive
  EXPECT_THROW(parseSequence(net, "outputs out\nfrobnicate\n"), Error);
  // unknown output node
  EXPECT_THROW(parseSequence(net, "outputs nope\npattern\nset in=1\n"), Error);
}

TEST(SequenceIoTest, ErrorsCarryLineNumbers) {
  const Network net = makeNet();
  try {
    parseSequence(net, "outputs out\npattern\n  set in=9\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(SequenceIoTest, WriteParseRoundTrip) {
  const Network net = makeNet();
  const TestSequence seq = parseSequence(net,
                                         "outputs out\n"
                                         "pattern alpha\n"
                                         "  set Vdd=1 Gnd=0 in=1 clk=0\n"
                                         "  set clk=1\n"
                                         "pattern beta\n"
                                         "  set in=0\n");
  const std::string text = writeSequence(net, seq);
  const TestSequence again = parseSequence(net, text);
  ASSERT_EQ(again.size(), seq.size());
  EXPECT_EQ(again.outputs(), seq.outputs());
  for (std::uint32_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(again[i].label, seq[i].label);
    ASSERT_EQ(again[i].settings.size(), seq[i].settings.size());
    for (std::size_t s = 0; s < seq[i].settings.size(); ++s) {
      EXPECT_EQ(again[i].settings[s].assignments,
                seq[i].settings[s].assignments);
    }
  }
}

}  // namespace
}  // namespace fmossim
