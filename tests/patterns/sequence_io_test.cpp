// Sequence text format: parsing, validation, round trip.
#include "patterns/sequence_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "circuits/cells.hpp"
#include "switch/builder.hpp"

namespace fmossim {
namespace {

Network makeNet() {
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId in = b.addInput("in");
  const NodeId clk = b.addInput("clk");
  const NodeId inv = cells.inverter(in, "inv");
  cells.pass(clk, inv, b.addNode("out"));
  return b.build();
}

TEST(SequenceIoTest, ParsesPatternsAndOutputs) {
  const Network net = makeNet();
  const TestSequence seq = parseSequence(net,
                                         "# demo\n"
                                         "outputs out inv\n"
                                         "pattern p0\n"
                                         "  set Vdd=1 Gnd=0 in=0 clk=1\n"
                                         "  set clk=0\n"
                                         "pattern\n"
                                         "  set in=X\n");
  EXPECT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq.outputs().size(), 2u);
  EXPECT_EQ(seq[0].label, "p0");
  EXPECT_EQ(seq[0].settings.size(), 2u);
  EXPECT_EQ(seq[0].settings[0].assignments.size(), 4u);
  EXPECT_EQ(seq[1].settings[0].assignments[0].second, State::SX);
}

TEST(SequenceIoTest, RejectsMalformedInput) {
  const Network net = makeNet();
  // set before pattern
  EXPECT_THROW(parseSequence(net, "outputs out\nset in=1\n"), Error);
  // unknown node
  EXPECT_THROW(parseSequence(net, "outputs out\npattern\nset bogus=1\n"), Error);
  // non-input assignment
  EXPECT_THROW(parseSequence(net, "outputs out\npattern\nset inv=1\n"), Error);
  // bad value
  EXPECT_THROW(parseSequence(net, "outputs out\npattern\nset in=2\n"), Error);
  // malformed assignment
  EXPECT_THROW(parseSequence(net, "outputs out\npattern\nset in\n"), Error);
  // empty pattern
  EXPECT_THROW(parseSequence(net, "outputs out\npattern\npattern\nset in=1\n"),
               Error);
  // no outputs
  EXPECT_THROW(parseSequence(net, "pattern\nset in=1\n"), Error);
  // no patterns
  EXPECT_THROW(parseSequence(net, "outputs out\n"), Error);
  // unknown directive
  EXPECT_THROW(parseSequence(net, "outputs out\nfrobnicate\n"), Error);
  // unknown output node
  EXPECT_THROW(parseSequence(net, "outputs nope\npattern\nset in=1\n"), Error);
}

TEST(SequenceIoTest, ErrorsCarryLineNumbers) {
  const Network net = makeNet();
  try {
    parseSequence(net, "outputs out\npattern\n  set in=9\n");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(SequenceIoTest, WriteParseRoundTrip) {
  const Network net = makeNet();
  const TestSequence seq = parseSequence(net,
                                         "outputs out\n"
                                         "pattern alpha\n"
                                         "  set Vdd=1 Gnd=0 in=1 clk=0\n"
                                         "  set clk=1\n"
                                         "pattern beta\n"
                                         "  set in=0\n");
  const std::string text = writeSequence(net, seq);
  const TestSequence again = parseSequence(net, text);
  ASSERT_EQ(again.size(), seq.size());
  EXPECT_EQ(again.outputs(), seq.outputs());
  for (std::uint32_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(again[i].label, seq[i].label);
    ASSERT_EQ(again[i].settings.size(), seq[i].settings.size());
    for (std::size_t s = 0; s < seq[i].settings.size(); ++s) {
      EXPECT_EQ(again[i].settings[s].assignments,
                seq[i].settings[s].assignments);
    }
  }
}

bool equivalent(const TestSequence& a, const TestSequence& b) {
  if (a.size() != b.size() || a.outputs() != b.outputs()) return false;
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    if (a[i].label != b[i].label) return false;
    if (a[i].settings.size() != b[i].settings.size()) return false;
    for (std::size_t s = 0; s < a[i].settings.size(); ++s) {
      if (a[i].settings[s].assignments != b[i].settings[s].assignments) {
        return false;
      }
    }
  }
  return true;
}

TEST(SequenceIoTest, ParseEmitParseIsExactlyEquivalent) {
  const Network net = makeNet();
  // Exercise every directive shape: multiple outputs, labelled and
  // unlabelled patterns, multi-assignment and single-assignment settings,
  // X values, comments and blank lines.
  const std::string original =
      "# header comment\n"
      "outputs out inv\n"
      "\n"
      "pattern init\n"
      "  set Vdd=1 Gnd=0 in=0 clk=1\n"
      "pattern\n"
      "  set in=X\n"
      "  set clk=0\n"
      "pattern last\n"
      "  set in=1 clk=1\n";
  const TestSequence once = parseSequence(net, original);
  const std::string emitted = writeSequence(net, once);
  const TestSequence twice = parseSequence(net, emitted);
  EXPECT_TRUE(equivalent(once, twice));
  // Emission is a fixed point: emit(parse(emit(x))) == emit(x).
  EXPECT_EQ(writeSequence(net, twice), emitted);
}

TEST(SequenceIoTest, WriteRejectsUnrepresentableSequences) {
  const Network net = makeNet();
  const NodeId in = net.nodeByName("in");
  const NodeId out = net.nodeByName("out");

  // No patterns / no outputs (parse would reject the emitted text).
  EXPECT_THROW(writeSequence(net, TestSequence{}), Error);
  {
    TestSequence seq;
    Pattern p;
    InputSetting s;
    s.set(in, State::S1);
    p.settings.push_back(s);
    seq.addPattern(p);  // no outputs
    EXPECT_THROW(writeSequence(net, seq), Error);
  }
  // A pattern with no settings would emit a bare "pattern" line that fails
  // to reparse.
  {
    TestSequence seq;
    seq.addOutput(out);
    seq.addPattern(Pattern{});
    EXPECT_THROW(writeSequence(net, seq), Error);
  }
  // An empty setting would emit a bare "set" line.
  {
    TestSequence seq;
    seq.addOutput(out);
    Pattern p;
    p.settings.push_back(InputSetting{});
    seq.addPattern(p);
    EXPECT_THROW(writeSequence(net, seq), Error);
  }
  // An assignment to a non-input node would emit a line the parser rejects.
  {
    TestSequence seq;
    seq.addOutput(out);
    Pattern p;
    InputSetting s;
    s.set(net.nodeByName("inv"), State::S1);  // storage node, not an input
    p.settings.push_back(s);
    seq.addPattern(p);
    EXPECT_THROW(writeSequence(net, seq), Error);
  }
  // A multi-token label would reparse as a different label.
  {
    TestSequence seq;
    seq.addOutput(out);
    Pattern p;
    p.label = "two words";
    InputSetting s;
    s.set(in, State::S1);
    p.settings.push_back(s);
    seq.addPattern(p);
    EXPECT_THROW(writeSequence(net, seq), Error);
  }
}

TEST(SequenceIoTest, UnusualButParseableTokensRoundTrip) {
  // '#' only opens a comment at the start of a line and '=' only separates
  // inside assignments, so both are legal mid-token in labels and output
  // names — the writer must carry them, not reject them.
  const Network net = makeNet();
  const TestSequence once = parseSequence(net,
                                          "outputs out\n"
                                          "pattern a=b\n"
                                          "  set in=1\n"
                                          "pattern x#y\n"
                                          "  set in=0\n");
  EXPECT_EQ(once[0].label, "a=b");
  EXPECT_EQ(once[1].label, "x#y");
  const TestSequence twice = parseSequence(net, writeSequence(net, once));
  EXPECT_TRUE(equivalent(once, twice));
}

TEST(SequenceIoTest, ParseRejectsMultiTokenPatternLabels) {
  const Network net = makeNet();
  // "pattern a b" used to silently drop 'b'; round-trip symmetry requires
  // rejecting what the writer may not emit.
  EXPECT_THROW(parseSequence(net, "outputs out\npattern a b\nset in=1\n"),
               Error);
}

// --- 64-bit `patterns N` declared counts ------------------------------------
//
// The count directive is 64-bit end to end: a sequence file can declare more
// than 2^32 patterns (only the streaming reader can actually consume such a
// file; parseSequence would fail its count check long before materializing).
// Strict parse: digits only, 64-bit overflow rejected, no stoul truncation.

TEST(SequenceIoTest, DeclaredCountIsCheckedAgainstContents) {
  const Network net = makeNet();
  const TestSequence seq = parseSequence(net,
                                         "outputs out\n"
                                         "patterns 2\n"
                                         "pattern\n  set in=1\n"
                                         "pattern\n  set in=0\n");
  EXPECT_EQ(seq.size(), 2u);
  EXPECT_THROW(parseSequence(net,
                             "outputs out\npatterns 3\n"
                             "pattern\n  set in=1\n"),
               Error);
  // duplicate directive
  EXPECT_THROW(parseSequence(net,
                             "outputs out\npatterns 1\npatterns 1\n"
                             "pattern\n  set in=1\n"),
               Error);
}

TEST(SequenceIoTest, CountPast32BitsIsCarriedNotTruncated) {
  const Network net = makeNet();
  // 2^32 + 2 would silently truncate to 2 under a 32-bit count — the
  // declared/actual mismatch must report the full 64-bit value instead of
  // accepting the file.
  try {
    parseSequence(net,
                  "outputs out\npatterns 4294967298\n"
                  "pattern\n  set in=1\npattern\n  set in=0\n");
    FAIL() << "expected a declared-count mismatch";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("4294967298"), std::string::npos)
        << e.what();
  }
}

TEST(SequenceIoTest, CountParseIsStrict) {
  const Network net = makeNet();
  const char* tail = "pattern\n  set in=1\n";
  for (const char* bad :
       {"patterns 12abc\n", "patterns -1\n", "patterns\n",
        "patterns 1 2\n",
        // one past 2^64 - 1, and a wildly longer digit string
        "patterns 18446744073709551616\n",
        "patterns 99999999999999999999999\n"}) {
    EXPECT_THROW(
        parseSequence(net, std::string("outputs out\n") + bad + tail), Error)
        << bad;
  }
  // The exact 64-bit maximum itself parses (and then mismatches the actual
  // pattern count, proving it survived undamaged).
  try {
    parseSequence(net,
                  "outputs out\npatterns 18446744073709551615\n"
                  "pattern\n  set in=1\n");
    FAIL() << "expected a declared-count mismatch";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("18446744073709551615"),
              std::string::npos)
        << e.what();
  }
}

// --- streaming reader/writer -------------------------------------------------

TEST(SequenceIoTest, StreamReaderYieldsWhatParseSequenceBuilds) {
  const Network net = makeNet();
  const std::string text =
      "outputs out inv\n"
      "patterns 3\n"
      "pattern p0\n  set Vdd=1 Gnd=0 in=0 clk=1\n  set clk=0\n"
      "pattern\n  set in=X\n"
      "pattern p2\n  set in=1 clk=1\n";
  const TestSequence want = parseSequence(net, text);

  std::istringstream in(text);
  SequenceStreamReader reader(net, in);
  EXPECT_EQ(reader.outputs(), want.outputs());
  ASSERT_TRUE(reader.declaredPatterns().has_value());
  EXPECT_EQ(*reader.declaredPatterns(), 3u);
  TestSequence got;
  got.setOutputs(reader.outputs());
  Pattern p;
  while (reader.next(p)) got.addPattern(Pattern(p));
  EXPECT_TRUE(equivalent(want, got));
}

TEST(SequenceIoTest, StreamReaderEnforcesDeclaredCount) {
  const Network net = makeNet();
  // Fewer patterns than declared: the shortfall surfaces at end of stream.
  {
    std::istringstream in("outputs out\npatterns 2\npattern\n  set in=1\n");
    SequenceStreamReader reader(net, in);
    Pattern p;
    ASSERT_TRUE(reader.next(p));
    EXPECT_THROW(reader.next(p), Error);
  }
  // More patterns than declared: rejected at the excess pattern, so a
  // streaming consumer never reads past the contract.
  {
    std::istringstream in(
        "outputs out\npatterns 1\n"
        "pattern\n  set in=1\npattern\n  set in=0\n");
    SequenceStreamReader reader(net, in);
    Pattern p;
    ASSERT_TRUE(reader.next(p));
    EXPECT_THROW(reader.next(p), Error);
  }
}

TEST(SequenceIoTest, StreamWriterEnforcesDeclaredCount) {
  const Network net = makeNet();
  const NodeId in = net.nodeByName("in");
  const NodeId out = net.nodeByName("out");
  Pattern p;
  InputSetting s;
  s.set(in, State::S1);
  p.settings.push_back(s);

  // The header carries the full 64-bit declared count.
  {
    std::ostringstream text;
    SequenceStreamWriter writer(net, text, {out}, 4294967298ull);
    writer.write(p);
    EXPECT_NE(text.str().find("patterns 4294967298"), std::string::npos);
    EXPECT_THROW(writer.finish(), Error);  // wrote 1 of 4294967298
  }
  // Writing past the declared count is rejected at the excess write.
  {
    std::ostringstream text;
    SequenceStreamWriter writer(net, text, {out}, 1);
    writer.write(p);
    EXPECT_THROW(writer.write(p), Error);
    writer.finish();
  }
}

}  // namespace
}  // namespace fmossim
