// Sharded parallel fault simulation: determinism and merge correctness.
//
// The acceptance property: a sharded run (jobs = 2, 4) on RAM64 with a
// marching test produces detections bit-identical to the unsharded run,
// because faulty circuits are simulated purely by difference from the good
// circuit and never interact.
#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "api/sharded_runner.hpp"
#include "circuits/ram.hpp"
#include "faults/sampling.hpp"
#include "faults/universe.hpp"
#include "patterns/marching.hpp"
#include "util/rng.hpp"

namespace fmossim {
namespace {

TEST(ShardedRunnerTest, MergeReindexesAndSums) {
  // Two synthetic shards: 2 + 3 faults over 2 patterns.
  std::vector<FaultSimResult> shards(2);
  shards[0].numFaults = 2;
  shards[0].detectedAtPattern = {1, -1};
  shards[0].numDetected = 1;
  shards[0].totalNodeEvals = 10;
  shards[0].totalCpuSeconds = 0.75;
  shards[0].maxAlive = 2;
  shards[0].perPattern = {{0, 0.5, 6, 0, 0, 2}, {1, 0.25, 4, 1, 1, 1}};
  shards[1].numFaults = 3;
  shards[1].detectedAtPattern = {0, -1, 1};
  shards[1].numDetected = 2;
  shards[1].totalNodeEvals = 20;
  shards[1].totalCpuSeconds = 1.5;
  shards[1].maxAlive = 3;
  shards[1].perPattern = {{0, 1.0, 12, 1, 1, 2}, {1, 0.5, 8, 1, 2, 1}};

  const std::vector<std::pair<std::uint32_t, std::uint32_t>> slices = {
      {0, 2}, {2, 5}};
  const FaultSimResult merged = mergeShardResults(shards, slices, 2);

  EXPECT_EQ(merged.numFaults, 5u);
  EXPECT_EQ(merged.numDetected, 3u);
  EXPECT_EQ(merged.totalNodeEvals, 30u);
  // The modeled single-engine peak: both batches peak at sequence start
  // (alive counts only fall), so the merged peak is the summed initial
  // populations — what a jobs=1 run of all 5 faults reports.
  EXPECT_EQ(merged.maxAlive, 5u);
  // Engine time sums across batches (CPU-like; the caller stamps the wall
  // clock separately).
  EXPECT_DOUBLE_EQ(merged.totalCpuSeconds, 2.25);
  const std::vector<std::int32_t> expected = {1, -1, 0, -1, 1};
  EXPECT_EQ(merged.detectedAtPattern, expected);
  ASSERT_EQ(merged.perPattern.size(), 2u);
  EXPECT_EQ(merged.perPattern[0].newlyDetected, 1u);
  EXPECT_EQ(merged.perPattern[0].cumulativeDetected, 1u);
  EXPECT_EQ(merged.perPattern[0].nodeEvals, 18u);
  EXPECT_EQ(merged.perPattern[0].aliveAfter, 4u);
  EXPECT_DOUBLE_EQ(merged.perPattern[0].seconds, 1.5);
  EXPECT_EQ(merged.perPattern[1].newlyDetected, 2u);
  EXPECT_EQ(merged.perPattern[1].cumulativeDetected, 3u);
  EXPECT_EQ(merged.perPattern[1].aliveAfter, 2u);
}

TEST(ShardedRunnerTest, Ram64MarchDetectionsIdenticalAcrossJobCounts) {
  // RAM64 (the paper's benchmark circuit) under a marching test: jobs 1, 2,
  // and 4 must produce identical detectedAtPattern vectors.
  const RamCircuit ram = buildRam(ram64Config());
  FaultList universe = allStorageNodeStuckFaults(ram.net);
  for (const TransId ft : ram.bitLineShorts) {
    universe.add(Fault::faultDeviceActive(ram.net, ft));
  }
  Rng rng(42);
  const FaultList faults = sampleFaults(universe, 72, rng);
  TestSequence seq = ramControlTests(ram);
  seq.append(ramRowMarch(ram));

  EngineOptions opts;
  opts.policy = DetectionPolicy::AnyDifference;

  FaultSimResult baseline;
  for (const unsigned jobs : {1u, 2u, 4u}) {
    opts.jobs = jobs;
    Engine engine(ram.net, faults, opts);
    const FaultSimResult res = engine.run(seq);
    ASSERT_EQ(res.detectedAtPattern.size(), faults.size());
    if (jobs == 1) {
      baseline = res;
      EXPECT_GT(baseline.numDetected, 0u);
      continue;
    }
    EXPECT_EQ(res.numDetected, baseline.numDetected) << "jobs=" << jobs;
    EXPECT_EQ(res.detectedAtPattern, baseline.detectedAtPattern)
        << "jobs=" << jobs;
    EXPECT_EQ(res.potentialDetections, baseline.potentialDetections);
    // Merged per-pattern detection counts match the unsharded series.
    ASSERT_EQ(res.perPattern.size(), baseline.perPattern.size());
    for (std::uint32_t pi = 0; pi < res.perPattern.size(); ++pi) {
      EXPECT_EQ(res.perPattern[pi].newlyDetected,
                baseline.perPattern[pi].newlyDetected)
          << "jobs=" << jobs << " pattern=" << pi;
      EXPECT_EQ(res.perPattern[pi].cumulativeDetected,
                baseline.perPattern[pi].cumulativeDetected);
    }
  }
}

TEST(ShardedRunnerTest, MoreJobsThanFaultsIsClamped) {
  const RamCircuit ram = buildRam(RamConfig{2, 2});
  FaultList faults;
  faults.add(Fault::nodeStuckAt(ram.net, ram.cell(0, 0), State::S0));
  faults.add(Fault::nodeStuckAt(ram.net, ram.cell(1, 1), State::S1));

  EngineOptions opts;
  opts.policy = DetectionPolicy::AnyDifference;
  opts.jobs = 16;  // far more than 2 faults
  Engine engine(ram.net, faults, opts);
  const TestSequence seq = ramArrayMarch(ram);
  const FaultSimResult res = engine.run(seq);
  EXPECT_EQ(res.numFaults, 2u);
  EXPECT_EQ(res.numDetected, 2u);
}

TEST(ShardedRunnerTest, ShardedRunIsRepeatable) {
  const RamCircuit ram = buildRam(RamConfig{2, 2});
  FaultList faults = allStorageNodeStuckFaults(ram.net);
  EngineOptions opts;
  opts.policy = DetectionPolicy::AnyDifference;
  opts.jobs = 3;
  Engine engine(ram.net, faults, opts);
  const TestSequence seq = ramArrayMarch(ram);
  const FaultSimResult first = engine.run(seq);
  const FaultSimResult second = engine.run(seq);
  EXPECT_EQ(first.detectedAtPattern, second.detectedAtPattern);
  EXPECT_EQ(first.totalNodeEvals, second.totalNodeEvals);
}

}  // namespace
}  // namespace fmossim
