// Work-stealing scheduler determinism matrix (the PR's acceptance property):
// jobs x dropDetected x batch size on RAM64 and a generated workload, every
// cell's merged result identical to the serial reference backend.
//
// The serial backend shares no code with the concurrent engine's difference
// simulation, the checkpoint replay, or the merge, so equality here vouches
// for the whole sharded pipeline end to end.
#include <gtest/gtest.h>

#include <cstdio>

#include "api/engine.hpp"
#include "api/sharded_runner.hpp"
#include "circuits/ram.hpp"
#include "faults/sampling.hpp"
#include "faults/universe.hpp"
#include "gen/random_circuit.hpp"
#include "patterns/marching.hpp"
#include "perf/bench_runner.hpp"
#include "sched/detection_history.hpp"
#include "sched/fault_schedule.hpp"
#include "util/rng.hpp"

namespace fmossim {
namespace {

struct MatrixWorkload {
  std::string name;
  Network net;
  FaultList faults;
  TestSequence seq;
};

std::vector<MatrixWorkload> matrixWorkloads() {
  std::vector<MatrixWorkload> out;
  {
    MatrixWorkload w;
    w.name = "ram64";
    RamCircuit ram = buildRam(ram64Config());
    FaultList universe = allStorageNodeStuckFaults(ram.net);
    for (const TransId ft : ram.bitLineShorts) {
      universe.add(Fault::faultDeviceActive(ram.net, ft));
    }
    Rng rng(1234);
    w.faults = sampleFaults(universe, 60, rng);
    w.seq = ramControlTests(ram);
    w.seq.append(ramRowMarch(ram));
    w.net = std::move(ram.net);
    out.push_back(std::move(w));
  }
  {
    MatrixWorkload w;
    w.name = "fuzz-seed-1";
    GenOptions gen;
    gen.seed = 1;
    gen.numNodes = 28;
    gen.numInputs = 6;
    gen.numFaults = 44;
    gen.numPatterns = 14;
    GeneratedWorkload g = generateWorkload(gen);
    w.net = std::move(g.net);
    w.faults = std::move(g.faults);
    w.seq = std::move(g.seq);
    out.push_back(std::move(w));
  }
  return out;
}

void expectEqualResults(const FaultSimResult& ref, const FaultSimResult& got,
                        const std::string& label) {
  EXPECT_EQ(got.numFaults, ref.numFaults) << label;
  EXPECT_EQ(got.detectedAtPattern, ref.detectedAtPattern) << label;
  EXPECT_EQ(got.numDetected, ref.numDetected) << label;
  EXPECT_EQ(got.potentialDetections, ref.potentialDetections) << label;
  EXPECT_EQ(got.finalGoodStates, ref.finalGoodStates) << label;
  ASSERT_EQ(got.perPattern.size(), ref.perPattern.size()) << label;
  for (std::size_t pi = 0; pi < ref.perPattern.size(); ++pi) {
    ASSERT_EQ(got.perPattern[pi].newlyDetected,
              ref.perPattern[pi].newlyDetected)
        << label << " pattern " << pi;
    ASSERT_EQ(got.perPattern[pi].cumulativeDetected,
              ref.perPattern[pi].cumulativeDetected)
        << label << " pattern " << pi;
    ASSERT_EQ(got.perPattern[pi].aliveAfter, ref.perPattern[pi].aliveAfter)
        << label << " pattern " << pi;
  }
  // The harness-level statement of the same fact.
  EXPECT_EQ(perf::resultChecksum(got), perf::resultChecksum(ref)) << label;
}

TEST(SchedulerMatrixTest, MergedResultsEqualSerialBackend) {
  for (const MatrixWorkload& w : matrixWorkloads()) {
    for (const bool drop : {true, false}) {
      EngineOptions serialOpts;
      serialOpts.backend = Backend::Serial;
      serialOpts.policy = DetectionPolicy::AnyDifference;
      serialOpts.dropDetected = drop;
      Engine serial(w.net, w.faults, serialOpts);
      const FaultSimResult ref = serial.run(w.seq);
      ASSERT_GT(ref.numDetected, 0u) << w.name;

      for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
        for (const std::uint32_t batch : {1u, 16u, 0u}) {
          EngineOptions opts;
          opts.backend = Backend::Concurrent;
          opts.policy = DetectionPolicy::AnyDifference;
          opts.dropDetected = drop;
          opts.jobs = jobs;
          opts.batchFaults = batch;
          Engine engine(w.net, w.faults, opts);
          const FaultSimResult got = engine.run(w.seq);
          expectEqualResults(
              ref, got,
              w.name + " drop=" + (drop ? "on" : "off") +
                  " jobs=" + std::to_string(jobs) +
                  " batch=" + std::to_string(batch));
        }
      }
    }
  }
}

// Sharded work counters must equal the unsharded concurrent engine's for
// every jobs/batch combination: the checkpoint counts the good machine once,
// the batches partition the faulty work. The merged peak-concurrent-fault-
// machine count (the paper's Fig. statistic) must also equal the jobs=1
// peak exactly — per-batch peaks coincide at sequence start, so the merge's
// summed peaks reconstruct the modeled single-engine peak, not an upper
// bound (see FaultSimResult::maxAlive).
TEST(SchedulerMatrixTest, NodeEvalsAndMaxAliveInvariantAcrossJobsAndBatches) {
  const MatrixWorkload w = matrixWorkloads()[0];
  EngineOptions base;
  base.policy = DetectionPolicy::AnyDifference;
  Engine reference(w.net, w.faults, base);
  const FaultSimResult ref = reference.run(w.seq);

  for (const unsigned jobs : {2u, 4u}) {
    for (const std::uint32_t batch : {1u, 16u, 0u}) {
      EngineOptions opts = base;
      opts.jobs = jobs;
      opts.batchFaults = batch;
      Engine engine(w.net, w.faults, opts);
      const FaultSimResult got = engine.run(w.seq);
      EXPECT_EQ(got.totalNodeEvals, ref.totalNodeEvals)
          << "jobs=" << jobs << " batch=" << batch;
      EXPECT_EQ(got.maxAlive, ref.maxAlive)
          << "merged peak-alive must equal the jobs=1 peak (jobs=" << jobs
          << " batch=" << batch << ")";
      for (std::size_t pi = 0; pi < ref.perPattern.size(); ++pi) {
        ASSERT_EQ(got.perPattern[pi].nodeEvals, ref.perPattern[pi].nodeEvals)
            << "jobs=" << jobs << " batch=" << batch << " pattern=" << pi;
      }
    }
  }
}

// Schedule-policy matrix (the FaultSchedule layer's acceptance property):
// policy x jobs x laneWidth, every cell bit-identical to the contiguous
// default. The history rows are laid out by the detection record a prior
// contiguous run published into a shared HistoryStore — batch membership
// is permuted, results must not move. History rows WITHOUT any recorded
// history must silently fall back to the contiguous plan.
TEST(SchedulerMatrixTest, SchedulePolicyMatrixBitIdentical) {
  for (const MatrixWorkload& w : matrixWorkloads()) {
    EngineOptions refOpts;
    refOpts.backend = Backend::Concurrent;
    refOpts.policy = DetectionPolicy::AnyDifference;
    Engine reference(w.net, w.faults, refOpts);
    const FaultSimResult ref = reference.run(w.seq);
    ASSERT_GT(ref.numDetected, 0u) << w.name;

    // Seed the history store: one contiguous sharded run records per-fault
    // detection outcomes keyed on the fault-list fingerprint.
    auto history = std::make_shared<sched::HistoryStore>();
    {
      EngineOptions seedOpts = refOpts;
      seedOpts.jobs = 2;
      seedOpts.historyStore = history;
      Engine seeder(w.net, w.faults, seedOpts);
      expectEqualResults(ref, seeder.run(w.seq), w.name + " history seeder");
    }
    ASSERT_EQ(history->size(), 1u) << w.name;

    for (const sched::SchedulePolicy policy :
         {sched::SchedulePolicy::Contiguous, sched::SchedulePolicy::History}) {
      for (const unsigned jobs : {1u, 2u, 4u}) {
        for (const std::uint32_t lanes : {1u, 32u}) {
          for (const bool seeded : {true, false}) {
            EngineOptions opts = refOpts;
            opts.schedule = policy;
            opts.jobs = jobs;
            opts.laneWidth = lanes;
            if (seeded) opts.historyStore = history;
            Engine engine(w.net, w.faults, opts);
            expectEqualResults(
                ref, engine.run(w.seq),
                w.name + " schedule=" + sched::schedulePolicyName(policy) +
                    " jobs=" + std::to_string(jobs) +
                    " lanes=" + std::to_string(lanes) +
                    (seeded ? " seeded" : " unseeded"));
          }
        }
      }
    }
  }
}

// History sidecar round-trip: a sharded run with a history file records the
// per-fault detection outcomes to disk; loading it back yields the run's
// exact detectedAtPattern vector, and a second runner scheduling from the
// sidecar stays bit-identical. A fingerprint mismatch must refuse the file.
TEST(SchedulerMatrixTest, HistorySidecarRoundTrip) {
  const MatrixWorkload w = matrixWorkloads()[1];
  const std::string path = testing::TempDir() + "/fmossim_history_test.txt";
  std::remove(path.c_str());

  FsimOptions fopts;
  fopts.policy = DetectionPolicy::AnyDifference;
  ShardedRunner writer(w.net, w.faults, fopts, 2, 0, nullptr, 0,
                       sched::SchedulePolicy::Contiguous, nullptr, path);
  const FaultSimResult ref = writer.run(w.seq);

  const auto loaded = sched::loadHistoryFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->detectedAtPattern, ref.detectedAtPattern);

  ShardedRunner reader(w.net, w.faults, fopts, 4, 0, nullptr, 0,
                       sched::SchedulePolicy::History, nullptr, path);
  const FaultSimResult got = reader.run(w.seq);
  EXPECT_EQ(got.detectedAtPattern, ref.detectedAtPattern);
  EXPECT_EQ(got.totalNodeEvals, ref.totalNodeEvals);
  EXPECT_EQ(perf::resultChecksum(got), perf::resultChecksum(ref));

  // Keyed load: the wrong fingerprint must be rejected (another tenant's
  // fault list never schedules from this record), the right one accepted.
  EXPECT_FALSE(sched::loadHistoryFile(path, loaded->faultsFingerprint + 1)
                   .has_value());
  EXPECT_TRUE(sched::loadHistoryFile(path, loaded->faultsFingerprint)
                  .has_value());
  std::remove(path.c_str());
}

// A truncated or tampered sidecar is advisory input, never trusted: load
// must return nullopt (and the runner falls back to contiguous layout).
TEST(SchedulerMatrixTest, HistorySidecarRejectsMalformedFiles) {
  const std::string path = testing::TempDir() + "/fmossim_history_bad.txt";
  const auto writeText = [&](const char* text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(text, f);
    std::fclose(f);
  };
  EXPECT_FALSE(sched::loadHistoryFile("/nonexistent/history").has_value());
  writeText("");
  EXPECT_FALSE(sched::loadHistoryFile(path).has_value());
  writeText("not-a-history v1\nfaults 00000000000000aa 1\n3\n");
  EXPECT_FALSE(sched::loadHistoryFile(path).has_value());
  writeText("fmossim-history v9\nfaults 00000000000000aa 1\n3\n");
  EXPECT_FALSE(sched::loadHistoryFile(path).has_value());
  // Truncated: header promises two entries, file holds one.
  writeText("fmossim-history v1\nfaults 00000000000000aa 2\n3\n");
  EXPECT_FALSE(sched::loadHistoryFile(path).has_value());
  // Trailing garbage after the promised entries.
  writeText("fmossim-history v1\nfaults 00000000000000aa 1\n3\nextra\n");
  EXPECT_FALSE(sched::loadHistoryFile(path).has_value());
  // Entry below -1 (no such pattern index).
  writeText("fmossim-history v1\nfaults 00000000000000aa 1\n-2\n");
  EXPECT_FALSE(sched::loadHistoryFile(path).has_value());
  // The well-formed version of the same bytes loads.
  writeText("fmossim-history v1\nfaults 00000000000000aa 1\n3\n");
  const auto ok = sched::loadHistoryFile(path);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->faultsFingerprint, 0xaaULL);
  ASSERT_EQ(ok->detectedAtPattern.size(), 1u);
  EXPECT_EQ(ok->detectedAtPattern[0], 3);
  std::remove(path.c_str());
}

// The batch schedule itself: contiguous, ascending, covering, respecting
// the fixed-size knob and the auto floor.
TEST(SchedulerMatrixTest, MakeBatchesCoversUniverse) {
  for (const std::uint32_t n : {0u, 1u, 31u, 32u, 100u, 1398u}) {
    for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
      for (const std::uint32_t batch : {0u, 1u, 16u, 500u}) {
        const auto batches = ShardedRunner::makeBatches(n, jobs, batch);
        std::uint32_t expect = 0;
        for (const auto& [begin, end] : batches) {
          ASSERT_EQ(begin, expect);
          ASSERT_LT(begin, end);
          expect = end;
        }
        EXPECT_EQ(expect, n);
        if (batch > 0) {
          for (const auto& [begin, end] : batches) {
            EXPECT_LE(end - begin, batch);
          }
        } else if (n > 0) {
          // Auto: at most ceil(n/32) batches (the 32-fault floor).
          EXPECT_LE(batches.size(), (n + 31) / 32);
        }
      }
    }
  }
}

// Degenerate batching inputs must still produce valid schedules: a batch
// size past the universe yields one full batch, an empty universe yields no
// batches, and more jobs than faults never manufactures empty batches.
TEST(SchedulerMatrixTest, MakeBatchesEdgeCases) {
  // batchFaults far beyond the fault list: one batch, the whole universe.
  {
    const auto batches = ShardedRunner::makeBatches(7, 4, 1000);
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].first, 0u);
    EXPECT_EQ(batches[0].second, 7u);
  }
  // Empty universe: no batches at all (not one empty batch).
  for (const std::uint32_t batch : {0u, 1u, 64u}) {
    EXPECT_TRUE(ShardedRunner::makeBatches(0, 4, batch).empty());
  }
  // jobs >> faults: every batch non-empty, coverage exact.
  for (const std::uint32_t n : {1u, 3u, 31u}) {
    for (const unsigned jobs : {8u, 64u, 1000u}) {
      const auto batches = ShardedRunner::makeBatches(n, jobs, 0);
      std::uint32_t covered = 0;
      for (const auto& [begin, end] : batches) {
        ASSERT_LT(begin, end);
        ASSERT_EQ(begin, covered);
        covered = end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

// End-to-end on the same degenerate shapes: more jobs than faults and a
// batch size past the universe must merge to the exact reference result.
TEST(SchedulerMatrixTest, DegenerateBatchShapesMergeExactly) {
  const MatrixWorkload w = matrixWorkloads()[1];
  EngineOptions base;
  base.backend = Backend::Concurrent;
  base.policy = DetectionPolicy::AnyDifference;
  Engine reference(w.net, w.faults, base);
  const FaultSimResult ref = reference.run(w.seq);

  struct Shape {
    unsigned jobs;
    std::uint32_t batch;
  };
  for (const Shape s : {Shape{64, 0}, Shape{8, 1000}, Shape{1000, 1}}) {
    EngineOptions opts = base;
    opts.jobs = s.jobs;
    opts.batchFaults = s.batch;
    Engine engine(w.net, w.faults, opts);
    expectEqualResults(ref, engine.run(w.seq),
                       "jobs=" + std::to_string(s.jobs) +
                           " batch=" + std::to_string(s.batch));
  }
}

// The history plan is a valid permutation schedule: order permutes
// [0, n), slices cover every position exactly once with no empty batch,
// and hint windows are in range. Undetected faults sort to the end of the
// permutation (the co-batching that motivates the policy).
TEST(SchedulerMatrixTest, HistoryPlanIsValidPermutation) {
  auto history = std::make_shared<sched::DetectionHistory>();
  history->faultsFingerprint = 1;
  const std::uint32_t n = 100;
  history->detectedAtPattern.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    // A mix: every third fault undetected, the rest detected at varying
    // depths, deliberately not sorted.
    history->detectedAtPattern[i] =
        (i % 3 == 0) ? -1 : static_cast<std::int32_t>((i * 37) % 50);
  }
  const sched::HistorySchedule schedule(history);
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    for (const std::uint32_t lanes : {1u, 32u}) {
      const sched::BatchPlan plan = schedule.plan(n, jobs, 0, lanes);
      ASSERT_EQ(plan.order.size(), n);
      std::vector<bool> seen(n, false);
      for (const std::uint32_t g : plan.order) {
        ASSERT_LT(g, n);
        ASSERT_FALSE(seen[g]);
        seen[g] = true;
      }
      std::vector<bool> covered(n, false);
      for (const auto& [begin, end] : plan.slices) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, n);
        for (std::uint32_t pos = begin; pos < end; ++pos) {
          ASSERT_FALSE(covered[pos]);
          covered[pos] = true;
        }
      }
      for (std::uint32_t pos = 0; pos < n; ++pos) EXPECT_TRUE(covered[pos]);
      // Undetected faults occupy the tail of the permutation: everything
      // after the first undetected position must also be undetected.
      bool sawUndetected = false;
      for (std::uint32_t pos = 0; pos < n; ++pos) {
        const bool undetected =
            history->detectedAtPattern[plan.order[pos]] < 0;
        if (sawUndetected) EXPECT_TRUE(undetected) << "position " << pos;
        sawUndetected = sawUndetected || undetected;
      }
      if (lanes == 1) {
        // Scalar plans carry no hints at all (hintWindows stays empty).
        EXPECT_TRUE(plan.hintWindows.empty());
      } else {
        ASSERT_EQ(plan.hintWindows.size(), plan.slices.size());
        for (std::size_t b = 0; b < plan.slices.size(); ++b) {
          const std::uint32_t span =
              plan.slices[b].second - plan.slices[b].first;
          for (const std::uint32_t widx : plan.hintWindows[b]) {
            EXPECT_LT(widx * lanes, span);
          }
        }
      }
    }
  }
  // Size mismatch (history from a different fault list): contiguous
  // fallback — identity order, the default slices.
  const sched::BatchPlan fallback = schedule.plan(n + 5, 2, 0, 1);
  EXPECT_TRUE(fallback.order.empty());
  EXPECT_EQ(fallback.slices, sched::contiguousBatches(n + 5, 2, 0, 1));
}

// Checkpoint read-ahead: with the good-machine trace spilled to disk (tiny
// budget) and asynchronous next-block prefetch enabled, every replaying
// batch must still produce the exact reference result — prefetch only moves
// I/O off the critical path, it never changes which block is replayed.
TEST(SchedulerMatrixTest, ReadAheadSpilledReplayBitIdentical) {
  const MatrixWorkload w = matrixWorkloads()[0];
  EngineOptions base;
  base.backend = Backend::Concurrent;
  base.policy = DetectionPolicy::AnyDifference;
  Engine reference(w.net, w.faults, base);
  const FaultSimResult ref = reference.run(w.seq);

  for (const sched::SchedulePolicy policy :
       {sched::SchedulePolicy::Contiguous, sched::SchedulePolicy::History}) {
    EngineOptions opts = base;
    opts.jobs = 4;
    opts.schedule = policy;
    opts.checkpointBudgetBytes = 4096;  // forces the spill/window path
    opts.checkpointReadAhead = true;
    Engine engine(w.net, w.faults, opts);
    expectEqualResults(ref, engine.run(w.seq),
                       std::string("read-ahead schedule=") +
                           sched::schedulePolicyName(policy));
  }
}

// Checkpoint reuse across run() calls: the second run must not re-record
// (same object), results stay identical; reset() drops the cache.
TEST(SchedulerMatrixTest, CheckpointIsReusedAcrossRuns) {
  const MatrixWorkload w = matrixWorkloads()[1];
  FsimOptions fopts;
  fopts.policy = DetectionPolicy::AnyDifference;
  ShardedRunner runner(w.net, w.faults, fopts, 4);
  EXPECT_EQ(runner.checkpoint(), nullptr);
  const FaultSimResult first = runner.run(w.seq);
  const GoodMachineCheckpoint* ck = runner.checkpoint();
  ASSERT_NE(ck, nullptr);
  const FaultSimResult second = runner.run(w.seq);
  EXPECT_EQ(runner.checkpoint(), ck);  // reused, not re-recorded
  EXPECT_EQ(first.detectedAtPattern, second.detectedAtPattern);
  EXPECT_EQ(first.totalNodeEvals, second.totalNodeEvals);
  runner.reset();
  EXPECT_EQ(runner.checkpoint(), nullptr);
}

}  // namespace
}  // namespace fmossim
