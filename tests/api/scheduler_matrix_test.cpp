// Work-stealing scheduler determinism matrix (the PR's acceptance property):
// jobs x dropDetected x batch size on RAM64 and a generated workload, every
// cell's merged result identical to the serial reference backend.
//
// The serial backend shares no code with the concurrent engine's difference
// simulation, the checkpoint replay, or the merge, so equality here vouches
// for the whole sharded pipeline end to end.
#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "api/sharded_runner.hpp"
#include "circuits/ram.hpp"
#include "faults/sampling.hpp"
#include "faults/universe.hpp"
#include "gen/random_circuit.hpp"
#include "patterns/marching.hpp"
#include "perf/bench_runner.hpp"
#include "util/rng.hpp"

namespace fmossim {
namespace {

struct MatrixWorkload {
  std::string name;
  Network net;
  FaultList faults;
  TestSequence seq;
};

std::vector<MatrixWorkload> matrixWorkloads() {
  std::vector<MatrixWorkload> out;
  {
    MatrixWorkload w;
    w.name = "ram64";
    RamCircuit ram = buildRam(ram64Config());
    FaultList universe = allStorageNodeStuckFaults(ram.net);
    for (const TransId ft : ram.bitLineShorts) {
      universe.add(Fault::faultDeviceActive(ram.net, ft));
    }
    Rng rng(1234);
    w.faults = sampleFaults(universe, 60, rng);
    w.seq = ramControlTests(ram);
    w.seq.append(ramRowMarch(ram));
    w.net = std::move(ram.net);
    out.push_back(std::move(w));
  }
  {
    MatrixWorkload w;
    w.name = "fuzz-seed-1";
    GenOptions gen;
    gen.seed = 1;
    gen.numNodes = 28;
    gen.numInputs = 6;
    gen.numFaults = 44;
    gen.numPatterns = 14;
    GeneratedWorkload g = generateWorkload(gen);
    w.net = std::move(g.net);
    w.faults = std::move(g.faults);
    w.seq = std::move(g.seq);
    out.push_back(std::move(w));
  }
  return out;
}

void expectEqualResults(const FaultSimResult& ref, const FaultSimResult& got,
                        const std::string& label) {
  EXPECT_EQ(got.numFaults, ref.numFaults) << label;
  EXPECT_EQ(got.detectedAtPattern, ref.detectedAtPattern) << label;
  EXPECT_EQ(got.numDetected, ref.numDetected) << label;
  EXPECT_EQ(got.potentialDetections, ref.potentialDetections) << label;
  EXPECT_EQ(got.finalGoodStates, ref.finalGoodStates) << label;
  ASSERT_EQ(got.perPattern.size(), ref.perPattern.size()) << label;
  for (std::size_t pi = 0; pi < ref.perPattern.size(); ++pi) {
    ASSERT_EQ(got.perPattern[pi].newlyDetected,
              ref.perPattern[pi].newlyDetected)
        << label << " pattern " << pi;
    ASSERT_EQ(got.perPattern[pi].cumulativeDetected,
              ref.perPattern[pi].cumulativeDetected)
        << label << " pattern " << pi;
    ASSERT_EQ(got.perPattern[pi].aliveAfter, ref.perPattern[pi].aliveAfter)
        << label << " pattern " << pi;
  }
  // The harness-level statement of the same fact.
  EXPECT_EQ(perf::resultChecksum(got), perf::resultChecksum(ref)) << label;
}

TEST(SchedulerMatrixTest, MergedResultsEqualSerialBackend) {
  for (const MatrixWorkload& w : matrixWorkloads()) {
    for (const bool drop : {true, false}) {
      EngineOptions serialOpts;
      serialOpts.backend = Backend::Serial;
      serialOpts.policy = DetectionPolicy::AnyDifference;
      serialOpts.dropDetected = drop;
      Engine serial(w.net, w.faults, serialOpts);
      const FaultSimResult ref = serial.run(w.seq);
      ASSERT_GT(ref.numDetected, 0u) << w.name;

      for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
        for (const std::uint32_t batch : {1u, 16u, 0u}) {
          EngineOptions opts;
          opts.backend = Backend::Concurrent;
          opts.policy = DetectionPolicy::AnyDifference;
          opts.dropDetected = drop;
          opts.jobs = jobs;
          opts.batchFaults = batch;
          Engine engine(w.net, w.faults, opts);
          const FaultSimResult got = engine.run(w.seq);
          expectEqualResults(
              ref, got,
              w.name + " drop=" + (drop ? "on" : "off") +
                  " jobs=" + std::to_string(jobs) +
                  " batch=" + std::to_string(batch));
        }
      }
    }
  }
}

// Sharded work counters must equal the unsharded concurrent engine's for
// every jobs/batch combination: the checkpoint counts the good machine once,
// the batches partition the faulty work. The merged peak-concurrent-fault-
// machine count (the paper's Fig. statistic) must also equal the jobs=1
// peak exactly — per-batch peaks coincide at sequence start, so the merge's
// summed peaks reconstruct the modeled single-engine peak, not an upper
// bound (see FaultSimResult::maxAlive).
TEST(SchedulerMatrixTest, NodeEvalsAndMaxAliveInvariantAcrossJobsAndBatches) {
  const MatrixWorkload w = matrixWorkloads()[0];
  EngineOptions base;
  base.policy = DetectionPolicy::AnyDifference;
  Engine reference(w.net, w.faults, base);
  const FaultSimResult ref = reference.run(w.seq);

  for (const unsigned jobs : {2u, 4u}) {
    for (const std::uint32_t batch : {1u, 16u, 0u}) {
      EngineOptions opts = base;
      opts.jobs = jobs;
      opts.batchFaults = batch;
      Engine engine(w.net, w.faults, opts);
      const FaultSimResult got = engine.run(w.seq);
      EXPECT_EQ(got.totalNodeEvals, ref.totalNodeEvals)
          << "jobs=" << jobs << " batch=" << batch;
      EXPECT_EQ(got.maxAlive, ref.maxAlive)
          << "merged peak-alive must equal the jobs=1 peak (jobs=" << jobs
          << " batch=" << batch << ")";
      for (std::size_t pi = 0; pi < ref.perPattern.size(); ++pi) {
        ASSERT_EQ(got.perPattern[pi].nodeEvals, ref.perPattern[pi].nodeEvals)
            << "jobs=" << jobs << " batch=" << batch << " pattern=" << pi;
      }
    }
  }
}

// The batch schedule itself: contiguous, ascending, covering, respecting
// the fixed-size knob and the auto floor.
TEST(SchedulerMatrixTest, MakeBatchesCoversUniverse) {
  for (const std::uint32_t n : {0u, 1u, 31u, 32u, 100u, 1398u}) {
    for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
      for (const std::uint32_t batch : {0u, 1u, 16u, 500u}) {
        const auto batches = ShardedRunner::makeBatches(n, jobs, batch);
        std::uint32_t expect = 0;
        for (const auto& [begin, end] : batches) {
          ASSERT_EQ(begin, expect);
          ASSERT_LT(begin, end);
          expect = end;
        }
        EXPECT_EQ(expect, n);
        if (batch > 0) {
          for (const auto& [begin, end] : batches) {
            EXPECT_LE(end - begin, batch);
          }
        } else if (n > 0) {
          // Auto: at most ceil(n/32) batches (the 32-fault floor).
          EXPECT_LE(batches.size(), (n + 31) / 32);
        }
      }
    }
  }
}

// Checkpoint reuse across run() calls: the second run must not re-record
// (same object), results stay identical; reset() drops the cache.
TEST(SchedulerMatrixTest, CheckpointIsReusedAcrossRuns) {
  const MatrixWorkload w = matrixWorkloads()[1];
  FsimOptions fopts;
  fopts.policy = DetectionPolicy::AnyDifference;
  ShardedRunner runner(w.net, w.faults, fopts, 4);
  EXPECT_EQ(runner.checkpoint(), nullptr);
  const FaultSimResult first = runner.run(w.seq);
  const GoodMachineCheckpoint* ck = runner.checkpoint();
  ASSERT_NE(ck, nullptr);
  const FaultSimResult second = runner.run(w.seq);
  EXPECT_EQ(runner.checkpoint(), ck);  // reused, not re-recorded
  EXPECT_EQ(first.detectedAtPattern, second.detectedAtPattern);
  EXPECT_EQ(first.totalNodeEvals, second.totalNodeEvals);
  runner.reset();
  EXPECT_EQ(runner.checkpoint(), nullptr);
}

}  // namespace
}  // namespace fmossim
