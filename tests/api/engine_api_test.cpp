// The unified FaultSimulator API: both backends reachable through the same
// interface with a shared, fully populated FaultSimResult; repeatable runs
// (fresh-session semantics); and one library-wide default detection policy.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "circuits/demo_circuits.hpp"
#include "faults/universe.hpp"

namespace fmossim {
namespace {

/// A shift-register stimulus: clock a data pattern through both phases and
/// observe the final stage.
TestSequence shiftSequence(const ShiftRegister& sr) {
  TestSequence seq;
  seq.addOutput(sr.out());
  const char bits[] = "110100101";
  for (const char* bit = bits; *bit; ++bit) {
    Pattern p;
    InputSetting s0;
    s0.set(sr.vdd, State::S1);
    s0.set(sr.gnd, State::S0);
    s0.set(sr.din, *bit == '1' ? State::S1 : State::S0);
    s0.set(sr.phi1, State::S1);
    s0.set(sr.phi2, State::S0);
    InputSetting s1;
    s1.set(sr.phi1, State::S0);
    s1.set(sr.phi2, State::S1);
    InputSetting s2;
    s2.set(sr.phi2, State::S0);
    p.settings = {s0, s1, s2};
    p.label = std::string("shift ") + *bit;
    seq.addPattern(std::move(p));
  }
  return seq;
}

FaultList shiftFaults(const ShiftRegister& sr) {
  FaultList faults = allStorageNodeStuckFaults(sr.net);
  faults.append(allTransistorStuckFaults(sr.net));
  return faults;
}

TEST(EngineApiTest, BothBackendsReachableThroughOneInterface) {
  const ShiftRegister sr = buildShiftRegister(2);
  const TestSequence seq = shiftSequence(sr);
  const FaultList faults = shiftFaults(sr);

  for (const DetectionPolicy policy :
       {DetectionPolicy::DefiniteOnly, DetectionPolicy::AnyDifference}) {
    std::vector<std::unique_ptr<FaultSimulator>> sims;
    for (const Backend backend : {Backend::Serial, Backend::Concurrent}) {
      EngineOptions opts;
      opts.backend = backend;
      opts.policy = policy;
      sims.push_back(std::make_unique<Engine>(sr.net, faults, opts));
    }

    std::vector<FaultSimResult> results;
    for (const auto& sim : sims) results.push_back(sim->run(seq));

    const FaultSimResult& serial = results[0];
    const FaultSimResult& concurrent = results[1];
    ASSERT_EQ(serial.numFaults, faults.size());
    ASSERT_EQ(concurrent.numFaults, faults.size());
    EXPECT_GT(concurrent.numDetected, 0u);
    EXPECT_EQ(serial.numDetected, concurrent.numDetected);
    for (std::uint32_t fi = 0; fi < faults.size(); ++fi) {
      EXPECT_EQ(serial.detectedAtPattern[fi], concurrent.detectedAtPattern[fi])
          << "fault '" << faults[fi].name << "'";
    }
  }
}

TEST(EngineApiTest, SerialBackendPopulatesFullResult) {
  const ShiftRegister sr = buildShiftRegister(2);
  const TestSequence seq = shiftSequence(sr);
  const FaultList faults = shiftFaults(sr);

  EngineOptions opts;
  opts.backend = Backend::Serial;
  opts.policy = DetectionPolicy::AnyDifference;
  Engine engine(sr.net, faults, opts);
  const FaultSimResult res = engine.run(seq);

  // Per-pattern rows exist and are internally consistent, exactly like the
  // concurrent backend's (so --csv and the stats recorder work unchanged).
  ASSERT_EQ(res.perPattern.size(), seq.size());
  std::uint32_t cumulative = 0;
  std::uint64_t evals = 0;
  for (std::uint32_t pi = 0; pi < seq.size(); ++pi) {
    const PatternStat& st = res.perPattern[pi];
    EXPECT_EQ(st.index, pi);
    cumulative += st.newlyDetected;
    EXPECT_EQ(st.cumulativeDetected, cumulative);
    EXPECT_EQ(st.aliveAfter, res.numFaults - cumulative);
    evals += st.nodeEvals;
  }
  EXPECT_EQ(cumulative, res.numDetected);
  EXPECT_GT(res.numDetected, 0u);
  EXPECT_GT(res.coverage(), 0.0);
  EXPECT_GT(evals, 0u);
  EXPECT_GE(res.totalNodeEvals, evals);  // total also covers the good run
}

TEST(EngineApiTest, NoDropAliveReportingMatchesAcrossBackends) {
  const ShiftRegister sr = buildShiftRegister(2);
  const TestSequence seq = shiftSequence(sr);
  const FaultList faults = shiftFaults(sr);

  for (const bool drop : {true, false}) {
    std::vector<FaultSimResult> results;
    for (const Backend backend : {Backend::Serial, Backend::Concurrent}) {
      EngineOptions opts;
      opts.backend = backend;
      opts.dropDetected = drop;
      Engine engine(sr.net, faults, opts);
      results.push_back(engine.run(seq));
    }
    ASSERT_EQ(results[0].perPattern.size(), results[1].perPattern.size());
    for (std::uint32_t pi = 0; pi < seq.size(); ++pi) {
      EXPECT_EQ(results[0].perPattern[pi].aliveAfter,
                results[1].perPattern[pi].aliveAfter)
          << "drop=" << drop << " pattern=" << pi;
    }
    // The serial replay holds one live faulty circuit at a time.
    EXPECT_EQ(results[0].maxAlive, 1u);
  }
}

TEST(EngineApiTest, RunsAreRepeatableAndResettable) {
  const ShiftRegister sr = buildShiftRegister(2);
  const TestSequence seq = shiftSequence(sr);
  const FaultList faults = shiftFaults(sr);

  for (const Backend backend : {Backend::Serial, Backend::Concurrent}) {
    EngineOptions opts;
    opts.backend = backend;
    Engine engine(sr.net, faults, opts);
    const FaultSimResult first = engine.run(seq);
    const FaultSimResult second = engine.run(seq);  // no once-per-instance
    engine.reset();
    const FaultSimResult third = engine.run(seq);
    for (const FaultSimResult* r : {&second, &third}) {
      EXPECT_EQ(first.numDetected, r->numDetected);
      EXPECT_EQ(first.detectedAtPattern, r->detectedAtPattern);
      EXPECT_EQ(first.totalNodeEvals, r->totalNodeEvals);  // deterministic
    }
  }
}

TEST(EngineApiTest, PatternCallbackFiresInOrderForEveryBackend) {
  const ShiftRegister sr = buildShiftRegister(2);
  const TestSequence seq = shiftSequence(sr);
  const FaultList faults = shiftFaults(sr);

  for (const unsigned jobs : {1u, 2u}) {
    for (const Backend backend : {Backend::Serial, Backend::Concurrent}) {
      EngineOptions opts;
      opts.backend = backend;
      opts.jobs = jobs;
      Engine engine(sr.net, faults, opts);
      std::vector<std::uint32_t> seen;
      const FaultSimResult res = engine.run(
          seq, [&](const PatternStat& st) { seen.push_back(st.index); });
      ASSERT_EQ(seen.size(), seq.size());
      for (std::uint32_t pi = 0; pi < seq.size(); ++pi) EXPECT_EQ(seen[pi], pi);
      EXPECT_EQ(res.perPattern.size(), seq.size());
    }
  }
}

TEST(EngineApiTest, DefaultDetectionPolicyIsUniform) {
  // The CLI and every option struct must agree on one library-wide default.
  EXPECT_EQ(EngineOptions{}.policy, DetectionPolicy::DefiniteOnly);
  EXPECT_EQ(FsimOptions{}.policy, DetectionPolicy::DefiniteOnly);
  EXPECT_EQ(SerialOptions{}.policy, DetectionPolicy::DefiniteOnly);
}

TEST(EngineApiTest, BackendNamesAndAccessors) {
  const ShiftRegister sr = buildShiftRegister(1);
  const FaultList faults = shiftFaults(sr);

  Engine serial(sr.net, faults, {.backend = Backend::Serial});
  Engine concurrent(sr.net, faults, {.backend = Backend::Concurrent});
  Engine sharded(sr.net, faults,
                 {.backend = Backend::Concurrent, .jobs = 4});
  EXPECT_STREQ(serial.backendName(), "serial");
  EXPECT_STREQ(concurrent.backendName(), "concurrent");
  EXPECT_STREQ(sharded.backendName(), "sharded");
  EXPECT_EQ(serial.faults().size(), faults.size());
  EXPECT_EQ(serial.network().numNodes(), sr.net.numNodes());
}

}  // namespace
}  // namespace fmossim
