// Detection-policy / drop-mode matrix across all three backends.
//
// tests/api previously exercised DetectionPolicy::AnyDifference and
// dropDetected=false only on the serial/concurrent pair and mostly on
// DefiniteOnly paths; this suite pins the full matrix
//   {DefiniteOnly, AnyDifference} x {drop, no-drop} x {serial, concurrent,
//   sharded jobs 2 and 4}
// to identical detections, potentials, per-pattern rows and final good
// states — the same exactness contract the differential fuzzing oracle
// (src/gen/diff_oracle.hpp) enforces on random circuits.
#include <gtest/gtest.h>

#include "api/engine.hpp"
#include "circuits/demo_circuits.hpp"
#include "faults/universe.hpp"

namespace fmossim {
namespace {

struct Workload {
  ShiftRegister sr;
  TestSequence seq;
  FaultList faults;
};

Workload makeWorkload() {
  Workload w{buildShiftRegister(2), {}, {}};
  w.seq.addOutput(w.sr.out());
  const char bits[] = "11010010";
  for (const char* bit = bits; *bit; ++bit) {
    Pattern p;
    InputSetting s0;
    s0.set(w.sr.vdd, State::S1);
    s0.set(w.sr.gnd, State::S0);
    s0.set(w.sr.din, *bit == '1' ? State::S1 : State::S0);
    s0.set(w.sr.phi1, State::S1);
    s0.set(w.sr.phi2, State::S0);
    InputSetting s1;
    s1.set(w.sr.phi1, State::S0);
    s1.set(w.sr.phi2, State::S1);
    InputSetting s2;
    s2.set(w.sr.phi2, State::S0);
    p.settings = {s0, s1, s2};
    w.seq.addPattern(std::move(p));
  }
  w.faults = allStorageNodeStuckFaults(w.sr.net);
  w.faults.append(allTransistorStuckFaults(w.sr.net));
  return w;
}

FaultSimResult runWith(const Workload& w, Backend backend, unsigned jobs,
                       DetectionPolicy policy, bool drop) {
  EngineOptions opts;
  opts.backend = backend;
  opts.jobs = jobs;
  opts.policy = policy;
  opts.dropDetected = drop;
  Engine engine(w.sr.net, w.faults, opts);
  return engine.run(w.seq);
}

TEST(PolicyMatrixTest, AllBackendsAgreeAcrossPolicyAndDropModes) {
  const Workload w = makeWorkload();
  for (const DetectionPolicy policy :
       {DetectionPolicy::DefiniteOnly, DetectionPolicy::AnyDifference}) {
    for (const bool drop : {true, false}) {
      const FaultSimResult ref =
          runWith(w, Backend::Serial, 1, policy, drop);
      for (const unsigned jobs : {1u, 2u, 4u}) {
        SCOPED_TRACE(::testing::Message()
                     << "policy="
                     << (policy == DetectionPolicy::AnyDifference ? "any"
                                                                  : "definite")
                     << " drop=" << drop << " jobs=" << jobs);
        const FaultSimResult got =
            runWith(w, Backend::Concurrent, jobs, policy, drop);
        ASSERT_EQ(got.numFaults, ref.numFaults);
        EXPECT_EQ(got.numDetected, ref.numDetected);
        EXPECT_EQ(got.detectedAtPattern, ref.detectedAtPattern);
        EXPECT_EQ(got.potentialDetections, ref.potentialDetections);
        ASSERT_EQ(got.perPattern.size(), ref.perPattern.size());
        for (std::size_t pi = 0; pi < ref.perPattern.size(); ++pi) {
          EXPECT_EQ(got.perPattern[pi].newlyDetected,
                    ref.perPattern[pi].newlyDetected);
          EXPECT_EQ(got.perPattern[pi].cumulativeDetected,
                    ref.perPattern[pi].cumulativeDetected);
          EXPECT_EQ(got.perPattern[pi].aliveAfter,
                    ref.perPattern[pi].aliveAfter);
        }
        EXPECT_EQ(got.finalGoodStates, ref.finalGoodStates);
        ASSERT_EQ(got.finalGoodStates.size(), w.sr.net.numNodes());
      }
    }
  }
}

TEST(PolicyMatrixTest, AnyDifferenceDetectsAtLeastAsMuchAsDefiniteOnly) {
  const Workload w = makeWorkload();
  for (const Backend backend : {Backend::Serial, Backend::Concurrent}) {
    const FaultSimResult definite =
        runWith(w, backend, 1, DetectionPolicy::DefiniteOnly, true);
    const FaultSimResult any =
        runWith(w, backend, 1, DetectionPolicy::AnyDifference, true);
    EXPECT_GE(any.numDetected, definite.numDetected);
    // An X-involved mismatch is a detection under AnyDifference, so no
    // potential detections remain to be counted.
    EXPECT_EQ(any.potentialDetections, 0u);
    // Per fault: AnyDifference can only detect earlier (or equally late).
    for (std::uint32_t fi = 0; fi < w.faults.size(); ++fi) {
      if (definite.detectedAtPattern[fi] >= 0 &&
          any.detectedAtPattern[fi] >= 0) {
        EXPECT_LE(any.detectedAtPattern[fi], definite.detectedAtPattern[fi])
            << "fault '" << w.faults[fi].name << "'";
      }
    }
  }
}

TEST(PolicyMatrixTest, NoDropKeepsEveryCircuitAliveOnEveryBackend) {
  const Workload w = makeWorkload();
  for (const unsigned jobs : {1u, 2u, 4u}) {
    const FaultSimResult res = runWith(w, Backend::Concurrent, jobs,
                                       DetectionPolicy::AnyDifference, false);
    ASSERT_GT(res.numDetected, 0u);
    for (const PatternStat& st : res.perPattern) {
      EXPECT_EQ(st.aliveAfter, res.numFaults);
    }
  }
  // Serial reports the same shape for the no-drop view.
  const FaultSimResult serial = runWith(w, Backend::Serial, 1,
                                        DetectionPolicy::AnyDifference, false);
  for (const PatternStat& st : serial.perPattern) {
    EXPECT_EQ(st.aliveAfter, serial.numFaults);
  }
}

TEST(PolicyMatrixTest, DropAndNoDropAgreeOnDetections) {
  // Dropping detected circuits is a performance optimisation; it must not
  // change what is detected or when, under either policy, on any backend.
  const Workload w = makeWorkload();
  for (const DetectionPolicy policy :
       {DetectionPolicy::DefiniteOnly, DetectionPolicy::AnyDifference}) {
    for (const unsigned jobs : {1u, 2u}) {
      const FaultSimResult drop =
          runWith(w, Backend::Concurrent, jobs, policy, true);
      const FaultSimResult keep =
          runWith(w, Backend::Concurrent, jobs, policy, false);
      EXPECT_EQ(drop.detectedAtPattern, keep.detectedAtPattern);
      EXPECT_EQ(drop.numDetected, keep.numDetected);
      EXPECT_EQ(drop.finalGoodStates, keep.finalGoodStates);
    }
  }
}

}  // namespace
}  // namespace fmossim
