// Engine reuse correctness: a reset or rebound engine over a shared
// CheckpointStore must record the good machine once per (network, sequence)
// and stay bit-identical to a freshly constructed engine — the contract the
// service daemon's pooled engines rest on.
#include "serve/engine_pool.hpp"

#include <gtest/gtest.h>

#include "gen/random_circuit.hpp"
#include "perf/bench_runner.hpp"
#include "serve/protocol.hpp"

namespace fmossim::serve {
namespace {

GeneratedWorkload makeWorkload(std::uint64_t seed) {
  GenOptions gen = GenOptions::randomized(seed);
  gen.numNodes = 18;
  gen.numInputs = 5;
  gen.numFaults = 24;
  gen.numPatterns = 12;
  return generateWorkload(gen);
}

EngineOptions shardedOptions(std::shared_ptr<CheckpointStore> store = {}) {
  EngineOptions opts;
  opts.jobs = 2;  // engages the sharded runner and with it the store
  opts.checkpointStore = std::move(store);
  return opts;
}

void expectBitIdentical(const FaultSimResult& a, const FaultSimResult& b) {
  EXPECT_EQ(a.numDetected, b.numDetected);
  EXPECT_EQ(a.potentialDetections, b.potentialDetections);
  EXPECT_EQ(a.detectedAtPattern, b.detectedAtPattern);
  EXPECT_EQ(a.finalGoodStates, b.finalGoodStates);
  EXPECT_EQ(a.totalNodeEvals, b.totalNodeEvals);
  EXPECT_EQ(perf::resultChecksum(a), perf::resultChecksum(b));
}

TEST(EngineReuseTest, ResubmitThroughResetEngineRecordsOnceBitIdentical) {
  const GeneratedWorkload w = makeWorkload(11);
  auto store = std::make_shared<CheckpointStore>();

  Engine engine(w.net, w.faults, shardedOptions(store));
  const FaultSimResult first = engine.run(w.seq);
  engine.reset();
  const FaultSimResult again = engine.run(w.seq);
  expectBitIdentical(first, again);
  // The shared store survives reset(): one recording serves both sessions.
  EXPECT_EQ(store->recordings(), 1u);
  EXPECT_GE(store->hits(), 1u);

  Engine fresh(w.net, w.faults, shardedOptions(store));
  expectBitIdentical(first, fresh.run(w.seq));
  EXPECT_EQ(store->recordings(), 1u);
}

TEST(EngineReuseTest, ReboundEngineMatchesFreshEngineAndReusesStore) {
  const GeneratedWorkload a = makeWorkload(21);
  const GeneratedWorkload b = makeWorkload(22);
  auto store = std::make_shared<CheckpointStore>();

  // Prime the store with workload B's recording via a fresh engine.
  Engine reference(b.net, b.faults, shardedOptions(store));
  const FaultSimResult expected = reference.run(b.seq);
  EXPECT_EQ(store->recordings(), 1u);

  // An engine bound to A, rebound to B, must replay B's recording (no new
  // recording) and produce B's exact result.
  Engine engine(a.net, a.faults, shardedOptions(store));
  engine.run(a.seq);
  EXPECT_EQ(store->recordings(), 2u);
  engine.rebind(b.net, b.faults);
  expectBitIdentical(expected, engine.run(b.seq));
  EXPECT_EQ(store->recordings(), 2u);
  EXPECT_GE(store->hits(), 1u);
}

TEST(EngineReuseTest, FingerprintsTrackRebind) {
  const GeneratedWorkload a = makeWorkload(31);
  const GeneratedWorkload b = makeWorkload(32);
  Engine engine(a.net, a.faults, shardedOptions());
  const std::uint64_t netA = engine.netFingerprint();
  const std::uint64_t faultsA = engine.faultsFingerprint();
  EXPECT_EQ(netA, networkFingerprint(a.net));
  EXPECT_EQ(faultsA, faultListFingerprint(a.faults));

  engine.rebind(b.net, b.faults);
  EXPECT_NE(engine.netFingerprint(), netA);
  EXPECT_NE(engine.faultsFingerprint(), faultsA);
  EXPECT_EQ(engine.netFingerprint(), networkFingerprint(b.net));

  // Equal content, equal fingerprint — the reuse key is structural.
  EXPECT_EQ(Engine::sequenceFingerprint(a.seq),
            Engine::sequenceFingerprint(a.seq));
  EXPECT_NE(Engine::sequenceFingerprint(a.seq),
            Engine::sequenceFingerprint(b.seq));
}

TEST(EnginePoolTest, ReusesLiveEngineForMatchingWorkload) {
  const GeneratedWorkload w = makeWorkload(41);
  EnginePool pool(EnginePoolOptions{2, nullptr});

  EnginePool::Lease first = pool.acquire(w.net, w.faults, shardedOptions());
  ASSERT_NE(first.engine, nullptr);
  EXPECT_FALSE(first.reused);
  const FaultSimResult r1 = first.engine->run(w.seq);
  Engine* firstEngine = first.engine;
  pool.release(first);

  EnginePool::Lease second = pool.acquire(w.net, w.faults, shardedOptions());
  EXPECT_TRUE(second.reused);
  EXPECT_EQ(second.engine, firstEngine);  // same live engine, no rebuild
  expectBitIdentical(r1, second.engine->run(w.seq));
  pool.release(second);

  const EnginePool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.rebinds, 0u);
}

TEST(EnginePoolTest, RebindsLruSlotOnMissAndStaysCorrect) {
  const GeneratedWorkload a = makeWorkload(51);
  const GeneratedWorkload b = makeWorkload(52);
  const GeneratedWorkload c = makeWorkload(53);
  EnginePool pool(EnginePoolOptions{2, nullptr});

  Engine direct(c.net, c.faults, shardedOptions());
  const FaultSimResult expected = direct.run(c.seq);

  for (const GeneratedWorkload* w : {&a, &b}) {
    EnginePool::Lease lease = pool.acquire(w->net, w->faults, shardedOptions());
    lease.engine->run(w->seq);
    pool.release(lease);
  }
  // Third distinct workload with both slots occupied: a slot is recycled via
  // rebind, and the rebound engine's result matches a fresh engine's.
  EnginePool::Lease lease = pool.acquire(c.net, c.faults, shardedOptions());
  EXPECT_FALSE(lease.reused);
  expectBitIdentical(expected, lease.engine->run(c.seq));
  pool.release(lease);

  const EnginePool::Stats stats = pool.stats();
  EXPECT_EQ(stats.builds, 2u);
  EXPECT_EQ(stats.rebinds, 1u);
}

TEST(EnginePoolTest, SharedStoreSpansPooledEngines) {
  const GeneratedWorkload w = makeWorkload(61);
  auto store = std::make_shared<CheckpointStore>();
  EnginePool pool(EnginePoolOptions{2, store});

  // Two concurrent leases of the same workload are two engines — but one
  // good-machine recording, shared through the pool store.
  EnginePool::Lease one = pool.acquire(w.net, w.faults, shardedOptions());
  EnginePool::Lease two = pool.acquire(w.net, w.faults, shardedOptions());
  EXPECT_NE(one.engine, two.engine);
  const FaultSimResult r1 = one.engine->run(w.seq);
  const FaultSimResult r2 = two.engine->run(w.seq);
  expectBitIdentical(r1, r2);
  EXPECT_EQ(store->recordings(), 1u);
  EXPECT_GE(store->hits(), 1u);
  pool.release(one);
  pool.release(two);
}

}  // namespace
}  // namespace fmossim::serve
