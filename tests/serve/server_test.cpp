// Daemon end-to-end: verb dispatch through handleLine(), the full
// socket transport round trip, queue backpressure, cancellation and
// shutdown semantics.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "perf/bench_runner.hpp"
#include "serve/loadgen.hpp"
#include "serve/transport.hpp"
#include "seu/seu_campaign.hpp"

namespace fmossim::serve {
namespace {

JsonValue submitRequest(std::uint64_t circuitSeed) {
  WorkloadSpec spec;
  spec.circuitSeed = circuitSeed;
  spec.numNodes = 14;
  spec.numInputs = 4;
  spec.numFaults = 16;
  spec.numPatterns = 8;
  JsonValue req = JsonValue::makeObject();
  req.set("verb", JsonValue::makeString("submit"));
  req.set("workload", spec.toJson());
  return req;
}

std::uint64_t directChecksum(std::uint64_t circuitSeed) {
  WorkloadSpec spec;
  spec.circuitSeed = circuitSeed;
  spec.numNodes = 14;
  spec.numInputs = 4;
  spec.numFaults = 16;
  spec.numPatterns = 8;
  const BuiltWorkload w = buildWorkload(spec);
  Engine engine(w.net, w.faults, specEngineOptions(spec));
  return perf::resultChecksum(engine.run(w.seq));
}

TEST(ServerTest, SubmitResultStatsRoundTrip) {
  Server server{ServerOptions{}};
  server.start();

  const JsonValue submitted =
      JsonValue::parse(server.handleLine(submitRequest(5).dump()));
  ASSERT_TRUE(submitted.boolOr("ok", false));
  const std::uint64_t id = submitted.u64Or("id", 0);
  ASSERT_GT(id, 0u);

  JsonValue resultReq = JsonValue::makeObject();
  resultReq.set("verb", JsonValue::makeString("result"));
  resultReq.set("id", JsonValue::makeU64(id));
  const JsonValue resolved =
      JsonValue::parse(server.handleLine(resultReq.dump()));
  ASSERT_TRUE(resolved.boolOr("ok", false));
  EXPECT_EQ(resolved.stringOr("status", ""), "done");
  const JobResult jr = JobResult::fromJson(resolved.get("result"));
  EXPECT_EQ(jr.checksum, directChecksum(5));  // bit-identity over the wire
  EXPECT_EQ(jr.backend, "sharded");
  EXPECT_GT(jr.latencySeconds, 0.0);

  JsonValue statsReq = JsonValue::makeObject();
  statsReq.set("verb", JsonValue::makeString("stats"));
  const JsonValue stats =
      JsonValue::parse(server.handleLine(statsReq.dump()));
  ASSERT_TRUE(stats.boolOr("ok", false));
  EXPECT_EQ(stats.get("stats").u64Or("completed", 0), 1u);
  EXPECT_GE(stats.get("stats").get("store").u64Or("recordings", 0), 1u);
  server.stop();
}

TEST(ServerTest, RepeatSubmissionsReuseEngineAndStore) {
  Server server{ServerOptions{}};
  server.start();
  std::uint64_t lastChecksum = 0;
  bool sawReuse = false;
  for (int i = 0; i < 3; ++i) {
    const JsonValue submitted =
        JsonValue::parse(server.handleLine(submitRequest(6).dump()));
    ASSERT_TRUE(submitted.boolOr("ok", false));
    JsonValue resultReq = JsonValue::makeObject();
    resultReq.set("verb", JsonValue::makeString("result"));
    resultReq.set("id", JsonValue::makeU64(submitted.u64Or("id", 0)));
    const JsonValue resolved =
        JsonValue::parse(server.handleLine(resultReq.dump()));
    ASSERT_EQ(resolved.stringOr("status", ""), "done");
    const JobResult jr = JobResult::fromJson(resolved.get("result"));
    if (i > 0) EXPECT_EQ(jr.checksum, lastChecksum);
    lastChecksum = jr.checksum;
    sawReuse = sawReuse || jr.engineReused;
  }
  EXPECT_TRUE(sawReuse);  // same workload, same options: a live engine serves
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_GE(stats.pool.reuses, 1u);
  EXPECT_EQ(stats.storeRecordings, 1u);  // recorded once across all three
  server.stop();
}

WorkloadSpec seuSpec() {
  WorkloadSpec spec;
  spec.circuitSeed = 11;
  spec.numNodes = 18;
  spec.numPatterns = 24;
  spec.seuInjections = 12;
  spec.seuSeed = 99;
  spec.seuInstants = 3;
  spec.policy = DetectionPolicy::AnyDifference;
  return spec;
}

TEST(ServerTest, SeuJobGradesCampaignAgainstNaiveOracle) {
  Server server{ServerOptions{}};
  server.start();

  JsonValue req = JsonValue::makeObject();
  req.set("verb", JsonValue::makeString("submit"));
  req.set("workload", seuSpec().toJson());
  const JsonValue submitted = JsonValue::parse(server.handleLine(req.dump()));
  ASSERT_TRUE(submitted.boolOr("ok", false));

  JsonValue resultReq = JsonValue::makeObject();
  resultReq.set("verb", JsonValue::makeString("result"));
  resultReq.set("id", JsonValue::makeU64(submitted.u64Or("id", 0)));
  const JsonValue resolved =
      JsonValue::parse(server.handleLine(resultReq.dump()));
  ASSERT_EQ(resolved.stringOr("status", ""), "done");
  const JobResult jr = JobResult::fromJson(resolved.get("result"));
  EXPECT_EQ(jr.backend, "seu-replay");
  EXPECT_EQ(jr.numFaults, 12u);

  // Oracle: a naive from-scratch grading of the same campaign, no daemon,
  // no checkpoint store, must checksum bit-identically.
  const BuiltWorkload w = buildWorkload(seuSpec());
  seu::CampaignOptions naive;
  naive.policy = DetectionPolicy::AnyDifference;
  naive.naive = true;
  const seu::CampaignResult oracle =
      seu::runSeuCampaign(w.net, w.seq, w.seuCampaign, naive);
  EXPECT_EQ(jr.checksum, oracle.checksum());
  EXPECT_EQ(jr.numDetected, oracle.numDetected);

  // The campaign engaged the daemon's shared store.
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.storeRecordings, 1u);
  server.stop();
}

TEST(ServerTest, SeuJobsShareTheStoreRecording) {
  Server server{ServerOptions{}};
  server.start();
  std::uint64_t lastChecksum = 0;
  for (int i = 0; i < 3; ++i) {
    JsonValue req = JsonValue::makeObject();
    req.set("verb", JsonValue::makeString("submit"));
    req.set("workload", seuSpec().toJson());
    const JsonValue submitted =
        JsonValue::parse(server.handleLine(req.dump()));
    ASSERT_TRUE(submitted.boolOr("ok", false));
    JsonValue resultReq = JsonValue::makeObject();
    resultReq.set("verb", JsonValue::makeString("result"));
    resultReq.set("id", JsonValue::makeU64(submitted.u64Or("id", 0)));
    const JsonValue resolved =
        JsonValue::parse(server.handleLine(resultReq.dump()));
    ASSERT_EQ(resolved.stringOr("status", ""), "done");
    const JobResult jr = JobResult::fromJson(resolved.get("result"));
    if (i > 0) EXPECT_EQ(jr.checksum, lastChecksum);
    lastChecksum = jr.checksum;
  }
  // One good-machine recording serves all three campaigns.
  EXPECT_EQ(server.stats().storeRecordings, 1u);
  server.stop();
}

TEST(ServerTest, MalformedRequestsBecomeErrorResponses) {
  Server server{ServerOptions{}};
  server.start();
  for (const char* bad : {
           "this is not json",
           "{\"verb\": \"frobnicate\"}",
           "{}",
           "{\"verb\": \"status\", \"id\": 999}",
           "{\"verb\": \"submit\"}",
           "{\"verb\": \"submit\", \"workload\": {\"kind\": \"mystery\"}}",
       }) {
    const JsonValue resp = JsonValue::parse(server.handleLine(bad));
    EXPECT_FALSE(resp.boolOr("ok", true)) << bad;
    EXPECT_FALSE(resp.stringOr("error", "").empty()) << bad;
  }
  server.stop();
}

TEST(ServerTest, QueueBackpressureRejectsWhenFull) {
  // No workers claim jobs (workers start only with start()), so the queue
  // fills to its bound and the next submit is rejected.
  ServerOptions opts;
  opts.queueBound = 2;
  Server server(opts);
  EXPECT_TRUE(JsonValue::parse(server.handleLine(submitRequest(1).dump()))
                  .boolOr("ok", false));
  EXPECT_TRUE(JsonValue::parse(server.handleLine(submitRequest(2).dump()))
                  .boolOr("ok", false));
  const JsonValue rejected =
      JsonValue::parse(server.handleLine(submitRequest(3).dump()));
  EXPECT_FALSE(rejected.boolOr("ok", true));
  EXPECT_NE(rejected.stringOr("error", "").find("queue full"),
            std::string::npos);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.queueDepth, 2u);
}

TEST(ServerTest, CancelQueuedJobIsImmediate) {
  Server server{ServerOptions{}};  // never started: jobs stay queued
  const JsonValue submitted =
      JsonValue::parse(server.handleLine(submitRequest(1).dump()));
  const std::uint64_t id = submitted.u64Or("id", 0);
  JsonValue cancelReq = JsonValue::makeObject();
  cancelReq.set("verb", JsonValue::makeString("cancel"));
  cancelReq.set("id", JsonValue::makeU64(id));
  const JsonValue cancelled =
      JsonValue::parse(server.handleLine(cancelReq.dump()));
  ASSERT_TRUE(cancelled.boolOr("ok", false));
  EXPECT_EQ(cancelled.stringOr("status", ""), "cancelled");
  // result on a cancelled job returns immediately with the terminal status.
  JsonValue resultReq = JsonValue::makeObject();
  resultReq.set("verb", JsonValue::makeString("result"));
  resultReq.set("id", JsonValue::makeU64(id));
  const JsonValue resolved =
      JsonValue::parse(server.handleLine(resultReq.dump()));
  EXPECT_EQ(resolved.stringOr("status", ""), "cancelled");
}

TEST(ServerTest, ShutdownVerbStopsAcceptingWork) {
  Server server{ServerOptions{}};
  server.start();
  JsonValue down = JsonValue::makeObject();
  down.set("verb", JsonValue::makeString("shutdown"));
  const JsonValue resp = JsonValue::parse(server.handleLine(down.dump()));
  EXPECT_TRUE(resp.boolOr("ok", false));
  EXPECT_TRUE(server.shutdownRequested());
  const JsonValue refused =
      JsonValue::parse(server.handleLine(submitRequest(1).dump()));
  EXPECT_FALSE(refused.boolOr("ok", true));
  server.stop();
}

TEST(SocketTransportTest, FullRoundTripOverUnixSocket) {
  const std::string path =
      "/tmp/fmossim-servertest-" + std::to_string(getpid()) + ".sock";
  Server server{ServerOptions{}};
  server.start();
  SocketServer socket(server, path);

  {
    SocketClient client(path);
    const JsonValue submitted = client.request(submitRequest(7));
    ASSERT_TRUE(submitted.boolOr("ok", false));
    JsonValue resultReq = JsonValue::makeObject();
    resultReq.set("verb", JsonValue::makeString("result"));
    resultReq.set("id", JsonValue::makeU64(submitted.u64Or("id", 0)));
    const JsonValue resolved = client.request(resultReq);
    ASSERT_EQ(resolved.stringOr("status", ""), "done");
    EXPECT_EQ(JobResult::fromJson(resolved.get("result")).checksum,
              directChecksum(7));

    // A second connection shares the daemon state.
    SocketClient other(path);
    JsonValue statsReq = JsonValue::makeObject();
    statsReq.set("verb", JsonValue::makeString("stats"));
    EXPECT_EQ(other.request(statsReq).get("stats").u64Or("completed", 0), 1u);

    JsonValue down = JsonValue::makeObject();
    down.set("verb", JsonValue::makeString("shutdown"));
    EXPECT_TRUE(client.request(down).boolOr("ok", false));
  }
  socket.waitShutdown();  // shutdown verb ends the accept loop
  server.stop();
  socket.stop();
}

TEST(LoadGenTest, InprocRunVerifiesAndReportsReuse) {
  LoadGenOptions opts;
  opts.inproc = true;
  opts.circuits = 2;
  opts.sequencesPerCircuit = 2;
  opts.requests = 10;
  // A live engine re-running its bound workload serves from its in-memory
  // checkpoint without consulting the store, so store hits require an engine
  // to be rebound away and back. One engine, one worker, one client makes
  // that deterministic: every non-adjacent repeat in the zipf schedule is a
  // guaranteed store hit, independent of thread scheduling.
  opts.concurrency = 1;
  opts.inprocServer.poolEngines = 1;
  opts.inprocServer.workers = 1;
  opts.numNodes = 14;
  opts.numInputs = 4;
  opts.numFaults = 16;
  opts.numPatterns = 8;
  opts.expectStoreHits = 1;
  opts.quiet = true;
  const LoadGenReport report = runLoadGen(opts);
  EXPECT_EQ(report.requests, 10u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.checksumMismatches, 0u);
  EXPECT_EQ(report.distinctWorkloads, 4u);
  EXPECT_GE(report.storeHits, 1u);
  // Recordings must stay below requests: repeats reuse, never re-record.
  EXPECT_LT(report.storeRecordings, 10u);
  EXPECT_GE(report.p99Ms, report.p50Ms);
}

}  // namespace
}  // namespace fmossim::serve
