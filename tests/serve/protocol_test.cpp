// Wire protocol pieces: JSON value round trips, WorkloadSpec serialization,
// deterministic workload expansion, and the malformed-input error paths the
// daemon turns into protocol error responses.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include "patterns/sequence_io.hpp"
#include "serve/json.hpp"

namespace fmossim::serve {
namespace {

TEST(JsonValueTest, RoundTripsScalarsArraysAndObjects) {
  JsonValue obj = JsonValue::makeObject();
  obj.set("b", JsonValue::makeBool(true));
  obj.set("n", JsonValue::makeNumber(12.5));
  obj.set("s", JsonValue::makeString("he said \"hi\"\n"));
  obj.set("u", JsonValue::makeU64(1234567));
  obj.set("hex", JsonValue::makeHexU64(0xdeadbeefcafef00dULL));
  JsonValue arr = JsonValue::makeArray();
  arr.push(JsonValue::makeNumber(1));
  arr.push(JsonValue::makeNull());
  obj.set("a", std::move(arr));

  const JsonValue back = JsonValue::parse(obj.dump());
  EXPECT_TRUE(back.boolOr("b", false));
  EXPECT_DOUBLE_EQ(back.get("n").asNumber(), 12.5);
  EXPECT_EQ(back.get("s").asString(), "he said \"hi\"\n");
  EXPECT_EQ(back.get("u").asU64(), 1234567u);
  EXPECT_EQ(back.get("hex").asHexU64(), 0xdeadbeefcafef00dULL);
  EXPECT_EQ(back.get("a").items().size(), 2u);
  EXPECT_TRUE(back.get("a").items()[1].isNull());
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse("{"), Error);
  EXPECT_THROW(JsonValue::parse("{} trailing"), Error);
  EXPECT_THROW(JsonValue::parse("{'single':1}"), Error);
  EXPECT_THROW(JsonValue::parse(""), Error);
  // Type-mismatch accessors throw instead of coercing.
  const JsonValue v = JsonValue::parse("{\"x\": \"str\"}");
  EXPECT_THROW(v.get("x").asNumber(), Error);
  EXPECT_THROW(v.get("missing"), Error);
  // Non-exact u64 conversions are refused (precision loss).
  EXPECT_THROW(JsonValue::parse("{\"x\": 1.5}").get("x").asU64(), Error);
  EXPECT_THROW(JsonValue::parse("{\"x\": -2}").get("x").asU64(), Error);
  EXPECT_THROW(JsonValue::parse("{\"x\": 1e19}").get("x").asU64(), Error);
}

TEST(WorkloadSpecTest, GenSpecRoundTripsThroughJson) {
  WorkloadSpec spec;
  spec.circuitSeed = 0xfeedfacecafebeefULL;  // full 64-bit seed must survive
  spec.seqSeed = 0x123456789abcdef1ULL;
  spec.numNodes = 20;
  spec.numFaults = 28;
  spec.jobs = 3;
  spec.policy = DetectionPolicy::AnyDifference;
  spec.dropDetected = false;

  const WorkloadSpec back = WorkloadSpec::fromJson(spec.toJson());
  EXPECT_EQ(back.circuitSeed, spec.circuitSeed);
  EXPECT_EQ(back.seqSeed, spec.seqSeed);
  EXPECT_EQ(back.numNodes, spec.numNodes);
  EXPECT_EQ(back.numInputs, 0u);
  EXPECT_EQ(back.numFaults, spec.numFaults);
  EXPECT_EQ(back.jobs, spec.jobs);
  EXPECT_EQ(back.policy, spec.policy);
  EXPECT_FALSE(back.dropDetected);
  EXPECT_FALSE(back.isInline());
}

TEST(WorkloadSpecTest, InlineSpecRoundTripsAndBuilds) {
  WorkloadSpec spec;
  spec.netlist =
      "input in\n"
      "d out Vdd out\n"
      "n in out Gnd\n";
  spec.sequence =
      "outputs out\n"
      "pattern init\n"
      "  set Vdd=1 Gnd=0 in=0\n"
      "pattern p1\n"
      "  set in=1\n";
  spec.faults = "all-node-stuck\n";

  const WorkloadSpec back = WorkloadSpec::fromJson(spec.toJson());
  EXPECT_TRUE(back.isInline());
  EXPECT_EQ(back.netlist, spec.netlist);

  const BuiltWorkload w = buildWorkload(back);
  EXPECT_GT(w.net.numNodes(), 0u);
  EXPECT_FALSE(w.faults.empty());
  EXPECT_EQ(w.seq.size(), 2u);
}

TEST(WorkloadSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(WorkloadSpec::fromJson(
                   JsonValue::parse("{\"kind\": \"mystery\"}")),
               Error);
  EXPECT_THROW(WorkloadSpec::fromJson(
                   JsonValue::parse("{\"policy\": \"maybe\"}")),
               Error);
  EXPECT_THROW(WorkloadSpec::fromJson(JsonValue::parse("{\"jobs\": 0}")),
               Error);
  WorkloadSpec inlineSpec;
  inlineSpec.netlist = "this is not a netlist";
  inlineSpec.sequence = "nor a sequence";
  inlineSpec.faults = "all-node-stuck";
  EXPECT_THROW(buildWorkload(inlineSpec), Error);
}

TEST(WorkloadSpecTest, ExpansionIsDeterministicAcrossEndpoints) {
  WorkloadSpec spec;
  spec.circuitSeed = 7;
  spec.seqSeed = 0x9e3779b97f4a7c15ULL;
  spec.numNodes = 16;
  spec.numPatterns = 10;

  const BuiltWorkload a = buildWorkload(spec);
  const BuiltWorkload b = buildWorkload(WorkloadSpec::fromJson(spec.toJson()));
  EXPECT_EQ(networkFingerprint(a.net), networkFingerprint(b.net));
  EXPECT_EQ(faultListFingerprint(a.faults), faultListFingerprint(b.faults));
  EXPECT_EQ(Engine::sequenceFingerprint(a.seq),
            Engine::sequenceFingerprint(b.seq));
  // writeSequence is content-complete, so equal text means equal sequences.
  EXPECT_EQ(writeSequence(a.net, a.seq), writeSequence(b.net, b.seq));
}

TEST(WorkloadSpecTest, SeqSeedDerivesDistinctSequenceOverSameCircuit) {
  WorkloadSpec base;
  base.circuitSeed = 9;
  base.numNodes = 16;
  WorkloadSpec derived = base;
  derived.seqSeed = 12345;

  const BuiltWorkload a = buildWorkload(base);
  const BuiltWorkload b = buildWorkload(derived);
  EXPECT_EQ(networkFingerprint(a.net), networkFingerprint(b.net));
  EXPECT_NE(Engine::sequenceFingerprint(a.seq),
            Engine::sequenceFingerprint(b.seq));
  EXPECT_EQ(a.seq.size(), b.seq.size());
}

TEST(WorkloadSpecTest, SeuSpecRoundTripsThroughJson) {
  WorkloadSpec spec;
  spec.circuitSeed = 11;
  spec.numNodes = 18;
  spec.numPatterns = 24;
  spec.seuInjections = 12;
  spec.seuSeed = 0xfeedfacecafebeefULL;  // full 64-bit seed must survive
  spec.seuInstants = 3;
  spec.policy = DetectionPolicy::AnyDifference;
  ASSERT_TRUE(spec.isSeu());

  const JsonValue wire = spec.toJson();
  EXPECT_EQ(wire.stringOr("kind", ""), "seu");
  const WorkloadSpec back = WorkloadSpec::fromJson(wire);
  EXPECT_TRUE(back.isSeu());
  EXPECT_EQ(back.circuitSeed, spec.circuitSeed);
  EXPECT_EQ(back.seuInjections, spec.seuInjections);
  EXPECT_EQ(back.seuSeed, spec.seuSeed);
  EXPECT_EQ(back.seuInstants, spec.seuInstants);
  EXPECT_EQ(back.policy, spec.policy);
}

TEST(WorkloadSpecTest, SeuSpecBuildsDeterministicCampaign) {
  WorkloadSpec spec;
  spec.circuitSeed = 11;
  spec.numNodes = 18;
  spec.numPatterns = 24;
  spec.seuInjections = 12;
  spec.seuSeed = 99;
  spec.seuInstants = 3;

  const BuiltWorkload a = buildWorkload(spec);
  EXPECT_TRUE(a.faults.empty());  // campaign replaces the permanent universe
  ASSERT_EQ(a.seuCampaign.size(), 12u);
  const BuiltWorkload b = buildWorkload(WorkloadSpec::fromJson(spec.toJson()));
  ASSERT_EQ(b.seuCampaign.size(), a.seuCampaign.size());
  for (std::size_t i = 0; i < a.seuCampaign.size(); ++i) {
    EXPECT_EQ(a.seuCampaign[i].node, b.seuCampaign[i].node);
    EXPECT_EQ(a.seuCampaign[i].atPattern, b.seuCampaign[i].atPattern);
    EXPECT_EQ(a.seuCampaign[i].pulsePatterns, b.seuCampaign[i].pulsePatterns);
  }
}

TEST(WorkloadSpecTest, RejectsMalformedSeuSpecs) {
  // seu fields without the seu kind.
  EXPECT_THROW(WorkloadSpec::fromJson(JsonValue::parse(
                   "{\"kind\": \"gen\", \"seuInjections\": 4}")),
               Error);
  // seu kind without an injection count.
  EXPECT_THROW(
      WorkloadSpec::fromJson(JsonValue::parse("{\"kind\": \"seu\"}")), Error);
  // stream is incompatible with campaign grading.
  EXPECT_THROW(WorkloadSpec::fromJson(JsonValue::parse(
                   "{\"kind\": \"seu\", \"seuInjections\": 4, "
                   "\"stream\": true}")),
               Error);
}

TEST(JobResultTest, RoundTripsThroughJson) {
  JobResult r;
  r.checksum = 0xabcdef0123456789ULL;
  r.numFaults = 32;
  r.numDetected = 17;
  r.nodeEvals = 987654321;
  r.wallSeconds = 0.125;
  r.cpuSeconds = 0.25;
  r.queuedSeconds = 0.01;
  r.latencySeconds = 0.135;
  r.engineReused = true;
  r.backend = "sharded";

  const JobResult back = JobResult::fromJson(
      JsonValue::parse(r.toJson().dump()));
  EXPECT_EQ(back.checksum, r.checksum);
  EXPECT_EQ(back.numFaults, r.numFaults);
  EXPECT_EQ(back.numDetected, r.numDetected);
  EXPECT_EQ(back.nodeEvals, r.nodeEvals);
  EXPECT_DOUBLE_EQ(back.wallSeconds, r.wallSeconds);
  EXPECT_DOUBLE_EQ(back.latencySeconds, r.latencySeconds);
  EXPECT_TRUE(back.engineReused);
  EXPECT_EQ(back.backend, "sharded");
  EXPECT_TRUE(back.error.empty());
}

}  // namespace
}  // namespace fmossim::serve
