// Cell library: truth tables for every generator, transistor-count
// invariants, and X behaviour of composed gates.
#include <gtest/gtest.h>

#include "circuits/cells.hpp"
#include "switch/builder.hpp"
#include "switch/logic_sim.hpp"
#include "test_util.hpp"

namespace fmossim {
namespace {

using testing::driveAll;
using testing::driveRails;

char evalUnary(bool cmos, const char* which, char in) {
  NetworkBuilder b;
  const NodeId inN = b.addInput("in");
  if (cmos) {
    CmosCells cells(b);
    if (std::string(which) == "inv") cells.inverter(inN, "out");
    else cells.buffer(inN, "out");
  } else {
    NmosCells cells(b);
    if (std::string(which) == "inv") cells.inverter(inN, "out");
    else cells.buffer(inN, "out");
  }
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"in", in}});
  return testing::read(sim, "out");
}

TEST(CellsTest, Buffers) {
  for (const bool cmos : {false, true}) {
    EXPECT_EQ(evalUnary(cmos, "buf", '0'), '0');
    EXPECT_EQ(evalUnary(cmos, "buf", '1'), '1');
    EXPECT_EQ(evalUnary(cmos, "buf", 'X'), 'X');
    EXPECT_EQ(evalUnary(cmos, "inv", '0'), '1');
    EXPECT_EQ(evalUnary(cmos, "inv", '1'), '0');
  }
}

char evalBinary(const char* which, char a, char b) {
  NetworkBuilder bld;
  CmosCells cells(bld);
  const NodeId an = bld.addInput("a");
  const NodeId bn = bld.addInput("b");
  const std::string w(which);
  if (w == "and") cells.andGate({an, bn}, "out");
  else if (w == "or") cells.orGate({an, bn}, "out");
  else if (w == "xor") cells.xorGate(an, bn, "out");
  else if (w == "xnor") cells.xnorGate(an, bn, "out");
  const Network net = bld.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"a", a}, {"b", b}});
  return testing::read(sim, "out");
}

TEST(CellsTest, AndOrTruthTables) {
  EXPECT_EQ(evalBinary("and", '0', '0'), '0');
  EXPECT_EQ(evalBinary("and", '0', '1'), '0');
  EXPECT_EQ(evalBinary("and", '1', '0'), '0');
  EXPECT_EQ(evalBinary("and", '1', '1'), '1');
  EXPECT_EQ(evalBinary("and", 'X', '0'), '0');  // controlling value
  EXPECT_EQ(evalBinary("and", 'X', '1'), 'X');
  EXPECT_EQ(evalBinary("or", '0', '0'), '0');
  EXPECT_EQ(evalBinary("or", '0', '1'), '1');
  EXPECT_EQ(evalBinary("or", '1', '0'), '1');
  EXPECT_EQ(evalBinary("or", '1', '1'), '1');
  EXPECT_EQ(evalBinary("or", 'X', '1'), '1');  // controlling value
  EXPECT_EQ(evalBinary("or", 'X', '0'), 'X');
}

TEST(CellsTest, XorXnorTruthTables) {
  EXPECT_EQ(evalBinary("xor", '0', '0'), '0');
  EXPECT_EQ(evalBinary("xor", '0', '1'), '1');
  EXPECT_EQ(evalBinary("xor", '1', '0'), '1');
  EXPECT_EQ(evalBinary("xor", '1', '1'), '0');
  EXPECT_EQ(evalBinary("xor", 'X', '1'), 'X');
  EXPECT_EQ(evalBinary("xnor", '0', '0'), '1');
  EXPECT_EQ(evalBinary("xnor", '0', '1'), '0');
  EXPECT_EQ(evalBinary("xnor", '1', '0'), '0');
  EXPECT_EQ(evalBinary("xnor", '1', '1'), '1');
}

TEST(CellsTest, WideGates) {
  for (const unsigned width : {3u, 4u, 5u}) {
    NetworkBuilder bld;
    CmosCells cells(bld);
    std::vector<NodeId> ins;
    for (unsigned i = 0; i < width; ++i) {
      ins.push_back(bld.addInput("i" + std::to_string(i)));
    }
    cells.nand(ins, "nandOut");
    cells.nor(ins, "norOut");
    const Network net = bld.build();
    LogicSimulator sim(net);
    driveRails(sim);
    // All ones: NAND=0, NOR=0.
    std::vector<std::pair<std::string, char>> assign;
    for (unsigned i = 0; i < width; ++i) assign.push_back({"i" + std::to_string(i), '1'});
    driveAll(sim, assign);
    EXPECT_NODE(sim, "nandOut", '0');
    EXPECT_NODE(sim, "norOut", '0');
    // One zero: NAND=1; all zero: NOR=1.
    driveAll(sim, {{"i0", '0'}});
    EXPECT_NODE(sim, "nandOut", '1');
    for (unsigned i = 1; i < width; ++i) {
      driveAll(sim, {{"i" + std::to_string(i), '0'}});
    }
    EXPECT_NODE(sim, "norOut", '1');
  }
}

TEST(CellsTest, NmosGateTransistorCounts) {
  // NOR(k) = k pull-downs + 1 load; NAND(k) = k series + 1 load;
  // INV = 2; BUF = 4.
  for (const unsigned k : {1u, 2u, 3u, 4u}) {
    NetworkBuilder bld;
    NmosCells cells(bld);
    std::vector<NodeId> ins;
    for (unsigned i = 0; i < k; ++i) ins.push_back(bld.addInput("i" + std::to_string(i)));
    const auto before = bld.numTransistors();
    cells.nor(ins, "nor");
    EXPECT_EQ(bld.numTransistors() - before, k + 1);
    const auto afterNor = bld.numTransistors();
    cells.nand(ins, "nand");
    EXPECT_EQ(bld.numTransistors() - afterNor, k + 1);
  }
}

TEST(CellsTest, CmosGateTransistorCounts) {
  for (const unsigned k : {1u, 2u, 3u}) {
    NetworkBuilder bld;
    CmosCells cells(bld);
    std::vector<NodeId> ins;
    for (unsigned i = 0; i < k; ++i) ins.push_back(bld.addInput("i" + std::to_string(i)));
    const auto before = bld.numTransistors();
    cells.nand(ins, "nand");
    EXPECT_EQ(bld.numTransistors() - before, 2 * k);
    const auto afterNand = bld.numTransistors();
    cells.nor(ins, "nor");
    EXPECT_EQ(bld.numTransistors() - afterNand, 2 * k);
  }
}

TEST(CellsTest, SuppliesAreSharedAcrossCellInstances) {
  NetworkBuilder b;
  NmosCells n1(b);
  CmosCells c1(b);
  EXPECT_TRUE(b.hasNode("Vdd"));
  EXPECT_TRUE(b.hasNode("Gnd"));
  const NodeId in = b.addInput("in");
  n1.inverter(in, "o1");
  c1.inverter(in, "o2");
  const Network net = b.build();
  // Exactly one Vdd and one Gnd.
  EXPECT_EQ(net.numInputs(), 3u);
}

TEST(CellsTest, NmosLatchedInverterPair) {
  // dynamicLatch + inverter = the RAM column latch structure of paper §5.
  NetworkBuilder b;
  NmosCells cells(b);
  const NodeId d = b.addInput("d");
  const NodeId clk = b.addInput("clk");
  const NodeId l = cells.dynamicLatch(d, clk, "l");
  cells.inverter(l, "lb");
  const Network net = b.build();
  LogicSimulator sim(net);
  driveRails(sim);
  driveAll(sim, {{"clk", '1'}, {"d", '0'}});
  driveAll(sim, {{"clk", '0'}, {"d", '1'}});
  EXPECT_NODE(sim, "l", '0');
  EXPECT_NODE(sim, "lb", '1');
}

}  // namespace
}  // namespace fmossim
