// Demo circuits: shift register shifting, precharged bus behaviour and its
// declared short/open fault devices.
#include "circuits/demo_circuits.hpp"

#include <gtest/gtest.h>

#include "switch/logic_sim.hpp"

namespace fmossim {
namespace {

void clockCycle(LogicSimulator& sim, const ShiftRegister& sr, State bit) {
  const auto set = [&](NodeId n, State s) {
    sim.setInput(n, s);
    sim.settle();
  };
  set(sr.din, bit);
  set(sr.phi1, State::S1);
  set(sr.phi1, State::S0);
  set(sr.phi2, State::S1);
  set(sr.phi2, State::S0);
}

TEST(ShiftRegisterTest, ShiftsAPatternThrough) {
  const ShiftRegister sr = buildShiftRegister(4);
  LogicSimulator sim(sr.net);
  sim.setInput(sr.vdd, State::S1);
  sim.setInput(sr.gnd, State::S0);
  sim.setInput(sr.phi1, State::S0);
  sim.setInput(sr.phi2, State::S0);
  sim.settle();

  const State bits[] = {State::S1, State::S0, State::S1, State::S1,
                        State::S0, State::S0, State::S1, State::S0};
  // After k cycles, q[j] holds bits[k-1-j].
  for (unsigned k = 0; k < 8; ++k) {
    clockCycle(sim, sr, bits[k]);
    for (unsigned j = 0; j < sr.stages && j <= k; ++j) {
      EXPECT_EQ(sim.state(sr.q[j]), bits[k - j]) << "cycle " << k << " q" << j;
    }
  }
}

TEST(ShiftRegisterTest, HoldsWithClocksLow) {
  const ShiftRegister sr = buildShiftRegister(2);
  LogicSimulator sim(sr.net);
  sim.setInput(sr.vdd, State::S1);
  sim.setInput(sr.gnd, State::S0);
  sim.setInput(sr.phi1, State::S0);
  sim.setInput(sr.phi2, State::S0);
  sim.settle();
  clockCycle(sim, sr, State::S1);
  const State q0 = sim.state(sr.q[0]);
  // Wiggle the input without clocking: nothing may move.
  for (const State s : {State::S0, State::S1, State::S0}) {
    sim.setInput(sr.din, s);
    sim.settle();
    EXPECT_EQ(sim.state(sr.q[0]), q0);
  }
}

TEST(ShiftRegisterTest, RejectsZeroStages) {
  EXPECT_THROW(buildShiftRegister(0), Error);
}

struct BusFixture {
  PrechargedBus bus = buildPrechargedBus(4);
  LogicSimulator sim{bus.net};

  BusFixture() {
    sim.setInput(bus.vdd, State::S1);
    sim.setInput(bus.gnd, State::S0);
    sim.setInput(bus.phiP, State::S0);
    for (unsigned i = 0; i < bus.sources; ++i) {
      sim.setInput(bus.enable[i], State::S0);
      sim.setInput(bus.data[i], State::S0);
    }
    sim.settle();
  }

  void precharge() {
    sim.setInput(bus.phiP, State::S1);
    sim.settle();
    sim.setInput(bus.phiP, State::S0);
    sim.settle();
  }
  void drive(unsigned i, State en, State d) {
    sim.setInput(bus.enable[i], en);
    sim.setInput(bus.data[i], d);
    sim.settle();
  }
};

TEST(PrechargedBusTest2, PrechargeAndSelectiveDischarge) {
  BusFixture f;
  f.precharge();
  EXPECT_EQ(f.sim.state(f.bus.busA), State::S1);
  EXPECT_EQ(f.sim.state(f.bus.busB), State::S1);  // open device conducts (good)
  EXPECT_EQ(f.sim.state(f.bus.sense), State::S0);
  // Source 3 (on the B half) discharges the whole bus.
  f.drive(3, State::S1, State::S1);
  EXPECT_EQ(f.sim.state(f.bus.busA), State::S0);
  EXPECT_EQ(f.sim.state(f.bus.busB), State::S0);
  EXPECT_EQ(f.sim.state(f.bus.sense), State::S1);
}

TEST(PrechargedBusTest2, OpenFaultSplitsTheBus) {
  BusFixture f;
  f.sim.forceTransistor(f.bus.openDevice, State::S0);  // break the wire
  f.sim.settle();
  f.precharge();
  // Only busA is precharged now; busB floats at its old value (X initially).
  EXPECT_EQ(f.sim.state(f.bus.busA), State::S1);
  // Discharge through a source on the A half: busB must not follow.
  f.drive(0, State::S1, State::S1);
  EXPECT_EQ(f.sim.state(f.bus.busA), State::S0);
  EXPECT_NE(f.sim.state(f.bus.busB), State::S0);
}

TEST(PrechargedBusTest2, ShortFaultFightsTheEnableLine) {
  BusFixture f;
  f.sim.forceTransistor(f.bus.shortDevice, State::S1);  // bus shorted to en0
  f.sim.settle();
  f.precharge();
  // en0 is driven 0 (an input node, omega strength): the short drags the
  // whole bus low despite the precharge having left it high.
  EXPECT_EQ(f.sim.state(f.bus.busA), State::S0);
}

}  // namespace
}  // namespace fmossim
