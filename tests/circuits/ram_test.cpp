// Functional tests of the DRAM generator: write/read correctness on every
// cell, retention, read-modify-write refresh, structure statistics close to
// the paper's circuits.
#include "circuits/ram.hpp"

#include <gtest/gtest.h>

#include "patterns/marching.hpp"
#include "patterns/ram_ops.hpp"
#include "switch/logic_sim.hpp"

namespace fmossim {
namespace {

// Runs one RAM op on a LogicSimulator and returns dout after the cycle.
State runOp(LogicSimulator& sim, const RamCircuit& ram, const RamOp& op) {
  const Pattern p = ramOpPattern(ram, op);
  for (const InputSetting& s : p.settings) {
    sim.applyAssignments(s.span());
  }
  return sim.state(ram.dout);
}

TEST(RamStructureTest, CountsAreCloseToThePaper) {
  // Paper: RAM64 has 378 transistors / 229 nodes; RAM256 has 1148 / 695.
  // Our generator is the same style of circuit; counts must land in the
  // same range (within ~40%).
  const RamCircuit r64 = buildRam(ram64Config());
  EXPECT_GT(r64.net.numTransistors(), 300u);
  EXPECT_LT(r64.net.numTransistors(), 560u);
  EXPECT_GT(r64.net.numNodes(), 180u);
  EXPECT_LT(r64.net.numNodes(), 320u);

  const RamCircuit r256 = buildRam(ram256Config());
  EXPECT_GT(r256.net.numTransistors(), 950u);
  EXPECT_LT(r256.net.numTransistors(), 1650u);
  EXPECT_GT(r256.net.numNodes(), 550u);
  EXPECT_LT(r256.net.numNodes(), 950u);

  // Scaling factor between the two, as in the paper's setup.
  EXPECT_NEAR(double(r256.net.numTransistors()) / r64.net.numTransistors(),
              3.0, 0.6);
}

TEST(RamStructureTest, RejectsNonPowerOfTwoGeometry) {
  EXPECT_THROW(buildRam(RamConfig{6, 8}), Error);
  EXPECT_THROW(buildRam(RamConfig{8, 5}), Error);
  EXPECT_THROW(buildRam(RamConfig{1, 8}), Error);
}

TEST(RamStructureTest, BitLineShortDevicesPresent) {
  const RamCircuit ram = buildRam(ram64Config());
  // C-1 adjacent pairs for read and for write bit lines.
  EXPECT_EQ(ram.bitLineShorts.size(), 2u * (ram.config.cols - 1));
  for (const TransId t : ram.bitLineShorts) {
    EXPECT_TRUE(ram.net.transistor(t).isFaultDevice());
  }
  RamConfig noShorts = ram64Config();
  noShorts.withBitLineShorts = false;
  const RamCircuit ram2 = buildRam(noShorts);
  EXPECT_TRUE(ram2.bitLineShorts.empty());
  EXPECT_EQ(ram2.net.numFaultDevices(), 0u);
}

TEST(RamFunctionalTest, WriteThenReadBack) {
  const RamCircuit ram = buildRam(ram64Config());
  LogicSimulator sim(ram.net);
  runOp(sim, ram, RamOp::writeOp(13, State::S1));
  EXPECT_EQ(runOp(sim, ram, RamOp::readOp(13)), State::S1);
  runOp(sim, ram, RamOp::writeOp(13, State::S0));
  EXPECT_EQ(runOp(sim, ram, RamOp::readOp(13)), State::S0);
}

TEST(RamFunctionalTest, EveryCellStoresBothValues) {
  const RamCircuit ram = buildRam(ram64Config());
  LogicSimulator sim(ram.net);
  // Write a checkerboard, then read it all back, then the inverse.
  for (unsigned pass = 0; pass < 2; ++pass) {
    for (unsigned a = 0; a < ram.config.words(); ++a) {
      const State v = ((a + pass) % 2) ? State::S1 : State::S0;
      runOp(sim, ram, RamOp::writeOp(a, v));
    }
    for (unsigned a = 0; a < ram.config.words(); ++a) {
      const State v = ((a + pass) % 2) ? State::S1 : State::S0;
      EXPECT_EQ(runOp(sim, ram, RamOp::readOp(a)), v)
          << "pass " << pass << " address " << a;
    }
  }
}

TEST(RamFunctionalTest, CellRetainsDataAcrossOtherRowAccesses) {
  const RamCircuit ram = buildRam(ram64Config());
  LogicSimulator sim(ram.net);
  runOp(sim, ram, RamOp::writeOp(0, State::S1));
  // Hammer a different row repeatedly.
  for (int i = 0; i < 8; ++i) {
    runOp(sim, ram, RamOp::writeOp(ram.config.cols * 3 + 5, State::S0));
    runOp(sim, ram, RamOp::readOp(ram.config.cols * 3 + 5));
  }
  EXPECT_EQ(runOp(sim, ram, RamOp::readOp(0)), State::S1);
}

TEST(RamFunctionalTest, WritePreservesRestOfRow) {
  // The read-modify-write cycle must refresh, not clobber, the other
  // columns of the addressed row.
  const RamCircuit ram = buildRam(ram64Config());
  LogicSimulator sim(ram.net);
  const unsigned row = 2;
  const unsigned base = row * ram.config.cols;
  for (unsigned c = 0; c < ram.config.cols; ++c) {
    runOp(sim, ram, RamOp::writeOp(base + c, c % 2 ? State::S1 : State::S0));
  }
  // Overwrite one column; the others must survive.
  runOp(sim, ram, RamOp::writeOp(base + 3, State::S0));
  for (unsigned c = 0; c < ram.config.cols; ++c) {
    const State expect = (c == 3) ? State::S0 : (c % 2 ? State::S1 : State::S0);
    EXPECT_EQ(runOp(sim, ram, RamOp::readOp(base + c)), expect) << "col " << c;
  }
}

TEST(RamFunctionalTest, ReadsAreNonDestructive) {
  const RamCircuit ram = buildRam(ram64Config());
  LogicSimulator sim(ram.net);
  runOp(sim, ram, RamOp::writeOp(42, State::S1));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(runOp(sim, ram, RamOp::readOp(42)), State::S1) << "read " << i;
  }
}

TEST(RamFunctionalTest, UninitializedCellsReadX) {
  const RamCircuit ram = buildRam(ram64Config());
  LogicSimulator sim(ram.net);
  EXPECT_EQ(runOp(sim, ram, RamOp::readOp(17)), State::SX);
}

TEST(RamFunctionalTest, Ram256SpotChecks) {
  const RamCircuit ram = buildRam(ram256Config());
  LogicSimulator sim(ram.net);
  const unsigned probes[] = {0, 1, 15, 16, 17, 128, 200, 255};
  for (const unsigned a : probes) {
    runOp(sim, ram, RamOp::writeOp(a, State::S1));
  }
  for (const unsigned a : probes) {
    EXPECT_EQ(runOp(sim, ram, RamOp::readOp(a)), State::S1) << "addr " << a;
  }
  for (const unsigned a : probes) {
    runOp(sim, ram, RamOp::writeOp(a, State::S0));
    EXPECT_EQ(runOp(sim, ram, RamOp::readOp(a)), State::S0) << "addr " << a;
  }
}

TEST(RamSequenceTest, PatternCountsMatchThePaper) {
  const RamCircuit r64 = buildRam(ram64Config());
  EXPECT_EQ(ramControlTests(r64).size(), 7u);
  EXPECT_EQ(ramRowMarch(r64).size(), 40u);
  EXPECT_EQ(ramColMarch(r64).size(), 40u);
  EXPECT_EQ(ramArrayMarch(r64).size(), 320u);
  EXPECT_EQ(ramTestSequence1(r64).size(), 407u);  // paper: 407
  EXPECT_EQ(ramTestSequence2(r64).size(), 327u);  // paper: 327

  const RamCircuit r256 = buildRam(ram256Config());
  EXPECT_EQ(ramTestSequence1(r256).size(), 1447u);  // paper: 1447
}

TEST(RamSequenceTest, EveryPatternHasSixSettings) {
  const RamCircuit ram = buildRam(ram64Config());
  const TestSequence seq = ramTestSequence1(ram);
  for (std::uint32_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].settings.size(), 6u) << "pattern " << i;
  }
  EXPECT_EQ(seq.outputs().size(), 1u);  // the single data output pin
  EXPECT_EQ(seq.outputs()[0], ram.dout);
}

TEST(RamSequenceTest, GoodCircuitPassesItsOwnMarchTest) {
  // The march reads must observe the expected values on dout: r0 phases see
  // 0, r1 phases see 1 (once cells are initialized by the first write pass).
  const RamCircuit ram = buildRam(RamConfig{4, 4});
  LogicSimulator sim(ram.net);
  const unsigned words = ram.config.words();
  std::vector<unsigned> addrs(words);
  for (unsigned i = 0; i < words; ++i) addrs[i] = i;

  // up(w0)
  for (unsigned a = 0; a < words; ++a) {
    runOp(sim, ram, RamOp::writeOp(a, State::S0));
  }
  // up(r0, w1)
  for (unsigned a = 0; a < words; ++a) {
    EXPECT_EQ(runOp(sim, ram, RamOp::readOp(a)), State::S0) << "r0 @" << a;
    runOp(sim, ram, RamOp::writeOp(a, State::S1));
  }
  // up(r1, w0)
  for (unsigned a = 0; a < words; ++a) {
    EXPECT_EQ(runOp(sim, ram, RamOp::readOp(a)), State::S1) << "r1 @" << a;
    runOp(sim, ram, RamOp::writeOp(a, State::S0));
  }
}

}  // namespace
}  // namespace fmossim
