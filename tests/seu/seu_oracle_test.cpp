// SEU campaign oracle: checkpoint-replay transient grading must be
// bit-identical to naive from-scratch injection of each transient — per
// injection (outcome AND detecting pattern), not just in aggregate — and
// deterministic across worker counts, lane widths and checkpoint cache
// state. The naive engine self-simulates the whole sequence per injection;
// the replay engine materializes the group's instant from the checkpoint
// and simulates only the tail, so every line of the resume construction is
// on trial here.
#include <gtest/gtest.h>

#include "circuits/ram.hpp"
#include "gen/random_circuit.hpp"
#include "gen/transient_gen.hpp"
#include "patterns/marching.hpp"
#include "seu/seu_campaign.hpp"

namespace fmossim {
namespace {

using seu::CampaignOptions;
using seu::CampaignResult;
using seu::Outcome;
using seu::runSeuCampaign;

struct RamWorkload {
  RamCircuit ram;
  TestSequence seq;
};

RamWorkload ramWorkload() {
  RamWorkload w{buildRam(RamConfig{4, 4}), {}};
  w.seq = ramControlTests(w.ram);
  w.seq.append(ramRowMarch(w.ram));
  return w;
}

TransientList ramCampaign(const RamWorkload& w, std::uint64_t seed,
                          std::uint32_t maxInstants) {
  SeuGenOptions g;
  g.seed = seed;
  g.numInjections = 24;
  g.numPatterns = w.seq.size();
  g.maxInstants = maxInstants;
  g.pulseProbability = 0.35;
  g.maxPulse = 3;
  return generateSeuCampaign(w.ram.net, g);
}

void expectIdentical(const CampaignResult& got, const CampaignResult& ref) {
  ASSERT_EQ(got.injections.size(), ref.injections.size());
  for (std::size_t i = 0; i < ref.injections.size(); ++i) {
    EXPECT_EQ(got.injections[i].outcome, ref.injections[i].outcome)
        << "injection " << i << " (" << ref.injections[i].fault.name << ")";
    EXPECT_EQ(got.injections[i].detectedAtPattern,
              ref.injections[i].detectedAtPattern)
        << "injection " << i << " (" << ref.injections[i].fault.name << ")";
  }
  EXPECT_EQ(got.numDetected, ref.numDetected);
  EXPECT_EQ(got.numSilent, ref.numSilent);
  EXPECT_EQ(got.numLatent, ref.numLatent);
  EXPECT_EQ(got.checksum(), ref.checksum());
}

// The headline oracle: clustered campaign (shared tails, pulses included)
// on the RAM — replay vs. naive, per-injection bit identity.
TEST(SeuOracleTest, ReplayMatchesNaiveOnRam) {
  const RamWorkload w = ramWorkload();
  const TransientList campaign = ramCampaign(w, 11, 4);

  CampaignOptions naive;
  naive.naive = true;
  const CampaignResult ref = runSeuCampaign(w.ram.net, w.seq, campaign, naive);

  const CampaignResult got = runSeuCampaign(w.ram.net, w.seq, campaign, {});
  expectIdentical(got, ref);
  EXPECT_EQ(got.injections.size(), ref.numDetected + ref.numSilent +
                                       ref.numLatent);
  EXPECT_LE(got.numGroups, 4u);
  EXPECT_TRUE(got.recordedCheckpoint);
  EXPECT_FALSE(ref.recordedCheckpoint);
}

// Unclustered campaign (every injection its own instant -> one machine per
// tail engine) must also match, including under AnyDifference.
TEST(SeuOracleTest, ReplayMatchesNaiveUnclustered) {
  const RamWorkload w = ramWorkload();
  const TransientList campaign = ramCampaign(w, 23, 0);

  CampaignOptions naive;
  naive.naive = true;
  naive.policy = DetectionPolicy::AnyDifference;
  CampaignOptions replay;
  replay.policy = DetectionPolicy::AnyDifference;

  const CampaignResult ref = runSeuCampaign(w.ram.net, w.seq, campaign, naive);
  const CampaignResult got =
      runSeuCampaign(w.ram.net, w.seq, campaign, replay);
  expectIdentical(got, ref);
}

// Same oracle over generated circuits: pass-transistor paths, charge nodes,
// ratioed fights and X-rich state, where a broken resume construction would
// actually diverge.
TEST(SeuOracleTest, ReplayMatchesNaiveOnGeneratedCircuits) {
  for (const std::uint64_t seed : {3u, 17u, 42u}) {
    GenOptions gen;
    gen.seed = seed;
    gen.numNodes = 20;
    gen.numInputs = 5;
    gen.numFaults = 0;
    gen.numPatterns = 30;
    const GeneratedWorkload w = generateWorkload(gen);

    SeuGenOptions g;
    g.seed = seed + 100;
    g.numInjections = 16;
    g.numPatterns = w.seq.size();
    g.maxInstants = 5;
    const TransientList campaign = generateSeuCampaign(w.net, g);

    CampaignOptions naive;
    naive.naive = true;
    const CampaignResult ref = runSeuCampaign(w.net, w.seq, campaign, naive);
    const CampaignResult got = runSeuCampaign(w.net, w.seq, campaign, {});
    expectIdentical(got, ref);
  }
}

// Determinism: jobs x laneWidth sweeps must all checksum identically to the
// single-threaded unit-lane run (and to naive).
TEST(SeuOracleTest, DeterministicAcrossJobsAndLaneWidths) {
  const RamWorkload w = ramWorkload();
  const TransientList campaign = ramCampaign(w, 5, 3);

  CampaignOptions naive;
  naive.naive = true;
  const std::uint64_t want =
      runSeuCampaign(w.ram.net, w.seq, campaign, naive).checksum();

  for (const unsigned jobs : {1u, 2u, 4u}) {
    for (const std::uint32_t lanes : {1u, 8u, 32u}) {
      CampaignOptions o;
      o.jobs = jobs;
      o.laneWidth = lanes;
      const CampaignResult got = runSeuCampaign(w.ram.net, w.seq, campaign, o);
      EXPECT_EQ(got.checksum(), want)
          << "jobs " << jobs << " lanes " << lanes;
    }
  }
  // Naive mode parallelizes per injection; it must be jobs-invariant too.
  CampaignOptions n4 = naive;
  n4.jobs = 4;
  EXPECT_EQ(runSeuCampaign(w.ram.net, w.seq, campaign, n4).checksum(), want);
}

// A shared store records once; the second campaign hits the cache and still
// produces identical results.
TEST(SeuOracleTest, SharedStoreRecordsOnce) {
  const RamWorkload w = ramWorkload();
  const TransientList campaign = ramCampaign(w, 9, 4);

  CampaignOptions o;
  o.store = std::make_shared<CheckpointStore>();
  const CampaignResult first = runSeuCampaign(w.ram.net, w.seq, campaign, o);
  const CampaignResult second = runSeuCampaign(w.ram.net, w.seq, campaign, o);
  EXPECT_TRUE(first.recordedCheckpoint);
  EXPECT_FALSE(second.recordedCheckpoint);
  expectIdentical(second, first);
}

// Replay under a spilled (budgeted) private checkpoint window must still be
// bit-identical — eviction is a residency concern, never correctness.
TEST(SeuOracleTest, SpilledCheckpointWindowMatchesNaive) {
  const RamWorkload w = ramWorkload();
  const TransientList campaign = ramCampaign(w, 31, 5);

  CampaignOptions naive;
  naive.naive = true;
  const CampaignResult ref = runSeuCampaign(w.ram.net, w.seq, campaign, naive);

  CampaignOptions o;
  o.checkpointBudgetBytes = 1;  // clamps to the single-chunk window floor
  const CampaignResult got = runSeuCampaign(w.ram.net, w.seq, campaign, o);
  expectIdentical(got, ref);
}

// The campaign must grade a detected injection with the exact first
// divergent pattern, and classify a strike on a written-then-never-read
// location as non-detected. Use a hand-built pair on the RAM data array.
TEST(SeuOracleTest, OutcomesArePlausible) {
  const RamWorkload w = ramWorkload();
  const TransientList campaign = ramCampaign(w, 11, 4);
  const CampaignResult res = runSeuCampaign(w.ram.net, w.seq, campaign, {});
  // The marching workload reads back everything it writes, so a storage-cell
  // campaign of this size detects at least one strike...
  EXPECT_GT(res.numDetected, 0u);
  // ...and every detection carries a plausible pattern index strictly after
  // its injection instant.
  for (const auto& r : res.injections) {
    if (r.outcome == Outcome::Detected) {
      ASSERT_GE(r.detectedAtPattern, 0);
      EXPECT_GT(static_cast<std::uint64_t>(r.detectedAtPattern),
                r.fault.atPattern);
      EXPECT_LT(static_cast<std::uint64_t>(r.detectedAtPattern),
                w.seq.size());
    } else {
      EXPECT_EQ(r.detectedAtPattern, -1);
    }
  }
}

// Campaign-level validation: bad specs fail before any engine runs.
TEST(SeuOracleTest, RejectsInvalidCampaigns) {
  const RamWorkload w = ramWorkload();
  EXPECT_THROW(runSeuCampaign(w.ram.net, w.seq, {}, {}), Error);

  TransientFault pastEnd;
  pastEnd.node = NodeId(0);
  pastEnd.atPattern = w.seq.size();
  pastEnd.name = "past-end";
  // NodeId(0) is Vdd (an input) on the RAM, so pick a storage node instead.
  for (std::uint32_t n = 0; n < w.ram.net.numNodes(); ++n) {
    if (!w.ram.net.isInput(NodeId(n))) {
      pastEnd.node = NodeId(n);
      break;
    }
  }
  EXPECT_THROW(runSeuCampaign(w.ram.net, w.seq, {pastEnd}, {}), Error);

  TransientFault onInput;
  onInput.node = NodeId(0);
  onInput.atPattern = 0;
  onInput.name = "on-input";
  ASSERT_TRUE(w.ram.net.isInput(onInput.node));
  EXPECT_THROW(runSeuCampaign(w.ram.net, w.seq, {onInput}, {}), Error);
}

// The cancellation hook aborts the campaign with the thrown error.
TEST(SeuOracleTest, CheckPointHookCancels) {
  const RamWorkload w = ramWorkload();
  const TransientList campaign = ramCampaign(w, 7, 2);
  CampaignOptions o;
  o.checkPoint = []() { throw Error("cancelled"); };
  EXPECT_THROW(runSeuCampaign(w.ram.net, w.seq, campaign, o), Error);
}

}  // namespace
}  // namespace fmossim
