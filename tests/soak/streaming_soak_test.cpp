// Million-pattern streaming soak (nightly tier; ctest label "soak").
//
// Gated on FMOSSIM_SOAK=1 — without it the test skips immediately, so tier-1
// runs stay fast. The nightly CI job runs `FMOSSIM_SOAK=1 ctest -L soak`.
//
// What it proves, in order:
//   1. A 1,000,000-pattern generator-backed campaign runs end to end through
//      Engine::runStream — single-engine and sharded under an 8 MiB
//      checkpoint budget — with resident memory flat in the sequence length
//      (getrusage maxrss delta bounded, measured BEFORE anything
//      materializes; maxrss is monotonic, so the order is load-bearing).
//   2. The streamed results are bit-identical (resultChecksum) to each other
//      and to a fully materialized run of the same 1M-pattern sequence.
#include <gtest/gtest.h>
#include <sys/resource.h>

#include <cstdlib>

#include "api/engine.hpp"
#include "core/row_sink.hpp"
#include "gen/random_circuit.hpp"
#include "patterns/pattern_source.hpp"
#include "perf/bench_runner.hpp"

namespace fmossim {
namespace {

long maxRssKb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

TEST(StreamingSoakTest, MillionPatternsFlatMemoryBitIdentical) {
  if (std::getenv("FMOSSIM_SOAK") == nullptr) {
    GTEST_SKIP() << "set FMOSSIM_SOAK=1 to run the 1M-pattern soak";
  }

  GenOptions gen;
  gen.seed = 101;
  gen.numNodes = 20;
  gen.numInputs = 5;
  gen.numFaults = 24;
  gen.numPatterns = 1000000;
  gen.maxSettingsPerPattern = 1;
  GeneratedStreamWorkload w = generateWorkloadStream(gen);

  const long baseKb = maxRssKb();

  // Single-engine streamed run, rows aggregated on the fly.
  std::uint64_t streamedChecksum = 0;
  std::uint64_t streamedDetected = 0;
  {
    Engine engine(w.net, w.faults, EngineOptions{});
    GeneratedPatternSource source(w.seqConfig);
    AggregatingRowSink sink;
    const FaultSimResult res = engine.runStream(source, &sink);
    streamedChecksum = perf::resultChecksum(res);
    streamedDetected = res.numDetected;
    EXPECT_TRUE(res.perPattern.empty()) << "streamed run materialized rows";
    EXPECT_EQ(res.numPatterns, gen.numPatterns);
    EXPECT_EQ(sink.patterns(), gen.numPatterns);
    EXPECT_EQ(sink.finalCumulativeDetected(), res.numDetected);
  }

  // Sharded streamed run: trace-driven replay from a disk-spilled
  // checkpoint under the 8 MiB budget.
  std::uint64_t shardedChecksum = 0;
  {
    EngineOptions opts;
    opts.jobs = 2;
    opts.checkpointBudgetBytes = std::size_t{8} << 20;
    Engine engine(w.net, w.faults, opts);
    GeneratedPatternSource source(w.seqConfig);
    shardedChecksum = perf::resultChecksum(engine.runStream(source));
  }

  // The memory assertion comes before anything materializes: past this
  // point maxrss can only grow, so the streamed paths are what it measured.
  const long streamedDeltaKb = maxRssKb() - baseKb;
  EXPECT_LT(streamedDeltaKb, 64L * 1024)
      << "streaming resident memory grew with the sequence length";
  EXPECT_EQ(shardedChecksum, streamedChecksum)
      << "sharded streamed run diverged from the single-engine streamed run";

  // Materialized reference over the identical sequence (memory-heavy by
  // design — it exists to prove the streamed results bit-exact).
  const GeneratedWorkload m = generateWorkload(gen);
  Engine engine(m.net, m.faults, EngineOptions{});
  const FaultSimResult ref = engine.run(m.seq);
  EXPECT_EQ(perf::resultChecksum(ref), streamedChecksum)
      << "streamed run diverged from the materialized run";
  EXPECT_EQ(ref.numDetected, streamedDetected);
}

}  // namespace
}  // namespace fmossim
