// BenchRunner: scenario-selection determinism, workload determinism, and
// cross-backend checksum agreement on a real (smoke-sized) measurement.
#include "perf/bench_runner.hpp"

#include <gtest/gtest.h>

#include "perf/scenarios.hpp"

namespace fmossim::perf {
namespace {

TEST(BenchScenarioTest, RegistryIsStableAndComplete) {
  const std::vector<std::string>& names = scenarioNames();
  // The registry order is part of the harness contract (BENCH file ordering,
  // docs/BENCHMARKING.md); changing it is a schema-affecting decision.
  const std::vector<std::string> expected = {
      "ram64_seq1",  "ram64_seq2",     "ram256_seq1",   "fuzz_small",
      "fuzz_medium", "fuzz_large",     "ram256_seq1_j4", "fuzz_large_j4",
      "fuzz_xlarge_seq", "seu_ram256",
  };
  EXPECT_EQ(names, expected);
  EXPECT_EQ(scenarioNames(), names);  // deterministic across calls
  for (const std::string& n : names) EXPECT_TRUE(isScenario(n));
  EXPECT_FALSE(isScenario("no_such_scenario"));
}

TEST(BenchScenarioTest, UnknownScenarioThrows) {
  EXPECT_THROW(buildScenarioWorkload("no_such_scenario"), Error);
  BenchConfig config;
  config.only = {"fuzz_small", "typo"};
  EXPECT_THROW(BenchRunner(config).selectedScenarios(), Error);
}

TEST(BenchScenarioTest, SelectionHonorsRegistryOrderAndDedupes) {
  BenchConfig config;
  // Filter order and duplicates must not affect the run order.
  config.only = {"fuzz_small", "ram64_seq1", "fuzz_small"};
  const std::vector<std::string> sel = BenchRunner(config).selectedScenarios();
  const std::vector<std::string> expected = {"ram64_seq1", "fuzz_small"};
  EXPECT_EQ(sel, expected);

  // Empty filter selects everything.
  EXPECT_EQ(BenchRunner(BenchConfig{}).selectedScenarios(), scenarioNames());
}

TEST(BenchScenarioTest, WorkloadBuildIsDeterministic) {
  const Workload a = buildScenarioWorkload("fuzz_medium");
  const Workload b = buildScenarioWorkload("fuzz_medium");
  EXPECT_EQ(a.net.numTransistors(), b.net.numTransistors());
  EXPECT_EQ(a.net.numNodes(), b.net.numNodes());
  EXPECT_EQ(a.faults.size(), b.faults.size());
  EXPECT_EQ(a.seq.size(), b.seq.size());
  ASSERT_FALSE(a.rows.empty());
  // Equal workloads must produce equal results (and therefore equal
  // checksums) through the Engine.
  Engine ea(a.net, a.faults, a.rows[0].engineOptions());
  Engine eb(b.net, b.faults, b.rows[0].engineOptions());
  EXPECT_EQ(resultChecksum(ea.run(a.seq)), resultChecksum(eb.run(b.seq)));
}

TEST(ResultChecksumTest, SensitiveToDetectionsAndStates) {
  FaultSimResult r;
  r.numFaults = 2;
  r.detectedAtPattern = {3, -1};
  r.finalGoodStates = {State::S0, State::S1};
  const std::uint64_t base = resultChecksum(r);
  EXPECT_EQ(resultChecksum(r), base);  // stable

  FaultSimResult changed = r;
  changed.detectedAtPattern[1] = 5;
  EXPECT_NE(resultChecksum(changed), base);

  changed = r;
  changed.finalGoodStates[0] = State::SX;
  EXPECT_NE(resultChecksum(changed), base);
}

TEST(BenchRunnerTest, SmokeRunAgreesAcrossBackends) {
  BenchConfig config;
  config.smoke = true;
  config.only = {"fuzz_small"};
  const ScenarioResult sr = BenchRunner(config).runScenario("fuzz_small");
  ASSERT_GE(sr.rows.size(), 4u);
  EXPECT_EQ(sr.scenario, "fuzz_small");
  EXPECT_GT(sr.faults, 0u);
  EXPECT_GT(sr.patterns, 0u);
  for (const BenchRow& row : sr.rows) {
    EXPECT_EQ(row.reps, 1u);  // smoke: one measured repetition
    EXPECT_GT(row.numFaults, 0u);
  }
  // Rows differing only in backend/jobs must be bit-identical.
  for (const BenchRow& a : sr.rows) {
    for (const BenchRow& b : sr.rows) {
      if (a.policy == b.policy && a.dropDetected == b.dropDetected) {
        EXPECT_EQ(a.checksum, b.checksum)
            << a.backend << " vs " << b.backend;
      }
    }
  }
  // Repeating the measurement reproduces the checksums (determinism of the
  // full scenario matrix, not just of one engine).
  const ScenarioResult again = BenchRunner(config).runScenario("fuzz_small");
  ASSERT_EQ(again.rows.size(), sr.rows.size());
  for (std::size_t i = 0; i < sr.rows.size(); ++i) {
    EXPECT_EQ(again.rows[i].checksum, sr.rows[i].checksum);
    EXPECT_EQ(again.rows[i].nodeEvals, sr.rows[i].nodeEvals);
  }
}

// Cross-row checkpoint sharing: one scenario's sharded-2 and sharded-4 rows
// (plus warmups and repetitions) must record the good machine exactly once
// — the counter that lands in the BENCH JSON.
TEST(BenchRunnerTest, ScenarioRecordsItsCheckpointExactlyOnce) {
  BenchConfig config;
  config.reps = 2;
  config.warmup = 1;
  config.only = {"fuzz_small"};
  const ScenarioResult sr = BenchRunner(config).runScenario("fuzz_small");
  bool hasSharded = false;
  for (const BenchRow& row : sr.rows) hasSharded |= row.jobs > 1;
  ASSERT_TRUE(hasSharded);
  EXPECT_EQ(sr.checkpointRecordings, 1u);
  EXPECT_GT(sr.checkpointResidentBytes, 0u);

  // A forced budget routes the same scenario through the spill path with
  // identical results and a bounded resident footprint.
  BenchConfig budgeted = config;
  budgeted.smoke = true;
  budgeted.checkpointBudget = 64u << 10;
  const ScenarioResult spilled =
      BenchRunner(budgeted).runScenario("fuzz_small");
  EXPECT_EQ(spilled.checkpointRecordings, 1u);
  EXPECT_EQ(spilled.checkpointBudget, 64u << 10);
  EXPECT_LE(spilled.checkpointResidentBytes, spilled.checkpointBudget);
  ASSERT_EQ(spilled.rows.size(), sr.rows.size());
  for (std::size_t i = 0; i < sr.rows.size(); ++i) {
    EXPECT_EQ(spilled.rows[i].checksum, sr.rows[i].checksum) << i;
    EXPECT_EQ(spilled.rows[i].nodeEvals, sr.rows[i].nodeEvals) << i;
  }
}

}  // namespace
}  // namespace fmossim::perf
