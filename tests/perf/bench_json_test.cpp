// BENCH_*.json schema: writer/parser round trip, file naming, and rejection
// of malformed or version-mismatched documents.
#include "perf/bench_json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace fmossim::perf {
namespace {

ScenarioResult sample() {
  ScenarioResult r;
  r.scenario = "fuzz_small";
  r.description = "generated \"quoted\" workload\nwith a newline";
  r.transistors = 123;
  r.nodes = 45;
  r.faults = 32;
  r.patterns = 16;
  r.checkpointBudget = 8u << 20;
  r.checkpointRecordings = 1;
  r.checkpointResidentBytes = 1234567;
  BenchRow row;
  row.backend = "sharded-4";
  row.jobs = 4;
  row.policy = "definite";
  row.dropDetected = false;
  row.medianMs = 12.34375;
  row.stddevMs = 0.5;
  row.reps = 5;
  row.checksum = 0xdeadbeefcafef00dULL;  // needs full 64-bit round trip
  row.nodeEvals = 987654321;
  row.numDetected = 30;
  row.numFaults = 32;
  r.rows.push_back(row);
  row.backend = "serial";
  row.jobs = 1;
  row.checksum = 0x1;
  r.rows.push_back(row);
  row.backend = "sharded-4-hist";
  row.jobs = 4;
  row.schedule = "history";  // non-default: must round-trip
  r.rows.push_back(row);
  return r;
}

TEST(BenchJsonTest, RoundTripPreservesEveryField) {
  const ScenarioResult r = sample();
  const ScenarioResult back = parseBenchJson(toJson(r));
  EXPECT_EQ(back.schemaVersion, 1);
  EXPECT_EQ(back.scenario, r.scenario);
  EXPECT_EQ(back.description, r.description);
  EXPECT_EQ(back.transistors, r.transistors);
  EXPECT_EQ(back.nodes, r.nodes);
  EXPECT_EQ(back.faults, r.faults);
  EXPECT_EQ(back.patterns, r.patterns);
  EXPECT_EQ(back.checkpointBudget, r.checkpointBudget);
  EXPECT_EQ(back.checkpointRecordings, r.checkpointRecordings);
  EXPECT_EQ(back.checkpointResidentBytes, r.checkpointResidentBytes);
  ASSERT_EQ(back.rows.size(), r.rows.size());
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    EXPECT_EQ(back.rows[i].backend, r.rows[i].backend);
    EXPECT_EQ(back.rows[i].jobs, r.rows[i].jobs);
    EXPECT_EQ(back.rows[i].policy, r.rows[i].policy);
    EXPECT_EQ(back.rows[i].dropDetected, r.rows[i].dropDetected);
    EXPECT_DOUBLE_EQ(back.rows[i].medianMs, r.rows[i].medianMs);
    EXPECT_DOUBLE_EQ(back.rows[i].stddevMs, r.rows[i].stddevMs);
    EXPECT_EQ(back.rows[i].reps, r.rows[i].reps);
    EXPECT_EQ(back.rows[i].checksum, r.rows[i].checksum);
    EXPECT_EQ(back.rows[i].nodeEvals, r.rows[i].nodeEvals);
    EXPECT_EQ(back.rows[i].numDetected, r.rows[i].numDetected);
    EXPECT_EQ(back.rows[i].numFaults, r.rows[i].numFaults);
    EXPECT_EQ(back.rows[i].schedule, r.rows[i].schedule);
  }
}

// The schedule field is additive like streamed: contiguous (default) rows
// omit it entirely — their serialized bytes are unchanged from pre-schedule
// builds — and absent keys parse back as "contiguous".
TEST(BenchJsonTest, ScheduleFieldIsAdditive) {
  const ScenarioResult r = sample();
  const std::string json = toJson(r);
  // Exactly one row (the history one) carries the key.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"schedule\""); pos != std::string::npos;
       pos = json.find("\"schedule\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
  const ScenarioResult back = parseBenchJson(json);
  ASSERT_EQ(back.rows.size(), 3u);
  EXPECT_EQ(back.rows[0].schedule, "contiguous");
  EXPECT_EQ(back.rows[1].schedule, "contiguous");
  EXPECT_EQ(back.rows[2].schedule, "history");
}

TEST(BenchJsonTest, ChecksumSerializesAsHexString) {
  const std::string json = toJson(sample());
  EXPECT_NE(json.find("\"checksum\": \"0xdeadbeefcafef00d\""),
            std::string::npos);
}

// The checkpoint object is additive: untouched scenarios (and files written
// before the store existed) omit it, and the parser defaults its fields.
TEST(BenchJsonTest, CheckpointObjectIsOptional) {
  ScenarioResult plain = sample();
  plain.checkpointBudget = 0;
  plain.checkpointRecordings = 0;
  plain.checkpointResidentBytes = 0;
  const std::string json = toJson(plain);
  EXPECT_EQ(json.find("\"checkpoint\""), std::string::npos);
  const ScenarioResult back = parseBenchJson(json);
  EXPECT_EQ(back.checkpointBudget, 0u);
  EXPECT_EQ(back.checkpointRecordings, 0u);

  // Present when the store recorded, even without a budget.
  ScenarioResult recorded = plain;
  recorded.checkpointRecordings = 1;
  EXPECT_NE(toJson(recorded).find("\"checkpoint\""), std::string::npos);
  EXPECT_EQ(parseBenchJson(toJson(recorded)).checkpointRecordings, 1u);
}

// The host object is additive like the checkpoint one: synthetic results
// omit it, measured ones carry timestamp/concurrency/build type, and the
// parser tolerates absence (pre-host baselines stay readable).
TEST(BenchJsonTest, HostObjectIsOptionalAndRoundTrips) {
  const ScenarioResult plain = sample();
  EXPECT_EQ(toJson(plain).find("\"host\""), std::string::npos);
  const ScenarioResult back = parseBenchJson(toJson(plain));
  EXPECT_TRUE(back.hostTimestamp.empty());
  EXPECT_EQ(back.hostHardwareConcurrency, 0u);

  ScenarioResult hosted = plain;
  fillHostInfo(hosted);
  EXPECT_FALSE(hosted.hostTimestamp.empty());
  EXPECT_FALSE(hosted.hostBuildType.empty());
  const std::string json = toJson(hosted);
  EXPECT_NE(json.find("\"host\""), std::string::npos);
  const ScenarioResult hb = parseBenchJson(json);
  EXPECT_EQ(hb.hostTimestamp, hosted.hostTimestamp);
  EXPECT_EQ(hb.hostHardwareConcurrency, hosted.hostHardwareConcurrency);
  EXPECT_EQ(hb.hostBuildType, hosted.hostBuildType);
}

TEST(BenchJsonTest, ServiceObjectIsOptionalAndRoundTrips) {
  const ScenarioResult plain = sample();
  EXPECT_EQ(toJson(plain).find("\"service\""), std::string::npos);
  EXPECT_FALSE(parseBenchJson(toJson(plain)).service.has_value());

  ScenarioResult served = plain;
  ServiceSummary svc;
  svc.requests = 50;
  svc.distinctWorkloads = 10;
  svc.poolEngines = 4;
  svc.workers = 2;
  svc.requestsPerSec = 123.456;
  svc.p50Ms = 10.5;
  svc.p95Ms = 20.25;
  svc.p99Ms = 30.125;
  svc.storeHits = 19;
  svc.storeRecordings = 7;
  svc.engineReuses = 42;
  served.service = svc;
  const ScenarioResult back2 = parseBenchJson(toJson(served));
  ASSERT_TRUE(back2.service.has_value());
  EXPECT_EQ(back2.service->requests, svc.requests);
  EXPECT_EQ(back2.service->distinctWorkloads, svc.distinctWorkloads);
  EXPECT_EQ(back2.service->poolEngines, svc.poolEngines);
  EXPECT_EQ(back2.service->workers, svc.workers);
  EXPECT_DOUBLE_EQ(back2.service->requestsPerSec, svc.requestsPerSec);
  EXPECT_DOUBLE_EQ(back2.service->p50Ms, svc.p50Ms);
  EXPECT_DOUBLE_EQ(back2.service->p95Ms, svc.p95Ms);
  EXPECT_DOUBLE_EQ(back2.service->p99Ms, svc.p99Ms);
  EXPECT_EQ(back2.service->storeHits, svc.storeHits);
  EXPECT_EQ(back2.service->storeRecordings, svc.storeRecordings);
  EXPECT_EQ(back2.service->engineReuses, svc.engineReuses);
}

// The seu object is additive like the others: non-campaign scenarios omit
// it, SEU grading scenarios carry the deterministic outcome tally.
TEST(BenchJsonTest, SeuObjectIsOptionalAndRoundTrips) {
  const ScenarioResult plain = sample();
  EXPECT_EQ(toJson(plain).find("\"seu\""), std::string::npos);
  EXPECT_FALSE(parseBenchJson(toJson(plain)).seu.has_value());

  ScenarioResult graded = plain;
  SeuSummary seu;
  seu.injections = 32;
  seu.instants = 4;
  seu.detected = 20;
  seu.silent = 9;
  seu.latent = 3;
  graded.seu = seu;
  const std::string json = toJson(graded);
  EXPECT_NE(json.find("\"seu\""), std::string::npos);
  const ScenarioResult back = parseBenchJson(json);
  ASSERT_TRUE(back.seu.has_value());
  EXPECT_EQ(back.seu->injections, seu.injections);
  EXPECT_EQ(back.seu->instants, seu.instants);
  EXPECT_EQ(back.seu->detected, seu.detected);
  EXPECT_EQ(back.seu->silent, seu.silent);
  EXPECT_EQ(back.seu->latent, seu.latent);
}

TEST(BenchJsonTest, RejectsMalformedInput) {
  EXPECT_THROW(parseBenchJson(""), Error);
  EXPECT_THROW(parseBenchJson("{"), Error);
  EXPECT_THROW(parseBenchJson("{\"schemaVersion\": 1}{}"), Error);  // trailing
  EXPECT_THROW(parseBenchJson("{\"unknownKey\": 1}"), Error);
  // Version mismatch must be an error, not a silent misread.
  std::string v2 = toJson(sample());
  const auto pos = v2.find("\"schemaVersion\": 1");
  ASSERT_NE(pos, std::string::npos);
  v2.replace(pos, 18, "\"schemaVersion\": 2");
  EXPECT_THROW(parseBenchJson(v2), Error);
  // Checksum must be a hex string.
  EXPECT_THROW(
      parseBenchJson("{\"schemaVersion\": 1, \"scenario\": \"x\", "
                     "\"description\": \"\", \"rows\": [{\"backend\": \"s\", "
                     "\"checksum\": \"nothex\"}]}"),
      Error);
}

TEST(BenchJsonTest, FileNamingAndWrite) {
  EXPECT_EQ(benchFileName("ram64_seq1"), "BENCH_ram64_seq1.json");
  const ScenarioResult r = sample();
  const std::string path = writeBenchFile(r, testing::TempDir());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), toJson(r));
  const ScenarioResult back = parseBenchJson(buf.str());
  EXPECT_EQ(back.scenario, r.scenario);
  std::remove(path.c_str());
  // Missing directories are created on demand (CI writes to build/bench/).
  const std::string nested = testing::TempDir() + "/bench_json_test_sub/dir";
  const std::string nestedPath = writeBenchFile(r, nested);
  std::ifstream nestedIn(nestedPath);
  EXPECT_TRUE(nestedIn.good());
  std::remove(nestedPath.c_str());
  // A path whose parent is a regular file still fails loudly.
  const std::string blocker = testing::TempDir() + "/bench_json_blocker";
  std::ofstream(blocker) << "not a directory";
  EXPECT_THROW(writeBenchFile(r, blocker + "/dir"), Error);
  std::remove(blocker.c_str());
}

}  // namespace
}  // namespace fmossim::perf
