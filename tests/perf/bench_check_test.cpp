// Benchmark regression gate: row matching, exact checks, tolerance math,
// and the file-level baseline loader.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "perf/bench_check.hpp"
#include "perf/bench_json.hpp"

namespace fmossim::perf {
namespace {

BenchRow makeRow(const char* backend, unsigned jobs, double medianMs) {
  BenchRow row;
  row.backend = backend;
  row.jobs = jobs;
  row.policy = "any";
  row.dropDetected = true;
  row.medianMs = medianMs;
  row.stddevMs = 0.1;
  row.reps = 3;
  row.checksum = 0xabcdef0123456789ULL;
  row.nodeEvals = 1000;
  row.numDetected = 9;
  row.numFaults = 10;
  return row;
}

ScenarioResult makeScenario() {
  ScenarioResult sr;
  sr.scenario = "unit";
  sr.description = "gate unit-test scenario";
  sr.transistors = 4;
  sr.nodes = 3;
  sr.faults = 10;
  sr.patterns = 5;
  sr.rows = {makeRow("concurrent", 1, 100.0), makeRow("sharded-4", 4, 50.0)};
  return sr;
}

TEST(BenchCheckTest, IdenticalResultsPass) {
  const ScenarioResult sr = makeScenario();
  CheckReport report;
  checkScenarioAgainstBaseline(sr, sr, 15.0, report);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.rowsChecked, 2u);
}

TEST(BenchCheckTest, WallClockRegressionBeyondToleranceFails) {
  const ScenarioResult base = makeScenario();
  ScenarioResult fresh = base;
  fresh.rows[0].medianMs = 116.0;  // +16% > 15%
  CheckReport report;
  checkScenarioAgainstBaseline(fresh, base, 15.0, report);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_NE(report.issues[0].detail.find("wall-clock regression"),
            std::string::npos);
  // The same regression passes under a raised tolerance (the noisy-runner
  // override knob).
  CheckReport relaxed;
  checkScenarioAgainstBaseline(fresh, base, 50.0, relaxed);
  EXPECT_TRUE(relaxed.ok());
}

TEST(BenchCheckTest, FasterIsNotARegression) {
  const ScenarioResult base = makeScenario();
  ScenarioResult fresh = base;
  fresh.rows[0].medianMs = 10.0;
  CheckReport report;
  checkScenarioAgainstBaseline(fresh, base, 15.0, report);
  EXPECT_TRUE(report.ok());
}

TEST(BenchCheckTest, ChecksumAndWorkDriftAlwaysFail) {
  const ScenarioResult base = makeScenario();
  ScenarioResult fresh = base;
  fresh.rows[1].checksum ^= 1;
  fresh.rows[1].nodeEvals += 7;
  CheckReport report;
  // Even an absurd tolerance cannot excuse exact-check drift.
  checkScenarioAgainstBaseline(fresh, base, 1e9, report);
  ASSERT_EQ(report.issues.size(), 2u);
  EXPECT_NE(report.issues[0].detail.find("checksum drift"), std::string::npos);
  EXPECT_NE(report.issues[1].detail.find("nodeEvals drift"),
            std::string::npos);
}

TEST(BenchCheckTest, MatrixChangesFailBothWays) {
  const ScenarioResult base = makeScenario();
  ScenarioResult fresh = base;
  fresh.rows.pop_back();
  fresh.rows.push_back(makeRow("sharded-8", 8, 40.0));
  CheckReport report;
  checkScenarioAgainstBaseline(fresh, base, 15.0, report);
  // sharded-4 missing from fresh, sharded-8 missing from baseline.
  EXPECT_EQ(report.issues.size(), 2u);
}

TEST(BenchCheckTest, WorkloadShapeChangeFails) {
  const ScenarioResult base = makeScenario();
  ScenarioResult fresh = base;
  fresh.patterns += 1;
  CheckReport report;
  checkScenarioAgainstBaseline(fresh, base, 15.0, report);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_NE(report.issues[0].detail.find("workload shape"), std::string::npos);
}

TEST(BenchCheckTest, DirectoryGateLoadsBaselinesAndReportsMissing) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "fmossim_bench_check_test";
  fs::create_directories(dir);
  const ScenarioResult sr = makeScenario();
  writeBenchFile(sr, dir.string());

  CheckOptions opts;
  opts.baselineDir = dir.string();
  const CheckReport ok = checkAgainstBaselines({sr}, opts);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.rowsChecked, 2u);

  ScenarioResult other = sr;
  other.scenario = "missing";
  const CheckReport missing = checkAgainstBaselines({other}, opts);
  ASSERT_EQ(missing.issues.size(), 1u);
  EXPECT_NE(missing.issues[0].detail.find("cannot read baseline"),
            std::string::npos);
  fs::remove_all(dir);
}

TEST(BenchCheckTest, UnfilteredRunFlagsStaleBaselines) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "fmossim_bench_stale_test";
  fs::create_directories(dir);
  const ScenarioResult sr = makeScenario();
  writeBenchFile(sr, dir.string());
  ScenarioResult removed = sr;
  removed.scenario = "removed_scenario";
  writeBenchFile(removed, dir.string());  // baseline with no live scenario

  CheckOptions opts;
  opts.baselineDir = dir.string();
  // Filtered run (expectComplete off): the stale file is ignored.
  EXPECT_TRUE(checkAgainstBaselines({sr}, opts).ok());
  // Unfiltered run: the stale file fails the gate.
  opts.expectComplete = true;
  const CheckReport report = checkAgainstBaselines({sr}, opts);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].scenario, "removed_scenario");
  EXPECT_NE(report.issues[0].detail.find("stale baseline"),
            std::string::npos);
  fs::remove_all(dir);
}

// SEU campaign tallies are deterministic, so any drift is an exact-check
// failure regardless of tolerance — same contract as checksums.
TEST(BenchCheckTest, SeuSummaryDriftAlwaysFails) {
  ScenarioResult base = makeScenario();
  SeuSummary seu;
  seu.injections = 32;
  seu.instants = 4;
  seu.detected = 20;
  seu.silent = 9;
  seu.latent = 3;
  base.seu = seu;

  // Identical summaries pass.
  CheckReport same;
  checkScenarioAgainstBaseline(base, base, 15.0, same);
  EXPECT_TRUE(same.ok());

  // Outcome drift fails even under an absurd tolerance.
  ScenarioResult fresh = base;
  fresh.seu->detected = 21;
  fresh.seu->silent = 8;
  CheckReport drift;
  checkScenarioAgainstBaseline(fresh, base, 1e9, drift);
  ASSERT_EQ(drift.issues.size(), 1u);
  EXPECT_NE(drift.issues[0].detail.find("seu grading drift"),
            std::string::npos);

  // Presence mismatch fails in both directions.
  ScenarioResult none = makeScenario();
  CheckReport missing;
  checkScenarioAgainstBaseline(none, base, 15.0, missing);
  EXPECT_FALSE(missing.ok());
  CheckReport extra;
  checkScenarioAgainstBaseline(base, none, 15.0, extra);
  EXPECT_FALSE(extra.ok());
}

ScenarioResult makeServiceScenario() {
  ScenarioResult sr = makeScenario();
  sr.scenario = "serve_mixed";
  ServiceSummary svc;
  svc.requests = 50;
  svc.distinctWorkloads = 10;
  svc.requestsPerSec = 100.0;
  svc.p50Ms = 10.0;
  svc.p95Ms = 20.0;
  svc.p99Ms = 30.0;
  svc.storeHits = 19;
  svc.storeRecordings = 7;
  svc.engineReuses = 42;
  sr.service = svc;
  return sr;
}

// Service baselines (BENCH_serve_mixed.json) have no registry scenario to
// re-run; an unfiltered gate shape-validates them instead of flagging them
// stale.
TEST(BenchCheckTest, ServiceBaselineIsShapeValidatedNotStale) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "fmossim_bench_svc_test";
  fs::create_directories(dir);
  const ScenarioResult sr = makeScenario();
  writeBenchFile(sr, dir.string());
  writeBenchFile(makeServiceScenario(), dir.string());

  CheckOptions opts;
  opts.baselineDir = dir.string();
  opts.expectComplete = true;
  EXPECT_TRUE(checkAgainstBaselines({sr}, opts).ok());
  fs::remove_all(dir);
}

TEST(BenchCheckTest, ServiceShapeValidationCatchesInconsistencies) {
  CheckReport ok;
  checkServiceBaselineShape(makeServiceScenario(), ok);
  EXPECT_TRUE(ok.ok());

  // Out-of-order percentiles.
  ScenarioResult bad = makeServiceScenario();
  bad.service->p50Ms = 40.0;  // > p95
  CheckReport r1;
  checkServiceBaselineShape(bad, r1);
  EXPECT_FALSE(r1.ok());

  // Repeat traffic with zero store hits means reuse is broken.
  bad = makeServiceScenario();
  bad.service->storeHits = 0;
  CheckReport r2;
  checkServiceBaselineShape(bad, r2);
  EXPECT_FALSE(r2.ok());

  // No recordings at all: the store was never engaged.
  bad = makeServiceScenario();
  bad.service->storeRecordings = 0;
  CheckReport r3;
  checkServiceBaselineShape(bad, r3);
  EXPECT_FALSE(r3.ok());

  // Zero requests / zero throughput.
  bad = makeServiceScenario();
  bad.service->requests = 0;
  CheckReport r4;
  checkServiceBaselineShape(bad, r4);
  EXPECT_FALSE(r4.ok());

  // A zero row checksum means the replay recorded nothing meaningful.
  bad = makeServiceScenario();
  bad.rows[0].checksum = 0;
  CheckReport r5;
  checkServiceBaselineShape(bad, r5);
  EXPECT_FALSE(r5.ok());

  // A non-service file passed in by mistake is itself an issue.
  CheckReport r6;
  checkServiceBaselineShape(makeScenario(), r6);
  EXPECT_FALSE(r6.ok());
}

}  // namespace
}  // namespace fmossim::perf
