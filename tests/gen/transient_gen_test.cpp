// Seeded SEU campaign generation: determinism, clustering, validation.
#include "gen/transient_gen.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/random_circuit.hpp"

namespace fmossim {
namespace {

GeneratedWorkload genWorkload() {
  GenOptions gen;
  gen.seed = 12;
  gen.numNodes = 16;
  gen.numInputs = 4;
  gen.numFaults = 0;
  gen.numPatterns = 40;
  return generateWorkload(gen);
}

TEST(TransientGenTest, DeterministicForEqualSeeds) {
  const GeneratedWorkload w = genWorkload();
  SeuGenOptions o;
  o.seed = 77;
  o.numInjections = 20;
  o.numPatterns = w.seq.size();
  o.maxInstants = 4;
  const TransientList a = generateSeuCampaign(w.net, o);
  const TransientList b = generateSeuCampaign(w.net, o);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].atPattern, b[i].atPattern);
    EXPECT_EQ(a[i].pulsePatterns, b[i].pulsePatterns);
    EXPECT_EQ(a[i].name, b[i].name);
  }
  o.seed = 78;
  const TransientList c = generateSeuCampaign(w.net, o);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs = differs || a[i].node != c[i].node ||
              a[i].atPattern != c[i].atPattern;
  }
  EXPECT_TRUE(differs) << "different seeds should give different campaigns";
}

TEST(TransientGenTest, CampaignsAreValid) {
  const GeneratedWorkload w = genWorkload();
  SeuGenOptions o;
  o.seed = 5;
  o.numInjections = 50;
  o.numPatterns = w.seq.size();
  o.pulseProbability = 0.5;
  o.maxPulse = 3;
  const TransientList c = generateSeuCampaign(w.net, o);
  ASSERT_EQ(c.size(), o.numInjections);
  bool sawPulse = false;
  for (const TransientFault& f : c) {
    EXPECT_FALSE(w.net.isInput(f.node));
    EXPECT_LT(f.node.value, w.net.numNodes());
    EXPECT_LT(f.atPattern, w.seq.size());
    EXPECT_LE(f.pulsePatterns, o.maxPulse);
    sawPulse = sawPulse || f.pulsePatterns > 0;
  }
  EXPECT_TRUE(sawPulse) << "p=0.5 over 50 draws should yield a pulse";
}

TEST(TransientGenTest, ClusteringBoundsDistinctInstants) {
  const GeneratedWorkload w = genWorkload();
  SeuGenOptions o;
  o.seed = 9;
  o.numInjections = 32;
  o.numPatterns = w.seq.size();
  o.maxInstants = 4;
  const TransientList c = generateSeuCampaign(w.net, o);
  std::set<std::uint64_t> instants;
  for (const TransientFault& f : c) instants.insert(f.atPattern);
  EXPECT_LE(instants.size(), 4u);
  EXPECT_GE(instants.size(), 2u) << "clustered pool should still vary";
}

TEST(TransientGenTest, RejectsDegenerateRequests) {
  const GeneratedWorkload w = genWorkload();
  SeuGenOptions o;
  o.numPatterns = w.seq.size();
  o.numInjections = 0;
  EXPECT_THROW(generateSeuCampaign(w.net, o), Error);
  o.numInjections = 4;
  o.numPatterns = 0;
  EXPECT_THROW(generateSeuCampaign(w.net, o), Error);
}

}  // namespace
}  // namespace fmossim
