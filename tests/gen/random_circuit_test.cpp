// Seeded random workload generation: determinism, structural validity, and
// parameter plumbing.
#include "gen/random_circuit.hpp"

#include <gtest/gtest.h>

#include <set>

#include "api/engine.hpp"

namespace fmossim {
namespace {

TEST(RandomCircuitTest, SameSeedGivesIdenticalWorkload) {
  const GeneratedWorkload a = generateWorkload(GenOptions::randomized(42));
  const GeneratedWorkload b = generateWorkload(GenOptions::randomized(42));

  ASSERT_EQ(a.net.numNodes(), b.net.numNodes());
  ASSERT_EQ(a.net.numTransistors(), b.net.numTransistors());
  for (const TransId t : a.net.allTransistors()) {
    const auto& ta = a.net.transistor(t);
    const auto& tb = b.net.transistor(t);
    EXPECT_EQ(ta.type, tb.type);
    EXPECT_EQ(ta.strength, tb.strength);
    EXPECT_EQ(ta.gate, tb.gate);
    EXPECT_EQ(ta.source, tb.source);
    EXPECT_EQ(ta.drain, tb.drain);
  }
  ASSERT_EQ(a.faults.size(), b.faults.size());
  for (std::uint32_t i = 0; i < a.faults.size(); ++i) {
    EXPECT_EQ(a.faults[i].name, b.faults[i].name);
  }
  ASSERT_EQ(a.seq.size(), b.seq.size());
  EXPECT_EQ(a.seq.outputs(), b.seq.outputs());
  for (std::uint32_t p = 0; p < a.seq.size(); ++p) {
    ASSERT_EQ(a.seq[p].settings.size(), b.seq[p].settings.size());
    for (std::size_t s = 0; s < a.seq[p].settings.size(); ++s) {
      EXPECT_EQ(a.seq[p].settings[s].assignments,
                b.seq[p].settings[s].assignments);
    }
  }
  EXPECT_EQ(describeWorkload(a), describeWorkload(b));
}

TEST(RandomCircuitTest, DifferentSeedsVaryTheScenario) {
  std::set<std::string> shapes;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    shapes.insert(describeWorkload(generateWorkload(GenOptions::randomized(seed))));
  }
  EXPECT_GT(shapes.size(), 4u);  // near-certainly all distinct
}

TEST(RandomCircuitTest, GeneratedWorkloadsAreStructurallyValid) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const GenOptions o = GenOptions::randomized(seed);
    const GeneratedWorkload w = generateWorkload(o);
    SCOPED_TRACE(describeWorkload(w));

    EXPECT_GT(w.net.numTransistors(), 0u);
    EXPECT_GE(w.net.numInputs(), 3u);  // rails + at least one data input
    EXPECT_FALSE(w.faults.empty());
    EXPECT_LE(w.faults.size(), std::max(o.numFaults, 1u));
    ASSERT_FALSE(w.seq.empty());
    ASSERT_FALSE(w.seq.outputs().empty());

    // Every assignment targets an input node; outputs are real nodes.
    for (const Pattern& p : w.seq.patterns()) {
      ASSERT_FALSE(p.settings.empty());
      for (const InputSetting& s : p.settings) {
        ASSERT_FALSE(s.assignments.empty());
        for (const auto& [n, v] : s.assignments) {
          EXPECT_TRUE(w.net.isInput(n));
          (void)v;
        }
      }
    }
    for (const NodeId out : w.seq.outputs()) {
      EXPECT_LT(out.value, w.net.numNodes());
    }

    // The first setting powers the rails.
    const auto& first = w.seq[0].settings[0].assignments;
    const NodeId vdd = w.net.nodeByName("Vdd");
    const NodeId gnd = w.net.nodeByName("Gnd");
    bool sawVdd = false, sawGnd = false;
    for (const auto& [n, v] : first) {
      if (n == vdd) { sawVdd = true; EXPECT_EQ(v, State::S1); }
      if (n == gnd) { sawGnd = true; EXPECT_EQ(v, State::S0); }
    }
    EXPECT_TRUE(sawVdd);
    EXPECT_TRUE(sawGnd);
  }
}

TEST(RandomCircuitTest, GeneratedWorkloadRunsOnEveryBackend) {
  const GeneratedWorkload w = generateWorkload(GenOptions::randomized(3));
  for (const unsigned jobs : {1u, 2u}) {
    for (const Backend backend : {Backend::Serial, Backend::Concurrent}) {
      EngineOptions opts;
      opts.backend = backend;
      opts.jobs = jobs;
      Engine engine(w.net, w.faults, opts);
      const FaultSimResult res = engine.run(w.seq);
      EXPECT_EQ(res.numFaults, w.faults.size());
      EXPECT_EQ(res.perPattern.size(), w.seq.size());
      EXPECT_EQ(res.finalGoodStates.size(), w.net.numNodes());
    }
  }
}

TEST(RandomCircuitTest, ParameterOverridesAreHonoured) {
  GenOptions o = GenOptions::randomized(5);
  o.numFaults = 7;
  o.numPatterns = 4;
  o.numOutputs = 2;
  const GeneratedWorkload w = generateWorkload(o);
  EXPECT_EQ(w.faults.size(), 7u);
  EXPECT_EQ(w.seq.size(), 4u);
  EXPECT_EQ(w.seq.outputs().size(), 2u);
}

}  // namespace
}  // namespace fmossim
