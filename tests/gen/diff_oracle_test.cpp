// Differential oracle: clean engines agree on random workloads; an
// intentionally injected concurrent-engine bug (lost trigger events, the
// classic missed-divergence-propagation failure mode) is caught and shrunk
// to a minimized seed reproducer that still diverges when replayed.
#include "gen/diff_oracle.hpp"

#include <gtest/gtest.h>

#include "circuits/demo_circuits.hpp"
#include "faults/universe.hpp"

namespace fmossim {
namespace {

/// Small bounded smoke corpus — every future optimization PR inherits it.
constexpr std::uint64_t kSmokeSeeds[] = {1, 2, 3, 4, 5, 6, 7, 8};

TEST(DiffOracleTest, CleanEnginesAgreeOnRandomWorkloads) {
  for (const std::uint64_t seed : kSmokeSeeds) {
    const GeneratedWorkload w = generateWorkload(GenOptions::randomized(seed));
    SCOPED_TRACE(describeWorkload(w));
    for (const DetectionPolicy policy :
         {DetectionPolicy::DefiniteOnly, DetectionPolicy::AnyDifference}) {
      OracleOptions opts;
      opts.policy = policy;
      opts.dropDetected = (seed % 2) == 0;
      DiffOracle oracle(opts);
      const OracleReport rep = oracle.check(w);
      EXPECT_TRUE(rep.ok) << rep.summary();
      EXPECT_EQ(rep.checkRuns, 1u);
    }
  }
}

TEST(DiffOracleTest, HandBuiltCircuitPassesTheOracle) {
  const ShiftRegister sr = buildShiftRegister(2);
  FaultList faults = allStorageNodeStuckFaults(sr.net);
  faults.append(allTransistorStuckFaults(sr.net));

  TestSequence seq;
  seq.addOutput(sr.out());
  const char bits[] = "1101001";
  for (const char* bit = bits; *bit; ++bit) {
    Pattern p;
    InputSetting s0;
    s0.set(sr.vdd, State::S1);
    s0.set(sr.gnd, State::S0);
    s0.set(sr.din, *bit == '1' ? State::S1 : State::S0);
    s0.set(sr.phi1, State::S1);
    s0.set(sr.phi2, State::S0);
    InputSetting s1;
    s1.set(sr.phi1, State::S0);
    s1.set(sr.phi2, State::S1);
    p.settings = {s0, s1};
    seq.addPattern(std::move(p));
  }

  DiffOracle oracle;
  const OracleReport rep = oracle.check(sr.net, faults, seq, /*seed=*/0);
  EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST(DiffOracleTest, InjectedConcurrentBugIsCaughtAndMinimized) {
  // Mutation test: lose every 3rd faulty-circuit trigger in the concurrent
  // backends only. The oracle must catch the resulting divergence on the
  // smoke corpus and produce a reproducer that (a) is smaller than the
  // original workload and (b) still diverges when replayed on its own.
  bool caught = false;
  for (const std::uint64_t seed : kSmokeSeeds) {
    const GeneratedWorkload w = generateWorkload(GenOptions::randomized(seed));
    OracleOptions opts;
    opts.debugLoseTriggerEvery = 3;
    DiffOracle oracle(opts);
    const OracleReport rep = oracle.check(w);
    if (rep.ok) continue;
    caught = true;
    SCOPED_TRACE(describeWorkload(w));
    SCOPED_TRACE(rep.summary());

    EXPECT_FALSE(rep.divergence.backend.empty());
    EXPECT_FALSE(rep.divergence.field.empty());
    ASSERT_FALSE(rep.faultIndices.empty());
    EXPECT_EQ(rep.faultNames.size(), rep.faultIndices.size());
    ASSERT_GE(rep.numPatterns, 1u);
    ASSERT_LE(rep.numPatterns, w.seq.size());
    // Shrinking made progress on at least one axis.
    EXPECT_TRUE(rep.faultIndices.size() < w.faults.size() ||
                rep.numPatterns < w.seq.size());

    // Replay the minimized reproducer: it must still diverge.
    FaultList minFaults;
    for (const std::uint32_t i : rep.faultIndices) minFaults.add(w.faults[i]);
    TestSequence minSeq;
    minSeq.setOutputs(w.seq.outputs());
    for (std::uint32_t p = 0; p < rep.numPatterns; ++p) {
      minSeq.addPattern(w.seq[p]);
    }
    OracleOptions replayOpts = opts;
    replayOpts.shrink = false;
    DiffOracle replay(replayOpts);
    const OracleReport again =
        replay.check(w.net, minFaults, minSeq, w.options.seed);
    EXPECT_FALSE(again.ok) << "minimized reproducer no longer diverges";

    // And the same minimized workload passes once the bug is removed.
    OracleOptions cleanOpts = replayOpts;
    cleanOpts.debugLoseTriggerEvery = 0;
    DiffOracle clean(cleanOpts);
    EXPECT_TRUE(clean.check(w.net, minFaults, minSeq, w.options.seed).ok);
    break;
  }
  EXPECT_TRUE(caught)
      << "injected trigger-loss bug evaded the oracle on the whole corpus";
}

TEST(DiffOracleTest, ReportSummariesAreHumanReadable) {
  const GeneratedWorkload w = generateWorkload(GenOptions::randomized(1));
  DiffOracle oracle;
  const OracleReport rep = oracle.check(w);
  EXPECT_NE(rep.summary().find("OK"), std::string::npos);
  EXPECT_NE(rep.summary().find("seed 1"), std::string::npos);
}

}  // namespace
}  // namespace fmossim
