#include "patterns/ram_ops.hpp"

#include "util/strings.hpp"

namespace fmossim {

Pattern ramOpPattern(const RamCircuit& ram, const RamOp& op) {
  if (op.address >= ram.config.words()) {
    throw Error("RAM operation address out of range");
  }
  const unsigned nr = ram.config.rowAddressBits();
  const unsigned nc = ram.config.colAddressBits();
  const unsigned row = op.address / ram.config.cols;
  const unsigned col = op.address % ram.config.cols;

  Pattern p;
  p.label = format("%s@%u%s", op.write ? "w" : "r", op.address,
                   op.write ? (op.data == State::S1 ? "=1" : "=0") : "");

  // Setting 1: precharge; address, WE and data applied.
  InputSetting s1;
  s1.set(ram.vdd, State::S1);
  s1.set(ram.gnd, State::S0);
  s1.set(ram.phiP, State::S1);
  s1.set(ram.phiR, State::S0);
  s1.set(ram.phiL, State::S0);
  s1.set(ram.phiW, State::S0);
  s1.set(ram.we, op.write ? State::S1 : State::S0);
  s1.set(ram.din, op.write ? op.data : State::S0);
  for (unsigned bit = 0; bit < nr; ++bit) {
    s1.set(ram.addr[bit], ((row >> bit) & 1u) ? State::S1 : State::S0);
  }
  for (unsigned bit = 0; bit < nc; ++bit) {
    s1.set(ram.addr[nr + bit], ((col >> bit) & 1u) ? State::S1 : State::S0);
  }
  p.settings.push_back(std::move(s1));

  // Setting 2: precharge off.
  InputSetting s2;
  s2.set(ram.phiP, State::S0);
  p.settings.push_back(std::move(s2));

  // Setting 3: read the addressed row onto the bit lines.
  InputSetting s3;
  s3.set(ram.phiR, State::S1);
  p.settings.push_back(std::move(s3));

  // Setting 4: latch the column data, drive the output bus.
  InputSetting s4;
  s4.set(ram.phiR, State::S0);
  s4.set(ram.phiL, State::S1);
  p.settings.push_back(std::move(s4));

  // Setting 5: write the row back (data override on the selected column for
  // writes).
  InputSetting s5;
  s5.set(ram.phiL, State::S0);
  s5.set(ram.phiW, State::S1);
  p.settings.push_back(std::move(s5));

  // Setting 6: all clocks low.
  InputSetting s6;
  s6.set(ram.phiW, State::S0);
  p.settings.push_back(std::move(s6));

  return p;
}

TestSequence ramOpSequence(const RamCircuit& ram, const std::vector<RamOp>& ops) {
  TestSequence seq;
  seq.addOutput(ram.dout);
  for (const RamOp& op : ops) {
    seq.addPattern(ramOpPattern(ram, op));
  }
  return seq;
}

}  // namespace fmossim
