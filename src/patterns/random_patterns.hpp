// Random pattern generation for combinational circuits (used by the ISCAS
// examples and the randomized equivalence tests).
#pragma once

#include "patterns/pattern.hpp"
#include "util/rng.hpp"

namespace fmossim {

struct RandomPatternOptions {
  std::uint32_t numPatterns = 32;
  /// Settings per pattern (1 for combinational circuits).
  std::uint32_t settingsPerPattern = 1;
  /// Probability that an input is X instead of a definite value.
  double xProbability = 0.0;
};

/// Generates random patterns over the given input nodes. Supply rails should
/// not be included in `inputs` (drive them separately).
TestSequence randomPatterns(const std::vector<NodeId>& inputs,
                            const RandomPatternOptions& options, Rng& rng);

}  // namespace fmossim
