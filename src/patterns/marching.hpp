// Test sequence generators for the RAM circuits (paper §5, after
// Winegarden & Pannell's "Paragons for Memory Test").
//
// The paper's first RAM64 sequence: "7 patterns to test the control and
// peripheral logic, 40 patterns to perform a marching test of the row select
// logic, 40 patterns to perform a marching test of the column select and bit
// line logic, and 320 patterns to perform a marching test of the memory
// array" — 407 patterns total; the same construction gives 1447 for RAM256.
// The second sequence omits the row and column marches (327 patterns).
//
// The march element is MATS+-like, 5 operations per visited cell:
//     up(w0); up(r0, w1); up(r1, w0)
#pragma once

#include "circuits/ram.hpp"
#include "patterns/pattern.hpp"

namespace fmossim {

/// 7 control/peripheral patterns: clock exercise, corner-address writes and
/// reads, write-enable toggling.
TestSequence ramControlTests(const RamCircuit& ram);

/// 5-ops-per-cell march over the given addresses.
TestSequence ramMarch(const RamCircuit& ram, const std::vector<unsigned>& addresses);

/// March over one cell per row (column 0): 5 * rows patterns.
TestSequence ramRowMarch(const RamCircuit& ram);
/// March over one cell per column (row 0): 5 * cols patterns.
TestSequence ramColMarch(const RamCircuit& ram);
/// March over the full array in ascending address order: 5 * words patterns.
TestSequence ramArrayMarch(const RamCircuit& ram);

/// Test sequence 1 (Figure 1): control + row march + column march + array
/// march = 7 + 5R + 5C + 5RC patterns (407 for RAM64, 1447 for RAM256).
TestSequence ramTestSequence1(const RamCircuit& ram);

/// Test sequence 2 (Figure 2): control + array march only = 7 + 5RC
/// patterns (327 for RAM64).
TestSequence ramTestSequence2(const RamCircuit& ram);

}  // namespace fmossim
