// RAM operation encoding: one read or write = one pattern of 6 input
// settings cycling the clocks (paper §5).
#pragma once

#include "circuits/ram.hpp"
#include "patterns/pattern.hpp"

namespace fmossim {

/// One RAM operation.
struct RamOp {
  bool write = false;
  unsigned address = 0;  ///< word address: row * cols + col
  State data = State::S0;  ///< written value (ignored for reads)

  static RamOp readOp(unsigned address) { return {false, address, State::S0}; }
  static RamOp writeOp(unsigned address, State data) {
    return {true, address, data};
  }
};

/// Encodes the operation as the paper's 6-setting clock cycle.
Pattern ramOpPattern(const RamCircuit& ram, const RamOp& op);

/// Convenience: encodes a whole list of operations.
TestSequence ramOpSequence(const RamCircuit& ram, const std::vector<RamOp>& ops);

}  // namespace fmossim
