// Text format for test sequences, used by the command-line driver.
//
//   # comment
//   outputs dout            declare observed output node(s)
//   pattern [label]         start a new pattern
//   set a=1 b=0 clk=X       one input setting (assignments applied together)
//
// Node names are resolved against a Network; values are 0, 1 or X.
#pragma once

#include <string>

#include "patterns/pattern.hpp"

namespace fmossim {

/// Parses the sequence text against the network. Throws Error with line
/// numbers on malformed input or unknown node names.
TestSequence parseSequence(const Network& net, const std::string& text);

/// Reads a sequence file.
TestSequence loadSequenceFile(const Network& net, const std::string& path);

/// Writes a sequence back in the same format. Exact inverse of
/// parseSequence: the emitted text parses back to an equivalent sequence.
/// Throws Error for sequences the format cannot carry (no patterns or
/// outputs, empty settings, node names / labels with whitespace, '=' in an
/// assigned node's name) instead of emitting lossy or unparseable text.
std::string writeSequence(const Network& net, const TestSequence& seq);

}  // namespace fmossim
