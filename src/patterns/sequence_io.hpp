// Text format for test sequences, used by the command-line driver.
//
//   # comment
//   outputs dout            declare observed output node(s)
//   patterns 3              optional 64-bit pattern count (verified strictly)
//   pattern [label]         start a new pattern
//   set a=1 b=0 clk=X       one input setting (assignments applied together)
//
// Node names are resolved against a Network; values are 0, 1 or X. All
// pattern counts are 64-bit end to end: the `patterns` directive, the
// streaming reader/writer below and FilePatternSource carry sequences
// longer than 2^32 patterns without truncation (a materialized TestSequence
// remains bounded by its 32-bit size; only the streaming path crosses it).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "patterns/pattern.hpp"

namespace fmossim {

/// Parses the sequence text against the network. Throws Error with line
/// numbers on malformed input, unknown node names, or a `patterns N`
/// declaration that disagrees with the actual pattern count.
TestSequence parseSequence(const Network& net, const std::string& text);

/// Reads a sequence file.
TestSequence loadSequenceFile(const Network& net, const std::string& path);

/// Writes a sequence back in the same format (including a `patterns N`
/// count line). Exact inverse of parseSequence: the emitted text parses
/// back to an equivalent sequence. Throws Error for sequences the format
/// cannot carry (no patterns or outputs, empty settings, node names /
/// labels with whitespace, '=' in an assigned node's name) instead of
/// emitting lossy or unparseable text.
std::string writeSequence(const Network& net, const TestSequence& seq);

/// Incremental parser for the sequence text format: one pattern at a time,
/// never holding the whole sequence. The header — outputs directives and
/// the optional 64-bit `patterns N` count — must precede the first pattern
/// (the materialized parseSequence stays lenient about late outputs lines;
/// a stream consumer needs the outputs before the first settle).
class SequenceStreamReader {
 public:
  /// Parses the header up to (not including) the first pattern. Throws
  /// Error with line numbers on malformed input. The stream must outlive
  /// the reader.
  SequenceStreamReader(const Network& net, std::istream& in);

  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// The `patterns N` declaration, if the header carried one.
  std::optional<std::uint64_t> declaredPatterns() const { return declared_; }

  /// Fills `out` with the next pattern; false at clean end of input. Throws
  /// on malformed lines and on a declared count that disagrees with the
  /// actual number of patterns (too many as soon as one is seen, too few at
  /// end of input).
  bool next(Pattern& out);

  std::uint64_t patternsRead() const { return read_; }

 private:
  bool nextLine(std::vector<std::string>& tok);

  const Network* net_;
  std::istream* in_;
  std::size_t lineNo_ = 0;
  std::vector<NodeId> outputs_;
  std::optional<std::uint64_t> declared_;
  std::optional<std::string> pendingLabel_;  ///< label of the pattern whose
                                             ///< directive was already read
  std::uint64_t read_ = 0;
  bool done_ = false;
};

/// Incremental writer: header (outputs + 64-bit `patterns N`) at
/// construction, then one pattern per write(). finish() verifies the
/// declared count was met exactly. Performs the same representability
/// validation as writeSequence, per pattern.
class SequenceStreamWriter {
 public:
  SequenceStreamWriter(const Network& net, std::ostream& out,
                       const std::vector<NodeId>& outputs,
                       std::uint64_t numPatterns);

  /// Writes one pattern; throws if it is unrepresentable or exceeds the
  /// declared count.
  void write(const Pattern& p);

  /// Verifies exactly numPatterns patterns were written.
  void finish();

  std::uint64_t patternsWritten() const { return written_; }

 private:
  const Network* net_;
  std::ostream* out_;
  std::uint64_t declared_;
  std::uint64_t written_ = 0;
};

}  // namespace fmossim
