// Pull-based pattern streams: the hot-path alternative to a materialized
// TestSequence.
//
// A PatternSource hands out one Pattern at a time, so a million-pattern
// campaign never holds the whole sequence in memory: the checkpoint recorder
// consumes the source once while recording the good-machine trace, workers
// replay from the trace, and the only per-pattern state alive at any moment
// is the pattern currently being applied. Three implementations:
//
//   * MaterializedPatternSource — adapts an existing TestSequence (the
//     compatibility path; every materialized run can be expressed through
//     it, which is what the bit-identity property tests exploit).
//   * GeneratedPatternSource — replays the seeded-random sequence rule of
//     gen/random_circuit.cpp from an Rng snapshot. generateWorkload()
//     materializes its sequence through this class, so the streamed and
//     materialized generator paths are identical by construction.
//   * FilePatternSource — streams the sequence text format from disk via
//     SequenceStreamReader (patterns/sequence_io.hpp) without ever holding
//     more than one pattern.
//
// Sources are single-consumer but rewindable: rewind() restarts the stream
// from the first pattern (generated sources restore the Rng snapshot, file
// sources reopen). numPatterns() is known up front — the sequence
// fingerprint folds the pattern count first, so a source that could not
// announce its length could not be fingerprinted compatibly with
// GoodMachineCheckpoint::fingerprint().
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "patterns/pattern.hpp"
#include "patterns/sequence_io.hpp"
#include "util/rng.hpp"

namespace fmossim {

/// Abstract pull-based pattern stream. Contract: next() fills `out` and
/// returns true exactly numPatterns() times between rewinds; outputs() and
/// numPatterns() are stable across the stream's lifetime.
class PatternSource {
 public:
  virtual ~PatternSource() = default;

  /// Observed output nodes (the equivalent of TestSequence::outputs()).
  virtual const std::vector<NodeId>& outputs() const = 0;

  /// Total number of patterns the stream yields. Known up front even for
  /// generated/file-backed streams (see header comment).
  virtual std::uint64_t numPatterns() const = 0;

  /// Fills `out` with the next pattern. Returns false when the stream is
  /// exhausted. `out` may be reused by the caller across calls; sources
  /// overwrite it completely.
  virtual bool next(Pattern& out) = 0;

  /// Restarts the stream from the first pattern.
  virtual void rewind() = 0;

  /// Sequence fingerprint, folded exactly like
  /// GoodMachineCheckpoint::fingerprint() over the materialized equivalent
  /// (count, then per-pattern structure, then outputs). Streams the whole
  /// source once on first call (rewinding before and after) and caches the
  /// result, so calling it mid-consumption is an error.
  std::uint64_t fingerprint();

 private:
  std::optional<std::uint64_t> fingerprint_;
};

/// Adapts a materialized TestSequence (not owned; must outlive the source).
class MaterializedPatternSource final : public PatternSource {
 public:
  explicit MaterializedPatternSource(const TestSequence& seq) : seq_(&seq) {}

  const std::vector<NodeId>& outputs() const override {
    return seq_->outputs();
  }
  std::uint64_t numPatterns() const override { return seq_->size(); }
  bool next(Pattern& out) override;
  void rewind() override { next_ = 0; }

 private:
  const TestSequence* seq_;
  std::uint32_t next_ = 0;
};

/// Everything the generator's sequence rule depends on, captured after the
/// structural/fault/output sampling draws so the Rng snapshot sits exactly
/// at the start of the sequence stream (see gen/random_circuit.cpp).
struct GeneratedSequenceConfig {
  NodeId vdd;
  NodeId gnd;
  std::vector<NodeId> inputs;   ///< data/clock inputs, generator order
  std::vector<NodeId> outputs;  ///< observed outputs, generator order
  std::uint64_t numPatterns = 1;
  std::uint32_t maxSettingsPerPattern = 3;
  double xProbability = 0.05;
  /// Rng state positioned at the first sequence draw. Rng is a plain value
  /// (xoshiro256** state words), so the snapshot is copyable and rewind is
  /// a struct copy.
  Rng rng{1};
};

/// Replays the seeded-random sequence rule from an Rng snapshot. Yields the
/// pattern stream generateWorkload() would materialize, for any length,
/// in O(1) memory.
class GeneratedPatternSource final : public PatternSource {
 public:
  explicit GeneratedPatternSource(GeneratedSequenceConfig config)
      : config_(std::move(config)), rng_(config_.rng) {}

  const std::vector<NodeId>& outputs() const override {
    return config_.outputs;
  }
  std::uint64_t numPatterns() const override { return config_.numPatterns; }
  bool next(Pattern& out) override;
  void rewind() override {
    rng_ = config_.rng;
    next_ = 0;
  }

 private:
  GeneratedSequenceConfig config_;
  Rng rng_;
  std::uint64_t next_ = 0;
};

/// Streams a sequence file in the text format of patterns/sequence_io.hpp.
/// The header (outputs and, if present, the 64-bit `patterns N` count) is
/// parsed at construction; without a declared count the file is pre-scanned
/// once to count patterns. rewind() reopens the file.
class FilePatternSource final : public PatternSource {
 public:
  /// Throws Error on I/O failure, malformed header, an empty pattern list
  /// or a declared count that disagrees with the file's actual patterns.
  FilePatternSource(const Network& net, std::string path);

  const std::vector<NodeId>& outputs() const override { return outputs_; }
  std::uint64_t numPatterns() const override { return numPatterns_; }
  bool next(Pattern& out) override;
  void rewind() override { reopen(); }

 private:
  void reopen();

  const Network* net_;
  std::string path_;
  std::ifstream in_;
  std::unique_ptr<SequenceStreamReader> reader_;
  std::vector<NodeId> outputs_;
  std::uint64_t numPatterns_ = 0;
};

}  // namespace fmossim
