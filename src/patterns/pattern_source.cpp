#include "patterns/pattern_source.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace fmossim {

std::uint64_t PatternSource::fingerprint() {
  if (fingerprint_.has_value()) return *fingerprint_;
  // Identical fold to GoodMachineCheckpoint::fingerprint() over the
  // materialized equivalent: count first, then per-pattern structure, then
  // outputs. One full streaming pass, bracketed by rewinds.
  rewind();
  std::uint64_t h = kFnvOffsetBasis;
  fnvMix(h, numPatterns());
  Pattern p;
  while (next(p)) {
    fnvMix(h, p.settings.size());
    for (const InputSetting& s : p.settings) {
      fnvMix(h, s.assignments.size());
      for (const auto& [n, v] : s.assignments) {
        fnvMix(h, (std::uint64_t(n.value) << 8) | std::uint64_t(v));
      }
    }
  }
  fnvMix(h, outputs().size());
  for (const NodeId out : outputs()) fnvMix(h, out.value);
  rewind();
  fingerprint_ = h;
  return h;
}

bool MaterializedPatternSource::next(Pattern& out) {
  if (next_ >= seq_->size()) return false;
  out = (*seq_)[next_++];
  return true;
}

namespace {

State randomDefinite(Rng& rng) {
  return rng.below(2) == 0 ? State::S0 : State::S1;
}

State randomInputValue(Rng& rng, double xProbability) {
  return rng.chance(xProbability) ? State::SX : randomDefinite(rng);
}

}  // namespace

bool GeneratedPatternSource::next(Pattern& out) {
  if (next_ >= config_.numPatterns) return false;
  const std::uint64_t p = next_++;
  // The sequence rule, verbatim from the generator: the first setting
  // powers the rails and drives every data input to a definite value;
  // later settings flip random input subsets. Draw order is load-bearing —
  // generateWorkload() materializes through this exact code, so streamed
  // and materialized sequences agree bit for bit.
  out.label = "p" + std::to_string(p);
  out.settings.clear();
  const std::uint32_t numSettings =
      1 + static_cast<std::uint32_t>(
              rng_.below(std::max(1u, config_.maxSettingsPerPattern)));
  for (std::uint32_t s = 0; s < numSettings; ++s) {
    InputSetting st;
    if (p == 0 && s == 0) {
      st.set(config_.vdd, State::S1);
      st.set(config_.gnd, State::S0);
      for (const NodeId in : config_.inputs) {
        st.set(in, randomDefinite(rng_));
      }
    } else {
      for (const NodeId in : config_.inputs) {
        if (rng_.chance(0.4)) {
          st.set(in, randomInputValue(rng_, config_.xProbability));
        }
      }
      if (st.assignments.empty()) {
        // Two sequenced draws: argument evaluation order is unspecified,
        // and seed reproducibility must not depend on the compiler.
        const NodeId in = rng_.pick(config_.inputs);
        st.set(in, randomInputValue(rng_, config_.xProbability));
      }
    }
    out.settings.push_back(std::move(st));
  }
  return true;
}

FilePatternSource::FilePatternSource(const Network& net, std::string path)
    : net_(&net), path_(std::move(path)) {
  reopen();
  outputs_ = reader_->outputs();
  if (outputs_.empty()) {
    throw Error("sequence file '" + path_ + "' declares no outputs");
  }
  if (reader_->declaredPatterns().has_value()) {
    numPatterns_ = *reader_->declaredPatterns();
  } else {
    // No declared count: one counting pre-scan, then reopen.
    Pattern scratch;
    while (reader_->next(scratch)) {
    }
    numPatterns_ = reader_->patternsRead();
    reopen();
  }
  if (numPatterns_ == 0) {
    throw Error("sequence file '" + path_ + "' contains no patterns");
  }
}

void FilePatternSource::reopen() {
  reader_.reset();
  in_ = std::ifstream(path_);
  if (!in_) {
    throw Error("cannot open sequence file '" + path_ + "'");
  }
  reader_ = std::make_unique<SequenceStreamReader>(*net_, in_);
}

bool FilePatternSource::next(Pattern& out) { return reader_->next(out); }

}  // namespace fmossim
