#include "patterns/pattern.hpp"

namespace fmossim {

void TestSequence::append(const TestSequence& other) {
  if (outputs_.empty()) {
    outputs_ = other.outputs_;
  } else if (!other.outputs_.empty() && other.outputs_ != outputs_) {
    throw Error("TestSequence::append: output sets differ");
  }
  patterns_.insert(patterns_.end(), other.patterns_.begin(),
                   other.patterns_.end());
}

std::uint64_t TestSequence::totalSettings() const {
  std::uint64_t total = 0;
  for (const auto& p : patterns_) total += p.settings.size();
  return total;
}

}  // namespace fmossim
