#include "patterns/sequence_io.hpp"

#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace fmossim {

namespace {

[[noreturn]] void fail(std::size_t lineNo, const std::string& msg) {
  throw Error(format("sequence line %zu: %s", lineNo, msg.c_str()));
}

}  // namespace

TestSequence parseSequence(const Network& net, const std::string& text) {
  TestSequence seq;
  Pattern current;
  bool inPattern = false;

  const auto flush = [&]() {
    if (inPattern) {
      if (current.settings.empty()) {
        throw Error("sequence: pattern '" + current.label + "' has no settings");
      }
      seq.addPattern(std::move(current));
      current = Pattern{};
    }
  };

  std::istringstream stream(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(stream, line)) {
    ++lineNo;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto tok = splitWhitespace(trimmed);
    const std::string kind = toUpper(tok[0]);

    if (kind == "OUTPUTS" || kind == "OUTPUT") {
      if (tok.size() < 2) fail(lineNo, "outputs requires at least one node");
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const NodeId n = net.findNode(std::string(tok[i]));
        if (!n.valid()) fail(lineNo, "unknown node '" + std::string(tok[i]) + "'");
        seq.addOutput(n);
      }
    } else if (kind == "PATTERN") {
      flush();
      inPattern = true;
      current.label = tok.size() > 1 ? std::string(tok[1]) : "";
    } else if (kind == "SET") {
      if (!inPattern) fail(lineNo, "'set' outside a pattern");
      if (tok.size() < 2) fail(lineNo, "set requires assignments");
      InputSetting setting;
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const auto parts = split(tok[i], '=');
        if (parts.size() != 2 || parts[0].empty() || parts[1].size() != 1) {
          fail(lineNo, "malformed assignment '" + std::string(tok[i]) +
                           "' (expected name=0|1|X)");
        }
        const NodeId n = net.findNode(std::string(parts[0]));
        if (!n.valid()) fail(lineNo, "unknown node '" + std::string(parts[0]) + "'");
        if (!net.isInput(n)) {
          fail(lineNo, "'" + std::string(parts[0]) + "' is not an input node");
        }
        State v;
        try {
          v = stateFromChar(parts[1][0]);
        } catch (const Error&) {
          fail(lineNo, "invalid state '" + std::string(parts[1]) + "'");
        }
        setting.set(n, v);
      }
      current.settings.push_back(std::move(setting));
    } else {
      fail(lineNo, "unknown directive '" + std::string(tok[0]) + "'");
    }
  }
  flush();
  if (seq.empty()) {
    throw Error("sequence contains no patterns");
  }
  if (seq.outputs().empty()) {
    throw Error("sequence declares no outputs");
  }
  return seq;
}

TestSequence loadSequenceFile(const Network& net, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open sequence file '" + path + "'");
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parseSequence(net, ss.str());
}

std::string writeSequence(const Network& net, const TestSequence& seq) {
  std::string out = "# written by fmossim\noutputs";
  for (const NodeId n : seq.outputs()) {
    out += ' ';
    out += net.node(n).name;
  }
  out += '\n';
  for (std::uint32_t i = 0; i < seq.size(); ++i) {
    const Pattern& p = seq[i];
    out += "pattern";
    if (!p.label.empty()) out += ' ' + p.label;
    out += '\n';
    for (const InputSetting& s : p.settings) {
      out += "  set";
      for (const auto& [n, v] : s.assignments) {
        out += ' ' + net.node(n).name + '=' + stateChar(v);
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace fmossim
