#include "patterns/sequence_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/strings.hpp"

namespace fmossim {

namespace {

[[noreturn]] void fail(std::size_t lineNo, const std::string& msg) {
  throw Error(format("sequence line %zu: %s", lineNo, msg.c_str()));
}

}  // namespace

TestSequence parseSequence(const Network& net, const std::string& text) {
  TestSequence seq;
  Pattern current;
  bool inPattern = false;

  const auto flush = [&]() {
    if (inPattern) {
      if (current.settings.empty()) {
        throw Error("sequence: pattern '" + current.label + "' has no settings");
      }
      seq.addPattern(std::move(current));
      current = Pattern{};
    }
  };

  std::istringstream stream(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(stream, line)) {
    ++lineNo;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto tok = splitWhitespace(trimmed);
    const std::string kind = toUpper(tok[0]);

    if (kind == "OUTPUTS" || kind == "OUTPUT") {
      if (tok.size() < 2) fail(lineNo, "outputs requires at least one node");
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const NodeId n = net.findNode(std::string(tok[i]));
        if (!n.valid()) fail(lineNo, "unknown node '" + std::string(tok[i]) + "'");
        seq.addOutput(n);
      }
    } else if (kind == "PATTERN") {
      if (tok.size() > 2) {
        fail(lineNo, "pattern takes at most one label token");
      }
      flush();
      inPattern = true;
      current.label = tok.size() > 1 ? std::string(tok[1]) : "";
    } else if (kind == "SET") {
      if (!inPattern) fail(lineNo, "'set' outside a pattern");
      if (tok.size() < 2) fail(lineNo, "set requires assignments");
      InputSetting setting;
      for (std::size_t i = 1; i < tok.size(); ++i) {
        const auto parts = split(tok[i], '=');
        if (parts.size() != 2 || parts[0].empty() || parts[1].size() != 1) {
          fail(lineNo, "malformed assignment '" + std::string(tok[i]) +
                           "' (expected name=0|1|X)");
        }
        const NodeId n = net.findNode(std::string(parts[0]));
        if (!n.valid()) fail(lineNo, "unknown node '" + std::string(parts[0]) + "'");
        if (!net.isInput(n)) {
          fail(lineNo, "'" + std::string(parts[0]) + "' is not an input node");
        }
        State v;
        try {
          v = stateFromChar(parts[1][0]);
        } catch (const Error&) {
          fail(lineNo, "invalid state '" + std::string(parts[1]) + "'");
        }
        setting.set(n, v);
      }
      current.settings.push_back(std::move(setting));
    } else {
      fail(lineNo, "unknown directive '" + std::string(tok[0]) + "'");
    }
  }
  flush();
  if (seq.empty()) {
    throw Error("sequence contains no patterns");
  }
  if (seq.outputs().empty()) {
    throw Error("sequence declares no outputs");
  }
  return seq;
}

TestSequence loadSequenceFile(const Network& net, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open sequence file '" + path + "'");
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parseSequence(net, ss.str());
}

namespace {

/// A single token the text format can carry losslessly: non-empty and free
/// of whitespace (the token separator). '#' only starts a comment at the
/// beginning of a line and '=' only separates inside assignments, so both
/// are fine mid-token; assignment node names additionally exclude '='.
bool representableToken(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

std::string writeSequence(const Network& net, const TestSequence& seq) {
  // Validate representability up front so that writeSequence(parseSequence())
  // and parseSequence(writeSequence()) are exact inverses: anything emitted
  // here parses back to an equivalent sequence, and anything the format
  // cannot carry (a sequence parseSequence could never have produced) is an
  // error instead of silently emitting unparseable or lossy text.
  if (seq.empty()) throw Error("writeSequence: sequence has no patterns");
  if (seq.outputs().empty()) throw Error("writeSequence: sequence has no outputs");
  const auto checkName = [&](NodeId n, bool assignment) -> const std::string& {
    const std::string& name = net.node(n).name;
    if (!representableToken(name) ||
        (assignment && name.find('=') != std::string::npos)) {
      throw Error("writeSequence: node name '" + name +
                  "' is not representable in the sequence format");
    }
    return name;
  };

  std::string out = "# written by fmossim\noutputs";
  for (const NodeId n : seq.outputs()) {
    out += ' ';
    out += checkName(n, /*assignment=*/false);
  }
  out += '\n';
  for (std::uint32_t i = 0; i < seq.size(); ++i) {
    const Pattern& p = seq[i];
    if (p.settings.empty()) {
      throw Error("writeSequence: pattern '" + p.label + "' has no settings");
    }
    if (!p.label.empty() && !representableToken(p.label)) {
      throw Error("writeSequence: pattern label '" + p.label +
                  "' is not representable (must be one token)");
    }
    out += "pattern";
    if (!p.label.empty()) out += ' ' + p.label;
    out += '\n';
    for (const InputSetting& s : p.settings) {
      if (s.assignments.empty()) {
        throw Error("writeSequence: pattern '" + p.label +
                    "' has an empty input setting");
      }
      out += "  set";
      for (const auto& [n, v] : s.assignments) {
        if (!net.isInput(n)) {
          // parseSequence rejects assignments to non-input nodes, so the
          // writer must too (exact-inverse contract).
          throw Error("writeSequence: assignment target '" +
                      net.node(n).name + "' is not an input node");
        }
        out += ' ' + checkName(n, /*assignment=*/true) + '=' + stateChar(v);
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace fmossim
