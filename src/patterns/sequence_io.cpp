#include "patterns/sequence_io.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/strings.hpp"

namespace fmossim {

namespace {

[[noreturn]] void fail(std::size_t lineNo, const std::string& msg) {
  throw Error(format("sequence line %zu: %s", lineNo, msg.c_str()));
}

/// Strict 64-bit count parse: digits only, overflow rejected (no silent
/// stoul truncation — a declared count past 2^64 is malformed, not wrapped).
std::uint64_t parseCount(const std::string& tok, std::size_t lineNo) {
  if (tok.empty()) fail(lineNo, "patterns requires a count");
  std::uint64_t v = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') {
      fail(lineNo, "malformed pattern count '" + tok + "'");
    }
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) {
      fail(lineNo, "pattern count '" + tok + "' overflows 64 bits");
    }
    v = v * 10 + d;
  }
  return v;
}

/// Parses the assignments of a `set` line into an InputSetting.
InputSetting parseSetLine(const Network& net,
                          const std::vector<std::string>& tok,
                          std::size_t lineNo) {
  if (tok.size() < 2) fail(lineNo, "set requires assignments");
  InputSetting setting;
  for (std::size_t i = 1; i < tok.size(); ++i) {
    const auto parts = split(tok[i], '=');
    if (parts.size() != 2 || parts[0].empty() || parts[1].size() != 1) {
      fail(lineNo, "malformed assignment '" + std::string(tok[i]) +
                       "' (expected name=0|1|X)");
    }
    const NodeId n = net.findNode(std::string(parts[0]));
    if (!n.valid()) fail(lineNo, "unknown node '" + std::string(parts[0]) + "'");
    if (!net.isInput(n)) {
      fail(lineNo, "'" + std::string(parts[0]) + "' is not an input node");
    }
    State v;
    try {
      v = stateFromChar(parts[1][0]);
    } catch (const Error&) {
      fail(lineNo, "invalid state '" + std::string(parts[1]) + "'");
    }
    setting.set(n, v);
  }
  return setting;
}

/// Tokenizes a line into owning strings (the views from splitWhitespace
/// would dangle past the caller's line buffer).
std::vector<std::string> toTokens(std::string_view s) {
  std::vector<std::string> tok;
  for (const std::string_view v : splitWhitespace(s)) tok.emplace_back(v);
  return tok;
}

std::vector<NodeId> parseOutputsLine(const Network& net,
                                     const std::vector<std::string>& tok,
                                     std::size_t lineNo) {
  if (tok.size() < 2) fail(lineNo, "outputs requires at least one node");
  std::vector<NodeId> out;
  out.reserve(tok.size() - 1);
  for (std::size_t i = 1; i < tok.size(); ++i) {
    const NodeId n = net.findNode(std::string(tok[i]));
    if (!n.valid()) fail(lineNo, "unknown node '" + std::string(tok[i]) + "'");
    out.push_back(n);
  }
  return out;
}

}  // namespace

TestSequence parseSequence(const Network& net, const std::string& text) {
  TestSequence seq;
  Pattern current;
  bool inPattern = false;
  std::optional<std::uint64_t> declared;

  const auto flush = [&]() {
    if (inPattern) {
      if (current.settings.empty()) {
        throw Error("sequence: pattern '" + current.label + "' has no settings");
      }
      seq.addPattern(std::move(current));
      current = Pattern{};
    }
  };

  std::istringstream stream(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(stream, line)) {
    ++lineNo;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto tok = toTokens(trimmed);
    const std::string kind = toUpper(tok[0]);

    if (kind == "OUTPUTS" || kind == "OUTPUT") {
      for (const NodeId n : parseOutputsLine(net, tok, lineNo)) {
        seq.addOutput(n);
      }
    } else if (kind == "PATTERNS") {
      if (tok.size() != 2) fail(lineNo, "patterns takes exactly one count");
      if (declared.has_value()) fail(lineNo, "duplicate patterns directive");
      declared = parseCount(std::string(tok[1]), lineNo);
    } else if (kind == "PATTERN") {
      if (tok.size() > 2) {
        fail(lineNo, "pattern takes at most one label token");
      }
      flush();
      inPattern = true;
      current.label = tok.size() > 1 ? std::string(tok[1]) : "";
    } else if (kind == "SET") {
      if (!inPattern) fail(lineNo, "'set' outside a pattern");
      current.settings.push_back(parseSetLine(net, tok, lineNo));
    } else {
      fail(lineNo, "unknown directive '" + std::string(tok[0]) + "'");
    }
  }
  flush();
  if (seq.empty()) {
    throw Error("sequence contains no patterns");
  }
  if (seq.outputs().empty()) {
    throw Error("sequence declares no outputs");
  }
  if (declared.has_value() && *declared != seq.size()) {
    throw Error(format(
        "sequence declares %llu patterns but contains %u",
        static_cast<unsigned long long>(*declared), seq.size()));
  }
  return seq;
}

TestSequence loadSequenceFile(const Network& net, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open sequence file '" + path + "'");
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parseSequence(net, ss.str());
}

// ------------------------------------------------------------- streaming ---

SequenceStreamReader::SequenceStreamReader(const Network& net,
                                           std::istream& in)
    : net_(&net), in_(&in) {
  // Header: everything up to the first pattern directive.
  std::vector<std::string> tok;
  while (nextLine(tok)) {
    const std::string kind = toUpper(tok[0]);
    if (kind == "OUTPUTS" || kind == "OUTPUT") {
      for (const NodeId n : parseOutputsLine(*net_, tok, lineNo_)) {
        outputs_.push_back(n);
      }
    } else if (kind == "PATTERNS") {
      if (tok.size() != 2) fail(lineNo_, "patterns takes exactly one count");
      if (declared_.has_value()) fail(lineNo_, "duplicate patterns directive");
      declared_ = parseCount(tok[1], lineNo_);
    } else if (kind == "PATTERN") {
      if (tok.size() > 2) fail(lineNo_, "pattern takes at most one label token");
      pendingLabel_ = tok.size() > 1 ? tok[1] : "";
      break;
    } else if (kind == "SET") {
      fail(lineNo_, "'set' outside a pattern");
    } else {
      fail(lineNo_, "unknown directive '" + tok[0] + "'");
    }
  }
  if (!pendingLabel_.has_value()) done_ = true;
}

bool SequenceStreamReader::nextLine(std::vector<std::string>& tok) {
  std::string line;
  while (std::getline(*in_, line)) {
    ++lineNo_;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    tok = toTokens(trimmed);
    return true;
  }
  return false;
}

bool SequenceStreamReader::next(Pattern& out) {
  if (done_) {
    if (declared_.has_value() && *declared_ != read_) {
      throw Error(format(
          "sequence declares %llu patterns but contains %llu",
          static_cast<unsigned long long>(*declared_),
          static_cast<unsigned long long>(read_)));
    }
    return false;
  }
  if (declared_.has_value() && read_ >= *declared_) {
    fail(lineNo_, format("more patterns than the declared %llu",
                         static_cast<unsigned long long>(*declared_)));
  }
  out.label = std::move(*pendingLabel_);
  out.settings.clear();
  pendingLabel_.reset();

  std::vector<std::string> tok;
  while (nextLine(tok)) {
    const std::string kind = toUpper(tok[0]);
    if (kind == "SET") {
      out.settings.push_back(parseSetLine(*net_, tok, lineNo_));
    } else if (kind == "PATTERN") {
      if (tok.size() > 2) fail(lineNo_, "pattern takes at most one label token");
      pendingLabel_ = tok.size() > 1 ? tok[1] : "";
      break;
    } else if (kind == "OUTPUTS" || kind == "OUTPUT" || kind == "PATTERNS") {
      fail(lineNo_, "'" + tok[0] + "' must precede the first pattern");
    } else {
      fail(lineNo_, "unknown directive '" + tok[0] + "'");
    }
  }
  if (!pendingLabel_.has_value()) done_ = true;
  if (out.settings.empty()) {
    throw Error("sequence: pattern '" + out.label + "' has no settings");
  }
  ++read_;
  return true;
}

namespace {

/// A single token the text format can carry losslessly: non-empty and free
/// of whitespace (the token separator). '#' only starts a comment at the
/// beginning of a line and '=' only separates inside assignments, so both
/// are fine mid-token; assignment node names additionally exclude '='.
bool representableToken(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

const std::string& checkedName(const Network& net, NodeId n, bool assignment) {
  const std::string& name = net.node(n).name;
  if (!representableToken(name) ||
      (assignment && name.find('=') != std::string::npos)) {
    throw Error("writeSequence: node name '" + name +
                "' is not representable in the sequence format");
  }
  return name;
}

}  // namespace

SequenceStreamWriter::SequenceStreamWriter(const Network& net,
                                           std::ostream& out,
                                           const std::vector<NodeId>& outputs,
                                           std::uint64_t numPatterns)
    : net_(&net), out_(&out), declared_(numPatterns) {
  // Validate the header up front so that emitted text always reparses:
  // anything the format cannot carry is an error here, never lossy output.
  if (numPatterns == 0) throw Error("writeSequence: sequence has no patterns");
  if (outputs.empty()) throw Error("writeSequence: sequence has no outputs");
  std::string header = "# written by fmossim\noutputs";
  for (const NodeId n : outputs) {
    header += ' ';
    header += checkedName(*net_, n, /*assignment=*/false);
  }
  header += "\npatterns " + std::to_string(numPatterns) + '\n';
  *out_ << header;
}

void SequenceStreamWriter::write(const Pattern& p) {
  if (written_ >= declared_) {
    throw Error(format("writeSequence: more than the declared %llu patterns",
                       static_cast<unsigned long long>(declared_)));
  }
  if (p.settings.empty()) {
    throw Error("writeSequence: pattern '" + p.label + "' has no settings");
  }
  if (!p.label.empty() && !representableToken(p.label)) {
    throw Error("writeSequence: pattern label '" + p.label +
                "' is not representable (must be one token)");
  }
  std::string text = "pattern";
  if (!p.label.empty()) text += ' ' + p.label;
  text += '\n';
  for (const InputSetting& s : p.settings) {
    if (s.assignments.empty()) {
      throw Error("writeSequence: pattern '" + p.label +
                  "' has an empty input setting");
    }
    text += "  set";
    for (const auto& [n, v] : s.assignments) {
      if (!net_->isInput(n)) {
        // parseSequence rejects assignments to non-input nodes, so the
        // writer must too (exact-inverse contract).
        throw Error("writeSequence: assignment target '" + net_->node(n).name +
                    "' is not an input node");
      }
      text += ' ' + checkedName(*net_, n, /*assignment=*/true) + '=' +
              stateChar(v);
    }
    text += '\n';
  }
  *out_ << text;
  ++written_;
}

void SequenceStreamWriter::finish() {
  if (written_ != declared_) {
    throw Error(format(
        "writeSequence: declared %llu patterns but wrote %llu",
        static_cast<unsigned long long>(declared_),
        static_cast<unsigned long long>(written_)));
  }
  out_->flush();
}

std::string writeSequence(const Network& net, const TestSequence& seq) {
  if (seq.empty()) throw Error("writeSequence: sequence has no patterns");
  std::ostringstream out;
  SequenceStreamWriter writer(net, out, seq.outputs(), seq.size());
  for (std::uint32_t i = 0; i < seq.size(); ++i) writer.write(seq[i]);
  writer.finish();
  return out.str();
}

}  // namespace fmossim
