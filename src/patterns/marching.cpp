#include "patterns/marching.hpp"

#include "patterns/ram_ops.hpp"

namespace fmossim {

TestSequence ramControlTests(const RamCircuit& ram) {
  const unsigned last = ram.config.words() - 1;
  const std::vector<RamOp> ops = {
      RamOp::readOp(0),                  // exercise a full clock cycle
      RamOp::writeOp(0, State::S1),
      RamOp::readOp(0),                  // expect 1
      RamOp::writeOp(last, State::S0),
      RamOp::readOp(last),               // expect 0
      RamOp::readOp(0),                  // retention across other accesses
      RamOp::writeOp(0, State::S0),
  };
  return ramOpSequence(ram, ops);
}

TestSequence ramMarch(const RamCircuit& ram,
                      const std::vector<unsigned>& addresses) {
  std::vector<RamOp> ops;
  ops.reserve(addresses.size() * 5);
  for (const unsigned a : addresses) {
    ops.push_back(RamOp::writeOp(a, State::S0));  // up(w0)
  }
  for (const unsigned a : addresses) {
    ops.push_back(RamOp::readOp(a));              // up(r0, w1)
    ops.push_back(RamOp::writeOp(a, State::S1));
  }
  for (const unsigned a : addresses) {
    ops.push_back(RamOp::readOp(a));              // up(r1, w0)
    ops.push_back(RamOp::writeOp(a, State::S0));
  }
  return ramOpSequence(ram, ops);
}

TestSequence ramRowMarch(const RamCircuit& ram) {
  std::vector<unsigned> addrs;
  for (unsigned r = 0; r < ram.config.rows; ++r) {
    addrs.push_back(r * ram.config.cols);
  }
  return ramMarch(ram, addrs);
}

TestSequence ramColMarch(const RamCircuit& ram) {
  std::vector<unsigned> addrs;
  for (unsigned c = 0; c < ram.config.cols; ++c) {
    addrs.push_back(c);
  }
  return ramMarch(ram, addrs);
}

TestSequence ramArrayMarch(const RamCircuit& ram) {
  std::vector<unsigned> addrs;
  for (unsigned a = 0; a < ram.config.words(); ++a) {
    addrs.push_back(a);
  }
  return ramMarch(ram, addrs);
}

TestSequence ramTestSequence1(const RamCircuit& ram) {
  TestSequence seq = ramControlTests(ram);
  seq.append(ramRowMarch(ram));
  seq.append(ramColMarch(ram));
  seq.append(ramArrayMarch(ram));
  return seq;
}

TestSequence ramTestSequence2(const RamCircuit& ram) {
  TestSequence seq = ramControlTests(ram);
  seq.append(ramArrayMarch(ram));
  return seq;
}

}  // namespace fmossim
