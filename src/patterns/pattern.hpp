// Test pattern representation.
//
// A *pattern* in the paper's sense is one logical test step — e.g. one RAM
// read or write — and "actually represents a sequence of 6 input settings to
// cycle the clocks" (paper §5). An InputSetting is one simultaneous batch of
// input assignments followed by a settle; a Pattern is the ordered list of
// its settings; a TestSequence is the ordered list of patterns plus the set
// of observed output nodes used for fault detection.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "switch/network.hpp"

namespace fmossim {

/// One batch of simultaneous input assignments.
struct InputSetting {
  std::vector<std::pair<NodeId, State>> assignments;

  void set(NodeId n, State s) { assignments.emplace_back(n, s); }
  std::span<const std::pair<NodeId, State>> span() const { return assignments; }
};

/// One test pattern (e.g. one RAM operation): a sequence of input settings.
struct Pattern {
  std::vector<InputSetting> settings;
  std::string label;
};

/// A full test: patterns plus the observed primary outputs.
class TestSequence {
 public:
  TestSequence() = default;

  void addPattern(Pattern p) { patterns_.push_back(std::move(p)); }
  void addOutput(NodeId n) { outputs_.push_back(n); }
  void setOutputs(std::vector<NodeId> outs) { outputs_ = std::move(outs); }

  /// Appends another sequence's patterns (outputs must agree or be empty).
  void append(const TestSequence& other);

  std::uint32_t size() const { return static_cast<std::uint32_t>(patterns_.size()); }
  bool empty() const { return patterns_.empty(); }
  const Pattern& operator[](std::uint32_t i) const {
    FMOSSIM_ASSERT(i < patterns_.size(), "pattern index out of range");
    return patterns_[i];
  }
  const std::vector<Pattern>& patterns() const { return patterns_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  /// Total number of input settings across all patterns.
  std::uint64_t totalSettings() const;

 private:
  std::vector<Pattern> patterns_;
  std::vector<NodeId> outputs_;
};

}  // namespace fmossim
