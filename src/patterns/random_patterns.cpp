#include "patterns/random_patterns.hpp"

namespace fmossim {

TestSequence randomPatterns(const std::vector<NodeId>& inputs,
                            const RandomPatternOptions& options, Rng& rng) {
  TestSequence seq;
  for (std::uint32_t p = 0; p < options.numPatterns; ++p) {
    Pattern pat;
    pat.label = "rand." + std::to_string(p);
    for (std::uint32_t s = 0; s < options.settingsPerPattern; ++s) {
      InputSetting setting;
      for (const NodeId in : inputs) {
        State v;
        if (options.xProbability > 0.0 && rng.chance(options.xProbability)) {
          v = State::SX;
        } else {
          v = rng.chance(0.5) ? State::S1 : State::S0;
        }
        setting.set(in, v);
      }
      pat.settings.push_back(std::move(setting));
    }
    seq.addPattern(std::move(pat));
  }
  return seq;
}

}  // namespace fmossim
