#include "sched/detection_history.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fmossim::sched {

namespace {

/// Sidecar header line. Versioned so a future layout change invalidates old
/// files instead of misreading them (loads fall back to no-history).
constexpr const char* kMagic = "fmossim-history";
constexpr unsigned kVersion = 1;

}  // namespace

bool saveHistoryFile(const std::string& path,
                     const DetectionHistory& history) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok =
      std::fprintf(f, "%s v%u\nfaults %016" PRIx64 " %zu\n", kMagic, kVersion,
                   history.faultsFingerprint,
                   history.detectedAtPattern.size()) > 0;
  for (const std::int32_t d : history.detectedAtPattern) {
    if (!ok) break;
    ok = std::fprintf(f, "%" PRId32 "\n", d) > 0;
  }
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

std::optional<DetectionHistory> loadHistoryFile(
    const std::string& path, std::uint64_t expectedFingerprint) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  DetectionHistory h;
  char magic[32];
  unsigned version = 0;
  std::size_t count = 0;
  bool ok = std::fscanf(f, "%31s v%u", magic, &version) == 2 &&
            std::strcmp(magic, kMagic) == 0 && version == kVersion;
  ok = ok && std::fscanf(f, " faults %" SCNx64 " %zu", &h.faultsFingerprint,
                         &count) == 2;
  // Fingerprint mismatch means the file describes a different fault
  // universe: stale history must not shape this run's schedule.
  ok = ok &&
       (expectedFingerprint == 0 || h.faultsFingerprint == expectedFingerprint);
  if (ok) {
    h.detectedAtPattern.reserve(count);
    for (std::size_t i = 0; i < count && ok; ++i) {
      std::int32_t d = 0;
      ok = std::fscanf(f, " %" SCNd32, &d) == 1 && d >= -1;
      h.detectedAtPattern.push_back(d);
    }
    // Strict tail: trailing garbage means a truncated or hand-damaged file.
    char extra[2];
    ok = ok && std::fscanf(f, " %1s", extra) != 1;
  }
  std::fclose(f);
  if (!ok) return std::nullopt;
  return h;
}

void HistoryStore::record(std::uint64_t faultsFingerprint,
                          std::vector<std::int32_t> detectedAtPattern) {
  auto entry = std::make_shared<DetectionHistory>();
  entry->faultsFingerprint = faultsFingerprint;
  entry->detectedAtPattern = std::move(detectedAtPattern);
  std::lock_guard<std::mutex> lock(mu_);
  entries_[faultsFingerprint] = std::move(entry);
}

std::shared_ptr<const DetectionHistory> HistoryStore::lookup(
    std::uint64_t faultsFingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(faultsFingerprint);
  return it == entries_.end() ? nullptr : it->second;
}

std::size_t HistoryStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace fmossim::sched
