/// \file
/// FaultSchedule — pluggable batch layout for sharded fault simulation.
///
/// The sharded runner used to hard-code its schedule: contiguous slices of
/// the global fault order, claimed in index order. That layout is an index
/// arithmetic detail, but *which faults run together* is the scaling lever
/// (the paper's Fig. 5/6 cost argument; ERASER and the batch-IVerilog work
/// in PAPERS.md both restructure batch composition, not the engine). This
/// layer makes the layout a first-class policy:
///
///   * **BatchPlan** — a permutation of the fault universe plus contiguous
///     slices into it (one per batch, in claim order) and per-batch
///     lane-window share hints. The runner gathers each batch's faults
///     through the permutation and merges detections back through it, so
///     every plan over the full universe yields bit-identical results —
///     detections, nodeEvals, maxAlive and per-pattern rows are all sums or
///     per-fault values invariant under reordering (faulty circuits never
///     interact). Only wall clock may change.
///
///   * **ContiguousSchedule** — the identity layout, byte-for-byte the old
///     behavior (the default policy; every other policy is gated
///     bit-identical against it by the scheduler matrix test and
///     `bench --check`).
///
///   * **HistorySchedule** — orders faults by a prior run's detection
///     pattern index (sched/detection_history). Under fault dropping a
///     batch replays only until its last live fault drops, so the contiguous
///     layout pays for the full sequence in *every* batch that happens to
///     contain one hard fault; sorting by detection index quarantines the
///     expensive tail (undetected faults sort last) into the fewest possible
///     batches and lets all the cheap batches exit early. Batches are
///     claimed longest-expected-first so the expensive tail cannot land on
///     the clock edge of a parallel run. Hint windows mark lane windows
///     whose faults share a detection class — historically-matching
///     candidates the lane matcher should keep trying to share instead of
///     backing off.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sched/detection_history.hpp"

namespace fmossim::sched {

/// Batch-layout policy selector (EngineOptions::schedule, CLI --schedule).
enum class SchedulePolicy : std::uint8_t {
  Contiguous,  ///< contiguous slices of the global fault order (default)
  History,     ///< detection-history layout (falls back to contiguous
               ///< until a matching history exists)
};

/// Stable lower-case policy name ("contiguous", "history") — used by CLI
/// parsing, bench row labels and the bench JSON schema.
const char* schedulePolicyName(SchedulePolicy policy);

/// Inverse of schedulePolicyName; nullopt for unknown text.
std::optional<SchedulePolicy> parseSchedulePolicy(const std::string& text);

/// A complete batch layout for one sharded run (see file comment).
struct BatchPlan {
  /// Permutation of [0, numFaults): order[k] is the global fault index at
  /// schedule position k. Empty means the identity permutation — the
  /// contiguous fast path, with no per-fault indirection anywhere.
  std::vector<std::uint32_t> order;
  /// Contiguous [begin, end) position ranges, one per batch, in claim
  /// order. Together they cover [0, numFaults) exactly; no batch is empty.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> slices;
  /// Per-batch share hints: hintWindows[b] lists the batch-local lane
  /// window indices (localIndex / laneWidth) whose faults the scheduler
  /// expects to form share groups. Forwarded to
  /// FsimOptions::shareHintWindows; may be shorter than slices (absent
  /// batches have no hints).
  std::vector<std::vector<std::uint32_t>> hintWindows;

  /// Global fault index at schedule position `pos`.
  std::uint32_t globalIndex(std::uint32_t pos) const {
    return order.empty() ? pos : order[pos];
  }
};

/// The contiguous batch boundaries (the layout ShardedRunner::makeBatches
/// has always produced): ascending, covering [0, numFaults), batchFaults > 0
/// fixed-size, 0 the auto schedule (~4 batches per worker, floored at 32
/// faults, rounded up to a laneWidth multiple so sharing windows never
/// straddle shard boundaries).
std::vector<std::pair<std::uint32_t, std::uint32_t>> contiguousBatches(
    std::uint32_t numFaults, unsigned jobs, std::uint32_t batchFaults,
    std::uint32_t laneWidth = 1);

/// Batch-layout policy: maps a fault universe and scheduling knobs to a
/// BatchPlan. Implementations must be pure (same inputs, same plan) so
/// sharded runs stay deterministic — workers race only for batch *claims*.
class FaultSchedule {
 public:
  virtual ~FaultSchedule() = default;
  /// Policy name for diagnostics (matches schedulePolicyName).
  virtual const char* name() const = 0;
  /// Builds the batch layout. `jobs` is the effective worker count the run
  /// will use (after the hardware cap), matching the old makeBatches call.
  virtual BatchPlan plan(std::uint32_t numFaults, unsigned jobs,
                         std::uint32_t batchFaults,
                         std::uint32_t laneWidth) const = 0;
};

/// The identity layout — bit-identical default policy (see file comment).
class ContiguousSchedule : public FaultSchedule {
 public:
  const char* name() const override { return "contiguous"; }
  BatchPlan plan(std::uint32_t numFaults, unsigned jobs,
                 std::uint32_t batchFaults,
                 std::uint32_t laneWidth) const override;
};

/// Detection-history layout (see file comment). With no history, or history
/// recorded for a different fault-list size, plans degrade to the
/// contiguous layout — history is advisory, never required.
class HistorySchedule : public FaultSchedule {
 public:
  explicit HistorySchedule(std::shared_ptr<const DetectionHistory> history)
      : history_(std::move(history)) {}
  const char* name() const override { return "history"; }
  BatchPlan plan(std::uint32_t numFaults, unsigned jobs,
                 std::uint32_t batchFaults,
                 std::uint32_t laneWidth) const override;

 private:
  std::shared_ptr<const DetectionHistory> history_;
};

/// Policy factory. `history` is consulted only by SchedulePolicy::History
/// (and may be null — the plan then falls back to contiguous).
std::unique_ptr<FaultSchedule> makeSchedule(
    SchedulePolicy policy, std::shared_ptr<const DetectionHistory> history);

}  // namespace fmossim::sched
