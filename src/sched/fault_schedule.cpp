#include "sched/fault_schedule.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace fmossim::sched {

const char* schedulePolicyName(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::Contiguous: return "contiguous";
    case SchedulePolicy::History: return "history";
  }
  return "unknown";
}

std::optional<SchedulePolicy> parseSchedulePolicy(const std::string& text) {
  if (text == "contiguous") return SchedulePolicy::Contiguous;
  if (text == "history") return SchedulePolicy::History;
  return std::nullopt;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> contiguousBatches(
    std::uint32_t numFaults, unsigned jobs, std::uint32_t batchFaults,
    std::uint32_t laneWidth) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> batches;
  if (numFaults == 0) return batches;
  jobs = std::max(1u, jobs);
  laneWidth = std::max(1u, laneWidth);
  // Auto schedule: ~4 batches per worker, floored at 32 faults so the
  // per-batch checkpoint-replay overhead stays amortized. Per-fault cost is
  // wildly non-uniform under dropping (a batch whose faults all drop early
  // exits almost immediately; one undetected fault keeps its batch running
  // the whole sequence), so the queue needs several times more batches than
  // workers for stealing to level the load — measured on RAM256, this
  // schedule more than halves the critical path vs. one-slice-per-worker at
  // a few percent of added total work.
  std::uint32_t size =
      batchFaults > 0
          ? batchFaults
          : std::max<std::uint32_t>(32,
                                    (numFaults + 4 * jobs - 1) / (4 * jobs));
  // Feed whole lane windows per shard: each batch engine renumbers its
  // faults from 1, so a batch size that is a laneWidth multiple keeps
  // sharing windows from straddling shard boundaries.
  size = (size + laneWidth - 1) / laneWidth * laneWidth;
  std::uint32_t begin = 0;
  while (begin < numFaults) {
    const std::uint32_t end = std::min(numFaults, begin + size);
    batches.emplace_back(begin, end);
    begin = end;
  }
  return batches;
}

BatchPlan ContiguousSchedule::plan(std::uint32_t numFaults, unsigned jobs,
                                   std::uint32_t batchFaults,
                                   std::uint32_t laneWidth) const {
  BatchPlan p;  // empty order = identity, no hints
  p.slices = contiguousBatches(numFaults, jobs, batchFaults, laneWidth);
  return p;
}

namespace {

/// Sort key: detection pattern index, with undetected (-1) past every real
/// index — the most expensive faults land together at the end of the order.
std::int64_t detectionKey(const DetectionHistory& h, std::uint32_t fault) {
  const std::int32_t d = h.detectedAtPattern[fault];
  return d < 0 ? std::numeric_limits<std::int64_t>::max() : d;
}

}  // namespace

BatchPlan HistorySchedule::plan(std::uint32_t numFaults, unsigned jobs,
                                std::uint32_t batchFaults,
                                std::uint32_t laneWidth) const {
  // History is advisory: none recorded (first run), or recorded for a
  // different universe size (the fingerprint gate upstream should prevent
  // this, but a size check keeps the plan safe regardless) — contiguous.
  if (history_ == nullptr ||
      history_->detectedAtPattern.size() != numFaults) {
    return ContiguousSchedule().plan(numFaults, jobs, batchFaults, laneWidth);
  }
  BatchPlan p;
  p.order.resize(numFaults);
  std::iota(p.order.begin(), p.order.end(), 0u);
  // Stable sort keeps the plan a pure function of the history (ties resolve
  // in global fault order), so concurrent workers always see one layout.
  const DetectionHistory& h = *history_;
  std::stable_sort(p.order.begin(), p.order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return detectionKey(h, a) < detectionKey(h, b);
                   });
  p.slices = contiguousBatches(numFaults, jobs, batchFaults, laneWidth);
  // Claim order: the sorted layout puts early-detected (cheap) batches
  // first, so reverse — the expensive tail batches are claimed first and
  // cheap batches fill the stealing queue behind them, the classic
  // longest-job-first makespan move.
  std::reverse(p.slices.begin(), p.slices.end());
  if (laneWidth > 1) {
    // Hint lane windows whose faults share one detection class: their
    // divergence lifetimes match, which is when share groups keep forming
    // phase after phase — the matcher should not back off on them.
    p.hintWindows.resize(p.slices.size());
    for (std::size_t b = 0; b < p.slices.size(); ++b) {
      const auto [begin, end] = p.slices[b];
      for (std::uint32_t w = 0; begin + w * laneWidth < end; ++w) {
        const std::uint32_t lo = begin + w * laneWidth;
        const std::uint32_t hi = std::min(end, lo + laneWidth);
        if (hi - lo < 2) continue;  // a singleton window has nothing to share
        const std::int64_t k0 = detectionKey(h, p.order[lo]);
        bool uniform = true;
        for (std::uint32_t i = lo + 1; i < hi && uniform; ++i) {
          uniform = detectionKey(h, p.order[i]) == k0;
        }
        if (uniform) p.hintWindows[b].push_back(w);
      }
    }
  }
  return p;
}

std::unique_ptr<FaultSchedule> makeSchedule(
    SchedulePolicy policy, std::shared_ptr<const DetectionHistory> history) {
  switch (policy) {
    case SchedulePolicy::Contiguous:
      return std::make_unique<ContiguousSchedule>();
    case SchedulePolicy::History:
      return std::make_unique<HistorySchedule>(std::move(history));
  }
  return std::make_unique<ContiguousSchedule>();
}

}  // namespace fmossim::sched
