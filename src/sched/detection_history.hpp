/// \file
/// Detection history — per-fault detection pattern indices from a prior run,
/// the input data for history-informed batch layouts (sched/fault_schedule).
///
/// Fault dropping makes per-fault cost wildly non-uniform: a fault detected
/// at pattern 3 costs almost nothing, while an undetected fault keeps its
/// batch replaying the whole sequence. Which faults are cheap and which are
/// expensive is not knowable up front — but it is *stable across runs* of
/// the same workload (detection indices are deterministic), so a prior run's
/// detection record is a perfect cost model for the next run's schedule.
///
/// Two carriers:
///
///   * **HistoryStore** — an in-memory, mutex-protected map from fault-list
///     fingerprint to the most recent detection record. Shared via
///     EngineOptions::historyStore the same way the checkpoint store is:
///     many engines/rows/requests holding the same store feed and consume
///     one history. The serve daemon hangs one store off its engine pool,
///     which is what gives it per-tenant history across requests (the
///     fingerprint key separates tenants' fault lists).
///
///   * **Sidecar file** — a small versioned text file keyed on the same
///     fingerprint, so history survives process restarts (CLI
///     `--history-file`). Loads are strict about shape but forgiving about
///     fate: a missing, malformed or differently-keyed file yields nullopt
///     and the scheduler falls back to the contiguous layout — history is a
///     performance hint, never a correctness input.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace fmossim::sched {

/// One recorded detection outcome of a fault-simulation run: for every fault
/// (global fault-list order) the index of the detecting pattern, or -1 if
/// the run left it undetected. Keyed on the fault-list content fingerprint
/// (faultListFingerprint) so stale history can never be applied to a
/// different fault universe.
struct DetectionHistory {
  std::uint64_t faultsFingerprint = 0;
  std::vector<std::int32_t> detectedAtPattern;

  bool empty() const { return detectedAtPattern.empty(); }
};

/// Saves `history` to `path` (overwriting). Returns false on I/O failure —
/// history is advisory, so callers report-and-continue rather than throw.
bool saveHistoryFile(const std::string& path, const DetectionHistory& history);

/// Loads a sidecar written by saveHistoryFile. Returns nullopt when the file
/// is missing, malformed, the wrong version, or keyed on a fingerprint other
/// than `expectedFingerprint` (pass 0 to accept any key — the round-trip
/// test and tools do).
std::optional<DetectionHistory> loadHistoryFile(
    const std::string& path, std::uint64_t expectedFingerprint = 0);

/// In-memory history cache shared across engines (see file comment).
/// Thread-safe: the serve daemon's pooled engines record and look up
/// concurrently. Lookups return an immutable snapshot — a concurrent
/// record() publishes a fresh entry rather than mutating a shared one.
class HistoryStore {
 public:
  /// Publishes the detection record of a finished run, replacing any prior
  /// entry for the same fault list.
  void record(std::uint64_t faultsFingerprint,
              std::vector<std::int32_t> detectedAtPattern);

  /// The most recent record for this fault list, or nullptr.
  std::shared_ptr<const DetectionHistory> lookup(
      std::uint64_t faultsFingerprint) const;

  /// Number of distinct fault lists with history (diagnostics/tests).
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const DetectionHistory>>
      entries_;
};

}  // namespace fmossim::sched
