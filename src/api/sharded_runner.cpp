#include "api/sharded_runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "api/engine.hpp"
#include "core/row_sink.hpp"
#include "patterns/pattern_source.hpp"
#include "util/timer.hpp"

namespace fmossim {

ShardedRunner::ShardedRunner(const Network& net, FaultList faults,
                             FsimOptions options, unsigned jobs,
                             std::uint32_t batchFaults,
                             std::shared_ptr<CheckpointStore> store,
                             std::size_t checkpointBudgetBytes,
                             sched::SchedulePolicy schedule,
                             std::shared_ptr<sched::HistoryStore> history,
                             std::string historyFile)
    : net_(net),
      faults_(std::move(faults)),
      options_(options),
      batchFaults_(batchFaults),
      store_(std::move(store)),
      ownsStore_(store_ == nullptr),
      schedule_(schedule),
      history_(std::move(history)),
      historyFile_(std::move(historyFile)),
      faultsFp_(faultListFingerprint(faults_)) {
  jobs_ = std::max(1u, std::min(jobs, std::max(1u, faults_.size())));
  if (ownsStore_) {
    CheckpointStore::Options sopts;
    sopts.budgetBytes = checkpointBudgetBytes;
    store_ = std::make_shared<CheckpointStore>(sopts);
  }
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> ShardedRunner::makeBatches(
    std::uint32_t numFaults, unsigned jobs, std::uint32_t batchFaults,
    std::uint32_t laneWidth) {
  return sched::contiguousBatches(numFaults, jobs, batchFaults, laneWidth);
}

FaultSimResult mergeShardResults(
    const std::vector<FaultSimResult>& shardResults,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& slices,
    std::uint32_t numPatterns, const GoodMachineCheckpoint* good,
    const std::vector<std::uint32_t>* order) {
  FaultSimResult merged;
  std::uint32_t numFaults = 0;
  for (const auto& [begin, end] : slices) numFaults += end - begin;
  merged.numFaults = numFaults;
  merged.numPatterns = numPatterns;
  if (!shardResults.empty()) {
    // Every shard ran under the same options; the drop mode is uniform.
    merged.droppedDetected = shardResults.front().droppedDetected;
  }
  merged.detectedAtPattern.assign(numFaults, -1);

  merged.perPattern.resize(numPatterns);
  for (std::uint32_t pi = 0; pi < numPatterns; ++pi) {
    merged.perPattern[pi].index = pi;
  }

  for (std::size_t s = 0; s < shardResults.size(); ++s) {
    const FaultSimResult& r = shardResults[s];
    const auto [begin, end] = slices[s];
    // Re-index the shard-local fault order to the global one, through the
    // schedule's permutation when one is in effect.
    for (std::uint32_t i = 0; i < end - begin; ++i) {
      const std::uint32_t pos = begin + i;
      merged.detectedAtPattern[order == nullptr ? pos : (*order)[pos]] =
          r.detectedAtPattern[i];
    }
    merged.numDetected += r.numDetected;
    merged.potentialDetections += r.potentialDetections;
    // Without a checkpoint every shard simulates the same good circuit; keep
    // the first one's final states (the differential oracle cross-checks
    // them per backend).
    if (merged.finalGoodStates.empty()) {
      merged.finalGoodStates = r.finalGoodStates;
    }
    merged.totalNodeEvals += r.totalNodeEvals;
    // Engine time sums across batches (they overlap on the wall clock; the
    // caller stamps merged.totalSeconds with the real elapsed time).
    merged.totalCpuSeconds += r.totalCpuSeconds;
    // Alive counts never increase during a run, so every batch's peak is
    // its initial fault population and all the peaks coincide at sequence
    // start of the modeled single-engine simulation: the summed per-batch
    // peaks ARE that engine's peak, exactly — not an upper bound. (The
    // scheduler matrix test pins merged == jobs=1; if batches ever gain
    // mid-run fault injection this derivation, and the sum, must change.)
    merged.maxAlive += r.maxAlive;
    merged.finalRecords += r.finalRecords;
    for (std::uint32_t pi = 0; pi < numPatterns && pi < r.perPattern.size();
         ++pi) {
      PatternStat& row = merged.perPattern[pi];
      const PatternStat& src = r.perPattern[pi];
      row.seconds += src.seconds;
      row.nodeEvals += src.nodeEvals;
      row.newlyDetected += src.newlyDetected;
      row.aliveAfter += src.aliveAfter;
    }
  }
  if (good != nullptr) {
    // Checkpoint-replaying shards do no good-machine solver work; add the
    // recorded good machine's logical evaluations exactly once so the merged
    // work counter equals an unsharded run's.
    merged.finalGoodStates = good->finalGoodStates();
    merged.totalNodeEvals += good->totalGoodEvals();
    const auto& goodEvals = good->perPatternGoodEvals();
    for (std::uint32_t pi = 0; pi < numPatterns && pi < goodEvals.size();
         ++pi) {
      merged.perPattern[pi].nodeEvals += goodEvals[pi];
    }
  }
  std::uint32_t cumulative = 0;
  for (PatternStat& row : merged.perPattern) {
    cumulative += row.newlyDetected;
    row.cumulativeDetected = cumulative;
  }
  return merged;
}

double ShardedRunner::ensureCheckpoint(const TestSequence& seq) {
  const std::uint64_t fp = GoodMachineCheckpoint::fingerprint(seq);
  if (checkpoint_ != nullptr && checkpoint_->seqFingerprint() == fp) return 0.0;
  // Charge the recording time to the run that actually recorded; cache
  // hits (in this runner or a shared store) cost nothing.
  bool recordedNow = false;
  checkpoint_ = store_->acquire(net_, seq, options_, &recordedNow);
  return recordedNow ? checkpoint_->recordSeconds() : 0.0;
}

sched::BatchPlan ShardedRunner::buildPlan(unsigned effectiveJobs) const {
  std::shared_ptr<const sched::DetectionHistory> hist;
  if (schedule_ == sched::SchedulePolicy::History) {
    // The in-memory store (fed by prior runs in this process, or by other
    // engines sharing it) wins over the sidecar; the file serves cold
    // starts. Both are keyed on the fault-list fingerprint so stale history
    // from a different universe is never applied.
    if (history_ != nullptr) hist = history_->lookup(faultsFp_);
    if (hist == nullptr && !historyFile_.empty()) {
      if (auto fromFile = sched::loadHistoryFile(historyFile_, faultsFp_)) {
        hist = std::make_shared<sched::DetectionHistory>(std::move(*fromFile));
      }
    }
  }
  return sched::makeSchedule(schedule_, std::move(hist))
      ->plan(faults_.size(), effectiveJobs, batchFaults_, options_.laneWidth);
}

void ShardedRunner::publishHistory(const FaultSimResult& merged) const {
  if (history_ == nullptr && historyFile_.empty()) return;
  if (history_ != nullptr) {
    history_->record(faultsFp_, merged.detectedAtPattern);
  }
  if (!historyFile_.empty()) {
    sched::DetectionHistory h;
    h.faultsFingerprint = faultsFp_;
    h.detectedAtPattern = merged.detectedAtPattern;
    // Best-effort: a read-only directory loses persistence, not results.
    sched::saveHistoryFile(historyFile_, h);
  }
}

std::vector<FaultSimResult> ShardedRunner::runReplayBatches(
    const sched::BatchPlan& plan,
    const std::function<FaultSimResult(ConcurrentFaultSimulator&)>& runOne) {
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& batches =
      plan.slices;
  std::vector<FaultSimResult> batchResults(batches.size());
  std::atomic<std::uint32_t> nextBatch{0};
  const auto worker = [&]() {
    for (;;) {
      const std::uint32_t b =
          nextBatch.fetch_add(1, std::memory_order_relaxed);
      if (b >= batches.size()) return;
      const auto [begin, end] = batches[b];
      // Gather the batch's faults through the schedule's permutation (the
      // identity plan takes the straight copy below).
      std::vector<Fault> gathered;
      if (plan.order.empty()) {
        gathered.assign(faults_.all().begin() + begin,
                        faults_.all().begin() + end);
      } else {
        gathered.reserve(end - begin);
        for (std::uint32_t pos = begin; pos < end; ++pos) {
          gathered.push_back(faults_.all()[plan.order[pos]]);
        }
      }
      FaultList batch(std::move(gathered));
      FsimOptions batchOptions = options_;
      if (b < plan.hintWindows.size()) {
        batchOptions.shareHintWindows = plan.hintWindows[b];
      }
      ConcurrentFaultSimulator sim(net_, batch, batchOptions, nullptr,
                                   checkpoint_.get());
      batchResults[b] = runOne(sim);
    }
  };

  // More threads than cores only adds contention (the batch queue already
  // decouples batch count from worker count), so the effective worker count
  // is capped at the hardware's concurrency. Results are identical for any
  // worker and batch count.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned workers = std::min<std::size_t>(
      std::min(jobs_, hw), std::max<std::size_t>(1, batches.size()));
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::exception_ptr> errors(workers);
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        try {
          worker();
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
  return batchResults;
}

FaultSimResult ShardedRunner::run(const TestSequence& seq,
                                  const PatternCallback& onPattern) {
  Timer total;
  const double recordSeconds = ensureCheckpoint(seq);
  // The batch schedule is sized for the workers that will actually run (see
  // runReplayBatches' hardware cap), so a 1-core machine does not pay 4
  // cores' worth of per-batch replay overhead.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned effective = std::min(jobs_, hw);
  const sched::BatchPlan plan = buildPlan(effective);

  const std::vector<FaultSimResult> batchResults = runReplayBatches(
      plan, [&seq](ConcurrentFaultSimulator& sim) { return sim.run(seq); });

  FaultSimResult merged =
      mergeShardResults(batchResults, plan.slices, seq.size(),
                        checkpoint_.get(),
                        plan.order.empty() ? nullptr : &plan.order);
  merged.droppedDetected = options_.dropDetected;
  merged.totalSeconds = total.seconds();
  merged.totalCpuSeconds += recordSeconds;
  publishHistory(merged);
  if (onPattern) {
    for (const PatternStat& st : merged.perPattern) onPattern(st);
  }
  return merged;
}

double ShardedRunner::ensureCheckpointStream(PatternSource& source) {
  const std::uint64_t fp = source.fingerprint();
  if (checkpoint_ != nullptr && checkpoint_->streamed() &&
      checkpoint_->seqFingerprint() == fp) {
    return 0.0;
  }
  bool recordedNow = false;
  checkpoint_ = store_->acquireStream(net_, source, options_, &recordedNow);
  return recordedNow ? checkpoint_->recordSeconds() : 0.0;
}

FaultSimResult ShardedRunner::runStream(PatternSource& source, RowSink* sink,
                                        const PatternCallback& onPattern) {
  Timer total;
  const double recordSeconds = ensureCheckpointStream(source);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned effective = std::min(jobs_, hw);
  const sched::BatchPlan plan = buildPlan(effective);

  // Workers replay entirely from the trace — the source was consumed once by
  // the recording and is never touched again.
  const std::vector<FaultSimResult> batchResults = runReplayBatches(
      plan, [](ConcurrentFaultSimulator& sim) { return sim.runReplay(); });

  // Rowless merge: the materialized merge's per-pattern row summing (and its
  // perPatternGoodEvals add-back, which streamed recordings do not carry) is
  // skipped; everything else matches mergeShardResults.
  FaultSimResult merged;
  merged.numFaults = faults_.size();
  merged.numPatterns = checkpoint_->numPatterns();
  merged.droppedDetected = options_.dropDetected;
  merged.detectedAtPattern.assign(merged.numFaults, -1);
  for (std::size_t b = 0; b < batchResults.size(); ++b) {
    const FaultSimResult& r = batchResults[b];
    const auto [begin, end] = plan.slices[b];
    for (std::uint32_t i = 0; i < end - begin; ++i) {
      merged.detectedAtPattern[plan.globalIndex(begin + i)] =
          r.detectedAtPattern[i];
    }
    merged.numDetected += r.numDetected;
    merged.potentialDetections += r.potentialDetections;
    merged.totalNodeEvals += r.totalNodeEvals;
    merged.totalCpuSeconds += r.totalCpuSeconds;
    merged.maxAlive += r.maxAlive;
    merged.finalRecords += r.finalRecords;
  }
  merged.finalGoodStates = checkpoint_->finalGoodStates();
  merged.totalNodeEvals += checkpoint_->totalGoodEvals();
  merged.totalSeconds = total.seconds();
  merged.totalCpuSeconds += recordSeconds;
  publishHistory(merged);
  if (sink != nullptr || onPattern) {
    // Derived rows: triples exact, per-row timing/work zero (see
    // core/row_sink.hpp).
    forEachDerivedRow(merged, [&](std::uint64_t pi, std::uint32_t newly,
                                  std::uint32_t cumulative,
                                  std::uint32_t alive) {
      PatternStat st;
      st.index = static_cast<std::uint32_t>(pi);
      st.newlyDetected = newly;
      st.cumulativeDetected = cumulative;
      st.aliveAfter = alive;
      if (sink != nullptr) sink->row(st);
      if (onPattern) onPattern(st);
    });
  }
  return merged;
}

}  // namespace fmossim
