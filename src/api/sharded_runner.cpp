#include "api/sharded_runner.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "util/timer.hpp"

namespace fmossim {

ShardedRunner::ShardedRunner(const Network& net, FaultList faults,
                             FsimOptions options, unsigned jobs)
    : net_(net), faults_(std::move(faults)), options_(options) {
  jobs_ = std::max(1u, std::min(jobs, std::max(1u, faults_.size())));
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> ShardedRunner::partition(
    std::uint32_t numFaults, unsigned jobs) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> slices;
  slices.reserve(jobs);
  for (unsigned s = 0; s < jobs; ++s) {
    const std::uint32_t begin =
        static_cast<std::uint32_t>(std::uint64_t(numFaults) * s / jobs);
    const std::uint32_t end =
        static_cast<std::uint32_t>(std::uint64_t(numFaults) * (s + 1) / jobs);
    slices.emplace_back(begin, end);
  }
  return slices;
}

FaultSimResult mergeShardResults(
    const std::vector<FaultSimResult>& shardResults,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& slices,
    std::uint32_t numPatterns) {
  FaultSimResult merged;
  std::uint32_t numFaults = 0;
  for (const auto& [begin, end] : slices) numFaults += end - begin;
  merged.numFaults = numFaults;
  merged.detectedAtPattern.assign(numFaults, -1);

  merged.perPattern.resize(numPatterns);
  for (std::uint32_t pi = 0; pi < numPatterns; ++pi) {
    merged.perPattern[pi].index = pi;
  }

  for (std::size_t s = 0; s < shardResults.size(); ++s) {
    const FaultSimResult& r = shardResults[s];
    const auto [begin, end] = slices[s];
    // Re-index the shard-local fault order to the global one.
    for (std::uint32_t i = 0; i < end - begin; ++i) {
      merged.detectedAtPattern[begin + i] = r.detectedAtPattern[i];
    }
    merged.numDetected += r.numDetected;
    merged.potentialDetections += r.potentialDetections;
    // Every shard simulates the same good circuit; keep the first one's
    // final states (the differential oracle cross-checks them per backend).
    if (merged.finalGoodStates.empty()) {
      merged.finalGoodStates = r.finalGoodStates;
    }
    merged.totalNodeEvals += r.totalNodeEvals;
    merged.maxAlive += r.maxAlive;
    merged.finalRecords += r.finalRecords;
    for (std::uint32_t pi = 0; pi < numPatterns && pi < r.perPattern.size();
         ++pi) {
      PatternStat& row = merged.perPattern[pi];
      const PatternStat& src = r.perPattern[pi];
      row.seconds += src.seconds;
      row.nodeEvals += src.nodeEvals;
      row.newlyDetected += src.newlyDetected;
      row.aliveAfter += src.aliveAfter;
    }
  }
  std::uint32_t cumulative = 0;
  for (PatternStat& row : merged.perPattern) {
    cumulative += row.newlyDetected;
    row.cumulativeDetected = cumulative;
  }
  return merged;
}

FaultSimResult ShardedRunner::run(const TestSequence& seq,
                                  const PatternCallback& onPattern) {
  const auto slices = partition(faults_.size(), jobs_);

  Timer total;
  std::vector<FaultSimResult> shardResults(slices.size());
  std::vector<std::exception_ptr> errors(slices.size());
  std::vector<std::thread> threads;
  threads.reserve(slices.size());
  for (std::size_t s = 0; s < slices.size(); ++s) {
    threads.emplace_back([&, s] {
      try {
        const auto [begin, end] = slices[s];
        FaultList shard(std::vector<Fault>(faults_.all().begin() + begin,
                                           faults_.all().begin() + end));
        ConcurrentFaultSimulator sim(net_, shard, options_);
        shardResults[s] = sim.run(seq);
      } catch (...) {
        errors[s] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  FaultSimResult merged = mergeShardResults(shardResults, slices, seq.size());
  merged.totalSeconds = total.seconds();
  if (onPattern) {
    for (const PatternStat& st : merged.perPattern) onPattern(st);
  }
  return merged;
}

}  // namespace fmossim
