#include "api/engine.hpp"

#include "core/serial_sim.hpp"
#include "util/hash.hpp"

namespace fmossim {

std::uint64_t faultListFingerprint(const FaultList& faults) {
  std::uint64_t h = kFnvOffsetBasis;
  fnvMix(h, faults.size());
  for (const Fault& f : faults) {
    fnvMix(h, static_cast<std::uint64_t>(f.kind));
    fnvMix(h, f.node.value);
    fnvMix(h, f.transistor.value);
    fnvMix(h, static_cast<std::uint64_t>(f.value));
  }
  return h;
}

Engine::Engine(Network net, FaultList faults, EngineOptions options)
    : net_(std::move(net)),
      faults_(std::move(faults)),
      options_(options),
      backend_(makeBackend()) {}

std::unique_ptr<FaultSimulator> Engine::makeBackend() const {
  switch (options_.backend) {
    case Backend::Serial: {
      SerialOptions sopts;
      sopts.sim = options_.sim;
      sopts.policy = options_.policy;
      return std::make_unique<SerialBackend>(net_, faults_, sopts,
                                             options_.dropDetected);
    }
    case Backend::Concurrent: {
      FsimOptions fopts;
      fopts.sim = options_.sim;
      fopts.policy = options_.policy;
      fopts.dropDetected = options_.dropDetected;
      fopts.laneWidth = options_.laneWidth;
      fopts.checkpointReadAhead = options_.checkpointReadAhead;
      fopts.debugLoseTriggerEvery = options_.debugLoseTriggerEvery;
      if (options_.jobs > 1 && faults_.size() > 1) {
        return std::make_unique<ShardedRunner>(
            net_, faults_, fopts, options_.jobs, options_.batchFaults,
            options_.checkpointStore, options_.checkpointBudgetBytes,
            options_.schedule, options_.historyStore, options_.historyFile);
      }
      return std::make_unique<ConcurrentBackend>(net_, faults_, fopts);
    }
  }
  FMOSSIM_ASSERT(false, "unknown backend");
  return nullptr;
}

FaultSimResult Engine::run(const TestSequence& seq,
                           const PatternCallback& onPattern) {
  return backend_->run(seq, onPattern);
}

FaultSimResult Engine::runStream(PatternSource& source, RowSink* sink,
                                 const PatternCallback& onPattern) {
  return backend_->runStream(source, sink, onPattern);
}

void Engine::reset() { backend_ = makeBackend(); }

void Engine::rebind(Network net, FaultList faults) {
  net_ = std::move(net);
  faults_ = std::move(faults);
  netFp_.reset();
  faultsFp_.reset();
  backend_ = makeBackend();
}

void Engine::rebind(Network net, FaultList faults, EngineOptions options) {
  options_ = std::move(options);
  rebind(std::move(net), std::move(faults));
}

std::uint64_t Engine::netFingerprint() const {
  if (!netFp_) netFp_ = networkFingerprint(net_);
  return *netFp_;
}

std::uint64_t Engine::faultsFingerprint() const {
  if (!faultsFp_) faultsFp_ = faultListFingerprint(faults_);
  return *faultsFp_;
}

std::uint64_t Engine::sequenceFingerprint(const TestSequence& seq) {
  return GoodMachineCheckpoint::fingerprint(seq);
}

GoodRunResult Engine::runGood(const TestSequence& seq) const {
  SerialOptions sopts;
  sopts.sim = options_.sim;
  sopts.policy = options_.policy;
  SerialFaultSimulator serial(net_, sopts);
  return serial.runGood(seq);
}

}  // namespace fmossim
