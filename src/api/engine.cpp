#include "api/engine.hpp"

#include "core/serial_sim.hpp"

namespace fmossim {

Engine::Engine(Network net, FaultList faults, EngineOptions options)
    : net_(std::move(net)),
      faults_(std::move(faults)),
      options_(options),
      backend_(makeBackend()) {}

std::unique_ptr<FaultSimulator> Engine::makeBackend() const {
  switch (options_.backend) {
    case Backend::Serial: {
      SerialOptions sopts;
      sopts.sim = options_.sim;
      sopts.policy = options_.policy;
      return std::make_unique<SerialBackend>(net_, faults_, sopts,
                                             options_.dropDetected);
    }
    case Backend::Concurrent: {
      FsimOptions fopts;
      fopts.sim = options_.sim;
      fopts.policy = options_.policy;
      fopts.dropDetected = options_.dropDetected;
      fopts.debugLoseTriggerEvery = options_.debugLoseTriggerEvery;
      if (options_.jobs > 1 && faults_.size() > 1) {
        return std::make_unique<ShardedRunner>(
            net_, faults_, fopts, options_.jobs, options_.batchFaults,
            options_.checkpointStore, options_.checkpointBudgetBytes);
      }
      return std::make_unique<ConcurrentBackend>(net_, faults_, fopts);
    }
  }
  FMOSSIM_ASSERT(false, "unknown backend");
  return nullptr;
}

FaultSimResult Engine::run(const TestSequence& seq,
                           const PatternCallback& onPattern) {
  return backend_->run(seq, onPattern);
}

void Engine::reset() { backend_ = makeBackend(); }

GoodRunResult Engine::runGood(const TestSequence& seq) const {
  SerialOptions sopts;
  sopts.sim = options_.sim;
  sopts.policy = options_.policy;
  SerialFaultSimulator serial(net_, sopts);
  return serial.runGood(seq);
}

}  // namespace fmossim
