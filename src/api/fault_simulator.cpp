#include "api/fault_simulator.hpp"

#include "core/row_sink.hpp"
#include "patterns/pattern_source.hpp"
#include "util/error.hpp"

namespace fmossim {

FaultSimResult FaultSimulator::runStream(PatternSource& source, RowSink* sink,
                                         const PatternCallback& onPattern) {
  // Materializing fallback: backends without a native streaming path (the
  // serial baseline) expand the source into a TestSequence and run that.
  // Correct for any source, but resident memory is O(sequence length) — the
  // overriding backends are the ones the million-pattern path uses.
  FMOSSIM_ASSERT(source.numPatterns() <= 0xffffffffull,
                 "source exceeds a materializable sequence's 2^32 patterns");
  source.rewind();
  TestSequence seq;
  for (const NodeId n : source.outputs()) seq.addOutput(n);
  Pattern p;
  while (source.next(p)) seq.addPattern(Pattern(p));
  const FaultSimResult res = run(seq, onPattern);
  if (sink != nullptr) {
    for (const PatternStat& st : res.perPattern) sink->row(st);
  }
  return res;
}

}  // namespace fmossim
