/// \file
/// Backend-agnostic fault-simulation interface — the seam every engine
/// (serial replay, concurrent difference simulation, sharded parallel runs,
/// and future batched/cached backends) plugs into.
///
/// The contract, uniform across backends:
///
///   * run() takes a TestSequence and returns a fully populated
///     FaultSimResult (per-pattern rows, per-fault detection indices,
///     coverage) regardless of how the backend computes it.
///   * run() is repeatable: every call is a fresh session over the same
///     network and fault list. Backends that wrap single-shot engines
///     construct a fresh engine instance per call.
///   * reset() discards any cached session state; after reset() the
///     simulator behaves as if newly constructed. (For the current backends
///     runs are already independent, so reset() is cheap.)
#pragma once

#include <functional>

#include "core/concurrent_sim.hpp"  // FaultSimResult, PatternStat, DetectionPolicy
#include "faults/fault.hpp"
#include "patterns/pattern.hpp"
#include "switch/network.hpp"

/// Switch-level concurrent fault simulation (Bryant & Schuster, DAC 1985
/// reproduction). See README.md for the architecture overview.
namespace fmossim {

/// Invoked after each pattern with the (possibly merged) per-pattern row.
/// Parallel backends call it only after all shards have finished, once per
/// pattern in ascending order.
using PatternCallback = std::function<void(const PatternStat&)>;

/// Abstract fault simulator: one network + fault list, simulated over a test
/// sequence by some backend strategy. See the file comment for the run() and
/// reset() contract shared by all implementations.
class FaultSimulator {
 public:
  virtual ~FaultSimulator() = default;

  /// Stable identifier for reporting ("serial", "concurrent", "sharded").
  virtual const char* backendName() const = 0;

  /// The simulated network (shared by every run).
  virtual const Network& network() const = 0;

  /// The injected fault list, in global fault-index order.
  virtual const FaultList& faults() const = 0;

  /// Runs the full test sequence and returns the complete result. Repeatable:
  /// each call simulates from scratch. `onPattern` (may be null) fires after
  /// each pattern with its merged PatternStat row.
  virtual FaultSimResult run(const TestSequence& seq,
                             const PatternCallback& onPattern) = 0;
  /// Convenience overload of run() without a per-pattern callback.
  FaultSimResult run(const TestSequence& seq) { return run(seq, nullptr); }

  /// Streaming run: pulls patterns from `source` (rewinding it first, so
  /// the call is repeatable like run()) and delivers per-pattern rows to
  /// `sink` and `onPattern` in pattern order. Backends with a true
  /// streaming path (concurrent, sharded) keep resident memory flat in the
  /// sequence length and return a rowless result (perPattern empty,
  /// numPatterns/droppedDetected set — see core/row_sink.hpp); the base
  /// implementation is a materializing fallback that builds a TestSequence
  /// from the source and forwards to run(), so every backend accepts a
  /// PatternSource even without a native streaming path.
  virtual FaultSimResult runStream(PatternSource& source,
                                   RowSink* sink = nullptr,
                                   const PatternCallback& onPattern = {});

  /// Discards cached session state (fresh-session semantics).
  virtual void reset() {}
};

}  // namespace fmossim
