/// \file
/// Sharded parallel fault simulation with good-machine checkpoint reuse and
/// a work-stealing fault-batch scheduler.
///
/// The concurrent engine simulates faulty circuits purely by difference from
/// the good circuit; faulty circuits never interact with each other. The
/// fault universe can therefore be partitioned and simulated in parallel —
/// the scaling lever ERASER and the batch-IVerilog work apply to fault
/// simulation (see PAPERS.md). Two things make the partition scale for real:
///
///   * **Checkpointed good-machine reuse.** The fault-free circuit is
///     simulated once per (network, sequence) into a GoodMachineCheckpoint
///     (src/core/checkpoint.hpp); every batch replays the recorded trace
///     instead of re-simulating the good machine, so adding workers adds
///     faulty-circuit work only. Checkpoints live in a CheckpointStore
///     (src/core/checkpoint_store.hpp): either a store shared by the caller
///     via EngineOptions::checkpointStore — so many engines and bench rows
///     reuse one recording — or a private per-runner store, which also
///     caches across run() calls and is discarded by reset(). The store's
///     memory budget (EngineOptions::checkpointBudgetBytes for the private
///     store) spills huge traces to disk with a sliding replay window.
///
///   * **Work stealing over fault batches.** Instead of one static slice
///     per worker, the fault list is cut into several batches per worker
///     and workers claim batches from a shared atomic queue. Fault dropping
///     makes per-fault cost wildly non-uniform — a batch whose faults all
///     drop early exits its replay early, while one undetected fault keeps
///     its batch alive for the whole sequence — so late workers steal the
///     remaining batches instead of idling behind a static slice.
///
/// *Which* faults form a batch is a pluggable policy (sched/fault_schedule):
/// the default ContiguousSchedule reproduces the classic contiguous slices;
/// the HistorySchedule lays batches out by a prior run's detection record so
/// expensive faults are quarantined together (see that header). The runner
/// feeds the schedule layer by publishing every run's detection record into
/// the attached sched::HistoryStore and/or `--history-file` sidecar.
///
/// Determinism: the batch plan is a pure function of (numFaults, jobs,
/// batchFaults, policy, history) — workers race only for *which* batch they
/// claim, never for batch boundaries — and the merge re-indexes detections
/// back to the global fault order through the plan's permutation. A sharded
/// run's result is bit-identical to an unsharded run's for every jobs,
/// batch-size and schedule-policy choice (faulty circuits never interact, so
/// detections, nodeEvals, maxAlive and the per-pattern rows are invariant
/// under any fault permutation); the checkpoint's good-machine work is added
/// once so the merged deterministic work counter equals a jobs=1 run's
/// exactly. Timing is reported as two distinct fields: totalSeconds is the
/// run's wall clock, totalCpuSeconds the engine time summed across batches
/// and the recording (per-pattern rows sum the same way — CPU-like, since
/// batches overlap on the wall clock).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/fault_simulator.hpp"
#include "core/checkpoint.hpp"
#include "core/checkpoint_store.hpp"
#include "sched/fault_schedule.hpp"

namespace fmossim {

/// FaultSimulator that replays a shared good-machine checkpoint in one
/// concurrent engine per fault batch, scheduled work-stealing style across
/// `jobs` threads, and deterministically merges the batch results.
class ShardedRunner : public FaultSimulator {
 public:
  /// `jobs` is clamped to [1, faults.size()] (a worker per fault at most);
  /// at run time the thread count is additionally capped at the hardware
  /// concurrency (the batch queue decouples batch count from worker count).
  /// `batchFaults` sets the fault-batch size: 0 selects the auto schedule
  /// (see makeBatches), any other value fixed-size batches of that many
  /// faults.
  ///
  /// `store` (optional) is a shared checkpoint cache; recordings are then
  /// reused across every runner and engine holding the same store, and
  /// reset() leaves the shared cache alone. When null, the runner creates a
  /// private store with `checkpointBudgetBytes` as its memory budget
  /// (ignored for a shared store, which carries its own budget).
  ///
  /// `schedule` selects the batch-layout policy. `history` (optional) is the
  /// shared in-memory detection-history cache: every run records into it,
  /// and the History policy consumes it. `historyFile` (optional) names a
  /// sidecar file (sched::saveHistoryFile format) that is loaded as a
  /// fallback history source and rewritten after every run — history then
  /// survives process restarts. All three default to the classic behavior.
  ShardedRunner(const Network& net, FaultList faults, FsimOptions options,
                unsigned jobs, std::uint32_t batchFaults = 0,
                std::shared_ptr<CheckpointStore> store = nullptr,
                std::size_t checkpointBudgetBytes = 0,
                sched::SchedulePolicy schedule =
                    sched::SchedulePolicy::Contiguous,
                std::shared_ptr<sched::HistoryStore> history = nullptr,
                std::string historyFile = {});

  /// Always "sharded".
  const char* backendName() const override { return "sharded"; }
  /// The referenced network.
  const Network& network() const override { return net_; }
  /// The injected fault list (global order).
  const FaultList& faults() const override { return faults_; }
  /// Effective worker count after clamping.
  unsigned jobs() const { return jobs_; }
  /// The configured batch-size knob (0 = guided schedule).
  std::uint32_t batchFaults() const { return batchFaults_; }

  /// The checkpoint store this runner records into and reuses from (private
  /// unless one was shared in at construction).
  const std::shared_ptr<CheckpointStore>& checkpointStore() const {
    return store_;
  }

  /// The checkpoint used by the most recent run(), or nullptr before the
  /// first run or after reset() (diagnostics and tests).
  const GoodMachineCheckpoint* checkpoint() const { return checkpoint_.get(); }

  /// Runs every fault batch through a checkpoint-replaying concurrent engine
  /// (workers steal batches from a shared queue) and merges:
  ///   * detectedAtPattern re-indexed to the global fault order,
  ///   * PatternStat rows summed per pattern (cumulative recomputed),
  ///   * the checkpoint's good-machine node evaluations added once, making
  ///     totalNodeEvals equal to an unsharded run's,
  ///   * totalSeconds = wall clock of the whole sharded run (including
  ///     checkpoint recording when this call had to record one);
  ///     totalCpuSeconds = engine time summed across batches + recording.
  /// `onPattern` fires after the merge, once per pattern in order.
  FaultSimResult run(const TestSequence& seq,
                     const PatternCallback& onPattern) override;
  using FaultSimulator::run;

  /// Native streaming run: acquires a *streamed* checkpoint for the source
  /// (recorded by consuming it once, never materialized — distinct store
  /// key, since streamed recordings omit the per-pattern good-eval array the
  /// materialized merge needs), then replays every fault batch entirely from
  /// the trace (ConcurrentFaultSimulator::runReplay — workers never touch
  /// the source). The merged result is rowless; rows are derived from the
  /// merged detection record and delivered to `sink`/`onPattern` in pattern
  /// order (row triples exact, per-row timing/work fields zero — only the
  /// run-level totals are meaningful, as documented in core/row_sink.hpp).
  /// Resident memory is flat in the sequence length when the checkpoint
  /// store carries a spill budget.
  FaultSimResult runStream(PatternSource& source, RowSink* sink = nullptr,
                           const PatternCallback& onPattern = {}) override;

  /// Drops the runner's reference to the last checkpoint and, for a private
  /// store, clears the cache (fresh-session semantics). A shared store is
  /// left untouched — its whole point is outliving individual runners.
  void reset() override {
    checkpoint_.reset();
    if (ownsStore_) store_->clear();
  }

  /// The contiguous work-stealing batch schedule: contiguous, ascending,
  /// covering [0, numFaults). batchFaults > 0 yields fixed-size batches; 0
  /// (auto) yields ~4 batches per worker, floored at 32 faults so per-batch
  /// checkpoint-replay overhead stays amortized. The auto size is rounded up
  /// to a multiple of `laneWidth` so lane-sharing windows (which each batch
  /// engine forms over its locally renumbered faults) line up with batch
  /// boundaries instead of being split across shards — results are
  /// bit-identical either way; alignment only preserves the sharing
  /// opportunities. Deterministic — workers only race for batch *claims*,
  /// never for boundaries. Delegates to sched::contiguousBatches (kept as a
  /// static here for the scheduler unit tests and older callers).
  static std::vector<std::pair<std::uint32_t, std::uint32_t>> makeBatches(
      std::uint32_t numFaults, unsigned jobs, std::uint32_t batchFaults,
      std::uint32_t laneWidth = 1);

 private:
  /// Fetches the checkpoint for `seq` from the store (recording on a cache
  /// miss). Returns the recording seconds this call newly spent (0 on a
  /// cache hit) for the totalCpuSeconds accounting.
  double ensureCheckpoint(const TestSequence& seq);
  /// Streaming twin of ensureCheckpoint: keyed on the source fingerprint,
  /// recording through the store's streaming path on a miss.
  double ensureCheckpointStream(PatternSource& source);
  /// Builds this run's batch plan from the configured policy: the History
  /// policy consults the shared store first, then the sidecar file, and
  /// falls back to the contiguous layout when neither has a record for this
  /// fault list.
  sched::BatchPlan buildPlan(unsigned effectiveJobs) const;
  /// Publishes the merged detection record into the history store and the
  /// sidecar file (whichever are attached) so the next run can schedule on
  /// it — contiguous runs feed history runs.
  void publishHistory(const FaultSimResult& merged) const;
  /// Replays every batch of the plan against checkpoint_ across the worker
  /// pool: batch b gathers its faults through plan.order (slice positions →
  /// global fault indices) and carries its hint windows in its FsimOptions.
  std::vector<FaultSimResult> runReplayBatches(
      const sched::BatchPlan& plan,
      const std::function<FaultSimResult(ConcurrentFaultSimulator&)>& runOne);

  const Network& net_;
  FaultList faults_;
  FsimOptions options_;
  unsigned jobs_;
  std::uint32_t batchFaults_;
  std::shared_ptr<CheckpointStore> store_;
  bool ownsStore_;
  std::shared_ptr<const GoodMachineCheckpoint> checkpoint_;
  sched::SchedulePolicy schedule_;
  std::shared_ptr<sched::HistoryStore> history_;
  std::string historyFile_;
  std::uint64_t faultsFp_;  ///< history key (faultListFingerprint)
};

/// Merges per-batch results (in batch order, batch b covering schedule
/// positions [slices[b].first, slices[b].second)) into one FaultSimResult.
/// `order` (optional) is the schedule's fault permutation: shard-local
/// detection slot i of batch b lands at global fault index
/// order[slices[b].first + i]; null means the identity (the classic
/// contiguous merge). When `good` is non-null its per-pattern good-machine
/// evaluation counts are added once (the merged work counter then equals an
/// unsharded run's) and its final good states are used verbatim. The merged
/// maxAlive is the modeled single-engine peak (per-batch peaks coincide at
/// sequence start, so it equals a jobs=1 run's exactly — see
/// FaultSimResult::maxAlive); totalCpuSeconds and per-pattern seconds sum
/// across batches, while the caller stamps totalSeconds with the real wall
/// clock. Exposed for the merge-logic unit tests.
FaultSimResult mergeShardResults(
    const std::vector<FaultSimResult>& shardResults,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& slices,
    std::uint32_t numPatterns, const GoodMachineCheckpoint* good = nullptr,
    const std::vector<std::uint32_t>* order = nullptr);

}  // namespace fmossim
