/// \file
/// Sharded parallel fault simulation.
///
/// The concurrent engine simulates faulty circuits purely by difference from
/// the good circuit; faulty circuits never interact with each other. The
/// fault universe can therefore be partitioned into K shards simulated fully
/// independently — the scaling lever ERASER and the batch-IVerilog work
/// apply to fault simulation (see PAPERS.md) — at the cost of re-simulating
/// the good circuit once per shard.
///
/// Determinism: shards are contiguous slices of the fault list, each shard
/// runs an ordinary ConcurrentFaultSimulator on its own std::thread, and the
/// merge re-indexes detections back to the global fault order. Because fault
/// circuits are independent in the core engine, a sharded run's
/// detectedAtPattern is bit-identical to an unsharded run's for every jobs
/// count; per-pattern cost rows are summed across shards.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "api/fault_simulator.hpp"

namespace fmossim {

/// FaultSimulator that runs one concurrent engine per fault shard on its own
/// thread and deterministically merges the shard results.
class ShardedRunner : public FaultSimulator {
 public:
  /// `jobs` is clamped to [1, faults.size()] (a shard per fault at most).
  ShardedRunner(const Network& net, FaultList faults, FsimOptions options,
                unsigned jobs);

  /// Always "sharded".
  const char* backendName() const override { return "sharded"; }
  /// The referenced network.
  const Network& network() const override { return net_; }
  /// The injected fault list (global order).
  const FaultList& faults() const override { return faults_; }
  /// Effective shard count after clamping.
  unsigned jobs() const { return jobs_; }

  /// Runs every shard on its own thread and merges:
  ///   * detectedAtPattern re-indexed to the global fault order,
  ///   * PatternStat rows summed per pattern (cumulative recomputed),
  ///   * aliveAfter/potentialDetections/nodeEvals aggregated,
  ///   * totalSeconds = wall clock of the whole sharded run.
  /// `onPattern` fires after the merge, once per pattern in order.
  FaultSimResult run(const TestSequence& seq,
                     const PatternCallback& onPattern) override;
  using FaultSimulator::run;

  /// Contiguous near-equal partition of [0, numFaults) into `jobs` slices;
  /// shard s covers [result[s].first, result[s].second). Deterministic.
  static std::vector<std::pair<std::uint32_t, std::uint32_t>> partition(
      std::uint32_t numFaults, unsigned jobs);

 private:
  const Network& net_;
  FaultList faults_;
  FsimOptions options_;
  unsigned jobs_;
};

/// Merges per-shard results (in shard order, shard s covering global fault
/// indices [slices[s].first, slices[s].second)) into one FaultSimResult.
/// Exposed for the merge-logic unit tests.
FaultSimResult mergeShardResults(
    const std::vector<FaultSimResult>& shardResults,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& slices,
    std::uint32_t numPatterns);

}  // namespace fmossim
