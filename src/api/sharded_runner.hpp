/// \file
/// Sharded parallel fault simulation with good-machine checkpoint reuse and
/// a work-stealing fault-batch scheduler.
///
/// The concurrent engine simulates faulty circuits purely by difference from
/// the good circuit; faulty circuits never interact with each other. The
/// fault universe can therefore be partitioned and simulated in parallel —
/// the scaling lever ERASER and the batch-IVerilog work apply to fault
/// simulation (see PAPERS.md). Two things make the partition scale for real:
///
///   * **Checkpointed good-machine reuse.** The fault-free circuit is
///     simulated once per (network, sequence) into a GoodMachineCheckpoint
///     (src/core/checkpoint.hpp); every batch replays the recorded trace
///     instead of re-simulating the good machine, so adding workers adds
///     faulty-circuit work only. The checkpoint is cached across run()
///     calls (keyed on the sequence fingerprint) and discarded by reset().
///
///   * **Work stealing over fault batches.** Instead of one static slice
///     per worker, the fault list is cut into several contiguous batches
///     per worker and workers claim batches from a shared atomic queue.
///     Fault dropping makes per-fault cost wildly non-uniform — a batch
///     whose faults all drop early exits its replay early, while one
///     undetected fault keeps its batch alive for the whole sequence — so
///     late workers steal the remaining batches instead of idling behind a
///     static slice.
///
/// Determinism: the batch list is a pure function of (numFaults, jobs,
/// batchFaults) — workers race only for *which* batch they claim, never for
/// batch boundaries — and the merge re-indexes detections back to the global
/// fault order. A sharded run's result is bit-identical to an unsharded
/// run's for every jobs and batch-size choice; per-pattern cost rows are
/// summed across batches, and the checkpoint's good-machine work is added
/// once so the merged deterministic work counter equals a jobs=1 run's
/// exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "api/fault_simulator.hpp"
#include "core/checkpoint.hpp"

namespace fmossim {

/// FaultSimulator that replays a shared good-machine checkpoint in one
/// concurrent engine per fault batch, scheduled work-stealing style across
/// `jobs` threads, and deterministically merges the batch results.
class ShardedRunner : public FaultSimulator {
 public:
  /// `jobs` is clamped to [1, faults.size()] (a worker per fault at most);
  /// at run time the thread count is additionally capped at the hardware
  /// concurrency (the batch queue decouples batch count from worker count).
  /// `batchFaults` sets the fault-batch size: 0 selects the auto schedule
  /// (see makeBatches), any other value fixed-size batches of that many
  /// faults.
  ShardedRunner(const Network& net, FaultList faults, FsimOptions options,
                unsigned jobs, std::uint32_t batchFaults = 0);

  /// Always "sharded".
  const char* backendName() const override { return "sharded"; }
  /// The referenced network.
  const Network& network() const override { return net_; }
  /// The injected fault list (global order).
  const FaultList& faults() const override { return faults_; }
  /// Effective worker count after clamping.
  unsigned jobs() const { return jobs_; }
  /// The configured batch-size knob (0 = guided schedule).
  std::uint32_t batchFaults() const { return batchFaults_; }

  /// The cached good-machine checkpoint, or nullptr before the first run()
  /// (diagnostics and tests).
  const GoodMachineCheckpoint* checkpoint() const { return checkpoint_.get(); }

  /// Runs every fault batch through a checkpoint-replaying concurrent engine
  /// (workers steal batches from a shared queue) and merges:
  ///   * detectedAtPattern re-indexed to the global fault order,
  ///   * PatternStat rows summed per pattern (cumulative recomputed),
  ///   * the checkpoint's good-machine node evaluations added once, making
  ///     totalNodeEvals equal to an unsharded run's,
  ///   * totalSeconds = wall clock of the whole sharded run (including
  ///     checkpoint recording when this call had to record one).
  /// `onPattern` fires after the merge, once per pattern in order.
  FaultSimResult run(const TestSequence& seq,
                     const PatternCallback& onPattern) override;
  using FaultSimulator::run;

  /// Discards the cached checkpoint (fresh-session semantics).
  void reset() override { checkpoint_.reset(); }

  /// Contiguous near-equal partition of [0, numFaults) into `jobs` slices;
  /// shard s covers [result[s].first, result[s].second). Deterministic.
  /// (The legacy static partition; run() schedules makeBatches instead.)
  static std::vector<std::pair<std::uint32_t, std::uint32_t>> partition(
      std::uint32_t numFaults, unsigned jobs);

  /// The work-stealing batch schedule: contiguous, ascending, covering
  /// [0, numFaults). batchFaults > 0 yields fixed-size batches; 0 (auto)
  /// yields ~4 batches per worker, floored at 32 faults so per-batch
  /// checkpoint-replay overhead stays amortized. Deterministic — workers
  /// only race for batch *claims*, never for boundaries.
  static std::vector<std::pair<std::uint32_t, std::uint32_t>> makeBatches(
      std::uint32_t numFaults, unsigned jobs, std::uint32_t batchFaults);

 private:
  /// Records the checkpoint for `seq`, or reuses the cached one when the
  /// sequence fingerprint matches.
  void ensureCheckpoint(const TestSequence& seq);

  const Network& net_;
  FaultList faults_;
  FsimOptions options_;
  unsigned jobs_;
  std::uint32_t batchFaults_;
  std::unique_ptr<GoodMachineCheckpoint> checkpoint_;
};

/// Merges per-batch results (in batch order, batch b covering global fault
/// indices [slices[b].first, slices[b].second)) into one FaultSimResult.
/// When `good` is non-null its per-pattern good-machine evaluation counts
/// are added once (the merged work counter then equals an unsharded run's)
/// and its final good states are used verbatim. Exposed for the merge-logic
/// unit tests.
FaultSimResult mergeShardResults(
    const std::vector<FaultSimResult>& shardResults,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& slices,
    std::uint32_t numPatterns, const GoodMachineCheckpoint* good = nullptr);

}  // namespace fmossim
