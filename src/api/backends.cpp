#include "api/backends.hpp"

#include "patterns/pattern_source.hpp"

namespace fmossim {

ConcurrentBackend::ConcurrentBackend(const Network& net, FaultList faults,
                                     FsimOptions options)
    : net_(net), faults_(std::move(faults)), options_(options) {}

FaultSimResult ConcurrentBackend::run(const TestSequence& seq,
                                      const PatternCallback& onPattern) {
  // The core engine is single-shot; a fresh instance per call makes the
  // interface-level run() repeatable.
  ConcurrentFaultSimulator sim(net_, faults_, options_);
  return onPattern ? sim.run(seq, onPattern) : sim.run(seq);
}

FaultSimResult ConcurrentBackend::runStream(PatternSource& source,
                                            RowSink* sink,
                                            const PatternCallback& onPattern) {
  source.rewind();
  ConcurrentFaultSimulator sim(net_, faults_, options_);
  return sim.run(source, sink, onPattern);
}

SerialBackend::SerialBackend(const Network& net, FaultList faults,
                             SerialOptions options, bool dropDetected)
    : net_(net),
      faults_(std::move(faults)),
      options_(options),
      dropDetected_(dropDetected) {}

FaultSimResult toFaultSimResult(const SerialRunResult& serial,
                                std::uint32_t numPatterns,
                                bool dropDetected) {
  FaultSimResult res;
  res.numFaults = static_cast<std::uint32_t>(serial.detectedAtPattern.size());
  res.numPatterns = numPatterns;
  res.droppedDetected = dropDetected;
  res.detectedAtPattern = serial.detectedAtPattern;
  res.numDetected = serial.numDetected;
  res.potentialDetections = serial.potentialDetections;
  res.totalSeconds = serial.good.totalSeconds + serial.faultSeconds;
  // Single-threaded replay: aggregate engine time is the wall clock.
  res.totalCpuSeconds = res.totalSeconds;
  res.totalNodeEvals = serial.good.totalNodeEvals + serial.faultNodeEvals;
  res.finalGoodStates = serial.good.finalStates;
  // Row semantics ("faults still being simulated after this pattern") map
  // onto the undetected-so-far count when dropping, or the full fault count
  // otherwise — matching the concurrent engine's aliveAfter in both modes.
  std::vector<std::uint32_t> newlyAt(numPatterns, 0);
  for (const std::int32_t at : serial.detectedAtPattern) {
    if (at >= 0 && static_cast<std::uint32_t>(at) < numPatterns) {
      ++newlyAt[at];
    }
  }
  res.perPattern.reserve(numPatterns);
  std::uint32_t cumulative = 0;
  for (std::uint32_t pi = 0; pi < numPatterns; ++pi) {
    PatternStat st;
    st.index = pi;
    st.seconds =
        pi < serial.patternSeconds.size() ? serial.patternSeconds[pi] : 0.0;
    st.nodeEvals =
        pi < serial.patternNodeEvals.size() ? serial.patternNodeEvals[pi] : 0;
    st.newlyDetected = newlyAt[pi];
    cumulative += newlyAt[pi];
    st.cumulativeDetected = cumulative;
    st.aliveAfter = dropDetected ? res.numFaults - cumulative : res.numFaults;
    res.perPattern.push_back(st);
  }
  // The serial replay holds exactly one faulty circuit live at a time.
  res.maxAlive = res.numFaults == 0 ? 0 : 1;
  return res;
}

FaultSimResult SerialBackend::run(const TestSequence& seq,
                                  const PatternCallback& onPattern) {
  SerialFaultSimulator sim(net_, options_);
  last_ = sim.run(seq, faults_);
  const FaultSimResult res = toFaultSimResult(last_, seq.size(), dropDetected_);
  if (onPattern) {
    // Serial simulation iterates fault-major, so rows only exist after the
    // whole run; deliver them in pattern order like the sharded runner does.
    for (const PatternStat& st : res.perPattern) onPattern(st);
  }
  return res;
}

}  // namespace fmossim
