/// \file
/// Engine — the single entry point for fault simulation.
///
/// Owns the network and fault list, selects a backend (serial replay,
/// concurrent difference simulation, or sharded parallel concurrent runs)
/// from EngineOptions, and exposes the uniform FaultSimulator contract with
/// repeatable runs:
///
/// \code
///   Engine engine(net, faults, {.backend = Backend::Concurrent, .jobs = 4});
///   FaultSimResult r1 = engine.run(seq);
///   FaultSimResult r2 = engine.run(seq);   // fresh session, identical result
/// \endcode
///
/// The library-wide default detection policy is DetectionPolicy::DefiniteOnly
/// (a tester cannot distinguish an X from a driven value); the paper's own
/// benchmark criterion is AnyDifference and the bench harnesses set it
/// explicitly.
#pragma once

#include <memory>
#include <optional>

#include "api/backends.hpp"
#include "api/fault_simulator.hpp"
#include "api/sharded_runner.hpp"

namespace fmossim {

/// Content fingerprint of a fault list (FNV-1a over each fault's kind,
/// node/transistor index and stuck value — names are excluded, mirroring
/// networkFingerprint()). Two fault lists that inject the same faults in the
/// same order fingerprint equal; the service-mode EnginePool keys pooled
/// engines on (networkFingerprint, faultListFingerprint, options) to decide
/// whether a live engine can serve a request as-is.
std::uint64_t faultListFingerprint(const FaultList& faults);

/// Simulation strategy selector for EngineOptions::backend.
enum class Backend : std::uint8_t {
  Serial,      ///< one fresh LogicSimulator replay per fault (paper §1)
  Concurrent,  ///< difference simulation of all faults at once (paper §4)
};

/// Engine construction knobs (backend, detection policy, parallelism).
struct EngineOptions {
  /// Simulation strategy (default: the paper's concurrent algorithm).
  Backend backend = Backend::Concurrent;
  /// Switch-level simulation options forwarded to the core engines.
  SimOptions sim;
  /// Output-mismatch detection criterion.
  DetectionPolicy policy = DetectionPolicy::DefiniteOnly;
  /// Drop faulty circuits once detected (concurrent backends only; the
  /// serial backend always stops a fault's replay at first detection).
  bool dropDetected = true;
  /// Number of parallel workers for the concurrent backend. jobs > 1 records
  /// a good-machine checkpoint once, cuts the fault list into batches and
  /// runs one checkpoint-replaying engine per batch, work-stealing style;
  /// results are deterministic and bit-identical to jobs = 1.
  unsigned jobs = 1;
  /// Fault-batch size for the sharded scheduler (jobs > 1 only): 0 selects
  /// the auto schedule (~4 batches per worker, floored at 32 faults), any
  /// other value fixed-size batches of that many faults. Any setting
  /// produces identical results; the knob trades scheduling granularity
  /// against per-batch replay overhead.
  std::uint32_t batchFaults = 0;
  /// Fault-lane sharing window for the concurrent backends (forwarded to
  /// FsimOptions::laneWidth). Faulty machines whose states pack into the
  /// same 64-bit lane word (2 bits per machine) and that provably observe
  /// identical vicinities are settled by one solver pass and committed with
  /// word-wide lane operations. Power of two in [1, 32]; 1 (the default)
  /// keeps the scalar path. Results are bit-identical for every width —
  /// including nodeEvals, which credits the work a standalone run of each
  /// shared machine would have spent. Composes with jobs > 1: each sharded
  /// worker lane-batches the faults inside its claimed batches.
  std::uint32_t laneWidth = 1;
  /// Shared good-machine checkpoint cache (jobs > 1 only). Engines handed
  /// the same store record the fault-free run once per (network, sequence)
  /// and reuse it across engines, rows and run() calls — the cache survives
  /// Engine::reset(), which only rebuilds the backend. Null (the default)
  /// gives each sharded backend a private store with `checkpointBudgetBytes`
  /// as its budget; that private cache still persists across run() calls
  /// but dies with reset(). Results are bit-identical either way.
  std::shared_ptr<CheckpointStore> checkpointStore;
  /// Memory budget in bytes for recorded good-machine checkpoints (the CLI's
  /// `--checkpoint-budget`); 0 = unbounded (in-memory trace). A positive
  /// budget spills the settle-block trace to a temp file and replays through
  /// a sliding window so GoodMachineCheckpoint::memoryBytes() stays within
  /// budget — the knob that opens million-pattern sequences. Applies to the
  /// private store only; a shared `checkpointStore` carries its own budget.
  std::size_t checkpointBudgetBytes = 0;
  /// Batch-layout policy for the sharded scheduler (jobs > 1 only; the CLI's
  /// `--schedule`). Contiguous (the default) slices the global fault order;
  /// History lays batches out by a prior run's detection record — expensive
  /// (late- or never-detected) faults are co-batched so the cheap batches
  /// exit their replay early, and lane windows with matching history are
  /// hinted to the share matcher. Every policy is bit-identical in results
  /// (detections, nodeEvals, rows); only wall clock changes. The History
  /// policy falls back to the contiguous layout until a history exists in
  /// `historyStore` or `historyFile`.
  sched::SchedulePolicy schedule = sched::SchedulePolicy::Contiguous;
  /// Shared in-memory detection-history cache (jobs > 1 only), the
  /// scheduling twin of `checkpointStore`: every sharded run records its
  /// detection outcome into the store (keyed on the fault-list fingerprint)
  /// and the History policy schedules on the newest record. Engines handed
  /// the same store feed each other — the serve daemon hangs one store off
  /// its engine pool, giving per-tenant history across requests. Null keeps
  /// history per-runner only (still recorded when `historyFile` is set).
  std::shared_ptr<sched::HistoryStore> historyStore;
  /// Detection-history sidecar path (jobs > 1 only; the CLI's
  /// `--history-file`): loaded as the fallback history source and rewritten
  /// after every sharded run, so history survives process restarts. Empty
  /// disables the sidecar.
  std::string historyFile;
  /// Opt-in async read-ahead of the next settle chunk during checkpoint
  /// replay (forwarded to FsimOptions::checkpointReadAhead; meaningful only
  /// when the checkpoint store spills under a budget). Bit-identical
  /// results; costs up to one extra resident chunk per replaying engine.
  bool checkpointReadAhead = false;
  /// Forwarded to FsimOptions::debugLoseTriggerEvery (concurrent backends
  /// only): the differential-fuzzing oracle's self-test bug injector. 0 = off.
  std::uint32_t debugLoseTriggerEvery = 0;
};

/// The facade every caller should use: owns the workload, builds the
/// selected backend, and delegates the FaultSimulator contract to it.
class Engine : public FaultSimulator {
 public:
  /// Takes ownership of the network and fault list (copy or move in).
  Engine(Network net, FaultList faults, EngineOptions options = {});

  Engine(const Engine&) = delete;             ///< non-copyable (owns backend)
  Engine& operator=(const Engine&) = delete;  ///< non-copyable (owns backend)

  /// Name of the selected backend ("serial", "concurrent", "sharded").
  const char* backendName() const override { return backend_->backendName(); }
  /// The owned network.
  const Network& network() const override { return net_; }
  /// The owned fault list.
  const FaultList& faults() const override { return faults_; }
  /// The options the engine was constructed with.
  const EngineOptions& options() const { return options_; }

  /// Runs the sequence on the selected backend (fresh session per call).
  FaultSimResult run(const TestSequence& seq,
                     const PatternCallback& onPattern) override;
  using FaultSimulator::run;

  /// Streaming run on the selected backend (see FaultSimulator::runStream):
  /// the concurrent and sharded backends pull patterns from the source
  /// directly with flat resident memory; the serial backend falls back to
  /// materializing the source.
  FaultSimResult runStream(PatternSource& source, RowSink* sink = nullptr,
                           const PatternCallback& onPattern = {}) override;

  /// Rebuilds the backend from scratch (fresh-session semantics).
  void reset() override;

  /// Replaces the engine's workload in place and rebuilds the backend,
  /// keeping the current options — the engines-as-reusable-resources hook
  /// the service-mode EnginePool uses instead of destroying and
  /// reconstructing Engine objects per request. A shared
  /// EngineOptions::checkpointStore is carried over, so a rebound engine
  /// still reuses every recording the store holds for its new workload.
  void rebind(Network net, FaultList faults);

  /// Like rebind(net, faults) but also replaces the options (e.g. a request
  /// asking for a different jobs count or detection policy).
  void rebind(Network net, FaultList faults, EngineOptions options);

  /// Structural fingerprint of the owned network (networkFingerprint(),
  /// cached until rebind()). Equal fingerprints mean a checkpoint or a
  /// pooled engine recorded for one network is valid for the other.
  std::uint64_t netFingerprint() const;

  /// Fingerprint of the owned fault list (faultListFingerprint(), cached
  /// until rebind()).
  std::uint64_t faultsFingerprint() const;

  /// Content fingerprint of a test sequence — the key the checkpoint store
  /// pairs with netFingerprint(); re-exported from GoodMachineCheckpoint so
  /// service-layer callers need only the Engine API.
  static std::uint64_t sequenceFingerprint(const TestSequence& seq);

  /// Good-circuit-only reference run (output trace + timing), the baseline
  /// the paper reports every fault-simulation cost against.
  GoodRunResult runGood(const TestSequence& seq) const;

 private:
  std::unique_ptr<FaultSimulator> makeBackend() const;

  Network net_;
  FaultList faults_;
  EngineOptions options_;
  std::unique_ptr<FaultSimulator> backend_;
  /// Lazily computed, invalidated by rebind() (the workload is otherwise
  /// immutable for the engine's lifetime).
  mutable std::optional<std::uint64_t> netFp_;
  mutable std::optional<std::uint64_t> faultsFp_;  ///< see netFp_
};

}  // namespace fmossim
