/// \file
/// Adapter backends implementing the FaultSimulator interface over the two
/// existing engines.
///
///   * ConcurrentBackend wraps ConcurrentFaultSimulator (paper §4). The core
///     engine is single-shot ("run may only be called once"); the adapter
///     constructs a fresh engine per run() call, giving the interface its
///     repeatable-run semantics without touching the core's invariants.
///   * SerialBackend wraps SerialFaultSimulator (paper §1/§5) and lifts its
///     SerialRunResult into the shared FaultSimResult: per-pattern detection
///     counts, aggregated per-pattern cost rows, coverage(), and potential
///     (X) detections are populated exactly like the concurrent backend's,
///     so CSV output and the stats recorder work identically for both.
#pragma once

#include "api/fault_simulator.hpp"
#include "core/serial_sim.hpp"

namespace fmossim {

/// FaultSimulator adapter over the concurrent difference-simulation engine
/// (one fresh ConcurrentFaultSimulator per run() call).
class ConcurrentBackend : public FaultSimulator {
 public:
  /// Captures the workload by reference (net) and copy (faults/options).
  ConcurrentBackend(const Network& net, FaultList faults,
                    FsimOptions options = {});

  /// Always "concurrent".
  const char* backendName() const override { return "concurrent"; }
  /// The referenced network.
  const Network& network() const override { return net_; }
  /// The injected fault list.
  const FaultList& faults() const override { return faults_; }

  /// Fresh concurrent simulation of the whole fault list.
  FaultSimResult run(const TestSequence& seq,
                     const PatternCallback& onPattern) override;
  using FaultSimulator::run;

  /// Native streaming run over the core engine's PatternSource entry —
  /// rowless result, flat resident memory (see FaultSimulator::runStream).
  FaultSimResult runStream(PatternSource& source, RowSink* sink = nullptr,
                           const PatternCallback& onPattern = {}) override;

 private:
  const Network& net_;
  FaultList faults_;
  FsimOptions options_;
};

/// FaultSimulator adapter over the serial replay engine (the paper's
/// baseline: one fresh LogicSimulator replay per fault).
class SerialBackend : public FaultSimulator {
 public:
  /// `dropDetected` only affects how perPattern.aliveAfter is reported (the
  /// serial replay always stops a fault at first detection): true mirrors a
  /// dropping concurrent run (undetected-so-far), false mirrors a no-drop
  /// run (all faults stay "being simulated").
  SerialBackend(const Network& net, FaultList faults,
                SerialOptions options = {}, bool dropDetected = true);

  /// Always "serial".
  const char* backendName() const override { return "serial"; }
  /// The referenced network.
  const Network& network() const override { return net_; }
  /// The injected fault list.
  const FaultList& faults() const override { return faults_; }

  /// Serial replay of every fault. The result's totalSeconds/totalNodeEvals
  /// include the good-circuit reference run (the concurrent engine likewise
  /// simulates the good circuit as part of its run); perPattern rows cover
  /// the faulty-circuit replays.
  FaultSimResult run(const TestSequence& seq,
                     const PatternCallback& onPattern) override;
  using FaultSimulator::run;

  /// The most recent run's serial-specific data (good-circuit trace and
  /// timing split), for the paper-method estimator and benches.
  const SerialRunResult& lastSerialResult() const { return last_; }

  /// Clears lastSerialResult().
  void reset() override { last_ = {}; }

 private:
  const Network& net_;
  FaultList faults_;
  SerialOptions options_;
  bool dropDetected_;
  SerialRunResult last_;
};

/// Lifts a SerialRunResult into the shared FaultSimResult shape.
FaultSimResult toFaultSimResult(const SerialRunResult& serial,
                                std::uint32_t numPatterns,
                                bool dropDetected = true);

}  // namespace fmossim
