#include "stats/recorder.hpp"

#include <cmath>
#include <fstream>

#include "util/error.hpp"

namespace fmossim {

HeadTailSplit splitHeadTail(const FaultSimResult& res, std::uint32_t headPatterns) {
  HeadTailSplit split;
  for (const PatternStat& st : res.perPattern) {
    if (st.index < headPatterns) {
      split.headSeconds += st.seconds;
      split.headNodeEvals += st.nodeEvals;
      split.detectedInHead += st.newlyDetected;
    } else {
      split.tailSeconds += st.seconds;
      split.tailNodeEvals += st.nodeEvals;
      split.detectedInTail += st.newlyDetected;
    }
  }
  return split;
}

double meanSecondsPerPattern(const FaultSimResult& res, std::uint32_t from,
                             std::uint32_t to) {
  double sum = 0.0;
  std::uint32_t n = 0;
  for (const PatternStat& st : res.perPattern) {
    if (st.index >= from && st.index < to) {
      sum += st.seconds;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double meanNodeEvalsPerPattern(const FaultSimResult& res, std::uint32_t from,
                               std::uint32_t to) {
  double sum = 0.0;
  std::uint32_t n = 0;
  for (const PatternStat& st : res.perPattern) {
    if (st.index >= from && st.index < to) {
      sum += double(st.nodeEvals);
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

std::vector<SeriesRow> downsample(const FaultSimResult& res, std::uint32_t buckets) {
  std::vector<SeriesRow> rows;
  const std::uint32_t n = static_cast<std::uint32_t>(res.perPattern.size());
  if (n == 0 || buckets == 0) return rows;
  buckets = std::min(buckets, n);
  for (std::uint32_t b = 0; b < buckets; ++b) {
    const std::uint32_t lo = static_cast<std::uint32_t>(
        std::uint64_t(b) * n / buckets);
    const std::uint32_t hi = static_cast<std::uint32_t>(
        std::uint64_t(b + 1) * n / buckets);
    if (hi <= lo) continue;
    SeriesRow row{};
    row.pattern = lo;
    double secs = 0.0;
    double evals = 0.0;
    for (std::uint32_t i = lo; i < hi; ++i) {
      secs += res.perPattern[i].seconds;
      evals += double(res.perPattern[i].nodeEvals);
    }
    row.secondsPerPattern = secs / (hi - lo);
    row.nodeEvalsPerPattern = evals / (hi - lo);
    row.cumulativeDetected = res.perPattern[hi - 1].cumulativeDetected;
    row.alive = res.perPattern[hi - 1].aliveAfter;
    rows.push_back(row);
  }
  return rows;
}

void writeCsv(const FaultSimResult& res, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw Error("cannot open CSV output file '" + path + "'");
  }
  out << "pattern,seconds,node_evals,newly_detected,cumulative_detected,alive\n";
  for (const PatternStat& st : res.perPattern) {
    out << st.index << ',' << st.seconds << ',' << st.nodeEvals << ','
        << st.newlyDetected << ',' << st.cumulativeDetected << ','
        << st.aliveAfter << '\n';
  }
}

LinearFit fitLine(const std::vector<double>& x, const std::vector<double>& y) {
  FMOSSIM_ASSERT(x.size() == y.size() && x.size() >= 2,
                 "fitLine requires >= 2 matched points");
  const double n = double(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ssRes = 0, ssTot = 0;
  const double meanY = sy / n;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.intercept + fit.slope * x[i];
    ssRes += (y[i] - pred) * (y[i] - pred);
    ssTot += (y[i] - meanY) * (y[i] - meanY);
  }
  fit.r2 = ssTot == 0.0 ? 1.0 : 1.0 - ssRes / ssTot;
  return fit;
}

}  // namespace fmossim
