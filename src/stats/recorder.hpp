// Aggregation helpers over per-pattern statistics — the raw series behind
// Figures 1-3 — plus CSV output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/concurrent_sim.hpp"

namespace fmossim {

/// Head/tail split of a run (paper Figure 1: the "head" is the first
/// `headPatterns` patterns; the paper uses 87 for RAM64 sequence 1).
struct HeadTailSplit {
  double headSeconds = 0.0;
  double tailSeconds = 0.0;
  std::uint64_t headNodeEvals = 0;
  std::uint64_t tailNodeEvals = 0;
  std::uint32_t detectedInHead = 0;
  std::uint32_t detectedInTail = 0;

  double headSecondsFraction() const {
    const double total = headSeconds + tailSeconds;
    return total <= 0.0 ? 0.0 : headSeconds / total;
  }
};

HeadTailSplit splitHeadTail(const FaultSimResult& res, std::uint32_t headPatterns);

/// Mean seconds per pattern over a slice [from, to) of the run.
double meanSecondsPerPattern(const FaultSimResult& res, std::uint32_t from,
                             std::uint32_t to);
double meanNodeEvalsPerPattern(const FaultSimResult& res, std::uint32_t from,
                               std::uint32_t to);

/// Downsamples the per-pattern series into `buckets` averaged rows
/// (pattern index = bucket start; seconds and evals averaged; detections
/// cumulative at bucket end). Used by the text renderings of Figures 1-2.
struct SeriesRow {
  std::uint32_t pattern;
  double secondsPerPattern;
  double nodeEvalsPerPattern;
  std::uint32_t cumulativeDetected;
  std::uint32_t alive;
};
std::vector<SeriesRow> downsample(const FaultSimResult& res, std::uint32_t buckets);

/// Writes the full per-pattern series as CSV (header + one row per pattern).
void writeCsv(const FaultSimResult& res, const std::string& path);

/// Simple least-squares fit y = a + b*x; returns {a, b, r2}. Used to verify
/// the linearity claims of Figure 3.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fitLine(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace fmossim
