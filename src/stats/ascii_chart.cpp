#include "stats/ascii_chart.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace fmossim {

std::string AsciiChart::render(const std::vector<double>& y1,
                               const std::string& label1,
                               const std::vector<double>& y2,
                               const std::string& label2) const {
  if (y1.empty() || width_ == 0 || height_ == 0) return "";

  const auto resample = [this](const std::vector<double>& y) {
    std::vector<double> out(width_, 0.0);
    for (unsigned c = 0; c < width_; ++c) {
      const std::size_t lo = std::size_t(c) * y.size() / width_;
      std::size_t hi = std::size_t(c + 1) * y.size() / width_;
      hi = std::max(hi, lo + 1);
      double sum = 0.0;
      for (std::size_t i = lo; i < hi && i < y.size(); ++i) sum += y[i];
      out[c] = sum / double(hi - lo);
    }
    return out;
  };

  const std::vector<double> s1 = resample(y1);
  const std::vector<double> s2 = y2.empty() ? std::vector<double>{} : resample(y2);
  const double max1 = std::max(1e-300, *std::max_element(s1.begin(), s1.end()));
  const double max2 =
      s2.empty() ? 1.0
                 : std::max(1e-300, *std::max_element(s2.begin(), s2.end()));

  std::string out;
  out += "  * " + label1 + format(" (max %.4g)", max1);
  if (!s2.empty()) out += "   o " + label2 + format(" (max %.4g)", max2);
  out += '\n';

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  const auto plot = [&](const std::vector<double>& s, double maxV, char glyph) {
    for (unsigned c = 0; c < width_; ++c) {
      const double frac = std::clamp(s[c] / maxV, 0.0, 1.0);
      const unsigned row =
          height_ - 1 -
          std::min<unsigned>(height_ - 1,
                             unsigned(std::lround(frac * (height_ - 1))));
      char& cell = grid[row][c];
      cell = (cell == ' ' || cell == glyph) ? glyph : '#';
    }
  };
  plot(s1, max1, '*');
  if (!s2.empty()) plot(s2, max2, 'o');

  for (const std::string& row : grid) {
    out += "  |" + row + '\n';
  }
  out += "  +" + std::string(width_, '-') + "\n";
  return out;
}

}  // namespace fmossim
