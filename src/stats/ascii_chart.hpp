// Minimal ASCII chart renderer used by the benchmark harnesses to print
// Figure-1/2/3 style plots into the terminal.
#pragma once

#include <string>
#include <vector>

namespace fmossim {

/// Renders one or two series over a shared x axis as a column chart.
/// Each series is scaled to its own maximum; series 1 plots with '*',
/// series 2 with 'o' ('#' where they coincide).
class AsciiChart {
 public:
  AsciiChart(unsigned width, unsigned height) : width_(width), height_(height) {}

  /// Renders y1 (and optionally y2) against implicit x = element index.
  /// Labels are printed above the chart with the series glyphs.
  std::string render(const std::vector<double>& y1, const std::string& label1,
                     const std::vector<double>& y2 = {},
                     const std::string& label2 = "") const;

 private:
  unsigned width_;
  unsigned height_;
};

}  // namespace fmossim
