#include "circuits/ram.hpp"

#include "circuits/cells.hpp"
#include "util/strings.hpp"

namespace fmossim {

namespace {

unsigned log2Exact(unsigned v, const char* what) {
  if (v < 2 || (v & (v - 1)) != 0) {
    throw Error(std::string("RAM ") + what + " must be a power of two >= 2");
  }
  unsigned bits = 0;
  while ((1u << bits) < v) ++bits;
  return bits;
}

}  // namespace

unsigned RamConfig::rowAddressBits() const { return log2Exact(rows, "rows"); }
unsigned RamConfig::colAddressBits() const { return log2Exact(cols, "cols"); }

RamConfig ram64Config() { return RamConfig{8, 8, true}; }
RamConfig ram256Config() { return RamConfig{16, 16, true}; }

RamCircuit buildRam(const RamConfig& config) {
  const unsigned R = config.rows;
  const unsigned C = config.cols;
  const unsigned nr = config.rowAddressBits();
  const unsigned nc = config.colAddressBits();

  NetworkBuilder b;
  NmosCells cells(b);
  const Supplies rails = ensureSupplies(b);

  RamCircuit ram;
  ram.config = config;
  ram.vdd = rails.vdd;
  ram.gnd = rails.gnd;

  // --- primary inputs -------------------------------------------------------
  ram.phiP = b.addInput("phiP");
  ram.phiR = b.addInput("phiR");
  ram.phiL = b.addInput("phiL");
  ram.phiW = b.addInput("phiW");
  ram.we = b.addInput("WE");
  ram.din = b.addInput("din");
  for (unsigned i = 0; i < nr + nc; ++i) {
    ram.addr.push_back(b.addInput("a" + std::to_string(i)));
  }

  // --- clock and control buffers -------------------------------------------
  // Each clock gets an inverted and a true buffered form; the buffered nets
  // are storage nodes, so stuck-at faults on them model frozen clock lines
  // (the "major faults such as frozen clock lines" of §5).
  const NodeId phiPn = cells.inverter(ram.phiP, "phiP.n");
  const NodeId phiPt = cells.inverter(phiPn, "phiP.t");
  const NodeId phiRn = cells.inverter(ram.phiR, "phiR.n");
  const NodeId phiLn = cells.inverter(ram.phiL, "phiL.n");
  const NodeId phiLt = cells.inverter(phiLn, "phiL.t");
  const NodeId phiWn = cells.inverter(ram.phiW, "phiW.n");
  const NodeId weN = cells.inverter(ram.we, "WE.n");
  const NodeId dinN = cells.inverter(ram.din, "din.n");
  const NodeId dinT = cells.inverter(dinN, "din.t");
  (void)phiPt;

  // Address buffers: complemented and true forms per bit.
  std::vector<NodeId> aN(nr + nc), aT(nr + nc);
  for (unsigned i = 0; i < nr + nc; ++i) {
    aN[i] = cells.inverter(ram.addr[i], format("a%u.n", i));
    aT[i] = cells.inverter(aN[i], format("a%u.t", i));
  }

  // Decoder input selection: NOR output is high iff every input is low, so
  // for an address value with bit=1 feed the complemented line.
  const auto decodeInputs = [&](unsigned value, unsigned firstBit,
                                unsigned numBits) {
    std::vector<NodeId> ins;
    for (unsigned bit = 0; bit < numBits; ++bit) {
      const bool wantOne = ((value >> bit) & 1u) != 0;
      ins.push_back(wantOne ? aN[firstBit + bit] : aT[firstBit + bit]);
    }
    return ins;
  };

  // --- row decoders ----------------------------------------------------------
  std::vector<NodeId> rwl(R), wwl(R);
  for (unsigned r = 0; r < R; ++r) {
    auto rIns = decodeInputs(r, 0, nr);
    rIns.push_back(phiRn);
    rwl[r] = cells.nor(rIns, format("rwl%u", r));
    auto wIns = decodeInputs(r, 0, nr);
    wIns.push_back(phiWn);
    wwl[r] = cells.nor(wIns, format("wwl%u", r));
  }

  // --- column periphery ------------------------------------------------------
  const NodeId outBus = b.addNode("outbus", 2);
  std::vector<NodeId> latch(C);
  for (unsigned c = 0; c < C; ++c) {
    const NodeId rbl = b.addNode(format("rbl%u", c), 2);
    const NodeId wbl = b.addNode(format("wbl%u", c), 2);
    ram.readBitLines.push_back(rbl);
    ram.writeBitLines.push_back(wbl);

    cells.precharge(phiPt, rbl);

    // Column select gates (clock folded into the decode NOR).
    auto rIns = decodeInputs(c, nr, nc);
    rIns.push_back(phiLn);
    const NodeId rsel = cells.nor(rIns, format("rsel%u", c));
    auto wIns = decodeInputs(c, nr, nc);
    wIns.push_back(weN);
    wIns.push_back(phiWn);
    const NodeId wsel = cells.nor(wIns, format("wsel%u", c));

    // Sense inverter: n1 = ~RBL = stored value of the addressed cell.
    const NodeId n1 = cells.inverter(rbl, format("col%u.n1", c));
    // Dynamic column latch (refresh register).
    latch[c] = cells.dynamicLatch(n1, phiLt, format("col%u.lat", c));
    // Data-in override for writes.
    cells.pass(wsel, dinT, latch[c]);
    // Write-back drivers onto the write bit line.
    const NodeId la = cells.inverter(latch[c], format("col%u.la", c));
    cells.inverterInto(la, wbl);
    // Column read multiplexer onto the output bus.
    cells.pass(rsel, n1, outBus);
  }

  // --- memory array ----------------------------------------------------------
  for (unsigned r = 0; r < R; ++r) {
    for (unsigned c = 0; c < C; ++c) {
      const NodeId s = b.addNode(format("cell%u.%u", r, c));
      const NodeId mid = b.addNode(format("cmid%u.%u", r, c));
      ram.cells.push_back(s);
      cells.pass(wwl[r], ram.writeBitLines[c], s);               // T1
      b.addTransistor(TransistorType::NType, 2, s, mid, rails.gnd);  // T2
      cells.pass(rwl[r], ram.readBitLines[c], mid);              // T3
    }
  }

  // --- output latch ----------------------------------------------------------
  const NodeId o1 = cells.inverter(outBus, "out.n");
  ram.dout = cells.inverter(o1, "dout");

  // --- bit line short fault devices -----------------------------------------
  if (config.withBitLineShorts) {
    for (unsigned c = 0; c + 1 < C; ++c) {
      ram.bitLineShorts.push_back(
          b.addShortFaultDevice(ram.readBitLines[c], ram.readBitLines[c + 1]));
      ram.bitLineShorts.push_back(b.addShortFaultDevice(
          ram.writeBitLines[c], ram.writeBitLines[c + 1]));
    }
  }

  ram.net = b.build();
  return ram;
}

}  // namespace fmossim
