#include "circuits/demo_circuits.hpp"

#include "circuits/cells.hpp"
#include "util/strings.hpp"

namespace fmossim {

ShiftRegister buildShiftRegister(unsigned stages) {
  if (stages == 0) {
    throw Error("shift register needs at least one stage");
  }
  NetworkBuilder b;
  NmosCells cells(b);
  ShiftRegister sr;
  sr.stages = stages;
  sr.din = b.addInput("din");
  sr.phi1 = b.addInput("phi1");
  sr.phi2 = b.addInput("phi2");

  NodeId stageIn = sr.din;
  for (unsigned i = 0; i < stages; ++i) {
    const NodeId m = cells.dynamicLatch(stageIn, sr.phi1, format("m%u", i));
    const NodeId mb = cells.inverter(m, format("mb%u", i));
    const NodeId s = cells.dynamicLatch(mb, sr.phi2, format("s%u", i));
    const NodeId q = cells.inverter(s, format("q%u", i));
    sr.q.push_back(q);
    stageIn = q;
  }
  sr.net = b.build();
  sr.vdd = sr.net.nodeByName("Vdd");
  sr.gnd = sr.net.nodeByName("Gnd");
  return sr;
}

PrechargedBus buildPrechargedBus(unsigned sources) {
  if (sources == 0) {
    throw Error("precharged bus needs at least one source");
  }
  NetworkBuilder b;
  NmosCells cells(b);
  PrechargedBus bus;
  bus.sources = sources;
  bus.phiP = b.addInput("phiP");
  bus.busA = b.addNode("busA", 2);
  bus.busB = b.addNode("busB", 2);
  cells.precharge(bus.phiP, bus.busA);

  for (unsigned i = 0; i < sources; ++i) {
    bus.enable.push_back(b.addInput(format("en%u", i)));
    bus.data.push_back(b.addInput(format("d%u", i)));
    // Pull-down chain: busA/busB - [gate d_i] - mid - [gate en_i] - Gnd.
    const NodeId half = (i < sources / 2) ? bus.busA : bus.busB;
    const NodeId mid = b.addNode(format("pd%u", i));
    b.addTransistor(TransistorType::NType, 2, bus.data[i], half, mid);
    b.addTransistor(TransistorType::NType, 2, bus.enable[i], mid,
                    b.getOrAddNode("Gnd"));
  }

  // The bus wire is modeled as two halves joined by an open fault device;
  // a short fault device ties the bus to the first enable line.
  bus.openDevice = b.addOpenFaultDevice(bus.busA, bus.busB);
  bus.shortDevice = b.addShortFaultDevice(bus.busA, bus.enable[0]);

  bus.sense = cells.inverter(bus.busB, "sense");
  bus.net = b.build();
  bus.vdd = bus.net.nodeByName("Vdd");
  bus.gnd = bus.net.nodeByName("Gnd");
  return bus;
}

}  // namespace fmossim
