#include "circuits/cells.hpp"

namespace fmossim {

Supplies ensureSupplies(NetworkBuilder& b) {
  Supplies rails;
  rails.vdd = b.hasNode("Vdd") ? b.getOrAddNode("Vdd") : b.addInput("Vdd");
  rails.gnd = b.hasNode("Gnd") ? b.getOrAddNode("Gnd") : b.addInput("Gnd");
  return rails;
}

// --- nMOS ------------------------------------------------------------------

NmosCells::NmosCells(NetworkBuilder& b, CellStrengths strengths)
    : b_(b), rails_(ensureSupplies(b)), s_(strengths) {}

NodeId NmosCells::inverter(NodeId in, const std::string& outName) {
  return inverterInto(in, b_.addNode(outName));
}

NodeId NmosCells::inverterInto(NodeId in, NodeId out) {
  // Depletion load: always-on weak pull-up, gate tied to the output
  // (standard nMOS practice; the d-type conducts regardless of gate).
  b_.addTransistor(TransistorType::DType, s_.load, out, rails_.vdd, out);
  b_.addTransistor(TransistorType::NType, s_.driver, in, out, rails_.gnd);
  return out;
}

NodeId NmosCells::nor(const std::vector<NodeId>& ins, const std::string& outName) {
  return norInto(ins, b_.addNode(outName));
}

NodeId NmosCells::norInto(const std::vector<NodeId>& ins, NodeId out) {
  FMOSSIM_ASSERT(!ins.empty(), "NOR requires at least one input");
  b_.addTransistor(TransistorType::DType, s_.load, out, rails_.vdd, out);
  for (const NodeId in : ins) {
    b_.addTransistor(TransistorType::NType, s_.driver, in, out, rails_.gnd);
  }
  return out;
}

NodeId NmosCells::nand(const std::vector<NodeId>& ins, const std::string& outName) {
  return nandInto(ins, b_.addNode(outName));
}

NodeId NmosCells::nandInto(const std::vector<NodeId>& ins, NodeId out) {
  FMOSSIM_ASSERT(!ins.empty(), "NAND requires at least one input");
  b_.addTransistor(TransistorType::DType, s_.load, out, rails_.vdd, out);
  NodeId chain = out;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    const NodeId next = (i + 1 == ins.size())
                            ? rails_.gnd
                            : b_.addNode(b_.uniqueName("nand.chain"));
    b_.addTransistor(TransistorType::NType, s_.driver, ins[i], chain, next);
    chain = next;
  }
  return out;
}

NodeId NmosCells::buffer(NodeId in, const std::string& outName) {
  const NodeId mid = inverter(in, b_.uniqueName(outName + ".inv"));
  return inverter(mid, outName);
}

TransId NmosCells::pass(NodeId gate, NodeId a, NodeId b) {
  return b_.addTransistor(TransistorType::NType, s_.driver, gate, a, b);
}

TransId NmosCells::precharge(NodeId clk, NodeId node) {
  return b_.addTransistor(TransistorType::NType, s_.driver, clk, rails_.vdd, node);
}

NodeId NmosCells::dynamicLatch(NodeId in, NodeId clk, const std::string& latchName) {
  const NodeId latch = b_.addNode(latchName);
  pass(clk, in, latch);
  return latch;
}

// --- CMOS ------------------------------------------------------------------

CmosCells::CmosCells(NetworkBuilder& b, unsigned strength)
    : b_(b), rails_(ensureSupplies(b)), strength_(strength) {}

NodeId CmosCells::inverter(NodeId in, const std::string& outName) {
  return inverterInto(in, b_.addNode(outName));
}

NodeId CmosCells::inverterInto(NodeId in, NodeId out) {
  b_.addTransistor(TransistorType::PType, strength_, in, rails_.vdd, out);
  b_.addTransistor(TransistorType::NType, strength_, in, out, rails_.gnd);
  return out;
}

NodeId CmosCells::series(TransistorType type, NodeId rail, NodeId out,
                         const std::vector<NodeId>& gates, const char* tag) {
  NodeId chain = rail;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const NodeId next =
        (i + 1 == gates.size()) ? out : b_.addNode(b_.uniqueName(tag));
    b_.addTransistor(type, strength_, gates[i], chain, next);
    chain = next;
  }
  return out;
}

void CmosCells::parallel(TransistorType type, NodeId rail, NodeId out,
                         const std::vector<NodeId>& gates) {
  for (const NodeId g : gates) {
    b_.addTransistor(type, strength_, g, rail, out);
  }
}

NodeId CmosCells::nand(const std::vector<NodeId>& ins, const std::string& outName) {
  return nandInto(ins, b_.addNode(outName));
}

NodeId CmosCells::nandInto(const std::vector<NodeId>& ins, NodeId out) {
  FMOSSIM_ASSERT(!ins.empty(), "NAND requires at least one input");
  parallel(TransistorType::PType, rails_.vdd, out, ins);
  series(TransistorType::NType, rails_.gnd, out, ins, "cnand.chain");
  return out;
}

NodeId CmosCells::nor(const std::vector<NodeId>& ins, const std::string& outName) {
  return norInto(ins, b_.addNode(outName));
}

NodeId CmosCells::norInto(const std::vector<NodeId>& ins, NodeId out) {
  FMOSSIM_ASSERT(!ins.empty(), "NOR requires at least one input");
  series(TransistorType::PType, rails_.vdd, out, ins, "cnor.chain");
  parallel(TransistorType::NType, rails_.gnd, out, ins);
  return out;
}

NodeId CmosCells::andGate(const std::vector<NodeId>& ins, const std::string& outName) {
  const NodeId n = nand(ins, b_.uniqueName(outName + ".nand"));
  return inverter(n, outName);
}

NodeId CmosCells::orGate(const std::vector<NodeId>& ins, const std::string& outName) {
  const NodeId n = nor(ins, b_.uniqueName(outName + ".nor"));
  return inverter(n, outName);
}

NodeId CmosCells::xorGate(NodeId a, NodeId b, const std::string& outName) {
  // a^b = NOT( (a AND b) OR (NOT a AND NOT b) )
  //     = NAND(nand(a,b), or(a,b)) composed from primitive stages:
  const NodeId nab = nand({a, b}, b_.uniqueName(outName + ".nand"));
  const NodeId oab = orGate({a, b}, b_.uniqueName(outName + ".or"));
  return andGate({nab, oab}, outName);
}

NodeId CmosCells::xnorGate(NodeId a, NodeId b, const std::string& outName) {
  const NodeId x = xorGate(a, b, b_.uniqueName(outName + ".xor"));
  return inverter(x, outName);
}

NodeId CmosCells::buffer(NodeId in, const std::string& outName) {
  const NodeId mid = inverter(in, b_.uniqueName(outName + ".inv"));
  return inverter(mid, outName);
}

void CmosCells::transmissionGate(NodeId ctrl, NodeId ctrlBar, NodeId a, NodeId b) {
  b_.addTransistor(TransistorType::NType, strength_, ctrl, a, b);
  b_.addTransistor(TransistorType::PType, strength_, ctrlBar, a, b);
}

}  // namespace fmossim
