// Small demonstration circuits used by the examples and integration tests:
// a two-phase dynamic shift register and a precharged pass-transistor bus —
// the MOS structure mix that motivates switch-level fault simulation.
#pragma once

#include <vector>

#include "switch/builder.hpp"

namespace fmossim {

/// Two-phase nMOS dynamic shift register:
///   per stage: master latch (pass gated by phi1) -> inverter ->
///              slave latch (pass gated by phi2) -> inverter -> q<i>
struct ShiftRegister {
  unsigned stages = 0;
  NodeId din, phi1, phi2;
  NodeId vdd, gnd;
  std::vector<NodeId> q;  ///< per-stage outputs (non-inverted)
  Network net;

  NodeId out() const { return q.back(); }
};

ShiftRegister buildShiftRegister(unsigned stages);

/// Precharged bus with pass-transistor drivers, plus declared short and open
/// fault devices (the §3 fault-injection constructions):
///   bus: size-2 node, precharged by phiP;
///   each source i pulls the bus low through (en_i AND data_i);
///   the bus is split into two halves joined by an open fault device, and a
///   short fault device ties the bus to the neighbouring control line.
struct PrechargedBus {
  unsigned sources = 0;
  NodeId phiP;
  NodeId vdd, gnd;
  std::vector<NodeId> enable;  ///< per-source enable inputs
  std::vector<NodeId> data;    ///< per-source data inputs
  NodeId busA, busB;           ///< the two halves of the bus wire
  NodeId sense;                ///< inverter output sensing busB
  TransId openDevice;          ///< open fault: busA / busB split
  TransId shortDevice;         ///< short fault: busA to enable[0]
  Network net;
};

PrechargedBus buildPrechargedBus(unsigned sources);

}  // namespace fmossim
