// Switch-level standard-cell library: nMOS ratioed gates and complementary
// CMOS gates, built transistor-by-transistor on a NetworkBuilder.
//
// The nMOS cells use the two-strength convention of paper §2: depletion-mode
// pull-up loads at strength 1 (weak), enhancement pull-downs at strength 2.
// CMOS cells use a single strength (strength 2) as the paper notes most CMOS
// circuits need.
//
// These cells are used by the RAM generator (paper §5), by the ISCAS gate
// expansion, and extensively by the tests.
#pragma once

#include <string>
#include <vector>

#include "switch/builder.hpp"

namespace fmossim {

/// Well-known supply rails; circuits create them once via ensureSupplies().
struct Supplies {
  NodeId vdd;
  NodeId gnd;
};

/// Returns the Vdd/Gnd input nodes, creating them if needed (named "Vdd" and
/// "Gnd").
Supplies ensureSupplies(NetworkBuilder& b);

/// Strength conventions used by the cell library.
struct CellStrengths {
  unsigned load = 1;    ///< depletion pull-up loads (weak)
  unsigned driver = 2;  ///< enhancement drivers / CMOS devices
};

/// nMOS cell generators. Every function returns the output node it created
/// (or was given). Output nodes are storage nodes of size 1 unless the
/// caller passes an existing node.
class NmosCells {
 public:
  NmosCells(NetworkBuilder& b, CellStrengths strengths = {});

  /// Ratioed inverter: depletion load + enhancement pull-down.
  NodeId inverter(NodeId in, const std::string& outName);
  NodeId inverterInto(NodeId in, NodeId out);

  /// k-input NOR: depletion load + parallel pull-downs.
  NodeId nor(const std::vector<NodeId>& ins, const std::string& outName);
  NodeId norInto(const std::vector<NodeId>& ins, NodeId out);

  /// k-input NAND: depletion load + series pull-downs.
  NodeId nand(const std::vector<NodeId>& ins, const std::string& outName);
  NodeId nandInto(const std::vector<NodeId>& ins, NodeId out);

  /// Non-inverting super-buffer (two inverters in series).
  NodeId buffer(NodeId in, const std::string& outName);

  /// Bidirectional pass transistor between a and b, gated by g.
  TransId pass(NodeId gate, NodeId a, NodeId b);

  /// Precharge device: n-type transistor from Vdd to the node, gated by clk.
  TransId precharge(NodeId clk, NodeId node);

  /// Dynamic latch: pass transistor into a storage node (the latch), which
  /// the caller typically buffers. Returns the latch node.
  NodeId dynamicLatch(NodeId in, NodeId clk, const std::string& latchName);

  NetworkBuilder& builder() { return b_; }

 private:
  NetworkBuilder& b_;
  Supplies rails_;
  CellStrengths s_;
};

/// CMOS cell generators (complementary pull-up / pull-down networks).
class CmosCells {
 public:
  CmosCells(NetworkBuilder& b, unsigned strength = 2);

  NodeId inverter(NodeId in, const std::string& outName);
  NodeId inverterInto(NodeId in, NodeId out);
  NodeId nand(const std::vector<NodeId>& ins, const std::string& outName);
  NodeId nandInto(const std::vector<NodeId>& ins, NodeId out);
  NodeId nor(const std::vector<NodeId>& ins, const std::string& outName);
  NodeId norInto(const std::vector<NodeId>& ins, NodeId out);
  /// AND / OR are NAND / NOR followed by an inverter.
  NodeId andGate(const std::vector<NodeId>& ins, const std::string& outName);
  NodeId orGate(const std::vector<NodeId>& ins, const std::string& outName);
  /// Two-input XOR/XNOR composed from NAND/NOR/INV stages.
  NodeId xorGate(NodeId a, NodeId b, const std::string& outName);
  NodeId xnorGate(NodeId a, NodeId b, const std::string& outName);
  /// Non-inverting buffer (two inverters).
  NodeId buffer(NodeId in, const std::string& outName);
  /// CMOS transmission gate (n and p device in parallel); ctrl and its
  /// complement must both be supplied.
  void transmissionGate(NodeId ctrl, NodeId ctrlBar, NodeId a, NodeId b);

  NetworkBuilder& builder() { return b_; }

 private:
  NodeId series(TransistorType type, NodeId rail, NodeId out,
                const std::vector<NodeId>& gates, const char* tag);
  void parallel(TransistorType type, NodeId rail, NodeId out,
                const std::vector<NodeId>& gates);

  NetworkBuilder& b_;
  Supplies rails_;
  unsigned strength_;
};

}  // namespace fmossim
