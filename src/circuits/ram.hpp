// Parameterised nMOS dynamic RAM generator — the benchmark circuits of
// paper §5.
//
// "The circuits incorporate a variety of MOS structures such as logic gates,
// bidirectional pass transistors, dynamic latches, precharged busses, and
// three-transistor dynamic memory elements."
//
// Organisation (rows R x columns C, one bit per cell, single data output):
//
//   * 3T dynamic cells: write-access pass transistor T1 (write word line ->
//     cell node S from the write bit line), storage read-out T2 (gate = S),
//     read-access T3 (read word line -> precharged read bit line).
//   * NOR row decoders with the access clocks folded into the decode gates:
//     RWL[r] = NOR(addr mismatches, ~phiR), WWL[r] = NOR(..., ~phiW).
//   * Per-column read path: precharged read bit line (size-2 bus), sense
//     inverter, dynamic column latch, and write-back drivers implementing
//     the classic read-modify-write cycle: every access refreshes the whole
//     selected row; a write overrides the selected column's latch with the
//     buffered data input.
//   * Column output multiplexer onto a shared output bus, then a dynamic
//     output latch driving the single observed pin "dout".
//
// A pattern (one read or write) cycles the four clocks through 6 input
// settings — exactly the paper's "sequence of 6 input settings":
//     1: phiP=1, address/WE/din applied   (precharge read bit lines)
//     2: phiP=0
//     3: phiR=1                           (read row onto the bit lines)
//     4: phiR=0, phiL=1                   (latch columns, drive output bus)
//     5: phiL=0, phiW=1                   (write back row / write data)
//     6: phiW=0
//
// The generator also inserts short fault devices between adjacent read bit
// lines and adjacent write bit lines ("single pairs of adjacent bit lines
// shorted together", §5).
#pragma once

#include <cstdint>
#include <vector>

#include "switch/builder.hpp"

namespace fmossim {

struct RamConfig {
  unsigned rows = 8;
  unsigned cols = 8;
  /// Insert adjacent-bit-line short fault devices (paper's bus short class).
  bool withBitLineShorts = true;

  unsigned words() const { return rows * cols; }
  unsigned rowAddressBits() const;
  unsigned colAddressBits() const;
  unsigned addressBits() const { return rowAddressBits() + colAddressBits(); }
};

/// RAM64 of the paper: 8x8, 64 words x 1 bit.
RamConfig ram64Config();
/// RAM256 of the paper: 16x16, 256 words x 1 bit.
RamConfig ram256Config();

/// The generated circuit plus its interface handles.
struct RamCircuit {
  RamConfig config;

  // Primary inputs.
  NodeId vdd, gnd;
  NodeId phiP, phiR, phiL, phiW;  ///< the four non-overlapping clocks
  NodeId we;                      ///< write enable
  NodeId din;                     ///< data input
  std::vector<NodeId> addr;       ///< row bits (MSB..LSB) then column bits

  // Observed output.
  NodeId dout;

  // Interesting internal nodes (fault universes, tests).
  std::vector<NodeId> readBitLines;   ///< per column
  std::vector<NodeId> writeBitLines;  ///< per column
  std::vector<NodeId> cells;          ///< cell storage node, index r*cols+c
  std::vector<TransId> bitLineShorts; ///< adjacent-pair short fault devices

  Network net;  // declared last: the builder fills the handles above

  NodeId cell(unsigned r, unsigned c) const {
    return cells[r * config.cols + c];
  }
};

/// Builds the RAM. Throws Error if rows/cols are not powers of two >= 2.
RamCircuit buildRam(const RamConfig& config);

}  // namespace fmossim
