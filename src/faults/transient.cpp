#include "faults/transient.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <string_view>

#include "util/strings.hpp"

namespace fmossim {

namespace {

[[noreturn]] void fail(std::size_t lineNo, const std::string& msg) {
  throw Error(format("transient spec line %zu: %s", lineNo, msg.c_str()));
}

/// Strict unsigned decimal parse (see fault_spec.cpp): every character must
/// be a digit and the value must fit the caller's range.
std::uint64_t parseUint64(std::string_view tok, std::size_t lineNo,
                          const char* what, std::uint64_t maxValue) {
  if (tok.empty()) fail(lineNo, format("empty %s", what));
  std::uint64_t value = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') {
      fail(lineNo, format("invalid %s '%s'", what, std::string(tok).c_str()));
    }
    if (value > maxValue / 10 ||
        value * 10 > maxValue - static_cast<std::uint64_t>(c - '0')) {
      fail(lineNo, format("%s '%s' out of range", what, std::string(tok).c_str()));
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

TransientFault TransientFault::flipAt(const Network& net, NodeId n,
                                      std::uint64_t atPattern,
                                      std::uint32_t pulsePatterns) {
  if (!n.valid() || n.value >= net.numNodes()) {
    throw Error("transient fault references an unknown node");
  }
  if (net.isInput(n)) {
    throw Error("transient fault on input node '" + net.node(n).name +
                "' (inputs are re-driven every pattern; flip a storage node)");
  }
  TransientFault f;
  f.node = n;
  f.atPattern = atPattern;
  f.pulsePatterns = pulsePatterns;
  if (pulsePatterns == 0) {
    f.name = format("%s/flip@%llu", net.node(n).name.c_str(),
                    static_cast<unsigned long long>(atPattern));
  } else {
    f.name = format("%s/flip@%llu+p%u", net.node(n).name.c_str(),
                    static_cast<unsigned long long>(atPattern), pulsePatterns);
  }
  return f;
}

TransientList parseTransientSpec(const Network& net, const std::string& text) {
  TransientList campaign;
  std::istringstream stream(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(stream, line)) {
    ++lineNo;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto tok = splitWhitespace(trimmed);
    const std::string kind = toUpper(tok[0]);

    if (kind == "FLIP") {
      if (tok.size() != 4 && tok.size() != 6) {
        fail(lineNo, "flip requires <node> @ <pattern> [pulse <d>]");
      }
      const NodeId n = net.findNode(std::string(tok[1]));
      if (!n.valid()) fail(lineNo, "unknown node '" + std::string(tok[1]) + "'");
      if (tok[2] != "@") {
        fail(lineNo, "expected '@', got '" + std::string(tok[2]) + "'");
      }
      const std::uint64_t at =
          parseUint64(tok[3], lineNo, "pattern index",
                      std::numeric_limits<std::uint64_t>::max());
      std::uint32_t pulse = 0;
      if (tok.size() == 6) {
        if (toUpper(tok[4]) != "PULSE") {
          fail(lineNo, "expected 'pulse', got '" + std::string(tok[4]) + "'");
        }
        pulse = static_cast<std::uint32_t>(
            parseUint64(tok[5], lineNo, "pulse duration",
                        std::numeric_limits<std::uint32_t>::max()));
        if (pulse == 0) fail(lineNo, "pulse duration must be positive");
      }
      try {
        campaign.push_back(TransientFault::flipAt(net, n, at, pulse));
      } catch (const Error& e) {
        fail(lineNo, e.what());
      }
    } else {
      fail(lineNo, "unknown directive '" + std::string(tok[0]) + "'");
    }
  }
  if (campaign.empty()) {
    throw Error("transient spec produces no injections");
  }
  return campaign;
}

TransientList loadTransientSpecFile(const Network& net,
                                    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open transient spec '" + path + "'");
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parseTransientSpec(net, ss.str());
}

}  // namespace fmossim
