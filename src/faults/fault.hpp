// Fault models of paper §3.
//
// FMOSSIM directly implements node and transistor faults:
//   * a node fault causes the node to behave as an input node set to the
//     specified state (stuck-at-0 / stuck-at-1),
//   * a transistor fault causes the transistor to be permanently stuck-open
//     or stuck-closed, without changing its strength.
// Short and open circuits are injected through *fault devices* — extra
// transistors of very high strength inserted at network-build time (see
// NetworkBuilder::addShortFaultDevice / addOpenFaultDevice) and activated per
// faulty circuit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "switch/network.hpp"

namespace fmossim {

/// Identifies a simulated circuit. 0 is the fault-free (good) circuit;
/// faulty circuits are numbered 1..N in fault-list order (paper §4: "each
/// circuit is represented by an integer ID with the good circuit having
/// ID 0").
using CircuitId = std::uint32_t;
constexpr CircuitId kGoodCircuit = 0;

enum class FaultKind : std::uint8_t {
  NodeStuck,        ///< node behaves as an input node at a fixed state
  TransistorStuck,  ///< conduction forced open (S0) or closed (S1)
  FaultDevice,      ///< fault transistor switched to its faulty conduction
};

/// One fault. Construct through the factory functions, which validate
/// against the network and generate a descriptive name.
struct Fault {
  FaultKind kind = FaultKind::NodeStuck;
  NodeId node;        ///< NodeStuck only
  TransId transistor; ///< TransistorStuck / FaultDevice only
  State value = State::S0;  ///< stuck state, or forced conduction
  std::string name;

  static Fault nodeStuckAt(const Network& net, NodeId n, State value);
  static Fault transistorStuckOpen(const Network& net, TransId t);
  static Fault transistorStuckClosed(const Network& net, TransId t);
  /// Activates a fault device: conduction becomes the complement of its
  /// good-circuit conduction (on for shorts, off for opens).
  static Fault faultDeviceActive(const Network& net, TransId ft);
};

/// An ordered list of faults; index i becomes faulty-circuit ID i+1.
class FaultList {
 public:
  FaultList() = default;
  explicit FaultList(std::vector<Fault> faults) : faults_(std::move(faults)) {}

  void add(Fault f) { faults_.push_back(std::move(f)); }
  void append(const FaultList& other) {
    faults_.insert(faults_.end(), other.faults_.begin(), other.faults_.end());
  }

  std::uint32_t size() const { return static_cast<std::uint32_t>(faults_.size()); }
  bool empty() const { return faults_.empty(); }
  const Fault& operator[](std::uint32_t i) const {
    FMOSSIM_ASSERT(i < faults_.size(), "fault index out of range");
    return faults_[i];
  }
  const std::vector<Fault>& all() const { return faults_; }

  auto begin() const { return faults_.begin(); }
  auto end() const { return faults_.end(); }

 private:
  std::vector<Fault> faults_;
};

}  // namespace fmossim
