#include "faults/fault.hpp"

#include "util/strings.hpp"

namespace fmossim {

Fault Fault::nodeStuckAt(const Network& net, NodeId n, State value) {
  if (!isDefinite(value)) {
    throw Error("node stuck-at fault requires a definite state (0 or 1)");
  }
  Fault f;
  f.kind = FaultKind::NodeStuck;
  f.node = n;
  f.value = value;
  f.name = net.node(n).name + (value == State::S0 ? "/SA0" : "/SA1");
  return f;
}

Fault Fault::transistorStuckOpen(const Network& net, TransId t) {
  if (net.transistor(t).isFaultDevice()) {
    throw Error("use faultDeviceActive for fault devices");
  }
  Fault f;
  f.kind = FaultKind::TransistorStuck;
  f.transistor = t;
  f.value = State::S0;
  f.name = format("t%u/stuck-open", t.value);
  return f;
}

Fault Fault::transistorStuckClosed(const Network& net, TransId t) {
  if (net.transistor(t).isFaultDevice()) {
    throw Error("use faultDeviceActive for fault devices");
  }
  Fault f;
  f.kind = FaultKind::TransistorStuck;
  f.transistor = t;
  f.value = State::S1;
  f.name = format("t%u/stuck-closed", t.value);
  return f;
}

Fault Fault::faultDeviceActive(const Network& net, TransId ft) {
  const auto& tr = net.transistor(ft);
  if (!tr.isFaultDevice()) {
    throw Error("faultDeviceActive requires a fault device transistor");
  }
  Fault f;
  f.kind = FaultKind::FaultDevice;
  f.transistor = ft;
  // Shorts are off in the good circuit and on in the faulty one; opens the
  // reverse.
  f.value = (*tr.goodConduction == State::S0) ? State::S1 : State::S0;
  const char* what = (f.value == State::S1) ? "short" : "open";
  f.name = format("%s(%s,%s)", what, net.node(tr.source).name.c_str(),
                  net.node(tr.drain).name.c_str());
  return f;
}

}  // namespace fmossim
