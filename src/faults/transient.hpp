// Transient (single-event-upset) faults.
//
// A TransientFault is not a permanent topology overlay like Fault: the
// circuit is fault-free until an *injection instant*, at which point the
// state of one storage node is flipped (0<->1; an X stays X — a ternary
// flip of an unknown is unobservable). An optional pulse duration models a
// particle strike that overdrives the node for a while: the node is held at
// the flipped value (input-like, exactly a temporary stuck-at) for `pulse`
// further patterns, then released — the held value stays behind as charge.
//
// Injection timing is defined against the pattern stream: the flip is
// applied to the settled circuit right after pattern `atPattern`'s outputs
// were observed, so detection can first occur at pattern atPattern + 1.
// This boundary is exactly what GoodMachineCheckpoint::goodStateAfterPattern
// materializes, which is what makes checkpoint-replay SEU campaigns cheap
// (see src/seu/).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "switch/network.hpp"

namespace fmossim {

/// One transient bit-flip injection (see file comment for timing).
struct TransientFault {
  NodeId node;
  /// Pattern index after whose observation the flip is applied.
  std::uint64_t atPattern = 0;
  /// 0: instantaneous flip (state perturbation only). d > 0: the node is
  /// held at the flipped value while patterns atPattern+1 .. atPattern+d
  /// are simulated and observed, then released.
  std::uint32_t pulsePatterns = 0;
  std::string name;

  /// Validating factory: `n` must be a non-input storage node (inputs are
  /// driven by the tester every pattern; a strike on one is not a stored
  /// upset). Generates the canonical name.
  static TransientFault flipAt(const Network& net, NodeId n,
                               std::uint64_t atPattern,
                               std::uint32_t pulsePatterns = 0);
};

using TransientList = std::vector<TransientFault>;

/// Parses a transient-fault campaign spec. Line oriented; '#' comments and
/// blank lines ignored. Directives:
///
///   flip <node> @ <pattern> [pulse <d>]
///
/// Strict: unknown nodes, input nodes, malformed numbers and trailing junk
/// are line-numbered errors, and an empty campaign is an error.
TransientList parseTransientSpec(const Network& net, const std::string& text);

/// Loads and parses a transient-fault spec file.
TransientList loadTransientSpecFile(const Network& net,
                                    const std::string& path);

}  // namespace fmossim
