#include "faults/fault_spec.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <string_view>

#include "faults/sampling.hpp"
#include "faults/universe.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace fmossim {

namespace {

[[noreturn]] void fail(std::size_t lineNo, const std::string& msg) {
  throw Error(format("fault spec line %zu: %s", lineNo, msg.c_str()));
}

/// Strict unsigned decimal parse: every character must be a digit and the
/// value must fit the caller's range, so that "12abc", "-1" or an
/// out-of-range id is a line-numbered error rather than a silent stoul
/// truncation.
std::uint64_t parseUint64(std::string_view tok, std::size_t lineNo,
                          const char* what, std::uint64_t maxValue) {
  if (tok.empty()) fail(lineNo, format("empty %s", what));
  std::uint64_t value = 0;
  for (const char c : tok) {
    if (c < '0' || c > '9') {
      fail(lineNo, format("invalid %s '%s'", what, std::string(tok).c_str()));
    }
    if (value > maxValue / 10 ||
        value * 10 > maxValue - static_cast<std::uint64_t>(c - '0')) {
      fail(lineNo, format("%s '%s' out of range", what, std::string(tok).c_str()));
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

std::uint32_t parseUint32(std::string_view tok, std::size_t lineNo,
                          const char* what) {
  return static_cast<std::uint32_t>(
      parseUint64(tok, lineNo, what, std::numeric_limits<std::uint32_t>::max()));
}

}  // namespace

FaultList parseFaultSpec(const Network& net, const std::string& text) {
  FaultList faults;
  bool doSample = false;
  std::uint32_t sampleCount = 0;
  std::uint64_t sampleSeed = 0;

  std::istringstream stream(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(stream, line)) {
    ++lineNo;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto tok = splitWhitespace(trimmed);
    const std::string kind = toUpper(tok[0]);

    if (kind == "NODE") {
      if (tok.size() != 3) fail(lineNo, "node requires <name> sa0|sa1");
      const NodeId n = net.findNode(std::string(tok[1]));
      if (!n.valid()) fail(lineNo, "unknown node '" + std::string(tok[1]) + "'");
      const std::string what = toUpper(tok[2]);
      if (what == "SA0") {
        faults.add(Fault::nodeStuckAt(net, n, State::S0));
      } else if (what == "SA1") {
        faults.add(Fault::nodeStuckAt(net, n, State::S1));
      } else {
        fail(lineNo, "expected sa0 or sa1, got '" + std::string(tok[2]) + "'");
      }
    } else if (kind == "TRANSISTOR") {
      if (tok.size() != 3) fail(lineNo, "transistor requires <id> open|closed");
      const std::uint32_t id = parseUint32(tok[1], lineNo, "transistor id");
      if (id >= net.numTransistors()) fail(lineNo, "transistor id out of range");
      const std::string what = toUpper(tok[2]);
      try {
        if (what == "OPEN") {
          faults.add(Fault::transistorStuckOpen(net, TransId(id)));
        } else if (what == "CLOSED") {
          faults.add(Fault::transistorStuckClosed(net, TransId(id)));
        } else {
          fail(lineNo, "expected open or closed");
        }
      } catch (const Error& e) {
        fail(lineNo, e.what());
      }
    } else if (kind == "ALL-NODE-STUCK") {
      faults.append(allStorageNodeStuckFaults(net));
    } else if (kind == "ALL-TRANSISTOR-STUCK") {
      faults.append(allTransistorStuckFaults(net));
    } else if (kind == "ALL-FAULT-DEVICES") {
      faults.append(allFaultDeviceFaults(net));
    } else if (kind == "SAMPLE") {
      if (tok.size() != 3) fail(lineNo, "sample requires <count> <seed>");
      sampleCount = parseUint32(tok[1], lineNo, "sample count");
      sampleSeed = parseUint64(tok[2], lineNo, "sample seed",
                               std::numeric_limits<std::uint64_t>::max());
      doSample = true;
    } else {
      fail(lineNo, "unknown directive '" + std::string(tok[0]) + "'");
    }
  }

  if (faults.empty()) {
    throw Error("fault spec produces no faults");
  }
  if (doSample) {
    if (sampleCount > faults.size()) {
      throw Error("fault spec: sample count exceeds fault list size");
    }
    Rng rng(sampleSeed);
    faults = sampleFaults(faults, sampleCount, rng);
  }
  return faults;
}

FaultList loadFaultSpecFile(const Network& net, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open fault spec '" + path + "'");
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parseFaultSpec(net, ss.str());
}

}  // namespace fmossim
