#include "faults/fault_spec.hpp"

#include <fstream>
#include <sstream>

#include "faults/sampling.hpp"
#include "faults/universe.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace fmossim {

namespace {

[[noreturn]] void fail(std::size_t lineNo, const std::string& msg) {
  throw Error(format("fault spec line %zu: %s", lineNo, msg.c_str()));
}

}  // namespace

FaultList parseFaultSpec(const Network& net, const std::string& text) {
  FaultList faults;
  bool doSample = false;
  std::uint32_t sampleCount = 0;
  std::uint64_t sampleSeed = 0;

  std::istringstream stream(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(stream, line)) {
    ++lineNo;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto tok = splitWhitespace(trimmed);
    const std::string kind = toUpper(tok[0]);

    if (kind == "NODE") {
      if (tok.size() != 3) fail(lineNo, "node requires <name> sa0|sa1");
      const NodeId n = net.findNode(std::string(tok[1]));
      if (!n.valid()) fail(lineNo, "unknown node '" + std::string(tok[1]) + "'");
      const std::string what = toUpper(tok[2]);
      if (what == "SA0") {
        faults.add(Fault::nodeStuckAt(net, n, State::S0));
      } else if (what == "SA1") {
        faults.add(Fault::nodeStuckAt(net, n, State::S1));
      } else {
        fail(lineNo, "expected sa0 or sa1, got '" + std::string(tok[2]) + "'");
      }
    } else if (kind == "TRANSISTOR") {
      if (tok.size() != 3) fail(lineNo, "transistor requires <id> open|closed");
      std::uint32_t id = 0;
      try {
        id = static_cast<std::uint32_t>(std::stoul(std::string(tok[1])));
      } catch (...) {
        fail(lineNo, "invalid transistor id '" + std::string(tok[1]) + "'");
      }
      if (id >= net.numTransistors()) fail(lineNo, "transistor id out of range");
      const std::string what = toUpper(tok[2]);
      try {
        if (what == "OPEN") {
          faults.add(Fault::transistorStuckOpen(net, TransId(id)));
        } else if (what == "CLOSED") {
          faults.add(Fault::transistorStuckClosed(net, TransId(id)));
        } else {
          fail(lineNo, "expected open or closed");
        }
      } catch (const Error& e) {
        fail(lineNo, e.what());
      }
    } else if (kind == "ALL-NODE-STUCK") {
      faults.append(allStorageNodeStuckFaults(net));
    } else if (kind == "ALL-TRANSISTOR-STUCK") {
      faults.append(allTransistorStuckFaults(net));
    } else if (kind == "ALL-FAULT-DEVICES") {
      faults.append(allFaultDeviceFaults(net));
    } else if (kind == "SAMPLE") {
      if (tok.size() != 3) fail(lineNo, "sample requires <count> <seed>");
      try {
        sampleCount = static_cast<std::uint32_t>(std::stoul(std::string(tok[1])));
        sampleSeed = std::stoull(std::string(tok[2]));
      } catch (...) {
        fail(lineNo, "invalid sample parameters");
      }
      doSample = true;
    } else {
      fail(lineNo, "unknown directive '" + std::string(tok[0]) + "'");
    }
  }

  if (faults.empty()) {
    throw Error("fault spec produces no faults");
  }
  if (doSample) {
    if (sampleCount > faults.size()) {
      throw Error("fault spec: sample count exceeds fault list size");
    }
    Rng rng(sampleSeed);
    faults = sampleFaults(faults, sampleCount, rng);
  }
  return faults;
}

FaultList loadFaultSpecFile(const Network& net, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open fault spec '" + path + "'");
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parseFaultSpec(net, ss.str());
}

}  // namespace fmossim
