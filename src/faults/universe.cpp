#include "faults/universe.hpp"

namespace fmossim {

FaultList allStorageNodeStuckFaults(const Network& net) {
  return nodeStuckFaults(net, net.storageNodes());
}

FaultList nodeStuckFaults(const Network& net, const std::vector<NodeId>& nodes) {
  FaultList list;
  for (const NodeId n : nodes) {
    list.add(Fault::nodeStuckAt(net, n, State::S0));
    list.add(Fault::nodeStuckAt(net, n, State::S1));
  }
  return list;
}

FaultList allTransistorStuckFaults(const Network& net) {
  FaultList list;
  for (const TransId t : net.functionalTransistors()) {
    list.add(Fault::transistorStuckOpen(net, t));
    list.add(Fault::transistorStuckClosed(net, t));
  }
  return list;
}

FaultList allFaultDeviceFaults(const Network& net) {
  FaultList list;
  for (const TransId t : net.allTransistors()) {
    if (net.transistor(t).isFaultDevice()) {
      list.add(Fault::faultDeviceActive(net, t));
    }
  }
  return list;
}

}  // namespace fmossim
