// Random fault sampling (paper §5, Figure 3: "simulating RAM256 for
// different numbers of randomly selected faults").
#pragma once

#include "faults/fault.hpp"
#include "util/rng.hpp"

namespace fmossim {

/// Draws `count` distinct faults uniformly from `universe` (count must not
/// exceed the universe size). Order of the sample is random; the draw is
/// fully determined by the Rng state.
FaultList sampleFaults(const FaultList& universe, std::uint32_t count, Rng& rng);

}  // namespace fmossim
