#include "faults/sampling.hpp"

namespace fmossim {

FaultList sampleFaults(const FaultList& universe, std::uint32_t count, Rng& rng) {
  if (count > universe.size()) {
    throw Error("fault sample size exceeds universe size");
  }
  const auto indices = rng.sampleIndices(universe.size(), count);
  FaultList out;
  for (const std::uint32_t i : indices) {
    out.add(universe[i]);
  }
  return out;
}

}  // namespace fmossim
