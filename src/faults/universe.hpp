// Fault universe generators (paper §5).
//
// "The circuits were simulated for randomly chosen subsets of the following
// fault classes: single storage nodes stuck-at-zero, single storage nodes
// stuck-at-one, and single pairs of adjacent bit lines shorted together. To
// validate the program, we also simulated other faults, including stuck-open
// and stuck-closed transistors."
#pragma once

#include "faults/fault.hpp"

namespace fmossim {

/// SA0 + SA1 for every storage node of the network.
FaultList allStorageNodeStuckFaults(const Network& net);

/// SA0 + SA1 for the given nodes.
FaultList nodeStuckFaults(const Network& net, const std::vector<NodeId>& nodes);

/// Stuck-open + stuck-closed for every functional (non-fault-device)
/// transistor.
FaultList allTransistorStuckFaults(const Network& net);

/// Activation fault for every fault device present in the network (shorts
/// and opens declared at build time).
FaultList allFaultDeviceFaults(const Network& net);

}  // namespace fmossim
