// Text format for fault lists, used by the command-line driver.
//
//   # comment
//   node <name> sa0|sa1          single node stuck-at fault
//   transistor <id> open|closed  single transistor fault
//   all-node-stuck               SA0+SA1 on every storage node
//   all-transistor-stuck         open+closed on every functional transistor
//   all-fault-devices            activate every declared short/open device
//   sample <count> <seed>        keep a random subset (applied at the end)
#pragma once

#include <string>

#include "faults/fault.hpp"

namespace fmossim {

/// Parses a fault specification against the network. Throws Error with line
/// numbers on malformed input.
FaultList parseFaultSpec(const Network& net, const std::string& text);

/// Reads a fault specification file.
FaultList loadFaultSpecFile(const Network& net, const std::string& path);

}  // namespace fmossim
