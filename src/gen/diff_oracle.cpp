#include "gen/diff_oracle.hpp"

#include <algorithm>

#include "core/row_sink.hpp"
#include "patterns/pattern_source.hpp"
#include "util/strings.hpp"

namespace fmossim {

namespace {

/// Diffs a comparand result against the serial reference. Only fields with
/// exact cross-backend semantics are compared; timing, work counters and
/// backend-specific capacity numbers (maxAlive, finalRecords) are not.
std::optional<Divergence> diffResults(const FaultList& faults,
                                      const FaultSimResult& ref,
                                      const FaultSimResult& got,
                                      const std::string& backend) {
  const auto div = [&](const char* field, std::string detail) {
    return Divergence{backend, field, std::move(detail)};
  };
  if (got.numFaults != ref.numFaults) {
    return div("numFaults", format("serial=%u, %s=%u", ref.numFaults,
                                   backend.c_str(), got.numFaults));
  }
  if (got.detectedAtPattern.size() != ref.detectedAtPattern.size() ||
      ref.detectedAtPattern.size() != ref.numFaults) {
    return div("detectedAtPattern",
               format("serial has %zu entries, %s has %zu (numFaults=%u)",
                      ref.detectedAtPattern.size(), backend.c_str(),
                      got.detectedAtPattern.size(), ref.numFaults));
  }
  for (std::uint32_t fi = 0; fi < ref.numFaults; ++fi) {
    if (got.detectedAtPattern[fi] != ref.detectedAtPattern[fi]) {
      return div("detectedAtPattern",
                 format("fault %u '%s': serial=%d, %s=%d", fi,
                        faults[fi].name.c_str(), ref.detectedAtPattern[fi],
                        backend.c_str(), got.detectedAtPattern[fi]));
    }
  }
  if (got.numDetected != ref.numDetected) {
    return div("numDetected", format("serial=%u, %s=%u", ref.numDetected,
                                     backend.c_str(), got.numDetected));
  }
  if (got.potentialDetections != ref.potentialDetections) {
    return div("potentialDetections",
               format("serial=%llu, %s=%llu",
                      static_cast<unsigned long long>(ref.potentialDetections),
                      backend.c_str(),
                      static_cast<unsigned long long>(got.potentialDetections)));
  }
  if (got.perPattern.size() != ref.perPattern.size()) {
    return div("perPattern", format("serial has %zu rows, %s has %zu",
                                    ref.perPattern.size(), backend.c_str(),
                                    got.perPattern.size()));
  }
  for (std::size_t pi = 0; pi < ref.perPattern.size(); ++pi) {
    const PatternStat& r = ref.perPattern[pi];
    const PatternStat& g = got.perPattern[pi];
    if (g.newlyDetected != r.newlyDetected || g.cumulativeDetected != r.cumulativeDetected ||
        g.aliveAfter != r.aliveAfter) {
      return div("perPattern",
                 format("pattern %zu: serial newly/cum/alive=%u/%u/%u, "
                        "%s=%u/%u/%u",
                        pi, r.newlyDetected, r.cumulativeDetected,
                        r.aliveAfter, backend.c_str(), g.newlyDetected,
                        g.cumulativeDetected, g.aliveAfter));
    }
  }
  if (got.finalGoodStates.size() != ref.finalGoodStates.size()) {
    return div("finalGoodStates",
               format("serial has %zu nodes, %s has %zu",
                      ref.finalGoodStates.size(), backend.c_str(),
                      got.finalGoodStates.size()));
  }
  for (std::size_t n = 0; n < ref.finalGoodStates.size(); ++n) {
    if (got.finalGoodStates[n] != ref.finalGoodStates[n]) {
      return div("finalGoodStates",
                 format("node %zu: serial=%c, %s=%c", n,
                        stateChar(ref.finalGoodStates[n]), backend.c_str(),
                        stateChar(got.finalGoodStates[n])));
    }
  }
  return std::nullopt;
}

TestSequence prefixSequence(const TestSequence& seq, std::uint32_t length) {
  TestSequence out;
  out.setOutputs(seq.outputs());
  for (std::uint32_t pi = 0; pi < length; ++pi) out.addPattern(seq[pi]);
  return out;
}

FaultList subsetFaults(const FaultList& faults,
                       const std::vector<std::uint32_t>& indices) {
  FaultList out;
  for (const std::uint32_t i : indices) out.add(faults[i]);
  return out;
}

}  // namespace

DiffOracle::DiffOracle(OracleOptions options) : options_(std::move(options)) {
  if (options_.jobsVariants.empty()) options_.jobsVariants = {1};
  if (options_.laneVariants.empty()) options_.laneVariants = {1};
}

FaultSimResult DiffOracle::runBackend(const Network& net,
                                      const FaultList& faults,
                                      const TestSequence& seq, Backend backend,
                                      unsigned jobs, std::uint32_t laneWidth,
                                      std::string* backendName,
                                      bool stream) const {
  EngineOptions opts;
  opts.backend = backend;
  opts.sim = options_.sim;
  opts.policy = options_.policy;
  opts.dropDetected = options_.dropDetected;
  opts.jobs = jobs;
  if (backend == Backend::Concurrent) {
    opts.laneWidth = laneWidth;
    opts.debugLoseTriggerEvery = options_.debugLoseTriggerEvery;
  }
  Engine engine(net, faults, opts);
  if (backendName != nullptr) {
    // Report what actually ran: the engine falls back to a plain concurrent
    // backend when the (possibly shrunk) fault list is too small to shard.
    *backendName = engine.backendName();
    if (*backendName == "sharded") *backendName += format("-%u", jobs);
    if (laneWidth > 1) *backendName += format("-lanes%u", laneWidth);
    if (stream) *backendName += "-stream";
  }
  if (!stream) return engine.run(seq);
  MaterializedPatternSource source(seq);
  FaultSimResult res = engine.runStream(source);
  // Native streaming backends return rowless results; materialize the
  // derived triples so diffResults can compare them row by row.
  derivePerPattern(res);
  return res;
}

std::optional<Divergence> DiffOracle::diverges(const Network& net,
                                               const FaultList& faults,
                                               const TestSequence& seq,
                                               std::uint32_t& runs) const {
  ++runs;
  const FaultSimResult ref =
      runBackend(net, faults, seq, Backend::Serial, 1, 1, nullptr);
  // diffResults deliberately skips work counters (serial evaluates
  // differently by construction), but within the concurrent family
  // totalNodeEvals is deterministic and lane/shard invariant — compare every
  // comparand against the first one.
  bool haveEvals = false;
  std::uint64_t refEvals = 0;
  std::string refEvalsName;
  for (const unsigned jobs : options_.jobsVariants) {
    for (const std::uint32_t lanes : options_.laneVariants) {
      std::string name;
      const FaultSimResult got =
          runBackend(net, faults, seq, Backend::Concurrent, jobs, lanes, &name);
      if (auto d = diffResults(faults, ref, got, name)) return d;
      const auto checkEvals =
          [&](const FaultSimResult& r,
              const std::string& n) -> std::optional<Divergence> {
        if (!haveEvals) {
          haveEvals = true;
          refEvals = r.totalNodeEvals;
          refEvalsName = n;
          return std::nullopt;
        }
        if (r.totalNodeEvals == refEvals) return std::nullopt;
        return Divergence{
            n, "totalNodeEvals",
            format("%s=%llu, %s=%llu", refEvalsName.c_str(),
                   static_cast<unsigned long long>(refEvals), n.c_str(),
                   static_cast<unsigned long long>(r.totalNodeEvals))};
      };
      if (auto d = checkEvals(got, name)) return d;
      if (options_.checkStreaming) {
        // The pull-based pattern path must be bit-identical to the
        // materialized one — same full diff, same deterministic work
        // counter (the streamed sharded run's recording + replay evals sum
        // to an unsharded run's).
        std::string sname;
        const FaultSimResult sgot =
            runBackend(net, faults, seq, Backend::Concurrent, jobs, lanes,
                       &sname, /*stream=*/true);
        if (auto d = diffResults(faults, ref, sgot, sname)) return d;
        if (auto d = checkEvals(sgot, sname)) return d;
      }
    }
  }
  return std::nullopt;
}

OracleReport DiffOracle::check(const Network& net, const FaultList& faults,
                               const TestSequence& seq, std::uint64_t seed) {
  OracleReport rep;
  rep.seed = seed;
  rep.numPatterns = seq.size();
  rep.faultIndices.resize(faults.size());
  for (std::uint32_t i = 0; i < faults.size(); ++i) rep.faultIndices[i] = i;

  auto first = diverges(net, faults, seq, rep.checkRuns);
  if (!first) {
    rep.ok = true;
    return rep;
  }
  rep.ok = false;
  rep.divergence = *first;
  if (!options_.shrink) {
    for (const std::uint32_t i : rep.faultIndices) {
      rep.faultNames.push_back(faults[i].name);
    }
    return rep;
  }

  const auto budgetLeft = [&]() {
    return rep.checkRuns < options_.maxShrinkRuns;
  };
  const auto stillDiverges = [&](const std::vector<std::uint32_t>& idx,
                                 std::uint32_t numPatterns)
      -> std::optional<Divergence> {
    return diverges(net, subsetFaults(faults, idx),
                    prefixSequence(seq, numPatterns), rep.checkRuns);
  };

  // 1. Truncate the pattern sequence (cheapens every later shrink run).
  while (rep.numPatterns > 1 && budgetLeft()) {
    const auto d = stillDiverges(rep.faultIndices, rep.numPatterns - 1);
    if (!d) break;
    rep.divergence = *d;
    --rep.numPatterns;
  }

  // 2. Delta-debug the fault list: drop chunks at shrinking granularity.
  for (std::size_t chunk = (rep.faultIndices.size() + 1) / 2;
       chunk >= 1 && rep.faultIndices.size() > 1 && budgetLeft();
       chunk = (chunk == 1) ? 0 : std::max<std::size_t>(1, chunk / 2)) {
    for (std::size_t start = 0;
         start < rep.faultIndices.size() && budgetLeft();) {
      if (rep.faultIndices.size() <= 1) break;
      std::vector<std::uint32_t> candidate;
      candidate.reserve(rep.faultIndices.size());
      for (std::size_t i = 0; i < rep.faultIndices.size(); ++i) {
        if (i < start || i >= start + chunk) {
          candidate.push_back(rep.faultIndices[i]);
        }
      }
      if (candidate.empty()) {
        start += chunk;
        continue;
      }
      const auto d = stillDiverges(candidate, rep.numPatterns);
      if (d) {
        rep.divergence = *d;
        rep.faultIndices = std::move(candidate);
        // Same start now covers the next chunk.
      } else {
        start += chunk;
      }
    }
  }

  // 3. One more pattern pass — a smaller fault set often needs fewer
  // patterns to diverge.
  while (rep.numPatterns > 1 && budgetLeft()) {
    const auto d = stillDiverges(rep.faultIndices, rep.numPatterns - 1);
    if (!d) break;
    rep.divergence = *d;
    --rep.numPatterns;
  }

  for (const std::uint32_t i : rep.faultIndices) {
    rep.faultNames.push_back(faults[i].name);
  }
  return rep;
}

std::string OracleReport::summary() const {
  if (ok) {
    return format("seed %llu: OK (%u comparison run%s)",
                  static_cast<unsigned long long>(seed), checkRuns,
                  checkRuns == 1 ? "" : "s");
  }
  std::string out = format(
      "seed %llu: DIVERGENCE — backend '%s' differs from serial in %s\n"
      "  first mismatch: %s\n"
      "  minimized reproducer: %zu fault(s), %u pattern(s), found in %u "
      "comparison runs\n",
      static_cast<unsigned long long>(seed), divergence.backend.c_str(),
      divergence.field.c_str(), divergence.detail.c_str(),
      faultIndices.size(), numPatterns, checkRuns);
  for (std::size_t i = 0; i < faultNames.size(); ++i) {
    out += format("    fault[%u] %s\n", faultIndices[i],
                  faultNames[i].c_str());
  }
  return out;
}

}  // namespace fmossim
