// Seeded random switch-level circuit generation for differential fuzzing.
//
// generateWorkload() turns a seed into a complete, valid fault-simulation
// workload: a Network (mixing ratioed nMOS gates, complementary CMOS gates,
// pass-transistor bridges, dynamic charge-storage nodes and short/open fault
// devices), a sampled fault universe over it, and a random clocked test
// sequence. The same seed always produces the same workload bit-for-bit
// (Rng is stable across platforms), so a failing fuzz seed IS the
// reproducer.
//
// The generated scenario space deliberately goes beyond the hand-built
// RAM/cell circuits: bidirectional pass paths, charge sharing between sized
// nodes, ratioed fights, X-driving inputs and oscillating feedback are all
// reachable, which is exactly the terrain where a concurrent difference
// simulator can silently diverge from serial replay (see diff_oracle.hpp).
#pragma once

#include <cstdint>
#include <string>

#include "faults/fault.hpp"
#include "patterns/pattern.hpp"
#include "patterns/pattern_source.hpp"  // GeneratedSequenceConfig
#include "switch/network.hpp"
#include "util/rng.hpp"

namespace fmossim {

/// Structural flavour of the generated logic (gate-style static logic vs.
/// pass-transistor-heavy dynamic logic; Mixed draws both per node).
enum class GenTopology : std::uint8_t {
  GateStyle,
  PassHeavy,
  Mixed,
};

/// Generator knobs. Every field is deterministic given `seed`; the
/// randomized() factory draws a varied configuration from the seed itself so
/// a fuzzing campaign sweeps the whole parameter space with no extra flags.
struct GenOptions {
  std::uint64_t seed = 1;

  std::uint32_t numInputs = 4;   ///< data/clock inputs beyond Vdd/Gnd
  std::uint32_t numNodes = 12;   ///< storage nodes to create
  /// Extra pass-transistor bridges per storage node on top of each node's
  /// own structure (bidirectional paths, charge sharing).
  double passDensity = 0.4;
  GenTopology topology = GenTopology::Mixed;
  /// Probability that a node is a dynamic charge-storage node (pass-fed
  /// only, no static pull path).
  double chargeNodeFraction = 0.25;
  /// Probability that a storage node gets size 2 (bus-like capacitance).
  double bigNodeFraction = 0.15;
  /// Probability that a gate-style node uses ratioed nMOS (weak depletion
  /// load vs. strong pull-down) instead of complementary CMOS.
  double nmosFraction = 0.5;
  /// Probability that a gate input is wired to a *later* node (feedback).
  double feedbackProbability = 0.08;

  std::uint32_t numShortDevices = 2;  ///< short-circuit fault devices
  std::uint32_t numOpenDevices = 1;   ///< open-circuit fault devices

  std::uint32_t numFaults = 24;  ///< sampled fault-universe size (0 = all)
  std::uint32_t numOutputs = 3;  ///< observed output nodes
  /// Test patterns. 64-bit so streamed workloads (generateWorkloadStream)
  /// can exceed a materializable TestSequence's 2^32 patterns;
  /// generateWorkload() itself asserts the count fits.
  std::uint64_t numPatterns = 10;
  std::uint32_t maxSettingsPerPattern = 3;
  double xProbability = 0.05;  ///< chance an assigned input gets X

  /// Draws a varied configuration (circuit size, density, topology, charge
  /// and fault knobs) deterministically from the seed.
  static GenOptions randomized(std::uint64_t seed);
};

/// A complete generated fault-simulation workload.
struct GeneratedWorkload {
  GenOptions options;
  Network net;
  FaultList faults;
  TestSequence seq;
  /// Data/clock input nodes the sequence drives (excludes Vdd/Gnd).
  std::vector<NodeId> dataInputs;
};

/// A generated workload whose test sequence is NOT materialized: instead of
/// a TestSequence it carries the GeneratedSequenceConfig (Rng snapshot +
/// sequence knobs) from which a GeneratedPatternSource streams the exact
/// pattern stream generateWorkload() would have materialized — for any
/// numPatterns, including counts past 2^32, in O(1) memory.
struct GeneratedStreamWorkload {
  GenOptions options;
  Network net;
  FaultList faults;
  /// Feed to GeneratedPatternSource (patterns/pattern_source.hpp).
  GeneratedSequenceConfig seqConfig;
  /// Data/clock input nodes the sequence drives (excludes Vdd/Gnd).
  std::vector<NodeId> dataInputs;
};

/// Generates the workload for the given options. Deterministic: equal
/// options (in particular equal seeds) give identical workloads. The
/// sequence is materialized through GeneratedPatternSource, so it is
/// bit-identical to generateWorkloadStream()'s stream by construction;
/// asserts numPatterns fits a TestSequence (<= 2^32).
GeneratedWorkload generateWorkload(const GenOptions& options);

/// Streaming twin of generateWorkload(): identical network, fault sample and
/// output choice (the structural Rng draws are shared), but the sequence is
/// returned as a config + Rng snapshot instead of being expanded.
GeneratedStreamWorkload generateWorkloadStream(const GenOptions& options);

/// One-line human description ("seed 17: 14 nodes, 31 transistors, ...").
std::string describeWorkload(const GeneratedWorkload& w);

}  // namespace fmossim
