// Cross-backend differential oracle.
//
// The paper's central correctness claim is that concurrent fault simulation
// produces *exactly* the results of serially simulating every faulty
// circuit, only faster. The oracle checks that claim mechanically: it runs
// one workload through the serial backend (ground truth) and through the
// concurrent backend at every configured shard count, and diffs the full
// FaultSimResults — per-fault detection patterns, detection counts,
// potential (X) detections, per-pattern rows and final good-circuit node
// states.
//
// On a divergence the oracle shrinks the workload to a minimized reproducer
// by delta-debugging the fault list and truncating the pattern sequence,
// re-checking after every candidate reduction. Together with the seeded
// generator (random_circuit.hpp) a failure report is fully reproducible
// from its seed alone.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "gen/random_circuit.hpp"

namespace fmossim {

struct OracleOptions {
  DetectionPolicy policy = DetectionPolicy::DefiniteOnly;
  bool dropDetected = true;
  /// Concurrent-side comparands: one engine per (jobs, laneWidth) pair —
  /// the cross product of the two variant lists (jobs 1 = plain concurrent,
  /// >1 = sharded). The serial backend is always ground truth.
  std::vector<unsigned> jobsVariants = {1, 2, 4};
  /// Lane-sharing widths crossed with jobsVariants. Besides the full result
  /// diff, all concurrent-family comparands must report the same
  /// totalNodeEvals (lane batching credits shared work so the deterministic
  /// work counter stays invariant).
  std::vector<std::uint32_t> laneVariants = {1, 4, 32};
  SimOptions sim;
  /// Shrink failing workloads to a minimized reproducer.
  bool shrink = true;
  /// Upper bound on cross-backend comparison runs spent shrinking.
  std::uint32_t maxShrinkRuns = 160;
  /// Bug injector forwarded to the concurrent comparands (never the serial
  /// reference) — the oracle's own mutation test. 0 = off.
  std::uint32_t debugLoseTriggerEvery = 0;
  /// Also run every concurrent-family comparand through the streaming entry
  /// (Engine::runStream over a MaterializedPatternSource), derive its rows
  /// (core/row_sink.hpp) and hold it to the same full diff + totalNodeEvals
  /// invariant — the property that the pull-based pattern path is
  /// bit-identical to the materialized one.
  bool checkStreaming = true;
};

/// First observed cross-backend mismatch.
struct Divergence {
  std::string backend;  ///< diverging comparand ("concurrent", "sharded-4")
  std::string field;    ///< result field ("detectedAtPattern", ...)
  std::string detail;   ///< human-readable first mismatch
};

struct OracleReport {
  std::uint64_t seed = 0;
  bool ok = true;
  /// Valid when !ok; refers to the *minimized* workload.
  Divergence divergence;
  /// Minimized reproducer: indices into the original fault list, and the
  /// surviving pattern-sequence prefix length.
  std::vector<std::uint32_t> faultIndices;
  std::vector<std::string> faultNames;
  std::uint32_t numPatterns = 0;
  /// Cross-backend comparison runs performed (1 check + shrinking).
  std::uint32_t checkRuns = 0;

  /// Multi-line human report ("OK ..." / "DIVERGENCE ... minimized: ...").
  std::string summary() const;
};

class DiffOracle {
 public:
  explicit DiffOracle(OracleOptions options = {});

  const OracleOptions& options() const { return options_; }

  /// Checks one workload; `seed` only labels the report. On divergence the
  /// workload is shrunk to a minimized reproducer (if options().shrink).
  OracleReport check(const Network& net, const FaultList& faults,
                     const TestSequence& seq, std::uint64_t seed = 0);

  OracleReport check(const GeneratedWorkload& w) {
    return check(w.net, w.faults, w.seq, w.options.seed);
  }

 private:
  /// `backendName` (optional out) receives the name of the backend that
  /// actually ran, suffixed with the jobs count for sharded runs, the lane
  /// width for laneWidth > 1 and "-stream" for streaming runs. `stream`
  /// drives the sequence through Engine::runStream (a
  /// MaterializedPatternSource over `seq`) and derives the rowless result's
  /// per-pattern rows so the caller can diff it like a materialized one.
  FaultSimResult runBackend(const Network& net, const FaultList& faults,
                            const TestSequence& seq, Backend backend,
                            unsigned jobs, std::uint32_t laneWidth,
                            std::string* backendName,
                            bool stream = false) const;
  /// One full serial-vs-all-comparands comparison.
  std::optional<Divergence> diverges(const Network& net,
                                     const FaultList& faults,
                                     const TestSequence& seq,
                                     std::uint32_t& runs) const;

  OracleOptions options_;
};

}  // namespace fmossim
