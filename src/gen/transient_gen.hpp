// Seeded SEU campaign generation — the transient-fault counterpart of the
// random circuit/fault generator: deterministic, reproducible campaigns for
// the `fmossim_cli seu --gen` path, the seu perf scenarios and the serve
// protocol's "seu" workload kind.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/transient.hpp"
#include "switch/network.hpp"

namespace fmossim {

struct SeuGenOptions {
  std::uint64_t seed = 1;
  /// Number of injections to generate.
  std::uint32_t numInjections = 32;
  /// Sequence length; injection instants are drawn from [0, numPatterns).
  std::uint64_t numPatterns = 0;
  /// Cluster the injections onto at most this many distinct instants
  /// (0 = every injection draws its own instant). Same-instant injections
  /// share a checkpoint-replay tail engine, so clustering is what makes a
  /// campaign share-rich — real radiation testing grades many candidate
  /// strike sites against the same cycle of interest.
  std::uint32_t maxInstants = 0;
  /// Probability that an injection is a pulse (held flip) instead of an
  /// instantaneous one.
  double pulseProbability = 0.25;
  /// Pulse durations are drawn uniformly from [1, maxPulse].
  std::uint32_t maxPulse = 4;
};

/// Generates a deterministic SEU campaign: strike nodes are drawn uniformly
/// from the network's non-input storage nodes, instants from
/// [0, numPatterns) (clustered per maxInstants). Throws Error when the
/// network has no storage nodes, numPatterns is 0, or numInjections is 0.
TransientList generateSeuCampaign(const Network& net,
                                  const SeuGenOptions& options);

}  // namespace fmossim
