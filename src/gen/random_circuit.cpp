#include "gen/random_circuit.hpp"

#include <algorithm>

#include "circuits/cells.hpp"
#include "faults/universe.hpp"
#include "switch/builder.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace fmossim {

GenOptions GenOptions::randomized(std::uint64_t seed) {
  // A distinct stream from the structural rng, so option variation and
  // structure generation stay independent.
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  GenOptions o;
  o.seed = seed;
  o.numInputs = 3 + static_cast<std::uint32_t>(rng.below(4));    // 3..6
  o.numNodes = 8 + static_cast<std::uint32_t>(rng.below(17));    // 8..24
  o.passDensity = 0.2 + 0.1 * static_cast<double>(rng.below(5));
  o.topology = static_cast<GenTopology>(rng.below(3));
  o.chargeNodeFraction = 0.10 + 0.05 * static_cast<double>(rng.below(5));
  o.bigNodeFraction = 0.05 * static_cast<double>(rng.below(5));
  o.nmosFraction = 0.25 * static_cast<double>(rng.below(5));
  o.feedbackProbability = 0.05 * static_cast<double>(rng.below(4));
  o.numShortDevices = static_cast<std::uint32_t>(rng.below(4));  // 0..3
  o.numOpenDevices = static_cast<std::uint32_t>(rng.below(3));   // 0..2
  o.numFaults = 16 + static_cast<std::uint32_t>(rng.below(25));  // 16..40
  o.numOutputs = 2 + static_cast<std::uint32_t>(rng.below(3));   // 2..4
  o.numPatterns = 6 + static_cast<std::uint32_t>(rng.below(11)); // 6..16
  o.maxSettingsPerPattern = 1 + static_cast<std::uint32_t>(rng.below(3));
  o.xProbability = 0.05 * static_cast<double>(rng.below(4));
  return o;
}

GeneratedStreamWorkload generateWorkloadStream(const GenOptions& options) {
  GeneratedStreamWorkload w;
  w.options = options;
  Rng rng(options.seed);

  NetworkBuilder b;
  const Supplies rails = ensureSupplies(b);
  NmosCells nmos(b);
  CmosCells cmos(b);

  const std::uint32_t numInputs = std::max(1u, options.numInputs);
  std::vector<NodeId> inputs;
  inputs.reserve(numInputs);
  for (std::uint32_t i = 0; i < numInputs; ++i) {
    inputs.push_back(b.addInput("i" + std::to_string(i)));
  }

  // All storage nodes up front, so pass paths and feedback can reference any
  // of them regardless of creation order.
  const std::uint32_t numNodes = std::max(2u, options.numNodes);
  std::vector<NodeId> nodes;
  nodes.reserve(numNodes);
  for (std::uint32_t k = 0; k < numNodes; ++k) {
    const unsigned size = rng.chance(options.bigNodeFraction) ? 2u : 1u;
    nodes.push_back(b.addNode("n" + std::to_string(k), size));
  }

  // Signal source for the structure feeding node k: mostly inputs and
  // earlier nodes (forward logic), occasionally any node (feedback).
  const auto pickSignal = [&](std::uint32_t k) -> NodeId {
    if (rng.chance(options.feedbackProbability)) {
      return nodes[rng.below(nodes.size())];
    }
    const std::uint64_t pool = inputs.size() + k;
    if (pool == 0) return inputs[0];
    const std::uint64_t idx = rng.below(pool);
    return idx < inputs.size() ? inputs[idx]
                               : nodes[idx - inputs.size()];
  };

  const auto passStructure = [&](std::uint32_t k) {
    // 1-2 bidirectional pass transistors feeding the node, occasionally a
    // precharge device — dynamic logic holding state as charge.
    const std::uint32_t legs = 1 + static_cast<std::uint32_t>(rng.below(2));
    for (std::uint32_t l = 0; l < legs; ++l) {
      const NodeId from = pickSignal(k);
      if (from == nodes[k]) continue;  // channel ends must be distinct
      nmos.pass(pickSignal(k), from, nodes[k]);
    }
    if (rng.chance(0.3)) {
      nmos.precharge(rng.pick(inputs), nodes[k]);
    }
  };

  const auto gateStructure = [&](std::uint32_t k) {
    std::vector<NodeId> fanin;
    const std::uint32_t arity = 1 + static_cast<std::uint32_t>(rng.below(3));
    for (std::uint32_t a = 0; a < arity; ++a) fanin.push_back(pickSignal(k));
    const bool ratioedNmos = rng.chance(options.nmosFraction);
    const std::uint64_t shape = rng.below(3);  // inverter / nand / nor
    if (ratioedNmos) {
      if (shape == 0) nmos.inverterInto(fanin[0], nodes[k]);
      else if (shape == 1) nmos.nandInto(fanin, nodes[k]);
      else nmos.norInto(fanin, nodes[k]);
    } else {
      if (shape == 0) cmos.inverterInto(fanin[0], nodes[k]);
      else if (shape == 1) cmos.nandInto(fanin, nodes[k]);
      else cmos.norInto(fanin, nodes[k]);
    }
  };

  for (std::uint32_t k = 0; k < numNodes; ++k) {
    if (rng.chance(options.chargeNodeFraction)) {
      passStructure(k);
      continue;
    }
    switch (options.topology) {
      case GenTopology::GateStyle:
        gateStructure(k);
        break;
      case GenTopology::PassHeavy:
        if (rng.chance(0.7)) passStructure(k); else gateStructure(k);
        break;
      case GenTopology::Mixed:
        if (rng.chance(0.35)) passStructure(k); else gateStructure(k);
        break;
    }
  }

  // Extra pass bridges between arbitrary storage nodes: bidirectional
  // paths and charge sharing across otherwise unrelated structures.
  const auto bridges = static_cast<std::uint32_t>(
      options.passDensity * static_cast<double>(numNodes));
  for (std::uint32_t j = 0; j < bridges; ++j) {
    const NodeId a = rng.pick(nodes);
    const NodeId c = rng.pick(nodes);
    if (c == a) continue;
    nmos.pass(pickSignal(numNodes), a, c);
  }

  // Fault devices (paper §3): shorts between any two distinct nodes
  // (including rails/inputs), opens joining two storage nodes.
  for (std::uint32_t j = 0; j < options.numShortDevices; ++j) {
    const NodeId a = rng.pick(nodes);
    std::vector<NodeId> all = {rails.vdd, rails.gnd};
    all.insert(all.end(), inputs.begin(), inputs.end());
    all.insert(all.end(), nodes.begin(), nodes.end());
    const NodeId c = rng.pick(all);
    if (c == a) continue;
    b.addShortFaultDevice(a, c);
  }
  for (std::uint32_t j = 0; j < options.numOpenDevices; ++j) {
    const NodeId a = rng.pick(nodes);
    const NodeId c = rng.pick(nodes);
    if (c == a) continue;
    b.addOpenFaultDevice(a, c);
  }

  w.net = b.build();
  w.dataInputs = inputs;

  // Fault universe: node stuck-ats, transistor stuck-open/closed and fault
  // device activations, sampled down to numFaults (0 keeps everything).
  FaultList universe = allStorageNodeStuckFaults(w.net);
  universe.append(allTransistorStuckFaults(w.net));
  universe.append(allFaultDeviceFaults(w.net));
  if (options.numFaults == 0 || options.numFaults >= universe.size()) {
    w.faults = universe;
  } else {
    auto picked = rng.sampleIndices(universe.size(), options.numFaults);
    std::sort(picked.begin(), picked.end());
    for (const std::uint32_t i : picked) w.faults.add(universe[i]);
  }

  // Observed outputs: a sample of storage nodes.
  const std::uint32_t numOutputs =
      std::max(1u, std::min(options.numOutputs, numNodes));
  auto outIdx = rng.sampleIndices(numNodes, numOutputs);
  std::sort(outIdx.begin(), outIdx.end());
  w.seqConfig.outputs.reserve(numOutputs);
  for (const std::uint32_t i : outIdx) w.seqConfig.outputs.push_back(nodes[i]);

  // Sequence config: the Rng snapshot sits right after the last structural
  // draw, so GeneratedPatternSource resumes the seed's stream exactly where
  // the old inline sequence loop did (its rule lives in
  // patterns/pattern_source.cpp now).
  w.seqConfig.vdd = rails.vdd;
  w.seqConfig.gnd = rails.gnd;
  w.seqConfig.inputs = inputs;
  w.seqConfig.numPatterns = std::max<std::uint64_t>(1, options.numPatterns);
  w.seqConfig.maxSettingsPerPattern = options.maxSettingsPerPattern;
  w.seqConfig.xProbability = options.xProbability;
  w.seqConfig.rng = rng;
  return w;
}

GeneratedWorkload generateWorkload(const GenOptions& options) {
  GeneratedStreamWorkload s = generateWorkloadStream(options);
  FMOSSIM_ASSERT(s.seqConfig.numPatterns <= 0xffffffffull,
                 "numPatterns exceeds a materializable TestSequence; use "
                 "generateWorkloadStream");
  GeneratedWorkload w;
  w.options = s.options;
  w.net = std::move(s.net);
  w.faults = std::move(s.faults);
  w.dataInputs = std::move(s.dataInputs);
  for (const NodeId out : s.seqConfig.outputs) w.seq.addOutput(out);
  GeneratedPatternSource source(std::move(s.seqConfig));
  Pattern p;
  while (source.next(p)) w.seq.addPattern(Pattern(p));
  return w;
}

std::string describeWorkload(const GeneratedWorkload& w) {
  return format(
      "seed %llu: %u nodes (%u inputs), %u transistors (%u fault devices), "
      "%u faults, %u patterns, %zu outputs",
      static_cast<unsigned long long>(w.options.seed), w.net.numNodes(),
      w.net.numInputs(), w.net.numTransistors(), w.net.numFaultDevices(),
      w.faults.size(), w.seq.size(), w.seq.outputs().size());
}

}  // namespace fmossim
