#include "gen/transient_gen.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace fmossim {

TransientList generateSeuCampaign(const Network& net,
                                  const SeuGenOptions& options) {
  if (options.numInjections == 0) {
    throw Error("SEU campaign generation requires at least one injection");
  }
  if (options.numPatterns == 0) {
    throw Error("SEU campaign generation requires a non-empty sequence");
  }
  std::vector<NodeId> storage;
  for (std::uint32_t n = 0; n < net.numNodes(); ++n) {
    if (!net.isInput(NodeId(n))) storage.push_back(NodeId(n));
  }
  if (storage.empty()) {
    throw Error("SEU campaign generation: network has no storage nodes");
  }

  Rng rng(options.seed);

  // Instant pool: either one fresh draw per injection, or a clustered pool
  // of distinct instants the injections are spread across round-robin (so
  // every instant gets a similar group size).
  std::vector<std::uint64_t> instants;
  if (options.maxInstants > 0) {
    const std::uint64_t distinct =
        std::min<std::uint64_t>(options.maxInstants, options.numPatterns);
    while (instants.size() < distinct) {
      const std::uint64_t at = rng.below(options.numPatterns);
      if (std::find(instants.begin(), instants.end(), at) == instants.end()) {
        instants.push_back(at);
      }
    }
  }

  TransientList campaign;
  campaign.reserve(options.numInjections);
  for (std::uint32_t i = 0; i < options.numInjections; ++i) {
    const NodeId n = rng.pick(storage);
    const std::uint64_t at = instants.empty()
                                 ? rng.below(options.numPatterns)
                                 : instants[i % instants.size()];
    std::uint32_t pulse = 0;
    if (options.maxPulse > 0 && rng.chance(options.pulseProbability)) {
      pulse = static_cast<std::uint32_t>(
          1 + rng.below(options.maxPulse));
    }
    campaign.push_back(TransientFault::flipAt(net, n, at, pulse));
  }
  return campaign;
}

}  // namespace fmossim
