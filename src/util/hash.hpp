// Shared FNV-1a hashing used by the result checksums and the checkpoint /
// network / sequence fingerprints. One definition so the scheme cannot
// drift between the fingerprint producers (drift would silently break
// checkpoint-cache keying and baseline checksum comparisons).
#pragma once

#include <cstdint>

namespace fmossim {

/// FNV-1a offset basis (the initial hash value).
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

/// Mixes the 8 bytes of `v` into `h`, FNV-1a, byte-order independent.
inline void fnvMix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
}

}  // namespace fmossim
