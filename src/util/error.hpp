// Error handling primitives for the fmossim library.
//
// Construction-time and parse-time failures throw fmossim::Error; internal
// invariants are checked with FMOSSIM_ASSERT, which stays active in release
// builds (the checks are cheap relative to simulation work and a silently
// corrupted simulation is far worse than an abort).
#pragma once

#include <stdexcept>
#include <string>

namespace fmossim {

/// Exception thrown for user-visible failures: malformed netlists, bad
/// configuration, references to unknown nodes, and similar boundary errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void assertFailed(const char* expr, const char* file, int line,
                               const char* msg);
}  // namespace detail

}  // namespace fmossim

/// Invariant check that is active in all build types.
#define FMOSSIM_ASSERT(expr, msg)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::fmossim::detail::assertFailed(#expr, __FILE__, __LINE__, msg); \
    }                                                                 \
  } while (0)
