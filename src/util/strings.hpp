// Small string helpers shared by the netlist parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fmossim {

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on any run of the given delimiter characters; empty tokens are
/// dropped.
std::vector<std::string_view> splitWhitespace(std::string_view s);

/// Splits on a single delimiter character, keeping empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// True if s begins with the given prefix.
bool startsWith(std::string_view s, std::string_view prefix);

/// Uppercases ASCII letters.
std::string toUpper(std::string_view s);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace fmossim
