#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace fmossim {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> splitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t b = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > b) out.push_back(s.substr(b, i - b));
  }
  return out;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t b = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(b, i - b));
      b = i + 1;
    }
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string toUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace fmossim
