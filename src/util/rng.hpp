// Deterministic pseudo-random number generation.
//
// All randomized components of the library (fault sampling, random pattern
// generation, randomized tests) take an explicit seeded Rng so that every
// experiment in the paper reproduction is bit-for-bit repeatable.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace fmossim {

/// xoshiro256** by Blackman & Vigna: small, fast, and high quality; we avoid
/// std::mt19937 so that sequences are stable across standard libraries.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) {
    FMOSSIM_ASSERT(bound != 0, "Rng::below requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    FMOSSIM_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// True with probability p (p clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return static_cast<double>(next() >> 11) * 0x1.0p-53 < p;
  }

  /// Picks one element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    FMOSSIM_ASSERT(!items.empty(), "Rng::pick requires a non-empty vector");
    return items[below(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[below(i)]);
    }
  }

  /// Draws k distinct indices from [0, n) in random order (k <= n).
  std::vector<std::uint32_t> sampleIndices(std::uint32_t n, std::uint32_t k) {
    FMOSSIM_ASSERT(k <= n, "sample size exceeds population");
    std::vector<std::uint32_t> all(n);
    for (std::uint32_t i = 0; i < n; ++i) all[i] = i;
    // Partial Fisher-Yates: the first k entries become the sample.
    for (std::uint32_t i = 0; i < k; ++i) {
      const auto j = i + static_cast<std::uint32_t>(below(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace fmossim
