#include "util/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace fmossim::detail {

void assertFailed(const char* expr, const char* file, int line,
                  const char* msg) {
  std::fprintf(stderr, "fmossim assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg);
  std::abort();
}

}  // namespace fmossim::detail
