// Wall-clock timing used by the benchmark harnesses.
#pragma once

#include <chrono>

namespace fmossim {

/// Monotonic stopwatch; seconds() reports elapsed time since construction or
/// the last reset().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fmossim
