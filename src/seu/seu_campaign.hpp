// Transient-fault (SEU) grading campaigns on checkpoint replay.
//
// A campaign grades many independent single-event upsets (bit-flips at an
// injection instant; see faults/transient.hpp) against one test sequence.
// The naive approach simulates the whole sequence from scratch once per
// injection — almost all of that work is redundant: before its injection a
// transient machine is bit-identical to the good circuit, so the entire
// prefix is shared good-machine work. This is the "autonomous emulation"
// argument for transient grading (PAPERS.md) mapped onto the checkpoint
// machinery:
//
//   * the good machine is recorded ONCE (CheckpointStore::acquire — and
//     reused across campaigns against the same circuit + sequence);
//   * injections are grouped by instant; each group materializes the good
//     state right after its pattern (goodStateAfterPattern — a pure data
//     fold, zero solver work), flips every machine, and runs the concurrent
//     engine over only the TAIL of the sequence, replaying the good trace
//     (runTransientTail);
//   * same-instant machines batch through the existing concurrent
//     scheduler, and — since they share their entire pre-injection
//     history — through word lanes when laneWidth > 1.
//
// Each injection is classified detected (output mismatch at some pattern),
// latent (undetected but state still differs at end of sequence) or silent
// (reconverged). Results are bit-identical to per-injection naive runs
// (oracle-tested) and deterministic across jobs and lane widths.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/checkpoint_store.hpp"
#include "core/concurrent_sim.hpp"
#include "faults/transient.hpp"

namespace fmossim::seu {

/// Outcome of one injection.
enum class Outcome : std::uint8_t { Detected, Silent, Latent };

const char* outcomeName(Outcome o);

struct InjectionResult {
  TransientFault fault;
  Outcome outcome = Outcome::Silent;
  /// Detecting pattern index, or -1 (matches FaultSimResult semantics).
  std::int32_t detectedAtPattern = -1;
};

struct CampaignOptions {
  /// Worker threads claiming injection groups (replay mode) or single
  /// injections (naive mode). Results are bit-identical for every value.
  unsigned jobs = 1;
  /// Lane width for the per-group engines (see FsimOptions::laneWidth);
  /// same-instant SEUs are exactly the share-rich workload lanes want.
  std::uint32_t laneWidth = 1;
  DetectionPolicy policy = DetectionPolicy::DefiniteOnly;
  SimOptions sim;
  /// Naive from-scratch baseline: one full-sequence self-simulating engine
  /// per injection, no checkpoint at all. The oracle the replay mode is
  /// bit-identical to, and the denominator of the campaign speedup claim.
  bool naive = false;
  /// Shared checkpoint store (replay mode). When null, a private store is
  /// created with `checkpointBudgetBytes` as its spill budget.
  std::shared_ptr<CheckpointStore> store;
  std::size_t checkpointBudgetBytes = 0;
  /// Invoked between groups/injections on the claiming thread (service
  /// cancellation hook; may throw to abort the campaign).
  std::function<void()> checkPoint;
};

struct CampaignResult {
  /// Per injection, in campaign order (independent of jobs / grouping).
  std::vector<InjectionResult> injections;
  std::uint32_t numDetected = 0;
  std::uint32_t numSilent = 0;
  std::uint32_t numLatent = 0;
  /// Distinct injection instants (= tail engines run in replay mode).
  std::uint32_t numGroups = 0;
  /// Whether this campaign's store acquire performed the good-machine
  /// recording (false on a cache hit or in naive mode).
  bool recordedCheckpoint = false;
  double totalSeconds = 0.0;
  /// Deterministic work counter: faulty-tail solver work summed over group
  /// engines (replay) or full per-injection engines (naive). Excludes the
  /// one-off checkpoint recording, so the value is independent of cache
  /// state and jobs.
  std::uint64_t totalNodeEvals = 0;

  /// FNV-1a over (outcome, detectedAtPattern) in campaign order plus the
  /// campaign shape — the bit-identity witness the bench gate pins: naive
  /// and replay campaigns of the same spec must checksum equal.
  std::uint64_t checksum() const;
};

/// Grades `campaign` against `seq` on `net`. Validates every injection
/// (known non-input node, instant within the sequence); throws Error on a
/// bad spec. Deterministic for fixed inputs regardless of options.jobs,
/// options.laneWidth and checkpoint cache state.
CampaignResult runSeuCampaign(const Network& net, const TestSequence& seq,
                              const TransientList& campaign,
                              const CampaignOptions& options = {});

}  // namespace fmossim::seu
