#include "seu/seu_campaign.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <span>
#include <thread>

#include "util/hash.hpp"
#include "util/timer.hpp"

namespace fmossim::seu {

const char* outcomeName(Outcome o) {
  switch (o) {
    case Outcome::Detected: return "detected";
    case Outcome::Silent: return "silent";
    case Outcome::Latent: return "latent";
  }
  return "?";
}

std::uint64_t CampaignResult::checksum() const {
  std::uint64_t h = kFnvOffsetBasis;
  fnvMix(h, injections.size());
  for (const InjectionResult& r : injections) {
    fnvMix(h, static_cast<std::uint64_t>(r.outcome));
    fnvMix(h, static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(r.detectedAtPattern)));
  }
  fnvMix(h, numDetected);
  fnvMix(h, numSilent);
  fnvMix(h, numLatent);
  return h;
}

namespace {

/// One same-instant injection group: campaign indices, in campaign order
/// (machine i+1 of the group engine simulates campaign[indices[i]]).
struct Group {
  std::uint64_t atPattern = 0;
  std::vector<std::uint32_t> indices;
};

Outcome classify(const ConcurrentFaultSimulator& sim, std::uint32_t machine,
                 const FaultSimResult& res) {
  if (res.detectedAtPattern[machine] >= 0) return Outcome::Detected;
  return sim.hasDivergence(machine + 1) ? Outcome::Latent : Outcome::Silent;
}

}  // namespace

CampaignResult runSeuCampaign(const Network& net, const TestSequence& seq,
                              const TransientList& campaign,
                              const CampaignOptions& options) {
  if (campaign.empty()) {
    throw Error("SEU campaign has no injections");
  }
  // Validate up front (the engines re-check, but a campaign-level error
  // should name the injection before any thread spins up).
  for (const TransientFault& f : campaign) {
    if (!f.node.valid() || f.node.value >= net.numNodes()) {
      throw Error("SEU campaign references an unknown node");
    }
    if (net.isInput(f.node)) {
      throw Error("SEU injection '" + f.name + "' targets an input node");
    }
    if (f.atPattern >= seq.size()) {
      throw Error("SEU injection '" + f.name +
                  "' is past the end of the sequence");
    }
  }

  FsimOptions engineOpts;
  engineOpts.sim = options.sim;
  engineOpts.policy = options.policy;
  engineOpts.dropDetected = true;
  engineOpts.laneWidth = options.naive ? 1 : options.laneWidth;

  CampaignResult result;
  result.injections.resize(campaign.size());
  for (std::uint32_t i = 0; i < campaign.size(); ++i) {
    result.injections[i].fault = campaign[i];
  }

  // Group by instant (ordered map: group order, like the results, is
  // deterministic no matter which worker claims what).
  std::map<std::uint64_t, Group> byInstant;
  for (std::uint32_t i = 0; i < campaign.size(); ++i) {
    Group& g = byInstant[campaign[i].atPattern];
    g.atPattern = campaign[i].atPattern;
    g.indices.push_back(i);
  }
  std::vector<Group> groups;
  groups.reserve(byInstant.size());
  for (auto& [at, g] : byInstant) groups.push_back(std::move(g));
  result.numGroups = static_cast<std::uint32_t>(groups.size());

  Timer total;

  std::shared_ptr<const GoodMachineCheckpoint> ck;
  if (!options.naive) {
    std::shared_ptr<CheckpointStore> store = options.store;
    if (store == nullptr) {
      CheckpointStore::Options so;
      so.budgetBytes = options.checkpointBudgetBytes;
      store = std::make_shared<CheckpointStore>(so);
    }
    bool recordedNow = false;
    ck = store->acquire(net, seq, engineOpts, &recordedNow);
    result.recordedCheckpoint = recordedNow;
  }

  // Work items: groups in replay mode, single injections in naive mode (a
  // naive engine per injection keeps the baseline honest — one from-scratch
  // sequence simulation each — and parallelizes trivially).
  const std::size_t numItems =
      options.naive ? campaign.size() : groups.size();
  std::atomic<std::size_t> nextItem{0};
  std::atomic<std::uint64_t> nodeEvals{0};
  std::mutex errorMutex;
  std::exception_ptr firstError;

  const auto worker = [&]() {
    try {
      for (;;) {
        const std::size_t item = nextItem.fetch_add(1);
        if (item >= numItems) return;
        if (options.checkPoint) options.checkPoint();
        if (options.naive) {
          const std::uint32_t i = static_cast<std::uint32_t>(item);
          ConcurrentFaultSimulator sim(net, 1u, engineOpts);
          const TransientFault spec = campaign[i];
          const FaultSimResult res =
              sim.runTransient(seq, std::span<const TransientFault>(&spec, 1));
          result.injections[i].outcome = classify(sim, 0, res);
          result.injections[i].detectedAtPattern = res.detectedAtPattern[0];
          nodeEvals.fetch_add(res.totalNodeEvals);
        } else {
          const Group& g = groups[item];
          std::vector<TransientFault> specs;
          specs.reserve(g.indices.size());
          for (const std::uint32_t i : g.indices) specs.push_back(campaign[i]);
          ConcurrentFaultSimulator sim(
              net, static_cast<std::uint32_t>(specs.size()), engineOpts,
              ck.get(), g.atPattern);
          const FaultSimResult res = sim.runTransientTail(specs);
          for (std::uint32_t k = 0; k < g.indices.size(); ++k) {
            const std::uint32_t i = g.indices[k];
            result.injections[i].outcome = classify(sim, k, res);
            result.injections[i].detectedAtPattern = res.detectedAtPattern[k];
          }
          nodeEvals.fetch_add(res.totalNodeEvals);
        }
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(errorMutex);
      if (!firstError) firstError = std::current_exception();
      nextItem.store(numItems);  // drain remaining claims
    }
  };

  const unsigned jobs =
      std::max(1u, std::min<unsigned>(options.jobs,
                                      static_cast<unsigned>(numItems)));
  if (jobs <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  if (firstError) std::rethrow_exception(firstError);

  for (const InjectionResult& r : result.injections) {
    switch (r.outcome) {
      case Outcome::Detected: ++result.numDetected; break;
      case Outcome::Silent: ++result.numSilent; break;
      case Outcome::Latent: ++result.numLatent; break;
    }
  }
  result.totalNodeEvals = nodeEvals.load();
  result.totalSeconds = total.seconds();
  return result;
}

}  // namespace fmossim::seu
