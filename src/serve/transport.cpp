#include "serve/transport.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/error.hpp"

namespace fmossim::serve {

namespace {

void writeAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("socket write failed: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Reads until `buffer` contains a '\n'; returns the line without it (the
/// leftover stays in the buffer). False means orderly EOF before a line.
bool readLine(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t pos = buffer.find('\n');
    if (pos != std::string::npos) {
      line.assign(buffer, 0, pos);
      buffer.erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // connection torn down (e.g. stop() closed the fd)
    }
    if (n == 0) return false;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

sockaddr_un socketAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw Error("socket path too long (max " +
                std::to_string(sizeof addr.sun_path - 1) + " bytes): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

SocketServer::SocketServer(Server& server, std::string path)
    : server_(server), path_(std::move(path)) {
  const sockaddr_un addr = socketAddress(path_);
  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    throw Error(std::string("socket() failed: ") + std::strerror(errno));
  }
  ::unlink(path_.c_str());  // stale socket file from a previous run
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listenFd_, 16) != 0) {
    const std::string what = std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    throw Error("cannot listen on '" + path_ + "': " + what);
  }
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

SocketServer::~SocketServer() { stop(); }

void SocketServer::acceptLoop() {
  for (;;) {
    // Snapshot the listen fd under the lock: stop() claims it (and later
    // closes it) under the same lock, so this thread never reads a torn or
    // already-recycled descriptor. stop() defers the close() until after
    // this thread joins, so the snapshot stays valid for the whole
    // iteration; shutdown() is what wakes the poll below.
    int lfd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      lfd = listenFd_;
    }
    if (server_.shutdownRequested()) return;
    // Poll with a timeout so shutdown requests handled on connection
    // threads are noticed without another connection arriving.
    pollfd pfd{lfd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) continue;
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed by stop()
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connFds_.push_back(fd);
    connThreads_.emplace_back([this, fd] { serveConnection(fd); });
  }
}

void SocketServer::serveConnection(int fd) {
  std::string buffer;
  std::string line;
  while (readLine(fd, buffer, line)) {
    if (line.empty()) continue;  // tolerate blank keep-alive lines
    std::string response;
    try {
      response = server_.handleLine(line);
    } catch (...) {
      break;  // handleLine never throws; belt and braces
    }
    try {
      writeAll(fd, response + "\n");
    } catch (const Error&) {
      break;  // peer went away mid-response
    }
    if (server_.shutdownRequested()) break;
  }
  ::close(fd);
}

void SocketServer::waitShutdown() {
  if (acceptThread_.joinable()) acceptThread_.join();
}

void SocketServer::stop() {
  std::vector<int> fds;
  int listenFd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && listenFd_ < 0) return;
    stopping_ = true;
    fds.swap(connFds_);
    // Claim the listen fd under the lock (acceptLoop snapshots it under the
    // same lock); shutdown() below wakes the accept thread's poll, but the
    // close() waits until that thread has joined so its snapshot cannot be
    // recycled into an unrelated descriptor mid-poll.
    listenFd = listenFd_;
    listenFd_ = -1;
  }
  if (listenFd >= 0) ::shutdown(listenFd, SHUT_RDWR);
  // Unblock connection threads stuck in read(); result-waiters unblock via
  // Server::stop() (queue stop wakes them), which the CLI calls first.
  for (const int fd : fds) ::shutdown(fd, SHUT_RDWR);
  if (acceptThread_.joinable()) acceptThread_.join();
  if (listenFd >= 0) ::close(listenFd);
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(connThreads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  ::unlink(path_.c_str());
}

SocketClient::SocketClient(const std::string& path) {
  const sockaddr_un addr = socketAddress(path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw Error(std::string("socket() failed: ") + std::strerror(errno));
  }
  // connect() interrupted by a signal must be retried like the read/write
  // loops below; without this a harmless SIGCHLD during connection setup
  // surfaces as a spurious "Interrupted system call" failure.
  int rc;
  do {
    rc = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  // An interrupted connect may have completed in the background; the retry
  // then fails with EISCONN, which is success.
  if (rc != 0 && errno == EISCONN) rc = 0;
  if (rc != 0) {
    const std::string what = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error("cannot connect to '" + path + "': " + what);
  }
}

SocketClient::~SocketClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string SocketClient::roundTrip(const std::string& line) {
  writeAll(fd_, line + "\n");
  std::string response;
  if (!readLine(fd_, buffer_, response)) {
    throw Error("server closed the connection");
  }
  return response;
}

JsonValue SocketClient::request(const JsonValue& req) {
  return JsonValue::parse(roundTrip(req.dump()));
}

}  // namespace fmossim::serve
