#include "serve/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <unistd.h>

#include "perf/bench_json.hpp"
#include "perf/bench_runner.hpp"
#include "serve/transport.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace fmossim::serve {

namespace {

/// Linear-interpolated percentile over an unsorted sample, in milliseconds.
double percentileMs(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (sample[lo] * (1.0 - frac) + sample[hi] * frac) * 1000.0;
}

/// The M*K distinct workload specs of a run, in deterministic order.
std::vector<WorkloadSpec> buildSpecs(const LoadGenOptions& o) {
  std::vector<WorkloadSpec> specs;
  specs.reserve(static_cast<std::size_t>(o.circuits) * o.sequencesPerCircuit);
  for (std::uint32_t c = 0; c < o.circuits; ++c) {
    for (std::uint32_t k = 0; k < o.sequencesPerCircuit; ++k) {
      WorkloadSpec spec;
      spec.circuitSeed = o.baseSeed + c;
      if (k > 0) {
        // Distinct, collision-resistant sequence seeds per (circuit, k).
        std::uint64_t h = kFnvOffsetBasis;
        fnvMix(h, o.baseSeed);
        fnvMix(h, c);
        fnvMix(h, k);
        spec.seqSeed = h | 1;  // never 0 (0 = the generator's own sequence)
      }
      spec.numNodes = o.numNodes;
      spec.numInputs = o.numInputs;
      spec.numFaults = o.numFaults;
      spec.numPatterns = o.numPatterns;
      spec.jobs = std::max(1u, o.jobs);
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

/// Zipf-skewed request schedule: rank r of the spec list gets weight
/// 1/(r+1)^s, then N draws from the resulting CDF with a seeded Rng.
std::vector<std::size_t> buildSchedule(const LoadGenOptions& o,
                                       std::size_t items) {
  std::vector<double> cdf(items);
  double total = 0.0;
  for (std::size_t r = 0; r < items; ++r) {
    total += std::pow(static_cast<double>(r + 1), -o.zipfExponent);
    cdf[r] = total;
  }
  Rng rng(o.baseSeed ^ 0x5bf0363546069717ULL);
  std::vector<std::size_t> schedule(o.requests);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const double u =
        static_cast<double>(rng.next() >> 11) * 0x1.0p-53 * total;
    schedule[i] = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    if (schedule[i] >= items) schedule[i] = items - 1;
  }
  return schedule;
}

/// One request's client-side record.
struct RequestOutcome {
  bool ok = false;
  std::uint64_t checksum = 0;
  std::uint64_t nodeEvals = 0;
  std::uint32_t numFaults = 0;
  std::uint32_t numDetected = 0;
  bool engineReused = false;
  double latencySeconds = 0.0;
  std::string error;
};

/// submit + result round trip for one spec on one connection.
RequestOutcome runOne(SocketClient& client, const WorkloadSpec& spec) {
  RequestOutcome out;
  Timer t;
  JsonValue submit = JsonValue::makeObject();
  submit.set("verb", JsonValue::makeString("submit"));
  submit.set("workload", spec.toJson());
  const JsonValue submitted = client.request(submit);
  if (!submitted.boolOr("ok", false)) {
    out.error = submitted.stringOr("error", "submit rejected");
    return out;
  }
  JsonValue result = JsonValue::makeObject();
  result.set("verb", JsonValue::makeString("result"));
  result.set("id", JsonValue::makeU64(submitted.u64Or("id", 0)));
  const JsonValue resolved = client.request(result);
  out.latencySeconds = t.seconds();
  if (!resolved.boolOr("ok", false)) {
    out.error = resolved.stringOr("error", "result failed");
    return out;
  }
  if (resolved.stringOr("status", "") != "done") {
    out.error = "job finished '" + resolved.stringOr("status", "?") + "'";
    const JsonValue* r = resolved.find("result");
    if (r != nullptr) out.error += ": " + r->stringOr("error", "");
    return out;
  }
  const JobResult jr = JobResult::fromJson(resolved.get("result"));
  out.ok = true;
  out.checksum = jr.checksum;
  out.nodeEvals = jr.nodeEvals;
  out.numFaults = jr.numFaults;
  out.numDetected = jr.numDetected;
  out.engineReused = jr.engineReused;
  return out;
}

}  // namespace

LoadGenReport runLoadGen(const LoadGenOptions& options) {
  if (options.circuits == 0 || options.sequencesPerCircuit == 0 ||
      options.requests == 0) {
    throw Error("loadgen needs at least one circuit, sequence and request");
  }

  // Optional in-process daemon (full transport stack on a private socket).
  std::unique_ptr<Server> inprocServer;
  std::unique_ptr<SocketServer> inprocSocket;
  std::string path = options.socketPath;
  if (options.inproc) {
    path = format("/tmp/fmossim-loadgen-%d.sock", static_cast<int>(getpid()));
    inprocServer = std::make_unique<Server>(options.inprocServer);
    inprocServer->start();
    inprocSocket = std::make_unique<SocketServer>(*inprocServer, path);
  }
  if (path.empty()) {
    throw Error("loadgen needs --socket PATH (or --inproc)");
  }

  const std::vector<WorkloadSpec> specs = buildSpecs(options);
  const std::vector<std::size_t> schedule = buildSchedule(options, specs.size());

  // Expected result per distinct workload: a direct, freshly constructed
  // Engine run of the same spec. This is the bit-identity oracle the whole
  // service contract is checked against.
  std::vector<std::uint64_t> expected(specs.size(), 0);
  if (options.verify) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const BuiltWorkload w = buildWorkload(specs[i]);
      Engine engine(w.net, w.faults, specEngineOptions(specs[i]));
      if (w.streamConfig.has_value()) {
        // Streamed specs never materialize; resultChecksum folds the derived
        // rows, so this compares equal to the daemon's streamed run.
        GeneratedPatternSource source(*w.streamConfig);
        expected[i] = perf::resultChecksum(engine.runStream(source));
      } else {
        expected[i] = perf::resultChecksum(engine.run(w.seq));
      }
    }
  }

  // Replay: T client threads, each with its own connection, each running
  // its slice of the schedule synchronously (submit, then block on result).
  std::vector<RequestOutcome> outcomes(schedule.size());
  const unsigned threads =
      std::max(1u, std::min<unsigned>(options.concurrency,
                                      static_cast<unsigned>(schedule.size())));
  Timer wall;
  {
    std::vector<std::thread> pool;
    std::mutex errMu;
    std::string firstError;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        try {
          SocketClient client(path);
          for (std::size_t i = t; i < schedule.size(); i += threads) {
            outcomes[i] = runOne(client, specs[schedule[i]]);
          }
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(errMu);
          if (firstError.empty()) firstError = e.what();
        }
      });
    }
    for (auto& th : pool) th.join();
    if (!firstError.empty()) {
      throw Error(std::string("loadgen client failed: ") + firstError);
    }
  }
  const double elapsed = wall.seconds();

  LoadGenReport report;
  report.distinctWorkloads = static_cast<std::uint32_t>(specs.size());
  report.elapsedSeconds = elapsed;
  std::vector<double> latencies;
  latencies.reserve(outcomes.size());
  std::string firstFailure;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const RequestOutcome& out = outcomes[i];
    if (!out.ok) {
      ++report.failures;
      if (firstFailure.empty()) {
        firstFailure = format("request %zu: %s", i, out.error.c_str());
      }
      continue;
    }
    ++report.requests;
    latencies.push_back(out.latencySeconds);
    if (out.engineReused) ++report.engineReuses;
    if (options.verify && out.checksum != expected[schedule[i]]) {
      ++report.checksumMismatches;
      if (firstFailure.empty()) {
        firstFailure = format(
            "request %zu (workload %zu): daemon checksum 0x%016llx != direct "
            "engine 0x%016llx",
            i, schedule[i], static_cast<unsigned long long>(out.checksum),
            static_cast<unsigned long long>(expected[schedule[i]]));
      }
    }
  }
  report.p50Ms = percentileMs(latencies, 50.0);
  report.p95Ms = percentileMs(latencies, 95.0);
  report.p99Ms = percentileMs(latencies, 99.0);
  if (elapsed > 0.0) {
    report.requestsPerSec = static_cast<double>(report.requests) / elapsed;
  }

  // Daemon-side counters, then optional shutdown — one control connection.
  std::size_t storeResidentBytes = 0;
  std::size_t storeBudgetBytes = 0;
  std::uint32_t poolEngines = 0;
  std::uint32_t daemonWorkers = 0;
  {
    SocketClient control(path);
    JsonValue statsReq = JsonValue::makeObject();
    statsReq.set("verb", JsonValue::makeString("stats"));
    const JsonValue statsResp = control.request(statsReq);
    if (!statsResp.boolOr("ok", false)) {
      throw Error("stats request failed: " +
                  statsResp.stringOr("error", "?"));
    }
    const JsonValue& stats = statsResp.get("stats");
    const JsonValue& store = stats.get("store");
    report.storeHits = store.u64Or("hits", 0);
    report.storeRecordings = store.u64Or("recordings", 0);
    storeResidentBytes =
        static_cast<std::size_t>(store.u64Or("residentBytes", 0));
    storeBudgetBytes = static_cast<std::size_t>(store.u64Or("budgetBytes", 0));
    poolEngines =
        static_cast<std::uint32_t>(stats.get("pool").u64Or("engines", 0));
    daemonWorkers = static_cast<std::uint32_t>(stats.u64Or("workers", 0));
    if (options.shutdownAfter) {
      JsonValue down = JsonValue::makeObject();
      down.set("verb", JsonValue::makeString("shutdown"));
      control.request(down);
    }
  }

  if (inprocSocket != nullptr) {
    inprocServer->stop();
    inprocSocket->stop();
  }

  // Emit BENCH_serve_mixed.json before failing, so a broken run still
  // leaves its numbers behind for debugging.
  if (options.emitJson) {
    perf::ScenarioResult sr;
    sr.scenario = "serve_mixed";
    sr.description = format(
        "service daemon mixed-tenant replay: %u circuits x %u sequences, "
        "%u zipf(%.2f)-skewed requests, %u client connections, jobs=%u per "
        "request",
        options.circuits, options.sequencesPerCircuit, options.requests,
        options.zipfExponent, threads, std::max(1u, options.jobs));
    {
      const BuiltWorkload w0 = buildWorkload(specs.front());
      sr.transistors = w0.net.numTransistors();
      sr.nodes = w0.net.numNodes();
      sr.faults = w0.faults.size();
      sr.patterns = w0.streamConfig.has_value()
                        ? static_cast<std::uint32_t>(w0.streamConfig->numPatterns)
                        : w0.seq.size();
    }
    perf::BenchRow row;
    row.backend = "serve";
    row.jobs = std::max(1u, options.jobs);
    row.policy = "definite";
    row.dropDetected = true;
    row.medianMs = report.p50Ms;
    row.stddevMs = 0.0;
    row.reps = report.requests;
    std::uint64_t h = kFnvOffsetBasis;
    for (const RequestOutcome& out : outcomes) {
      if (!out.ok) continue;
      fnvMix(h, out.checksum);
      row.nodeEvals += out.nodeEvals;
      row.numFaults += out.numFaults;
      row.numDetected += out.numDetected;
    }
    row.checksum = h;
    sr.rows.push_back(std::move(row));
    sr.checkpointBudget = storeBudgetBytes;
    sr.checkpointRecordings =
        static_cast<std::uint32_t>(report.storeRecordings);
    sr.checkpointResidentBytes = storeResidentBytes;
    perf::ServiceSummary svc;
    svc.requests = report.requests;
    svc.distinctWorkloads = report.distinctWorkloads;
    svc.poolEngines = poolEngines;
    svc.workers = daemonWorkers;
    svc.requestsPerSec = report.requestsPerSec;
    svc.p50Ms = report.p50Ms;
    svc.p95Ms = report.p95Ms;
    svc.p99Ms = report.p99Ms;
    svc.storeHits = report.storeHits;
    svc.storeRecordings = report.storeRecordings;
    svc.engineReuses = report.engineReuses;
    sr.service = svc;
    perf::fillHostInfo(sr);
    report.benchPath = perf::writeBenchFile(sr, options.outDir);
  }

  if (!firstFailure.empty()) {
    throw Error("loadgen: " + std::to_string(report.failures) +
                " failed, " + std::to_string(report.checksumMismatches) +
                " checksum mismatches; first: " + firstFailure);
  }
  if (report.storeHits < options.expectStoreHits) {
    throw Error(format(
        "loadgen: expected >= %llu checkpoint-store hits, daemon reports "
        "%llu — engine/checkpoint reuse is not happening",
        static_cast<unsigned long long>(options.expectStoreHits),
        static_cast<unsigned long long>(report.storeHits)));
  }
  return report;
}

}  // namespace fmossim::serve
