// Minimal JSON value model for the service wire protocol (src/serve/).
//
// The daemon speaks newline-delimited JSON over a Unix-domain socket; both
// sides of that conversation need a small dynamic JSON value — requests are
// heterogeneous objects, unlike the fixed-schema BENCH files that
// src/perf/bench_json.cpp parses straight into structs. This is that value:
// object members keep insertion order (deterministic wire bytes), numbers
// are doubles (64-bit checksums travel as 0x-prefixed hex strings, exactly
// like the bench JSON schema), and dump() emits a single line so one value
// is always one NDJSON frame.
//
// Deliberately not a general-purpose JSON library: no unicode escapes, no
// exponent-heavy number formatting guarantees beyond round-tripping what
// dump() wrote, and parse() rejects trailing garbage.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace fmossim::serve {

/// A parsed JSON value (null, bool, number, string, array or object).
/// Accessors throw Error on type mismatches, which the server turns into
/// protocol error responses.
class JsonValue {
 public:
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;  ///< null

  static JsonValue makeNull() { return JsonValue(); }
  static JsonValue makeBool(bool b);
  static JsonValue makeNumber(double v);
  /// Unsigned 64-bit values above 2^53 do not survive the double
  /// representation; callers with full-range values (checksums,
  /// fingerprints) must use makeHexU64().
  static JsonValue makeU64(std::uint64_t v);
  static JsonValue makeString(std::string s);
  static JsonValue makeArray();
  static JsonValue makeObject();
  /// Full-range 64-bit value as a "0x%016x" hex string (the bench JSON
  /// checksum convention).
  static JsonValue makeHexU64(std::uint64_t v);

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::Null; }
  bool isObject() const { return type_ == Type::Object; }

  bool asBool() const;
  double asNumber() const;
  /// Number as a non-negative integer; throws on negatives, non-integers
  /// and values above 2^53 (where doubles stop being exact).
  std::uint64_t asU64() const;
  const std::string& asString() const;
  /// Parses a makeHexU64()-style "0x..." string back to the full value.
  std::uint64_t asHexU64() const;

  const std::vector<JsonValue>& items() const;      ///< array elements
  void push(JsonValue v);                           ///< array append

  /// Object member access; get() throws on a missing key, find() returns
  /// nullptr, and the typed getters fall back to a default when absent
  /// (additive-schema tolerance — the parser side of "unknown fields are
  /// ignored, missing fields default").
  const std::vector<std::pair<std::string, JsonValue>>& members() const;
  void set(const std::string& key, JsonValue v);    ///< add or replace
  const JsonValue* find(const std::string& key) const;
  const JsonValue& get(const std::string& key) const;
  double numberOr(const std::string& key, double fallback) const;
  std::uint64_t u64Or(const std::string& key, std::uint64_t fallback) const;
  bool boolOr(const std::string& key, bool fallback) const;
  std::string stringOr(const std::string& key, std::string fallback) const;

  /// Serializes as one line of JSON (no trailing newline; NDJSON framing is
  /// the transport's job).
  std::string dump() const;

  /// Parses a complete JSON document. Throws Error (with byte offset) on
  /// malformed input or trailing garbage.
  static JsonValue parse(const std::string& text);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace fmossim::serve
