// NDJSON-over-Unix-domain-socket transport for the service daemon.
//
// SocketServer listens on a filesystem socket path (`serve --socket PATH`),
// accepts connections on its own thread and spawns one thread per
// connection; each connection reads newline-framed request lines, passes
// them to Server::handleLine() and writes back one response line. The
// framing is the whole protocol — src/serve/server.hpp owns the verbs.
//
// SocketClient is the matching blocking client (used by the `loadgen`
// subcommand and the service tests): connect, roundTrip() one line, read
// one line back. Both sides are deliberately boring POSIX — no event loop,
// no partial-frame buffering beyond a per-connection read buffer — because
// a fault-grading request costs milliseconds and connection counts are
// small.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/server.hpp"

namespace fmossim::serve {

/// The daemon's socket front end; see the file comment.
class SocketServer {
 public:
  /// Binds and listens on `path` (an existing socket file is unlinked
  /// first) and starts the accept thread. Throws Error on bind failures or
  /// paths longer than sockaddr_un allows.
  SocketServer(Server& server, std::string path);
  ~SocketServer();  ///< stop()

  const std::string& path() const { return path_; }

  /// Blocks until the accept loop exits — i.e. until a `shutdown` request
  /// was handled or stop() was called.
  void waitShutdown();

  /// Closes the listening socket and all live connections, joins the
  /// threads and unlinks the socket file. Idempotent.
  void stop();

 private:
  void acceptLoop();
  void serveConnection(int fd);

  Server& server_;
  std::string path_;
  int listenFd_ = -1;
  std::thread acceptThread_;
  std::mutex mu_;
  bool stopping_ = false;
  std::vector<int> connFds_;           ///< live connection sockets
  std::vector<std::thread> connThreads_;
};

/// Blocking NDJSON client for one daemon connection.
class SocketClient {
 public:
  /// Connects to the daemon socket; throws Error if the connect fails.
  explicit SocketClient(const std::string& path);
  ~SocketClient();

  SocketClient(const SocketClient&) = delete;             ///< owns the fd
  SocketClient& operator=(const SocketClient&) = delete;  ///< owns the fd

  /// Sends one request line and returns the response line (both without
  /// the newline). Throws Error on a closed or failing connection.
  std::string roundTrip(const std::string& line);

  /// roundTrip() with JSON values on both ends.
  JsonValue request(const JsonValue& req);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last response line
};

}  // namespace fmossim::serve
