#include "serve/engine_pool.hpp"

#include "util/hash.hpp"

namespace fmossim::serve {

EnginePool::EnginePool(EnginePoolOptions options)
    : options_(options),
      store_(options.store != nullptr ? options.store
                                      : std::make_shared<CheckpointStore>()),
      history_(options.history != nullptr
                   ? options.history
                   : std::make_shared<sched::HistoryStore>()) {
  slots_.resize(std::max(1u, options_.engines));
  stats_.engines = static_cast<unsigned>(slots_.size());
}

std::uint64_t EnginePool::keyFor(std::uint64_t netFp, std::uint64_t faultsFp,
                                 const EngineOptions& options) {
  std::uint64_t h = kFnvOffsetBasis;
  fnvMix(h, netFp);
  fnvMix(h, faultsFp);
  fnvMix(h, static_cast<std::uint64_t>(options.backend));
  fnvMix(h, options.jobs);
  fnvMix(h, options.batchFaults);
  fnvMix(h, options.laneWidth);
  fnvMix(h, static_cast<std::uint64_t>(options.policy));
  fnvMix(h, options.dropDetected ? 1 : 0);
  // The schedule policy does not change results, but it does change the
  // backend's scheduling state, so pooled engines are keyed per policy —
  // a contiguous request never silently reuses a history-scheduled engine.
  fnvMix(h, static_cast<std::uint64_t>(options.schedule));
  return h;
}

EnginePool::Lease EnginePool::acquire(const Network& net,
                                      const FaultList& faults,
                                      EngineOptions options) {
  options.checkpointStore = store_;
  options.historyStore = history_;
  const std::uint64_t key =
      keyFor(networkFingerprint(net), faultListFingerprint(faults), options);

  std::size_t chosen = 0;
  bool reuse = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      // A free slot already holding this exact workload wins outright.
      bool anyFree = false;
      std::size_t lru = 0;
      std::uint64_t lruTick = ~0ULL;
      bool found = false;
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        const Slot& s = slots_[i];
        if (s.leased) continue;
        anyFree = true;
        if (s.engine != nullptr && s.key == key) {
          chosen = i;
          found = true;
          reuse = true;
          break;
        }
        // Prefer recycling an empty slot; otherwise evict least recently
        // used (rebind is cheaper than the cold requests the hot engines
        // would otherwise pay).
        const std::uint64_t tick = s.engine == nullptr ? 0 : s.lastUse;
        if (tick < lruTick) {
          lruTick = tick;
          lru = i;
        }
      }
      if (found || anyFree) {
        if (!found) chosen = lru;
        break;
      }
      freeCv_.wait(lock);
    }
    Slot& slot = slots_[chosen];
    slot.leased = true;
    slot.lastUse = ++tick_;
    ++stats_.acquires;
    if (reuse) {
      ++stats_.reuses;
    } else if (slot.engine != nullptr) {
      ++stats_.rebinds;
    } else {
      ++stats_.builds;
    }
    slot.key = key;
  }

  // Build/rebind outside the lock: the slot is leased, so no other thread
  // touches it, and constructing an engine (fault injection, backend build)
  // must not serialize the whole pool.
  Slot& slot = slots_[chosen];
  if (!reuse) {
    if (slot.engine == nullptr) {
      slot.engine = std::make_unique<Engine>(net, faults, options);
    } else {
      slot.engine->rebind(net, faults, options);
    }
  }
  Lease lease;
  lease.engine = slot.engine.get();
  lease.reused = reuse;
  lease.slot = chosen;
  return lease;
}

void EnginePool::release(Lease& lease) {
  if (lease.engine == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slots_[lease.slot].leased = false;
  }
  lease.engine = nullptr;
  freeCv_.notify_one();
}

EnginePool::Stats EnginePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace fmossim::serve
