#include "serve/json.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdlib>

#include "util/strings.hpp"

namespace fmossim::serve {

namespace {

const char* typeName(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::Null: return "null";
    case JsonValue::Type::Bool: return "bool";
    case JsonValue::Type::Number: return "number";
    case JsonValue::Type::String: return "string";
    case JsonValue::Type::Array: return "array";
    case JsonValue::Type::Object: return "object";
  }
  return "?";
}

[[noreturn]] void typeError(const char* want, JsonValue::Type got) {
  throw Error(format("JSON: expected %s, got %s", want, typeName(got)));
}

void escapeTo(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Shortest-form number rendering that still round-trips: integers (the
// common case — counts, ids, byte sizes) print without a fraction.
void numberTo(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    out += format("%lld", static_cast<long long>(v));
  } else {
    out += format("%.17g", v);
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parseValue() {
    skipWs();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return JsonValue::makeString(parseString());
      case 't':
      case 'f': return parseBool();
      case 'n': return parseNull();
      default: return parseNumber();
    }
  }

  void end() {
    skipWs();
    if (pos_ != text_.size()) fail("trailing garbage");
  }

 private:
  JsonValue parseObject() {
    expect('{');
    JsonValue v = JsonValue::makeObject();
    skipWs();
    if (tryConsume('}')) return v;
    do {
      skipWs();
      const std::string key = parseString();
      skipWs();
      expect(':');
      v.set(key, parseValue());
      skipWs();
    } while (tryConsume(','));
    skipWs();
    expect('}');
    return v;
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue v = JsonValue::makeArray();
    skipWs();
    if (tryConsume(']')) return v;
    do {
      v.push(parseValue());
      skipWs();
    } while (tryConsume(','));
    skipWs();
    expect(']');
    return v;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= unsigned(h - '0');
              else if (h >= 'a' && h <= 'f') code |= unsigned(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= unsigned(h - 'A' + 10);
              else fail("malformed \\u escape");
            }
            if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
            c = static_cast<char>(code);
            break;
          }
          default: fail("unsupported escape");
        }
      }
      out += c;
    }
  }

  JsonValue parseNumber() {
    const char* start = text_.c_str() + pos_;
    char* endp = nullptr;
    const double v = std::strtod(start, &endp);
    if (endp == start) fail("expected value");
    pos_ += static_cast<std::size_t>(endp - start);
    return JsonValue::makeNumber(v);
  }

  JsonValue parseBool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue::makeBool(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue::makeBool(false);
    }
    fail("expected boolean");
  }

  JsonValue parseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue::makeNull();
    }
    fail("expected null");
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(format("expected '%c'", c));
    }
    ++pos_;
  }

  bool tryConsume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  [[noreturn]] void fail(const std::string& what) {
    throw Error(format("JSON: %s at byte %zu", what.c_str(), pos_));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::makeBool(bool b) {
  JsonValue v;
  v.type_ = Type::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::makeNumber(double d) {
  JsonValue v;
  v.type_ = Type::Number;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::makeU64(std::uint64_t u) {
  return makeNumber(static_cast<double>(u));
}

JsonValue JsonValue::makeString(std::string s) {
  JsonValue v;
  v.type_ = Type::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::makeArray() {
  JsonValue v;
  v.type_ = Type::Array;
  return v;
}

JsonValue JsonValue::makeObject() {
  JsonValue v;
  v.type_ = Type::Object;
  return v;
}

JsonValue JsonValue::makeHexU64(std::uint64_t u) {
  return makeString(format("0x%016" PRIx64, u));
}

bool JsonValue::asBool() const {
  if (type_ != Type::Bool) typeError("bool", type_);
  return bool_;
}

double JsonValue::asNumber() const {
  if (type_ != Type::Number) typeError("number", type_);
  return number_;
}

std::uint64_t JsonValue::asU64() const {
  const double v = asNumber();
  if (v < 0.0 || v != std::floor(v) || v > 9.007199254740992e15) {
    throw Error(format("JSON: %.17g is not an exact unsigned integer", v));
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& JsonValue::asString() const {
  if (type_ != Type::String) typeError("string", type_);
  return string_;
}

std::uint64_t JsonValue::asHexU64() const {
  const std::string& s = asString();
  if (s.size() < 3 || s[0] != '0' || s[1] != 'x') {
    throw Error("JSON: expected a 0x-prefixed hex string, got '" + s + "'");
  }
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str() + 2, &end, 16);
  if (end == nullptr || *end != '\0') {
    throw Error("JSON: malformed hex string '" + s + "'");
  }
  return v;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::Array) typeError("array", type_);
  return array_;
}

void JsonValue::push(JsonValue v) {
  if (type_ != Type::Array) typeError("array", type_);
  array_.push_back(std::move(v));
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::Object) typeError("object", type_);
  return object_;
}

void JsonValue::set(const std::string& key, JsonValue v) {
  if (type_ != Type::Object) typeError("object", type_);
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::Object) typeError("object", type_);
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw Error("JSON: missing key '" + key + "'");
  return *v;
}

double JsonValue::numberOr(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->asNumber();
}

std::uint64_t JsonValue::u64Or(const std::string& key,
                               std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->asU64();
}

bool JsonValue::boolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? fallback : v->asBool();
}

std::string JsonValue::stringOr(const std::string& key,
                                std::string fallback) const {
  const JsonValue* v = find(key);
  return v == nullptr ? std::move(fallback) : v->asString();
}

std::string JsonValue::dump() const {
  std::string out;
  switch (type_) {
    case Type::Null: out = "null"; break;
    case Type::Bool: out = bool_ ? "true" : "false"; break;
    case Type::Number: numberTo(out, number_); break;
    case Type::String: escapeTo(out, string_); break;
    case Type::Array: {
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        out += array_[i].dump();
      }
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        escapeTo(out, object_[i].first);
        out += ':';
        out += object_[i].second.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

JsonValue JsonValue::parse(const std::string& text) {
  Parser p(text);
  JsonValue v = p.parseValue();
  p.end();
  return v;
}

}  // namespace fmossim::serve
