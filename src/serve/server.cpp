#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "perf/bench_runner.hpp"
#include "seu/seu_campaign.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace fmossim::serve {

namespace {

/// Thrown from the per-pattern cancellation point to unwind a cancelled run.
struct CancelledRun {};

/// Nearest-rank percentile over an unsorted sample (copies + sorts; the
/// sample is the capped latency buffer, so this is cheap).
double percentileMs(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return (sample[lo] * (1.0 - frac) + sample[hi] * frac) * 1000.0;
}

/// Latency samples kept for the percentile report.
constexpr std::size_t kMaxLatencySamples = 4096;

}  // namespace

JsonValue ServerStats::toJson() const {
  JsonValue o = JsonValue::makeObject();
  o.set("uptimeSeconds", JsonValue::makeNumber(uptimeSeconds));
  o.set("submitted", JsonValue::makeU64(submitted));
  o.set("rejected", JsonValue::makeU64(rejected));
  o.set("completed", JsonValue::makeU64(completed));
  o.set("failed", JsonValue::makeU64(failed));
  o.set("cancelled", JsonValue::makeU64(cancelled));
  o.set("requestsPerSec", JsonValue::makeNumber(requestsPerSec));
  o.set("p50Ms", JsonValue::makeNumber(p50Ms));
  o.set("p95Ms", JsonValue::makeNumber(p95Ms));
  o.set("p99Ms", JsonValue::makeNumber(p99Ms));
  o.set("queueDepth", JsonValue::makeU64(queueDepth));
  o.set("running", JsonValue::makeU64(running));
  o.set("workers", JsonValue::makeU64(workers));
  JsonValue p = JsonValue::makeObject();
  p.set("engines", JsonValue::makeU64(pool.engines));
  p.set("acquires", JsonValue::makeU64(pool.acquires));
  p.set("reuses", JsonValue::makeU64(pool.reuses));
  p.set("rebinds", JsonValue::makeU64(pool.rebinds));
  p.set("builds", JsonValue::makeU64(pool.builds));
  o.set("pool", std::move(p));
  JsonValue s = JsonValue::makeObject();
  s.set("hits", JsonValue::makeU64(storeHits));
  s.set("recordings", JsonValue::makeU64(storeRecordings));
  s.set("entries", JsonValue::makeU64(storeEntries));
  s.set("residentBytes", JsonValue::makeU64(storeResidentBytes));
  s.set("budgetBytes", JsonValue::makeU64(storeBudgetBytes));
  o.set("store", std::move(s));
  return o;
}

Server::Server(ServerOptions options)
    : options_(options),
      store_(std::make_shared<CheckpointStore>(CheckpointStore::Options{
          options.checkpointBudgetBytes,
          std::max<std::size_t>(1, options.storeEntries),
          {}})),
      pool_(EnginePoolOptions{std::max(1u, options.poolEngines), store_}),
      queue_(options.queueBound),
      startTime_(std::chrono::steady_clock::now()) {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) return;
  started_ = true;
  startTime_ = std::chrono::steady_clock::now();
  // More workers than engine slots would just park in pool_.acquire().
  const unsigned n =
      std::min(std::max(1u, options_.workers), std::max(1u, options_.poolEngines));
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

void Server::stop() {
  queue_.stop();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void Server::workerLoop() {
  for (;;) {
    std::shared_ptr<Job> job = queue_.claim();
    if (job == nullptr) return;
    execute(job);
  }
}

void Server::execute(const std::shared_ptr<Job>& job) {
  JobResult result;
  JobStatus outcome = JobStatus::Done;
  EnginePool::Lease lease;
  try {
    BuiltWorkload w = buildWorkload(job->spec);
    if (!w.seuCampaign.empty()) {
      // SEU grading jobs bypass the engine pool: the campaign runner builds
      // its own per-group tail engines and only needs the daemon's shared
      // store (the good-machine recording is cached across campaigns against
      // the same circuit + sequence). The between-groups hook is the
      // cancellation point.
      seu::CampaignOptions opts;
      opts.jobs = job->spec.jobs;
      opts.laneWidth = job->spec.laneWidth;
      opts.policy = job->spec.policy;
      opts.store = store_;
      opts.checkPoint = [&job] {
        if (job->cancelRequested.load(std::memory_order_relaxed)) {
          throw CancelledRun{};
        }
      };
      Timer timer;
      const seu::CampaignResult res =
          seu::runSeuCampaign(w.net, w.seq, w.seuCampaign, opts);
      result.wallSeconds = timer.seconds();
      result.backend = "seu-replay";
      result.checksum = res.checksum();
      result.numFaults = static_cast<std::uint32_t>(res.injections.size());
      result.numDetected = res.numDetected;
      result.nodeEvals = res.totalNodeEvals;
      result.cpuSeconds = res.totalSeconds;
      recordLatency(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - job->submitTime)
                        .count(),
                    outcome);
      queue_.finish(job, outcome, std::move(result));
      return;
    }
    lease = pool_.acquire(w.net, w.faults, specEngineOptions(job->spec));
    result.engineReused = lease.reused;
    result.backend = lease.engine->backendName();
    Timer timer;
    // The engine's per-pattern callback is the cancellation point. For the
    // sharded backend it fires after the merge (per merged pattern), which
    // is still bounded; a cancel observed mid-run abandons the job.
    const auto cancelPoint = [&job](const PatternStat&) {
      if (job->cancelRequested.load(std::memory_order_relaxed)) {
        throw CancelledRun{};
      }
    };
    FaultSimResult res;
    if (w.streamConfig.has_value()) {
      // Streamed spec: pull patterns from the generator source; the result
      // is rowless and resultChecksum folds its derived rows, so the
      // reported checksum equals a materialized run's.
      GeneratedPatternSource source(*w.streamConfig);
      res = lease.engine->runStream(source, nullptr, cancelPoint);
    } else {
      res = lease.engine->run(w.seq, cancelPoint);
    }
    result.wallSeconds = timer.seconds();
    result.checksum = perf::resultChecksum(res);
    result.numFaults = static_cast<std::uint32_t>(res.numFaults);
    result.numDetected = static_cast<std::uint32_t>(res.numDetected);
    result.nodeEvals = res.totalNodeEvals;
    result.cpuSeconds = res.totalCpuSeconds;
  } catch (const CancelledRun&) {
    outcome = JobStatus::Cancelled;
    if (lease.engine != nullptr) lease.engine->reset();  // abandoned session
  } catch (const Error& e) {
    outcome = JobStatus::Failed;
    result.error = e.what();
    if (lease.engine != nullptr) lease.engine->reset();
  } catch (const std::exception& e) {
    outcome = JobStatus::Failed;
    result.error = e.what();
    if (lease.engine != nullptr) lease.engine->reset();
  }
  pool_.release(lease);
  // Update the counters BEFORE finish() publishes the terminal status and
  // wakes result waiters: a client that sees "done" must also see it counted.
  recordLatency(std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - job->submitTime)
                    .count(),
                outcome);
  queue_.finish(job, outcome, std::move(result));
}

void Server::recordLatency(double seconds, JobStatus status) {
  std::lock_guard<std::mutex> lock(statsMu_);
  switch (status) {
    case JobStatus::Done:
      ++completed_;
      if (latencies_.size() < kMaxLatencySamples) latencies_.push_back(seconds);
      break;
    case JobStatus::Failed:
      ++failed_;
      break;
    case JobStatus::Cancelled:
      ++cancelled_;
      break;
    default:
      break;
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.uptimeSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - startTime_)
                        .count();
  std::vector<double> sample;
  {
    std::lock_guard<std::mutex> lock(statsMu_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.completed = completed_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    sample = latencies_;
  }
  if (s.uptimeSeconds > 0.0) {
    s.requestsPerSec = static_cast<double>(s.completed) / s.uptimeSeconds;
  }
  s.p50Ms = percentileMs(sample, 50.0);
  s.p95Ms = percentileMs(sample, 95.0);
  s.p99Ms = percentileMs(sample, 99.0);
  s.queueDepth = queue_.depth();
  s.running = queue_.runningCount();
  s.workers = std::min(std::max(1u, options_.workers),
                       std::max(1u, options_.poolEngines));
  s.pool = pool_.stats();
  s.storeHits = store_->hits();
  s.storeRecordings = store_->recordings();
  s.storeEntries = store_->entries();
  s.storeResidentBytes = store_->memoryBytes();
  s.storeBudgetBytes = options_.checkpointBudgetBytes;
  return s;
}

std::string Server::handleLine(const std::string& line) {
  try {
    return handle(JsonValue::parse(line)).dump();
  } catch (const std::exception& e) {
    JsonValue err = JsonValue::makeObject();
    err.set("ok", JsonValue::makeBool(false));
    err.set("error", JsonValue::makeString(e.what()));
    return err.dump();
  }
}

JsonValue Server::handle(const JsonValue& request) {
  if (!request.isObject()) throw Error("request must be a JSON object");
  const std::string verb = request.stringOr("verb", "");
  JsonValue resp = JsonValue::makeObject();

  if (verb == "submit") {
    const JsonValue* workload = request.find("workload");
    if (workload == nullptr) throw Error("submit: missing \"workload\"");
    WorkloadSpec spec = WorkloadSpec::fromJson(*workload);
    const std::uint64_t id = queue_.submit(std::move(spec));
    if (id == 0) {
      std::lock_guard<std::mutex> lock(statsMu_);
      ++rejected_;
      throw Error(queue_.stopped() ? "server is shutting down"
                                   : "queue full (backpressure), retry later");
    }
    {
      std::lock_guard<std::mutex> lock(statsMu_);
      ++submitted_;
    }
    resp.set("ok", JsonValue::makeBool(true));
    resp.set("id", JsonValue::makeU64(id));
    resp.set("status", JsonValue::makeString("queued"));
    return resp;
  }

  if (verb == "status" || verb == "result" || verb == "cancel") {
    const std::uint64_t id = request.u64Or("id", 0);
    if (id == 0) throw Error(verb + ": missing \"id\"");
    if (verb == "cancel" && !queue_.cancel(id)) {
      throw Error("unknown job id");
    }
    const std::optional<JobView> view =
        verb == "result" ? queue_.waitTerminal(id) : queue_.snapshot(id);
    if (!view.has_value()) throw Error("unknown job id");
    resp.set("ok", JsonValue::makeBool(true));
    resp.set("id", JsonValue::makeU64(view->id));
    resp.set("status", JsonValue::makeString(jobStatusName(view->status)));
    const bool terminal = view->status == JobStatus::Done ||
                          view->status == JobStatus::Failed ||
                          view->status == JobStatus::Cancelled;
    if (verb != "cancel" && terminal) {
      resp.set("result", view->result.toJson());
    }
    return resp;
  }

  if (verb == "stats") {
    resp.set("ok", JsonValue::makeBool(true));
    resp.set("stats", stats().toJson());
    return resp;
  }

  if (verb == "shutdown") {
    shutdownRequested_.store(true, std::memory_order_release);
    queue_.stop();
    resp.set("ok", JsonValue::makeBool(true));
    resp.set("shutdown", JsonValue::makeBool(true));
    return resp;
  }

  throw Error(verb.empty() ? "missing \"verb\""
                           : "unknown verb '" + verb + "'");
}

}  // namespace fmossim::serve
