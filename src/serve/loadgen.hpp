// Load-generator harness for the service daemon (`fmossim_cli loadgen`).
//
// Replays a seeded mixed-tenant workload against a running daemon: M
// generated circuits × K derived test sequences per circuit give M*K
// distinct workloads, and N requests are drawn over them with zipf-skewed
// repetition (rank r gets weight 1/(r+1)^s) — a few hot workloads dominate,
// a long tail stays cold, which is exactly the traffic shape the engine
// pool and the shared checkpoint store exist for. The schedule is
// deterministic given the seed, so every run is reproducible.
//
// Every response is verified: the client rebuilds each workload from its
// spec and runs it through a direct, freshly constructed Engine; the
// daemon's checksum must match bit for bit (the service may reuse engines
// and checkpoints, but never at the cost of result identity). The run
// emits a schema-versioned BENCH_serve_mixed.json (--json) with
// requests/sec, client-observed p50/p95/p99 latency and the daemon's reuse
// counters; bench --check shape-validates it as a service baseline.
#pragma once

#include <cstdint>
#include <string>

#include "serve/server.hpp"

namespace fmossim::serve {

/// Harness knobs (defaults match the CI smoke invocation scale).
struct LoadGenOptions {
  /// Daemon socket to replay against; ignored when `inproc` is set.
  std::string socketPath;
  /// Run against an in-process daemon on a private temp socket instead of
  /// an external one (ctest/ASan coverage of the full transport stack).
  bool inproc = false;
  ServerOptions inprocServer;  ///< daemon configuration for `inproc`

  std::uint32_t circuits = 5;             ///< M distinct generated circuits
  std::uint32_t sequencesPerCircuit = 2;  ///< K sequences per circuit
  std::uint32_t requests = 50;            ///< N requests replayed
  std::uint64_t baseSeed = 1;             ///< workload + schedule seed
  double zipfExponent = 1.1;              ///< repeat skew (0 = uniform)
  unsigned concurrency = 4;               ///< client threads
  unsigned jobs = 2;  ///< per-request parallelism (>1 engages the store)
  bool verify = true; ///< check every response against a direct Engine run
  /// Fail the run unless the daemon reports at least this many
  /// checkpoint-store hits afterwards (CI asserts reuse actually happened).
  std::uint64_t expectStoreHits = 0;
  bool emitJson = false;     ///< write BENCH_serve_mixed.json
  std::string outDir = ".";  ///< where --json writes
  bool shutdownAfter = false;  ///< send `shutdown` when done
  bool quiet = false;          ///< suppress progress output

  /// Generator pins for every spec (kept moderate so the smoke run is
  /// fast even under ASan).
  std::uint32_t numNodes = 24;
  std::uint32_t numInputs = 6;
  std::uint32_t numFaults = 32;
  std::uint32_t numPatterns = 16;
};

/// What a load-generation run observed.
struct LoadGenReport {
  std::uint32_t requests = 0;           ///< requests completed Done
  std::uint32_t failures = 0;           ///< Failed or transport errors
  std::uint32_t distinctWorkloads = 0;  ///< M * K
  double elapsedSeconds = 0.0;          ///< submit-all to last-result wall
  double requestsPerSec = 0.0;
  double p50Ms = 0.0;  ///< client-observed submit->result latency
  double p95Ms = 0.0;
  double p99Ms = 0.0;
  std::uint32_t checksumMismatches = 0;  ///< verify failures (0 required)
  std::uint64_t engineReuses = 0;   ///< responses flagged engineReused
  std::uint64_t storeHits = 0;      ///< daemon stats after the run
  std::uint64_t storeRecordings = 0;
  std::string benchPath;  ///< emitted BENCH file ("" unless emitJson)
};

/// Runs the harness; see the file comment. Throws Error on transport
/// failures, any checksum mismatch, or an unmet `expectStoreHits`.
LoadGenReport runLoadGen(const LoadGenOptions& options);

}  // namespace fmossim::serve
