// RequestQueue — the bounded MPMC job queue between the transport and the
// worker threads.
//
// Connection threads submit() WorkloadSpecs (rejected with id 0 when the
// bound is hit — explicit backpressure instead of unbounded growth under a
// traffic spike); workers claim() jobs in FIFO order, run them, and
// finish() publishes the result; any thread can poll snapshot(), block in
// waitTerminal(), or cancel(). Cancellation is immediate for queued jobs
// and cooperative for running ones: the worker observes the job's cancel
// flag at its per-pattern cancellation points and abandons the run.
//
// Lifecycle bookkeeping (queuedSeconds, latencySeconds) is stamped here so
// every published JobResult carries the service-level timing the stats verb
// aggregates. Completed jobs are kept for result retrieval until the queue
// is destroyed; the daemon's job table is its result store.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "serve/protocol.hpp"

namespace fmossim::serve {

/// One tracked job. Workers hold the shared_ptr while executing; all fields
/// except the atomic cancel flag are guarded by the queue's mutex.
struct Job {
  std::uint64_t id = 0;
  WorkloadSpec spec;
  JobStatus status = JobStatus::Queued;
  JobResult result;
  std::chrono::steady_clock::time_point submitTime;
  std::chrono::steady_clock::time_point startTime;
  /// Set by cancel() while the job runs; the worker polls it at pattern
  /// boundaries (its cancellation points) and abandons the run.
  std::atomic<bool> cancelRequested{false};
};

/// Mutex-free snapshot of a job's externally visible state.
struct JobView {
  std::uint64_t id = 0;
  JobStatus status = JobStatus::Queued;
  JobResult result;  ///< meaningful once status is terminal
};

/// The queue; see the file comment.
class RequestQueue {
 public:
  /// `bound` caps the number of queued (not yet claimed) jobs.
  explicit RequestQueue(std::size_t bound = 64);

  /// Enqueues a job and returns its id, or 0 when the queue is full or
  /// stopped (backpressure; the transport surfaces it as an error response).
  std::uint64_t submit(WorkloadSpec spec);

  /// Blocks until a job is claimable (marking it Running) or the queue is
  /// stopped; nullptr means stop — the worker should exit.
  std::shared_ptr<Job> claim();

  /// Publishes a claimed job's outcome (Done, Failed or Cancelled) and
  /// stamps queuedSeconds/latencySeconds into the result.
  void finish(const std::shared_ptr<Job>& job, JobStatus status,
              JobResult result);

  /// Cancels a job: queued jobs become Cancelled immediately, running jobs
  /// get their cancel flag raised (cancelled at the next cancellation
  /// point). Returns false for unknown ids; terminal jobs are left alone.
  bool cancel(std::uint64_t id);

  /// Snapshot of a job's status and (terminal) result; nullopt for unknown
  /// ids.
  std::optional<JobView> snapshot(std::uint64_t id) const;

  /// Blocks until the job reaches a terminal status (or the queue stops,
  /// which cancels queued jobs first); nullopt for unknown ids.
  std::optional<JobView> waitTerminal(std::uint64_t id) const;

  std::size_t depth() const;         ///< queued jobs
  std::size_t runningCount() const;  ///< claimed, not yet finished
  std::size_t bound() const { return bound_; }

  /// Stops the queue: pending jobs become Cancelled, claim() returns
  /// nullptr, submit() rejects, waiters wake. Idempotent.
  void stop();
  bool stopped() const;

 private:
  JobView viewOf(const Job& job) const;  ///< caller holds mu_

  const std::size_t bound_;
  mutable std::mutex mu_;
  mutable std::condition_variable workCv_;   ///< workers wait here
  mutable std::condition_variable doneCv_;   ///< result waiters wait here
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::deque<std::uint64_t> pending_;
  std::uint64_t nextId_ = 1;
  std::size_t running_ = 0;
  bool stopped_ = false;
};

}  // namespace fmossim::serve
