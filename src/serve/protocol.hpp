// Wire-level request/result vocabulary for fault-simulation-as-a-service.
//
// The daemon (src/serve/server.hpp) speaks newline-delimited JSON over a
// Unix-domain socket. This header defines the pieces both endpoints share:
//
//   * WorkloadSpec — what a `submit` request asks to simulate. Three kinds:
//     "gen" (the seeded random workload space of src/gen/random_circuit.hpp,
//     so a spec is a few integers on the wire and both endpoints can rebuild
//     the workload bit-identically — the loadgen harness verifies every
//     service response against a direct Engine run this way), "inline"
//     (netlist/sequence/faults as the text formats the CLI already reads,
//     the shape a real remote tenant submits), and "seu" (a seeded
//     transient-fault grading campaign over a gen circuit, executed through
//     src/seu/ checkpoint-replay against the daemon's shared store).
//   * buildWorkload() — the deterministic spec -> (Network, FaultList,
//     TestSequence) expansion both the server and the verifying client use.
//   * JobStatus / JobResult — the lifecycle and payload a job publishes.
//
// Verbs (one request object per line, one response object per line):
//   {"verb":"submit","workload":{...}}        -> {"ok":true,"id":N,"status":"queued"}
//   {"verb":"status","id":N}                  -> {"ok":true,"id":N,"status":...}
//   {"verb":"result","id":N}                  -> blocks, then adds "result":{...}
//   {"verb":"cancel","id":N}                  -> {"ok":true,"id":N,"status":...}
//   {"verb":"stats"}                          -> {"ok":true,"stats":{...}}
//   {"verb":"shutdown"}                       -> {"ok":true,"shutdown":true}
// Any failure: {"ok":false,"error":"..."}; docs/SERVICE.md documents fields.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "api/engine.hpp"
#include "faults/transient.hpp"
#include "patterns/pattern_source.hpp"  // GeneratedSequenceConfig
#include "serve/json.hpp"

namespace fmossim::serve {

/// One submittable simulation request; see the file comment for the two
/// workload kinds. Engine knobs ride along so tenants control parallelism
/// and detection policy per request.
struct WorkloadSpec {
  /// Generated kind: seed for GenOptions (non-zero pins below override the
  /// generator's defaults so client and server agree on exact sizes).
  std::uint64_t circuitSeed = 1;
  /// 0 keeps the generator's own test sequence; non-zero derives a different
  /// random sequence over the same circuit's inputs (the "K sequences per
  /// circuit" axis of mixed-tenant traffic).
  std::uint64_t seqSeed = 0;
  std::uint32_t numNodes = 0;   ///< 0 = generator default
  std::uint32_t numInputs = 0;  ///< 0 = generator default
  std::uint32_t numFaults = 0;  ///< 0 = generator default
  /// 0 = generator default. 64-bit: streamed gen workloads (stream=true)
  /// accept counts past a materializable sequence's 2^32 patterns.
  std::uint64_t numPatterns = 0;
  /// Gen kind only: expand the workload's sequence as a pattern *source*
  /// (GeneratedSequenceConfig) instead of materializing it — the server runs
  /// the job through Engine::runStream with flat resident memory, so
  /// unbounded numPatterns stays serviceable. Incompatible with seqSeed
  /// (derived sequences are materialized by construction) and with the
  /// inline kind.
  bool stream = false;

  /// Inline kind: non-empty netlist selects it; the three texts are the
  /// formats of sim_format.hpp, sequence_io.hpp and fault_spec.hpp.
  std::string netlist;
  std::string sequence;
  std::string faults;

  /// SEU kind (> 0 selects it, with the gen circuit knobs above): grade a
  /// generated transient campaign of this many injections instead of a
  /// permanent fault universe. Executed via src/seu/ runSeuCampaign on the
  /// daemon — replay tails against the shared checkpoint store, never naive.
  /// Incompatible with stream (campaign grading needs a materialized
  /// sequence) and with the inline kind. `dropDetected` is ignored
  /// (campaigns always drop detected machines).
  std::uint32_t seuInjections = 0;
  std::uint64_t seuSeed = 1;  ///< campaign generation seed
  /// Cluster the campaign onto at most this many distinct instants
  /// (0 = unclustered); see gen/transient_gen.hpp.
  std::uint32_t seuInstants = 0;

  unsigned jobs = 2;  ///< per-request parallelism (>1 engages the sharded
                      ///< runner and with it the shared checkpoint store)
  /// Fault-lane sharing window (EngineOptions::laneWidth): power of two in
  /// [1, 32]; results are bit-identical for every width.
  std::uint32_t laneWidth = 1;
  /// Batch-layout policy (EngineOptions::schedule). "history" schedules on
  /// the pool's per-tenant detection history (recorded by this tenant's own
  /// earlier requests; contiguous until one exists). Results are
  /// bit-identical for every policy. Additive wire field: emitted only when
  /// non-default, so old endpoints interoperate.
  sched::SchedulePolicy schedule = sched::SchedulePolicy::Contiguous;
  DetectionPolicy policy = DetectionPolicy::DefiniteOnly;
  bool dropDetected = true;

  bool isInline() const { return !netlist.empty(); }
  bool isSeu() const { return !isInline() && seuInjections > 0; }

  JsonValue toJson() const;
  /// Throws Error on malformed specs (unknown kind, bad policy string).
  static WorkloadSpec fromJson(const JsonValue& v);
};

/// A fully expanded workload, ready for Engine construction. For streamed
/// specs (WorkloadSpec::stream) `seq` stays empty and `streamConfig` carries
/// the pattern source; run it via Engine::runStream over a
/// GeneratedPatternSource.
struct BuiltWorkload {
  Network net;
  FaultList faults;
  TestSequence seq;
  std::optional<GeneratedSequenceConfig> streamConfig;
  /// SEU kind only: the generated transient campaign (`faults` stays
  /// empty); run it via seu::runSeuCampaign.
  TransientList seuCampaign;
};

/// Expands a spec deterministically: equal specs produce bit-identical
/// workloads on every endpoint (the property the loadgen verifier and the
/// checkpoint store's fingerprint keying both rest on). Throws Error on
/// invalid inline texts or empty expansion results.
BuiltWorkload buildWorkload(const WorkloadSpec& spec);

/// EngineOptions equivalent of a spec's engine knobs (checkpoint store left
/// unset; the pool attaches its shared store).
EngineOptions specEngineOptions(const WorkloadSpec& spec);

/// Job lifecycle. Queued -> Running -> Done|Failed; Cancelled can replace
/// Queued (immediately) or Running (at the next cancellation point).
enum class JobStatus : std::uint8_t { Queued, Running, Done, Failed, Cancelled };

/// Stable wire name ("queued", "running", "done", "failed", "cancelled").
const char* jobStatusName(JobStatus s);

/// What a finished job publishes. For Failed jobs only `error` is
/// meaningful; for Cancelled jobs all fields are empty.
struct JobResult {
  std::uint64_t checksum = 0;  ///< perf::resultChecksum of the simulation
  std::uint32_t numFaults = 0;
  std::uint32_t numDetected = 0;
  std::uint64_t nodeEvals = 0;     ///< deterministic work counter
  double wallSeconds = 0.0;        ///< execution wall clock (run only)
  double cpuSeconds = 0.0;         ///< summed engine time (sharded > wall)
  double queuedSeconds = 0.0;      ///< time spent waiting in the queue
  double latencySeconds = 0.0;     ///< submit -> done, the served latency
  bool engineReused = false;       ///< pool served a live matching engine
  std::string backend;             ///< "concurrent", "sharded", ...
  std::string error;               ///< Failed only

  JsonValue toJson() const;
  static JobResult fromJson(const JsonValue& v);
};

}  // namespace fmossim::serve
