#include "serve/request_queue.hpp"

#include <algorithm>

namespace fmossim::serve {

namespace {

double secondsBetween(std::chrono::steady_clock::time_point a,
                      std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

bool isTerminal(JobStatus s) {
  return s == JobStatus::Done || s == JobStatus::Failed ||
         s == JobStatus::Cancelled;
}

}  // namespace

RequestQueue::RequestQueue(std::size_t bound) : bound_(std::max<std::size_t>(1, bound)) {}

std::uint64_t RequestQueue::submit(WorkloadSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_ || pending_.size() >= bound_) return 0;
  auto job = std::make_shared<Job>();
  job->id = nextId_++;
  job->spec = std::move(spec);
  job->submitTime = std::chrono::steady_clock::now();
  jobs_.emplace(job->id, job);
  pending_.push_back(job->id);
  workCv_.notify_one();
  return job->id;
}

std::shared_ptr<Job> RequestQueue::claim() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopped_) return nullptr;
    // Skip over jobs cancelled while queued (they are already terminal).
    while (!pending_.empty()) {
      const std::uint64_t id = pending_.front();
      pending_.pop_front();
      const auto it = jobs_.find(id);
      if (it == jobs_.end() || it->second->status != JobStatus::Queued) {
        continue;
      }
      Job& job = *it->second;
      job.status = JobStatus::Running;
      job.startTime = std::chrono::steady_clock::now();
      ++running_;
      return it->second;
    }
    workCv_.wait(lock);
  }
}

void RequestQueue::finish(const std::shared_ptr<Job>& job, JobStatus status,
                          JobResult result) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = std::chrono::steady_clock::now();
  result.queuedSeconds = secondsBetween(job->submitTime, job->startTime);
  result.latencySeconds = secondsBetween(job->submitTime, now);
  job->result = std::move(result);
  job->status = isTerminal(status) ? status : JobStatus::Failed;
  if (running_ > 0) --running_;
  doneCv_.notify_all();
}

bool RequestQueue::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  switch (job.status) {
    case JobStatus::Queued:
      job.status = JobStatus::Cancelled;
      doneCv_.notify_all();
      return true;
    case JobStatus::Running:
      job.cancelRequested.store(true, std::memory_order_relaxed);
      return true;
    default:
      return true;  // already terminal; cancel is a no-op
  }
}

JobView RequestQueue::viewOf(const Job& job) const {
  JobView v;
  v.id = job.id;
  v.status = job.status;
  v.result = job.result;
  return v;
}

std::optional<JobView> RequestQueue::snapshot(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return viewOf(*it->second);
}

std::optional<JobView> RequestQueue::waitTerminal(std::uint64_t id) const {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const std::shared_ptr<Job> job = it->second;
  doneCv_.wait(lock, [&] { return stopped_ || isTerminal(job->status); });
  return viewOf(*job);
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  // pending_ may hold ids cancelled while queued; count live ones only.
  std::size_t n = 0;
  for (const std::uint64_t id : pending_) {
    const auto it = jobs_.find(id);
    if (it != jobs_.end() && it->second->status == JobStatus::Queued) ++n;
  }
  return n;
}

std::size_t RequestQueue::runningCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void RequestQueue::stop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return;
  stopped_ = true;
  for (const std::uint64_t id : pending_) {
    const auto it = jobs_.find(id);
    if (it != jobs_.end() && it->second->status == JobStatus::Queued) {
      it->second->status = JobStatus::Cancelled;
    }
  }
  pending_.clear();
  workCv_.notify_all();
  doneCv_.notify_all();
}

bool RequestQueue::stopped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stopped_;
}

}  // namespace fmossim::serve
