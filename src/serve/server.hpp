// Server — the long-lived fault-simulation daemon core.
//
// Owns the three service resources and wires them together:
//
//   * a shared CheckpointStore (memory-budgeted; `--checkpoint-budget`),
//   * an EnginePool of persistent, rebindable engines over that store,
//   * a bounded RequestQueue drained by worker threads that expand each
//     WorkloadSpec, lease an engine, run the sequence through the existing
//     sharded scheduler and publish a JobResult.
//
// handleLine() is the transport-agnostic protocol endpoint: one NDJSON
// request line in, one response line out (src/serve/transport.hpp carries
// it over a Unix-domain socket; tests call it directly). stats() snapshots
// the service counters — requests/sec, latency percentiles, queue depth,
// pool reuse and checkpoint-store hit rate — that the `stats` verb reports
// and the loadgen harness writes into BENCH_serve_mixed.json.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine_pool.hpp"
#include "serve/request_queue.hpp"

namespace fmossim::serve {

/// Daemon configuration (the operational knobs of docs/SERVICE.md).
struct ServerOptions {
  unsigned poolEngines = 4;   ///< persistent engine slots
  unsigned workers = 2;       ///< job worker threads (clamped to poolEngines)
  std::size_t queueBound = 64;  ///< max queued jobs before backpressure
  /// Checkpoint-store memory budget per recording (0 = unbounded in-memory
  /// traces); the CLI's `--checkpoint-budget`.
  std::size_t checkpointBudgetBytes = 0;
  /// Max distinct (network, sequence) recordings the store keeps (LRU).
  std::size_t storeEntries = 64;
};

/// One consistent snapshot of the service counters (the `stats` verb).
struct ServerStats {
  double uptimeSeconds = 0.0;
  std::uint64_t submitted = 0;   ///< accepted submissions
  std::uint64_t rejected = 0;    ///< refused by queue backpressure
  std::uint64_t completed = 0;   ///< jobs finished Done
  std::uint64_t failed = 0;      ///< jobs finished Failed
  std::uint64_t cancelled = 0;   ///< jobs finished Cancelled
  double requestsPerSec = 0.0;   ///< completed / uptime
  double p50Ms = 0.0;  ///< median submit->done latency, milliseconds
  double p95Ms = 0.0;  ///< 95th-percentile latency
  double p99Ms = 0.0;  ///< 99th-percentile latency
  std::size_t queueDepth = 0;  ///< jobs waiting
  std::size_t running = 0;     ///< jobs executing
  std::uint32_t workers = 0;   ///< worker threads (post-clamp)
  EnginePool::Stats pool;      ///< engine reuse counters
  std::uint64_t storeHits = 0;        ///< checkpoint-store cache hits
  std::uint64_t storeRecordings = 0;  ///< good-machine recordings performed
  std::size_t storeEntries = 0;       ///< recordings currently cached
  std::size_t storeResidentBytes = 0; ///< resident checkpoint footprint
  std::size_t storeBudgetBytes = 0;   ///< configured per-recording budget

  JsonValue toJson() const;  ///< the `stats` response payload
};

/// The daemon core; see the file comment.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();  ///< stops and joins the workers

  const ServerOptions& options() const { return options_; }
  RequestQueue& queue() { return queue_; }
  EnginePool& pool() { return pool_; }

  /// Starts the worker threads. Idempotent.
  void start();

  /// Stops: queued jobs are cancelled, running jobs finish, workers join.
  /// Result waiters wake. Idempotent.
  void stop();

  /// Handles one protocol request line and returns the response line (no
  /// trailing newline). Never throws: malformed requests become
  /// {"ok":false,"error":...} responses. The `result` verb blocks until the
  /// job is terminal.
  std::string handleLine(const std::string& line);

  /// True once a `shutdown` request was accepted; the transport stops
  /// accepting and the CLI tears the daemon down.
  bool shutdownRequested() const {
    return shutdownRequested_.load(std::memory_order_acquire);
  }

  /// Current service counters.
  ServerStats stats() const;

 private:
  void workerLoop();
  void execute(const std::shared_ptr<Job>& job);
  JsonValue handle(const JsonValue& request);
  void recordLatency(double seconds, JobStatus status);

  ServerOptions options_;
  std::shared_ptr<CheckpointStore> store_;
  EnginePool pool_;
  RequestQueue queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> shutdownRequested_{false};
  bool started_ = false;
  std::chrono::steady_clock::time_point startTime_;

  mutable std::mutex statsMu_;
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  /// Completed-job latencies (seconds) for the percentile report; capped so
  /// a long-lived daemon cannot grow without bound.
  std::vector<double> latencies_;
};

}  // namespace fmossim::serve
