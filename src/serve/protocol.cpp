#include "serve/protocol.hpp"

#include "faults/fault_spec.hpp"
#include "gen/random_circuit.hpp"
#include "gen/transient_gen.hpp"
#include "netlist/sim_format.hpp"
#include "patterns/sequence_io.hpp"
#include "util/rng.hpp"

namespace fmossim::serve {

namespace {

// Derives a fresh random test sequence over a generated circuit's data
// inputs: pattern 0 (the generator's power-on/init pattern, which drives
// Vdd/Gnd and every input to a known state) is kept verbatim, later patterns
// are re-drawn from seqSeed. Deterministic, so the server and the verifying
// loadgen client derive the same sequence from the same spec.
TestSequence deriveSequence(const GeneratedWorkload& w, std::uint64_t seqSeed) {
  if (w.dataInputs.empty() || w.seq.empty()) return w.seq;
  TestSequence seq;
  seq.setOutputs(w.seq.outputs());
  seq.addPattern(w.seq[0]);
  Rng rng(seqSeed ^ 0xa0761d6478bd642fULL);
  const std::uint32_t patterns = w.seq.size();
  for (std::uint32_t i = 1; i < patterns; ++i) {
    Pattern p;
    p.label = "d" + std::to_string(i);
    InputSetting setting;
    const std::size_t assignments =
        1 + rng.below(std::min<std::size_t>(3, w.dataInputs.size()));
    for (std::size_t a = 0; a < assignments; ++a) {
      const NodeId input = w.dataInputs[rng.below(w.dataInputs.size())];
      // Mostly driven values; an occasional X keeps the derived sequences in
      // the same scenario space as the generator's own.
      const State s = rng.below(20) == 0
                          ? State::SX
                          : (rng.below(2) == 0 ? State::S0 : State::S1);
      setting.set(input, s);
    }
    p.settings.push_back(std::move(setting));
    seq.addPattern(std::move(p));
  }
  return seq;
}

// Seeds are full-range 64-bit values (derived seqSeeds are FNV hashes), so
// they travel as 0x-hex strings like checksums; plain JSON numbers are
// accepted from hand-written clients when they fit a double exactly.
std::uint64_t seedFrom(const JsonValue& v, const char* key,
                       std::uint64_t fallback) {
  const JsonValue* f = v.find(key);
  if (f == nullptr) return fallback;
  return f->type() == JsonValue::Type::String ? f->asHexU64() : f->asU64();
}

}  // namespace

JsonValue WorkloadSpec::toJson() const {
  JsonValue v = JsonValue::makeObject();
  if (isInline()) {
    v.set("kind", JsonValue::makeString("inline"));
    v.set("netlist", JsonValue::makeString(netlist));
    v.set("sequence", JsonValue::makeString(sequence));
    v.set("faults", JsonValue::makeString(faults));
  } else {
    v.set("kind", JsonValue::makeString(isSeu() ? "seu" : "gen"));
    v.set("circuitSeed", JsonValue::makeHexU64(circuitSeed));
    if (seqSeed != 0) v.set("seqSeed", JsonValue::makeHexU64(seqSeed));
    if (numNodes != 0) v.set("nodes", JsonValue::makeU64(numNodes));
    if (numInputs != 0) v.set("inputs", JsonValue::makeU64(numInputs));
    if (numFaults != 0) v.set("faults", JsonValue::makeU64(numFaults));
    if (numPatterns != 0) v.set("patterns", JsonValue::makeU64(numPatterns));
    if (stream) v.set("stream", JsonValue::makeBool(true));
    if (isSeu()) {
      v.set("seuInjections", JsonValue::makeU64(seuInjections));
      v.set("seuSeed", JsonValue::makeHexU64(seuSeed));
      if (seuInstants != 0) {
        v.set("seuInstants", JsonValue::makeU64(seuInstants));
      }
    }
  }
  v.set("jobs", JsonValue::makeU64(jobs));
  if (laneWidth != 1) v.set("laneWidth", JsonValue::makeU64(laneWidth));
  // Additive like laneWidth: only non-default policies hit the wire, so
  // requests to and from older endpoints stay byte-compatible.
  if (schedule != sched::SchedulePolicy::Contiguous) {
    v.set("schedule",
          JsonValue::makeString(sched::schedulePolicyName(schedule)));
  }
  v.set("policy", JsonValue::makeString(
                      policy == DetectionPolicy::AnyDifference ? "any"
                                                               : "definite"));
  v.set("dropDetected", JsonValue::makeBool(dropDetected));
  return v;
}

WorkloadSpec WorkloadSpec::fromJson(const JsonValue& v) {
  WorkloadSpec spec;
  const std::string kind = v.stringOr("kind", "gen");
  if (kind == "inline") {
    spec.netlist = v.get("netlist").asString();
    spec.sequence = v.get("sequence").asString();
    spec.faults = v.get("faults").asString();
    if (spec.netlist.empty()) throw Error("workload: empty inline netlist");
  } else if (kind == "gen" || kind == "seu") {
    spec.circuitSeed = seedFrom(v, "circuitSeed", 1);
    spec.seqSeed = seedFrom(v, "seqSeed", 0);
    spec.numNodes = static_cast<std::uint32_t>(v.u64Or("nodes", 0));
    spec.numInputs = static_cast<std::uint32_t>(v.u64Or("inputs", 0));
    spec.numFaults = static_cast<std::uint32_t>(v.u64Or("faults", 0));
    spec.numPatterns = v.u64Or("patterns", 0);
    spec.stream = v.boolOr("stream", false);
    if (spec.stream && spec.seqSeed != 0) {
      throw Error("workload: stream is incompatible with seqSeed (derived "
                  "sequences are materialized)");
    }
    if (!spec.stream && spec.numPatterns > 0xffffffffull) {
      throw Error("workload: more than 2^32 patterns requires stream=true");
    }
    if (kind == "seu") {
      spec.seuInjections =
          static_cast<std::uint32_t>(v.u64Or("seuInjections", 0));
      if (spec.seuInjections == 0) {
        throw Error("workload: seu kind requires seuInjections >= 1");
      }
      spec.seuSeed = seedFrom(v, "seuSeed", 1);
      spec.seuInstants = static_cast<std::uint32_t>(v.u64Or("seuInstants", 0));
      if (spec.stream) {
        throw Error("workload: seu is incompatible with stream (campaign "
                    "grading needs a materialized sequence)");
      }
    } else if (v.find("seuInjections") != nullptr ||
               v.find("seuSeed") != nullptr ||
               v.find("seuInstants") != nullptr) {
      throw Error("workload: seu fields require kind \"seu\"");
    }
  } else {
    throw Error("workload: unknown kind '" + kind +
                "' (want gen, seu or inline)");
  }
  spec.jobs = static_cast<unsigned>(v.u64Or("jobs", 2));
  if (spec.jobs == 0) throw Error("workload: jobs must be >= 1");
  spec.laneWidth = static_cast<std::uint32_t>(v.u64Or("laneWidth", 1));
  if (spec.laneWidth < 1 || spec.laneWidth > 32 ||
      (spec.laneWidth & (spec.laneWidth - 1)) != 0) {
    throw Error("workload: laneWidth must be a power of two in [1, 32]");
  }
  const std::string schedule = v.stringOr("schedule", "contiguous");
  if (const auto parsed = sched::parseSchedulePolicy(schedule)) {
    spec.schedule = *parsed;
  } else {
    throw Error("workload: unknown schedule '" + schedule +
                "' (want contiguous or history)");
  }
  const std::string policy = v.stringOr("policy", "definite");
  if (policy == "any") spec.policy = DetectionPolicy::AnyDifference;
  else if (policy == "definite") spec.policy = DetectionPolicy::DefiniteOnly;
  else throw Error("workload: unknown policy '" + policy + "'");
  spec.dropDetected = v.boolOr("dropDetected", true);
  return spec;
}

BuiltWorkload buildWorkload(const WorkloadSpec& spec) {
  BuiltWorkload out;
  if (spec.isInline()) {
    out.net = parseSimNetlist(spec.netlist);
    out.seq = parseSequence(out.net, spec.sequence);
    out.faults = parseFaultSpec(out.net, spec.faults);
  } else {
    GenOptions gen = GenOptions::randomized(spec.circuitSeed);
    if (spec.numNodes != 0) gen.numNodes = spec.numNodes;
    if (spec.numInputs != 0) gen.numInputs = spec.numInputs;
    if (spec.numFaults != 0) gen.numFaults = spec.numFaults;
    if (spec.numPatterns != 0) gen.numPatterns = spec.numPatterns;
    if (spec.stream) {
      if (spec.seqSeed != 0) {
        throw Error("workload: stream is incompatible with seqSeed (derived "
                    "sequences are materialized)");
      }
      GeneratedStreamWorkload w = generateWorkloadStream(gen);
      out.streamConfig = std::move(w.seqConfig);
      out.net = std::move(w.net);
      out.faults = std::move(w.faults);
    } else {
      if (gen.numPatterns > 0xffffffffull) {
        throw Error("workload: more than 2^32 patterns requires stream=true");
      }
      GeneratedWorkload w = generateWorkload(gen);
      out.seq = spec.seqSeed == 0 ? w.seq : deriveSequence(w, spec.seqSeed);
      out.net = std::move(w.net);
      out.faults = std::move(w.faults);
    }
    if (spec.isSeu()) {
      // SEU kind grades a transient campaign, not the permanent universe:
      // the generated FaultList is discarded and the campaign takes its
      // place. Generation is deterministic in (circuit, seed, knobs), so the
      // verifying client can rebuild the exact campaign.
      out.faults = FaultList{};
      SeuGenOptions g;
      g.seed = spec.seuSeed;
      g.numInjections = spec.seuInjections;
      g.numPatterns = out.seq.size();
      g.maxInstants = spec.seuInstants;
      out.seuCampaign = generateSeuCampaign(out.net, g);
    }
  }
  if (out.faults.empty() && out.seuCampaign.empty()) {
    throw Error("workload: empty fault list");
  }
  if (out.seq.empty() && !out.streamConfig.has_value()) {
    throw Error("workload: empty test sequence");
  }
  return out;
}

EngineOptions specEngineOptions(const WorkloadSpec& spec) {
  EngineOptions opts;
  opts.backend = Backend::Concurrent;
  opts.jobs = spec.jobs;
  opts.laneWidth = spec.laneWidth;
  opts.schedule = spec.schedule;
  opts.policy = spec.policy;
  opts.dropDetected = spec.dropDetected;
  return opts;
}

const char* jobStatusName(JobStatus s) {
  switch (s) {
    case JobStatus::Queued: return "queued";
    case JobStatus::Running: return "running";
    case JobStatus::Done: return "done";
    case JobStatus::Failed: return "failed";
    case JobStatus::Cancelled: return "cancelled";
  }
  return "?";
}

JsonValue JobResult::toJson() const {
  JsonValue v = JsonValue::makeObject();
  v.set("checksum", JsonValue::makeHexU64(checksum));
  v.set("numFaults", JsonValue::makeU64(numFaults));
  v.set("numDetected", JsonValue::makeU64(numDetected));
  v.set("nodeEvals", JsonValue::makeU64(nodeEvals));
  v.set("wallSeconds", JsonValue::makeNumber(wallSeconds));
  v.set("cpuSeconds", JsonValue::makeNumber(cpuSeconds));
  v.set("queuedSeconds", JsonValue::makeNumber(queuedSeconds));
  v.set("latencySeconds", JsonValue::makeNumber(latencySeconds));
  v.set("engineReused", JsonValue::makeBool(engineReused));
  v.set("backend", JsonValue::makeString(backend));
  if (!error.empty()) v.set("error", JsonValue::makeString(error));
  return v;
}

JobResult JobResult::fromJson(const JsonValue& v) {
  JobResult r;
  if (const JsonValue* c = v.find("checksum")) r.checksum = c->asHexU64();
  r.numFaults = static_cast<std::uint32_t>(v.u64Or("numFaults", 0));
  r.numDetected = static_cast<std::uint32_t>(v.u64Or("numDetected", 0));
  r.nodeEvals = v.u64Or("nodeEvals", 0);
  r.wallSeconds = v.numberOr("wallSeconds", 0.0);
  r.cpuSeconds = v.numberOr("cpuSeconds", 0.0);
  r.queuedSeconds = v.numberOr("queuedSeconds", 0.0);
  r.latencySeconds = v.numberOr("latencySeconds", 0.0);
  r.engineReused = v.boolOr("engineReused", false);
  r.backend = v.stringOr("backend", "");
  r.error = v.stringOr("error", "");
  return r;
}

}  // namespace fmossim::serve
