// EnginePool — persistent, resettable engines as a shared service resource.
//
// A per-run Engine object pays construction (network copy, backend build,
// initial fault injection) on every request; a fault-grading service serving
// repeat traffic should not. The pool owns N engine slots that outlive
// requests:
//
//   * acquire() hands out a live engine whose (network fingerprint, fault
//     list fingerprint, engine options) match the request — the engine is
//     reused as-is, and because run() has fresh-session semantics the reuse
//     is bit-identical to a fresh engine (tests/serve/engine_pool_test.cpp).
//   * On a miss, the least recently used free slot is rebound
//     (Engine::rebind) to the new workload — the slot is recycled, never
//     the Engine semantics.
//   * Every pooled engine shares one CheckpointStore, so even a freshly
//     rebound engine replays a previously recorded good-machine trace when
//     its (network, sequence) was seen before — ERASER's
//     redundancy-trimming argument applied across tenants.
//   * Every pooled engine also shares one sched::HistoryStore: each sharded
//     run records its per-fault detection outcome (keyed on the fault-list
//     fingerprint, so tenants never see each other's history), and requests
//     asking for the history schedule policy are laid out by the newest
//     record of *their* fault list — per-tenant history across requests,
//     surviving slot rebinds exactly like checkpoints do.
//
// Thread-safe; acquire() blocks while all slots are leased (the server
// sizes workers <= slots so that never happens in the daemon, but the pool
// does not rely on it).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "api/engine.hpp"
#include "core/checkpoint_store.hpp"

namespace fmossim::serve {

/// Pool construction knobs.
struct EnginePoolOptions {
  /// Engine slots (= maximum concurrently leased engines).
  unsigned engines = 4;
  /// Shared good-machine checkpoint cache attached to every pooled engine.
  /// Null constructs a default store (in-memory, its own entry bound).
  std::shared_ptr<CheckpointStore> store;
  /// Shared detection-history cache attached to every pooled engine (see
  /// file comment). Null constructs a fresh one — the pool always has a
  /// history store, so per-tenant history needs no opt-in.
  std::shared_ptr<sched::HistoryStore> history;
};

/// The pool; see the file comment.
class EnginePool {
 public:
  /// An exclusive lease on a pooled engine. Return it with release(); the
  /// engine stays valid (and keyed for reuse) afterwards.
  struct Lease {
    Engine* engine = nullptr;
    bool reused = false;   ///< matched a live engine (no rebind/build)
    std::size_t slot = 0;  ///< pool-internal slot index
  };

  /// Cumulative pool counters (monotonic; snapshot under the pool lock).
  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t reuses = 0;    ///< served by a matching live engine
    std::uint64_t rebinds = 0;   ///< recycled a slot via Engine::rebind
    std::uint64_t builds = 0;    ///< constructed a brand-new Engine
    unsigned engines = 0;        ///< slot count
  };

  explicit EnginePool(EnginePoolOptions options = {});

  /// The shared checkpoint store every pooled engine runs against.
  const std::shared_ptr<CheckpointStore>& store() const { return store_; }

  /// The shared detection-history store every pooled engine records into
  /// (and schedules from, for history-policy requests).
  const std::shared_ptr<sched::HistoryStore>& history() const {
    return history_;
  }

  /// Leases an engine for (net, faults, options): a matching live engine if
  /// one is free, otherwise the LRU free slot rebound to this workload.
  /// `options.checkpointStore` and `options.historyStore` are overwritten
  /// with the pool's shared stores. Blocks while every slot is leased.
  Lease acquire(const Network& net, const FaultList& faults,
                EngineOptions options);

  /// Returns a leased engine to the pool (idempotent for a moved-from
  /// lease). The slot keeps its engine and key for future reuse.
  void release(Lease& lease);

  /// Snapshot of the cumulative counters.
  Stats stats() const;

 private:
  struct Slot {
    std::unique_ptr<Engine> engine;
    std::uint64_t key = 0;     ///< fingerprint of (net, faults, options)
    bool leased = false;
    std::uint64_t lastUse = 0; ///< LRU tick
  };

  static std::uint64_t keyFor(std::uint64_t netFp, std::uint64_t faultsFp,
                              const EngineOptions& options);

  EnginePoolOptions options_;
  std::shared_ptr<CheckpointStore> store_;
  std::shared_ptr<sched::HistoryStore> history_;
  mutable std::mutex mu_;
  std::condition_variable freeCv_;
  std::vector<Slot> slots_;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace fmossim::serve
