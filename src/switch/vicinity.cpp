#include "switch/vicinity.hpp"

#include "util/strings.hpp"

namespace fmossim {

std::string describeVicinity(const Network& net, const Vicinity& vic) {
  std::string out = format("vicinity of %zu node(s):", vic.size());
  for (std::size_t i = 0; i < vic.size(); ++i) {
    out += ' ';
    out += net.node(vic.members[i]).name;
    out += '=';
    out += stateChar(vic.memberCharge[i]);
  }
  out += format(" | %zu edge(s), %zu input edge(s)", vic.edges.size(),
                vic.inputEdges.size());
  return out;
}

}  // namespace fmossim
