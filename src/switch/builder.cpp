#include "switch/builder.hpp"

namespace fmossim {

NetworkBuilder::NetworkBuilder(SignalDomain domain) {
  net_.domain_ = domain;
}

NodeId NetworkBuilder::addNodeImpl(const std::string& name, Strength size,
                                   bool isInput) {
  FMOSSIM_ASSERT(!built_, "NetworkBuilder reused after build()");
  if (name.empty()) {
    throw Error("node name must be non-empty");
  }
  if (net_.byName_.count(name) != 0) {
    throw Error("duplicate node name '" + name + "'");
  }
  const auto id = static_cast<std::uint32_t>(net_.nodes_.size());
  Network::Node node;
  node.name = name;
  node.size = size;
  node.isInput = isInput;
  net_.nodes_.push_back(std::move(node));
  net_.byName_.emplace(name, id);
  if (isInput) ++net_.numInputs_;
  return NodeId(id);
}

NodeId NetworkBuilder::addInput(const std::string& name) {
  return addNodeImpl(name, /*size=*/1, /*isInput=*/true);
}

NodeId NetworkBuilder::addNode(const std::string& name, unsigned sizeIndex) {
  return addNodeImpl(name, net_.domain_.sizeLevel(sizeIndex), /*isInput=*/false);
}

NodeId NetworkBuilder::getOrAddNode(const std::string& name) {
  const auto it = net_.byName_.find(name);
  if (it != net_.byName_.end()) return NodeId(it->second);
  return addNode(name);
}

TransId NetworkBuilder::addDevice(TransistorType type, Strength strength,
                                  NodeId gate, NodeId source, NodeId drain,
                                  std::optional<State> goodConduction) {
  FMOSSIM_ASSERT(!built_, "NetworkBuilder reused after build()");
  const auto checkNode = [this](NodeId n, const char* what) {
    if (!n.valid() || n.value >= net_.nodes_.size()) {
      throw Error(std::string("transistor ") + what + " refers to an invalid node");
    }
  };
  checkNode(gate, "gate");
  checkNode(source, "source");
  checkNode(drain, "drain");
  if (source == drain) {
    throw Error("transistor source and drain must be distinct nodes ('" +
                net_.nodes_[source.value].name + "')");
  }
  const auto id = static_cast<std::uint32_t>(net_.transistors_.size());
  Network::Transistor t;
  t.type = type;
  t.strength = strength;
  t.gate = gate;
  t.source = source;
  t.drain = drain;
  t.goodConduction = goodConduction;
  net_.transistors_.push_back(t);
  net_.nodes_[gate.value].gateOf.push_back(TransId(id));
  net_.nodes_[source.value].channelOf.push_back(TransId(id));
  net_.nodes_[drain.value].channelOf.push_back(TransId(id));
  if (goodConduction.has_value()) ++net_.numFaultDevices_;
  return TransId(id);
}

TransId NetworkBuilder::addTransistor(TransistorType type, unsigned strengthIndex,
                                      NodeId gate, NodeId source, NodeId drain) {
  return addDevice(type, net_.domain_.strengthLevel(strengthIndex), gate, source,
                   drain, std::nullopt);
}

TransId NetworkBuilder::addShortFaultDevice(NodeId a, NodeId b) {
  // Gate is irrelevant for fault devices (conduction is forced); we point it
  // at one of the terminals to keep the structure well-formed.
  return addDevice(TransistorType::NType, net_.domain_.faultDeviceLevel(), a, a,
                   b, State::S0);
}

TransId NetworkBuilder::addOpenFaultDevice(NodeId a, NodeId b) {
  return addDevice(TransistorType::NType, net_.domain_.faultDeviceLevel(), a, a,
                   b, State::S1);
}

bool NetworkBuilder::hasNode(const std::string& name) const {
  return net_.byName_.count(name) != 0;
}

std::string NetworkBuilder::uniqueName(const std::string& prefix) {
  auto& counter = uniqueCounters_[prefix];
  for (;;) {
    std::string candidate = prefix + "." + std::to_string(counter++);
    if (net_.byName_.count(candidate) == 0) return candidate;
  }
}

std::uint32_t NetworkBuilder::numNodes() const {
  return static_cast<std::uint32_t>(net_.nodes_.size());
}

std::uint32_t NetworkBuilder::numTransistors() const {
  return static_cast<std::uint32_t>(net_.transistors_.size());
}

const SignalDomain& NetworkBuilder::domain() const { return net_.domain_; }

Network NetworkBuilder::build() {
  FMOSSIM_ASSERT(!built_, "NetworkBuilder::build() called twice");
  built_ = true;
  if (net_.nodes_.empty()) {
    throw Error("cannot build an empty network");
  }
  return std::move(net_);
}

}  // namespace fmossim
