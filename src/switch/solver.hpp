// Steady-state response solver (paper §4; model from Bryant, IEEE ToC 1984).
//
// Given a vicinity — a set of storage nodes connected by conducting
// transistors, bounded by input nodes — the solver computes the new state of
// every member node. Signals are <strength, value> pairs; stronger signals
// absorb weaker ones, equal-strength conflicting values merge to X.
//
// Three bucketed max-min relaxations per vicinity (see DESIGN.md §3):
//
//  1. def[n]  — strength of the strongest *definite* signal at n, using only
//               transistors in state 1. Every member sources its own charge
//               <size, state>; input edges source <omega, state> attenuated
//               by the transistor strength.
//  2. H[n]    — strongest possibly-winning signal carrying value in {1,X},
//               using transistors in state 1 or X, where a signal of running
//               strength sigma is blocked at any node m with sigma < def[m]
//               (the definite signal there absorbs it).
//     L[n]    — likewise for values in {0,X}.
//  3. state'  — 1 if only H wins, 0 if only L wins, X if both can.
//
// This yields ratioed-logic resolution (weak pull-up loses to strong
// pull-down), charge sharing by node size, precharged-bus reads, and
// conservative X propagation through uncertain switches.
#pragma once

#include <cstdint>
#include <vector>

#include "switch/vicinity.hpp"

namespace fmossim {

/// Reusable steady-state solver. Not thread-safe (owns scratch buffers);
/// create one per simulation engine.
class SteadyStateSolver {
 public:
  explicit SteadyStateSolver(const SignalDomain& domain);

  /// Computes the steady state of the vicinity. `out` is resized to
  /// vic.size(); out[i] is the new state of vic.members[i].
  void solve(const Vicinity& vic, std::vector<State>& out);

  /// Total member-node evaluations performed (deterministic work counter
  /// used by the benchmarks alongside wall-clock time).
  std::uint64_t nodeEvals() const { return nodeEvals_; }
  /// Total vicinity solves performed.
  std::uint64_t solves() const { return solves_; }

  /// Credits member evaluations that a lane-batched caller settled without a
  /// separate solve: when one solve's result is committed to several fault
  /// lanes at once, each extra lane is charged the evaluations a standalone
  /// run of that lane would have spent, keeping nodeEvals() invariant across
  /// lane widths.
  void creditLanes(std::uint64_t memberEvals);

  void resetCounters() {
    nodeEvals_ = 0;
    solves_ = 0;
  }

 private:
  // Directed arc of the dense vicinity graph.
  struct Arc {
    std::uint32_t to;
    Strength strength;
    bool definite;
  };

  void buildAdjacency(const Vicinity& vic);
  void relaxDefinite(const Vicinity& vic);
  // Relaxes H (wantHigh=true: sources with value 1 or X) or L into `field`.
  void relaxValue(const Vicinity& vic, bool wantHigh, std::vector<Strength>& field);

  // Edge-free vicinities (isolated storage nodes, or an input seed fanning
  // out to unconnected neighbours) need no relaxation at all: every member's
  // response is a direct max over its own charge and its input edges. This
  // is the overwhelmingly common case in practice (mean vicinity size on the
  // paper's RAM workloads is ~1.3 members), so it bypasses the CSR build and
  // the bucket queues entirely. Bit-identical to the general path.
  void solveEdgeless(const Vicinity& vic, std::vector<State>& out);

  // Bucket-queue helpers over strength levels.
  void bucketPush(std::uint32_t node, Strength level);

  unsigned numLevels_;

  // CSR adjacency, rebuilt per solve.
  std::vector<std::uint32_t> arcOffset_;
  std::vector<Arc> arcs_;
  std::vector<std::uint32_t> cursor_;  // buildAdjacency scratch (hoisted)

  std::vector<Strength> def_;
  std::vector<Strength> hstr_;
  std::vector<Strength> lstr_;
  std::vector<std::vector<std::uint32_t>> buckets_;
  Strength topLevel_ = 0;  // highest level seeded in the current relaxation

  std::uint64_t nodeEvals_ = 0;
  std::uint64_t solves_ = 0;
};

}  // namespace fmossim
