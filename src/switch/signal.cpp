#include "switch/signal.hpp"

#include <cctype>

namespace fmossim {

char stateChar(State s) {
  switch (s) {
    case State::S0: return '0';
    case State::S1: return '1';
    case State::SX: return 'X';
  }
  return '?';
}

State stateFromChar(char c) {
  switch (c) {
    case '0': return State::S0;
    case '1': return State::S1;
    case 'X':
    case 'x': return State::SX;
    default:
      throw Error(std::string("invalid state character '") + c + "'");
  }
}

State mergeValues(State a, State b) {
  return a == b ? a : State::SX;
}

const char* transistorTypeName(TransistorType t) {
  switch (t) {
    case TransistorType::NType: return "n";
    case TransistorType::PType: return "p";
    case TransistorType::DType: return "d";
  }
  return "?";
}

TransistorType transistorTypeFromName(const std::string& name) {
  if (name.size() == 1) {
    switch (std::tolower(static_cast<unsigned char>(name[0]))) {
      case 'n':
      case 'e':  // classic esim spelling for enhancement nMOS
        return TransistorType::NType;
      case 'p': return TransistorType::PType;
      case 'd': return TransistorType::DType;
      default: break;
    }
  }
  throw Error("invalid transistor type '" + name + "' (expected n, p, d, or e)");
}

SignalDomain::SignalDomain(unsigned numSizes, unsigned numStrengths)
    : numSizes_(numSizes), numStrengths_(numStrengths) {
  if (numSizes < 1 || numSizes > 8) {
    throw Error("SignalDomain: numSizes must be in [1, 8]");
  }
  if (numStrengths < 1 || numStrengths > 8) {
    throw Error("SignalDomain: numStrengths must be in [1, 8]");
  }
}

Strength SignalDomain::sizeLevel(unsigned k) const {
  if (k < 1 || k > numSizes_) {
    throw Error("SignalDomain: node size out of range");
  }
  return static_cast<Strength>(k);
}

Strength SignalDomain::strengthLevel(unsigned g) const {
  if (g < 1 || g > numStrengths_) {
    throw Error("SignalDomain: transistor strength out of range");
  }
  return static_cast<Strength>(numSizes_ + g);
}

}  // namespace fmossim
