// Switch-level network structure (paper §2).
//
// A network is a set of nodes connected by transistors. Nodes are either
// *input* nodes (strong external sources: Vdd, Gnd, clocks, data inputs) or
// *storage* nodes (hold charge; each has a discrete size). Transistors are
// symmetric, bidirectional switches with a gate, two channel terminals, a
// type (n/p/d), and a discrete strength.
//
// Networks also carry *fault devices*: extra transistors inserted at build
// time to model short- and open-circuit faults (paper §3, after Lightner &
// Hachtel). A fault device's conduction state is fixed per circuit rather
// than derived from its gate: `goodConduction` in the fault-free circuit,
// and the opposite in the faulty circuits that activate it.
//
// The Network is immutable once built (see NetworkBuilder); simulators keep
// their dynamic state (node states, conduction states) separately.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "switch/signal.hpp"
#include "util/error.hpp"

namespace fmossim {

/// Strongly-typed node handle (index into the network's node table).
struct NodeId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffff;

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value(v) {}
  constexpr bool valid() const { return value != kInvalid; }
  friend constexpr bool operator==(NodeId a, NodeId b) { return a.value == b.value; }
  friend constexpr bool operator!=(NodeId a, NodeId b) { return a.value != b.value; }
  friend constexpr bool operator<(NodeId a, NodeId b) { return a.value < b.value; }
};

/// Strongly-typed transistor handle.
struct TransId {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffff;

  constexpr TransId() = default;
  constexpr explicit TransId(std::uint32_t v) : value(v) {}
  constexpr bool valid() const { return value != kInvalid; }
  friend constexpr bool operator==(TransId a, TransId b) { return a.value == b.value; }
  friend constexpr bool operator!=(TransId a, TransId b) { return a.value != b.value; }
  friend constexpr bool operator<(TransId a, TransId b) { return a.value < b.value; }
};

class NetworkBuilder;

/// Immutable switch-level network. Default-constructed networks are empty
/// placeholders (useful as struct members assigned from NetworkBuilder::
/// build()); every accessor on an empty network fails.
class Network {
 public:
  Network() = default;
  struct Node {
    std::string name;
    Strength size = 1;     ///< kappa level; meaningful for storage nodes
    bool isInput = false;  ///< true for input (source) nodes
    /// Transistors whose gate is this node.
    std::vector<TransId> gateOf;
    /// Transistors with a channel terminal (source or drain) on this node.
    std::vector<TransId> channelOf;
  };

  struct Transistor {
    TransistorType type = TransistorType::NType;
    Strength strength = 0;  ///< gamma level in the unified order
    NodeId gate;
    NodeId source;
    NodeId drain;
    /// For fault devices: the conduction state in the fault-free circuit.
    /// Normal transistors have no value here (conduction follows the gate).
    std::optional<State> goodConduction;

    bool isFaultDevice() const { return goodConduction.has_value(); }

    /// The channel terminal opposite to `n` (n must be source or drain).
    NodeId otherEnd(NodeId n) const {
      FMOSSIM_ASSERT(n == source || n == drain,
                     "otherEnd: node is not a channel terminal");
      return n == source ? drain : source;
    }
  };

  const SignalDomain& domain() const { return domain_; }

  std::uint32_t numNodes() const { return static_cast<std::uint32_t>(nodes_.size()); }
  std::uint32_t numTransistors() const {
    return static_cast<std::uint32_t>(transistors_.size());
  }

  const Node& node(NodeId id) const {
    FMOSSIM_ASSERT(id.value < nodes_.size(), "node id out of range");
    return nodes_[id.value];
  }
  const Transistor& transistor(TransId id) const {
    FMOSSIM_ASSERT(id.value < transistors_.size(), "transistor id out of range");
    return transistors_[id.value];
  }

  /// Looks a node up by name; throws Error if absent.
  NodeId nodeByName(const std::string& name) const;

  /// Looks a node up by name; returns an invalid id if absent.
  NodeId findNode(const std::string& name) const;

  bool isInput(NodeId id) const { return node(id).isInput; }

  /// All node ids, in creation order.
  std::vector<NodeId> allNodes() const;
  /// All storage (non-input) node ids, in creation order.
  std::vector<NodeId> storageNodes() const;
  /// All transistor ids, in creation order. Includes fault devices.
  std::vector<TransId> allTransistors() const;
  /// Transistor ids excluding fault devices (the functional circuit).
  std::vector<TransId> functionalTransistors() const;

  std::uint32_t numInputs() const { return numInputs_; }
  std::uint32_t numStorage() const { return numNodes() - numInputs_; }
  std::uint32_t numFaultDevices() const { return numFaultDevices_; }

 private:
  friend class NetworkBuilder;

  SignalDomain domain_;
  std::vector<Node> nodes_;
  std::vector<Transistor> transistors_;
  std::unordered_map<std::string, std::uint32_t> byName_;
  std::uint32_t numInputs_ = 0;
  std::uint32_t numFaultDevices_ = 0;
};

}  // namespace fmossim
