// Vicinity computation — the dynamic locality of paper §4.
//
// "The vicinity of a node consists of the set of all storage nodes connected
// by paths of conducting transistors that do not pass through input nodes."
// Vicinities are the "logic elements" of a switch-level simulator; their
// boundaries depend on the current network state, which is why FMOSSIM had to
// re-engineer the concurrent algorithm (the boundaries differ between the
// good and faulty circuits).
//
// The vicinity builder is parameterized over a CircuitView so the same code
// serves the good circuit, a faulty-circuit overlay, and the serial
// simulator's forced-fault view.
#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

#include "switch/network.hpp"

namespace fmossim {

/// Read-only view of one circuit's dynamic state. nodeState/conduction must
/// be consistent with each other (conduction is a function of gate states
/// plus per-circuit forcing); isInputNode must include per-circuit stuck
/// nodes, which behave as input nodes in that circuit (paper §3).
template <typename V>
concept CircuitView = requires(const V& v, NodeId n, TransId t) {
  { v.nodeState(n) } -> std::convertible_to<State>;
  { v.conduction(t) } -> std::convertible_to<State>;
  { v.isInputNode(n) } -> std::convertible_to<bool>;
};

/// One vicinity, in the dense representation consumed by the solver.
/// Members are storage nodes (never input-like); edges connect members
/// through conducting transistors; input edges tie members to the boundary
/// input nodes that drive the region.
struct Vicinity {
  struct Edge {
    std::uint32_t a;      ///< dense member index
    std::uint32_t b;      ///< dense member index
    Strength strength;    ///< gamma level of the connecting transistor
    bool definite;        ///< true if conduction is 1, false if X

    bool operator==(const Edge&) const = default;
  };
  struct InputEdge {
    std::uint32_t member;  ///< dense member index
    Strength strength;     ///< gamma level of the connecting transistor
    bool definite;         ///< true if conduction is 1, false if X
    State value;           ///< state of the input node

    bool operator==(const InputEdge&) const = default;
  };

  std::vector<NodeId> members;
  std::vector<Strength> memberSize;   ///< kappa level per member
  std::vector<State> memberCharge;    ///< current state per member
  std::vector<Edge> edges;
  std::vector<InputEdge> inputEdges;

  void clear() {
    members.clear();
    memberSize.clear();
    memberCharge.clear();
    edges.clear();
    inputEdges.clear();
  }
  std::size_t size() const { return members.size(); }
};

/// Human-readable one-line description (debugging aid).
std::string describeVicinity(const Network& net, const Vicinity& vic);

/// Reusable scratch for vicinity construction. A single builder instance is
/// meant to be reused across many grow() calls; epoch stamping makes resets
/// O(1).
class VicinityBuilder {
 public:
  explicit VicinityBuilder(const Network& net);

  /// Starts a new "claim generation": nodes claimed by vicinities grown since
  /// the last newGeneration() are skipped as seeds (a phase evaluates every
  /// vicinity at most once).
  void newGeneration();

  /// True if the node was already absorbed into a vicinity grown in the
  /// current generation.
  bool claimed(NodeId n) const { return nodeEpoch_[n.value] == epoch_; }

  /// Grows the vicinity around `seed` under the given view. Returns false
  /// (and leaves `out` empty) if the seed is already claimed in this
  /// generation or contributes no members (e.g. an isolated input node).
  ///
  /// If the seed is input-like in the view, its conducting channel
  /// neighbours become the starting members ("perturbed ... if it is
  /// connected by a conducting transistor to an input node that has changed
  /// state", paper §4).
  template <CircuitView V>
  bool grow(const V& view, NodeId seed, Vicinity& out);

  /// Static-locality variant: grows through *all* transistors regardless of
  /// conduction state, i.e. the DC-connected component of the seed. Off
  /// transistors contribute no edges (no electrical effect) but their far
  /// ends still become members, reproducing the cost model of the earlier
  /// simulators that "exploited only the static locality in the network"
  /// (paper §4, contrasting MOSSIM-81). Used by the locality ablation.
  template <CircuitView V>
  bool growStatic(const V& view, NodeId seed, Vicinity& out);

 private:
  template <CircuitView V>
  void expand(const V& view, Vicinity& out, bool staticPartition);

  std::uint32_t claim(NodeId n, Vicinity& out, Strength size, State charge);

  const Network& net_;
  std::vector<std::uint32_t> nodeEpoch_;   // node -> last claiming epoch
  std::vector<std::uint32_t> denseIndex_;  // valid when nodeEpoch matches
  std::vector<std::uint32_t> transEpoch_;  // transistor visited stamp
  std::vector<std::uint32_t> queue_;       // BFS worklist of dense indices
  std::uint32_t epoch_ = 0;
  std::uint32_t transGen_ = 0;
};

// --- implementation -------------------------------------------------------

inline VicinityBuilder::VicinityBuilder(const Network& net)
    : net_(net),
      nodeEpoch_(net.numNodes(), 0),
      denseIndex_(net.numNodes(), 0),
      transEpoch_(net.numTransistors(), 0) {}

inline void VicinityBuilder::newGeneration() { ++epoch_; }

inline std::uint32_t VicinityBuilder::claim(NodeId n, Vicinity& out,
                                            Strength size, State charge) {
  const auto dense = static_cast<std::uint32_t>(out.members.size());
  nodeEpoch_[n.value] = epoch_;
  denseIndex_[n.value] = dense;
  out.members.push_back(n);
  out.memberSize.push_back(size);
  out.memberCharge.push_back(charge);
  return dense;
}

template <CircuitView V>
bool VicinityBuilder::grow(const V& view, NodeId seed, Vicinity& out) {
  out.clear();
  queue_.clear();
  ++transGen_;

  if (view.isInputNode(seed)) {
    // Expand an input-like seed to its conducting channel neighbours.
    for (const TransId t : net_.node(seed).channelOf) {
      if (view.conduction(t) == State::S0) continue;
      const NodeId m = net_.transistor(t).otherEnd(seed);
      if (view.isInputNode(m) || claimed(m)) continue;
      const auto dense =
          claim(m, out, net_.node(m).size, view.nodeState(m));
      queue_.push_back(dense);
    }
    if (out.members.empty()) return false;
  } else {
    if (claimed(seed)) return false;
    queue_.push_back(claim(seed, out, net_.node(seed).size, view.nodeState(seed)));
  }

  expand(view, out, /*staticPartition=*/false);
  return true;
}

template <CircuitView V>
bool VicinityBuilder::growStatic(const V& view, NodeId seed, Vicinity& out) {
  out.clear();
  queue_.clear();
  ++transGen_;

  if (view.isInputNode(seed)) {
    for (const TransId t : net_.node(seed).channelOf) {
      const NodeId m = net_.transistor(t).otherEnd(seed);
      if (view.isInputNode(m) || claimed(m)) continue;
      const auto dense = claim(m, out, net_.node(m).size, view.nodeState(m));
      queue_.push_back(dense);
    }
    if (out.members.empty()) return false;
  } else {
    if (claimed(seed)) return false;
    queue_.push_back(claim(seed, out, net_.node(seed).size, view.nodeState(seed)));
  }

  expand(view, out, /*staticPartition=*/true);
  return true;
}

template <CircuitView V>
void VicinityBuilder::expand(const V& view, Vicinity& out, bool staticPartition) {
  std::size_t head = 0;
  while (head < queue_.size()) {
    const std::uint32_t dense = queue_[head++];
    const NodeId n = out.members[dense];
    for (const TransId tid : net_.node(n).channelOf) {
      if (transEpoch_[tid.value] == transGen_) continue;  // already handled
      transEpoch_[tid.value] = transGen_;
      const State c = view.conduction(tid);
      if (c == State::S0 && !staticPartition) continue;
      const auto& t = net_.transistor(tid);
      const NodeId m = t.otherEnd(n);
      const bool definite = (c == State::S1);
      if (view.isInputNode(m)) {
        if (c != State::S0) {
          out.inputEdges.push_back(
              {dense, t.strength, definite, view.nodeState(m)});
        }
        continue;
      }
      std::uint32_t mDense;
      if (claimed(m)) {
        mDense = denseIndex_[m.value];
      } else {
        mDense = claim(m, out, net_.node(m).size, view.nodeState(m));
        queue_.push_back(mDense);
      }
      if (c != State::S0) {
        out.edges.push_back({dense, mDense, t.strength, definite});
      }
    }
  }
}

}  // namespace fmossim
