// Ternary signal algebra of the switch-level model (paper §2, Table 1).
//
// A node carries a *state* in {0, 1, X}; X is an indeterminate voltage from
// an uninitialized node, a short circuit, or improper charge sharing.
// Transistors are N-, P-, or D-type switches whose conduction state is a
// function of their gate node state (Table 1 of the paper).
//
// Signal *strengths* form one total order
//     lambda < kappa_1 < ... < kappa_K < gamma_1 < ... < gamma_G < omega
// where kappa levels are storage-node sizes (charge), gamma levels are
// transistor strengths (drive), and omega is the strength of an input node.
// The SignalDomain value type describes a network's strength configuration.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.hpp"

namespace fmossim {

/// Node / signal state. The numeric values are chosen so arrays can be
/// indexed by state.
enum class State : std::uint8_t {
  S0 = 0,  ///< driven or stored low
  S1 = 1,  ///< driven or stored high
  SX = 2,  ///< indeterminate
};

/// Transistor device type (paper §2).
enum class TransistorType : std::uint8_t {
  NType = 0,  ///< n-channel enhancement: conducts when gate is 1
  PType = 1,  ///< p-channel enhancement: conducts when gate is 0
  DType = 2,  ///< depletion mode: always conducts (nMOS pull-up load)
};

/// Single-character display form: '0', '1', 'X'.
char stateChar(State s);

/// Parses '0' / '1' / 'X' (or 'x'); throws Error otherwise.
State stateFromChar(char c);

/// Ternary inversion: 0 -> 1, 1 -> 0, X -> X.
inline State invertState(State s) {
  switch (s) {
    case State::S0: return State::S1;
    case State::S1: return State::S0;
    case State::SX: return State::SX;
  }
  return State::SX;
}

/// True for 0 and 1; false for X.
inline bool isDefinite(State s) { return s != State::SX; }

/// Ternary least upper bound in the information order used when two signal
/// values merge at equal strength: equal values keep the value, differing
/// values (or any X) give X.
State mergeValues(State a, State b);

/// Conduction state of a transistor given its gate node state — exactly
/// Table 1 of the paper:
///
///   gate | n-type  p-type  d-type
///   -----+----------------------
///    0   |   0       1       1
///    1   |   1       0       1
///    X   |   X       X       1
///
/// The result is itself a State: 0 = open, 1 = closed, X = unknown.
/// Inline: this is the innermost lookup of both the vicinity builder and the
/// concurrent engine's faulty-circuit views.
inline State conductionState(TransistorType type, State gate) {
  switch (type) {
    case TransistorType::NType:
      return gate;  // 0->0, 1->1, X->X
    case TransistorType::PType:
      return invertState(gate);  // 0->1, 1->0, X->X
    case TransistorType::DType:
      return State::S1;  // always conducting
  }
  return State::SX;
}

/// Display names "n", "p", "d".
const char* transistorTypeName(TransistorType t);

/// Parses "n"/"p"/"d" (case-insensitive, also accepts classic "e" for
/// enhancement nMOS); throws Error otherwise.
TransistorType transistorTypeFromName(const std::string& name);

/// Strength level in the unified order; 0 is the null signal lambda.
using Strength = std::uint8_t;

/// Describes the strength configuration of a network: K node sizes and
/// G transistor strengths (paper §2: "most circuits can be modeled with just
/// two node sizes" and "most nMOS circuits require only two strengths").
///
/// Level layout:   lambda = 0
///                 sizes:      1 .. K
///                 strengths:  K+1 .. K+G
///                 omega:      K+G+1
class SignalDomain {
 public:
  /// Constructs a domain with the given number of node sizes and transistor
  /// strengths; both must be in [1, 8] which is far beyond any practical
  /// circuit's needs.
  SignalDomain(unsigned numSizes, unsigned numStrengths);

  /// Default domain: two node sizes, three transistor strengths (weak
  /// pull-up loads, regular devices, and a reserved "very high" strength for
  /// fault transistors per paper §3).
  SignalDomain() : SignalDomain(2, 3) {}

  unsigned numSizes() const { return numSizes_; }
  unsigned numStrengths() const { return numStrengths_; }

  /// Strength level of node size k (1-based, k in [1, numSizes]).
  Strength sizeLevel(unsigned k) const;

  /// Strength level of transistor strength g (1-based, g in [1, numStrengths]).
  Strength strengthLevel(unsigned g) const;

  /// Strength of an input node's signal (stronger than everything else).
  Strength omega() const {
    return static_cast<Strength>(numSizes_ + numStrengths_ + 1);
  }

  /// Total number of distinct levels including lambda and omega.
  unsigned numLevels() const { return numSizes_ + numStrengths_ + 2; }

  bool isSizeLevel(Strength s) const { return s >= 1 && s <= numSizes_; }
  bool isStrengthLevel(Strength s) const {
    return s > numSizes_ && s <= numSizes_ + numStrengths_;
  }

  /// The strongest transistor strength; reserved by convention for fault
  /// transistors modeling shorts and opens ("a transistor of very high
  /// strength", paper §3).
  Strength faultDeviceLevel() const { return strengthLevel(numStrengths_); }

  bool operator==(const SignalDomain& o) const {
    return numSizes_ == o.numSizes_ && numStrengths_ == o.numStrengths_;
  }

 private:
  unsigned numSizes_;
  unsigned numStrengths_;
};

}  // namespace fmossim
