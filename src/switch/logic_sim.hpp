// Event-driven switch-level logic simulator for a single circuit — the
// MOSSIM II equivalent that FMOSSIM builds on (paper §4).
//
// "Our switch-level algorithm computes the behavior of a circuit for each
// change in network inputs by repeatedly computing the steady state response
// of the network until a stable state is reached."
//
// The simulator keeps the node states and transistor conduction states of one
// circuit, schedules perturbed nodes, grows vicinities around them, applies
// the steady-state solver, and iterates in unit-delay phases until quiet.
// Residual oscillation (beyond options.settleLimit phases) forces the still-
// changing nodes to X, which is guaranteed to terminate.
//
// Fault forcing (used by the serial fault simulator and for debugging):
//   * forceNode(n, s)       — n behaves as an input node stuck at s (§3)
//   * forceTransistor(t, c) — t's conduction is fixed at c (stuck-open /
//                             stuck-closed; also activates fault devices)
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "switch/network.hpp"
#include "switch/solver.hpp"
#include "switch/vicinity.hpp"

namespace fmossim {

/// Outcome of one settle() call.
struct SettleResult {
  std::uint32_t phases = 0;
  bool oscillated = false;
};

/// Tuning knobs shared by the simulation engines.
struct SimOptions {
  /// Unit-delay phases per settle before oscillation is declared and
  /// X-coercion begins.
  std::uint32_t settleLimit = 200;
  /// Use static DC-connected partitions instead of dynamic vicinities
  /// (MOSSIM-81 cost model; paper §4). Results are identical, work is not —
  /// for the locality ablation benchmark.
  bool staticPartitions = false;
};

/// Deterministic work counters; the benchmarks report these alongside
/// wall-clock time so that the paper's shape claims are noise-free.
struct SimCounters {
  std::uint64_t settles = 0;
  std::uint64_t phases = 0;
  std::uint64_t oscillations = 0;
  std::uint64_t transistorToggles = 0;
  std::uint64_t solves = 0;
  std::uint64_t nodeEvals = 0;
};

class LogicSimulator {
 public:
  explicit LogicSimulator(const Network& net, SimOptions options = {});

  const Network& network() const { return net_; }

  /// Sets an input node's state. Takes effect at the next settle(). Setting
  /// a forced (stuck) input is ignored — the fault wins.
  void setInput(NodeId n, State s);

  /// Applies a batch of input assignments and settles.
  SettleResult applyAssignments(
      std::span<const std::pair<NodeId, State>> assignments);

  /// Propagates all pending perturbations to a stable state.
  SettleResult settle();

  /// Forces a node to behave as an input node stuck at `s`.
  void forceNode(NodeId n, State s);
  /// Forces a transistor's conduction state (stuck-open: S0, stuck-closed:
  /// S1). For fault devices this activates the faulty-circuit conduction.
  void forceTransistor(TransId t, State conduction);
  /// Removes all node/transistor forces and reschedules affected regions.
  void clearForces();

  State state(NodeId n) const { return states_[n.value]; }
  State conduction(TransId t) const { return cond_[t.value]; }
  bool isForcedNode(NodeId n) const { return forcedNode_[n.value] != kNoForce; }

  /// Resets every node to X (forces are kept) and schedules a full
  /// re-evaluation at the next settle().
  void resetState();

  const SimCounters& counters() const { return counters_; }
  void resetCounters() {
    counters_ = {};
    solver_.resetCounters();
  }

 private:
  friend struct LogicSimView;

  State condOf(TransId t) const;
  void seedStorage(NodeId n);
  void seedChannelNeighbours(NodeId n);
  void updateGatedTransistors(NodeId n);
  void scheduleAllStorage();

  static constexpr std::uint8_t kNoForce = 0xff;

  const Network& net_;
  SimOptions options_;

  std::vector<State> states_;
  std::vector<State> cond_;
  std::vector<std::uint8_t> forcedNode_;
  std::vector<std::uint8_t> forcedTrans_;

  std::vector<NodeId> pendingSeeds_;
  std::vector<std::uint32_t> seedStamp_;
  std::uint32_t seedGen_ = 1;  // stamps start at 0, so 1 means "nothing seeded"

  VicinityBuilder vicBuilder_;
  SteadyStateSolver solver_;
  Vicinity vic_;
  std::vector<State> newStates_;
  std::vector<std::pair<NodeId, State>> pendingChanges_;
  std::vector<NodeId> takenSeeds_;

  SimCounters counters_;
};

}  // namespace fmossim
