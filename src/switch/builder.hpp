// NetworkBuilder — the only way to construct a Network.
//
// Circuit generators and netlist parsers add nodes and transistors, then call
// build() which validates the structure and produces an immutable Network.
//
// Short- and open-circuit fault support (paper §3): fault devices are extra
// transistors of reserved "very high" strength whose conduction is fixed per
// circuit rather than gate-driven.
//   * Short between nodes a,b:  addShortFaultDevice(a, b) — off in the good
//     circuit, on in a faulty circuit that activates it.
//   * Open circuit: build the wire as two separate nodes a,b and call
//     addOpenFaultDevice(a, b) — on in the good circuit (the wire is whole),
//     off in a faulty circuit (the wire is broken).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "switch/network.hpp"

namespace fmossim {

class NetworkBuilder {
 public:
  explicit NetworkBuilder(SignalDomain domain = SignalDomain());

  /// Adds an input (source) node, e.g. Vdd, Gnd, a clock or a data pin.
  NodeId addInput(const std::string& name);

  /// Adds a storage node of the given 1-based size index (1 = normal,
  /// larger = higher capacitance, e.g. busses).
  NodeId addNode(const std::string& name, unsigned sizeIndex = 1);

  /// Returns the existing node of this name or creates a storage node of
  /// size 1. Used by netlist parsers where declarations are implicit.
  NodeId getOrAddNode(const std::string& name);

  /// Adds a transistor. strengthIndex is the 1-based gamma index
  /// (1 = weakest, e.g. depletion pull-up loads). Source and drain are
  /// interchangeable (the device is symmetric and bidirectional).
  TransId addTransistor(TransistorType type, unsigned strengthIndex,
                        NodeId gate, NodeId source, NodeId drain);

  /// Adds a short-circuit fault device between a and b (paper §3).
  TransId addShortFaultDevice(NodeId a, NodeId b);

  /// Adds an open-circuit fault device joining the two halves a and b of a
  /// split node (paper §3).
  TransId addOpenFaultDevice(NodeId a, NodeId b);

  /// True if a node of this name exists already.
  bool hasNode(const std::string& name) const;

  /// Generates a fresh name with the given prefix ("prefix.0", "prefix.1"...).
  std::string uniqueName(const std::string& prefix);

  std::uint32_t numNodes() const;
  std::uint32_t numTransistors() const;
  const SignalDomain& domain() const;

  /// Validates and produces the immutable network. The builder is consumed.
  Network build();

 private:
  NodeId addNodeImpl(const std::string& name, Strength size, bool isInput);
  TransId addDevice(TransistorType type, Strength strength, NodeId gate,
                    NodeId source, NodeId drain,
                    std::optional<State> goodConduction);

  Network net_;
  std::unordered_map<std::string, std::uint32_t> uniqueCounters_;
  bool built_ = false;
};

}  // namespace fmossim
