#include "switch/logic_sim.hpp"

namespace fmossim {

/// CircuitView over a LogicSimulator's current state.
struct LogicSimView {
  const LogicSimulator* sim;

  State nodeState(NodeId n) const { return sim->states_[n.value]; }
  State conduction(TransId t) const { return sim->cond_[t.value]; }
  bool isInputNode(NodeId n) const {
    return sim->net_.isInput(n) || sim->forcedNode_[n.value] != LogicSimulator::kNoForce;
  }
};

LogicSimulator::LogicSimulator(const Network& net, SimOptions options)
    : net_(net),
      options_(options),
      states_(net.numNodes(), State::SX),
      cond_(net.numTransistors(), State::SX),
      forcedNode_(net.numNodes(), kNoForce),
      forcedTrans_(net.numTransistors(), kNoForce),
      seedStamp_(net.numNodes(), 0),
      vicBuilder_(net),
      solver_(net.domain()) {
  for (std::uint32_t t = 0; t < net_.numTransistors(); ++t) {
    cond_[t] = condOf(TransId(t));
  }
  scheduleAllStorage();
}

State LogicSimulator::condOf(TransId t) const {
  if (forcedTrans_[t.value] != kNoForce) {
    return static_cast<State>(forcedTrans_[t.value]);
  }
  const auto& tr = net_.transistor(t);
  if (tr.isFaultDevice()) return *tr.goodConduction;
  return conductionState(tr.type, states_[tr.gate.value]);
}

void LogicSimulator::seedStorage(NodeId n) {
  if (net_.isInput(n) || forcedNode_[n.value] != kNoForce) return;
  if (seedStamp_[n.value] == seedGen_) return;
  seedStamp_[n.value] = seedGen_;
  pendingSeeds_.push_back(n);
}

void LogicSimulator::seedChannelNeighbours(NodeId n) {
  for (const TransId t : net_.node(n).channelOf) {
    if (cond_[t.value] == State::S0) continue;
    seedStorage(net_.transistor(t).otherEnd(n));
  }
}

void LogicSimulator::updateGatedTransistors(NodeId n) {
  for (const TransId t : net_.node(n).gateOf) {
    const State nc = condOf(t);
    if (nc == cond_[t.value]) continue;
    cond_[t.value] = nc;
    ++counters_.transistorToggles;
    const auto& tr = net_.transistor(t);
    seedStorage(tr.source);
    seedStorage(tr.drain);
  }
}

void LogicSimulator::scheduleAllStorage() {
  for (std::uint32_t i = 0; i < net_.numNodes(); ++i) {
    seedStorage(NodeId(i));
  }
}

void LogicSimulator::setInput(NodeId n, State s) {
  if (!net_.isInput(n)) {
    throw Error("setInput: '" + net_.node(n).name + "' is not an input node");
  }
  if (forcedNode_[n.value] != kNoForce) return;  // stuck input: fault wins
  if (states_[n.value] == s) return;
  states_[n.value] = s;
  updateGatedTransistors(n);
  seedChannelNeighbours(n);
}

void LogicSimulator::forceNode(NodeId n, State s) {
  forcedNode_[n.value] = static_cast<std::uint8_t>(s);
  if (states_[n.value] != s) {
    states_[n.value] = s;
    updateGatedTransistors(n);
  }
  // Even without a state change the node is now an omega-strength source, so
  // its channel neighbourhood must be re-evaluated.
  seedChannelNeighbours(n);
}

void LogicSimulator::forceTransistor(TransId t, State conduction) {
  forcedTrans_[t.value] = static_cast<std::uint8_t>(conduction);
  const auto& tr = net_.transistor(t);
  if (cond_[t.value] != conduction) {
    cond_[t.value] = conduction;
    ++counters_.transistorToggles;
  }
  seedStorage(tr.source);
  seedStorage(tr.drain);
  // The terminals may be input nodes; their storage neighbours across the
  // (possibly now conducting) device still need re-evaluation.
  if (net_.isInput(tr.source) || forcedNode_[tr.source.value] != kNoForce) {
    seedChannelNeighbours(tr.source);
  }
  if (net_.isInput(tr.drain) || forcedNode_[tr.drain.value] != kNoForce) {
    seedChannelNeighbours(tr.drain);
  }
}

void LogicSimulator::clearForces() {
  for (std::uint32_t n = 0; n < net_.numNodes(); ++n) {
    forcedNode_[n] = kNoForce;
  }
  for (std::uint32_t t = 0; t < net_.numTransistors(); ++t) {
    forcedTrans_[t] = kNoForce;
    const State nc = condOf(TransId(t));
    if (nc != cond_[t]) {
      cond_[t] = nc;
      ++counters_.transistorToggles;
    }
  }
  scheduleAllStorage();
}

void LogicSimulator::resetState() {
  for (std::uint32_t n = 0; n < net_.numNodes(); ++n) {
    states_[n] = forcedNode_[n] != kNoForce ? static_cast<State>(forcedNode_[n])
                                            : State::SX;
  }
  for (std::uint32_t t = 0; t < net_.numTransistors(); ++t) {
    cond_[t] = condOf(TransId(t));
  }
  pendingSeeds_.clear();
  ++seedGen_;
  scheduleAllStorage();
}

SettleResult LogicSimulator::applyAssignments(
    std::span<const std::pair<NodeId, State>> assignments) {
  for (const auto& [node, value] : assignments) {
    setInput(node, value);
  }
  return settle();
}

SettleResult LogicSimulator::settle() {
  SettleResult result;
  ++counters_.settles;
  const LogicSimView view{this};
  bool coerce = false;
  // Once coercion starts, every change goes to X; since X is absorbing each
  // node can change at most once more, bounding the loop.
  const std::uint32_t hardLimit =
      options_.settleLimit + net_.numNodes() + 16;

  while (!pendingSeeds_.empty()) {
    FMOSSIM_ASSERT(result.phases < hardLimit,
                   "settle failed to terminate under X-coercion");
    if (result.phases >= options_.settleLimit && !coerce) {
      coerce = true;
      result.oscillated = true;
      ++counters_.oscillations;
    }

    takenSeeds_.swap(pendingSeeds_);
    pendingSeeds_.clear();
    ++seedGen_;  // seeds scheduled from here on belong to the next phase
    vicBuilder_.newGeneration();
    pendingChanges_.clear();

    for (const NodeId seed : takenSeeds_) {
      const bool grown = options_.staticPartitions
                             ? vicBuilder_.growStatic(view, seed, vic_)
                             : vicBuilder_.grow(view, seed, vic_);
      if (!grown) continue;
      // Single-machine solve: lane batching (FsimOptions::laneWidth) never
      // reaches this path. The good machine always runs single-lane — its
      // state is the shared background every faulty lane diverges from, so
      // there is nothing to batch it against.
      solver_.solve(vic_, newStates_);
      for (std::size_t i = 0; i < vic_.size(); ++i) {
        if (newStates_[i] != vic_.memberCharge[i]) {
          pendingChanges_.emplace_back(vic_.members[i], newStates_[i]);
        }
      }
    }
    takenSeeds_.clear();

    for (auto [node, value] : pendingChanges_) {
      if (coerce) value = State::SX;
      if (states_[node.value] == value) continue;
      states_[node.value] = value;
      updateGatedTransistors(node);
    }
    ++result.phases;
  }

  counters_.phases += result.phases;
  counters_.solves = solver_.solves();
  counters_.nodeEvals = solver_.nodeEvals();
  return result;
}

}  // namespace fmossim
