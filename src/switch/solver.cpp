#include "switch/solver.hpp"

#include <algorithm>

namespace fmossim {

SteadyStateSolver::SteadyStateSolver(const SignalDomain& domain)
    : numLevels_(domain.numLevels()), buckets_(numLevels_) {}

void SteadyStateSolver::buildAdjacency(const Vicinity& vic) {
  const auto m = static_cast<std::uint32_t>(vic.size());
  arcOffset_.assign(m + 1, 0);
  for (const auto& e : vic.edges) {
    ++arcOffset_[e.a + 1];
    ++arcOffset_[e.b + 1];
  }
  for (std::uint32_t i = 0; i < m; ++i) arcOffset_[i + 1] += arcOffset_[i];
  arcs_.resize(arcOffset_[m]);
  cursor_.assign(arcOffset_.begin(), arcOffset_.end() - 1);
  for (const auto& e : vic.edges) {
    arcs_[cursor_[e.a]++] = {e.b, e.strength, e.definite};
    arcs_[cursor_[e.b]++] = {e.a, e.strength, e.definite};
  }
}

void SteadyStateSolver::bucketPush(std::uint32_t node, Strength level) {
  buckets_[level].push_back(node);
  if (level > topLevel_) topLevel_ = level;
}

void SteadyStateSolver::relaxDefinite(const Vicinity& vic) {
  const auto m = static_cast<std::uint32_t>(vic.size());
  def_.assign(m, 0);
  topLevel_ = 0;
  for (std::uint32_t i = 0; i < m; ++i) {
    def_[i] = vic.memberSize[i];  // own charge is always a definite source
    bucketPush(i, def_[i]);
  }
  for (const auto& ie : vic.inputEdges) {
    if (!ie.definite) continue;
    if (ie.strength > def_[ie.member]) {
      def_[ie.member] = ie.strength;
      bucketPush(ie.member, ie.strength);
    }
  }
  // Relaxation only ever re-pushes at or below the level being drained, so
  // starting at the seeding watermark skips the empty top buckets.
  for (unsigned level = topLevel_ + 1u; level-- > 0;) {
    auto& bucket = buckets_[level];
    while (!bucket.empty()) {
      const std::uint32_t i = bucket.back();
      bucket.pop_back();
      if (def_[i] != level) continue;  // stale entry
      for (std::uint32_t a = arcOffset_[i]; a < arcOffset_[i + 1]; ++a) {
        const Arc& arc = arcs_[a];
        if (!arc.definite) continue;
        const Strength nd = std::min<Strength>(def_[i], arc.strength);
        if (nd > def_[arc.to]) {
          def_[arc.to] = nd;
          bucketPush(arc.to, nd);
        }
      }
    }
  }
}

void SteadyStateSolver::relaxValue(const Vicinity& vic, bool wantHigh,
                                   std::vector<Strength>& field) {
  const auto m = static_cast<std::uint32_t>(vic.size());
  field.assign(m, 0);
  topLevel_ = 0;
  const auto matches = [wantHigh](State v) {
    return v == State::SX || v == (wantHigh ? State::S1 : State::S0);
  };
  // Charge sources: a member's own charge contributes unless a strictly
  // stronger definite signal overrides it.
  for (std::uint32_t i = 0; i < m; ++i) {
    if (!matches(vic.memberCharge[i])) continue;
    if (vic.memberSize[i] >= def_[i] && vic.memberSize[i] > field[i]) {
      field[i] = vic.memberSize[i];
      bucketPush(i, field[i]);
    }
  }
  // Input sources, attenuated by the connecting transistor; blocked if the
  // member's definite strength exceeds what arrives.
  for (const auto& ie : vic.inputEdges) {
    if (!matches(ie.value)) continue;
    if (ie.strength >= def_[ie.member] && ie.strength > field[ie.member]) {
      field[ie.member] = ie.strength;
      bucketPush(ie.member, ie.strength);
    }
  }
  for (unsigned level = topLevel_ + 1u; level-- > 0;) {
    auto& bucket = buckets_[level];
    while (!bucket.empty()) {
      const std::uint32_t i = bucket.back();
      bucket.pop_back();
      if (field[i] != level) continue;  // stale entry
      for (std::uint32_t a = arcOffset_[i]; a < arcOffset_[i + 1]; ++a) {
        const Arc& arc = arcs_[a];
        const Strength nd = std::min<Strength>(field[i], arc.strength);
        if (nd >= def_[arc.to] && nd > field[arc.to]) {
          field[arc.to] = nd;
          bucketPush(arc.to, nd);
        }
      }
    }
  }
}

void SteadyStateSolver::solveEdgeless(const Vicinity& vic,
                                      std::vector<State>& out) {
  const auto m = static_cast<std::uint32_t>(vic.size());
  // Small fixed-size scratch: edge-free vicinities are almost always one or
  // two members, and heap-backed per-solve assigns would dominate the math.
  constexpr std::uint32_t kStack = 16;
  Strength defBuf[kStack], hBuf[kStack], lBuf[kStack];
  Strength* def = defBuf;
  Strength* h = hBuf;
  Strength* l = lBuf;
  if (m > kStack) {
    def_.assign(m, 0);
    hstr_.assign(m, 0);
    lstr_.assign(m, 0);
    def = def_.data();
    h = hstr_.data();
    l = lstr_.data();
  }
  // def per member: own size vs strongest definite input.
  for (std::uint32_t i = 0; i < m; ++i) def[i] = vic.memberSize[i];
  for (const auto& ie : vic.inputEdges) {
    if (ie.definite && ie.strength > def[ie.member]) {
      def[ie.member] = ie.strength;
    }
  }
  // H / L per member: charge source (blocked by a strictly stronger definite
  // signal) and input sources (blocked likewise). No propagation — there are
  // no member-to-member edges.
  for (std::uint32_t i = 0; i < m; ++i) {
    const State ch = vic.memberCharge[i];
    h[i] = (ch != State::S0 && vic.memberSize[i] >= def[i])
               ? vic.memberSize[i]
               : Strength(0);
    l[i] = (ch != State::S1 && vic.memberSize[i] >= def[i])
               ? vic.memberSize[i]
               : Strength(0);
  }
  for (const auto& ie : vic.inputEdges) {
    if (ie.strength < def[ie.member]) continue;
    if (ie.value != State::S0 && ie.strength > h[ie.member]) {
      h[ie.member] = ie.strength;
    }
    if (ie.value != State::S1 && ie.strength > l[ie.member]) {
      l[ie.member] = ie.strength;
    }
  }
  for (std::uint32_t i = 0; i < m; ++i) {
    const bool hi = h[i] > 0;
    const bool lo = l[i] > 0;
    FMOSSIM_ASSERT(hi || lo, "steady state: node with no possible signal");
    out[i] = hi ? (lo ? State::SX : State::S1) : State::S0;
  }
}

void SteadyStateSolver::solve(const Vicinity& vic, std::vector<State>& out) {
  const auto m = static_cast<std::uint32_t>(vic.size());
  out.resize(m);
  if (m == 0) return;
  ++solves_;
  nodeEvals_ += m;

  if (vic.edges.empty()) {
    solveEdgeless(vic, out);
    return;
  }

  buildAdjacency(vic);
  relaxDefinite(vic);
  relaxValue(vic, /*wantHigh=*/true, hstr_);
  relaxValue(vic, /*wantHigh=*/false, lstr_);

  for (std::uint32_t i = 0; i < m; ++i) {
    const bool h = hstr_[i] > 0;
    const bool l = lstr_[i] > 0;
    FMOSSIM_ASSERT(h || l, "steady state: node with no possible signal");
    out[i] = h ? (l ? State::SX : State::S1) : State::S0;
  }
}

void SteadyStateSolver::creditLanes(std::uint64_t memberEvals) {
  nodeEvals_ += memberEvals;
}

}  // namespace fmossim
