#include "switch/solver.hpp"

#include <algorithm>

namespace fmossim {

SteadyStateSolver::SteadyStateSolver(const SignalDomain& domain)
    : numLevels_(domain.numLevels()), buckets_(numLevels_) {}

void SteadyStateSolver::buildAdjacency(const Vicinity& vic) {
  const auto m = static_cast<std::uint32_t>(vic.size());
  arcOffset_.assign(m + 1, 0);
  for (const auto& e : vic.edges) {
    ++arcOffset_[e.a + 1];
    ++arcOffset_[e.b + 1];
  }
  for (std::uint32_t i = 0; i < m; ++i) arcOffset_[i + 1] += arcOffset_[i];
  arcs_.resize(arcOffset_[m]);
  // Temporary cursors; reuse a copy of the offsets.
  std::vector<std::uint32_t> cursor(arcOffset_.begin(), arcOffset_.end() - 1);
  for (const auto& e : vic.edges) {
    arcs_[cursor[e.a]++] = {e.b, e.strength, e.definite};
    arcs_[cursor[e.b]++] = {e.a, e.strength, e.definite};
  }
}

void SteadyStateSolver::bucketPush(std::uint32_t node, Strength level) {
  buckets_[level].push_back(node);
}

void SteadyStateSolver::relaxDefinite(const Vicinity& vic) {
  const auto m = static_cast<std::uint32_t>(vic.size());
  def_.assign(m, 0);
  for (std::uint32_t i = 0; i < m; ++i) {
    def_[i] = vic.memberSize[i];  // own charge is always a definite source
    bucketPush(i, def_[i]);
  }
  for (const auto& ie : vic.inputEdges) {
    if (!ie.definite) continue;
    if (ie.strength > def_[ie.member]) {
      def_[ie.member] = ie.strength;
      bucketPush(ie.member, ie.strength);
    }
  }
  for (unsigned level = numLevels_; level-- > 0;) {
    auto& bucket = buckets_[level];
    while (!bucket.empty()) {
      const std::uint32_t i = bucket.back();
      bucket.pop_back();
      if (def_[i] != level) continue;  // stale entry
      for (std::uint32_t a = arcOffset_[i]; a < arcOffset_[i + 1]; ++a) {
        const Arc& arc = arcs_[a];
        if (!arc.definite) continue;
        const Strength nd = std::min<Strength>(def_[i], arc.strength);
        if (nd > def_[arc.to]) {
          def_[arc.to] = nd;
          bucketPush(arc.to, nd);
        }
      }
    }
  }
}

void SteadyStateSolver::relaxValue(const Vicinity& vic, bool wantHigh,
                                   std::vector<Strength>& field) {
  const auto m = static_cast<std::uint32_t>(vic.size());
  field.assign(m, 0);
  const auto matches = [wantHigh](State v) {
    return v == State::SX || v == (wantHigh ? State::S1 : State::S0);
  };
  // Charge sources: a member's own charge contributes unless a strictly
  // stronger definite signal overrides it.
  for (std::uint32_t i = 0; i < m; ++i) {
    if (!matches(vic.memberCharge[i])) continue;
    if (vic.memberSize[i] >= def_[i] && vic.memberSize[i] > field[i]) {
      field[i] = vic.memberSize[i];
      bucketPush(i, field[i]);
    }
  }
  // Input sources, attenuated by the connecting transistor; blocked if the
  // member's definite strength exceeds what arrives.
  for (const auto& ie : vic.inputEdges) {
    if (!matches(ie.value)) continue;
    if (ie.strength >= def_[ie.member] && ie.strength > field[ie.member]) {
      field[ie.member] = ie.strength;
      bucketPush(ie.member, ie.strength);
    }
  }
  for (unsigned level = numLevels_; level-- > 0;) {
    auto& bucket = buckets_[level];
    while (!bucket.empty()) {
      const std::uint32_t i = bucket.back();
      bucket.pop_back();
      if (field[i] != level) continue;  // stale entry
      for (std::uint32_t a = arcOffset_[i]; a < arcOffset_[i + 1]; ++a) {
        const Arc& arc = arcs_[a];
        const Strength nd = std::min<Strength>(field[i], arc.strength);
        if (nd >= def_[arc.to] && nd > field[arc.to]) {
          field[arc.to] = nd;
          bucketPush(arc.to, nd);
        }
      }
    }
  }
}

void SteadyStateSolver::solve(const Vicinity& vic, std::vector<State>& out) {
  const auto m = static_cast<std::uint32_t>(vic.size());
  out.resize(m);
  if (m == 0) return;
  ++solves_;
  nodeEvals_ += m;

  buildAdjacency(vic);
  relaxDefinite(vic);
  relaxValue(vic, /*wantHigh=*/true, hstr_);
  relaxValue(vic, /*wantHigh=*/false, lstr_);

  for (std::uint32_t i = 0; i < m; ++i) {
    const bool h = hstr_[i] > 0;
    const bool l = lstr_[i] > 0;
    FMOSSIM_ASSERT(h || l, "steady state: node with no possible signal");
    out[i] = h ? (l ? State::SX : State::S1) : State::S0;
  }
}

}  // namespace fmossim
