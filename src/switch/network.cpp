#include "switch/network.hpp"

namespace fmossim {

NodeId Network::nodeByName(const std::string& name) const {
  const auto it = byName_.find(name);
  if (it == byName_.end()) {
    throw Error("unknown node '" + name + "'");
  }
  return NodeId(it->second);
}

NodeId Network::findNode(const std::string& name) const {
  const auto it = byName_.find(name);
  return it == byName_.end() ? NodeId() : NodeId(it->second);
}

std::vector<NodeId> Network::allNodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) out.push_back(NodeId(i));
  return out;
}

std::vector<NodeId> Network::storageNodes() const {
  std::vector<NodeId> out;
  out.reserve(numStorage());
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].isInput) out.push_back(NodeId(i));
  }
  return out;
}

std::vector<TransId> Network::allTransistors() const {
  std::vector<TransId> out;
  out.reserve(transistors_.size());
  for (std::uint32_t i = 0; i < transistors_.size(); ++i) out.push_back(TransId(i));
  return out;
}

std::vector<TransId> Network::functionalTransistors() const {
  std::vector<TransId> out;
  out.reserve(transistors_.size());
  for (std::uint32_t i = 0; i < transistors_.size(); ++i) {
    if (!transistors_[i].isFaultDevice()) out.push_back(TransId(i));
  }
  return out;
}

}  // namespace fmossim
