#include "core/row_sink.hpp"

#include <algorithm>

#include "core/concurrent_sim.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace fmossim {

void MaterializingRowSink::row(const PatternStat& st) { out_->push_back(st); }

AggregatingRowSink::AggregatingRowSink(std::size_t aliveCurveCapacity)
    : rowChecksum_(kFnvOffsetBasis),
      capacity_(std::max<std::size_t>(2, aliveCurveCapacity)) {
  curve_.reserve(capacity_);
}

void AggregatingRowSink::row(const PatternStat& st) {
  // The row ordinal, not st.index: PatternStat carries a 32-bit index, and
  // the sink must stay exact past 2^32 patterns.
  const std::uint64_t index = patterns_++;
  totalNewly_ += st.newlyDetected;
  finalCumulative_ = st.cumulativeDetected;
  finalAlive_ = st.aliveAfter;
  fnvMix(rowChecksum_, st.newlyDetected);
  fnvMix(rowChecksum_, st.cumulativeDetected);
  fnvMix(rowChecksum_, st.aliveAfter);
  if (index % stride_ != 0) return;
  if (curve_.size() == capacity_) {
    // Reservoir full: double the stride and re-decimate in place.
    stride_ *= 2;
    std::size_t w = 0;
    for (const AlivePoint& pt : curve_) {
      if (pt.index % stride_ == 0) curve_[w++] = pt;
    }
    curve_.resize(w);
    if (index % stride_ != 0) return;
  }
  curve_.push_back({index, st.aliveAfter});
}

void forEachDerivedRow(
    const FaultSimResult& res,
    const std::function<void(std::uint64_t, std::uint32_t, std::uint32_t,
                             std::uint32_t)>& fn) {
  // Sorted detection pattern indices; at most numFaults entries, so this is
  // O(F log F + N) with O(F) memory — never O(N) rows.
  std::vector<std::uint64_t> at;
  at.reserve(res.detectedAtPattern.size());
  for (const std::int32_t a : res.detectedAtPattern) {
    if (a >= 0) at.push_back(static_cast<std::uint64_t>(a));
  }
  std::sort(at.begin(), at.end());
  std::size_t k = 0;
  std::uint32_t cumulative = 0;
  for (std::uint64_t pi = 0; pi < res.numPatterns; ++pi) {
    std::uint32_t newly = 0;
    while (k < at.size() && at[k] == pi) {
      ++k;
      ++newly;
    }
    cumulative += newly;
    const std::uint32_t alive =
        res.droppedDetected ? res.numFaults - cumulative : res.numFaults;
    fn(pi, newly, cumulative, alive);
  }
}

void derivePerPattern(FaultSimResult& res) {
  if (!res.perPattern.empty() || res.numPatterns == 0) return;
  FMOSSIM_ASSERT(res.numPatterns <= 0xffffffffull,
                 "derivePerPattern: pattern count exceeds materializable rows");
  res.perPattern.reserve(static_cast<std::size_t>(res.numPatterns));
  forEachDerivedRow(res, [&res](std::uint64_t pi, std::uint32_t newly,
                                std::uint32_t cumulative, std::uint32_t alive) {
    PatternStat st;
    st.index = static_cast<std::uint32_t>(pi);
    st.newlyDetected = newly;
    st.cumulativeDetected = cumulative;
    st.aliveAfter = alive;
    res.perPattern.push_back(st);
  });
}

}  // namespace fmossim
