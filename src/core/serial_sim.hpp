// Serial fault simulation baseline (paper §1/§5).
//
// "a serial fault simulation in which each faulty circuit is simulated
// individually until it produces an output different from that of the good
// machine". Each fault is applied as a force on a fresh LogicSimulator and
// the test sequence replayed until first detection or exhaustion.
//
// The good circuit is simulated once to record the reference output trace
// (and the good-circuit-only timing the paper reports).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/concurrent_sim.hpp"  // DetectionPolicy, FaultSimResult types
#include "faults/fault.hpp"
#include "patterns/pattern.hpp"
#include "switch/logic_sim.hpp"

namespace fmossim {

struct SerialOptions {
  SimOptions sim;
  DetectionPolicy policy = DetectionPolicy::DefiniteOnly;
};

/// Result of a good-circuit-only reference run.
struct GoodRunResult {
  /// outputTrace[p][o] = state of output o after pattern p.
  std::vector<std::vector<State>> outputTrace;
  /// State of every node after the last pattern, indexed by NodeId.
  std::vector<State> finalStates;
  double totalSeconds = 0.0;
  std::uint64_t totalNodeEvals = 0;
  std::uint32_t numPatterns = 0;

  double secondsPerPattern() const {
    return numPatterns == 0 ? 0.0 : totalSeconds / numPatterns;
  }
  double nodeEvalsPerPattern() const {
    return numPatterns == 0 ? 0.0
                            : double(totalNodeEvals) / double(numPatterns);
  }
};

struct SerialRunResult {
  GoodRunResult good;
  std::vector<std::int32_t> detectedAtPattern;  ///< per fault, -1 if undetected
  std::uint32_t numDetected = 0;
  double faultSeconds = 0.0;          ///< time simulating faulty circuits
  std::uint64_t faultNodeEvals = 0;
  /// Per-pattern aggregates over all faulty-circuit replays (index = pattern;
  /// each fault contributes until its first detection). Same shape as the
  /// concurrent engine's PatternStat series, enabling a shared FaultSimResult.
  std::vector<double> patternSeconds;
  std::vector<std::uint64_t> patternNodeEvals;
  /// X-involved mismatches observed under DetectionPolicy::DefiniteOnly
  /// (mirrors FaultSimResult::potentialDetections).
  std::uint64_t potentialDetections = 0;
};

class SerialFaultSimulator {
 public:
  SerialFaultSimulator(const Network& net, SerialOptions options = {});

  /// Simulates the good circuit over the sequence, recording the output
  /// trace used as the detection reference.
  GoodRunResult runGood(const TestSequence& seq);

  /// Serial fault simulation of every fault in the list. `onFault` (if
  /// given) is called with (faultIndex, detectedAtPattern) as each fault
  /// finishes.
  SerialRunResult run(const TestSequence& seq, const FaultList& faults,
                      const std::function<void(std::uint32_t, std::int32_t)>&
                          onFault = nullptr);

 private:
  static void applyFault(LogicSimulator& sim, const Fault& f);
  bool detects(State good, State faulty) const;

  const Network& net_;
  SerialOptions options_;
};

}  // namespace fmossim
