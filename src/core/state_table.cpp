#include "core/state_table.hpp"

namespace fmossim {

void StateTable::growBlock(Block& b) {
  const std::uint32_t newCap = b.capacity == 0 ? kMinCapacity : b.capacity * 2;
  const unsigned cls = classOf(newCap);
  std::uint32_t newOffset;
  if (cls < freeLists_.size() && !freeLists_[cls].empty()) {
    newOffset = freeLists_[cls].back();
    freeLists_[cls].pop_back();
  } else {
    newOffset = static_cast<std::uint32_t>(pool_.size());
    pool_.resize(pool_.size() + newCap);
  }
  if (b.count > 0) {
    // Self-assignment-free: source and destination regions never overlap
    // (the new block is either recycled or freshly appended).
    std::copy_n(pool_.data() + b.offset, b.count, pool_.data() + newOffset);
  }
  if (b.capacity > 0) {
    const unsigned oldCls = classOf(b.capacity);
    if (oldCls >= freeLists_.size()) freeLists_.resize(oldCls + 1);
    freeLists_[oldCls].push_back(b.offset);
  }
  b.offset = newOffset;
  b.capacity = newCap;
}

}  // namespace fmossim
