#include "core/state_table.hpp"

#include <algorithm>

namespace fmossim {

std::vector<StateRecord>::const_iterator StateTable::find(
    const std::vector<StateRecord>& recs, CircuitId c) {
  return std::lower_bound(
      recs.begin(), recs.end(), c,
      [](const StateRecord& r, CircuitId id) { return r.circuit < id; });
}

bool StateTable::reconcile(NodeId n, CircuitId c, State value) {
  FMOSSIM_ASSERT(c != kGoodCircuit, "reconcile is for faulty circuits");
  auto& recs = records_[n.value];
  const auto cit = find(recs, c);
  const auto it = recs.begin() + (cit - recs.begin());
  const bool present = it != recs.end() && it->circuit == c;
  if (value == good_[n.value]) {
    if (present) {
      recs.erase(it);
      --totalRecords_;
    }
    return false;
  }
  if (present) {
    it->value = value;
  } else {
    recs.insert(it, StateRecord{c, value});
    ++totalRecords_;
  }
  return true;
}

void StateTable::erase(NodeId n, CircuitId c) {
  auto& recs = records_[n.value];
  const auto cit = find(recs, c);
  const auto it = recs.begin() + (cit - recs.begin());
  if (it != recs.end() && it->circuit == c) {
    recs.erase(it);
    --totalRecords_;
  }
}

}  // namespace fmossim
