#include "core/concurrent_sim.hpp"

#include <algorithm>

#include "core/checkpoint.hpp"
#include "core/row_sink.hpp"
#include "patterns/pattern_source.hpp"

namespace fmossim {

/// CircuitView over the good circuit's flat state.
struct GoodCircuitView {
  const ConcurrentFaultSimulator* s;
  State nodeState(NodeId n) const { return s->table_.good(n); }
  State conduction(TransId t) const { return s->cond0_[t.value]; }
  bool isInputNode(NodeId n) const { return s->net_.isInput(n); }
};

/// CircuitView over one faulty circuit: stuck nodes first, divergence
/// records next, pre-phase good values for nodes the good circuit changed
/// this phase, the live good state last. Conduction is derived from gate
/// states through the same pre-phase lens, except where statically
/// overridden by the circuit's fault.
struct FaultyCircuitView {
  const ConcurrentFaultSimulator* s;
  CircuitId c;
  State nodeState(NodeId n) const { return s->stateIn(n, c); }
  State conduction(TransId t) const { return s->conductionIn(t, c); }
  bool isInputNode(NodeId n) const {
    return s->net_.isInput(n) || s->isStuckNode(n, c);
  }
};

bool ConcurrentFaultSimulator::isStuckNode(NodeId n, CircuitId c) const {
  return findOverride(nodeStuck_[n.value], c) != nullptr;
}

State ConcurrentFaultSimulator::stuckValue(NodeId n, CircuitId c) const {
  const Override* o = findOverride(nodeStuck_[n.value], c);
  FMOSSIM_ASSERT(o != nullptr, "stuckValue on a non-stuck node");
  return o->value;
}

State ConcurrentFaultSimulator::stateIn(NodeId n, CircuitId c) const {
  if (divCount_[n.value] != 0) {
    if (const Override* o = findOverride(nodeStuck_[n.value], c)) {
      return o->value;
    }
    const StateTable::Lookup r = table_.lookup(n, c);
    if (r.diverges) return r.value;
  }
  if (goodOldStamp_[n.value] == phaseEpoch_) return goodOldValue_[n.value];
  return table_.good(n);
}

State ConcurrentFaultSimulator::conductionIn(TransId t, CircuitId c) const {
  if (const Override* o = findOverride(transOverride_[t.value], c)) {
    return o->value;
  }
  const auto& tr = net_.transistor(t);
  if (tr.isFaultDevice()) return *tr.goodConduction;
  return conductionState(tr.type, stateIn(tr.gate, c));
}

ConcurrentFaultSimulator::ConcurrentFaultSimulator(
    const Network& net, const FaultList& faults, FsimOptions options,
    CheckpointRecorder* record, const GoodMachineCheckpoint* replay)
    : ConcurrentFaultSimulator(net, faults, faults.size(), options, record,
                               replay, /*transientMode=*/false,
                               /*resumeAfterPattern=*/0) {}

ConcurrentFaultSimulator::ConcurrentFaultSimulator(
    const Network& net, std::uint32_t numTransientMachines, FsimOptions options,
    const GoodMachineCheckpoint* replay, std::uint64_t resumeAfterPattern)
    : ConcurrentFaultSimulator(net, FaultList{}, numTransientMachines, options,
                               /*record=*/nullptr, replay,
                               /*transientMode=*/true, resumeAfterPattern) {}

ConcurrentFaultSimulator::ConcurrentFaultSimulator(
    const Network& net, const FaultList& faults, std::uint32_t numMachines,
    FsimOptions options, CheckpointRecorder* record,
    const GoodMachineCheckpoint* replay, bool transientMode,
    std::uint64_t resumeAfterPattern)
    : net_(net),
      faults_(faults),
      options_(options),
      numMachines_(numMachines),
      transientMode_(transientMode),
      resumeAfterPattern_(resumeAfterPattern),
      transient_(transientMode ? numMachines : 0),
      record_(record),
      replay_(replay),
      table_(net),
      cond0_(net.numTransistors(), State::SX),
      nodeStuck_(net.numNodes()),
      transOverride_(net.numTransistors()),
      alive_(numMachines + 1, 0),
      detectedAt_(numMachines, -1),
      touched_(numMachines + 1),
      touchedCap_(numMachines + 1, 16),
      watchCount_(net.numNodes(), 0),
      divCount_(net.numNodes(), 0),
      goodSeedStamp_(net.numNodes(), 0),
      faultySeeds_(numMachines + 1),
      circuitStamp_(numMachines + 1, 0),
      curFaultySeeds_(numMachines + 1),
      goodOldValue_(net.numNodes(), State::SX),
      goodOldStamp_(net.numNodes(), 0),
      phaseCircuitStamp_(numMachines + 1, 0),
      vicBuilder_(net),
      solver_(net.domain()),
      triggerStamp_(numMachines + 1, 0),
      laneDoneStamp_(numMachines + 1, 0),
      readNodeStamp_(net.numNodes(), 0),
      readNodeValue_(net.numNodes(), State::SX),
      readTransStamp_(net.numTransistors(), 0),
      seedSig_(numMachines + 1, 0),
      seedSigStamp_(numMachines + 1, 0),
      windowSkipUntil_(options.laneWidth > 1
                           ? numMachines / options.laneWidth + 1
                           : 0,
                       0),
      windowFailStreak_(windowSkipUntil_.size(), 0),
      windowHinted_(windowSkipUntil_.size(), 0) {
  if (options_.laneWidth < 1 || options_.laneWidth > lanes::kLaneCount ||
      !std::has_single_bit(options_.laneWidth)) {
    throw Error("laneWidth must be a power of two between 1 and 32 (got " +
                std::to_string(options_.laneWidth) + ")");
  }
  // Scheduler share hints: mark the hinted lane windows as backoff-exempt.
  // Out-of-range hints (a schedule built for a larger batch) are ignored.
  for (const std::uint32_t w : options_.shareHintWindows) {
    if (w < windowHinted_.size()) windowHinted_[w] = 1;
  }
  FMOSSIM_ASSERT(record_ == nullptr || replay_ == nullptr,
                 "an engine cannot record and replay a checkpoint at once");
  FMOSSIM_ASSERT(record_ == nullptr || faults_.empty(),
                 "checkpoint recording requires a fault-free engine");
  FMOSSIM_ASSERT(replay_ == nullptr || replay_->numNodes() == net_.numNodes(),
                 "checkpoint was recorded for a different network");
  FMOSSIM_ASSERT(transientMode_ || numMachines_ == faults_.size(),
                 "machine count must match the fault list");
  if (replay_ != nullptr) {
    replayReader_ = std::make_unique<CheckpointReader>(*replay_);
    if (options_.checkpointReadAhead) replayReader_->enableReadAhead();
  }
  if (transientMode_ && replay_ != nullptr) {
    // Tail resume: materialize the good machine right after the injection
    // boundary — the entire prefix is skipped, which is sound because a
    // transient machine cannot diverge before its injection.
    FMOSSIM_ASSERT(resumeAfterPattern_ < replay_->numPatterns(),
                   "transient resume instant past the recorded sequence");
    const std::vector<State> good =
        replay_->goodStateAfterPattern(resumeAfterPattern_);
    for (std::uint32_t n = 0; n < net_.numNodes(); ++n) {
      table_.setGood(NodeId(n), good[n]);
    }
  }
  for (std::uint32_t t = 0; t < net_.numTransistors(); ++t) {
    const auto& tr = net_.transistor(TransId(t));
    cond0_[t] = tr.isFaultDevice()
                    ? *tr.goodConduction
                    : conductionState(tr.type, table_.good(tr.gate));
  }
  if (transientMode_ && replay_ != nullptr) {
    // The materialized state is already settled at a pattern boundary; the
    // replay cursor resumes at the following settle.
    replaySettle_ = replay_->settleEndingPattern(resumeAfterPattern_) + 1;
    inject();
    return;
  }
  // Initial good-circuit evaluation of the whole (all-X) network. In replay
  // mode the checkpoint's settle block 0 stands in for it.
  if (replay_ == nullptr) {
    for (std::uint32_t n = 0; n < net_.numNodes(); ++n) {
      scheduleGood(NodeId(n));
    }
  }
  inject();
  settleAll();
}

ConcurrentFaultSimulator::~ConcurrentFaultSimulator() = default;

void ConcurrentFaultSimulator::inject() {
  if (transientMode_) {
    // Transient machines carry no divergence until their injection instant:
    // they are alive from the start but schedule nothing.
    for (CircuitId c = 1; c <= numMachines_; ++c) alive_[c] = 1;
    aliveCount_ = numMachines_;
    maxAliveObserved_ = aliveCount_;
    return;
  }
  for (std::uint32_t i = 0; i < faults_.size(); ++i) {
    const CircuitId c = i + 1;
    const Fault& f = faults_[i];
    alive_[c] = 1;
    ++aliveCount_;
    switch (f.kind) {
      case FaultKind::NodeStuck: {
        nodeStuck_[f.node.value].push_back({c, f.value});  // ascending c
        addStuckWatch(f.node, +1);
        ++divCount_[f.node.value];
        scheduleFaulty(c, f.node);
        for (const TransId t : net_.node(f.node).gateOf) {
          const auto& tr = net_.transistor(t);
          scheduleFaulty(c, tr.source);
          scheduleFaulty(c, tr.drain);
        }
        break;
      }
      case FaultKind::TransistorStuck:
      case FaultKind::FaultDevice: {
        transOverride_[f.transistor.value].push_back({c, f.value});
        addTransWatch(f.transistor, +1);
        const auto& tr = net_.transistor(f.transistor);
        scheduleFaulty(c, tr.source);
        scheduleFaulty(c, tr.drain);
        break;
      }
    }
  }
  maxAliveObserved_ = aliveCount_;
}

void ConcurrentFaultSimulator::scheduleGood(NodeId n) {
  if (replay_ != nullptr) return;  // the checkpoint drives all good activity
  if (net_.isInput(n)) return;
  if (goodSeedStamp_[n.value] == seedGen_) return;
  goodSeedStamp_[n.value] = seedGen_;
  goodSeeds_.push_back(n);
}

void ConcurrentFaultSimulator::scheduleFaulty(CircuitId c, NodeId n) {
  if (!alive_[c]) return;
  // A plain input node cannot change in circuit c; stuck nodes (input-like
  // per circuit) are allowed as seeds — the vicinity builder expands them.
  if (net_.isInput(n) && !isStuckNode(n, c)) return;
  faultySeeds_[c].push_back(n);
  if (circuitStamp_[c] != seedGen_) {
    circuitStamp_[c] = seedGen_;
    activeCircuits_.push_back(c);
  }
}

SettleResult ConcurrentFaultSimulator::applySetting(
    std::span<const std::pair<NodeId, State>> assignments) {
  for (const auto& [n, s] : assignments) {
    if (!net_.isInput(n)) {
      throw Error("applySetting: '" + net_.node(n).name + "' is not an input");
    }
    const State old = table_.good(n);
    if (old == s) continue;
    if (record_ != nullptr) record_->inputChange(n, s);
    table_.setGood(n, s);
    scheduleSettingSeeds(n, old);
  }
  return settleAll();
}

void ConcurrentFaultSimulator::scheduleSettingSeeds(NodeId n, State /*oldGood*/) {
  // Good circuit: gated transistors toggle...
  for (const TransId t : net_.node(n).gateOf) {
    const auto& tr = net_.transistor(t);
    if (tr.isFaultDevice()) continue;
    const State nc = conductionState(tr.type, table_.good(n));
    if (nc != cond0_[t.value]) {
      cond0_[t.value] = nc;
      scheduleGood(tr.source);
      scheduleGood(tr.drain);
    }
  }
  // ...and conducting channel neighbours are perturbed.
  for (const TransId t : net_.node(n).channelOf) {
    const auto& tr = net_.transistor(t);
    const NodeId other = tr.otherEnd(n);
    if (cond0_[t.value] != State::S0) {
      scheduleGood(other);
      continue;
    }
    // The transistor is off in the good circuit, so the good phase will not
    // evaluate a vicinity across it — but it may conduct in a faulty
    // circuit (override, or divergent gate state). Schedule those circuits
    // directly, otherwise the input change would never reach them.
    for (const Override& o : transOverride_[t.value]) {
      if (o.value != State::S0) scheduleFaulty(o.circuit, other);
    }
    if (!tr.isFaultDevice()) {
      const NodeId g = tr.gate;
      table_.forEachRecord(g, [&](CircuitId rc, State rv) {
        if (conductionState(tr.type, rv) != State::S0) {
          scheduleFaulty(rc, other);
        }
      });
      for (const Override& o : nodeStuck_[g.value]) {
        if (conductionState(tr.type, o.value) != State::S0) {
          scheduleFaulty(o.circuit, other);
        }
      }
    }
  }
}

SettleResult ConcurrentFaultSimulator::settleAll() {
  if (record_ != nullptr) record_->beginSettle();
  if (replay_ != nullptr) {
    // runReplay() enters the settle itself (it needs the reader positioned
    // before settleAll, to apply the recorded input changes); consume that
    // entry instead of advancing past it.
    if (!replayEntered_) replayBeginSettle();
    replayEntered_ = false;
  }
  SettleResult res;
  bool coerce = false;
  const std::uint32_t hardLimit =
      options_.sim.settleLimit + 8 * net_.numNodes() + 4096;
  while (!goodSeeds_.empty() || !activeCircuits_.empty() ||
         replayPhasesRemain()) {
    FMOSSIM_ASSERT(res.phases < hardLimit,
                   "concurrent settle failed to terminate under X-coercion");
    if (res.phases >= options_.sim.settleLimit && !coerce) {
      coerce = true;
      res.oscillated = true;
    }
    runPhase(coerce);
    ++res.phases;
    ++phases_;
  }
  ++phaseEpoch_;  // invalidate pre-phase snapshots for external queries
  return res;
}

void ConcurrentFaultSimulator::runPhase(bool coerce) {
  ++phaseEpoch_;
  memoReset();
  curGoodSeeds_.swap(goodSeeds_);
  goodSeeds_.clear();
  curCircuits_.swap(activeCircuits_);
  activeCircuits_.clear();
  for (const CircuitId c : curCircuits_) {
    curFaultySeeds_[c].swap(faultySeeds_[c]);
    faultySeeds_[c].clear();
    phaseCircuitStamp_[c] = phaseEpoch_;
  }
  ++seedGen_;  // scheduling from here on targets the next phase

  if (record_ != nullptr) record_->beginPhase();
  if (replay_ != nullptr) {
    replayGoodPhase();
  } else {
    processGoodPhase(coerce);
  }

  // The paper simulates "the activities for each faulty circuit in turn";
  // circuits are independent within a phase, so queue order is fine — which
  // is also what makes the lane-batched path sound: a group leader may pull
  // its lane mates' work forward without changing any result.
  for (std::size_t i = 0; i < curCircuits_.size(); ++i) {
    const CircuitId c = curCircuits_[i];
    if (alive_[c] && laneDoneStamp_[c] != phaseEpoch_) {
      if (options_.laneWidth > 1) {
        processFaultyGroup(c, coerce);
      } else {
        processFaultyCircuit(c, coerce);
      }
    }
    curFaultySeeds_[c].clear();
  }
  curCircuits_.clear();
  curGoodSeeds_.clear();
}

void ConcurrentFaultSimulator::processGoodPhase(bool coerce) {
  goodChanges_.clear();
  vicBuilder_.newGeneration();
  const GoodCircuitView view{this};
  for (const NodeId seed : curGoodSeeds_) {
    if (!vicBuilder_.grow(view, seed, vic_)) continue;
    solveMemoized(vic_, newStates_);
    for (std::size_t i = 0; i < vic_.size(); ++i) {
      if (newStates_[i] != vic_.memberCharge[i]) {
        goodChanges_.emplace_back(vic_.members[i], newStates_[i]);
      }
    }
    // Triggering is stimulus-based: even an unchanged vicinity may respond
    // differently in a diverging faulty circuit.
    collectTriggers(vic_.members);
    if (record_ != nullptr) record_->goodVicinity(vic_);
  }
  // Commit (two-buffered: all vicinities were solved against pre-phase state).
  for (auto [n, v] : goodChanges_) {
    if (coerce) v = State::SX;
    const State old = table_.good(n);
    if (old == v) continue;
    if (record_ != nullptr) record_->goodCommit(n, v);
    if (goodOldStamp_[n.value] != phaseEpoch_) {
      goodOldStamp_[n.value] = phaseEpoch_;
      goodOldValue_[n.value] = old;
    }
    table_.setGood(n, v);
    for (const TransId t : net_.node(n).gateOf) {
      const auto& tr = net_.transistor(t);
      if (tr.isFaultDevice()) continue;
      const State nc = conductionState(tr.type, v);
      if (nc != cond0_[t.value]) {
        cond0_[t.value] = nc;
        scheduleGood(tr.source);
        scheduleGood(tr.drain);
      }
    }
  }
}

void ConcurrentFaultSimulator::collectTriggers(
    std::span<const NodeId> members) {
  if (aliveCount_ == 0) return;  // nothing left to trigger
  ++triggerGen_;
  triggerScratch_.clear();
  const auto mark = [this](CircuitId c) {
    if (!alive_[c]) return;
    if (triggerStamp_[c] == triggerGen_) return;
    triggerStamp_[c] = triggerGen_;
    triggerScratch_.push_back(c);
  };
  for (const NodeId n : members) {
    // No divergence source lands on this member: nothing below can mark.
    if (watchCount_[n.value] == 0) continue;
    table_.forEachRecord(n, [&](CircuitId rc, State) { mark(rc); });
    for (const Override& o : nodeStuck_[n.value]) mark(o.circuit);
    for (const TransId t : net_.node(n).channelOf) {
      for (const Override& o : transOverride_[t.value]) mark(o.circuit);
      const auto& tr = net_.transistor(t);
      if (!tr.isFaultDevice()) {
        const NodeId g = tr.gate;
        table_.forEachRecord(g, [&](CircuitId rc, State) { mark(rc); });
        for (const Override& o : nodeStuck_[g.value]) mark(o.circuit);
      }
      // A stuck *input* neighbour diverges in its circuit without ever
      // carrying a state record; it influences this vicinity directly.
      const NodeId other = tr.otherEnd(n);
      if (net_.isInput(other)) {
        for (const Override& o : nodeStuck_[other.value]) mark(o.circuit);
      }
    }
  }
  if (triggerScratch_.empty()) return;
  for (const CircuitId c : triggerScratch_) {
    if (options_.debugLoseTriggerEvery != 0 &&
        ++debugTriggerCount_ % options_.debugLoseTriggerEvery == 0) {
      continue;  // deliberately lost trigger (oracle self-test; see FsimOptions)
    }
    if (phaseCircuitStamp_[c] != phaseEpoch_) {
      phaseCircuitStamp_[c] = phaseEpoch_;
      curCircuits_.push_back(c);
    }
    auto& seeds = curFaultySeeds_[c];
    seeds.insert(seeds.end(), members.begin(), members.end());
    triggeredEvents_ += members.size();
  }
}

// --- checkpoint replay (see checkpoint.hpp) --------------------------------

bool ConcurrentFaultSimulator::replayPhasesRemain() const {
  if (replay_ == nullptr) return false;
  return replayPhase_ < replayReader_->phaseCount();
}

void ConcurrentFaultSimulator::replayBeginSettle() {
  FMOSSIM_ASSERT(replaySettle_ < replay_->numSettles(),
                 "replay ran more settles than the checkpoint recorded");
  // The cursor pins the settle's trace block — for a spilled checkpoint
  // this is the point where the sliding window advances.
  replayReader_->enterSettle(replaySettle_);
  ++replaySettle_;
  replayPhase_ = 0;
}

void ConcurrentFaultSimulator::replayGoodPhase() {
  if (replayPhase_ >= replayReader_->phaseCount()) {
    return;  // good machine already quiet
  }
  const std::uint32_t ph = replayPhase_++;
  // Trigger stimuli first, in recorded evaluation order: faulty-circuit seed
  // order (and therefore vicinity growth order) must match a
  // self-simulating engine's exactly.
  if (aliveCount_ != 0) {
    for (const auto& vs : replayReader_->vicinities(ph)) {
      collectTriggers(replayReader_->members(vs));
    }
  }
  // Then the commits. Recorded changes are post-coercion and always differ
  // from the node's pre-phase value, so they apply verbatim; conduction
  // states are pure functions of the gate state and are recomputed rather
  // than stored. No good events are scheduled — the next recorded phase
  // already embodies them.
  for (const auto& ch : replayReader_->changes(ph)) {
    const NodeId n = ch.node;
    if (goodOldStamp_[n.value] != phaseEpoch_) {
      goodOldStamp_[n.value] = phaseEpoch_;
      goodOldValue_[n.value] = table_.good(n);
    }
    table_.setGood(n, ch.value);
    for (const TransId t : net_.node(n).gateOf) {
      const auto& tr = net_.transistor(t);
      if (tr.isFaultDevice()) continue;
      cond0_[t.value] = conductionState(tr.type, ch.value);
    }
  }
}


void ConcurrentFaultSimulator::processFaultyCircuit(CircuitId c, bool coerce) {
  const FaultyCircuitView view{this, c};
  vicBuilder_.newGeneration();
  faultyResults_.clear();
  faultyChanges_.clear();
  for (const NodeId seed : curFaultySeeds_[c]) {
    if (!vicBuilder_.grow(view, seed, vic_)) continue;
    solveMemoized(vic_, newStates_);
    for (std::size_t i = 0; i < vic_.size(); ++i) {
      const NodeId n = vic_.members[i];
      const State pre = vic_.memberCharge[i];
      State next = newStates_[i];
      if (coerce && next != pre) next = State::SX;
      faultyResults_.emplace_back(n, next);
      if (next != pre) faultyChanges_.push_back({n, pre, next});
    }
  }
  // Commit this circuit's records (vs. the good circuit's *current* state).
  for (const auto& [n, v] : faultyResults_) {
    const StateTable::Reconciled rec = table_.reconcile(n, c, v);
    if (rec.inserted) {
      touchedInsert(c, n);
      addRecordWatch(n, +1);
      ++divCount_[n.value];
    } else if (rec.erased) {
      addRecordWatch(n, -1);
      --divCount_[n.value];
    }
  }
  // Gate toggles within circuit c schedule next-phase events for c.
  for (const FaultyChange& ch : faultyChanges_) {
    for (const TransId t : net_.node(ch.node).gateOf) {
      const auto& tr = net_.transistor(t);
      if (tr.isFaultDevice()) continue;
      if (findOverride(transOverride_[t.value], c) != nullptr) continue;
      if (conductionState(tr.type, ch.oldValue) !=
          conductionState(tr.type, ch.newValue)) {
        scheduleFaulty(c, tr.source);
        scheduleFaulty(c, tr.drain);
      }
    }
  }
}

// --- lane-batched faulty processing (see header) ---------------------------

/// Read-matching CircuitView over the lane-group leader's circuit: the first
/// visit to every node and transistor the vicinity builder observes filters
/// liveCandMask_ down to the mates that would observe exactly the same
/// values (identical reads imply identical growth, solving and scheduling).
/// A read answered by the leader's own fault overlays zeroes the mask — no
/// mate can share a result that depends on the leader's private fault.
struct LaneLeaderView {
  ConcurrentFaultSimulator* s;
  CircuitId c;
  State nodeState(NodeId n) const { return s->logNodeRead(n); }
  State conduction(TransId t) const { return s->logTransRead(t); }
  bool isInputNode(NodeId n) const {
    if (s->net_.isInput(n)) return true;
    if (s->isStuckNode(n, c)) {
      s->liveCandMask_ = 0;  // boundary shaped by the leader's own fault
      return true;
    }
    return false;
  }
};

State ConcurrentFaultSimulator::logNodeRead(NodeId n) {
  // Mask-death fast path: once no candidate survives, the stamps and value
  // cache only add overhead — every remaining read is answered by the plain
  // overlay-aware lookup, which is exactly what the scalar path pays. The
  // state is not mutated during an evaluation, so repeated lookups agree
  // with what the cache would have returned.
  if (liveCandMask_ == 0) return stateIn(n, leaderCircuit_);
  if (readNodeStamp_[n.value] == readGen_) return readNodeValue_[n.value];
  readNodeStamp_[n.value] = readGen_;
  const State v = stateIn(n, leaderCircuit_);
  readNodeValue_[n.value] = v;
  // Match candidates against this read: lanes stuck here (vicinity boundary
  // differs — a stuck overlay implies divCount_ > 0, so the cheap guard
  // covers the leader's own stuckness too) drop out, then matchLanes keeps
  // lanes whose state equals the leader's observed value, recordless lanes
  // reading the pre-phase good lens.
  if (divCount_[n.value] != 0) {
    if (isStuckNode(n, leaderCircuit_)) {
      liveCandMask_ = 0;  // boundary shaped by the leader's own fault
      return v;
    }
    liveCandMask_ &= ~stuckLaneMask(n, laneGroup_);
    if (liveCandMask_ != 0) {
      const State bg = goodOldStamp_[n.value] == phaseEpoch_
                           ? goodOldValue_[n.value]
                           : table_.good(n);
      liveCandMask_ = table_.matchLanes(n, laneGroup_, liveCandMask_, v, bg);
    }
  }
  return v;
}

State ConcurrentFaultSimulator::logTransRead(TransId t) {
  // Mask-death fast path: with no candidates left there is nothing to match,
  // and the overlay-aware lookup answers every case the first-visit path
  // handles (override, fault device, gate-derived conduction) identically.
  if (liveCandMask_ == 0) return conductionIn(t, leaderCircuit_);
  if (readTransStamp_[t.value] != readGen_) {
    readTransStamp_[t.value] = readGen_;
    if (findOverride(transOverride_[t.value], leaderCircuit_) != nullptr) {
      liveCandMask_ = 0;  // conduction shaped by the leader's own fault
      return conductionIn(t, leaderCircuit_);
    }
    liveCandMask_ &= ~overrideLaneMask(t, laneGroup_);
    const auto& tr = net_.transistor(t);
    if (tr.isFaultDevice()) return *tr.goodConduction;  // circuit-independent
    // Route the gate read through logNodeRead so mates are matched on the
    // gate value the conduction was derived from.
    return conductionState(tr.type, logNodeRead(tr.gate));
  }
  // Repeat visit: the gate node was matched on the first visit (its read
  // stamp is set), so the plain overlay-aware lookup is equivalent.
  return conductionIn(t, leaderCircuit_);
}

std::uint64_t ConcurrentFaultSimulator::seedSignature(CircuitId c) {
  if (seedSigStamp_[c] != phaseEpoch_) {
    seedSigStamp_[c] = phaseEpoch_;
    std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
    for (const NodeId n : curFaultySeeds_[c]) {
      h ^= n.value;
      h *= 0x100000001b3ull;
    }
    seedSig_[c] = h;
  }
  return seedSig_[c];
}

std::uint32_t ConcurrentFaultSimulator::stuckLaneMask(
    NodeId n, std::uint32_t group) const {
  std::uint32_t m = 0;
  for (const Override& o : nodeStuck_[n.value]) {
    if (lanes::groupOf(o.circuit) == group) m |= 1u << lanes::laneOf(o.circuit);
  }
  return m;
}

std::uint32_t ConcurrentFaultSimulator::overrideLaneMask(
    TransId t, std::uint32_t group) const {
  std::uint32_t m = 0;
  for (const Override& o : transOverride_[t.value]) {
    if (lanes::groupOf(o.circuit) == group) m |= 1u << lanes::laneOf(o.circuit);
  }
  return m;
}

void ConcurrentFaultSimulator::processFaultyGroup(CircuitId c, bool coerce) {
  // The first active circuit of an aligned lane window handles the whole
  // window for this phase: one scan collects every alive circuit scheduled
  // this phase, partitions them into share-groups with identical event
  // lists (signature fast path, deep compare as collision guard), and
  // done-stamps all of them. runPhase therefore dispatches each window
  // exactly once per phase, so the scan costs O(width) per window instead
  // of O(width) per circuit.
  const std::uint32_t w = options_.laneWidth;
  const std::uint32_t widx = (c - 1) / w;
  if (windowHinted_[widx] == 0 && phaseEpoch_ < windowSkipUntil_[widx]) {
    // Share backoff active: this window's recent attempts all failed, so
    // skip the scan and matching entirely — each member dispatches here
    // individually and takes the scalar path unchanged. Scheduler-hinted
    // windows are exempt: their members were co-batched on matching
    // detection history, so persistent matching is expected to pay off.
    processFaultyCircuit(c, coerce);
    return;
  }
  const CircuitId windowBase = widx * w + 1;
  const CircuitId windowEnd =
      std::min<CircuitId>(windowBase + w, numMachines_ + 1);
  const std::uint32_t group = lanes::groupOf(c);

  laneGroups_.clear();
  for (CircuitId m = windowBase; m < windowEnd; ++m) {
    if (!alive_[m] || phaseCircuitStamp_[m] != phaseEpoch_ ||
        laneDoneStamp_[m] == phaseEpoch_) {
      continue;
    }
    laneDoneStamp_[m] = phaseEpoch_;
    const std::uint64_t sig = seedSignature(m);
    bool placed = false;
    for (LaneGroup& g : laneGroups_) {
      // seedSig_[g.leader] is fresh: seedSignature ran when g was formed.
      if (seedSig_[g.leader] == sig &&
          curFaultySeeds_[g.leader] == curFaultySeeds_[m]) {
        g.mateMask |= 1u << lanes::laneOf(m);
        placed = true;
        break;
      }
    }
    if (!placed) laneGroups_.push_back({m, 0});
  }

  // Process each share-group: the leader evaluates once for all candidates;
  // candidates that fail the read match elect the lowest failure as the next
  // round's leader over the remaining failures (their event lists are still
  // identical), until everyone is settled. A member left alone takes the
  // scalar path unchanged.
  bool attempted = false;
  bool anyShared = false;
  for (const LaneGroup& g : laneGroups_) {
    CircuitId lead = g.leader;
    std::uint32_t pending = g.mateMask;
    if (pending != 0) attempted = true;
    while (true) {
      if (pending == 0) {
        processFaultyCircuit(lead, coerce);
        break;
      }
      const std::uint32_t survived = processLaneLeader(lead, pending, coerce);
      if (survived != 0) anyShared = true;
      pending &= ~survived;
      if (pending == 0) break;
      const std::uint32_t lane =
          static_cast<std::uint32_t>(std::countr_zero(pending));
      pending &= pending - 1;
      lead = lanes::circuitAt(group, lane);
    }
  }

  // Feed the backoff: only genuine attempts carry information (a window of
  // singletons neither pays match costs nor proves anything). Success only
  // decrements the streak — a window that shares once in a while but mostly
  // fails stays mostly skipped, because a rare share saves less than the
  // steady match costs it would re-enable. Hinted windows bypass the check
  // above, so feeding their counters would be dead state; skip them.
  if (attempted && windowHinted_[widx] == 0) {
    if (anyShared) {
      if (windowFailStreak_[widx] > 0) --windowFailStreak_[widx];
      windowSkipUntil_[widx] = 0;
    } else {
      const std::uint32_t s =
          std::min<std::uint32_t>(windowFailStreak_[widx] + 1, kMaxShareBackoff);
      windowFailStreak_[widx] = static_cast<std::uint8_t>(s);
      windowSkipUntil_[widx] = phaseEpoch_ + (1u << s);
    }
  }
}

std::uint32_t ConcurrentFaultSimulator::processLaneLeader(
    CircuitId c, std::uint32_t candMask, bool coerce) {
  const std::uint32_t group = lanes::groupOf(c);
  // Evaluate the leader under the read-matching view. Buffering is identical
  // to processFaultyCircuit; only the view differs. The view filters
  // liveCandMask_ on each first-visit read, so by the end of the evaluation
  // the mask holds exactly the mates that observably match the leader's
  // complete read set — and a doomed attempt stops paying match costs the
  // moment the mask hits zero.
  ++readGen_;
  leaderCircuit_ = c;
  laneGroup_ = group;
  liveCandMask_ = candMask;
  const std::uint64_t solverEvals0 = solver_.nodeEvals();
  const std::uint64_t memoEvals0 = memoReplayedEvals_;
  const LaneLeaderView view{this, c};
  vicBuilder_.newGeneration();
  faultyResults_.clear();
  faultyChanges_.clear();
  for (const NodeId seed : curFaultySeeds_[c]) {
    if (!vicBuilder_.grow(view, seed, vic_)) continue;
    solveMemoized(vic_, newStates_);
    for (std::size_t i = 0; i < vic_.size(); ++i) {
      const NodeId n = vic_.members[i];
      const State pre = vic_.memberCharge[i];
      State next = newStates_[i];
      if (coerce && next != pre) next = State::SX;
      faultyResults_.emplace_back(n, next);
      if (next != pre) faultyChanges_.push_back({n, pre, next});
    }
  }

  // The surviving mates observably match the leader's complete read set: a
  // sharing mate reads every visited node to the same value (records checked
  // as word lanes against the circuit-independent pre-phase background), is
  // not stuck at any read node (stuckness moves the vicinity boundary), and
  // does not override any read transistor. Matching ran against pre-commit
  // state — the same state the leader evaluation observed.
  candMask = liveCandMask_;

  // Commit-side agreement: the gate-toggle scan and its scheduling guards
  // consult overlays too, so a sharing mate must agree with the leader on
  // every overlay the leader's changes will touch.
  for (const FaultyChange& ch : faultyChanges_) {
    if (candMask == 0) break;
    for (const TransId t : net_.node(ch.node).gateOf) {
      const auto& tr = net_.transistor(t);
      if (tr.isFaultDevice()) continue;
      if (findOverride(transOverride_[t.value], c) != nullptr) {
        candMask = 0;  // leader skips this toggle; unoverridden mates would not
        break;
      }
      candMask &= ~overrideLaneMask(t, group);
      if (conductionState(tr.type, ch.oldValue) !=
          conductionState(tr.type, ch.newValue)) {
        for (const NodeId nb : {tr.source, tr.drain}) {
          if (!net_.isInput(nb)) continue;
          if (isStuckNode(nb, c)) {
            candMask = 0;  // leader seeds a stuck input; non-stuck mates skip
            break;
          }
          candMask &= ~stuckLaneMask(nb, group);
        }
        if (candMask == 0) break;
      }
    }
  }

  // Lane-masked commit: one word operation reconciles the leader and every
  // sharing mate at each result node, exactly equivalent to per-circuit
  // reconcile calls.
  const std::uint32_t sharedMask = candMask | (1u << lanes::laneOf(c));
  for (const auto& [n, v] : faultyResults_) {
    const StateTable::LaneCommit lc = table_.commitLanes(n, group, sharedMask, v);
    if (lc.insertedMask != 0) {
      std::uint32_t m = lc.insertedMask;
      while (m != 0) {
        const std::uint32_t l = static_cast<std::uint32_t>(std::countr_zero(m));
        m &= m - 1;
        touchedInsert(lanes::circuitAt(group, l), n);
      }
      const auto delta = static_cast<std::int32_t>(std::popcount(lc.insertedMask));
      addRecordWatch(n, delta);
      divCount_[n.value] += static_cast<std::uint32_t>(delta);
    } else if (lc.erasedMask != 0) {
      const auto delta = static_cast<std::int32_t>(std::popcount(lc.erasedMask));
      addRecordWatch(n, -delta);
      divCount_[n.value] -= static_cast<std::uint32_t>(delta);
    }
  }

  // Gate toggles schedule next-phase events for the leader and every
  // sharing mate (mates were proven override-free on toggling transistors;
  // the leader keeps its own scalar-path override check).
  for (const FaultyChange& ch : faultyChanges_) {
    for (const TransId t : net_.node(ch.node).gateOf) {
      const auto& tr = net_.transistor(t);
      if (tr.isFaultDevice()) continue;
      if (conductionState(tr.type, ch.oldValue) ==
          conductionState(tr.type, ch.newValue)) {
        continue;
      }
      if (findOverride(transOverride_[t.value], c) == nullptr) {
        scheduleFaulty(c, tr.source);
        scheduleFaulty(c, tr.drain);
      }
      std::uint32_t m = candMask;
      while (m != 0) {
        const std::uint32_t l = static_cast<std::uint32_t>(std::countr_zero(m));
        m &= m - 1;
        scheduleFaulty(lanes::circuitAt(group, l), tr.source);
        scheduleFaulty(lanes::circuitAt(group, l), tr.drain);
      }
    }
  }

  const std::uint32_t nShared =
      static_cast<std::uint32_t>(std::popcount(candMask));
  if (nShared != 0) {
    // Each sharing mate, processed alone, would have grown identical
    // vicinities and spent exactly the leader's member evaluations (whether
    // solver-computed or memo-replayed), so credit that work: nodeEvals()
    // stays invariant across lane widths, keeping per-pattern rows and
    // checksummed work counts bit-identical to scalar runs.
    const std::uint64_t solverDelta = solver_.nodeEvals() - solverEvals0;
    const std::uint64_t memoDelta = memoReplayedEvals_ - memoEvals0;
    solver_.creditLanes(solverDelta * nShared);
    memoReplayedEvals_ += memoDelta * nShared;
  }
  return candMask;
}

std::uint32_t ConcurrentFaultSimulator::observe(
    const std::vector<NodeId>& outputs, std::uint32_t patternIndex) {
  dropQueue_.clear();
  std::uint32_t newly = 0;
  for (const NodeId out : outputs) {
    const State g = table_.good(out);
    const auto consider = [&](CircuitId c, State s) {
      if (!alive_[c]) return;
      if (detectedAt_[c - 1] >= 0) return;  // already detected (no-drop mode)
      if (s == g) return;
      if (options_.policy == DetectionPolicy::DefiniteOnly &&
          (!isDefinite(g) || !isDefinite(s))) {
        ++potentialDetections_;
        return;
      }
      detectedAt_[c - 1] = static_cast<std::int32_t>(patternIndex);
      ++newly;
      dropQueue_.push_back(c);
    };
    for (const Override& o : nodeStuck_[out.value]) consider(o.circuit, o.value);
    table_.forEachRecord(out, [&](CircuitId rc, State rv) { consider(rc, rv); });
  }
  if (options_.dropDetected) {
    for (const CircuitId c : dropQueue_) dropCircuit(c);
  }
  return newly;
}

void ConcurrentFaultSimulator::touchedInsert(CircuitId c, NodeId n) {
  touched_[c].push_back(n);
  if (touched_[c].size() >= touchedCap_[c]) compactTouched(c);
}

void ConcurrentFaultSimulator::compactTouched(CircuitId c) {
  auto& v = touched_[c];
  std::sort(v.begin(), v.end(),
            [](NodeId a, NodeId b) { return a.value < b.value; });
  v.erase(std::unique(v.begin(), v.end()), v.end());
  std::erase_if(v, [&](NodeId n) { return !table_.hasRecord(n, c); });
  touchedCap_[c] =
      std::max<std::uint32_t>(16, 2 * static_cast<std::uint32_t>(v.size()));
}

void ConcurrentFaultSimulator::dropCircuit(CircuitId c) {
  if (!alive_[c]) return;
  alive_[c] = 0;
  --aliveCount_;
  for (const NodeId n : touched_[c]) {
    // touched_ may hold duplicates (re-divergence after convergence); only a
    // real erase decrements the watch counts.
    if (table_.erase(n, c)) {
      addRecordWatch(n, -1);
      --divCount_[n.value];
    }
  }
  touched_[c].clear();
  touched_[c].shrink_to_fit();
  faultySeeds_[c].clear();
  removeOverlay(c);
}

void ConcurrentFaultSimulator::removeOverlay(CircuitId c) {
  // A dropped circuit's static overlays would otherwise be scanned by every
  // future trigger collection and faulty-view lookup; removing them is what
  // makes the paper's falling per-pattern cost curve steep. The fault tells
  // us exactly where the overlays live.
  if (transientMode_) {
    // The only overlay a transient machine can hold is its active pulse.
    TransientMachine& m = transient_[c - 1];
    if (m.pulseActive) {
      m.pulseActive = false;
      auto& v = nodeStuck_[m.node.value];
      for (auto it = v.begin(); it != v.end(); ++it) {
        if (it->circuit == c) {
          v.erase(it);
          break;
        }
      }
      addStuckWatch(m.node, -1);
      --divCount_[m.node.value];
    }
    return;
  }
  const Fault& f = faults_[c - 1];
  const auto removeFrom = [c](std::vector<Override>& v) {
    for (auto it = v.begin(); it != v.end(); ++it) {
      if (it->circuit == c) {
        v.erase(it);
        return;
      }
    }
  };
  switch (f.kind) {
    case FaultKind::NodeStuck:
      removeFrom(nodeStuck_[f.node.value]);
      addStuckWatch(f.node, -1);
      --divCount_[f.node.value];
      break;
    case FaultKind::TransistorStuck:
    case FaultKind::FaultDevice:
      removeFrom(transOverride_[f.transistor.value]);
      addTransWatch(f.transistor, -1);
      break;
  }
}

// The three watch helpers mirror collectTriggers' member scan: each counts,
// at every node the scan could mark from, one unit per divergence source.

void ConcurrentFaultSimulator::addRecordWatch(NodeId m, std::int32_t delta) {
  watchCount_[m.value] += static_cast<std::uint32_t>(delta);  // member scan
  for (const TransId t : net_.node(m).gateOf) {               // gate scan
    const auto& tr = net_.transistor(t);
    if (tr.isFaultDevice()) continue;
    watchCount_[tr.source.value] += static_cast<std::uint32_t>(delta);
    watchCount_[tr.drain.value] += static_cast<std::uint32_t>(delta);
  }
}

void ConcurrentFaultSimulator::addStuckWatch(NodeId n, std::int32_t delta) {
  // A stuck overlay influences the same member/gate scans as a record...
  addRecordWatch(n, delta);
  if (net_.isInput(n)) {  // ...plus the stuck-input-neighbour scan
    for (const TransId t : net_.node(n).channelOf) {
      watchCount_[net_.transistor(t).otherEnd(n).value] +=
          static_cast<std::uint32_t>(delta);
    }
  }
}

void ConcurrentFaultSimulator::addTransWatch(TransId t, std::int32_t delta) {
  const auto& tr = net_.transistor(t);  // channel-override scan
  watchCount_[tr.source.value] += static_cast<std::uint32_t>(delta);
  watchCount_[tr.drain.value] += static_cast<std::uint32_t>(delta);
}

// --- per-phase vicinity-solution memo (see header for the rationale) -------

namespace {

inline void hashMix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

}  // namespace

std::uint64_t ConcurrentFaultSimulator::memoHash(const Vicinity& vic) {
  std::uint64_t h = vic.members.size();
  for (std::size_t i = 0; i < vic.members.size(); ++i) {
    hashMix(h, (std::uint64_t(vic.members[i].value) << 2) |
                   std::uint64_t(vic.memberCharge[i]));
  }
  for (const Vicinity::Edge& e : vic.edges) {
    hashMix(h, (std::uint64_t(e.a) << 32) | (std::uint64_t(e.b) << 10) |
                   (std::uint64_t(e.strength) << 1) | std::uint64_t(e.definite));
  }
  for (const Vicinity::InputEdge& ie : vic.inputEdges) {
    hashMix(h, (std::uint64_t(ie.member) << 32) |
                   (std::uint64_t(ie.strength) << 4) |
                   (std::uint64_t(ie.value) << 1) | std::uint64_t(ie.definite));
  }
  return h;
}

void ConcurrentFaultSimulator::memoReset() {
  memoEntries_.clear();
  memoMembers_.clear();
  memoCharges_.clear();
  memoEdges_.clear();
  memoInputs_.clear();
  memoSolutions_.clear();
  ++memoStamp_;
  if (memoSlots_.empty()) {
    memoSlots_.assign(1024, 0);
    memoSlotStamp_.assign(1024, 0);
  }
}

bool ConcurrentFaultSimulator::memoLookup(std::uint64_t hash,
                                          const Vicinity& vic,
                                          std::vector<State>& out) const {
  const std::size_t mask = memoSlots_.size() - 1;
  for (std::size_t i = hash & mask; memoSlotStamp_[i] == memoStamp_;
       i = (i + 1) & mask) {
    const MemoEntry& e = memoEntries_[memoSlots_[i] - 1];
    if (e.hash != hash || e.memberCount != vic.members.size() ||
        e.edgeCount != vic.edges.size() ||
        e.inputCount != vic.inputEdges.size()) {
      continue;
    }
    bool equal = true;
    for (std::uint32_t k = 0; equal && k < e.memberCount; ++k) {
      equal = memoMembers_[e.membersOff + k].value == vic.members[k].value &&
              memoCharges_[e.membersOff + k] == vic.memberCharge[k];
    }
    for (std::uint32_t k = 0; equal && k < e.edgeCount; ++k) {
      equal = memoEdges_[e.edgesOff + k] == vic.edges[k];
    }
    for (std::uint32_t k = 0; equal && k < e.inputCount; ++k) {
      equal = memoInputs_[e.inputsOff + k] == vic.inputEdges[k];
    }
    if (equal) {
      out.assign(memoSolutions_.begin() + e.solutionOff,
                 memoSolutions_.begin() + e.solutionOff + e.memberCount);
      return true;
    }
  }
  return false;
}

void ConcurrentFaultSimulator::memoStore(std::uint64_t hash,
                                         const Vicinity& vic,
                                         const std::vector<State>& solution) {
  MemoEntry e;
  e.hash = hash;
  e.membersOff = static_cast<std::uint32_t>(memoMembers_.size());
  e.memberCount = static_cast<std::uint32_t>(vic.members.size());
  e.edgesOff = static_cast<std::uint32_t>(memoEdges_.size());
  e.edgeCount = static_cast<std::uint32_t>(vic.edges.size());
  e.inputsOff = static_cast<std::uint32_t>(memoInputs_.size());
  e.inputCount = static_cast<std::uint32_t>(vic.inputEdges.size());
  e.solutionOff = static_cast<std::uint32_t>(memoSolutions_.size());
  memoMembers_.insert(memoMembers_.end(), vic.members.begin(),
                      vic.members.end());
  memoCharges_.insert(memoCharges_.end(), vic.memberCharge.begin(),
                      vic.memberCharge.end());
  memoEdges_.insert(memoEdges_.end(), vic.edges.begin(), vic.edges.end());
  memoInputs_.insert(memoInputs_.end(), vic.inputEdges.begin(),
                     vic.inputEdges.end());
  memoSolutions_.insert(memoSolutions_.end(), solution.begin(),
                        solution.begin() + vic.members.size());
  memoEntries_.push_back(e);

  // Keep the open-addressing table at most half full; rebuild (rare) keeps
  // probes short even in the injection phases where every circuit is active.
  if (memoEntries_.size() * 2 > memoSlots_.size()) {
    const std::size_t newSize = memoSlots_.size() * 2;
    memoSlots_.assign(newSize, 0);
    memoSlotStamp_.assign(newSize, 0);
    const std::size_t mask = newSize - 1;
    for (std::uint32_t idx = 0; idx < memoEntries_.size(); ++idx) {
      std::size_t i = memoEntries_[idx].hash & mask;
      while (memoSlotStamp_[i] == memoStamp_) i = (i + 1) & mask;
      memoSlotStamp_[i] = memoStamp_;
      memoSlots_[i] = idx + 1;
    }
    return;
  }
  const std::size_t mask = memoSlots_.size() - 1;
  std::size_t i = hash & mask;
  while (memoSlotStamp_[i] == memoStamp_) i = (i + 1) & mask;
  memoSlotStamp_[i] = memoStamp_;
  memoSlots_[i] =
      static_cast<std::uint32_t>(memoEntries_.size());  // last entry, 1-based
}

void ConcurrentFaultSimulator::solveMemoized(const Vicinity& vic,
                                             std::vector<State>& out) {
  // Edge-free vicinities take the solver's direct path: it is already
  // cheaper than a memo probe would be.
  if (vic.edges.empty()) {
    solver_.solve(vic, out);
    return;
  }
  const std::uint64_t h = memoHash(vic);
  ++memoProbes_;
  if (memoLookup(h, vic, out)) {
    ++memoHits_;
    memoReplayedEvals_ += vic.members.size();
    return;
  }
  solver_.solve(vic, out);
  memoStore(h, vic, out);
}

State ConcurrentFaultSimulator::faultyState(NodeId n, CircuitId c) const {
  FMOSSIM_ASSERT(c >= 1 && c <= numMachines_, "faultyState: bad circuit id");
  return stateIn(n, c);
}

FaultSimResult ConcurrentFaultSimulator::run(const TestSequence& seq) {
  return run(seq, nullptr);
}

FaultSimResult ConcurrentFaultSimulator::run(
    const TestSequence& seq,
    const std::function<void(const PatternStat&)>& onPattern) {
  FMOSSIM_ASSERT(!ran_, "ConcurrentFaultSimulator::run may only be called once");
  FMOSSIM_ASSERT(!transientMode_,
                 "transient-mode engines run via runTransient/runTransientTail");
  ran_ = true;
  if (replay_ != nullptr) {
    FMOSSIM_ASSERT(
        replay_->seqFingerprint() == GoodMachineCheckpoint::fingerprint(seq),
        "checkpoint was recorded for a different test sequence");
  }
  FaultSimResult res;
  res.numFaults = numMachines_;
  res.numPatterns = seq.size();
  res.droppedDetected = options_.dropDetected;
  res.perPattern.reserve(seq.size());

  Timer total;
  const std::uint64_t evalsAtStart = nodeEvals();
  std::uint32_t cumulative = 0;
  bool earlyExit = false;

  for (std::uint32_t pi = 0; pi < seq.size(); ++pi) {
    Timer patternTimer;
    const std::uint64_t evalsBefore = nodeEvals();
    for (const InputSetting& setting : seq[pi].settings) {
      applySetting(setting.span());
    }
    const std::uint32_t newly = observe(seq.outputs(), pi);
    if (record_ != nullptr) record_->endPattern();
    cumulative += newly;

    PatternStat st;
    st.index = pi;
    st.seconds = patternTimer.seconds();
    st.nodeEvals = nodeEvals() - evalsBefore;
    st.newlyDetected = newly;
    st.cumulativeDetected = cumulative;
    st.aliveAfter = aliveCount_;
    res.perPattern.push_back(st);
    if (onPattern) onPattern(st);

    // Replay-mode early exit: with every faulty circuit detected and
    // dropped, the remaining patterns would be pure good-machine replay.
    // The rows they would produce are fully determined (no detections, no
    // live circuits, no faulty solver work) and the checkpoint supplies the
    // end-of-sequence good states, so the tail is synthesized instead of
    // simulated — the lever that lets a fault batch cost only as many
    // patterns as its hardest-to-detect fault needs.
    if (replay_ != nullptr && options_.dropDetected && aliveCount_ == 0 &&
        pi + 1 < seq.size()) {
      for (std::uint32_t rest = pi + 1; rest < seq.size(); ++rest) {
        PatternStat tail;
        tail.index = rest;
        tail.cumulativeDetected = cumulative;
        res.perPattern.push_back(tail);
        if (onPattern) onPattern(tail);
      }
      earlyExit = true;
      break;
    }
  }

  res.detectedAtPattern = detectedAt_;
  res.numDetected = cumulative;
  res.maxAlive = maxAliveObserved_;
  if (earlyExit) {
    res.finalGoodStates = replay_->finalGoodStates();
  } else {
    res.finalGoodStates.reserve(net_.numNodes());
    for (std::uint32_t n = 0; n < net_.numNodes(); ++n) {
      res.finalGoodStates.push_back(table_.good(NodeId(n)));
    }
  }
  res.finalRecords = table_.totalRecords();
  res.potentialDetections = potentialDetections_;
  res.totalSeconds = total.seconds();
  // One engine, one thread: aggregate engine time is the wall clock.
  res.totalCpuSeconds = res.totalSeconds;
  res.totalNodeEvals = nodeEvals() - evalsAtStart;
  return res;
}

FaultSimResult ConcurrentFaultSimulator::run(
    PatternSource& source, RowSink* sink,
    const std::function<void(const PatternStat&)>& onPattern) {
  FMOSSIM_ASSERT(!ran_, "ConcurrentFaultSimulator::run may only be called once");
  ran_ = true;
  FMOSSIM_ASSERT(replay_ == nullptr,
                 "streaming run does not take a replay checkpoint "
                 "(runReplay drives the sequence from the trace itself)");
  FMOSSIM_ASSERT(!transientMode_,
                 "transient-mode engines run via runTransient/runTransientTail");
  FaultSimResult res;
  res.numFaults = numMachines_;
  res.droppedDetected = options_.dropDetected;

  Timer total;
  const std::uint64_t evalsAtStart = nodeEvals();
  std::uint32_t cumulative = 0;
  std::uint64_t pi = 0;
  Pattern p;
  while (source.next(p)) {
    Timer patternTimer;
    const std::uint64_t evalsBefore = nodeEvals();
    for (const InputSetting& setting : p.settings) {
      applySetting(setting.span());
    }
    const std::uint32_t newly =
        observe(source.outputs(), static_cast<std::uint32_t>(pi));
    if (record_ != nullptr) record_->endPattern();
    cumulative += newly;

    PatternStat st;
    st.index = static_cast<std::uint32_t>(pi);
    st.seconds = patternTimer.seconds();
    st.nodeEvals = nodeEvals() - evalsBefore;
    st.newlyDetected = newly;
    st.cumulativeDetected = cumulative;
    st.aliveAfter = aliveCount_;
    if (sink != nullptr) sink->row(st);
    if (onPattern) onPattern(st);
    ++pi;
  }
  res.numPatterns = pi;

  res.detectedAtPattern = detectedAt_;
  res.numDetected = cumulative;
  res.maxAlive = maxAliveObserved_;
  res.finalGoodStates.reserve(net_.numNodes());
  for (std::uint32_t n = 0; n < net_.numNodes(); ++n) {
    res.finalGoodStates.push_back(table_.good(NodeId(n)));
  }
  res.finalRecords = table_.totalRecords();
  res.potentialDetections = potentialDetections_;
  res.totalSeconds = total.seconds();
  res.totalCpuSeconds = res.totalSeconds;
  res.totalNodeEvals = nodeEvals() - evalsAtStart;
  return res;
}

FaultSimResult ConcurrentFaultSimulator::runReplay(
    RowSink* sink, const std::function<void(const PatternStat&)>& onPattern) {
  FMOSSIM_ASSERT(!ran_, "ConcurrentFaultSimulator::run may only be called once");
  ran_ = true;
  FMOSSIM_ASSERT(replay_ != nullptr,
                 "runReplay requires a replay-mode engine (checkpoint given)");
  FMOSSIM_ASSERT(!transientMode_,
                 "transient-mode engines run via runTransient/runTransientTail");
  FaultSimResult res;
  res.numFaults = numMachines_;
  res.numPatterns = replay_->numPatterns();
  res.droppedDetected = options_.dropDetected;

  Timer total;
  const std::uint64_t evalsAtStart = nodeEvals();
  std::uint32_t cumulative = 0;
  bool earlyExit = false;
  std::uint64_t patternIndex = 0;
  const std::uint32_t numSettles = replay_->numSettles();

  // Settle 0 (the initial all-X evaluation) already ran in the constructor.
  // Each further settle is driven entirely from the trace: position the
  // reader, apply the settle's recorded input changes exactly as
  // applySetting would have, then settle (the guard in settleAll skips its
  // own replayBeginSettle). Pattern boundaries come from the recorded
  // end-of-pattern bits, so no TestSequence or PatternSource is needed.
  Timer patternTimer;
  std::uint64_t evalsBefore = nodeEvals();
  for (std::uint32_t si = 1; si < numSettles; ++si) {
    replayBeginSettle();
    replayEntered_ = true;
    for (const auto& ch : replayReader_->inputChanges()) {
      const State old = table_.good(ch.node);
      table_.setGood(ch.node, ch.value);
      scheduleSettingSeeds(ch.node, old);
    }
    settleAll();
    if (!replay_->patternEndsAtSettle(si)) continue;

    const std::uint32_t newly = observe(
        replay_->outputs(), static_cast<std::uint32_t>(patternIndex));
    cumulative += newly;

    PatternStat st;
    st.index = static_cast<std::uint32_t>(patternIndex);
    st.seconds = patternTimer.seconds();
    st.nodeEvals = nodeEvals() - evalsBefore;
    st.newlyDetected = newly;
    st.cumulativeDetected = cumulative;
    st.aliveAfter = aliveCount_;
    if (sink != nullptr) sink->row(st);
    if (onPattern) onPattern(st);
    ++patternIndex;

    // Same early exit as the materialized replay run: with every circuit
    // detected and dropped the tail rows are fully determined, so they are
    // synthesized instead of simulated.
    if (options_.dropDetected && aliveCount_ == 0 &&
        patternIndex < res.numPatterns) {
      for (std::uint64_t rest = patternIndex; rest < res.numPatterns; ++rest) {
        PatternStat tail;
        tail.index = static_cast<std::uint32_t>(rest);
        tail.cumulativeDetected = cumulative;
        if (sink != nullptr) sink->row(tail);
        if (onPattern) onPattern(tail);
      }
      earlyExit = true;
      break;
    }
    patternTimer.reset();
    evalsBefore = nodeEvals();
  }

  res.detectedAtPattern = detectedAt_;
  res.numDetected = cumulative;
  res.maxAlive = maxAliveObserved_;
  if (earlyExit) {
    res.finalGoodStates = replay_->finalGoodStates();
  } else {
    res.finalGoodStates.reserve(net_.numNodes());
    for (std::uint32_t n = 0; n < net_.numNodes(); ++n) {
      res.finalGoodStates.push_back(table_.good(NodeId(n)));
    }
  }
  res.finalRecords = table_.totalRecords();
  res.potentialDetections = potentialDetections_;
  res.totalSeconds = total.seconds();
  res.totalCpuSeconds = res.totalSeconds;
  res.totalNodeEvals = nodeEvals() - evalsAtStart;
  return res;
}

// --- transient (SEU) runs (see header and faults/transient.hpp) ------------

void ConcurrentFaultSimulator::loadTransientSpecs(
    std::span<const TransientFault> specs, std::uint64_t numPatterns) {
  if (specs.size() != numMachines_) {
    throw Error(
        "transient run: spec count does not match the engine's machine count");
  }
  for (std::uint32_t i = 0; i < numMachines_; ++i) {
    const TransientFault& f = specs[i];
    if (!f.node.valid() || f.node.value >= net_.numNodes()) {
      throw Error("transient fault references an unknown node");
    }
    if (net_.isInput(f.node)) {
      throw Error("transient fault on input node '" + net_.node(f.node).name +
                  "'");
    }
    if (f.atPattern >= numPatterns) {
      throw Error("transient fault '" + f.name +
                  "' injects past the end of the sequence");
    }
    TransientMachine& m = transient_[i];
    m.node = f.node;
    m.atPattern = f.atPattern;
    m.pulsePatterns = f.pulsePatterns;
  }
}

void ConcurrentFaultSimulator::scheduleTransientSite(CircuitId c, NodeId n) {
  // Exactly a node-stuck injection's event seeds: the node's own vicinity
  // must re-settle under the perturbed charge, and every transistor it
  // gates may now conduct differently in circuit c.
  scheduleFaulty(c, n);
  for (const TransId t : net_.node(n).gateOf) {
    const auto& tr = net_.transistor(t);
    scheduleFaulty(c, tr.source);
    scheduleFaulty(c, tr.drain);
  }
}

void ConcurrentFaultSimulator::injectTransientFlip(CircuitId c) {
  TransientMachine& m = transient_[c - 1];
  m.injected = true;
  const State good = table_.good(m.node);
  const State flipped = good == State::S0   ? State::S1
                        : good == State::S1 ? State::S0
                                            : State::SX;
  if (m.pulsePatterns == 0) {
    // Instantaneous flip: a plain divergence record (flipping an X is a
    // ternary no-op — the machine trivially stays silent).
    if (flipped == good) return;
    const StateTable::Reconciled rec = table_.reconcile(m.node, c, flipped);
    if (rec.inserted) {
      touchedInsert(c, m.node);
      addRecordWatch(m.node, +1);
      ++divCount_[m.node.value];
    }
    scheduleTransientSite(c, m.node);
    return;
  }
  // Pulse: hold the node at the flipped value (a temporary stuck-at — the
  // node becomes input-like in circuit c until release). Held even when
  // flipped == good == X: the good circuit may move on while the struck
  // node stays pinned.
  m.pulseActive = true;
  m.forcedValue = flipped;
  auto& v = nodeStuck_[m.node.value];
  const auto it = std::lower_bound(
      v.begin(), v.end(), c,
      [](const Override& o, CircuitId cc) { return o.circuit < cc; });
  v.insert(it, Override{c, flipped});
  addStuckWatch(m.node, +1);
  ++divCount_[m.node.value];
  scheduleTransientSite(c, m.node);
}

void ConcurrentFaultSimulator::releaseTransientPulse(CircuitId c) {
  TransientMachine& m = transient_[c - 1];
  FMOSSIM_ASSERT(m.pulseActive, "releaseTransientPulse without active pulse");
  m.pulseActive = false;
  auto& v = nodeStuck_[m.node.value];
  for (auto it = v.begin(); it != v.end(); ++it) {
    if (it->circuit == c) {
      v.erase(it);
      break;
    }
  }
  addStuckWatch(m.node, -1);
  --divCount_[m.node.value];
  // The held value stays behind as charge. A stuck node never carries a
  // record in its own circuit (it is input-like there), so reconciliation
  // inserts at most.
  if (m.forcedValue != table_.good(m.node)) {
    const StateTable::Reconciled rec =
        table_.reconcile(m.node, c, m.forcedValue);
    if (rec.inserted) {
      touchedInsert(c, m.node);
      addRecordWatch(m.node, +1);
      ++divCount_[m.node.value];
    }
  }
  scheduleTransientSite(c, m.node);
}

SettleResult ConcurrentFaultSimulator::settleInPlace() {
  // An injection or release perturbs circuits *between* patterns, where the
  // good machine is quiet: in replay mode the cursor must not advance (there
  // is no recorded settle for this perturbation), and the current settle's
  // phases are already consumed, so only faulty activity runs — exactly what
  // a self-simulating engine does with an empty good queue.
  if (replay_ != nullptr) replayEntered_ = true;
  return settleAll();
}

bool ConcurrentFaultSimulator::hasDivergence(CircuitId c) const {
  FMOSSIM_ASSERT(transientMode_, "hasDivergence is a transient-mode query");
  FMOSSIM_ASSERT(c >= 1 && c <= numMachines_, "hasDivergence: bad circuit id");
  const TransientMachine& m = transient_[c - 1];
  if (m.pulseActive && m.forcedValue != table_.good(m.node)) return true;
  for (const NodeId n : touched_[c]) {
    const StateTable::Lookup r = table_.lookup(n, c);
    if (r.diverges && r.value != table_.good(n)) return true;
  }
  return false;
}

FaultSimResult ConcurrentFaultSimulator::runTransient(
    const TestSequence& seq, std::span<const TransientFault> specs) {
  FMOSSIM_ASSERT(!ran_, "ConcurrentFaultSimulator::run may only be called once");
  FMOSSIM_ASSERT(transientMode_ && replay_ == nullptr,
                 "runTransient is the naive (self-simulating) transient run");
  ran_ = true;
  loadTransientSpecs(specs, seq.size());

  FaultSimResult res;
  res.numFaults = numMachines_;
  res.numPatterns = seq.size();
  res.droppedDetected = options_.dropDetected;

  Timer total;
  const std::uint64_t evalsAtStart = nodeEvals();
  std::uint32_t cumulative = 0;

  for (std::uint32_t pi = 0; pi < seq.size(); ++pi) {
    for (const InputSetting& setting : seq[pi].settings) {
      applySetting(setting.span());
    }
    cumulative += observe(seq.outputs(), pi);

    // Injections and pulse releases at this pattern boundary, then settle
    // the perturbation in place.
    bool perturbed = false;
    for (std::uint32_t i = 0; i < numMachines_; ++i) {
      TransientMachine& m = transient_[i];
      const CircuitId c = i + 1;
      if (!m.injected && m.atPattern == pi) {
        m.injected = true;
        if (alive_[c]) {
          injectTransientFlip(c);
          perturbed = true;
        }
      } else if (m.pulseActive && alive_[c] &&
                 pi == m.atPattern + m.pulsePatterns) {
        releaseTransientPulse(c);
        perturbed = true;
      }
    }
    if (perturbed) settleInPlace();
  }

  res.detectedAtPattern = detectedAt_;
  res.numDetected = cumulative;
  res.maxAlive = maxAliveObserved_;
  res.finalGoodStates.reserve(net_.numNodes());
  for (std::uint32_t n = 0; n < net_.numNodes(); ++n) {
    res.finalGoodStates.push_back(table_.good(NodeId(n)));
  }
  res.finalRecords = table_.totalRecords();
  res.potentialDetections = potentialDetections_;
  res.totalSeconds = total.seconds();
  res.totalCpuSeconds = res.totalSeconds;
  res.totalNodeEvals = nodeEvals() - evalsAtStart;
  return res;
}

FaultSimResult ConcurrentFaultSimulator::runTransientTail(
    std::span<const TransientFault> specs) {
  FMOSSIM_ASSERT(!ran_, "ConcurrentFaultSimulator::run may only be called once");
  FMOSSIM_ASSERT(transientMode_ && replay_ != nullptr,
                 "runTransientTail requires a checkpoint-resumed engine");
  ran_ = true;
  loadTransientSpecs(specs, replay_->numPatterns());
  for (const TransientFault& f : specs) {
    if (f.atPattern != resumeAfterPattern_) {
      throw Error("runTransientTail: injection '" + f.name +
                  "' is not at the engine's resume instant");
    }
  }

  FaultSimResult res;
  res.numFaults = numMachines_;
  res.numPatterns = replay_->numPatterns();
  res.droppedDetected = options_.dropDetected;

  Timer total;
  const std::uint64_t evalsAtStart = nodeEvals();

  // Flip every machine at the resumed boundary and settle in place — the
  // same perturbation the naive run applies after observing this pattern.
  for (CircuitId c = 1; c <= numMachines_; ++c) {
    transient_[c - 1].injected = true;
    injectTransientFlip(c);
  }
  settleInPlace();

  std::uint32_t cumulative = 0;
  std::uint64_t patternIndex = resumeAfterPattern_ + 1;
  const std::uint32_t numSettles = replay_->numSettles();
  bool tailExited = false;

  for (std::uint32_t si = replaySettle_; si < numSettles; ++si) {
    replayBeginSettle();
    replayEntered_ = true;
    for (const auto& ch : replayReader_->inputChanges()) {
      const State old = table_.good(ch.node);
      table_.setGood(ch.node, ch.value);
      scheduleSettingSeeds(ch.node, old);
    }
    settleAll();
    if (!replay_->patternEndsAtSettle(si)) continue;

    cumulative += observe(replay_->outputs(),
                          static_cast<std::uint32_t>(patternIndex));

    // Pulse releases at this boundary (all injections share the resume
    // instant, so releases are the only mid-tail perturbations).
    bool perturbed = false;
    for (std::uint32_t i = 0; i < numMachines_; ++i) {
      TransientMachine& m = transient_[i];
      if (m.pulseActive && alive_[i + 1] &&
          patternIndex == m.atPattern + m.pulsePatterns) {
        releaseTransientPulse(i + 1);
        perturbed = true;
      }
    }
    if (perturbed) settleInPlace();
    ++patternIndex;

    // Every machine detected and dropped: the rest of the tail is pure
    // good-machine replay with nothing to observe — skip it.
    if (options_.dropDetected && aliveCount_ == 0) {
      tailExited = true;
      break;
    }
  }

  res.detectedAtPattern = detectedAt_;
  res.numDetected = cumulative;
  res.maxAlive = maxAliveObserved_;
  if (tailExited) {
    res.finalGoodStates = replay_->finalGoodStates();
  } else {
    res.finalGoodStates.reserve(net_.numNodes());
    for (std::uint32_t n = 0; n < net_.numNodes(); ++n) {
      res.finalGoodStates.push_back(table_.good(NodeId(n)));
    }
  }
  res.finalRecords = table_.totalRecords();
  res.potentialDetections = potentialDetections_;
  res.totalSeconds = total.seconds();
  res.totalCpuSeconds = res.totalSeconds;
  res.totalNodeEvals = nodeEvals() - evalsAtStart;
  return res;
}

}  // namespace fmossim
