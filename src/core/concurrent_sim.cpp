#include "core/concurrent_sim.hpp"

#include <algorithm>

namespace fmossim {

/// CircuitView over the good circuit's flat state.
struct GoodCircuitView {
  const ConcurrentFaultSimulator* s;
  State nodeState(NodeId n) const { return s->table_.good(n); }
  State conduction(TransId t) const { return s->cond0_[t.value]; }
  bool isInputNode(NodeId n) const { return s->net_.isInput(n); }
};

/// CircuitView over one faulty circuit: stuck nodes first, divergence
/// records next, pre-phase good values for nodes the good circuit changed
/// this phase, the live good state last. Conduction is derived from gate
/// states through the same pre-phase lens, except where statically
/// overridden by the circuit's fault.
struct FaultyCircuitView {
  const ConcurrentFaultSimulator* s;
  CircuitId c;
  State nodeState(NodeId n) const { return s->stateIn(n, c); }
  State conduction(TransId t) const { return s->conductionIn(t, c); }
  bool isInputNode(NodeId n) const {
    return s->net_.isInput(n) || s->isStuckNode(n, c);
  }
};

const ConcurrentFaultSimulator::Override* ConcurrentFaultSimulator::findOverride(
    const std::vector<Override>& v, CircuitId c) {
  const auto it = std::lower_bound(
      v.begin(), v.end(), c,
      [](const Override& o, CircuitId id) { return o.circuit < id; });
  return (it != v.end() && it->circuit == c) ? &*it : nullptr;
}

bool ConcurrentFaultSimulator::isStuckNode(NodeId n, CircuitId c) const {
  return findOverride(nodeStuck_[n.value], c) != nullptr;
}

State ConcurrentFaultSimulator::stuckValue(NodeId n, CircuitId c) const {
  const Override* o = findOverride(nodeStuck_[n.value], c);
  FMOSSIM_ASSERT(o != nullptr, "stuckValue on a non-stuck node");
  return o->value;
}

State ConcurrentFaultSimulator::stateIn(NodeId n, CircuitId c) const {
  if (const Override* o = findOverride(nodeStuck_[n.value], c)) return o->value;
  if (const StateRecord* r = table_.findRecord(n, c)) return r->value;
  if (goodOldStamp_[n.value] == phaseEpoch_) return goodOldValue_[n.value];
  return table_.good(n);
}

State ConcurrentFaultSimulator::conductionIn(TransId t, CircuitId c) const {
  if (const Override* o = findOverride(transOverride_[t.value], c)) {
    return o->value;
  }
  const auto& tr = net_.transistor(t);
  if (tr.isFaultDevice()) return *tr.goodConduction;
  return conductionState(tr.type, stateIn(tr.gate, c));
}

ConcurrentFaultSimulator::ConcurrentFaultSimulator(const Network& net,
                                                   const FaultList& faults,
                                                   FsimOptions options)
    : net_(net),
      faults_(faults),
      options_(options),
      table_(net),
      cond0_(net.numTransistors(), State::SX),
      nodeStuck_(net.numNodes()),
      transOverride_(net.numTransistors()),
      alive_(faults.size() + 1, 0),
      detectedAt_(faults.size(), -1),
      touched_(faults.size() + 1),
      goodSeedStamp_(net.numNodes(), 0),
      faultySeeds_(faults.size() + 1),
      circuitStamp_(faults.size() + 1, 0),
      curFaultySeeds_(faults.size() + 1),
      goodOldValue_(net.numNodes(), State::SX),
      goodOldStamp_(net.numNodes(), 0),
      phaseCircuitStamp_(faults.size() + 1, 0),
      vicBuilder_(net),
      solver_(net.domain()),
      triggerStamp_(faults.size() + 1, 0) {
  for (std::uint32_t t = 0; t < net_.numTransistors(); ++t) {
    const auto& tr = net_.transistor(TransId(t));
    cond0_[t] = tr.isFaultDevice()
                    ? *tr.goodConduction
                    : conductionState(tr.type, table_.good(tr.gate));
  }
  // Initial good-circuit evaluation of the whole (all-X) network.
  for (std::uint32_t n = 0; n < net_.numNodes(); ++n) {
    scheduleGood(NodeId(n));
  }
  inject();
  settleAll();
}

void ConcurrentFaultSimulator::inject() {
  for (std::uint32_t i = 0; i < faults_.size(); ++i) {
    const CircuitId c = i + 1;
    const Fault& f = faults_[i];
    alive_[c] = 1;
    ++aliveCount_;
    switch (f.kind) {
      case FaultKind::NodeStuck: {
        nodeStuck_[f.node.value].push_back({c, f.value});  // ascending c
        scheduleFaulty(c, f.node);
        for (const TransId t : net_.node(f.node).gateOf) {
          const auto& tr = net_.transistor(t);
          scheduleFaulty(c, tr.source);
          scheduleFaulty(c, tr.drain);
        }
        break;
      }
      case FaultKind::TransistorStuck:
      case FaultKind::FaultDevice: {
        transOverride_[f.transistor.value].push_back({c, f.value});
        const auto& tr = net_.transistor(f.transistor);
        scheduleFaulty(c, tr.source);
        scheduleFaulty(c, tr.drain);
        break;
      }
    }
  }
  maxAliveObserved_ = aliveCount_;
}

void ConcurrentFaultSimulator::scheduleGood(NodeId n) {
  if (net_.isInput(n)) return;
  if (goodSeedStamp_[n.value] == seedGen_) return;
  goodSeedStamp_[n.value] = seedGen_;
  goodSeeds_.push_back(n);
}

void ConcurrentFaultSimulator::scheduleFaulty(CircuitId c, NodeId n) {
  if (!alive_[c]) return;
  // A plain input node cannot change in circuit c; stuck nodes (input-like
  // per circuit) are allowed as seeds — the vicinity builder expands them.
  if (net_.isInput(n) && !isStuckNode(n, c)) return;
  faultySeeds_[c].push_back(n);
  if (circuitStamp_[c] != seedGen_) {
    circuitStamp_[c] = seedGen_;
    activeCircuits_.push_back(c);
  }
}

SettleResult ConcurrentFaultSimulator::applySetting(
    std::span<const std::pair<NodeId, State>> assignments) {
  for (const auto& [n, s] : assignments) {
    if (!net_.isInput(n)) {
      throw Error("applySetting: '" + net_.node(n).name + "' is not an input");
    }
    const State old = table_.good(n);
    if (old == s) continue;
    table_.setGood(n, s);
    scheduleSettingSeeds(n, old);
  }
  return settleAll();
}

void ConcurrentFaultSimulator::scheduleSettingSeeds(NodeId n, State /*oldGood*/) {
  // Good circuit: gated transistors toggle...
  for (const TransId t : net_.node(n).gateOf) {
    const auto& tr = net_.transistor(t);
    if (tr.isFaultDevice()) continue;
    const State nc = conductionState(tr.type, table_.good(n));
    if (nc != cond0_[t.value]) {
      cond0_[t.value] = nc;
      scheduleGood(tr.source);
      scheduleGood(tr.drain);
    }
  }
  // ...and conducting channel neighbours are perturbed.
  for (const TransId t : net_.node(n).channelOf) {
    const auto& tr = net_.transistor(t);
    const NodeId other = tr.otherEnd(n);
    if (cond0_[t.value] != State::S0) {
      scheduleGood(other);
      continue;
    }
    // The transistor is off in the good circuit, so the good phase will not
    // evaluate a vicinity across it — but it may conduct in a faulty
    // circuit (override, or divergent gate state). Schedule those circuits
    // directly, otherwise the input change would never reach them.
    for (const Override& o : transOverride_[t.value]) {
      if (o.value != State::S0) scheduleFaulty(o.circuit, other);
    }
    if (!tr.isFaultDevice()) {
      const NodeId g = tr.gate;
      for (const StateRecord& r : table_.records(g)) {
        if (conductionState(tr.type, r.value) != State::S0) {
          scheduleFaulty(r.circuit, other);
        }
      }
      for (const Override& o : nodeStuck_[g.value]) {
        if (conductionState(tr.type, o.value) != State::S0) {
          scheduleFaulty(o.circuit, other);
        }
      }
    }
  }
}

SettleResult ConcurrentFaultSimulator::settleAll() {
  SettleResult res;
  bool coerce = false;
  const std::uint32_t hardLimit =
      options_.sim.settleLimit + 8 * net_.numNodes() + 4096;
  while (!goodSeeds_.empty() || !activeCircuits_.empty()) {
    FMOSSIM_ASSERT(res.phases < hardLimit,
                   "concurrent settle failed to terminate under X-coercion");
    if (res.phases >= options_.sim.settleLimit && !coerce) {
      coerce = true;
      res.oscillated = true;
    }
    runPhase(coerce);
    ++res.phases;
    ++phases_;
  }
  ++phaseEpoch_;  // invalidate pre-phase snapshots for external queries
  return res;
}

void ConcurrentFaultSimulator::runPhase(bool coerce) {
  ++phaseEpoch_;
  curGoodSeeds_.swap(goodSeeds_);
  goodSeeds_.clear();
  curCircuits_.swap(activeCircuits_);
  activeCircuits_.clear();
  for (const CircuitId c : curCircuits_) {
    curFaultySeeds_[c].swap(faultySeeds_[c]);
    faultySeeds_[c].clear();
    phaseCircuitStamp_[c] = phaseEpoch_;
  }
  ++seedGen_;  // scheduling from here on targets the next phase

  processGoodPhase(coerce);

  // The paper simulates "the activities for each faulty circuit in turn";
  // circuits are independent within a phase, so queue order is fine.
  for (std::size_t i = 0; i < curCircuits_.size(); ++i) {
    const CircuitId c = curCircuits_[i];
    if (alive_[c]) {
      processFaultyCircuit(c, coerce);
    }
    curFaultySeeds_[c].clear();
  }
  curCircuits_.clear();
  curGoodSeeds_.clear();
}

void ConcurrentFaultSimulator::processGoodPhase(bool coerce) {
  goodChanges_.clear();
  vicBuilder_.newGeneration();
  const GoodCircuitView view{this};
  for (const NodeId seed : curGoodSeeds_) {
    if (!vicBuilder_.grow(view, seed, vic_)) continue;
    solver_.solve(vic_, newStates_);
    for (std::size_t i = 0; i < vic_.size(); ++i) {
      if (newStates_[i] != vic_.memberCharge[i]) {
        goodChanges_.emplace_back(vic_.members[i], newStates_[i]);
      }
    }
    // Triggering is stimulus-based: even an unchanged vicinity may respond
    // differently in a diverging faulty circuit.
    collectTriggers(vic_);
  }
  // Commit (two-buffered: all vicinities were solved against pre-phase state).
  for (auto [n, v] : goodChanges_) {
    if (coerce) v = State::SX;
    const State old = table_.good(n);
    if (old == v) continue;
    if (goodOldStamp_[n.value] != phaseEpoch_) {
      goodOldStamp_[n.value] = phaseEpoch_;
      goodOldValue_[n.value] = old;
    }
    table_.setGood(n, v);
    for (const TransId t : net_.node(n).gateOf) {
      const auto& tr = net_.transistor(t);
      if (tr.isFaultDevice()) continue;
      const State nc = conductionState(tr.type, v);
      if (nc != cond0_[t.value]) {
        cond0_[t.value] = nc;
        scheduleGood(tr.source);
        scheduleGood(tr.drain);
      }
    }
  }
}

void ConcurrentFaultSimulator::collectTriggers(const Vicinity& vic) {
  ++triggerGen_;
  triggerScratch_.clear();
  const auto mark = [this](CircuitId c) {
    if (!alive_[c]) return;
    if (triggerStamp_[c] == triggerGen_) return;
    triggerStamp_[c] = triggerGen_;
    triggerScratch_.push_back(c);
  };
  for (const NodeId n : vic.members) {
    for (const StateRecord& r : table_.records(n)) mark(r.circuit);
    for (const Override& o : nodeStuck_[n.value]) mark(o.circuit);
    for (const TransId t : net_.node(n).channelOf) {
      for (const Override& o : transOverride_[t.value]) mark(o.circuit);
      const auto& tr = net_.transistor(t);
      if (!tr.isFaultDevice()) {
        const NodeId g = tr.gate;
        for (const StateRecord& r : table_.records(g)) mark(r.circuit);
        for (const Override& o : nodeStuck_[g.value]) mark(o.circuit);
      }
      // A stuck *input* neighbour diverges in its circuit without ever
      // carrying a state record; it influences this vicinity directly.
      const NodeId other = tr.otherEnd(n);
      if (net_.isInput(other)) {
        for (const Override& o : nodeStuck_[other.value]) mark(o.circuit);
      }
    }
  }
  if (triggerScratch_.empty()) return;
  for (const CircuitId c : triggerScratch_) {
    if (options_.debugLoseTriggerEvery != 0 &&
        ++debugTriggerCount_ % options_.debugLoseTriggerEvery == 0) {
      continue;  // deliberately lost trigger (oracle self-test; see FsimOptions)
    }
    if (phaseCircuitStamp_[c] != phaseEpoch_) {
      phaseCircuitStamp_[c] = phaseEpoch_;
      curCircuits_.push_back(c);
    }
    auto& seeds = curFaultySeeds_[c];
    seeds.insert(seeds.end(), vic.members.begin(), vic.members.end());
    triggeredEvents_ += vic.members.size();
  }
}

void ConcurrentFaultSimulator::processFaultyCircuit(CircuitId c, bool coerce) {
  const FaultyCircuitView view{this, c};
  vicBuilder_.newGeneration();
  faultyResults_.clear();
  faultyChanges_.clear();
  for (const NodeId seed : curFaultySeeds_[c]) {
    if (!vicBuilder_.grow(view, seed, vic_)) continue;
    solver_.solve(vic_, newStates_);
    for (std::size_t i = 0; i < vic_.size(); ++i) {
      const NodeId n = vic_.members[i];
      const State pre = vic_.memberCharge[i];
      State next = newStates_[i];
      if (coerce && next != pre) next = State::SX;
      faultyResults_.emplace_back(n, next);
      if (next != pre) faultyChanges_.push_back({n, pre, next});
    }
  }
  // Commit this circuit's records (vs. the good circuit's *current* state).
  for (const auto& [n, v] : faultyResults_) {
    if (table_.reconcile(n, c, v)) {
      touched_[c].push_back(n);
    }
  }
  // Gate toggles within circuit c schedule next-phase events for c.
  for (const FaultyChange& ch : faultyChanges_) {
    for (const TransId t : net_.node(ch.node).gateOf) {
      const auto& tr = net_.transistor(t);
      if (tr.isFaultDevice()) continue;
      if (findOverride(transOverride_[t.value], c) != nullptr) continue;
      if (conductionState(tr.type, ch.oldValue) !=
          conductionState(tr.type, ch.newValue)) {
        scheduleFaulty(c, tr.source);
        scheduleFaulty(c, tr.drain);
      }
    }
  }
}

std::uint32_t ConcurrentFaultSimulator::observe(
    const std::vector<NodeId>& outputs, std::uint32_t patternIndex) {
  dropQueue_.clear();
  std::uint32_t newly = 0;
  for (const NodeId out : outputs) {
    const State g = table_.good(out);
    const auto consider = [&](CircuitId c, State s) {
      if (!alive_[c]) return;
      if (detectedAt_[c - 1] >= 0) return;  // already detected (no-drop mode)
      if (s == g) return;
      if (options_.policy == DetectionPolicy::DefiniteOnly &&
          (!isDefinite(g) || !isDefinite(s))) {
        ++potentialDetections_;
        return;
      }
      detectedAt_[c - 1] = static_cast<std::int32_t>(patternIndex);
      ++newly;
      dropQueue_.push_back(c);
    };
    for (const Override& o : nodeStuck_[out.value]) consider(o.circuit, o.value);
    for (const StateRecord& r : table_.records(out)) consider(r.circuit, r.value);
  }
  if (options_.dropDetected) {
    for (const CircuitId c : dropQueue_) dropCircuit(c);
  }
  return newly;
}

void ConcurrentFaultSimulator::dropCircuit(CircuitId c) {
  if (!alive_[c]) return;
  alive_[c] = 0;
  --aliveCount_;
  for (const NodeId n : touched_[c]) {
    table_.erase(n, c);
  }
  touched_[c].clear();
  touched_[c].shrink_to_fit();
  faultySeeds_[c].clear();
}

State ConcurrentFaultSimulator::faultyState(NodeId n, CircuitId c) const {
  FMOSSIM_ASSERT(c >= 1 && c <= faults_.size(), "faultyState: bad circuit id");
  return stateIn(n, c);
}

FaultSimResult ConcurrentFaultSimulator::run(const TestSequence& seq) {
  return run(seq, nullptr);
}

FaultSimResult ConcurrentFaultSimulator::run(
    const TestSequence& seq,
    const std::function<void(const PatternStat&)>& onPattern) {
  FMOSSIM_ASSERT(!ran_, "ConcurrentFaultSimulator::run may only be called once");
  ran_ = true;
  FaultSimResult res;
  res.numFaults = faults_.size();
  res.perPattern.reserve(seq.size());

  Timer total;
  const std::uint64_t evalsAtStart = solver_.nodeEvals();
  std::uint32_t cumulative = 0;

  for (std::uint32_t pi = 0; pi < seq.size(); ++pi) {
    Timer patternTimer;
    const std::uint64_t evalsBefore = solver_.nodeEvals();
    for (const InputSetting& setting : seq[pi].settings) {
      applySetting(setting.span());
    }
    const std::uint32_t newly = observe(seq.outputs(), pi);
    cumulative += newly;

    PatternStat st;
    st.index = pi;
    st.seconds = patternTimer.seconds();
    st.nodeEvals = solver_.nodeEvals() - evalsBefore;
    st.newlyDetected = newly;
    st.cumulativeDetected = cumulative;
    st.aliveAfter = aliveCount_;
    res.perPattern.push_back(st);
    if (onPattern) onPattern(st);
  }

  res.detectedAtPattern = detectedAt_;
  res.numDetected = cumulative;
  res.maxAlive = maxAliveObserved_;
  res.finalGoodStates.reserve(net_.numNodes());
  for (std::uint32_t n = 0; n < net_.numNodes(); ++n) {
    res.finalGoodStates.push_back(table_.good(NodeId(n)));
  }
  res.finalRecords = table_.totalRecords();
  res.potentialDetections = potentialDetections_;
  res.totalSeconds = total.seconds();
  res.totalNodeEvals = solver_.nodeEvals() - evalsAtStart;
  return res;
}

}  // namespace fmossim
