// Streaming per-pattern row consumption: the hot-path alternative to the
// materialized FaultSimResult::perPattern vector.
//
// A streaming run (ConcurrentFaultSimulator over a PatternSource, or a
// sharded streamed merge) does not materialize per-pattern rows; it pushes
// each row through a RowSink as it completes and leaves perPattern empty,
// recording only numPatterns/droppedDetected on the result. Row-derived
// aggregates stay exact because every row triple is fully derivable from
// the detection record: newlyDetected is the number of faults first
// detected at that pattern, cumulativeDetected the running sum, and
// aliveAfter == droppedDetected ? numFaults - cumulative : numFaults — an
// invariant every backend maintains (early-exit tails included, where
// cumulative has reached its final value so the derived aliveAfter is 0).
//
// Two sinks cover both worlds:
//   * MaterializingRowSink — collects rows into a vector; the opt-in
//     compatibility path that keeps byte-identical results available.
//   * AggregatingRowSink — O(1) state per pattern: running detection
//     counts, an alive curve decimated into a bounded reservoir, and an
//     incrementally folded row checksum.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace fmossim {

struct PatternStat;
struct FaultSimResult;

/// Consumer of per-pattern rows from a streaming run, called in pattern
/// order exactly once per pattern.
class RowSink {
 public:
  virtual ~RowSink() = default;
  virtual void row(const PatternStat& st) = 0;
};

/// Collects every row into an external vector (opt-in materialization).
class MaterializingRowSink final : public RowSink {
 public:
  explicit MaterializingRowSink(std::vector<PatternStat>& out) : out_(&out) {}
  void row(const PatternStat& st) override;

 private:
  std::vector<PatternStat>* out_;
};

/// Aggregates rows on the fly with memory bounded by the reservoir
/// capacity, independent of sequence length.
class AggregatingRowSink final : public RowSink {
 public:
  struct AlivePoint {
    std::uint64_t index = 0;
    std::uint32_t aliveAfter = 0;
  };

  /// `aliveCurveCapacity` bounds the decimated alive-curve reservoir; must
  /// be at least 2. When the reservoir fills, the sampling stride doubles
  /// and existing points are re-decimated, so the curve always spans the
  /// whole run at uniform stride.
  explicit AggregatingRowSink(std::size_t aliveCurveCapacity = 1024);

  void row(const PatternStat& st) override;

  std::uint64_t patterns() const { return patterns_; }
  std::uint64_t totalNewlyDetected() const { return totalNewly_; }
  std::uint32_t finalCumulativeDetected() const { return finalCumulative_; }
  std::uint32_t finalAliveAfter() const { return finalAlive_; }
  /// FNV-1a fold of (newlyDetected, cumulativeDetected, aliveAfter) in row
  /// order — the same triples perf::resultChecksum folds for the
  /// perPattern segment, so two streaming runs can be compared row-exactly
  /// without materializing either.
  std::uint64_t rowChecksum() const { return rowChecksum_; }
  std::uint64_t aliveCurveStride() const { return stride_; }
  const std::vector<AlivePoint>& aliveCurve() const { return curve_; }

 private:
  std::uint64_t patterns_ = 0;
  std::uint64_t totalNewly_ = 0;
  std::uint32_t finalCumulative_ = 0;
  std::uint32_t finalAlive_ = 0;
  std::uint64_t rowChecksum_;
  std::size_t capacity_;
  std::uint64_t stride_ = 1;
  std::vector<AlivePoint> curve_;
};

/// Derives the per-pattern row triples of a rowless (streaming) result from
/// its detection record and calls `fn(index, newly, cumulative, alive)` for
/// every pattern in order. Exact: matches what a materialized run of the
/// same workload would have recorded (see header comment).
void forEachDerivedRow(
    const FaultSimResult& res,
    const std::function<void(std::uint64_t, std::uint32_t, std::uint32_t,
                             std::uint32_t)>& fn);

/// Materializes perPattern rows for a rowless streaming result (timing and
/// work-counter fields zeroed — only the row triples are derivable). No-op
/// when the result already has rows. Used by tests and the diff-oracle hook
/// to compare streamed results field by field against materialized ones.
void derivePerPattern(FaultSimResult& res);

}  // namespace fmossim
