#include "core/serial_sim.hpp"

#include "util/timer.hpp"

namespace fmossim {

SerialFaultSimulator::SerialFaultSimulator(const Network& net,
                                           SerialOptions options)
    : net_(net), options_(options) {}

void SerialFaultSimulator::applyFault(LogicSimulator& sim, const Fault& f) {
  switch (f.kind) {
    case FaultKind::NodeStuck:
      sim.forceNode(f.node, f.value);
      break;
    case FaultKind::TransistorStuck:
    case FaultKind::FaultDevice:
      sim.forceTransistor(f.transistor, f.value);
      break;
  }
}

bool SerialFaultSimulator::detects(State good, State faulty) const {
  if (good == faulty) return false;
  if (options_.policy == DetectionPolicy::DefiniteOnly) {
    return isDefinite(good) && isDefinite(faulty);
  }
  return true;
}

GoodRunResult SerialFaultSimulator::runGood(const TestSequence& seq) {
  GoodRunResult res;
  res.numPatterns = seq.size();
  LogicSimulator sim(net_, options_.sim);
  Timer timer;
  for (std::uint32_t pi = 0; pi < seq.size(); ++pi) {
    for (const InputSetting& setting : seq[pi].settings) {
      sim.applyAssignments(setting.span());
    }
    std::vector<State> outs;
    outs.reserve(seq.outputs().size());
    for (const NodeId out : seq.outputs()) outs.push_back(sim.state(out));
    res.outputTrace.push_back(std::move(outs));
  }
  res.totalSeconds = timer.seconds();
  res.totalNodeEvals = sim.counters().nodeEvals;
  res.finalStates.reserve(net_.numNodes());
  for (std::uint32_t n = 0; n < net_.numNodes(); ++n) {
    res.finalStates.push_back(sim.state(NodeId(n)));
  }
  return res;
}

SerialRunResult SerialFaultSimulator::run(
    const TestSequence& seq, const FaultList& faults,
    const std::function<void(std::uint32_t, std::int32_t)>& onFault) {
  SerialRunResult res;
  res.good = runGood(seq);
  res.detectedAtPattern.assign(faults.size(), -1);
  res.patternSeconds.assign(seq.size(), 0.0);
  res.patternNodeEvals.assign(seq.size(), 0);

  Timer faultTimer;
  std::uint64_t evals = 0;
  for (std::uint32_t fi = 0; fi < faults.size(); ++fi) {
    LogicSimulator sim(net_, options_.sim);
    applyFault(sim, faults[fi]);
    sim.settle();
    std::int32_t detectedAt = -1;
    std::uint64_t evalsBefore = sim.counters().nodeEvals;
    for (std::uint32_t pi = 0; pi < seq.size() && detectedAt < 0; ++pi) {
      Timer patternTimer;
      for (const InputSetting& setting : seq[pi].settings) {
        sim.applyAssignments(setting.span());
      }
      const auto& goodOuts = res.good.outputTrace[pi];
      for (std::size_t oi = 0; oi < seq.outputs().size(); ++oi) {
        const State good = goodOuts[oi];
        const State faulty = sim.state(seq.outputs()[oi]);
        if (detects(good, faulty)) {
          detectedAt = static_cast<std::int32_t>(pi);
          break;
        }
        if (good != faulty &&
            options_.policy == DetectionPolicy::DefiniteOnly) {
          ++res.potentialDetections;  // X-involved mismatch, keeps simulating
        }
      }
      res.patternSeconds[pi] += patternTimer.seconds();
      const std::uint64_t evalsNow = sim.counters().nodeEvals;
      res.patternNodeEvals[pi] += evalsNow - evalsBefore;
      evalsBefore = evalsNow;
    }
    res.detectedAtPattern[fi] = detectedAt;
    if (detectedAt >= 0) ++res.numDetected;
    evals += sim.counters().nodeEvals;
    if (onFault) onFault(fi, detectedAt);
  }
  res.faultSeconds = faultTimer.seconds();
  res.faultNodeEvals = evals;
  return res;
}

}  // namespace fmossim
