// FMOSSIM's concurrent switch-level fault simulation engine (paper §4).
//
// The engine simulates the good circuit in full and every faulty circuit by
// difference:
//
//   * Node states are kept as per-node sorted record lists (StateTable);
//     a faulty circuit's state exists only where it diverges from the good
//     circuit.
//   * Events are (node, circuit) pairs: "an 'event' specifies both a node
//     and a circuit indicating that the state of this node must be
//     recomputed in this particular circuit."
//   * Each unit-delay phase first simulates all good-circuit activity; each
//     evaluated good vicinity then *triggers* events for the faulty circuits
//     that diverge on it or structurally differ adjacent to it (records on
//     member or gate nodes, stuck nodes, transistor overrides — adjacency is
//     needed because a fault can extend the vicinity in the faulty circuit).
//     The faulty circuits are then simulated one at a time in ascending
//     circuit-ID order, each under its own topology and its own pre-phase
//     charge state.
//   * After each pattern the observed outputs are compared; a mismatch
//     detects the fault and its circuit is dropped from simulation.
//
// Faulty circuits are bit-identified overlays on the shared network: a node
// stuck-at fault makes the node an input in that circuit only; transistor
// faults and activated fault devices are per-circuit conduction overrides.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/state_table.hpp"
#include "faults/fault.hpp"
#include "faults/transient.hpp"
#include "patterns/pattern.hpp"
#include "switch/logic_sim.hpp"
#include "switch/solver.hpp"
#include "switch/vicinity.hpp"
#include "util/timer.hpp"

namespace fmossim {

class CheckpointReader;
class CheckpointRecorder;
class GoodMachineCheckpoint;
class PatternSource;
class RowSink;

/// How output mismatches count as detections.
enum class DetectionPolicy : std::uint8_t {
  /// Detected only when good and faulty outputs are both definite and differ
  /// (an X cannot be distinguished on a tester). X-involved mismatches are
  /// counted as potential detections but the circuit keeps simulating.
  DefiniteOnly,
  /// Any difference counts (including X vs definite).
  AnyDifference,
};

struct FsimOptions {
  SimOptions sim;
  DetectionPolicy policy = DetectionPolicy::DefiniteOnly;
  /// Drop faulty circuits once detected (paper: "the simulation of that
  /// circuit is dropped"). Disable for the ablation benchmark.
  bool dropDetected = true;
  /// Self-test hook for the differential fuzzing oracle (src/gen/): when
  /// N > 0, every Nth faulty-circuit trigger collected during a good-circuit
  /// phase is deliberately lost, emulating the classic concurrent-simulation
  /// bug of missed divergence propagation. Must stay 0 in real use; only the
  /// oracle's mutation tests set it.
  std::uint32_t debugLoseTriggerEvery = 0;
  /// Bit-parallel fault batching width: faulty circuits whose per-phase
  /// event lists coincide are settled together through one solver pass, with
  /// their states committed as word lanes (32 two-bit lanes per 64-bit
  /// StateTable word). Sharing is attempted only within aligned windows of
  /// this many consecutive circuit IDs; 1 disables batching (every circuit
  /// is processed alone, the pre-lane behavior). Must be a power of two in
  /// [1, 32]. Results are bit-identical for every width — only wall clock
  /// changes (enforced by the diff oracle and the bench --check gate).
  std::uint32_t laneWidth = 1;
  /// Scheduler-seeded share groups (laneWidth > 1 only): aligned lane
  /// window indices — (circuitId - 1) / laneWidth over this engine's
  /// locally renumbered faults — whose members the batch scheduler expects
  /// to keep forming share groups (sched::BatchPlan::hintWindows, built
  /// from matching detection history). Hinted windows are exempt from the
  /// per-window share backoff: the matcher attempts group formation there
  /// every phase instead of rediscovering, then abandoning, the window.
  /// Results are bit-identical with or without hints (the scalar and lane
  /// paths agree; hints only steer where match costs are paid).
  std::vector<std::uint32_t> shareHintWindows;
  /// Opt-in asynchronous read-ahead during checkpoint replay (spilled
  /// checkpoints only): the replay reader prefetches and decodes the next
  /// settle chunk off-thread while the engine consumes the current one
  /// (CheckpointReader::enableReadAhead), so budgeted replays stop blocking
  /// on synchronous decode at every chunk switch. Costs up to one extra
  /// resident chunk per replaying engine; results are bit-identical.
  bool checkpointReadAhead = false;
};

/// Per-pattern measurement row (the raw data behind Figures 1 and 2).
struct PatternStat {
  std::uint32_t index = 0;
  /// Aggregate engine time spent on this pattern, summed across every
  /// engine that simulated it. For unsharded runs this is the pattern's
  /// wall-clock time; for sharded runs it is CPU-like time (concurrent
  /// batches overlap on the wall clock) — see FaultSimResult::totalSeconds
  /// vs. totalCpuSeconds for the run-level pair.
  double seconds = 0.0;
  std::uint64_t nodeEvals = 0;    ///< solver work in this pattern (all circuits)
  std::uint32_t newlyDetected = 0;
  std::uint32_t cumulativeDetected = 0;
  std::uint32_t aliveAfter = 0;   ///< faulty circuits still being simulated
};

/// Result of a full fault-simulation run.
struct FaultSimResult {
  std::vector<PatternStat> perPattern;
  /// Per fault: index of the detecting pattern, or -1 if undetected.
  std::vector<std::int32_t> detectedAtPattern;
  std::uint32_t numFaults = 0;
  std::uint32_t numDetected = 0;
  std::uint64_t potentialDetections = 0;  ///< X-involved mismatches observed
  /// Wall-clock seconds for the whole run (sharded runs: the parallel run's
  /// elapsed time, including checkpoint recording when this run recorded).
  double totalSeconds = 0.0;
  /// Aggregate engine (CPU-like) seconds summed across every engine that
  /// contributed to the run — all fault batches plus checkpoint recording.
  /// Equals totalSeconds for unsharded backends; for sharded runs
  /// totalCpuSeconds / totalSeconds approximates the effective parallelism.
  double totalCpuSeconds = 0.0;
  std::uint64_t totalNodeEvals = 0;
  /// Peak number of simultaneously live faulty circuits of the modeled
  /// (single-engine) simulation — the paper's Fig. statistic. Exact for
  /// every backend and jobs count: alive counts never increase during a
  /// run, so each engine peaks at sequence start and a merged sharded
  /// result reports the same peak as a jobs=1 run (asserted by the
  /// scheduler matrix test), not an upper bound.
  std::uint32_t maxAlive = 0;
  /// State-table divergence records at end of run (summed across shards;
  /// 0 for the serial backend, which keeps no difference state).
  std::uint64_t finalRecords = 0;
  /// Good-circuit state of every node after the last pattern, indexed by
  /// NodeId. Every backend fills this (the serial backend from its reference
  /// run, sharded runs from their first shard), so the differential oracle
  /// can cross-check final states and not just detections.
  std::vector<State> finalGoodStates;
  /// Number of patterns the run covered. 64-bit: streaming runs leave
  /// perPattern empty and may exceed the materialized 2^32 row bound; every
  /// backend fills this (for materialized runs it equals perPattern.size()).
  std::uint64_t numPatterns = 0;
  /// Whether the run dropped detected circuits (FsimOptions::dropDetected).
  /// Together with detectedAtPattern/numFaults/numPatterns this makes the
  /// per-pattern row triples of a rowless result fully derivable — see
  /// core/row_sink.hpp (forEachDerivedRow).
  bool droppedDetected = false;

  double coverage() const {
    return numFaults == 0 ? 0.0 : double(numDetected) / double(numFaults);
  }
};

class ConcurrentFaultSimulator {
 public:
  /// Builds the engine and injects every fault (initial divergence records
  /// and events are created; call settle() or run a sequence next).
  ///
  /// `record` (optional) captures the good machine's phase trace into a
  /// checkpoint being built — only meaningful with an empty fault list (the
  /// checkpoint must contain pure good-machine activity).
  ///
  /// `replay` (optional) switches the engine into checkpoint-replay mode:
  /// the good circuit is never simulated; every good phase (vicinity trigger
  /// stimuli + state commits, already coerced) is replayed from the
  /// checkpoint's trace instead, keeping phase alignment and results
  /// bit-identical to a self-simulating engine while spending solver work on
  /// faulty circuits only. The sequence later passed to run() must be the
  /// one the checkpoint recorded (asserted via fingerprint). In replay mode
  /// with dropDetected, the run exits early once every faulty circuit has
  /// been detected and dropped — the checkpoint supplies the final good
  /// states for the untouched tail of the sequence.
  ConcurrentFaultSimulator(const Network& net, const FaultList& faults,
                           FsimOptions options = {},
                           CheckpointRecorder* record = nullptr,
                           const GoodMachineCheckpoint* replay = nullptr);

  /// Transient (SEU) mode: `numTransientMachines` faulty circuits with no
  /// permanent fault — each stays bit-identical to the good circuit until
  /// its TransientFault (given to runTransient / runTransientTail) flips
  /// one storage node's settled state.
  ///
  /// With `replay` null the engine self-simulates the good circuit and
  /// runTransient drives a full sequence (the naive from-scratch baseline).
  /// With `replay` given the engine *resumes at a pattern boundary*: the
  /// good state after `resumeAfterPattern` is materialized straight from
  /// the checkpoint (goodStateAfterPattern — zero solver work for the
  /// prefix, in which no transient machine can diverge) and
  /// runTransientTail simulates only the remaining patterns, bit-identical
  /// to the naive run (SEU oracle test).
  ConcurrentFaultSimulator(const Network& net,
                           std::uint32_t numTransientMachines,
                           FsimOptions options = {},
                           const GoodMachineCheckpoint* replay = nullptr,
                           std::uint64_t resumeAfterPattern = 0);

  ~ConcurrentFaultSimulator();

  const Network& network() const { return net_; }
  const FaultList& faults() const { return faults_; }

  /// Runs a complete test sequence with per-pattern instrumentation and
  /// fault dropping. Can only be called once per simulator instance.
  FaultSimResult run(const TestSequence& seq);

  /// Like run(), invoking `onPattern` after each pattern (for live
  /// reporting in the benchmark harnesses).
  FaultSimResult run(const TestSequence& seq,
                     const std::function<void(const PatternStat&)>& onPattern);

  /// Streaming run: pulls patterns from `source` one at a time and never
  /// materializes per-pattern rows — each row goes to `sink` (and
  /// `onPattern`) as it completes and the result's perPattern stays empty
  /// (numPatterns/droppedDetected are set instead; see core/row_sink.hpp).
  /// Resident memory is flat in the sequence length. Not valid in replay
  /// mode (use runReplay, which needs no sequence at all). When recording a
  /// checkpoint, the source is consumed exactly once and its fingerprint is
  /// captured via PatternSource::fingerprint() before the run.
  FaultSimResult run(PatternSource& source, RowSink* sink = nullptr,
                     const std::function<void(const PatternStat&)>& onPattern = {});

  /// Replay-mode streaming run: drives the whole sequence from the
  /// checkpoint's recorded trace (input changes + pattern boundaries), so
  /// workers need neither a materialized TestSequence nor the PatternSource.
  /// Requires replay mode. Rows stream to `sink`/`onPattern`; the result is
  /// rowless like the streaming run() above. Early exit applies as in
  /// run(): once every circuit is detected and dropped, the remaining rows
  /// are synthesized.
  FaultSimResult runReplay(RowSink* sink = nullptr,
                           const std::function<void(const PatternStat&)>& onPattern = {});

  // --- transient (SEU) runs (transient-mode engines only; see src/seu/) ----

  /// Naive full-sequence transient run: simulates the whole sequence from
  /// scratch, flipping machine i+1 per specs[i] at its injection instant
  /// (specs.size() must equal the machine count; instants may differ).
  /// Rowless result. Classification per machine: detectedAtPattern(i) >= 0
  /// is detected; else hasDivergence(i+1) is latent; else silent.
  FaultSimResult runTransient(const TestSequence& seq,
                              std::span<const TransientFault> specs);

  /// Checkpoint-tail transient run: every spec must share the engine's
  /// resume instant (a same-instant injection group). All machines are
  /// flipped at the resumed pattern boundary, then only the remaining
  /// patterns are replayed from the trace. Early-exits once every machine
  /// is detected and dropped. Bit-identical to runTransient of the same
  /// specs over the recorded sequence.
  FaultSimResult runTransientTail(std::span<const TransientFault> specs);

  /// True when circuit c's state currently differs from the good circuit
  /// anywhere — records or an active pulse holding a value the good circuit
  /// does not (end-of-run latent classification; transient mode only).
  bool hasDivergence(CircuitId c) const;

  // --- fine-grained control (equivalence tests, examples) -----------------

  /// Applies one batch of input assignments and settles all circuits.
  SettleResult applySetting(std::span<const std::pair<NodeId, State>> assignments);

  /// Observes the outputs, records detections against `patternIndex`, and
  /// drops newly detected circuits (if enabled). Returns number of new
  /// detections.
  std::uint32_t observe(const std::vector<NodeId>& outputs,
                        std::uint32_t patternIndex);

  State goodState(NodeId n) const { return table_.good(n); }
  /// State of node n in faulty circuit c (c in [1, numFaults]).
  State faultyState(NodeId n, CircuitId c) const;
  bool alive(CircuitId c) const { return alive_[c] != 0; }
  std::uint32_t aliveCount() const { return aliveCount_; }
  std::int32_t detectedAtPattern(std::uint32_t faultIndex) const {
    return detectedAt_[faultIndex];
  }
  std::uint64_t potentialDetections() const { return potentialDetections_; }

  /// Deterministic work counter: logical member-node evaluations across all
  /// circuits. Memo-replayed solves count exactly like solver-computed ones
  /// (they answer the same logical work), so the counter is invariant under
  /// the per-phase solution memo and the paper's growth-shape claims remain
  /// comparable across engine versions; wall-clock time is what the memo
  /// improves.
  std::uint64_t nodeEvals() const {
    return solver_.nodeEvals() + memoReplayedEvals_;
  }
  std::uint64_t phaseCount() const { return phases_; }
  std::uint64_t triggeredEvents() const { return triggeredEvents_; }
  /// Per-phase vicinity-solution memo statistics (performance diagnostics):
  /// solver invocations avoided, and total memo probes.
  std::uint64_t memoHits() const { return memoHits_; }
  std::uint64_t memoProbes() const { return memoProbes_; }
  std::uint64_t recordCount() const { return table_.totalRecords(); }
  std::uint32_t maxAliveObserved() const { return maxAliveObserved_; }

 private:
  friend struct GoodCircuitView;
  friend struct FaultyCircuitView;
  friend struct LaneLeaderView;

  // Per-circuit static overlays, sorted by circuit id.
  struct Override {
    CircuitId circuit;
    State value;
  };

  /// Master constructor both public constructors delegate to: permanent
  /// faults size the machine count themselves; transient mode passes an
  /// empty fault list and an explicit count (plus the resume instant when a
  /// checkpoint tail is being simulated).
  ConcurrentFaultSimulator(const Network& net, const FaultList& faults,
                           std::uint32_t numMachines, FsimOptions options,
                           CheckpointRecorder* record,
                           const GoodMachineCheckpoint* replay,
                           bool transientMode,
                           std::uint64_t resumeAfterPattern);

  void inject();
  SettleResult settleAll();
  void runPhase(bool coerce);
  void processGoodPhase(bool coerce);
  void processFaultyCircuit(CircuitId c, bool coerce);
  void collectTriggers(std::span<const NodeId> members);
  void dropCircuit(CircuitId c);
  void removeOverlay(CircuitId c);

  // --- transient (SEU) machinery (transientMode_ only) ---------------------
  //
  // A transient machine carries no static overlay until injection. An
  // instantaneous flip becomes an ordinary divergence record (reconciled
  // like a faulty-circuit commit); a pulse becomes a temporary node-stuck
  // overlay at the flipped value, released at its boundary with the held
  // value left behind as charge (a record, unless it agrees with the good
  // circuit). Both schedule the node and its gated transistors' channel
  // ends, exactly like a node-stuck injection, and the perturbation is
  // settled in place (settleInPlace: the replay cursor, when present, must
  // not advance — the good machine is quiet between patterns).
  struct TransientMachine {
    NodeId node;
    std::uint64_t atPattern = 0;
    std::uint32_t pulsePatterns = 0;
    State forcedValue = State::SX;  ///< pulse hold value (flip of good)
    bool pulseActive = false;
    bool injected = false;
  };
  void loadTransientSpecs(std::span<const TransientFault> specs,
                          std::uint64_t numPatterns);
  void injectTransientFlip(CircuitId c);
  void releaseTransientPulse(CircuitId c);
  void scheduleTransientSite(CircuitId c, NodeId n);
  SettleResult settleInPlace();

  // --- lane-batched faulty processing (laneWidth > 1) ----------------------
  //
  // Faulty circuits are independent within a phase, so when several circuits
  // of one aligned lane window enter the phase with identical event lists,
  // one of them (the leader) is evaluated once through a read-matching view,
  // and every candidate whose observable state matches the leader's complete
  // read set provably grows the same vicinities, solves to the same states,
  // and schedules the same next-phase events — its results are committed as
  // word lanes (StateTable::commitLanes) without touching the solver again.
  // Candidates that differ anywhere fall out of the shared mask and become
  // the next round's leader among the remaining failures, so results stay
  // bit-identical to scalar processing for every laneWidth.
  //
  // processFaultyGroup handles the WHOLE window on its first dispatch of the
  // phase: one scan partitions the active circuits into share-groups (equal
  // event lists) and done-stamps every member, so the scan is O(width) per
  // window per phase rather than O(width) per circuit.
  void processFaultyGroup(CircuitId c, bool coerce);
  /// One leader evaluation over candMask's lanes; commits and schedules the
  /// leader plus every matching candidate, and returns the matched mask.
  std::uint32_t processLaneLeader(CircuitId c, std::uint32_t candMask,
                                  bool coerce);
  /// Lanes of `group` whose circuit has a node-stuck overlay at n.
  std::uint32_t stuckLaneMask(NodeId n, std::uint32_t group) const;
  /// Lanes of `group` whose circuit has a conduction override on t.
  std::uint32_t overrideLaneMask(TransId t, std::uint32_t group) const;
  State logNodeRead(NodeId n);
  State logTransRead(TransId t);
  /// Cached per-phase FNV signature of circuit c's current event list.
  std::uint64_t seedSignature(CircuitId c);

  // Checkpoint replay (see checkpoint.hpp): one settle block per settleAll,
  // whose recorded phases are consumed one per runPhase — the good prefix of
  // the settle. replayGoodPhase applies a recorded phase's trigger stimuli
  // and state commits in place of processGoodPhase. All trace access goes
  // through replayReader_, the forward cursor that works for in-memory and
  // spilled (windowed temp-file) checkpoints alike.
  bool replayPhasesRemain() const;
  void replayBeginSettle();
  void replayGoodPhase();

  // Trigger watch counts: watchCount_[n] is the number of divergence sources
  // (records, stuck-node overlays, transistor overrides) whose trigger scan
  // lands on node n, mirroring collectTriggers' member scan exactly. A
  // member with count 0 cannot mark any circuit, so the scan skips it — the
  // common case once faults start dropping. Maintained incrementally on
  // record insert/erase and overlay inject/removal.
  void addRecordWatch(NodeId m, std::int32_t delta);
  void addStuckWatch(NodeId n, std::int32_t delta);
  void addTransWatch(TransId t, std::int32_t delta);

  // Lookup helpers over the static overlay tables. Inline: this is the
  // innermost lookup of the faulty-circuit views (tens of millions of calls
  // per run, almost always over an empty or single-entry vector).
  static const Override* findOverride(const std::vector<Override>& v,
                                      CircuitId c) {
    for (const Override& o : v) {
      if (o.circuit >= c) return o.circuit == c ? &o : nullptr;
    }
    return nullptr;
  }
  bool isStuckNode(NodeId n, CircuitId c) const;
  State stuckValue(NodeId n, CircuitId c) const;
  State conductionIn(TransId t, CircuitId c) const;
  State stateIn(NodeId n, CircuitId c) const;  // pre-phase view for circuit c

  // Event scheduling.
  void scheduleGood(NodeId n);
  void scheduleFaulty(CircuitId c, NodeId n);
  void scheduleSettingSeeds(NodeId input, State oldGood);

  const Network& net_;
  FaultList faults_;  ///< empty in transient mode
  FsimOptions options_;
  /// Number of faulty machines (circuits 1..numMachines_). Equals
  /// faults_.size() for permanent faults; in transient mode the machine
  /// count is independent of the (empty) fault list.
  std::uint32_t numMachines_ = 0;
  bool transientMode_ = false;
  std::uint64_t resumeAfterPattern_ = 0;  ///< tail-resume boundary (replay)
  std::vector<TransientMachine> transient_;  ///< per machine, transient mode
  CheckpointRecorder* record_ = nullptr;
  const GoodMachineCheckpoint* replay_ = nullptr;
  std::unique_ptr<CheckpointReader> replayReader_;  // non-null iff replay_
  std::uint32_t replaySettle_ = 0;  // 1-based after replayBeginSettle
  std::uint32_t replayPhase_ = 0;   // next phase within the current settle
  // Set when runReplay() already entered the settle (to apply the recorded
  // input changes it needed the reader positioned first); tells the next
  // settleAll() to skip its own replayBeginSettle.
  bool replayEntered_ = false;

  StateTable table_;
  std::vector<State> cond0_;  // good-circuit conduction states

  // Static per-circuit overlays.
  std::vector<std::vector<Override>> nodeStuck_;     // per node
  std::vector<std::vector<Override>> transOverride_; // per transistor

  std::vector<std::uint8_t> alive_;        // [0..F], alive_[0] unused
  std::vector<std::int32_t> detectedAt_;   // per fault index
  std::vector<std::vector<NodeId>> touched_;  // per circuit: nodes with records
  // Compaction threshold per circuit: touched_ is append-only on record
  // insert (erases leave stale entries behind), so a long-lived circuit that
  // keeps diverging and reconverging would grow it without bound — linear in
  // the sequence length for never-definitely-detected faults. When the list
  // reaches the threshold it is deduplicated and filtered to nodes that
  // still hold a record, and the threshold doubles from the live size:
  // amortized O(1) per insert, size bounded by the circuit's live records.
  std::vector<std::uint32_t> touchedCap_;
  void touchedInsert(CircuitId c, NodeId n);
  void compactTouched(CircuitId c);
  std::vector<std::uint32_t> watchCount_;  // per node: trigger sources landing here
  // Per node: #divergence records + #stuck overlays. Zero means every faulty
  // circuit agrees with the (pre-phase) good circuit here, which lets the
  // faulty-view state lookup skip both overlay and record searches — the
  // common case for the tens of millions of stateIn calls per run.
  std::vector<std::uint32_t> divCount_;

  // Good-circuit event queue (next phase).
  std::vector<NodeId> goodSeeds_;
  std::vector<std::uint32_t> goodSeedStamp_;
  // Faulty event queues (next phase): per circuit.
  std::vector<std::vector<NodeId>> faultySeeds_;
  std::vector<CircuitId> activeCircuits_;
  std::vector<std::uint32_t> circuitStamp_;
  std::uint32_t seedGen_ = 1;

  // Current-phase working queues (swapped in by runPhase).
  std::vector<NodeId> curGoodSeeds_;
  std::vector<CircuitId> curCircuits_;
  std::vector<std::vector<NodeId>> curFaultySeeds_;

  // Pre-phase good values for nodes changed by the good circuit this phase.
  std::vector<State> goodOldValue_;
  std::vector<std::uint32_t> goodOldStamp_;
  // Marks circuits already in curCircuits_ for the current phase.
  std::vector<std::uint32_t> phaseCircuitStamp_;
  std::uint32_t phaseEpoch_ = 1;

  // Per-phase vicinity-solution memo: within one unit-delay phase, faulty
  // circuits triggered on the same region usually present the solver with
  // bit-identical vicinities (same members, charges, edges and input
  // values) — the divergence that triggered them often lies outside the
  // grown region or coincides across circuits. Solutions are therefore
  // cached per phase keyed by full vicinity content; a hit replays the
  // stored solution, which is sound because the solver is a pure function
  // of that content. Only vicinities with member-to-member edges are
  // memoized — edge-free ones take the solver's direct path, which is
  // already cheaper than a memo probe. Flat arenas + a stamped
  // open-addressing index keep the memo allocation-free in steady state.
  struct MemoEntry {
    std::uint64_t hash;
    std::uint32_t membersOff, memberCount;
    std::uint32_t edgesOff, edgeCount;
    std::uint32_t inputsOff, inputCount;
    std::uint32_t solutionOff;
  };
  void memoReset();
  bool memoLookup(std::uint64_t hash, const Vicinity& vic,
                  std::vector<State>& out) const;
  void memoStore(std::uint64_t hash, const Vicinity& vic,
                 const std::vector<State>& solution);
  static std::uint64_t memoHash(const Vicinity& vic);
  /// Solves via the per-phase memo (general entry point for both the good
  /// phase and the faulty circuits).
  void solveMemoized(const Vicinity& vic, std::vector<State>& out);

  std::vector<MemoEntry> memoEntries_;
  std::vector<NodeId> memoMembers_;
  std::vector<State> memoCharges_;
  std::vector<Vicinity::Edge> memoEdges_;
  std::vector<Vicinity::InputEdge> memoInputs_;
  std::vector<State> memoSolutions_;
  std::vector<std::uint32_t> memoSlots_;       // open addressing: entry idx + 1
  std::vector<std::uint32_t> memoSlotStamp_;   // slot valid iff == memoStamp_
  std::uint32_t memoStamp_ = 0;
  std::uint64_t memoHits_ = 0;
  std::uint64_t memoProbes_ = 0;
  std::uint64_t memoReplayedEvals_ = 0;  // member evals answered from the memo

  // Scratch.
  VicinityBuilder vicBuilder_;
  SteadyStateSolver solver_;
  Vicinity vic_;
  std::vector<State> newStates_;
  std::vector<std::pair<NodeId, State>> goodChanges_;
  struct FaultyChange {
    NodeId node;
    State oldValue;
    State newValue;
  };
  std::vector<FaultyChange> faultyChanges_;
  std::vector<std::pair<NodeId, State>> faultyResults_;
  std::vector<CircuitId> triggerScratch_;
  std::vector<std::uint32_t> triggerStamp_;
  std::uint32_t triggerGen_ = 1;
  std::uint64_t debugTriggerCount_ = 0;
  std::vector<CircuitId> dropQueue_;

  // Lane-batching scratch: per-circuit handled stamp for the current phase,
  // plus the leader evaluation's read-matching state. Matching is folded
  // into the reads themselves: the first visit to a node or transistor
  // filters liveCandMask_ (stuck/override lanes out, then matchLanes on the
  // observed value), so once the mask reaches zero every later read costs
  // one branch and the failed group attempt degrades to a near-scalar eval.
  std::vector<std::uint32_t> laneDoneStamp_;
  std::vector<std::uint32_t> readNodeStamp_;
  std::vector<State> readNodeValue_;  ///< first-visit value cache
  std::vector<std::uint32_t> readTransStamp_;
  std::uint32_t readGen_ = 0;
  CircuitId leaderCircuit_ = 0;
  std::uint32_t laneGroup_ = 0;      ///< leader's 32-circuit lane group
  std::uint32_t liveCandMask_ = 0;   ///< candidates still matching all reads
  /// One share-group of a lane window: circuits that entered the phase with
  /// identical event lists. mateMask holds the non-leader members' lanes.
  struct LaneGroup {
    CircuitId leader;
    std::uint32_t mateMask;
  };
  std::vector<LaneGroup> laneGroups_;
  /// Per-phase FNV signature of curFaultySeeds_[c], computed lazily
  /// (seedSignature): the window scan compares one u64 per mate instead of
  /// deep-comparing seed vectors; equal signatures are confirmed by a full
  /// compare, so a collision can never create a false share.
  std::vector<std::uint64_t> seedSig_;
  std::vector<std::uint32_t> seedSigStamp_;
  /// Per-window share backoff. Matching costs real work per read, and a
  /// window whose circuits are busy around their own fault sites
  /// ("near-field" activity) structurally cannot share — every candidate
  /// dies on a stuck overlay or a diverged record. Event activity is
  /// temporally local, so after a window's share attempts produce zero
  /// matches it skips the matching machinery (plain scalar processing —
  /// results are bit-identical either way) for exponentially many phases,
  /// up to 2^kMaxShareBackoff; a successful share decrements the streak,
  /// so windows that share only rarely stay mostly skipped.
  static constexpr std::uint32_t kMaxShareBackoff = 10;
  std::vector<std::uint32_t> windowSkipUntil_;
  std::vector<std::uint8_t> windowFailStreak_;
  /// Windows pre-seeded by the scheduler (FsimOptions::shareHintWindows):
  /// bit per window; hinted windows never enter the backoff — the schedule
  /// already vouches that their members' divergence histories match.
  std::vector<std::uint8_t> windowHinted_;

  std::uint32_t aliveCount_ = 0;
  std::uint32_t maxAliveObserved_ = 0;
  std::uint64_t phases_ = 0;
  std::uint64_t triggeredEvents_ = 0;
  std::uint64_t potentialDetections_ = 0;
  bool ran_ = false;
};

}  // namespace fmossim
