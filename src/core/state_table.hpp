// Per-node state lists — the central data structure of the concurrent
// algorithm (paper §4):
//
//   "we maintain a separate state list for each node, containing records of
//    the form <i, s_i>, indicating that in circuit i ... this node has state
//    s_i. Such records are maintained only for the good circuit, and for
//    those circuits i such that s_i != s_0."
//
// The good circuit's state is a flat array; each node additionally carries
// divergence records packed into *lane blocks*: ternary state fits 2 bits,
// so one 64-bit word holds the states of 32 consecutive circuits (a lane
// *group*), with a 32-bit divergence mask saying which lanes actually hold a
// record. Scanning a node's records — the inner loop of trigger collection —
// walks a handful of words instead of one entry per diverging circuit, and
// the lane-batched faulty-circuit path (concurrent_sim) matches and commits
// a whole group of fault machines with a few SWAR word operations
// (matchLanes / commitLanes).
//
// Blocks live in one shared arena (a single std::vector<LaneBlock> pool)
// indexed by per-node {offset, count, capacity} descriptors, sorted by
// group; inserting a block never allocates unless a node's block list
// outgrows a power-of-two capacity class (freed lists are recycled through
// per-class free lists).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "faults/fault.hpp"
#include "switch/network.hpp"

namespace fmossim {

/// Lane arithmetic shared by the state table and the lane-batched engine.
/// Circuit IDs start at 1 (0 is the good circuit), so circuit c occupies
/// lane (c-1)%32 of group (c-1)/32. States pack as their enum value (S0=0,
/// S1=1, SX=2) in 2-bit fields at bit 2*lane.
namespace lanes {

inline constexpr std::uint32_t kLaneCount = 32;
/// 0101... — one bit per 2-bit lane field (the low bit of every lane).
inline constexpr std::uint64_t kEvenBits = 0x5555555555555555ull;

constexpr std::uint32_t groupOf(CircuitId c) { return (c - 1) / kLaneCount; }
constexpr std::uint32_t laneOf(CircuitId c) { return (c - 1) % kLaneCount; }
constexpr CircuitId circuitAt(std::uint32_t group, std::uint32_t lane) {
  return group * kLaneCount + lane + 1;
}

/// Replicates a 2-bit state value into all 32 lanes of a word.
constexpr std::uint64_t splat2(State v) {
  return kEvenBits * static_cast<std::uint64_t>(v);
}

/// Compresses the even bits of x (bit 2l) down to a 32-bit mask (bit l) —
/// the inverse Morton shuffle.
constexpr std::uint32_t compressEven(std::uint64_t x) {
  x &= 0x5555555555555555ull;
  x = (x | (x >> 1)) & 0x3333333333333333ull;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFull;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFull;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFull;
  return static_cast<std::uint32_t>(x);
}

/// Spreads a 32-bit lane mask (bit l) to a full 2-bit field mask (bits 2l
/// and 2l+1) — the Morton shuffle, then both bits of each selected lane.
constexpr std::uint64_t spread2(std::uint32_t mask) {
  std::uint64_t x = mask;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFull;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFull;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0Full;
  x = (x | (x << 2)) & 0x3333333333333333ull;
  x = (x | (x << 1)) & 0x5555555555555555ull;
  return x * 3;  // even bits only: *3 == x | (x << 1), carry-free
}

/// Lanes whose 2-bit field in `bits` equals state v, over all 32 lanes
/// (callers mask with the divergence mask — undiverged lanes hold stale
/// bits).
constexpr std::uint32_t eqLanes(std::uint64_t bits, State v) {
  const std::uint64_t x = bits ^ splat2(v);
  return ~compressEven((x | (x >> 1)) & kEvenBits);
}

/// Extracts the 2-bit state of one lane.
constexpr State laneState(std::uint64_t bits, std::uint32_t lane) {
  return static_cast<State>((bits >> (2 * lane)) & 3u);
}

}  // namespace lanes

/// One group of 32 circuit lanes diverging at a node: circuit
/// circuitAt(group, l) holds state laneState(bits, l) iff divMask bit l is
/// set (lanes outside divMask agree with the good circuit; their bits are
/// stale).
struct LaneBlock {
  std::uint32_t group = 0;
  std::uint32_t divMask = 0;
  std::uint64_t bits = 0;
};

/// Good-circuit state plus per-node divergence lane blocks in a shared
/// arena. Block pointers are invalidated by any mutating call
/// (reconcile/commitLanes/erase); do not hold them across mutations.
class StateTable {
 public:
  explicit StateTable(const Network& net)
      : good_(net.numNodes(), State::SX), blocks_(net.numNodes()) {}

  // --- good circuit --------------------------------------------------------

  /// State of node n in the good circuit.
  State good(NodeId n) const { return good_[n.value]; }
  /// Sets the good-circuit state of node n (divergence records unchanged).
  void setGood(NodeId n, State s) { good_[n.value] = s; }

  // --- divergence records --------------------------------------------------

  /// Divergence lookup result: whether circuit c holds a record at the node,
  /// and the recorded state if so.
  struct Lookup {
    bool diverges = false;
    State value = State::SX;
  };

  /// Circuit c's divergence at node n, if any. O(log blocks) + O(1) bit ops.
  Lookup lookup(NodeId n, CircuitId c) const {
    const LaneBlock* blk = findBlock(n, lanes::groupOf(c));
    if (blk == nullptr) return {};
    const std::uint32_t l = lanes::laneOf(c);
    if (((blk->divMask >> l) & 1u) == 0) return {};
    return {true, lanes::laneState(blk->bits, l)};
  }

  /// State of node n in circuit c: its record if present, else the good
  /// state (the concurrent representation invariant).
  State stateOf(NodeId n, CircuitId c) const {
    if (c != kGoodCircuit) {
      const Lookup r = lookup(n, c);
      if (r.diverges) return r.value;
    }
    return good_[n.value];
  }

  /// True if circuit c diverges from the good circuit at node n.
  bool hasRecord(NodeId n, CircuitId c) const { return lookup(n, c).diverges; }

  /// Node n's lane block for a circuit group, or nullptr if no circuit of
  /// that group diverges here. Invalidated by mutation.
  const LaneBlock* findBlock(NodeId n, std::uint32_t group) const {
    const Block& b = blocks_[n.value];
    const LaneBlock* begin = pool_.data() + b.offset;
    const LaneBlock* it = lowerBound(begin, begin + b.count, group);
    return (it != begin + b.count && it->group == group) ? it : nullptr;
  }

  /// Invokes fn(CircuitId, State) for every divergence record of node n, in
  /// ascending circuit order (the iteration order the concurrent algorithm's
  /// trigger and observation scans rely on).
  template <typename Fn>
  void forEachRecord(NodeId n, Fn&& fn) const {
    const Block& b = blocks_[n.value];
    const LaneBlock* p = pool_.data() + b.offset;
    for (std::uint32_t i = 0; i < b.count; ++i) {
      const LaneBlock& blk = p[i];
      std::uint32_t m = blk.divMask;
      while (m != 0) {
        const std::uint32_t l = std::countr_zero(m);
        m &= m - 1;
        fn(lanes::circuitAt(blk.group, l), lanes::laneState(blk.bits, l));
      }
    }
  }

  /// Number of divergence records at node n (all groups).
  std::uint32_t recordCountAt(NodeId n) const {
    const Block& b = blocks_[n.value];
    const LaneBlock* p = pool_.data() + b.offset;
    std::uint32_t total = 0;
    for (std::uint32_t i = 0; i < b.count; ++i) total += std::popcount(p[i].divMask);
    return total;
  }

  /// Outcome of a reconcile(): whether the circuit now diverges at the node,
  /// and whether the call inserted or erased a record (for callers that
  /// maintain derived indexes over record existence).
  struct Reconciled {
    bool diverges;  ///< a record now exists
    bool inserted;  ///< this call created the record
    bool erased;    ///< this call removed a previously existing record
  };

  /// Establishes circuit c's state at node n: removes the record if the
  /// value re-converges with the good circuit, else inserts/updates it.
  Reconciled reconcile(NodeId n, CircuitId c, State value) {
    FMOSSIM_ASSERT(c != kGoodCircuit, "reconcile is for faulty circuits");
    const LaneCommit lc =
        commitLanes(n, lanes::groupOf(c), 1u << lanes::laneOf(c), value);
    if (value == good_[n.value]) return {false, false, lc.erasedMask != 0};
    return {true, lc.insertedMask != 0, false};
  }

  /// Outcome of a lane-masked commit: lanes whose record this call created
  /// or removed (callers update watch/divergence counts by popcount).
  struct LaneCommit {
    std::uint32_t insertedMask = 0;
    std::uint32_t erasedMask = 0;
  };

  /// Reconciles every lane in `mask` of `group` to state `value` at node n
  /// in one word operation: per lane exactly equivalent to reconcile() on
  /// the corresponding circuit. Value == good erases the masked records;
  /// anything else inserts/updates them.
  LaneCommit commitLanes(NodeId n, std::uint32_t group, std::uint32_t mask,
                         State value) {
    Block& b = blocks_[n.value];
    LaneBlock* begin = pool_.data() + b.offset;
    LaneBlock* it = lowerBound(begin, begin + b.count, group);
    const bool present = it != begin + b.count && it->group == group;
    if (value == good_[n.value]) {
      if (!present) return {};
      const std::uint32_t erased = it->divMask & mask;
      it->divMask &= ~mask;
      totalRecords_ -= std::popcount(erased);
      if (it->divMask == 0) removeAt(b, static_cast<std::uint32_t>(it - begin));
      return {0, erased};
    }
    if (!present) {
      it = insertAt(b, static_cast<std::uint32_t>(it - begin), {group, 0, 0});
    }
    const std::uint32_t inserted = mask & ~it->divMask;
    const std::uint64_t field = lanes::spread2(mask);
    it->bits = (it->bits & ~field) | (lanes::splat2(value) & field);
    it->divMask |= mask;
    totalRecords_ += std::popcount(inserted);
    return {inserted, 0};
  }

  /// Lanes of `group` (restricted to candidateMask) whose state at node n
  /// equals `value`, where lanes without a record read `background` — the
  /// caller's circuit-independent fallback (the pre-phase good lens of the
  /// concurrent engine, which this table cannot see).
  std::uint32_t matchLanes(NodeId n, std::uint32_t group,
                           std::uint32_t candidateMask, State value,
                           State background) const {
    const LaneBlock* blk = findBlock(n, group);
    const std::uint32_t div = blk ? blk->divMask : 0;
    std::uint32_t m = (background == value) ? ~div : 0u;
    if (blk != nullptr) m |= div & lanes::eqLanes(blk->bits, value);
    return candidateMask & m;
  }

  /// Removes circuit c's record at node n if present; returns true if a
  /// record was removed.
  bool erase(NodeId n, CircuitId c) {
    Block& b = blocks_[n.value];
    LaneBlock* begin = pool_.data() + b.offset;
    LaneBlock* it = lowerBound(begin, begin + b.count, lanes::groupOf(c));
    if (it == begin + b.count || it->group != lanes::groupOf(c)) return false;
    const std::uint32_t bit = 1u << lanes::laneOf(c);
    if ((it->divMask & bit) == 0) return false;
    it->divMask &= ~bit;
    --totalRecords_;
    if (it->divMask == 0) removeAt(b, static_cast<std::uint32_t>(it - begin));
    return true;
  }

  /// Total number of divergence records (statistics).
  std::uint64_t totalRecords() const { return totalRecords_; }

  /// Arena slots (lane blocks) currently allocated (capacity diagnostics /
  /// tests).
  std::size_t arenaSize() const { return pool_.size(); }

 private:
  /// One node's block list inside the arena. capacity is 0 or a power of
  /// two >= kMinCapacity.
  struct Block {
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
    std::uint32_t capacity = 0;
  };

  static constexpr std::uint32_t kMinCapacity = 2;

  static const LaneBlock* lowerBound(const LaneBlock* first,
                                     const LaneBlock* last,
                                     std::uint32_t group) {
    return std::lower_bound(
        first, last, group,
        [](const LaneBlock& b, std::uint32_t g) { return b.group < g; });
  }
  static LaneBlock* lowerBound(LaneBlock* first, LaneBlock* last,
                               std::uint32_t group) {
    return const_cast<LaneBlock*>(
        lowerBound(static_cast<const LaneBlock*>(first), last, group));
  }

  /// Inserts `blk` at position pos of node block list b and returns its
  /// (possibly relocated) address.
  LaneBlock* insertAt(Block& b, std::uint32_t pos, LaneBlock blk) {
    if (b.count == b.capacity) growBlock(b);
    LaneBlock* begin = pool_.data() + b.offset;
    for (std::uint32_t i = b.count; i > pos; --i) begin[i] = begin[i - 1];
    begin[pos] = blk;
    ++b.count;
    return begin + pos;
  }

  void removeAt(Block& b, std::uint32_t pos) {
    LaneBlock* begin = pool_.data() + b.offset;
    for (std::uint32_t i = pos + 1; i < b.count; ++i) begin[i - 1] = begin[i];
    --b.count;
  }

  /// Moves the block list to a capacity-doubled arena region (recycling
  /// freed regions of the target class when available).
  void growBlock(Block& b);

  /// Free-list index of a capacity class (2 -> 0, 4 -> 1, ...).
  static unsigned classOf(std::uint32_t capacity) {
    return static_cast<unsigned>(std::countr_zero(capacity)) - 1;
  }

  std::vector<State> good_;
  std::vector<Block> blocks_;
  std::vector<LaneBlock> pool_;
  /// freeLists_[k] holds arena offsets of recycled block lists with capacity
  /// kMinCapacity << k.
  std::vector<std::vector<std::uint32_t>> freeLists_;
  std::uint64_t totalRecords_ = 0;
};

}  // namespace fmossim
