// Per-node state lists — the central data structure of the concurrent
// algorithm (paper §4):
//
//   "we maintain a separate state list for each node, containing records of
//    the form <i, s_i>, indicating that in circuit i ... this node has state
//    s_i. Such records are maintained only for the good circuit, and for
//    those circuits i such that s_i != s_0."
//
// The good circuit's state is a flat array; each node additionally carries a
// vector of divergence records sorted by circuit ID. Scans with remembered
// positions over these sorted vectors play the role of the paper's "shadow
// pointers".
#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault.hpp"
#include "switch/network.hpp"

namespace fmossim {

struct StateRecord {
  CircuitId circuit;
  State value;
};

class StateTable {
 public:
  explicit StateTable(const Network& net)
      : good_(net.numNodes(), State::SX), records_(net.numNodes()) {}

  // --- good circuit --------------------------------------------------------

  State good(NodeId n) const { return good_[n.value]; }
  void setGood(NodeId n, State s) { good_[n.value] = s; }

  // --- divergence records --------------------------------------------------

  /// State of node n in circuit c: its record if present, else the good
  /// state (the concurrent representation invariant).
  State stateOf(NodeId n, CircuitId c) const {
    if (c != kGoodCircuit) {
      const auto& recs = records_[n.value];
      const auto it = find(recs, c);
      if (it != recs.end() && it->circuit == c) return it->value;
    }
    return good_[n.value];
  }

  bool hasRecord(NodeId n, CircuitId c) const {
    return findRecord(n, c) != nullptr;
  }

  /// Pointer to circuit c's record at node n, or nullptr if the circuit
  /// agrees with the good circuit there.
  const StateRecord* findRecord(NodeId n, CircuitId c) const {
    const auto& recs = records_[n.value];
    const auto it = find(recs, c);
    return (it != recs.end() && it->circuit == c) ? &*it : nullptr;
  }

  /// All divergence records of a node, sorted by circuit ID.
  const std::vector<StateRecord>& records(NodeId n) const {
    return records_[n.value];
  }

  /// Establishes circuit c's state at node n: removes the record if the
  /// value re-converges with the good circuit, else inserts/updates it.
  /// Returns true if a record now exists (i.e. the circuit diverges here).
  bool reconcile(NodeId n, CircuitId c, State value);

  /// Removes circuit c's record at node n if present.
  void erase(NodeId n, CircuitId c);

  /// Total number of divergence records (statistics).
  std::uint64_t totalRecords() const { return totalRecords_; }

 private:
  static std::vector<StateRecord>::const_iterator find(
      const std::vector<StateRecord>& recs, CircuitId c);

  std::vector<State> good_;
  std::vector<std::vector<StateRecord>> records_;
  std::uint64_t totalRecords_ = 0;
};

}  // namespace fmossim
