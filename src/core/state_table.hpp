// Per-node state lists — the central data structure of the concurrent
// algorithm (paper §4):
//
//   "we maintain a separate state list for each node, containing records of
//    the form <i, s_i>, indicating that in circuit i ... this node has state
//    s_i. Such records are maintained only for the good circuit, and for
//    those circuits i such that s_i != s_0."
//
// The good circuit's state is a flat array; each node additionally carries a
// block of divergence records sorted by circuit ID. All blocks live in one
// shared arena (a single std::vector<StateRecord> pool) indexed by per-node
// {offset, count, capacity} descriptors: scanning a node's records — the
// inner loop of trigger collection — touches one contiguous region instead
// of chasing a per-node heap vector, and inserting a record never allocates
// unless its block outgrows a power-of-two capacity class (freed blocks are
// recycled through per-class free lists).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "faults/fault.hpp"
#include "switch/network.hpp"

namespace fmossim {

/// One divergence record: circuit `circuit` holds state `value` at this node
/// (necessarily different from the good circuit's state there).
struct StateRecord {
  CircuitId circuit;
  State value;

  bool operator==(const StateRecord&) const = default;
};

/// Good-circuit state plus per-node divergence record lists in a shared
/// arena. Record pointers/spans are invalidated by any mutating call
/// (reconcile/erase); do not hold them across mutations.
class StateTable {
 public:
  explicit StateTable(const Network& net)
      : good_(net.numNodes(), State::SX), blocks_(net.numNodes()) {}

  // --- good circuit --------------------------------------------------------

  /// State of node n in the good circuit.
  State good(NodeId n) const { return good_[n.value]; }
  /// Sets the good-circuit state of node n (divergence records unchanged).
  void setGood(NodeId n, State s) { good_[n.value] = s; }

  // --- divergence records --------------------------------------------------

  /// State of node n in circuit c: its record if present, else the good
  /// state (the concurrent representation invariant).
  State stateOf(NodeId n, CircuitId c) const {
    if (c != kGoodCircuit) {
      if (const StateRecord* r = findRecord(n, c)) return r->value;
    }
    return good_[n.value];
  }

  /// True if circuit c diverges from the good circuit at node n.
  bool hasRecord(NodeId n, CircuitId c) const {
    return findRecord(n, c) != nullptr;
  }

  /// Pointer to circuit c's record at node n, or nullptr if the circuit
  /// agrees with the good circuit there. Invalidated by mutation.
  const StateRecord* findRecord(NodeId n, CircuitId c) const {
    const Block& b = blocks_[n.value];
    const StateRecord* begin = pool_.data() + b.offset;
    const StateRecord* it = lowerBound(begin, begin + b.count, c);
    return (it != begin + b.count && it->circuit == c) ? it : nullptr;
  }

  /// All divergence records of a node, sorted by circuit ID. Invalidated by
  /// mutation.
  std::span<const StateRecord> records(NodeId n) const {
    const Block& b = blocks_[n.value];
    return {pool_.data() + b.offset, b.count};
  }

  /// Outcome of a reconcile(): whether the circuit now diverges at the node,
  /// and whether the call inserted or erased a record (for callers that
  /// maintain derived indexes over record existence).
  struct Reconciled {
    bool diverges;  ///< a record now exists
    bool inserted;  ///< this call created the record
    bool erased;    ///< this call removed a previously existing record
  };

  /// Establishes circuit c's state at node n: removes the record if the
  /// value re-converges with the good circuit, else inserts/updates it.
  Reconciled reconcile(NodeId n, CircuitId c, State value) {
    FMOSSIM_ASSERT(c != kGoodCircuit, "reconcile is for faulty circuits");
    Block& b = blocks_[n.value];
    StateRecord* begin = pool_.data() + b.offset;
    StateRecord* it = lowerBound(begin, begin + b.count, c);
    const bool present = it != begin + b.count && it->circuit == c;
    if (value == good_[n.value]) {
      if (present) {
        removeAt(b, static_cast<std::uint32_t>(it - begin));
        --totalRecords_;
      }
      return {false, false, present};
    }
    if (present) {
      it->value = value;
    } else {
      insertAt(b, static_cast<std::uint32_t>(it - begin), {c, value});
      ++totalRecords_;
    }
    return {true, !present, false};
  }

  /// Removes circuit c's record at node n if present; returns true if a
  /// record was removed.
  bool erase(NodeId n, CircuitId c) {
    Block& b = blocks_[n.value];
    StateRecord* begin = pool_.data() + b.offset;
    StateRecord* it = lowerBound(begin, begin + b.count, c);
    if (it != begin + b.count && it->circuit == c) {
      removeAt(b, static_cast<std::uint32_t>(it - begin));
      --totalRecords_;
      return true;
    }
    return false;
  }

  /// Total number of divergence records (statistics).
  std::uint64_t totalRecords() const { return totalRecords_; }

  /// Arena slots currently allocated (capacity diagnostics / tests).
  std::size_t arenaSize() const { return pool_.size(); }

 private:
  /// One node's record block inside the arena. capacity is 0 or a power of
  /// two >= kMinCapacity.
  struct Block {
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
    std::uint32_t capacity = 0;
  };

  static constexpr std::uint32_t kMinCapacity = 4;

  static const StateRecord* lowerBound(const StateRecord* first,
                                       const StateRecord* last, CircuitId c) {
    return std::lower_bound(
        first, last, c,
        [](const StateRecord& r, CircuitId id) { return r.circuit < id; });
  }
  static StateRecord* lowerBound(StateRecord* first, StateRecord* last,
                                 CircuitId c) {
    return const_cast<StateRecord*>(
        lowerBound(static_cast<const StateRecord*>(first), last, c));
  }

  void insertAt(Block& b, std::uint32_t pos, StateRecord rec) {
    if (b.count == b.capacity) growBlock(b);
    StateRecord* begin = pool_.data() + b.offset;
    for (std::uint32_t i = b.count; i > pos; --i) begin[i] = begin[i - 1];
    begin[pos] = rec;
    ++b.count;
  }

  void removeAt(Block& b, std::uint32_t pos) {
    StateRecord* begin = pool_.data() + b.offset;
    for (std::uint32_t i = pos + 1; i < b.count; ++i) begin[i - 1] = begin[i];
    --b.count;
  }

  /// Moves the block to a capacity-doubled arena region (recycling freed
  /// regions of the target class when available).
  void growBlock(Block& b);

  /// Free-list index of a capacity class (4 -> 0, 8 -> 1, ...).
  static unsigned classOf(std::uint32_t capacity) {
    return static_cast<unsigned>(std::countr_zero(capacity)) - 2;
  }

  std::vector<State> good_;
  std::vector<Block> blocks_;
  std::vector<StateRecord> pool_;
  /// freeLists_[k] holds arena offsets of recycled blocks with capacity
  /// kMinCapacity << k.
  std::vector<std::vector<std::uint32_t>> freeLists_;
  std::uint64_t totalRecords_ = 0;
};

}  // namespace fmossim
