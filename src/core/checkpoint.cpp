#include "core/checkpoint.hpp"

#include "core/concurrent_sim.hpp"

namespace fmossim {

namespace {

inline void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ULL;
  }
}

}  // namespace

std::uint64_t GoodMachineCheckpoint::fingerprint(const TestSequence& seq) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  fnv(h, seq.size());
  for (const Pattern& p : seq.patterns()) {
    fnv(h, p.settings.size());
    for (const InputSetting& s : p.settings) {
      fnv(h, s.assignments.size());
      for (const auto& [n, v] : s.assignments) {
        fnv(h, (std::uint64_t(n.value) << 8) | std::uint64_t(v));
      }
    }
  }
  fnv(h, seq.outputs().size());
  for (const NodeId out : seq.outputs()) fnv(h, out.value);
  return h;
}

GoodMachineCheckpoint GoodMachineCheckpoint::record(const Network& net,
                                                    const TestSequence& seq,
                                                    const FsimOptions& options) {
  GoodMachineCheckpoint ck;
  CheckpointRecorder rec(ck);
  // A fault-free concurrent run *is* the good machine: every phase it
  // executes is a good phase, in exactly the order and with exactly the
  // coercion timing any engine simulating this sequence reproduces.
  ConcurrentFaultSimulator sim(net, FaultList(), options, &rec);
  ck.initialGoodStates_.reserve(net.numNodes());
  for (std::uint32_t n = 0; n < net.numNodes(); ++n) {
    ck.initialGoodStates_.push_back(sim.goodState(NodeId(n)));
  }
  const FaultSimResult res = sim.run(seq);
  ck.finalGoodStates_ = res.finalGoodStates;
  ck.perPatternGoodEvals_.reserve(res.perPattern.size());
  for (const PatternStat& st : res.perPattern) {
    ck.perPatternGoodEvals_.push_back(st.nodeEvals);
  }
  ck.totalGoodEvals_ = res.totalNodeEvals;
  ck.recordSeconds_ = res.totalSeconds;
  // Settle k >= 1 is the k-th input setting in run order; each pattern owns
  // a contiguous run of settles.
  ck.patternSettleEnd_.reserve(seq.size());
  std::uint32_t settle = 1;
  for (const Pattern& p : seq.patterns()) {
    settle += static_cast<std::uint32_t>(p.settings.size());
    ck.patternSettleEnd_.push_back(settle);
  }
  FMOSSIM_ASSERT(settle == ck.numSettles(),
                 "checkpoint recording lost a settle block");
  ck.seqFingerprint_ = fingerprint(seq);
  return ck;
}

std::vector<State> GoodMachineCheckpoint::goodStateAfterPattern(
    std::uint32_t p) const {
  FMOSSIM_ASSERT(p < patternSettleEnd_.size(),
                 "goodStateAfterPattern: pattern index out of range");
  std::vector<State> state = initialGoodStates_;
  const std::uint32_t settleEnd = patternSettleEnd_[p];
  for (std::uint32_t s = 1; s < settleEnd; ++s) {
    const Settle& blk = settles_[s];
    for (const Change& ch : inputChanges(blk)) {
      state[ch.node.value] = ch.value;
    }
    for (std::uint32_t ph = 0; ph < blk.phaseCount; ++ph) {
      for (const Change& ch : changes(phases_[blk.phaseOff + ph])) {
        state[ch.node.value] = ch.value;
      }
    }
  }
  return state;
}

std::size_t GoodMachineCheckpoint::memoryBytes() const {
  return settles_.capacity() * sizeof(Settle) +
         phases_.capacity() * sizeof(Phase) +
         vics_.capacity() * sizeof(VicinitySpan) +
         members_.capacity() * sizeof(NodeId) +
         changes_.capacity() * sizeof(Change) +
         inputChanges_.capacity() * sizeof(Change) +
         initialGoodStates_.capacity() * sizeof(State) +
         finalGoodStates_.capacity() * sizeof(State) +
         perPatternGoodEvals_.capacity() * sizeof(std::uint64_t) +
         patternSettleEnd_.capacity() * sizeof(std::uint32_t);
}

void CheckpointRecorder::inputChange(NodeId n, State v) {
  ck_.inputChanges_.push_back({n, v});
}

void CheckpointRecorder::beginSettle() {
  const auto total = static_cast<std::uint32_t>(ck_.inputChanges_.size());
  ck_.settles_.push_back({static_cast<std::uint32_t>(ck_.phases_.size()), 0,
                          inputMark_, total - inputMark_});
  inputMark_ = total;
}

void CheckpointRecorder::beginPhase() {
  FMOSSIM_ASSERT(!ck_.settles_.empty(), "phase recorded before any settle");
  ck_.phases_.push_back({static_cast<std::uint32_t>(ck_.vics_.size()), 0,
                         static_cast<std::uint32_t>(ck_.changes_.size()), 0});
  ++ck_.settles_.back().phaseCount;
}

void CheckpointRecorder::goodVicinity(const Vicinity& vic) {
  ck_.vics_.push_back({static_cast<std::uint32_t>(ck_.members_.size()),
                       static_cast<std::uint32_t>(vic.members.size())});
  ck_.members_.insert(ck_.members_.end(), vic.members.begin(),
                      vic.members.end());
  ++ck_.phases_.back().vicCount;
}

void CheckpointRecorder::goodCommit(NodeId n, State v) {
  ck_.changes_.push_back({n, v});
  ++ck_.phases_.back().changeCount;
}

}  // namespace fmossim
