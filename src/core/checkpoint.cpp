#include "core/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <list>
#include <mutex>
#include <unordered_map>

#include "core/concurrent_sim.hpp"
#include "patterns/pattern_source.hpp"
#include "util/hash.hpp"

namespace fmossim {

namespace {

template <typename T>
std::size_t vecBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

// --- chunk (de)serialization -------------------------------------------------
//
// A spilled chunk is six raw POD arrays behind a count header. The file is
// private to the process (created unlinked, read back by the same build), so
// native layout is fine — no endianness or padding concerns.

struct BlockHeader {
  std::uint32_t settles, phases, vics, members, changes, inputs;
};

template <typename T>
void appendRaw(std::string& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (v.empty()) return;
  const std::size_t off = out.size();
  out.resize(off + v.size() * sizeof(T));
  std::memcpy(out.data() + off, v.data(), v.size() * sizeof(T));
}

template <typename T>
const char* readRaw(const char* p, const char* end, std::vector<T>& v,
                    std::uint32_t count) {
  static_assert(std::is_trivially_copyable_v<T>);
  v.resize(count);
  if (count == 0) return p;
  const std::size_t bytes = std::size_t(count) * sizeof(T);
  FMOSSIM_ASSERT(p + bytes <= end, "checkpoint spill chunk truncated");
  std::memcpy(v.data(), p, bytes);
  return p + bytes;
}

std::string encodeBlock(const GoodMachineCheckpoint::SettleBlock& b) {
  std::string out;
  const BlockHeader h{static_cast<std::uint32_t>(b.settles.size()),
                      static_cast<std::uint32_t>(b.phases.size()),
                      static_cast<std::uint32_t>(b.vics.size()),
                      static_cast<std::uint32_t>(b.members.size()),
                      static_cast<std::uint32_t>(b.changes.size()),
                      static_cast<std::uint32_t>(b.inputChanges.size())};
  out.append(reinterpret_cast<const char*>(&h), sizeof h);
  appendRaw(out, b.settles);
  appendRaw(out, b.phases);
  appendRaw(out, b.vics);
  appendRaw(out, b.members);
  appendRaw(out, b.changes);
  appendRaw(out, b.inputChanges);
  return out;
}

void decodeBlock(const char* p, std::size_t size,
                 GoodMachineCheckpoint::SettleBlock& b) {
  const char* end = p + size;
  FMOSSIM_ASSERT(size >= sizeof(BlockHeader), "checkpoint spill chunk truncated");
  BlockHeader h;
  std::memcpy(&h, p, sizeof h);
  p += sizeof h;
  p = readRaw(p, end, b.settles, h.settles);
  p = readRaw(p, end, b.phases, h.phases);
  p = readRaw(p, end, b.vics, h.vics);
  p = readRaw(p, end, b.members, h.members);
  p = readRaw(p, end, b.changes, h.changes);
  p = readRaw(p, end, b.inputChanges, h.inputs);
  FMOSSIM_ASSERT(p == end, "checkpoint spill chunk has trailing bytes");
}

}  // namespace

std::size_t GoodMachineCheckpoint::SettleBlock::bytes() const {
  return vecBytes(settles) + vecBytes(phases) + vecBytes(vics) +
         vecBytes(members) + vecBytes(changes) + vecBytes(inputChanges);
}

std::size_t GoodMachineCheckpoint::SettleBlock::contentBytes() const {
  return settles.size() * sizeof(Settle) + phases.size() * sizeof(Phase) +
         vics.size() * sizeof(VicinitySpan) + members.size() * sizeof(NodeId) +
         changes.size() * sizeof(Change) + inputChanges.size() * sizeof(Change);
}

// --- spill state ------------------------------------------------------------

/// The temp-file backing store plus the sliding replay window: an LRU cache
/// of decoded chunks, internally synchronized so concurrently replaying
/// engines (one CheckpointReader each) share it. A reader pins its current
/// chunk via shared_ptr; pinned chunks are never evicted, so spans handed
/// out by a reader stay valid until its next enterSettle().
struct GoodMachineCheckpoint::SpillState {
  int fd = -1;
  std::vector<std::uint64_t> blockOff;     ///< numChunks + 1 file offsets
  std::vector<std::uint32_t> firstSettle;  ///< per chunk: first settle index
  std::uint32_t settleTotal = 0;           ///< settles across flushed chunks
  std::size_t windowBudget = 0;            ///< bytes of decoded chunks to keep
  std::size_t maxBlockBytes = 0;           ///< largest encoded chunk seen

  mutable std::mutex mu;
  struct Entry {
    std::shared_ptr<const SettleBlock> block;
    std::list<std::uint32_t>::iterator lruIt;
    std::size_t bytes = 0;
  };
  mutable std::list<std::uint32_t> lru;  ///< front = most recently used
  mutable std::unordered_map<std::uint32_t, Entry> cache;
  mutable std::size_t cachedBytes = 0;

  ~SpillState() {
    if (fd >= 0) ::close(fd);
  }

  void open(const std::string& spillDir) {
    std::string dir = spillDir;
    if (dir.empty()) {
      std::error_code ec;
      const std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
      // (ternary + move assignment rather than `dir = "..."`: GCC 12's
      // -Wrestrict false-fires on the char* assign inlined here)
      dir = ec ? std::string(1, '.') : tmp.string();
    }
    std::string tmpl = dir + "/fmossim-checkpoint-XXXXXX";
    fd = ::mkstemp(tmpl.data());
    if (fd < 0) {
      throw Error("cannot create checkpoint spill file in '" + dir + "'");
    }
    // Unlink immediately: the kernel reclaims the blocks when the last fd
    // closes, so no crash can leak a spill file.
    ::unlink(tmpl.c_str());
    blockOff.push_back(0);
  }

  void appendBlock(const std::string& encoded, std::uint32_t settleCount) {
    const std::uint64_t off = blockOff.back();
    std::size_t done = 0;
    while (done < encoded.size()) {
      const ssize_t n = ::pwrite(fd, encoded.data() + done,
                                 encoded.size() - done,
                                 static_cast<off_t>(off + done));
      if (n < 0) throw Error("checkpoint spill write failed");
      done += static_cast<std::size_t>(n);
    }
    blockOff.push_back(off + encoded.size());
    firstSettle.push_back(settleTotal);
    settleTotal += settleCount;
    maxBlockBytes = std::max(maxBlockBytes, encoded.size());
  }

  void readBlock(std::uint32_t i, std::string& buf) const {
    const std::uint64_t off = blockOff[i];
    const std::size_t size = static_cast<std::size_t>(blockOff[i + 1] - off);
    buf.resize(size);
    std::size_t done = 0;
    while (done < size) {
      const ssize_t n = ::pread(fd, buf.data() + done, size - done,
                                static_cast<off_t>(off + done));
      if (n <= 0) throw Error("checkpoint spill read failed");
      done += static_cast<std::size_t>(n);
    }
  }
};

// --- GoodMachineCheckpoint ---------------------------------------------------

GoodMachineCheckpoint::GoodMachineCheckpoint() = default;
GoodMachineCheckpoint::GoodMachineCheckpoint(GoodMachineCheckpoint&&) noexcept =
    default;
GoodMachineCheckpoint& GoodMachineCheckpoint::operator=(
    GoodMachineCheckpoint&&) noexcept = default;
GoodMachineCheckpoint::~GoodMachineCheckpoint() = default;

std::uint64_t GoodMachineCheckpoint::fingerprint(const TestSequence& seq) {
  std::uint64_t h = kFnvOffsetBasis;
  fnvMix(h, seq.size());
  for (const Pattern& p : seq.patterns()) {
    fnvMix(h, p.settings.size());
    for (const InputSetting& s : p.settings) {
      fnvMix(h, s.assignments.size());
      for (const auto& [n, v] : s.assignments) {
        fnvMix(h, (std::uint64_t(n.value) << 8) | std::uint64_t(v));
      }
    }
  }
  fnvMix(h, seq.outputs().size());
  for (const NodeId out : seq.outputs()) fnvMix(h, out.value);
  return h;
}

GoodMachineCheckpoint GoodMachineCheckpoint::record(const Network& net,
                                                    const TestSequence& seq,
                                                    const FsimOptions& options,
                                                    std::size_t budgetBytes,
                                                    const std::string& spillDir) {
  MaterializedPatternSource source(seq);
  return recordImpl(net, source, options, budgetBytes, spillDir,
                    /*keepPerPatternEvals=*/true);
}

GoodMachineCheckpoint GoodMachineCheckpoint::record(const Network& net,
                                                    PatternSource& source,
                                                    const FsimOptions& options,
                                                    std::size_t budgetBytes,
                                                    const std::string& spillDir) {
  return recordImpl(net, source, options, budgetBytes, spillDir,
                    /*keepPerPatternEvals=*/false);
}

GoodMachineCheckpoint GoodMachineCheckpoint::recordImpl(
    const Network& net, PatternSource& source, const FsimOptions& options,
    std::size_t budgetBytes, const std::string& spillDir,
    bool keepPerPatternEvals) {
  GoodMachineCheckpoint ck;
  ck.budgetBytes_ = budgetBytes;
  ck.streamed_ = !keepPerPatternEvals;
  if (budgetBytes > 0) {
    ck.spill_ = std::make_unique<SpillState>();
    ck.spill_->open(spillDir);
  }
  // One fingerprint pass first (the source rewinds around it) — the
  // identical fold to fingerprint(seq), so a streamed recording of a
  // generator-backed sequence keys the same as its materialized twin.
  ck.seqFingerprint_ = source.fingerprint();
  ck.outputs_ = source.outputs();
  CheckpointRecorder rec(ck);
  // A fault-free concurrent run *is* the good machine: every phase it
  // executes is a good phase, in exactly the order and with exactly the
  // coercion timing any engine simulating this sequence reproduces.
  ConcurrentFaultSimulator sim(net, FaultList(), options, &rec);
  ck.initialGoodStates_.reserve(net.numNodes());
  for (std::uint32_t n = 0; n < net.numNodes(); ++n) {
    ck.initialGoodStates_.push_back(sim.goodState(NodeId(n)));
  }
  std::function<void(const PatternStat&)> onPattern;
  if (keepPerPatternEvals) {
    ck.perPatternGoodEvals_.reserve(
        static_cast<std::size_t>(source.numPatterns()));
    onPattern = [&ck](const PatternStat& st) {
      ck.perPatternGoodEvals_.push_back(st.nodeEvals);
    };
  }
  const FaultSimResult res = sim.run(source, nullptr, onPattern);
  rec.finish();
  ck.finalGoodStates_ = res.finalGoodStates;
  ck.totalGoodEvals_ = res.totalNodeEvals;
  ck.recordSeconds_ = res.totalSeconds;
  FMOSSIM_ASSERT(ck.numPatterns_ == source.numPatterns(),
                 "checkpoint recording lost a pattern boundary");
  FMOSSIM_ASSERT(
      ck.settleCount_ > 0 && ck.patternEndsAtSettle(ck.settleCount_ - 1),
      "checkpoint recording lost a settle");
  // Push-back growth leaves up to 2x slack in the resident vectors; return
  // it so memoryBytes() reports (and the budget governs) real content.
  ck.settles_.shrink_to_fit();
  ck.phases_.shrink_to_fit();
  ck.vics_.shrink_to_fit();
  ck.members_.shrink_to_fit();
  ck.changes_.shrink_to_fit();
  ck.inputChanges_.shrink_to_fit();
  ck.initialGoodStates_.shrink_to_fit();
  ck.perPatternGoodEvals_.shrink_to_fit();
  ck.patternEndBits_.shrink_to_fit();
  ck.outputs_.shrink_to_fit();
  if (ck.spill_ != nullptr) {
    ck.spill_->blockOff.shrink_to_fit();
    ck.spill_->firstSettle.shrink_to_fit();
    // The replay window gets whatever the budget leaves above the fixed
    // resident floor, but always at least the largest chunk: one chunk
    // must be decodable or replay cannot proceed at all.
    const std::size_t fixed = ck.fixedBytes();
    ck.spill_->windowBudget =
        std::max(budgetBytes > fixed ? budgetBytes - fixed : std::size_t{0},
                 ck.spill_->maxBlockBytes);
  }
  return ck;
}

std::uint32_t GoodMachineCheckpoint::settleEndingPattern(
    std::uint64_t p) const {
  FMOSSIM_ASSERT(p < numPatterns_,
                 "settleEndingPattern: pattern index out of range");
  // The (p+1)-th set pattern-end bit (word-skipping popcount scan).
  std::uint64_t need = p + 1;
  for (std::size_t w = 0; w < patternEndBits_.size(); ++w) {
    std::uint64_t word = patternEndBits_[w];
    const auto count = static_cast<std::uint64_t>(std::popcount(word));
    if (count < need) {
      need -= count;
      continue;
    }
    std::uint32_t b = 0;
    for (;; ++b, word >>= 1) {
      if ((word & 1) != 0 && --need == 0) break;
    }
    return static_cast<std::uint32_t>(w * 64 + b);
  }
  FMOSSIM_ASSERT(false, "pattern-end bits inconsistent");
  return 0;
}

std::vector<State> GoodMachineCheckpoint::goodStateAfterPattern(
    std::uint64_t p) const {
  const std::uint32_t settleEnd = settleEndingPattern(p) + 1;
  std::vector<State> state = initialGoodStates_;
  CheckpointReader reader(*this);
  for (std::uint32_t s = 1; s < settleEnd; ++s) {
    reader.enterSettle(s);
    for (const Change& ch : reader.inputChanges()) {
      state[ch.node.value] = ch.value;
    }
    for (std::uint32_t ph = 0; ph < reader.phaseCount(); ++ph) {
      for (const Change& ch : reader.changes(ph)) {
        state[ch.node.value] = ch.value;
      }
    }
  }
  return state;
}

std::size_t GoodMachineCheckpoint::fixedBytes() const {
  std::size_t n = vecBytes(settles_) + vecBytes(initialGoodStates_) +
                  vecBytes(finalGoodStates_) + vecBytes(perPatternGoodEvals_) +
                  vecBytes(patternEndBits_) + vecBytes(outputs_);
  if (spill_ != nullptr) {
    n += vecBytes(spill_->blockOff) + vecBytes(spill_->firstSettle);
  }
  return n;
}

std::size_t GoodMachineCheckpoint::memoryBytes() const {
  std::size_t n = fixedBytes() + vecBytes(phases_) + vecBytes(vics_) +
                  vecBytes(members_) + vecBytes(changes_) +
                  vecBytes(inputChanges_);
  if (spill_ != nullptr) {
    std::lock_guard<std::mutex> lock(spill_->mu);
    n += spill_->cachedBytes;
  }
  return n;
}

std::uint32_t GoodMachineCheckpoint::spillChunkCount() const {
  return spill_ == nullptr
             ? 0
             : static_cast<std::uint32_t>(spill_->firstSettle.size());
}

std::size_t GoodMachineCheckpoint::maxChunkBytes() const {
  return spill_ == nullptr ? 0 : spill_->maxBlockBytes;
}

std::size_t GoodMachineCheckpoint::windowBudgetBytes() const {
  return spill_ == nullptr ? 0 : spill_->windowBudget;
}

std::shared_ptr<const GoodMachineCheckpoint::SettleBlock>
GoodMachineCheckpoint::loadBlock(std::uint32_t c) const {
  SpillState& sp = *spill_;
  {
    std::lock_guard<std::mutex> lock(sp.mu);
    if (auto it = sp.cache.find(c); it != sp.cache.end()) {
      sp.lru.splice(sp.lru.begin(), sp.lru, it->second.lruIt);
      return it->second.block;
    }
  }
  // Miss: read and decode OUTSIDE the window lock — pread is thread-safe
  // and this is the expensive part, so concurrently replaying engines must
  // not serialize on each other's file I/O. Two threads missing the same
  // chunk both decode it; the loser's copy is dropped below (wasted work is
  // bounded by one chunk and is far cheaper than holding the lock across
  // disk reads).
  std::string buf;
  sp.readBlock(c, buf);
  auto block = std::make_shared<SettleBlock>();
  decodeBlock(buf.data(), buf.size(), *block);
  const std::size_t bytes = block->bytes();

  std::lock_guard<std::mutex> lock(sp.mu);
  if (auto it = sp.cache.find(c); it != sp.cache.end()) {
    sp.lru.splice(sp.lru.begin(), sp.lru, it->second.lruIt);
    return it->second.block;  // another reader inserted it meanwhile
  }
  sp.lru.push_front(c);
  sp.cache.emplace(c, SpillState::Entry{block, sp.lru.begin(), bytes});
  sp.cachedBytes += bytes;
  // Slide the window: drop least-recently-used chunks past the budget,
  // never a pinned one (a reader still hands out spans into it) and never
  // the chunk just loaded.
  for (auto it = std::prev(sp.lru.end());
       sp.cachedBytes > sp.windowBudget && it != sp.lru.begin();) {
    const auto cur = it--;
    auto entry = sp.cache.find(*cur);
    if (entry->second.block.use_count() > 1) continue;  // pinned by a reader
    sp.cachedBytes -= entry->second.bytes;
    sp.cache.erase(entry);
    sp.lru.erase(cur);
  }
  return block;
}

// --- CheckpointReader --------------------------------------------------------

CheckpointReader::CheckpointReader(const GoodMachineCheckpoint& ck)
    : ck_(&ck) {}

CheckpointReader::~CheckpointReader() {
  // Join an in-flight prefetch: its task touches the checkpoint's window
  // cache and must not outlive this reader's caller's view of the world.
  if (prefetch_.valid()) prefetch_.wait();
}

void CheckpointReader::enterSettle(std::uint32_t i) {
  FMOSSIM_ASSERT(i < ck_->numSettles(), "reader settle index out of range");
  if (ck_->spill_ == nullptr) {
    // In-memory mode: point straight into the flat arenas (offsets inside
    // Phase/VicinitySpan entries are global, so the bases are the arena
    // starts).
    const GoodMachineCheckpoint::Settle& s = ck_->settles_[i];
    phaseCount_ = s.phaseCount;
    inputCount_ = s.inputCount;
    phases_ = ck_->phases_.data() + s.phaseOff;
    vicBase_ = ck_->vics_.data();
    memberBase_ = ck_->members_.data();
    changeBase_ = ck_->changes_.data();
    inputs_ = ck_->inputChanges_.data() + s.inputOff;
    return;
  }
  // Spilled mode: find the chunk holding settle i, pin its decoded block
  // (offsets are chunk-local). Consecutive settles of one chunk — the
  // sequential replay fast path — reuse the pin without touching the
  // window cache. On a chunk switch, release the previous pin BEFORE
  // loading: spans into it are invalidated by this call anyway, and
  // holding it across the load would make the window need two chunks per
  // reader (old + new), overshooting the budget exactly when it is
  // tightest. With the pin dropped first, the eviction pass inside
  // loadBlock can reclaim the previous chunk, so one chunk per reader is
  // the true floor (as documented on memoryBytes()).
  const std::vector<std::uint32_t>& fs = ck_->spill_->firstSettle;
  const auto c = static_cast<std::uint32_t>(
      std::upper_bound(fs.begin(), fs.end(), i) - fs.begin() - 1);
  if (pin_ == nullptr || chunk_ != c) {
    pin_.reset();
    if (prefetch_.valid()) {
      // Collect the prefetched block either way: a hit is the new pin (the
      // off-thread decode already inserted it into the window cache — this
      // get() only transfers the pin); a miss (non-sequential access) must
      // still be joined before loading, or two loads could race for the
      // same reader's budget slot.
      auto fetched = prefetch_.get();
      if (readAhead_ && prefetchChunk_ == c) pin_ = std::move(fetched);
    }
    if (pin_ == nullptr) pin_ = ck_->loadBlock(c);
    chunk_ = c;
    if (readAhead_ && c + 1 < ck_->spill_->firstSettle.size()) {
      // Kick off the next chunk's load-and-decode off-thread. loadBlock is
      // const and internally synchronized; the returned pin keeps the
      // prefetched chunk evictable-but-resident until the switch above
      // claims or drops it.
      prefetchChunk_ = c + 1;
      prefetch_ = std::async(std::launch::async, [ck = ck_, next = c + 1] {
        return ck->loadBlock(next);
      });
    }
  }
  const GoodMachineCheckpoint::Settle& s = pin_->settles[i - fs[c]];
  phaseCount_ = s.phaseCount;
  inputCount_ = s.inputCount;
  phases_ = pin_->phases.data() + s.phaseOff;
  vicBase_ = pin_->vics.data();
  memberBase_ = pin_->members.data();
  changeBase_ = pin_->changes.data();
  inputs_ = pin_->inputChanges.data() + s.inputOff;
}

// --- CheckpointRecorder ------------------------------------------------------

CheckpointRecorder::CheckpointRecorder(GoodMachineCheckpoint& into)
    : ck_(into) {
  if (ck_.spill_ != nullptr) {
    // /16: several chunks fit the window even when the budget is mostly
    // consumed by the fixed floor; clamped so tiny budgets still amortize
    // encode/decode and huge ones keep eviction granular.
    chunkTarget_ = std::clamp<std::size_t>(ck_.budgetBytes_ / 16,
                                           std::size_t{2} << 10,
                                           std::size_t{64} << 10);
  }
}

void CheckpointRecorder::inputChange(NodeId n, State v) {
  pendingInputs_.push_back({n, v});
}

void CheckpointRecorder::flushChunk() {
  if (pending_.settles.empty()) return;
  GoodMachineCheckpoint::SettleBlock& b = pending_;
  if (ck_.spill_ != nullptr) {
    ck_.spill_->appendBlock(encodeBlock(b),
                            static_cast<std::uint32_t>(b.settles.size()));
  } else {
    // Append the chunk to the flat arenas, promoting its local offsets to
    // global ones — byte-for-byte the layout a direct append would build.
    const auto phaseBase = static_cast<std::uint32_t>(ck_.phases_.size());
    const auto vicBase = static_cast<std::uint32_t>(ck_.vics_.size());
    const auto memberBase = static_cast<std::uint32_t>(ck_.members_.size());
    const auto changeBase = static_cast<std::uint32_t>(ck_.changes_.size());
    const auto inputBase = static_cast<std::uint32_t>(ck_.inputChanges_.size());
    for (GoodMachineCheckpoint::Settle s : b.settles) {
      s.phaseOff += phaseBase;
      s.inputOff += inputBase;
      ck_.settles_.push_back(s);
    }
    for (GoodMachineCheckpoint::Phase p : b.phases) {
      p.vicOff += vicBase;
      p.changeOff += changeBase;
      ck_.phases_.push_back(p);
    }
    for (GoodMachineCheckpoint::VicinitySpan v : b.vics) {
      v.memberOff += memberBase;
      ck_.vics_.push_back(v);
    }
    ck_.members_.insert(ck_.members_.end(), b.members.begin(), b.members.end());
    ck_.changes_.insert(ck_.changes_.end(), b.changes.begin(), b.changes.end());
    ck_.inputChanges_.insert(ck_.inputChanges_.end(), b.inputChanges.begin(),
                             b.inputChanges.end());
  }
  b.settles.clear();
  b.phases.clear();
  b.vics.clear();
  b.members.clear();
  b.changes.clear();
  b.inputChanges.clear();
}

void CheckpointRecorder::beginSettle() {
  // In-memory mode flushes every settle (the arenas are the destination
  // anyway); spilled mode batches settles up to the chunk byte target.
  if (!pending_.settles.empty() &&
      (ck_.spill_ == nullptr || pending_.contentBytes() >= chunkTarget_)) {
    flushChunk();
  }
  const auto inputOff = static_cast<std::uint32_t>(pending_.inputChanges.size());
  const auto inputCount = static_cast<std::uint32_t>(pendingInputs_.size());
  pending_.inputChanges.insert(pending_.inputChanges.end(),
                               pendingInputs_.begin(), pendingInputs_.end());
  pendingInputs_.clear();
  pending_.settles.push_back(
      {static_cast<std::uint32_t>(pending_.phases.size()), 0, inputOff,
       inputCount});
  ++ck_.settleCount_;
}

void CheckpointRecorder::beginPhase() {
  FMOSSIM_ASSERT(!pending_.settles.empty(), "phase recorded before any settle");
  pending_.phases.push_back(
      {static_cast<std::uint32_t>(pending_.vics.size()), 0,
       static_cast<std::uint32_t>(pending_.changes.size()), 0});
  ++pending_.settles.back().phaseCount;
}

void CheckpointRecorder::goodVicinity(const Vicinity& vic) {
  pending_.vics.push_back({static_cast<std::uint32_t>(pending_.members.size()),
                           static_cast<std::uint32_t>(vic.members.size())});
  pending_.members.insert(pending_.members.end(), vic.members.begin(),
                          vic.members.end());
  ++pending_.phases.back().vicCount;
}

void CheckpointRecorder::goodCommit(NodeId n, State v) {
  pending_.changes.push_back({n, v});
  ++pending_.phases.back().changeCount;
}

void CheckpointRecorder::endPattern() {
  FMOSSIM_ASSERT(ck_.settleCount_ > 0, "pattern end recorded before any settle");
  const std::uint32_t i = ck_.settleCount_ - 1;
  auto& bits = ck_.patternEndBits_;
  if ((i >> 6) >= bits.size()) bits.resize((i >> 6) + 1, 0);
  const std::uint64_t mask = std::uint64_t{1} << (i & 63);
  FMOSSIM_ASSERT((bits[i >> 6] & mask) == 0,
                 "two pattern boundaries on one settle");
  bits[i >> 6] |= mask;
  ++ck_.numPatterns_;
}

void CheckpointRecorder::finish() {
  FMOSSIM_ASSERT(pendingInputs_.empty(),
                 "input changes recorded after the last settle");
  flushChunk();
}

}  // namespace fmossim
