#include "core/checkpoint_store.hpp"

#include "patterns/pattern_source.hpp"
#include "util/hash.hpp"

namespace fmossim {

namespace {

/// The simulation options that shape the recorded good-machine trace.
std::uint64_t simOptionsFingerprint(const FsimOptions& options) {
  std::uint64_t h = kFnvOffsetBasis;
  fnvMix(h, options.sim.settleLimit);
  fnvMix(h, options.sim.staticPartitions ? 1 : 0);
  return h;
}

}  // namespace

std::uint64_t networkFingerprint(const Network& net) {
  std::uint64_t h = kFnvOffsetBasis;
  fnvMix(h, net.domain().numSizes());
  fnvMix(h, net.domain().numStrengths());
  fnvMix(h, net.numNodes());
  for (std::uint32_t n = 0; n < net.numNodes(); ++n) {
    const Network::Node& node = net.node(NodeId(n));
    fnvMix(h, (std::uint64_t(node.size) << 1) | (node.isInput ? 1 : 0));
  }
  fnvMix(h, net.numTransistors());
  for (std::uint32_t t = 0; t < net.numTransistors(); ++t) {
    const Network::Transistor& tr = net.transistor(TransId(t));
    fnvMix(h, (std::uint64_t(static_cast<std::uint8_t>(tr.type)) << 8) |
                  std::uint64_t(tr.strength));
    fnvMix(h,
           (std::uint64_t(tr.gate.value) << 32) | std::uint64_t(tr.source.value));
    fnvMix(h, tr.drain.value);
    fnvMix(h, tr.goodConduction.has_value()
                  ? 1 + std::uint64_t(static_cast<std::uint8_t>(*tr.goodConduction))
                  : 0);
  }
  return h;
}

CheckpointStore::CheckpointStore() : CheckpointStore(Options{}) {}

CheckpointStore::CheckpointStore(Options options)
    : options_(std::move(options)) {}

template <typename RecordFn>
std::shared_ptr<const GoodMachineCheckpoint> CheckpointStore::acquireImpl(
    const Key& key, bool* recordedNow, RecordFn&& recordFn) {
  if (recordedNow != nullptr) *recordedNow = false;
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = cache_.find(key); it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    ++hits_;
    return it->second.checkpoint;
  }
  if (recordedNow != nullptr) *recordedNow = true;
  auto checkpoint =
      std::make_shared<const GoodMachineCheckpoint>(recordFn());
  ++recordings_;
  lru_.push_front(key);
  cache_.emplace(key, Entry{checkpoint, lru_.begin()});
  while (cache_.size() > std::max<std::size_t>(1, options_.maxEntries)) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  return checkpoint;
}

std::shared_ptr<const GoodMachineCheckpoint> CheckpointStore::acquire(
    const Network& net, const TestSequence& seq, const FsimOptions& options,
    bool* recordedNow) {
  const Key key{networkFingerprint(net), GoodMachineCheckpoint::fingerprint(seq),
                simOptionsFingerprint(options), false};
  return acquireImpl(key, recordedNow, [&] {
    return GoodMachineCheckpoint::record(net, seq, options,
                                         options_.budgetBytes,
                                         options_.spillDir);
  });
}

std::shared_ptr<const GoodMachineCheckpoint> CheckpointStore::acquireStream(
    const Network& net, PatternSource& source, const FsimOptions& options,
    bool* recordedNow) {
  const Key key{networkFingerprint(net), source.fingerprint(),
                simOptionsFingerprint(options), true};
  return acquireImpl(key, recordedNow, [&] {
    return GoodMachineCheckpoint::record(net, source, options,
                                         options_.budgetBytes,
                                         options_.spillDir);
  });
}

void CheckpointStore::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  lru_.clear();
}

std::uint64_t CheckpointStore::recordings() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recordings_;
}

std::uint64_t CheckpointStore::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t CheckpointStore::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

std::size_t CheckpointStore::memoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [key, entry] : cache_) {
    total += entry.checkpoint->memoryBytes();
  }
  return total;
}

}  // namespace fmossim
