/// \file
/// CheckpointStore — a shared cache of recorded good-machine checkpoints.
///
/// The paper's whole argument (§4) is that the good circuit's work should be
/// done once and shared; GoodMachineCheckpoint realizes that within one
/// sharded run, and this store extends the sharing across *runs*: engines,
/// BenchRunner rows (sharded-2 and sharded-4 of one scenario), and library
/// users simulating many fault subsets against the same sequence all reuse
/// one recording instead of re-deriving it. Entries are keyed on
/// (structural network fingerprint, sequence fingerprint, simulation
/// options), so the cache is correct across Engine instances that each own
/// their *copy* of the same network.
///
/// The store also owns the memory-budget policy: a non-zero
/// Options::budgetBytes makes every checkpoint it records spill its
/// settle-block trace to a temp-file backing store and replay through a
/// sliding in-memory window (see checkpoint.hpp), which is what lets
/// million-pattern sequences run in bounded RAM. Plumbed as
/// EngineOptions::checkpointStore / EngineOptions::checkpointBudgetBytes and
/// the CLI's `--checkpoint-budget`.
///
/// Thread-safe: acquire()/clear() may be called from any thread; a recording
/// in progress blocks other acquires (they would either wait on the same key
/// anyway or are cheap lookups).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "core/checkpoint.hpp"
#include "core/concurrent_sim.hpp"

namespace fmossim {

/// Content fingerprint of a network's simulated structure (FNV-1a over the
/// signal domain, node sizes/input flags and transistor wiring — names are
/// irrelevant to simulation and excluded). Two structurally identical
/// networks — e.g. two Engine-owned copies of one circuit — fingerprint
/// equal, which is what lets CheckpointStore share recordings across
/// engines.
std::uint64_t networkFingerprint(const Network& net);

/// Shared checkpoint cache; see the file comment.
class CheckpointStore {
 public:
  /// Store-wide policy knobs.
  struct Options {
    /// Memory budget per recorded checkpoint in bytes; 0 records in-memory
    /// (unbounded), > 0 spills the trace and bounds
    /// GoodMachineCheckpoint::memoryBytes() (see checkpoint.hpp for the
    /// fixed floor the budget must exceed).
    std::size_t budgetBytes = 0;
    /// Maximum distinct (network, sequence, options) entries kept; the
    /// least recently used entry is dropped beyond this.
    std::size_t maxEntries = 8;
    /// Directory for spill files (empty = the system temp directory).
    std::string spillDir;
  };

  CheckpointStore();  ///< default Options (in-memory, 8 entries)
  explicit CheckpointStore(Options options);

  /// The policy this store was built with.
  const Options& options() const { return options_; }

  /// Returns the cached checkpoint for (net, seq, options.sim), recording
  /// it first on a miss. The returned checkpoint is immutable and safe to
  /// replay from concurrently; it stays valid for the caller even if the
  /// store evicts or clears the entry later. Only the simulation options
  /// that shape the good-machine trace (FsimOptions::sim) key the cache —
  /// detection policy and drop mode do not affect the good machine.
  /// `recordedNow` (optional) is set to whether THIS call performed the
  /// recording — callers attributing recording cost must use it rather than
  /// diffing recordings(), which other threads can bump concurrently.
  std::shared_ptr<const GoodMachineCheckpoint> acquire(
      const Network& net, const TestSequence& seq, const FsimOptions& options,
      bool* recordedNow = nullptr);

  /// Streaming variant: keyed on the source's fingerprint (the same fold as
  /// a materialized sequence's), recording through the streaming
  /// GoodMachineCheckpoint::record overload on a miss — the source is
  /// consumed, never materialized. Streamed checkpoints omit the
  /// per-pattern good-eval array, so they live under a distinct key and are
  /// never handed to the materialized acquire() above (whose callers rely
  /// on that array), even for bit-identical sequences.
  std::shared_ptr<const GoodMachineCheckpoint> acquireStream(
      const Network& net, PatternSource& source, const FsimOptions& options,
      bool* recordedNow = nullptr);

  /// Drops every cached entry (outstanding shared_ptrs stay valid).
  void clear();

  /// Total checkpoint recordings this store ever performed (cache misses) —
  /// the bench JSON's recording counter and the cache-invalidation tests'
  /// hook.
  std::uint64_t recordings() const;

  /// Total acquire() calls served from the cache (no recording needed) —
  /// together with recordings() this gives the store's hit rate, the
  /// service-mode `stats` verb's headline redundancy metric: hits are
  /// exactly the good-machine simulations that repeat traffic did NOT pay
  /// for.
  std::uint64_t hits() const;

  /// Number of currently cached entries.
  std::size_t entries() const;

  /// Summed resident footprint (memoryBytes()) of all cached checkpoints.
  std::size_t memoryBytes() const;

 private:
  /// (network, sequence, sim options, streamed) — the last component keeps
  /// streamed (no per-pattern evals) and materialized recordings of one
  /// sequence apart.
  using Key = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, bool>;

  struct Entry {
    std::shared_ptr<const GoodMachineCheckpoint> checkpoint;
    std::list<Key>::iterator lruIt;
  };

  template <typename RecordFn>
  std::shared_ptr<const GoodMachineCheckpoint> acquireImpl(
      const Key& key, bool* recordedNow, RecordFn&& recordFn);

  Options options_;
  mutable std::mutex mu_;
  std::list<Key> lru_;  ///< front = most recently used
  std::map<Key, Entry> cache_;
  std::uint64_t recordings_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace fmossim
