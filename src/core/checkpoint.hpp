// Good-machine checkpoints — simulate the fault-free circuit once, reuse it
// everywhere (the parallel-path answer to the paper's central observation
// that the good circuit's work should be shared, not repeated).
//
// The concurrent engine already shares the good machine across all faulty
// circuits *within* one engine; a sharded run used to throw that away by
// re-simulating the good circuit once per shard. A GoodMachineCheckpoint
// captures one complete good-machine run of a test sequence as a compact
// phase-by-phase trace:
//
//   * per unit-delay phase: the member lists of every vicinity the good
//     circuit evaluated (what faulty-circuit trigger collection scans), and
//     the committed state changes (node, new value) — coercion already
//     applied, so replay is a pure data walk with no solver work;
//   * per settle (one per input setting, plus the initial all-X settle):
//     the span of phases it ran, so replay keeps the global phase counter —
//     and therefore oscillation-coercion timing — bit-aligned with an
//     unsharded run;
//   * per pattern: the good machine's logical node-evaluation count (so a
//     merged sharded result can report exactly the same deterministic work
//     counter as a jobs=1 run) and the good state of every node.
//
// Per-pattern good states are not stored as full snapshots: the change trace
// *is* the snapshot store, copy-on-write style — all patterns share the one
// change arena and goodStateAfterPattern() materializes a snapshot by
// folding the deltas up to that pattern's last settle. For the RAM256
// workload the whole trace is a few MB; spill-to-disk for huge pattern sets
// is a ROADMAP follow-on.
//
// A ConcurrentFaultSimulator constructed with a checkpoint replays the good
// machine from the trace instead of simulating it: identical good states,
// identical trigger stimuli, identical phase alignment, zero good-circuit
// solver work. ShardedRunner records the checkpoint once per (network,
// sequence) and hands it to every fault batch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "patterns/pattern.hpp"
#include "switch/network.hpp"
#include "switch/vicinity.hpp"

namespace fmossim {

struct FsimOptions;

/// One recorded good-machine run of a test sequence (see file comment).
/// Immutable after record(); safe to share across concurrently replaying
/// engines (all accessors are const).
class GoodMachineCheckpoint {
 public:
  /// One committed good-circuit state change (post-coercion; the new value
  /// always differs from the node's pre-phase state).
  struct Change {
    NodeId node;
    State value;
  };
  /// Member span of one good vicinity evaluation (into the members arena) —
  /// what faulty-circuit trigger collection scans during replay.
  struct VicinitySpan {
    std::uint32_t memberOff;
    std::uint32_t memberCount;
  };
  /// One unit-delay phase of good-circuit activity.
  struct Phase {
    std::uint32_t vicOff, vicCount;        ///< span into the vicinity table
    std::uint32_t changeOff, changeCount;  ///< span into the change arena
  };
  /// One settle (input setting application): its span of phases, plus the
  /// input-node changes applied immediately before it (empty for settle 0).
  /// Settle 0 is the initial all-X network evaluation; settle k >= 1 is the
  /// k-th input setting of the sequence, in run order. Input changes bypass
  /// the phase commit path in the engine, so snapshot folding needs them
  /// recorded separately.
  struct Settle {
    std::uint32_t phaseOff, phaseCount;
    std::uint32_t inputOff, inputCount;  ///< span into the input-change arena
  };

  /// Records the good machine of `net` over `seq`: runs a fault-free
  /// concurrent simulation with `options` (detection knobs are irrelevant;
  /// options.sim controls settle limits) and captures the trace.
  /// Deterministic: identical inputs produce identical checkpoints.
  static GoodMachineCheckpoint record(const Network& net,
                                      const TestSequence& seq,
                                      const FsimOptions& options);

  /// Content fingerprint of a test sequence (FNV-1a over patterns, settings
  /// and outputs). Replay asserts the sequence it runs matches the one
  /// recorded; ShardedRunner keys its checkpoint cache on this.
  static std::uint64_t fingerprint(const TestSequence& seq);

  // --- replay accessors ------------------------------------------------------

  /// Number of recorded settles (1 + total input settings of the sequence).
  std::uint32_t numSettles() const {
    return static_cast<std::uint32_t>(settles_.size());
  }
  /// The i-th settle's phase span.
  const Settle& settle(std::uint32_t i) const { return settles_[i]; }
  /// Phase by global index (settle.phaseOff + k).
  const Phase& phase(std::uint32_t i) const { return phases_[i]; }
  /// The vicinities the good circuit evaluated in a phase, in evaluation
  /// order (replay must preserve it: faulty-circuit seed order depends on it).
  std::span<const VicinitySpan> vicinities(const Phase& p) const {
    return {vics_.data() + p.vicOff, p.vicCount};
  }
  /// Member nodes of one recorded vicinity.
  std::span<const NodeId> members(const VicinitySpan& v) const {
    return {members_.data() + v.memberOff, v.memberCount};
  }
  /// The state changes the good circuit committed in a phase.
  std::span<const Change> changes(const Phase& p) const {
    return {changes_.data() + p.changeOff, p.changeCount};
  }
  /// The input-node changes applied just before a settle.
  std::span<const Change> inputChanges(const Settle& s) const {
    return {inputChanges_.data() + s.inputOff, s.inputCount};
  }

  // --- whole-run data --------------------------------------------------------

  /// Fingerprint of the recorded sequence (see fingerprint()).
  std::uint64_t seqFingerprint() const { return seqFingerprint_; }
  /// Number of nodes of the recorded network.
  std::uint32_t numNodes() const {
    return static_cast<std::uint32_t>(finalGoodStates_.size());
  }
  /// Number of patterns of the recorded sequence.
  std::uint32_t numPatterns() const {
    return static_cast<std::uint32_t>(perPatternGoodEvals_.size());
  }
  /// Good state of every node after the last pattern (what an early-exiting
  /// replay reports as finalGoodStates).
  const std::vector<State>& finalGoodStates() const { return finalGoodStates_; }
  /// Good-machine logical node evaluations per pattern — the work a replay
  /// avoids; merged into sharded results so their deterministic work counter
  /// equals a jobs=1 run's exactly.
  const std::vector<std::uint64_t>& perPatternGoodEvals() const {
    return perPatternGoodEvals_;
  }
  /// Total good-machine node evaluations over the sequence (excluding the
  /// initial settle, matching FaultSimResult::totalNodeEvals semantics).
  std::uint64_t totalGoodEvals() const { return totalGoodEvals_; }
  /// Wall-clock seconds the recording run took (diagnostics).
  double recordSeconds() const { return recordSeconds_; }

  /// Materializes the good state of every node after pattern `p` by folding
  /// the change trace up to that pattern's last settle (the copy-on-write
  /// read path; O(nodes + changes up to p)).
  std::vector<State> goodStateAfterPattern(std::uint32_t p) const;

  /// Approximate heap footprint of the trace in bytes (spill-to-disk
  /// planning; see ROADMAP).
  std::size_t memoryBytes() const;

 private:
  friend class CheckpointRecorder;

  std::vector<Settle> settles_;
  std::vector<Phase> phases_;
  std::vector<VicinitySpan> vics_;
  std::vector<NodeId> members_;
  std::vector<Change> changes_;
  std::vector<Change> inputChanges_;

  std::vector<State> initialGoodStates_;  ///< after the initial all-X settle
  std::vector<State> finalGoodStates_;
  std::vector<std::uint64_t> perPatternGoodEvals_;
  /// One past the last settle index of each pattern (snapshot folding).
  std::vector<std::uint32_t> patternSettleEnd_;
  std::uint64_t totalGoodEvals_ = 0;
  std::uint64_t seqFingerprint_ = 0;
  double recordSeconds_ = 0.0;
};

/// Recording sink the concurrent engine drives during a checkpoint-recording
/// run. Appends to the checkpoint's flat arenas; one beginSettle() per
/// settleAll(), one beginPhase() per unit-delay phase, then the phase's good
/// vicinities and commits in engine order.
class CheckpointRecorder {
 public:
  /// Records into `into` (must outlive the recorder).
  explicit CheckpointRecorder(GoodMachineCheckpoint& into) : ck_(into) {}

  /// Records one input-node assignment (old != new); attached to the settle
  /// the engine runs next.
  void inputChange(NodeId n, State v);
  /// Opens the next settle block.
  void beginSettle();
  /// Opens the next phase of the current settle.
  void beginPhase();
  /// Records one good-vicinity evaluation (member list only).
  void goodVicinity(const Vicinity& vic);
  /// Records one committed good-circuit change (post-coercion, old != new).
  void goodCommit(NodeId n, State v);

 private:
  GoodMachineCheckpoint& ck_;
  std::uint32_t inputMark_ = 0;  ///< input changes already owned by a settle
};

}  // namespace fmossim
