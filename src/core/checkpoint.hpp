// Good-machine checkpoints — simulate the fault-free circuit once, reuse it
// everywhere (the parallel-path answer to the paper's central observation
// that the good circuit's work should be shared, not repeated).
//
// The concurrent engine already shares the good machine across all faulty
// circuits *within* one engine; a sharded run used to throw that away by
// re-simulating the good circuit once per shard. A GoodMachineCheckpoint
// captures one complete good-machine run of a test sequence as a compact
// settle-by-settle, phase-by-phase trace:
//
//   * per unit-delay phase: the member lists of every vicinity the good
//     circuit evaluated (what faulty-circuit trigger collection scans), and
//     the committed state changes (node, new value) — coercion already
//     applied, so replay is a pure data walk with no solver work;
//   * per settle (one per input setting, plus the initial all-X settle):
//     the span of phases it ran, so replay keeps the global phase counter —
//     and therefore oscillation-coercion timing — bit-aligned with an
//     unsharded run, plus the input-node changes applied just before it —
//     so replay can drive the whole sequence from the trace alone
//     (ConcurrentFaultSimulator::runReplay), without a materialized
//     TestSequence;
//   * per pattern: which settle ends it (one bit per settle) and the
//     observed outputs, so replay knows when to observe; for materialized
//     recordings additionally the good machine's logical node-evaluation
//     count per pattern (so a merged sharded result can report exactly the
//     same deterministic work counter as a jobs=1 run).
//
// Per-pattern good states are not stored as full snapshots: the change trace
// *is* the snapshot store, copy-on-write style — all patterns share the one
// change arena and goodStateAfterPattern() materializes a snapshot by
// folding the deltas up to that pattern's last settle.
//
// Storage has two modes, chosen at record() time by `budgetBytes`:
//
//   * **In-memory (budget 0).** The trace lives in flat arenas (one vector
//     per kind, settles concatenated in run order, offsets global) — ~14 MB
//     for RAM256's 1447 patterns.
//   * **Spilled (budget > 0).** The trace grows linearly with good-machine
//     activity, so million-pattern sequences cannot hold it in RAM. Settles
//     are batched into fixed-target *chunks* (a few KiB to 64 KiB of trace
//     each) that are streamed to an unlinked temp file as they fill and
//     replayed back through a sliding in-memory window (an LRU cache of
//     decoded chunks) sized so that the checkpoint's resident footprint —
//     reported by memoryBytes() — stays within the budget. Chunking keeps
//     the resident per-settle index tiny (two words per *chunk*, one bit
//     per settle), so a million-settle recording fits comfortably under a
//     single-digit-MiB budget; within it, eviction and re-reads are
//     invisible: replay is bit-identical to the in-memory mode.
//
// All replay access goes through a CheckpointReader cursor (one per
// replaying engine); the trace itself is immutable after record() and safe
// to share across concurrently replaying engines. CheckpointStore
// (src/core/checkpoint_store.hpp) caches recorded checkpoints across
// engines and rows, keyed on (network identity, sequence fingerprint).
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "patterns/pattern.hpp"
#include "switch/network.hpp"
#include "switch/vicinity.hpp"

namespace fmossim {

struct FsimOptions;
class CheckpointReader;
class PatternSource;

/// One recorded good-machine run of a test sequence (see file comment).
/// Immutable after record(); safe to share across concurrently replaying
/// engines (the spilled-mode window cache is internally synchronized).
/// Move-only: a spilled checkpoint owns its backing file.
class GoodMachineCheckpoint {
 public:
  /// One committed good-circuit state change (post-coercion; the new value
  /// always differs from the node's pre-phase state).
  struct Change {
    NodeId node;
    State value;
  };
  /// Member span of one good vicinity evaluation (into the members arena) —
  /// what faulty-circuit trigger collection scans during replay.
  struct VicinitySpan {
    std::uint32_t memberOff;
    std::uint32_t memberCount;
  };
  /// One unit-delay phase of good-circuit activity. Offsets index the
  /// vicinity/change arenas: global in the in-memory mode, chunk-local in a
  /// spilled chunk — CheckpointReader hides the difference.
  struct Phase {
    std::uint32_t vicOff, vicCount;        ///< span into the vicinity table
    std::uint32_t changeOff, changeCount;  ///< span into the change arena
  };
  /// One settle (input setting application): its span of phases, plus the
  /// input-node changes applied immediately before it (empty for settle 0).
  /// Settle 0 is the initial all-X network evaluation; settle k >= 1 is the
  /// k-th input setting of the sequence, in run order. Input changes bypass
  /// the phase commit path in the engine, so snapshot folding and
  /// trace-driven replay need them recorded separately.
  struct Settle {
    std::uint32_t phaseOff, phaseCount;
    std::uint32_t inputOff, inputCount;  ///< span into the input-change arena
  };
  /// One chunk of consecutive settles' trace data in decodable form: what
  /// the recorder buffers while settles run, what a spilled file block
  /// deserializes into (offsets local to the chunk). The in-memory mode
  /// flushes one settle per chunk into the flat arenas; the spilled mode
  /// batches settles up to the chunk byte target before writing.
  struct SettleBlock {
    std::vector<Settle> settles;
    std::vector<Phase> phases;
    std::vector<VicinitySpan> vics;
    std::vector<NodeId> members;
    std::vector<Change> changes;
    std::vector<Change> inputChanges;

    /// Heap footprint of the chunk's payload (window accounting; decoded
    /// chunks are exact-sized so capacity == size).
    std::size_t bytes() const;
    /// Content bytes regardless of vector slack (the recorder's flush
    /// threshold — pending buffers keep their capacity across chunks).
    std::size_t contentBytes() const;
  };

  GoodMachineCheckpoint();
  GoodMachineCheckpoint(GoodMachineCheckpoint&&) noexcept;
  GoodMachineCheckpoint& operator=(GoodMachineCheckpoint&&) noexcept;
  ~GoodMachineCheckpoint();

  /// Records the good machine of `net` over `seq`: runs a fault-free
  /// concurrent simulation with `options` (detection knobs are irrelevant;
  /// options.sim controls settle limits) and captures the trace.
  /// Deterministic: identical inputs produce identical checkpoints (and
  /// bit-identical replays regardless of `budgetBytes`).
  ///
  /// `budgetBytes` > 0 spills the chunked trace to an unlinked temp file in
  /// `spillDir` (empty = the system temp directory) as it records, keeping
  /// memoryBytes() within the budget; 0 keeps the whole trace in RAM. See
  /// the file comment for the budget's fixed floor.
  static GoodMachineCheckpoint record(const Network& net,
                                      const TestSequence& seq,
                                      const FsimOptions& options,
                                      std::size_t budgetBytes = 0,
                                      const std::string& spillDir = {});

  /// Streaming overload: records the good machine over a PatternSource,
  /// consuming it exactly once (after one fingerprint pass) and never
  /// materializing the sequence — resident memory is flat in the sequence
  /// length when a spill budget is given. The resulting checkpoint is
  /// `streamed()`: it omits the per-pattern good-eval array (a per-pattern
  /// resident cost), so it serves streaming replays (runReplay) but not the
  /// materialized sharded merge, which needs that array.
  static GoodMachineCheckpoint record(const Network& net, PatternSource& source,
                                      const FsimOptions& options,
                                      std::size_t budgetBytes = 0,
                                      const std::string& spillDir = {});

  /// Content fingerprint of a test sequence (FNV-1a over patterns, settings
  /// and outputs; PatternSource::fingerprint computes the identical fold
  /// without materializing). Replay asserts the sequence it runs matches the
  /// one recorded; CheckpointStore keys its cache on this.
  static std::uint64_t fingerprint(const TestSequence& seq);

  // --- trace accessors (in-memory mode only) ---------------------------------
  //
  // Replay must go through a CheckpointReader, which works in both storage
  // modes; these direct accessors exist for tests and tools that inspect an
  // in-memory trace and assert !spilled().

  /// Number of recorded settles (1 + total input settings of the sequence).
  std::uint32_t numSettles() const { return settleCount_; }
  /// The i-th settle's phase span. In-memory mode only.
  const Settle& settle(std::uint32_t i) const { return settles_[i]; }
  /// Phase by global index (settle.phaseOff + k). In-memory mode only.
  const Phase& phase(std::uint32_t i) const { return phases_[i]; }
  /// The vicinities the good circuit evaluated in a phase, in evaluation
  /// order (replay must preserve it: faulty-circuit seed order depends on
  /// it). In-memory mode only.
  std::span<const VicinitySpan> vicinities(const Phase& p) const {
    return {vics_.data() + p.vicOff, p.vicCount};
  }
  /// Member nodes of one recorded vicinity. In-memory mode only.
  std::span<const NodeId> members(const VicinitySpan& v) const {
    return {members_.data() + v.memberOff, v.memberCount};
  }
  /// The state changes the good circuit committed in a phase. In-memory
  /// mode only.
  std::span<const Change> changes(const Phase& p) const {
    return {changes_.data() + p.changeOff, p.changeCount};
  }
  /// The input-node changes applied just before a settle. In-memory mode
  /// only.
  std::span<const Change> inputChanges(const Settle& s) const {
    return {inputChanges_.data() + s.inputOff, s.inputCount};
  }

  // --- whole-run data --------------------------------------------------------

  /// Fingerprint of the recorded sequence (see fingerprint()).
  std::uint64_t seqFingerprint() const { return seqFingerprint_; }
  /// Number of nodes of the recorded network.
  std::uint32_t numNodes() const {
    return static_cast<std::uint32_t>(finalGoodStates_.size());
  }
  /// Number of patterns of the recorded sequence (64-bit: streamed
  /// recordings are not bounded by a materialized sequence's 2^32 size).
  std::uint64_t numPatterns() const { return numPatterns_; }
  /// The observed output nodes of the recorded sequence — what a
  /// trace-driven replay observes at each pattern end.
  const std::vector<NodeId>& outputs() const { return outputs_; }
  /// True when settle `i` is the last settle of a pattern (the engine
  /// observed outputs right after it).
  bool patternEndsAtSettle(std::uint32_t i) const {
    return ((patternEndBits_[i >> 6] >> (i & 63)) & 1) != 0;
  }
  /// Good state of every node after the last pattern (what an early-exiting
  /// replay reports as finalGoodStates).
  const std::vector<State>& finalGoodStates() const { return finalGoodStates_; }
  /// Good-machine logical node evaluations per pattern — the work a replay
  /// avoids; merged into sharded results so their deterministic work counter
  /// equals a jobs=1 run's exactly. Empty for streamed() recordings (it is
  /// a per-pattern resident cost; use totalGoodEvals() instead).
  const std::vector<std::uint64_t>& perPatternGoodEvals() const {
    return perPatternGoodEvals_;
  }
  /// Total good-machine node evaluations over the sequence (excluding the
  /// initial settle, matching FaultSimResult::totalNodeEvals semantics).
  std::uint64_t totalGoodEvals() const { return totalGoodEvals_; }
  /// Wall-clock seconds the recording run took (merged into the recording
  /// run's aggregate CPU time; diagnostics).
  double recordSeconds() const { return recordSeconds_; }
  /// True when this checkpoint was recorded from a PatternSource without
  /// per-pattern resident arrays (see the streaming record() overload).
  bool streamed() const { return streamed_; }

  /// Materializes the good state of every node after pattern `p` by folding
  /// the change trace up to that pattern's last settle (the copy-on-write
  /// read path; O(nodes + changes up to p)). Works in both storage modes.
  std::vector<State> goodStateAfterPattern(std::uint64_t p) const;

  /// Index of the settle that ends pattern `p` — the settle right after
  /// which the recording engine observed that pattern's outputs
  /// (word-skipping popcount scan over the pattern-end bits; O(settles/64)).
  /// A replay resuming "just after pattern p" (SEU tail simulation) starts
  /// at settle settleEndingPattern(p) + 1. Works in both storage modes.
  std::uint32_t settleEndingPattern(std::uint64_t p) const;

  /// True when the chunked trace lives in the temp-file backing store and
  /// replays through the sliding window.
  bool spilled() const { return spill_ != nullptr; }
  /// The record-time memory budget (0 = unbounded).
  std::size_t budgetBytes() const { return budgetBytes_; }

  // --- spill diagnostics (0 when not spilled) --------------------------------

  /// Number of chunks in the backing file.
  std::uint32_t spillChunkCount() const;
  /// Largest encoded chunk (the window's hard floor: one chunk must always
  /// be decodable).
  std::size_t maxChunkBytes() const;
  /// Bytes of decoded chunks the sliding window may keep resident.
  std::size_t windowBudgetBytes() const;

  /// Resident heap footprint in bytes: the whole trace in in-memory mode;
  /// the fixed per-chunk/per-pattern index plus the current window of
  /// decoded chunks in spilled mode. The budget enforcement hook — stays
  /// <= budgetBytes() whenever the budget exceeds the fixed floor plus one
  /// chunk per concurrently replaying engine.
  std::size_t memoryBytes() const;

 private:
  friend class CheckpointRecorder;
  friend class CheckpointReader;

  struct SpillState;

  static GoodMachineCheckpoint recordImpl(const Network& net,
                                          PatternSource& source,
                                          const FsimOptions& options,
                                          std::size_t budgetBytes,
                                          const std::string& spillDir,
                                          bool keepPerPatternEvals);

  std::size_t fixedBytes() const;
  /// Loads chunk `c` through the window cache (spilled mode).
  std::shared_ptr<const SettleBlock> loadBlock(std::uint32_t c) const;

  std::uint32_t settleCount_ = 0;  ///< total settles, both modes
  // In-memory mode: the flat trace arenas (settles concatenated in run
  // order; offsets global). Empty in spilled mode — there the trace lives
  // in the backing file, indexed per chunk by SpillState.
  std::vector<Settle> settles_;
  std::vector<Phase> phases_;
  std::vector<VicinitySpan> vics_;
  std::vector<NodeId> members_;
  std::vector<Change> changes_;
  std::vector<Change> inputChanges_;

  std::vector<State> initialGoodStates_;  ///< after the initial all-X settle
  std::vector<State> finalGoodStates_;
  std::vector<std::uint64_t> perPatternGoodEvals_;  ///< empty when streamed_
  /// Bit i set iff settle i ends a pattern (one bit per settle — the only
  /// per-settle resident cost in spilled mode besides the chunk index).
  std::vector<std::uint64_t> patternEndBits_;
  std::vector<NodeId> outputs_;
  std::uint64_t numPatterns_ = 0;
  std::uint64_t totalGoodEvals_ = 0;
  std::uint64_t seqFingerprint_ = 0;
  double recordSeconds_ = 0.0;
  bool streamed_ = false;

  std::size_t budgetBytes_ = 0;
  std::unique_ptr<SpillState> spill_;  ///< non-null in spilled mode
};

/// Forward-only replay cursor over a checkpoint's trace — the one access
/// path that works in both storage modes. Each replaying engine owns one;
/// in spilled mode the cursor pins its current settle's decoded chunk
/// (keeping returned spans valid until the next enterSettle) and the shared
/// window cache behind it slides forward with the replay. Consecutive
/// settles of one chunk reuse the pin without touching the cache.
class CheckpointReader {
 public:
  /// Binds to `ck` (must outlive the reader) without loading anything.
  explicit CheckpointReader(const GoodMachineCheckpoint& ck);
  ~CheckpointReader();

  /// Positions the cursor on settle `i` (asserted in range). Sequential
  /// forward access is the fast path; any order is correct.
  void enterSettle(std::uint32_t i);

  /// Opt-in asynchronous read-ahead (spilled checkpoints only; a no-op
  /// otherwise): after each chunk switch the reader kicks off an off-thread
  /// load-and-decode of the *next* chunk, so a sequential replay finds its
  /// next block already decoded instead of blocking on pread + decode under
  /// the replay's critical path. Hand-off goes through the existing window
  /// cache synchronization (loadBlock), so concurrent readers stay safe.
  /// Costs up to one extra resident chunk per reader while a prefetch is in
  /// flight — default readers keep the documented one-chunk-per-reader
  /// floor, which is why this is opt-in (FsimOptions::checkpointReadAhead).
  /// Results are bit-identical either way.
  void enableReadAhead() { readAhead_ = true; }

  /// Number of phases of the current settle.
  std::uint32_t phaseCount() const { return phaseCount_; }
  /// The vicinities of phase `k` of the current settle, in evaluation order.
  std::span<const GoodMachineCheckpoint::VicinitySpan> vicinities(
      std::uint32_t k) const {
    const GoodMachineCheckpoint::Phase& p = phases_[k];
    return {vicBase_ + p.vicOff, p.vicCount};
  }
  /// Member nodes of one vicinity of the current settle.
  std::span<const NodeId> members(
      const GoodMachineCheckpoint::VicinitySpan& v) const {
    return {memberBase_ + v.memberOff, v.memberCount};
  }
  /// The state changes committed in phase `k` of the current settle.
  std::span<const GoodMachineCheckpoint::Change> changes(
      std::uint32_t k) const {
    const GoodMachineCheckpoint::Phase& p = phases_[k];
    return {changeBase_ + p.changeOff, p.changeCount};
  }
  /// The input-node changes applied just before the current settle.
  std::span<const GoodMachineCheckpoint::Change> inputChanges() const {
    return {inputs_, inputCount_};
  }

 private:
  const GoodMachineCheckpoint* ck_;
  /// Pin on the current chunk (spilled mode only) and its index.
  std::shared_ptr<const GoodMachineCheckpoint::SettleBlock> pin_;
  std::uint32_t chunk_ = 0;
  /// Read-ahead state (see enableReadAhead): the in-flight prefetch of
  /// chunk `prefetchChunk_`, joined on chunk switch or in the destructor.
  bool readAhead_ = false;
  std::future<std::shared_ptr<const GoodMachineCheckpoint::SettleBlock>>
      prefetch_;
  std::uint32_t prefetchChunk_ = 0;
  const GoodMachineCheckpoint::Phase* phases_ = nullptr;
  const GoodMachineCheckpoint::VicinitySpan* vicBase_ = nullptr;
  const NodeId* memberBase_ = nullptr;
  const GoodMachineCheckpoint::Change* changeBase_ = nullptr;
  const GoodMachineCheckpoint::Change* inputs_ = nullptr;
  std::uint32_t phaseCount_ = 0;
  std::uint32_t inputCount_ = 0;
};

/// Recording sink the concurrent engine drives during a checkpoint-recording
/// run. Buffers settles into the pending chunk; a filled chunk is appended
/// to the in-memory arenas (every settle) or streamed to the spill file
/// (when the chunk byte target is reached). One beginSettle() per
/// settleAll(), one beginPhase() per unit-delay phase, then the phase's good
/// vicinities and commits in engine order; endPattern() after each observed
/// pattern; finish() flushes the last chunk.
class CheckpointRecorder {
 public:
  /// Records into `into` (must outlive the recorder; its spill mode is
  /// fixed before recording starts).
  explicit CheckpointRecorder(GoodMachineCheckpoint& into);

  /// Records one input-node assignment (old != new); attached to the settle
  /// the engine runs next.
  void inputChange(NodeId n, State v);
  /// Opens the next settle (flushing the pending chunk when due).
  void beginSettle();
  /// Opens the next phase of the current settle.
  void beginPhase();
  /// Records one good-vicinity evaluation (member list only).
  void goodVicinity(const Vicinity& vic);
  /// Records one committed good-circuit change (post-coercion, old != new).
  void goodCommit(NodeId n, State v);
  /// Marks the current settle as a pattern boundary (the engine observed
  /// outputs right after it).
  void endPattern();
  /// Flushes the final chunk; recording is complete.
  void finish();

 private:
  void flushChunk();

  GoodMachineCheckpoint& ck_;
  GoodMachineCheckpoint::SettleBlock pending_;
  /// Input changes seen since the last beginSettle (owned by the next one).
  std::vector<GoodMachineCheckpoint::Change> pendingInputs_;
  /// Spilled mode: flush the pending chunk once it holds this many content
  /// bytes (small enough that the sliding window can hold several chunks
  /// under tight budgets, large enough to amortize encode/decode).
  std::size_t chunkTarget_ = 0;
};

}  // namespace fmossim
